# Empty dependencies file for cloudrepro_survey.
# This may be replaced when dependencies are built.
