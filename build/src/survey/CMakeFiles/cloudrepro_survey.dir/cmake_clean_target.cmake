file(REMOVE_RECURSE
  "libcloudrepro_survey.a"
)
