file(REMOVE_RECURSE
  "CMakeFiles/cloudrepro_survey.dir/corpus.cpp.o"
  "CMakeFiles/cloudrepro_survey.dir/corpus.cpp.o.d"
  "CMakeFiles/cloudrepro_survey.dir/review.cpp.o"
  "CMakeFiles/cloudrepro_survey.dir/review.cpp.o.d"
  "libcloudrepro_survey.a"
  "libcloudrepro_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudrepro_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
