# Empty compiler generated dependencies file for cloudrepro_simnet.
# This may be replaced when dependencies are built.
