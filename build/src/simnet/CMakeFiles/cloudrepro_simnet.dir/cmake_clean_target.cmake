file(REMOVE_RECURSE
  "libcloudrepro_simnet.a"
)
