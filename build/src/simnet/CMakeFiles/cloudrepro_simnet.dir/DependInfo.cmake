
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/fluid_network.cpp" "src/simnet/CMakeFiles/cloudrepro_simnet.dir/fluid_network.cpp.o" "gcc" "src/simnet/CMakeFiles/cloudrepro_simnet.dir/fluid_network.cpp.o.d"
  "/root/repo/src/simnet/packet_path.cpp" "src/simnet/CMakeFiles/cloudrepro_simnet.dir/packet_path.cpp.o" "gcc" "src/simnet/CMakeFiles/cloudrepro_simnet.dir/packet_path.cpp.o.d"
  "/root/repo/src/simnet/qos.cpp" "src/simnet/CMakeFiles/cloudrepro_simnet.dir/qos.cpp.o" "gcc" "src/simnet/CMakeFiles/cloudrepro_simnet.dir/qos.cpp.o.d"
  "/root/repo/src/simnet/tcp_stream.cpp" "src/simnet/CMakeFiles/cloudrepro_simnet.dir/tcp_stream.cpp.o" "gcc" "src/simnet/CMakeFiles/cloudrepro_simnet.dir/tcp_stream.cpp.o.d"
  "/root/repo/src/simnet/token_bucket.cpp" "src/simnet/CMakeFiles/cloudrepro_simnet.dir/token_bucket.cpp.o" "gcc" "src/simnet/CMakeFiles/cloudrepro_simnet.dir/token_bucket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/cloudrepro_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
