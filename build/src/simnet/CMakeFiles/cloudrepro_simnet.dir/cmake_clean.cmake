file(REMOVE_RECURSE
  "CMakeFiles/cloudrepro_simnet.dir/fluid_network.cpp.o"
  "CMakeFiles/cloudrepro_simnet.dir/fluid_network.cpp.o.d"
  "CMakeFiles/cloudrepro_simnet.dir/packet_path.cpp.o"
  "CMakeFiles/cloudrepro_simnet.dir/packet_path.cpp.o.d"
  "CMakeFiles/cloudrepro_simnet.dir/qos.cpp.o"
  "CMakeFiles/cloudrepro_simnet.dir/qos.cpp.o.d"
  "CMakeFiles/cloudrepro_simnet.dir/tcp_stream.cpp.o"
  "CMakeFiles/cloudrepro_simnet.dir/tcp_stream.cpp.o.d"
  "CMakeFiles/cloudrepro_simnet.dir/token_bucket.cpp.o"
  "CMakeFiles/cloudrepro_simnet.dir/token_bucket.cpp.o.d"
  "libcloudrepro_simnet.a"
  "libcloudrepro_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudrepro_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
