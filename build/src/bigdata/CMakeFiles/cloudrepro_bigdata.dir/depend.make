# Empty dependencies file for cloudrepro_bigdata.
# This may be replaced when dependencies are built.
