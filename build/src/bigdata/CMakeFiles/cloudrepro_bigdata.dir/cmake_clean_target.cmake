file(REMOVE_RECURSE
  "libcloudrepro_bigdata.a"
)
