file(REMOVE_RECURSE
  "CMakeFiles/cloudrepro_bigdata.dir/cluster.cpp.o"
  "CMakeFiles/cloudrepro_bigdata.dir/cluster.cpp.o.d"
  "CMakeFiles/cloudrepro_bigdata.dir/engine.cpp.o"
  "CMakeFiles/cloudrepro_bigdata.dir/engine.cpp.o.d"
  "CMakeFiles/cloudrepro_bigdata.dir/workload.cpp.o"
  "CMakeFiles/cloudrepro_bigdata.dir/workload.cpp.o.d"
  "libcloudrepro_bigdata.a"
  "libcloudrepro_bigdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudrepro_bigdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
