
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/cloudrepro_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/cloudrepro_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/comparison.cpp" "src/core/CMakeFiles/cloudrepro_core.dir/comparison.cpp.o" "gcc" "src/core/CMakeFiles/cloudrepro_core.dir/comparison.cpp.o.d"
  "/root/repo/src/core/confirm.cpp" "src/core/CMakeFiles/cloudrepro_core.dir/confirm.cpp.o" "gcc" "src/core/CMakeFiles/cloudrepro_core.dir/confirm.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/cloudrepro_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/cloudrepro_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/fingerprint.cpp" "src/core/CMakeFiles/cloudrepro_core.dir/fingerprint.cpp.o" "gcc" "src/core/CMakeFiles/cloudrepro_core.dir/fingerprint.cpp.o.d"
  "/root/repo/src/core/guidelines.cpp" "src/core/CMakeFiles/cloudrepro_core.dir/guidelines.cpp.o" "gcc" "src/core/CMakeFiles/cloudrepro_core.dir/guidelines.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/cloudrepro_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/cloudrepro_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/cloudrepro_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/cloudrepro_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/cloudrepro_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/bigdata/CMakeFiles/cloudrepro_bigdata.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cloudrepro_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cloudrepro_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/cloudrepro_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cloudrepro_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
