file(REMOVE_RECURSE
  "libcloudrepro_core.a"
)
