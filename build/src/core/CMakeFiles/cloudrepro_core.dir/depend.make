# Empty dependencies file for cloudrepro_core.
# This may be replaced when dependencies are built.
