file(REMOVE_RECURSE
  "CMakeFiles/cloudrepro_core.dir/campaign.cpp.o"
  "CMakeFiles/cloudrepro_core.dir/campaign.cpp.o.d"
  "CMakeFiles/cloudrepro_core.dir/comparison.cpp.o"
  "CMakeFiles/cloudrepro_core.dir/comparison.cpp.o.d"
  "CMakeFiles/cloudrepro_core.dir/confirm.cpp.o"
  "CMakeFiles/cloudrepro_core.dir/confirm.cpp.o.d"
  "CMakeFiles/cloudrepro_core.dir/experiment.cpp.o"
  "CMakeFiles/cloudrepro_core.dir/experiment.cpp.o.d"
  "CMakeFiles/cloudrepro_core.dir/fingerprint.cpp.o"
  "CMakeFiles/cloudrepro_core.dir/fingerprint.cpp.o.d"
  "CMakeFiles/cloudrepro_core.dir/guidelines.cpp.o"
  "CMakeFiles/cloudrepro_core.dir/guidelines.cpp.o.d"
  "CMakeFiles/cloudrepro_core.dir/protocol.cpp.o"
  "CMakeFiles/cloudrepro_core.dir/protocol.cpp.o.d"
  "CMakeFiles/cloudrepro_core.dir/report.cpp.o"
  "CMakeFiles/cloudrepro_core.dir/report.cpp.o.d"
  "libcloudrepro_core.a"
  "libcloudrepro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudrepro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
