# Empty compiler generated dependencies file for cloudrepro_stats.
# This may be replaced when dependencies are built.
