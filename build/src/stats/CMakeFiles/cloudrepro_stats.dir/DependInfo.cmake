
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ci.cpp" "src/stats/CMakeFiles/cloudrepro_stats.dir/ci.cpp.o" "gcc" "src/stats/CMakeFiles/cloudrepro_stats.dir/ci.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/cloudrepro_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/cloudrepro_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/cloudrepro_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/cloudrepro_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/hypothesis.cpp" "src/stats/CMakeFiles/cloudrepro_stats.dir/hypothesis.cpp.o" "gcc" "src/stats/CMakeFiles/cloudrepro_stats.dir/hypothesis.cpp.o.d"
  "/root/repo/src/stats/kappa.cpp" "src/stats/CMakeFiles/cloudrepro_stats.dir/kappa.cpp.o" "gcc" "src/stats/CMakeFiles/cloudrepro_stats.dir/kappa.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/cloudrepro_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/cloudrepro_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/cloudrepro_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/cloudrepro_stats.dir/special.cpp.o.d"
  "/root/repo/src/stats/stationarity.cpp" "src/stats/CMakeFiles/cloudrepro_stats.dir/stationarity.cpp.o" "gcc" "src/stats/CMakeFiles/cloudrepro_stats.dir/stationarity.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/stats/CMakeFiles/cloudrepro_stats.dir/timeseries.cpp.o" "gcc" "src/stats/CMakeFiles/cloudrepro_stats.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
