file(REMOVE_RECURSE
  "libcloudrepro_stats.a"
)
