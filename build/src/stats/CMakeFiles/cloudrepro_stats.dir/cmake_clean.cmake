file(REMOVE_RECURSE
  "CMakeFiles/cloudrepro_stats.dir/ci.cpp.o"
  "CMakeFiles/cloudrepro_stats.dir/ci.cpp.o.d"
  "CMakeFiles/cloudrepro_stats.dir/descriptive.cpp.o"
  "CMakeFiles/cloudrepro_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/cloudrepro_stats.dir/histogram.cpp.o"
  "CMakeFiles/cloudrepro_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/cloudrepro_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/cloudrepro_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/cloudrepro_stats.dir/kappa.cpp.o"
  "CMakeFiles/cloudrepro_stats.dir/kappa.cpp.o.d"
  "CMakeFiles/cloudrepro_stats.dir/rng.cpp.o"
  "CMakeFiles/cloudrepro_stats.dir/rng.cpp.o.d"
  "CMakeFiles/cloudrepro_stats.dir/special.cpp.o"
  "CMakeFiles/cloudrepro_stats.dir/special.cpp.o.d"
  "CMakeFiles/cloudrepro_stats.dir/stationarity.cpp.o"
  "CMakeFiles/cloudrepro_stats.dir/stationarity.cpp.o.d"
  "CMakeFiles/cloudrepro_stats.dir/timeseries.cpp.o"
  "CMakeFiles/cloudrepro_stats.dir/timeseries.cpp.o.d"
  "libcloudrepro_stats.a"
  "libcloudrepro_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudrepro_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
