file(REMOVE_RECURSE
  "libcloudrepro_cloud.a"
)
