
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/ballani.cpp" "src/cloud/CMakeFiles/cloudrepro_cloud.dir/ballani.cpp.o" "gcc" "src/cloud/CMakeFiles/cloudrepro_cloud.dir/ballani.cpp.o.d"
  "/root/repo/src/cloud/cpu_credits.cpp" "src/cloud/CMakeFiles/cloudrepro_cloud.dir/cpu_credits.cpp.o" "gcc" "src/cloud/CMakeFiles/cloudrepro_cloud.dir/cpu_credits.cpp.o.d"
  "/root/repo/src/cloud/instances.cpp" "src/cloud/CMakeFiles/cloudrepro_cloud.dir/instances.cpp.o" "gcc" "src/cloud/CMakeFiles/cloudrepro_cloud.dir/instances.cpp.o.d"
  "/root/repo/src/cloud/tc_emulator.cpp" "src/cloud/CMakeFiles/cloudrepro_cloud.dir/tc_emulator.cpp.o" "gcc" "src/cloud/CMakeFiles/cloudrepro_cloud.dir/tc_emulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/cloudrepro_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cloudrepro_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
