# Empty compiler generated dependencies file for cloudrepro_cloud.
# This may be replaced when dependencies are built.
