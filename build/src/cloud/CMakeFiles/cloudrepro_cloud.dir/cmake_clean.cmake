file(REMOVE_RECURSE
  "CMakeFiles/cloudrepro_cloud.dir/ballani.cpp.o"
  "CMakeFiles/cloudrepro_cloud.dir/ballani.cpp.o.d"
  "CMakeFiles/cloudrepro_cloud.dir/cpu_credits.cpp.o"
  "CMakeFiles/cloudrepro_cloud.dir/cpu_credits.cpp.o.d"
  "CMakeFiles/cloudrepro_cloud.dir/instances.cpp.o"
  "CMakeFiles/cloudrepro_cloud.dir/instances.cpp.o.d"
  "CMakeFiles/cloudrepro_cloud.dir/tc_emulator.cpp.o"
  "CMakeFiles/cloudrepro_cloud.dir/tc_emulator.cpp.o.d"
  "libcloudrepro_cloud.a"
  "libcloudrepro_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudrepro_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
