
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/bucket_probe.cpp" "src/measure/CMakeFiles/cloudrepro_measure.dir/bucket_probe.cpp.o" "gcc" "src/measure/CMakeFiles/cloudrepro_measure.dir/bucket_probe.cpp.o.d"
  "/root/repo/src/measure/dataset.cpp" "src/measure/CMakeFiles/cloudrepro_measure.dir/dataset.cpp.o" "gcc" "src/measure/CMakeFiles/cloudrepro_measure.dir/dataset.cpp.o.d"
  "/root/repo/src/measure/iperf.cpp" "src/measure/CMakeFiles/cloudrepro_measure.dir/iperf.cpp.o" "gcc" "src/measure/CMakeFiles/cloudrepro_measure.dir/iperf.cpp.o.d"
  "/root/repo/src/measure/patterns.cpp" "src/measure/CMakeFiles/cloudrepro_measure.dir/patterns.cpp.o" "gcc" "src/measure/CMakeFiles/cloudrepro_measure.dir/patterns.cpp.o.d"
  "/root/repo/src/measure/pcap.cpp" "src/measure/CMakeFiles/cloudrepro_measure.dir/pcap.cpp.o" "gcc" "src/measure/CMakeFiles/cloudrepro_measure.dir/pcap.cpp.o.d"
  "/root/repo/src/measure/rtt.cpp" "src/measure/CMakeFiles/cloudrepro_measure.dir/rtt.cpp.o" "gcc" "src/measure/CMakeFiles/cloudrepro_measure.dir/rtt.cpp.o.d"
  "/root/repo/src/measure/trace.cpp" "src/measure/CMakeFiles/cloudrepro_measure.dir/trace.cpp.o" "gcc" "src/measure/CMakeFiles/cloudrepro_measure.dir/trace.cpp.o.d"
  "/root/repo/src/measure/write_sweep.cpp" "src/measure/CMakeFiles/cloudrepro_measure.dir/write_sweep.cpp.o" "gcc" "src/measure/CMakeFiles/cloudrepro_measure.dir/write_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/cloudrepro_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cloudrepro_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cloudrepro_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
