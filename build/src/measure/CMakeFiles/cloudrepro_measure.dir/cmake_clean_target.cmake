file(REMOVE_RECURSE
  "libcloudrepro_measure.a"
)
