file(REMOVE_RECURSE
  "CMakeFiles/cloudrepro_measure.dir/bucket_probe.cpp.o"
  "CMakeFiles/cloudrepro_measure.dir/bucket_probe.cpp.o.d"
  "CMakeFiles/cloudrepro_measure.dir/dataset.cpp.o"
  "CMakeFiles/cloudrepro_measure.dir/dataset.cpp.o.d"
  "CMakeFiles/cloudrepro_measure.dir/iperf.cpp.o"
  "CMakeFiles/cloudrepro_measure.dir/iperf.cpp.o.d"
  "CMakeFiles/cloudrepro_measure.dir/patterns.cpp.o"
  "CMakeFiles/cloudrepro_measure.dir/patterns.cpp.o.d"
  "CMakeFiles/cloudrepro_measure.dir/pcap.cpp.o"
  "CMakeFiles/cloudrepro_measure.dir/pcap.cpp.o.d"
  "CMakeFiles/cloudrepro_measure.dir/rtt.cpp.o"
  "CMakeFiles/cloudrepro_measure.dir/rtt.cpp.o.d"
  "CMakeFiles/cloudrepro_measure.dir/trace.cpp.o"
  "CMakeFiles/cloudrepro_measure.dir/trace.cpp.o.d"
  "CMakeFiles/cloudrepro_measure.dir/write_sweep.cpp.o"
  "CMakeFiles/cloudrepro_measure.dir/write_sweep.cpp.o.d"
  "libcloudrepro_measure.a"
  "libcloudrepro_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudrepro_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
