# Empty dependencies file for cloudrepro_measure.
# This may be replaced when dependencies are built.
