
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_ci.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_ci.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_ci.cpp.o.d"
  "/root/repo/tests/stats/test_descriptive.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o.d"
  "/root/repo/tests/stats/test_histogram.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o.d"
  "/root/repo/tests/stats/test_hypothesis.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_hypothesis.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_hypothesis.cpp.o.d"
  "/root/repo/tests/stats/test_kappa.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_kappa.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_kappa.cpp.o.d"
  "/root/repo/tests/stats/test_rng.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_rng.cpp.o.d"
  "/root/repo/tests/stats/test_special.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_special.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_special.cpp.o.d"
  "/root/repo/tests/stats/test_stationarity.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_stationarity.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_stationarity.cpp.o.d"
  "/root/repo/tests/stats/test_timeseries.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_timeseries.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cloudrepro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cloudrepro_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/bigdata/CMakeFiles/cloudrepro_bigdata.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cloudrepro_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cloudrepro_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/cloudrepro_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cloudrepro_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
