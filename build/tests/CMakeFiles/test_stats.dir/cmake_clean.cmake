file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_ci.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_ci.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_hypothesis.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_hypothesis.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_kappa.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_kappa.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_rng.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_rng.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_special.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_special.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_stationarity.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_stationarity.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_timeseries.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_timeseries.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
