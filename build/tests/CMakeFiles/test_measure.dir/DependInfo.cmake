
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/measure/test_bucket_probe.cpp" "tests/CMakeFiles/test_measure.dir/measure/test_bucket_probe.cpp.o" "gcc" "tests/CMakeFiles/test_measure.dir/measure/test_bucket_probe.cpp.o.d"
  "/root/repo/tests/measure/test_dataset.cpp" "tests/CMakeFiles/test_measure.dir/measure/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/test_measure.dir/measure/test_dataset.cpp.o.d"
  "/root/repo/tests/measure/test_iperf.cpp" "tests/CMakeFiles/test_measure.dir/measure/test_iperf.cpp.o" "gcc" "tests/CMakeFiles/test_measure.dir/measure/test_iperf.cpp.o.d"
  "/root/repo/tests/measure/test_patterns_trace.cpp" "tests/CMakeFiles/test_measure.dir/measure/test_patterns_trace.cpp.o" "gcc" "tests/CMakeFiles/test_measure.dir/measure/test_patterns_trace.cpp.o.d"
  "/root/repo/tests/measure/test_pcap.cpp" "tests/CMakeFiles/test_measure.dir/measure/test_pcap.cpp.o" "gcc" "tests/CMakeFiles/test_measure.dir/measure/test_pcap.cpp.o.d"
  "/root/repo/tests/measure/test_rtt.cpp" "tests/CMakeFiles/test_measure.dir/measure/test_rtt.cpp.o" "gcc" "tests/CMakeFiles/test_measure.dir/measure/test_rtt.cpp.o.d"
  "/root/repo/tests/measure/test_write_sweep.cpp" "tests/CMakeFiles/test_measure.dir/measure/test_write_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_measure.dir/measure/test_write_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cloudrepro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cloudrepro_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/bigdata/CMakeFiles/cloudrepro_bigdata.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cloudrepro_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cloudrepro_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/cloudrepro_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cloudrepro_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
