file(REMOVE_RECURSE
  "CMakeFiles/test_measure.dir/measure/test_bucket_probe.cpp.o"
  "CMakeFiles/test_measure.dir/measure/test_bucket_probe.cpp.o.d"
  "CMakeFiles/test_measure.dir/measure/test_dataset.cpp.o"
  "CMakeFiles/test_measure.dir/measure/test_dataset.cpp.o.d"
  "CMakeFiles/test_measure.dir/measure/test_iperf.cpp.o"
  "CMakeFiles/test_measure.dir/measure/test_iperf.cpp.o.d"
  "CMakeFiles/test_measure.dir/measure/test_patterns_trace.cpp.o"
  "CMakeFiles/test_measure.dir/measure/test_patterns_trace.cpp.o.d"
  "CMakeFiles/test_measure.dir/measure/test_pcap.cpp.o"
  "CMakeFiles/test_measure.dir/measure/test_pcap.cpp.o.d"
  "CMakeFiles/test_measure.dir/measure/test_rtt.cpp.o"
  "CMakeFiles/test_measure.dir/measure/test_rtt.cpp.o.d"
  "CMakeFiles/test_measure.dir/measure/test_write_sweep.cpp.o"
  "CMakeFiles/test_measure.dir/measure/test_write_sweep.cpp.o.d"
  "test_measure"
  "test_measure.pdb"
  "test_measure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
