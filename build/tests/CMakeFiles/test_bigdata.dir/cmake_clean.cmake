file(REMOVE_RECURSE
  "CMakeFiles/test_bigdata.dir/bigdata/test_cluster.cpp.o"
  "CMakeFiles/test_bigdata.dir/bigdata/test_cluster.cpp.o.d"
  "CMakeFiles/test_bigdata.dir/bigdata/test_engine.cpp.o"
  "CMakeFiles/test_bigdata.dir/bigdata/test_engine.cpp.o.d"
  "CMakeFiles/test_bigdata.dir/bigdata/test_extended_workloads.cpp.o"
  "CMakeFiles/test_bigdata.dir/bigdata/test_extended_workloads.cpp.o.d"
  "CMakeFiles/test_bigdata.dir/bigdata/test_workload.cpp.o"
  "CMakeFiles/test_bigdata.dir/bigdata/test_workload.cpp.o.d"
  "test_bigdata"
  "test_bigdata.pdb"
  "test_bigdata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bigdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
