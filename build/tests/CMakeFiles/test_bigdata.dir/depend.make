# Empty dependencies file for test_bigdata.
# This may be replaced when dependencies are built.
