file(REMOVE_RECURSE
  "CMakeFiles/test_cloud.dir/cloud/test_ballani.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_ballani.cpp.o.d"
  "CMakeFiles/test_cloud.dir/cloud/test_cpu_credits.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_cpu_credits.cpp.o.d"
  "CMakeFiles/test_cloud.dir/cloud/test_instances.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_instances.cpp.o.d"
  "CMakeFiles/test_cloud.dir/cloud/test_tc_emulator.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_tc_emulator.cpp.o.d"
  "test_cloud"
  "test_cloud.pdb"
  "test_cloud[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
