
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_campaign.cpp" "tests/CMakeFiles/test_core.dir/core/test_campaign.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_campaign.cpp.o.d"
  "/root/repo/tests/core/test_comparison.cpp" "tests/CMakeFiles/test_core.dir/core/test_comparison.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_comparison.cpp.o.d"
  "/root/repo/tests/core/test_confirm.cpp" "tests/CMakeFiles/test_core.dir/core/test_confirm.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_confirm.cpp.o.d"
  "/root/repo/tests/core/test_experiment.cpp" "tests/CMakeFiles/test_core.dir/core/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_experiment.cpp.o.d"
  "/root/repo/tests/core/test_fingerprint.cpp" "tests/CMakeFiles/test_core.dir/core/test_fingerprint.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fingerprint.cpp.o.d"
  "/root/repo/tests/core/test_fingerprint_io.cpp" "tests/CMakeFiles/test_core.dir/core/test_fingerprint_io.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fingerprint_io.cpp.o.d"
  "/root/repo/tests/core/test_protocol.cpp" "tests/CMakeFiles/test_core.dir/core/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_protocol.cpp.o.d"
  "/root/repo/tests/core/test_report_guidelines.cpp" "tests/CMakeFiles/test_core.dir/core/test_report_guidelines.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_report_guidelines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cloudrepro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cloudrepro_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/bigdata/CMakeFiles/cloudrepro_bigdata.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cloudrepro_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cloudrepro_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/cloudrepro_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cloudrepro_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
