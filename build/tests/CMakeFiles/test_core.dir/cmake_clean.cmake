file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_campaign.cpp.o"
  "CMakeFiles/test_core.dir/core/test_campaign.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_comparison.cpp.o"
  "CMakeFiles/test_core.dir/core/test_comparison.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_confirm.cpp.o"
  "CMakeFiles/test_core.dir/core/test_confirm.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_experiment.cpp.o"
  "CMakeFiles/test_core.dir/core/test_experiment.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fingerprint.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fingerprint.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fingerprint_io.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fingerprint_io.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_protocol.cpp.o"
  "CMakeFiles/test_core.dir/core/test_protocol.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_report_guidelines.cpp.o"
  "CMakeFiles/test_core.dir/core/test_report_guidelines.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
