file(REMOVE_RECURSE
  "CMakeFiles/test_simnet.dir/simnet/test_analytic_validation.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_analytic_validation.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/test_fairness_properties.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_fairness_properties.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/test_fluid_network.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_fluid_network.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/test_packet_path.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_packet_path.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/test_qos.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_qos.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/test_tcp_stream.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_tcp_stream.cpp.o.d"
  "CMakeFiles/test_simnet.dir/simnet/test_token_bucket.cpp.o"
  "CMakeFiles/test_simnet.dir/simnet/test_token_bucket.cpp.o.d"
  "test_simnet"
  "test_simnet.pdb"
  "test_simnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
