# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_cloud[1]_include.cmake")
include("/root/repo/build/tests/test_measure[1]_include.cmake")
include("/root/repo/build/tests/test_bigdata[1]_include.cmake")
include("/root/repo/build/tests/test_survey[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
