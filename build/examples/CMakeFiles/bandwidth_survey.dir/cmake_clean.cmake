file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_survey.dir/bandwidth_survey.cpp.o"
  "CMakeFiles/bandwidth_survey.dir/bandwidth_survey.cpp.o.d"
  "bandwidth_survey"
  "bandwidth_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
