# Empty dependencies file for bandwidth_survey.
# This may be replaced when dependencies are built.
