# Empty dependencies file for reproducible_experiment.
# This may be replaced when dependencies are built.
