file(REMOVE_RECURSE
  "CMakeFiles/reproducible_experiment.dir/reproducible_experiment.cpp.o"
  "CMakeFiles/reproducible_experiment.dir/reproducible_experiment.cpp.o.d"
  "reproducible_experiment"
  "reproducible_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproducible_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
