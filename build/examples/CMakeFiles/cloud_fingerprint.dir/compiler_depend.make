# Empty compiler generated dependencies file for cloud_fingerprint.
# This may be replaced when dependencies are built.
