file(REMOVE_RECURSE
  "CMakeFiles/cloud_fingerprint.dir/cloud_fingerprint.cpp.o"
  "CMakeFiles/cloud_fingerprint.dir/cloud_fingerprint.cpp.o.d"
  "cloud_fingerprint"
  "cloud_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
