# Empty dependencies file for token_bucket_explorer.
# This may be replaced when dependencies are built.
