file(REMOVE_RECURSE
  "CMakeFiles/token_bucket_explorer.dir/token_bucket_explorer.cpp.o"
  "CMakeFiles/token_bucket_explorer.dir/token_bucket_explorer.cpp.o.d"
  "token_bucket_explorer"
  "token_bucket_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_bucket_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
