# Empty compiler generated dependencies file for bench_fig09_retrans.
# This may be replaced when dependencies are built.
