file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_retrans.dir/bench/bench_fig09_retrans.cpp.o"
  "CMakeFiles/bench_fig09_retrans.dir/bench/bench_fig09_retrans.cpp.o.d"
  "bench/bench_fig09_retrans"
  "bench/bench_fig09_retrans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_retrans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
