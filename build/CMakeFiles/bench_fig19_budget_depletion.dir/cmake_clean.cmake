file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_budget_depletion.dir/bench/bench_fig19_budget_depletion.cpp.o"
  "CMakeFiles/bench_fig19_budget_depletion.dir/bench/bench_fig19_budget_depletion.cpp.o.d"
  "bench/bench_fig19_budget_depletion"
  "bench/bench_fig19_budget_depletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_budget_depletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
