# Empty compiler generated dependencies file for bench_fig19_budget_depletion.
# This may be replaced when dependencies are built.
