file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_hibench_budget.dir/bench/bench_fig16_hibench_budget.cpp.o"
  "CMakeFiles/bench_fig16_hibench_budget.dir/bench/bench_fig16_hibench_budget.cpp.o.d"
  "bench/bench_fig16_hibench_budget"
  "bench/bench_fig16_hibench_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_hibench_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
