# Empty compiler generated dependencies file for bench_fig16_hibench_budget.
# This may be replaced when dependencies are built.
