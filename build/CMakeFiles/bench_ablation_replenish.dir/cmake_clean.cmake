file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_replenish.dir/bench/bench_ablation_replenish.cpp.o"
  "CMakeFiles/bench_ablation_replenish.dir/bench/bench_ablation_replenish.cpp.o.d"
  "bench/bench_ablation_replenish"
  "bench/bench_ablation_replenish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_replenish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
