# Empty compiler generated dependencies file for bench_ablation_replenish.
# This may be replaced when dependencies are built.
