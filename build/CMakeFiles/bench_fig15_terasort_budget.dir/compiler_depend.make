# Empty compiler generated dependencies file for bench_fig15_terasort_budget.
# This may be replaced when dependencies are built.
