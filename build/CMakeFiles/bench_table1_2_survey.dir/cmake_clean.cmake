file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_2_survey.dir/bench/bench_table1_2_survey.cpp.o"
  "CMakeFiles/bench_table1_2_survey.dir/bench/bench_table1_2_survey.cpp.o.d"
  "bench/bench_table1_2_survey"
  "bench/bench_table1_2_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_2_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
