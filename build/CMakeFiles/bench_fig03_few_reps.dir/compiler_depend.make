# Empty compiler generated dependencies file for bench_fig03_few_reps.
# This may be replaced when dependencies are built.
