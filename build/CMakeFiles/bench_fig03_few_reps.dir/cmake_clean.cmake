file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_few_reps.dir/bench/bench_fig03_few_reps.cpp.o"
  "CMakeFiles/bench_fig03_few_reps.dir/bench/bench_fig03_few_reps.cpp.o.d"
  "bench/bench_fig03_few_reps"
  "bench/bench_fig03_few_reps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_few_reps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
