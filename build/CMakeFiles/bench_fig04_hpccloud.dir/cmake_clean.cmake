file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_hpccloud.dir/bench/bench_fig04_hpccloud.cpp.o"
  "CMakeFiles/bench_fig04_hpccloud.dir/bench/bench_fig04_hpccloud.cpp.o.d"
  "bench/bench_fig04_hpccloud"
  "bench/bench_fig04_hpccloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_hpccloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
