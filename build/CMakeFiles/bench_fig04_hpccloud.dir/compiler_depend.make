# Empty compiler generated dependencies file for bench_fig04_hpccloud.
# This may be replaced when dependencies are built.
