# Empty compiler generated dependencies file for bench_fig17_tpcds_budget.
# This may be replaced when dependencies are built.
