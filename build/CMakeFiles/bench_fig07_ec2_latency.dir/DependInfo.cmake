
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig07_ec2_latency.cpp" "CMakeFiles/bench_fig07_ec2_latency.dir/bench/bench_fig07_ec2_latency.cpp.o" "gcc" "CMakeFiles/bench_fig07_ec2_latency.dir/bench/bench_fig07_ec2_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cloudrepro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cloudrepro_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/bigdata/CMakeFiles/cloudrepro_bigdata.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cloudrepro_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cloudrepro_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/cloudrepro_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cloudrepro_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
