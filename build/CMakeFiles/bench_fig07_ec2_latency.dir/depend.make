# Empty dependencies file for bench_fig07_ec2_latency.
# This may be replaced when dependencies are built.
