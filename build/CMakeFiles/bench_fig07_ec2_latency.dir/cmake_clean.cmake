file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_ec2_latency.dir/bench/bench_fig07_ec2_latency.cpp.o"
  "CMakeFiles/bench_fig07_ec2_latency.dir/bench/bench_fig07_ec2_latency.cpp.o.d"
  "bench/bench_fig07_ec2_latency"
  "bench/bench_fig07_ec2_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_ec2_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
