file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_survey.dir/bench/bench_fig01_survey.cpp.o"
  "CMakeFiles/bench_fig01_survey.dir/bench/bench_fig01_survey.cpp.o.d"
  "bench/bench_fig01_survey"
  "bench/bench_fig01_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
