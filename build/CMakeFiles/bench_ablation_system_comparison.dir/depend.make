# Empty dependencies file for bench_ablation_system_comparison.
# This may be replaced when dependencies are built.
