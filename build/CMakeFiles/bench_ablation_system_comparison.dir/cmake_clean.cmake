file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_system_comparison.dir/bench/bench_ablation_system_comparison.cpp.o"
  "CMakeFiles/bench_ablation_system_comparison.dir/bench/bench_ablation_system_comparison.cpp.o.d"
  "bench/bench_ablation_system_comparison"
  "bench/bench_ablation_system_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_system_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
