file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_emulator.dir/bench/bench_fig14_emulator.cpp.o"
  "CMakeFiles/bench_fig14_emulator.dir/bench/bench_fig14_emulator.cpp.o.d"
  "bench/bench_fig14_emulator"
  "bench/bench_fig14_emulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_emulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
