# Empty dependencies file for bench_fig14_emulator.
# This may be replaced when dependencies are built.
