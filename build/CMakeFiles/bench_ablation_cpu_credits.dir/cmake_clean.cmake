file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cpu_credits.dir/bench/bench_ablation_cpu_credits.cpp.o"
  "CMakeFiles/bench_ablation_cpu_credits.dir/bench/bench_ablation_cpu_credits.cpp.o.d"
  "bench/bench_ablation_cpu_credits"
  "bench/bench_ablation_cpu_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cpu_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
