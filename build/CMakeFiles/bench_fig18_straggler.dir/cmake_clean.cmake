file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_straggler.dir/bench/bench_fig18_straggler.cpp.o"
  "CMakeFiles/bench_fig18_straggler.dir/bench/bench_fig18_straggler.cpp.o.d"
  "bench/bench_fig18_straggler"
  "bench/bench_fig18_straggler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_straggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
