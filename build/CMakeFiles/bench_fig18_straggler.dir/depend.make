# Empty dependencies file for bench_fig18_straggler.
# This may be replaced when dependencies are built.
