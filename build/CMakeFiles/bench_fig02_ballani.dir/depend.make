# Empty dependencies file for bench_fig02_ballani.
# This may be replaced when dependencies are built.
