file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_ballani.dir/bench/bench_fig02_ballani.cpp.o"
  "CMakeFiles/bench_fig02_ballani.dir/bench/bench_fig02_ballani.cpp.o.d"
  "bench/bench_fig02_ballani"
  "bench/bench_fig02_ballani.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_ballani.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
