file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_token_bucket.dir/bench/bench_fig11_token_bucket.cpp.o"
  "CMakeFiles/bench_fig11_token_bucket.dir/bench/bench_fig11_token_bucket.cpp.o.d"
  "bench/bench_fig11_token_bucket"
  "bench/bench_fig11_token_bucket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_token_bucket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
