# Empty dependencies file for bench_fig11_token_bucket.
# This may be replaced when dependencies are built.
