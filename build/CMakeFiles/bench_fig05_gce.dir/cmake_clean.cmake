file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_gce.dir/bench/bench_fig05_gce.cpp.o"
  "CMakeFiles/bench_fig05_gce.dir/bench/bench_fig05_gce.cpp.o.d"
  "bench/bench_fig05_gce"
  "bench/bench_fig05_gce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_gce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
