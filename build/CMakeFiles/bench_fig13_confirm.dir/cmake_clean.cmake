file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_confirm.dir/bench/bench_fig13_confirm.cpp.o"
  "CMakeFiles/bench_fig13_confirm.dir/bench/bench_fig13_confirm.cpp.o.d"
  "bench/bench_fig13_confirm"
  "bench/bench_fig13_confirm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_confirm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
