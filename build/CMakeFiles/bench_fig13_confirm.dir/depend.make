# Empty dependencies file for bench_fig13_confirm.
# This may be replaced when dependencies are built.
