# Empty dependencies file for bench_ablation_fluid_vs_packet.
# This may be replaced when dependencies are built.
