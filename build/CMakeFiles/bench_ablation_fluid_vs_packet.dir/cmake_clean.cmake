file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fluid_vs_packet.dir/bench/bench_ablation_fluid_vs_packet.cpp.o"
  "CMakeFiles/bench_ablation_fluid_vs_packet.dir/bench/bench_ablation_fluid_vs_packet.cpp.o.d"
  "bench/bench_ablation_fluid_vs_packet"
  "bench/bench_ablation_fluid_vs_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fluid_vs_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
