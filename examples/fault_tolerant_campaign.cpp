// Example: a resumable campaign over a fault-injected cluster — the
// robustness loop end to end. A (workload x budget) grid runs under a
// sampled fault plan (crashes, slowdowns, link flaps, token theft) with
// engine-level retry and speculation; every completed measurement is
// journaled so the campaign survives the *driver* being interrupted too.
//
// Run it once: it executes a few measurements and stops (simulating an
// interruption). Run it again with the same journal: it resumes and
// finishes, bit-identical to an uninterrupted campaign.
//
// Usage: fault_tolerant_campaign [journal.jsonl]   (default: ./fault_campaign.jsonl)

#include <filesystem>
#include <iostream>
#include <string>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/campaign.h"
#include "core/report.h"
#include "faults/fault_plan.h"
#include "simnet/qos.h"
#include "stats/rng.h"

using namespace cloudrepro;

namespace {

/// One measurement: run TS on a fresh fault-injected cluster and return the
/// runtime. Everything inside is a pure function of the repetition's RNG.
double fault_injected_run(double budget, stats::Rng& rng) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  cluster.set_token_budgets(budget);

  faults::FaultPlanConfig faults_cfg;
  faults_cfg.horizon_s = 600.0;
  faults_cfg.slowdown_rate_per_hour = 30.0;
  faults_cfg.flap_rate_per_hour = 12.0;
  faults_cfg.theft_rate_per_hour = 30.0;
  faults_cfg.crash_rate_per_hour = 3.0;

  bigdata::EngineOptions opt;
  opt.fault_plan = faults::FaultPlan::sample(faults_cfg, cluster.node_count(), rng);
  opt.speculation.enabled = true;
  opt.speculation.check_interval_s = 5.0;
  bigdata::SparkEngine engine{opt};
  const auto result = engine.run(bigdata::hibench_terasort(), cluster, rng);
  return result.runtime_s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path journal =
      argc > 1 ? argv[1] : "fault_campaign.jsonl";
  const bool resuming = std::filesystem::exists(journal);

  std::cout << (resuming ? "Resuming campaign from " : "Starting campaign; journal at ")
            << journal << "\n\n";

  std::vector<core::CampaignCell> cells;
  for (const double budget : {5000.0, 1000.0, 100.0}) {
    cells.push_back(core::CampaignCell{
        "TS", "budget=" + std::to_string(static_cast<int>(budget)),
        [budget](stats::Rng& rng) { return fault_injected_run(budget, rng); },
        [] {}});
  }

  core::CampaignOptions opt;
  opt.repetitions_per_cell = 5;
  opt.journal_path = journal;
  // First invocation stops after 7 of the 15 measurements — an interrupted
  // driver. The journal keeps what completed.
  if (!resuming) opt.max_measurements = 7;

  const auto result = core::run_campaign(cells, opt, /*seed=*/20200225);

  core::print_campaign_summary(std::cout, result);
  if (!result.complete) {
    std::cout << "\nInterrupted after " << 7 << " measurements (simulated). "
              << "Run again to resume from the journal.\n";
  } else {
    std::cout << "\nCampaign complete ("
              << result.resumed_measurements
              << " measurements replayed from the journal). A resumed\n"
                 "campaign is bit-identical to an uninterrupted one: each\n"
                 "(cell, repetition) draws from its own seed-derived RNG\n"
                 "stream, and journaled values round-trip exactly.\n";
  }
  return 0;
}
