// Example: a fully observed campaign — the observability layer end to end.
//
// A (workload x budget) grid runs fault-injected jobs while one shared
// Tracer and MetricsRegistry watch every layer at once: the campaign
// scheduler records wall-clock measurement spans, the engine records
// sim-time stage/job spans and retry/speculation instants, the fluid
// network records flow and token-bucket transitions, and the fault injector
// stamps every injected event. The run ends with:
//
//   traced_campaign_trace.json    — open in chrome://tracing or
//                                   https://ui.perfetto.dev (pid 0 = wall
//                                   clock, pid 1 = simulated time)
//   traced_campaign_metrics.json  — counter/histogram snapshot
//
// and prints the reconciliation the metrics make possible: traced retry
// events agree exactly with the engine's RecoveryStats accounting.
//
// Usage: traced_campaign [output-dir]   (default: current directory)

#include <atomic>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/campaign.h"
#include "core/report.h"
#include "faults/fault_plan.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "simnet/qos.h"
#include "stats/rng.h"

using namespace cloudrepro;

namespace {

/// One measurement: a fault-injected TeraSort/WordCount run on a fresh
/// cluster, with the shared observability sinks wired into the engine.
double observed_run(const bigdata::WorkloadProfile& workload, double budget,
                    obs::Tracer* tracer, obs::MetricsRegistry* metrics,
                    std::atomic<long long>* expected_retries, stats::Rng& rng) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  cluster.set_token_budgets(budget);

  faults::FaultPlanConfig faults_cfg;
  faults_cfg.horizon_s = 600.0;
  faults_cfg.crash_rate_per_hour = 6.0;
  faults_cfg.slowdown_rate_per_hour = 30.0;
  faults_cfg.theft_rate_per_hour = 30.0;

  bigdata::EngineOptions opt;
  opt.fault_plan = faults::FaultPlan::sample(faults_cfg, cluster.node_count(), rng);
  opt.speculation.enabled = true;
  opt.speculation.check_interval_s = 5.0;
  opt.tracer = tracer;
  opt.metrics = metrics;
  bigdata::SparkEngine engine{opt};
  const auto result = engine.run(workload, cluster, rng);
  expected_retries->fetch_add(result.recovery.task_retries,
                              std::memory_order_relaxed);
  return result.runtime_s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : ".";
  const auto trace_path = dir / "traced_campaign_trace.json";
  const auto metrics_path = dir / "traced_campaign_metrics.json";

  obs::Tracer tracer{1 << 18};
  obs::MetricsRegistry metrics;
  std::atomic<long long> expected_retries{0};

  std::vector<core::CampaignCell> cells;
  struct Spec {
    const char* config;
    const bigdata::WorkloadProfile workload;
    double budget;
  };
  const Spec specs[] = {
      {"TS", bigdata::hibench_terasort(), 5000.0},
      {"TS", bigdata::hibench_terasort(), 100.0},
      {"WC", bigdata::hibench_wordcount(), 5000.0},
      {"WC", bigdata::hibench_wordcount(), 100.0},
  };
  for (const auto& spec : specs) {
    cells.push_back(core::CampaignCell{
        spec.config, "budget=" + core::fmt(spec.budget, 0),
        [&, workload = spec.workload, budget = spec.budget](stats::Rng& rng) {
          return observed_run(workload, budget, &tracer, &metrics,
                              &expected_retries, rng);
        },
        [] {}});
  }

  core::CampaignOptions opt;
  opt.repetitions_per_cell = 5;
  opt.trace_path = trace_path;
  opt.metrics_path = metrics_path;
  opt.tracer = &tracer;
  opt.metrics = &metrics;

  const auto result = core::run_campaign(cells, opt, /*seed=*/20200225u);
  core::print_campaign_summary(std::cout, result);

#if CLOUDREPRO_OBS
  std::cout << "\n--- Telemetry reconciliation ---\n"
            << "engine.task_retries (metrics counter): "
            << metrics.counter_value("engine.task_retries") << '\n'
            << "task_retry events in trace window:     "
            << tracer.events_named("task_retry").size() << '\n'
            << "RecoveryStats retries (ground truth):  "
            << expected_retries.load() << '\n'
            << "engine.jobs: " << metrics.counter_value("engine.jobs")
            << "  campaign.measurements_executed: "
            << metrics.counter_value("campaign.measurements_executed") << '\n'
            << "trace events emitted=" << tracer.emitted()
            << " retained=" << tracer.size() << " dropped=" << tracer.dropped()
            << "\n\nWrote " << trace_path.string() << " ("
            << std::filesystem::file_size(trace_path) << " bytes) — load it in "
            << "chrome://tracing or https://ui.perfetto.dev\n"
            << "Wrote " << metrics_path.string() << '\n';
#else
  std::cout << "\n(built with CLOUDREPRO_OBS=OFF: instrumentation compiled "
               "out, no trace/metrics files written)\n";
#endif
  return 0;
}
