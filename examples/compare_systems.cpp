// Example: comparing two systems on a cloud, soundly — the use case the
// paper's survey finds done badly across the literature. System B is an
// optimized variant of system A; the demo runs both as a randomized
// campaign on the noisy HPCCloud, then reports the non-parametric verdict
// (Mann-Whitney + Cliff's delta + median CIs) instead of two bare averages.
//
// Usage: compare_systems [repetitions-per-system]   (default 25)

#include <iostream>
#include <string>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/campaign.h"
#include "core/comparison.h"
#include "core/report.h"
#include "stats/rng.h"

using namespace cloudrepro;

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::stoi(argv[1]) : 25;

  // System A: stock WordCount. System B: an optimized build whose map tasks
  // are 10% faster — a genuinely better system, but by a margin comparable
  // to the cloud's run-to-run noise.
  const auto system_a = bigdata::hibench_wordcount();
  auto system_b = system_a;
  system_b.name = "WC-optimized";
  for (auto& s : system_b.stages) s.compute_s_mean /= 1.10;

  stats::Rng rng{2026};
  bigdata::EngineOptions engine_opt;
  engine_opt.machine_noise_cv = 0.05;  // Direct-on-cloud runs.
  bigdata::SparkEngine engine{engine_opt};

  auto cluster = bigdata::Cluster::from_cloud(12, 16, cloud::hpccloud_8core(), rng);
  const auto cell_for = [&](const bigdata::WorkloadProfile& w) {
    return core::CampaignCell{
        w.name, "HPCCloud/12-node",
        [&engine, &cluster, &w](stats::Rng& r) {
          return engine.run(w, cluster, r).runtime_s;
        },
        [&cluster, &rng] {
          cluster = bigdata::Cluster::from_cloud(12, 16, cloud::hpccloud_8core(), rng);
        }};
  };

  core::CampaignOptions campaign_opt;
  campaign_opt.repetitions_per_cell = reps;
  campaign_opt.randomize_order = true;

  std::cout << "Running both systems as a randomized campaign (" << reps
            << " fresh-cluster repetitions each)...\n\n";
  const auto campaign = core::run_campaign({cell_for(system_a), cell_for(system_b)},
                                           campaign_opt, rng);
  core::print_campaign_summary(std::cout, campaign);

  const auto verdict = core::compare_systems(campaign.cells[0].values,
                                             campaign.cells[1].values);
  std::cout << "\nVerdict: " << verdict.summary() << '\n';
  std::cout << "(Cliff's delta " << core::fmt(verdict.cliffs_delta)
            << " = " << to_string(core::interpret_cliffs_delta(verdict.cliffs_delta))
            << " effect; positive means " << campaign.cells[0].config
            << " is slower less often)\n";

  std::cout << "\nThe same comparison with the literature's modal 3 repetitions:\n";
  core::CampaignOptions tiny = campaign_opt;
  tiny.repetitions_per_cell = 3;
  const auto small = core::run_campaign({cell_for(system_a), cell_for(system_b)},
                                        tiny, rng);
  const auto small_verdict =
      core::compare_systems(small.cells[0].values, small.cells[1].values);
  std::cout << "Verdict: " << small_verdict.summary() << '\n';
  return 0;
}
