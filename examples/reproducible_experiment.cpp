// Example: the full reproducibility protocol from the paper's Section 5,
// as one API call — fingerprint the platform, plan rests from the measured
// bucket parameters, run enough repetitions with diagnostics, run CONFIRM,
// and audit the design. Contrasts three designs on the same workload:
//
//   (1) the literature's modal design: 3 repetitions, reused VMs;
//   (2) a naive "more repetitions" fix that still reuses VMs;
//   (3) the paper's protocol: fresh state per run + statistics.
//
// Usage: reproducible_experiment [tpcds-query-number]   (default 65)

#include <iostream>
#include <string>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/protocol.h"
#include "core/report.h"
#include "stats/rng.h"

using namespace cloudrepro;

int main(int argc, char** argv) {
  const int query = argc > 1 ? std::stoi(argv[1]) : 65;
  const auto& workload = bigdata::tpcds_query(query);

  std::cout << "Workload: TPC-DS " << workload.name << " ("
            << core::fmt(workload.total_shuffle_gbit_per_node(), 0)
            << " Gbit shuffle/node, "
            << core::fmt(workload.nominal_compute_s(16), 0)
            << " s compute/node)\n\n";

  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos prototype{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, prototype, 10.0);
  bigdata::SparkEngine engine;
  stats::Rng rng{7};

  core::LambdaEnvironment env{
      "TPC-DS " + workload.name + " on 12-node emulated c5.xlarge cluster",
      [&] { cluster.reset_network(); },
      [&](double s) { cluster.rest(s); },
      [&](stats::Rng& r) { return engine.run(workload, cluster, r).runtime_s; }};

  core::FingerprintOptions fp;
  fp.bucket_probe.max_probe_s = 1800.0;

  const struct {
    const char* label;
    int repetitions;
    bool fresh;
  } designs[] = {
      {"(1) literature modal design: 3 reps, reused VMs", 3, false},
      {"(2) more reps, still reused VMs", 20, false},
      {"(3) the paper's protocol: 20 reps, fresh state", 20, true},
  };

  for (const auto& design : designs) {
    std::cout << "==========================================================\n"
              << design.label << "\n"
              << "==========================================================\n";
    cluster.reset_network();

    core::ProtocolOptions options;
    options.fingerprint = fp;
    options.plan.repetitions = design.repetitions;
    options.plan.fresh_environment_each_run = design.fresh;
    // Design (2) deliberately ignores the rest recommendation, as a paper
    // unaware of token buckets would.
    options.planned_transfer_gbit_per_run =
        design.fresh ? workload.total_shuffle_gbit_per_node() : 0.0;

    const auto report = core::run_protocol(cloud::ec2_c5_xlarge(), env, options, rng);
    core::print_protocol_report(std::cout, report);
    std::cout << '\n';
  }

  std::cout << "Only design (3) yields a verdict of REPRODUCIBLE: design (1)\n"
               "cannot even form a confidence interval, and design (2) is\n"
               "flagged for reusing VMs under a token-bucket policy — its\n"
               "repetitions drain the budget future runs depend on. On a\n"
               "freshly-allocated cluster the damage is latent (the budget\n"
               "outlasts 20 runs); on a cluster 'left in an unknown state by\n"
               "previous experiments' it is exactly Figure 19. The audit\n"
               "catches the design flaw either way.\n";
  return 0;
}
