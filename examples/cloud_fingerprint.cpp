// Example: the F5.2 workflow — establish a baseline network fingerprint for
// a cloud, store it, and later verify that the platform still behaves the
// same before trusting new results.
//
// Usage: cloud_fingerprint [ec2|gce|hpccloud]
//
// The demo fingerprints the chosen cloud twice: once "before" and once
// "after" a (simulated) provider policy change — the August 2019 incident
// where c5.xlarge NICs silently started arriving capped at 5 Gbps — and
// shows the drift detector firing.

#include <filesystem>
#include <iostream>
#include <string>

#include "cloud/instances.h"
#include "core/fingerprint.h"
#include "core/report.h"
#include "stats/rng.h"

using namespace cloudrepro;

namespace {

cloud::CloudProfile profile_for(const std::string& name, cloud::PolicyEra era) {
  cloud::IncarnationOptions options;
  options.era = era;
  options.capped_nic_probability = 1.0;  // Deterministic for the demo.
  if (name == "gce") return cloud::gce_8core(options);
  if (name == "hpccloud") return cloud::hpccloud_8core(options);
  return cloud::ec2_c5_xlarge(options);
}

void print_fingerprint(const core::NetworkFingerprint& fp) {
  core::TablePrinter t{{"Micro-benchmark", "Value"}};
  t.add_row({"base latency [ms]", core::fmt(fp.base_latency_ms, 3)});
  t.add_row({"latency under load [ms]", core::fmt(fp.loaded_latency_ms, 3)});
  t.add_row({"base bandwidth [Gbps]", core::fmt(fp.base_bandwidth_gbps)});
  t.add_row({"bandwidth CoV", core::fmt_pct(fp.bandwidth_cov)});
  t.add_row({"retransmission rate", core::fmt_pct(fp.retransmission_rate)});
  t.add_row({"QoS class", to_string(fp.qos)});
  if (fp.qos == core::QosClass::kTokenBucket) {
    t.add_row({"bucket: time-to-empty [s]", core::fmt(fp.bucket.time_to_empty_s, 0)});
    t.add_row({"bucket: high rate [Gbps]", core::fmt(fp.bucket.high_rate_gbps, 1)});
    t.add_row({"bucket: low rate [Gbps]", core::fmt(fp.bucket.low_rate_gbps, 1)});
    t.add_row({"bucket: replenish [Gbps]", core::fmt(fp.bucket.replenish_gbps, 2)});
    t.add_row({"bucket: budget [Gbit]", core::fmt(fp.bucket.inferred_budget_gbit, 0)});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "ec2";
  stats::Rng rng{2024};

  std::cout << "Fingerprinting cloud '" << which
            << "' (guideline F5.2: establish baselines before experiments)\n\n";

  core::FingerprintOptions options;
  options.bucket_probe.max_probe_s = 1800.0;

  const auto measured =
      core::fingerprint_network(profile_for(which, cloud::PolicyEra::kPreAugust2019),
                                options, rng);
  // Persist it — F5.2/F5.5: the baseline is part of the published artifact.
  const auto baseline_path =
      std::filesystem::temp_directory_path() / ("fingerprint_" + which + ".txt");
  core::save_fingerprint(baseline_path, measured);
  const auto baseline = core::load_fingerprint(baseline_path);

  std::cout << "=== Baseline fingerprint (saved to " << baseline_path.string()
            << ") ===\n";
  print_fingerprint(baseline);

  std::cout << "\n=== Months later: re-fingerprint before the next campaign ===\n";
  const auto current =
      core::fingerprint_network(profile_for(which, cloud::PolicyEra::kPostAugust2019),
                                options, rng);
  print_fingerprint(current);

  const auto cmp = core::compare_fingerprints(baseline, current);
  std::cout << "\n=== Drift verdict ===\n";
  if (cmp.baselines_match()) {
    std::cout << "Baselines match: new results are comparable to the old ones.\n";
  } else {
    std::cout << "BASELINES DO NOT MATCH:";
    if (cmp.bandwidth_drift) std::cout << " bandwidth";
    if (cmp.latency_drift) std::cout << " latency";
    if (cmp.qos_class_change) std::cout << " qos-class";
    if (cmp.bucket_parameter_drift) std::cout << " bucket-parameters";
    std::cout << " drifted.\nDo not compare new numbers against the published"
                 " ones (F5.5: provider policies change at any time).\n";
  }
  return 0;
}
