// Example: regenerate the paper's released measurement artifact [57] — a
// directory of bandwidth traces (one CSV per cloud x instance x pattern)
// plus a MANIFEST, then re-analyze it from disk with the same tooling, the
// way a downstream reader of the published dataset would.
//
// Usage: bandwidth_survey [output-dir] [hours-per-cell]   (default: ./cloud_traces 6)

#include <filesystem>
#include <iostream>
#include <string>

#include "core/report.h"
#include "measure/dataset.h"
#include "stats/timeseries.h"

using namespace cloudrepro;

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "cloud_traces";
  const double hours = argc > 2 ? std::stod(argv[2]) : 6.0;

  auto campaign = measure::default_campaign();
  campaign.duration_s = hours * 3600.0;

  std::cout << "Generating the measurement artifact: " << campaign.cells.size()
            << " cells x " << hours << " h into " << dir << "/ ...\n\n";
  const auto files = measure::generate_dataset(dir, campaign);

  core::TablePrinter t{{"File", "Samples", "Total [TB]", "Median [Gbps]",
                        "Max sample-to-sample change"}};
  for (const auto& f : files) {
    // Re-read from disk: the artifact must be self-sufficient.
    const auto trace = measure::read_trace_csv(f.path);
    const auto bw = trace.bandwidths();
    t.add_row({f.path.filename().string(), std::to_string(trace.samples.size()),
               core::fmt(trace.cumulative_terabytes().back(), 2),
               core::fmt(trace.bandwidth_summary().median),
               core::fmt_pct(stats::max_sample_to_sample_variability(bw))});
  }
  t.print(std::cout);

  std::cout << "\nPublish this directory alongside your results (F5.5): future\n"
               "readers can diff their own fingerprints against it and detect\n"
               "provider policy drift before comparing numbers.\n";
  return 0;
}
