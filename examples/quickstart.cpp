// Quickstart: fingerprint the three studied clouds, then run a small
// big-data experiment the way the paper says you should — with fresh
// infrastructure per repetition, enough repetitions for a valid median CI,
// and the F5.4 diagnostics — and let the guideline checker audit the design.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <iostream>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/experiment.h"
#include "core/fingerprint.h"
#include "core/guidelines.h"
#include "core/report.h"
#include "stats/rng.h"

using namespace cloudrepro;

int main() {
  stats::Rng rng{42};

  // ---- Step 1: fingerprint the clouds (guideline F5.2). ---------------------
  std::cout << "=== Network fingerprints (micro-benchmarks, F5.2) ===\n\n";
  core::TablePrinter table{{"Cloud", "Instance", "Base RTT [ms]", "Loaded RTT [ms]",
                            "Bandwidth [Gbps]", "Retrans rate", "QoS class"}};

  const cloud::CloudProfile profiles[] = {cloud::ec2_c5_xlarge(), cloud::gce_8core(),
                                          cloud::hpccloud_8core()};
  core::FingerprintOptions fp_options;
  fp_options.bucket_probe.max_probe_s = 1800.0;  // Keep the quickstart quick.

  std::vector<core::NetworkFingerprint> fingerprints;
  for (const auto& profile : profiles) {
    const auto fp = core::fingerprint_network(profile, fp_options, rng);
    table.add_row({fp.cloud, fp.instance_type, core::fmt(fp.base_latency_ms, 3),
                   core::fmt(fp.loaded_latency_ms, 3), core::fmt(fp.base_bandwidth_gbps),
                   core::fmt_pct(fp.retransmission_rate), to_string(fp.qos)});
    fingerprints.push_back(fp);
  }
  table.print(std::cout);

  const auto& ec2 = fingerprints.front();
  if (ec2.qos == core::QosClass::kTokenBucket) {
    std::cout << "\nEC2 token bucket identified: time-to-empty "
              << core::fmt(ec2.bucket.time_to_empty_s, 0) << " s, high "
              << core::fmt(ec2.bucket.high_rate_gbps, 1) << " Gbps, low "
              << core::fmt(ec2.bucket.low_rate_gbps, 1) << " Gbps, budget ~"
              << core::fmt(ec2.bucket.inferred_budget_gbit, 0) << " Gbit\n";
  }

  // ---- Step 2: a reproducible big-data experiment. ---------------------------
  std::cout << "\n=== TPC-DS Q65 on an emulated EC2 token-bucket network ===\n\n";

  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos prototype{bucket};

  auto cluster = bigdata::Cluster::uniform(12, 16, prototype, 10.0);
  bigdata::SparkEngine engine;

  core::LambdaEnvironment env{
      "TPC-DS Q65, 12-node Spark cluster, emulated c5.xlarge token bucket",
      /*fresh=*/[&cluster] { cluster.reset_network(); },
      /*rest=*/[&cluster](double s) { cluster.rest(s); },
      /*run_once=*/
      [&](stats::Rng& r) {
        return engine.run(bigdata::tpcds_query(65), cluster, r).runtime_s;
      }};

  core::ExperimentPlan plan;
  plan.repetitions = 15;
  plan.fresh_environment_each_run = true;

  core::ExperimentRunner runner{rng.split()};
  const auto result = runner.run(env, plan);
  core::print_experiment_report(std::cout, result);

  // ---- Step 3: audit the design against the paper's guidelines. --------------
  std::cout << "\n=== Guideline audit ===\n\n";
  core::ExperimentContext context;
  context.baseline = ec2;
  context.qos = ec2.qos;
  std::cout << core::render_findings(core::check_guidelines(result, context));

  // Contrast: the common-but-wrong design — 3 repetitions, reused VMs.
  std::cout << "=== The design the survey found in most papers ===\n\n";
  core::ExperimentPlan bad_plan;
  bad_plan.repetitions = 3;
  bad_plan.fresh_environment_each_run = false;
  cluster.reset_network();
  const auto bad_result = runner.run(env, bad_plan);
  core::print_experiment_report(std::cout, bad_result);
  std::cout << '\n'
            << core::render_findings(core::check_guidelines(bad_result, context));
  return 0;
}
