// Example: explore token-bucket dynamics interactively from the command
// line — the "what will this shaper do to my workload?" calculator.
//
// Usage: token_bucket_explorer [budget_gbit] [high_gbps] [low_gbps]
//                              [replenish_gbps] [burst_s] [idle_s]
// Defaults: the paper's c5.xlarge parameters under the 10-30 pattern.

#include <iostream>
#include <string>
#include <vector>

#include "cloud/tc_emulator.h"
#include "core/report.h"
#include "simnet/qos.h"
#include "simnet/token_bucket.h"

using namespace cloudrepro;

int main(int argc, char** argv) {
  const auto arg = [&](int i, double fallback) {
    return argc > i ? std::stod(argv[i]) : fallback;
  };
  simnet::TokenBucketConfig cfg;
  cfg.capacity_gbit = arg(1, 5400.0);
  cfg.initial_gbit = cfg.capacity_gbit;
  cfg.high_rate_gbps = arg(2, 10.0);
  cfg.low_rate_gbps = arg(3, 1.0);
  cfg.replenish_gbps = arg(4, 1.0);
  const double burst_s = arg(5, 10.0);
  const double idle_s = arg(6, 30.0);

  std::cout << "Token bucket: budget " << core::fmt(cfg.capacity_gbit, 0)
            << " Gbit, " << core::fmt(cfg.high_rate_gbps, 1) << " -> "
            << core::fmt(cfg.low_rate_gbps, 1) << " Gbps, replenish "
            << core::fmt(cfg.replenish_gbps, 2) << " Gbit/s\n\n";

  // Analytic facts an experimenter wants first.
  simnet::TokenBucket bucket{cfg};
  core::TablePrinter t{{"Question", "Answer"}};
  t.add_row({"Time to empty at full speed",
             core::fmt(bucket.time_until_change(cfg.high_rate_gbps), 0) + " s"});
  t.add_row({"Time to fully refill while resting",
             core::fmt(cfg.capacity_gbit / cfg.replenish_gbps, 0) + " s"});
  const double cycle_refill = idle_s * cfg.replenish_gbps;
  const double cycle_need = burst_s * (cfg.high_rate_gbps - cfg.replenish_gbps);
  t.add_row({"Tokens refilled per " + core::fmt(idle_s, 0) + "-s rest",
             core::fmt(cycle_refill, 1) + " Gbit"});
  t.add_row({"Tokens to run a full " + core::fmt(burst_s, 0) + "-s burst at high rate",
             core::fmt(cycle_need, 1) + " Gbit"});
  const double high_window =
      cycle_refill / std::max(cfg.high_rate_gbps - cfg.replenish_gbps, 1e-9);
  const double steady_avg =
      cycle_refill >= cycle_need
          ? cfg.high_rate_gbps
          : (high_window * cfg.high_rate_gbps + (burst_s - high_window) * cfg.low_rate_gbps) /
                burst_s;
  t.add_row({"Steady-state burst bandwidth under " + core::fmt(burst_s, 0) + "-" +
                 core::fmt(idle_s, 0) + " pattern",
             core::fmt(steady_avg, 2) + " Gbps"});
  t.add_row({"Long-run average (any pattern)",
             core::fmt(std::min(cfg.high_rate_gbps, cfg.replenish_gbps), 2) +
                 " Gbps (the replenish rate bounds sustained throughput)"});
  t.print(std::cout);

  // A 120-second simulated trace from a nearly-empty bucket (Figure 14).
  std::cout << "\nSimulated per-second bandwidth from an empty bucket ("
            << core::fmt(burst_s, 0) << "s on / " << core::fmt(idle_s, 0)
            << "s off):\n";
  auto empty_cfg = cfg;
  empty_cfg.initial_gbit = 0.0;
  simnet::TokenBucketQos qos{empty_cfg};
  const auto curve = cloud::onoff_bandwidth_curve(qos, burst_s, idle_s, 120.0);
  std::vector<double> series;
  for (const auto& p : curve) series.push_back(p.bandwidth_gbps);
  for (std::size_t i = 0; i < series.size(); i += 4) {
    std::cout << "  t=" << core::fmt(curve[i].t, 0) << "s  "
              << core::fmt(series[i], 2) << " Gbps\n";
  }
  return 0;
}
