// Scenario catalog + result cache tour: look up a catalog scenario, run it
// through the content-addressed ResultStore twice, and show that the second
// run executes nothing yet returns byte-identical summary bytes. The same
// flow is available from the shell as
//
//   ./build/bin/cloudrepro run ci-smoke
//
// which is how the figure-scale scenarios (fig13-confirm, fig17-tpcds-budget,
// ...) are meant to be driven.

#include <filesystem>
#include <iostream>

#include "obs/metrics.h"
#include "scenario/registry.h"
#include "scenario/result_store.h"
#include "scenario/runner.h"

using namespace cloudrepro;

int main() {
  const auto& registry = scenario::ScenarioRegistry::builtin();

  std::cout << "Catalog (" << registry.scenarios().size() << " scenarios):\n";
  for (const auto& spec : registry.scenarios()) {
    std::cout << "  " << spec.name << " [" << spec.paper_ref << "] — "
              << spec.cell_count() << " cells x " << spec.repetitions
              << " reps\n";
  }

  const auto& spec = registry.at("ci-smoke");
  std::cout << "\nScenario " << spec.name << "\n  content hash "
            << spec.content_hash() << "\n  (rename-stable: cosmetic fields and"
            << " the seed are not part of the hash)\n";

  const auto cache_dir =
      std::filesystem::temp_directory_path() / "cloudrepro-example-cache";
  std::filesystem::remove_all(cache_dir);
  obs::MetricsRegistry metrics;
  scenario::ResultStore store{cache_dir, &metrics};

  scenario::RunOptions options;
  options.store = &store;
  options.threads = 0;  // All cores; bit-identical to serial.

  const auto cold = scenario::run_scenario(spec, options);
  std::cout << "\nCold run:  " << scenario::ResultStore::to_string(cold.hit_state)
            << ", executed " << cold.executed_measurements << "/"
            << cold.total_measurements << "\n";

  const auto warm = scenario::run_scenario(spec, options);
  std::cout << "Warm run:  " << scenario::ResultStore::to_string(warm.hit_state)
            << ", executed " << warm.executed_measurements
            << ", summary bytes "
            << (warm.summary == cold.summary ? "IDENTICAL" : "DIFFERENT")
            << "\n";

  std::cout << "Cache counters: hit="
            << metrics.counter_value("scenario.cache.hit")
            << " partial=" << metrics.counter_value("scenario.cache.partial")
            << " miss=" << metrics.counter_value("scenario.cache.miss") << "\n";

  std::cout << "\nSummary (canonical JSON):\n" << cold.summary << "\n";
  std::filesystem::remove_all(cache_dir);
  return warm.summary == cold.summary ? 0 : 1;
}
