#include "cloud/cpu_credits.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cloudrepro::cloud {
namespace {

CpuCreditConfig t3_like() {
  CpuCreditConfig cfg;
  cfg.baseline_fraction = 0.40;
  cfg.vcpus = 4;
  cfg.max_credits = 2304.0;
  cfg.initial_credits = 2304.0;
  return cfg;
}

TEST(CpuCreditTest, FullSpeedWhileCreditsLast) {
  CpuCreditBucket b{t3_like()};
  EXPECT_DOUBLE_EQ(b.speed_factor(), 1.0);
  EXPECT_FALSE(b.depleted());
}

TEST(CpuCreditTest, EarningRateMatchesBaseline) {
  const auto cfg = t3_like();
  // baseline * vcpus * 60 = 0.4 * 4 * 60 = 96 credits/hour.
  EXPECT_DOUBLE_EQ(cfg.credits_per_hour(), 96.0);
}

TEST(CpuCreditTest, BurnRateAtFullUtilization) {
  CpuCreditBucket b{t3_like()};
  // Spend 4/60 per second, earn 96/3600 per second -> net 0.04 credits/s.
  b.advance(100.0, 1.0);
  EXPECT_NEAR(b.credits(), 2304.0 - 4.0, 1e-9);
}

TEST(CpuCreditTest, DepletionDropsToBaseline) {
  auto cfg = t3_like();
  cfg.initial_credits = 1.0;
  CpuCreditBucket b{cfg};
  b.advance(30.0, 1.0);  // Burns 30 * 0.04 = 1.2 > 1 credit.
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.speed_factor(), 0.40);
}

TEST(CpuCreditTest, DepletedAtBaselineUtilizationIsPinned) {
  // The CPU analogue of "capped-rate transmission keeps the bucket empty".
  auto cfg = t3_like();
  cfg.initial_credits = 0.0;
  CpuCreditBucket b{cfg};
  b.advance(3600.0, 1.0);  // Scheduler caps effective utilization at 0.4.
  EXPECT_DOUBLE_EQ(b.credits(), 0.0);
}

TEST(CpuCreditTest, RestingEarnsCredits) {
  auto cfg = t3_like();
  cfg.initial_credits = 0.0;
  CpuCreditBucket b{cfg};
  b.advance(3600.0, 0.0);
  EXPECT_NEAR(b.credits(), 96.0, 1e-9);
  EXPECT_DOUBLE_EQ(b.speed_factor(), 1.0);
}

TEST(CpuCreditTest, CreditsCappedAtMax) {
  CpuCreditBucket b{t3_like()};
  b.advance(1e6, 0.0);
  EXPECT_DOUBLE_EQ(b.credits(), 2304.0);
}

TEST(CpuCreditTest, TimeUntilDepletion) {
  auto cfg = t3_like();
  cfg.initial_credits = 4.0;
  CpuCreditBucket b{cfg};
  // Net burn at u=1 is 0.04/s -> 100 s.
  EXPECT_NEAR(b.time_until_change(1.0), 100.0, 1e-9);
  EXPECT_TRUE(std::isinf(b.time_until_change(0.2)));  // Below baseline.
}

TEST(CpuCreditTest, RunComputeFullSpeed) {
  CpuCreditBucket b{t3_like()};
  EXPECT_NEAR(b.run_compute(60.0), 60.0, 1e-9);
}

TEST(CpuCreditTest, RunComputeDepletedRunsAtBaseline) {
  auto cfg = t3_like();
  cfg.initial_credits = 0.0;
  CpuCreditBucket b{cfg};
  // 40 full-speed seconds at 0.4 speed take 100 wall seconds.
  EXPECT_NEAR(b.run_compute(40.0), 100.0, 1e-9);
}

TEST(CpuCreditTest, RunComputeStretchesAcrossDepletion) {
  auto cfg = t3_like();
  cfg.initial_credits = 0.4;  // 10 s of full-speed burn (0.04/s).
  CpuCreditBucket b{cfg};
  // 20 nominal seconds: 10 at speed 1, remaining 10 at 0.4 -> 25 s.
  EXPECT_NEAR(b.run_compute(20.0), 10.0 + 25.0, 1e-6);
}

TEST(CpuCreditTest, RunComputeZeroOrNegative) {
  CpuCreditBucket b{t3_like()};
  EXPECT_DOUBLE_EQ(b.run_compute(0.0), 0.0);
  EXPECT_DOUBLE_EQ(b.run_compute(-5.0), 0.0);
}

TEST(CpuCreditTest, ResetAndSetCredits) {
  CpuCreditBucket b{t3_like()};
  b.advance(1000.0, 1.0);
  b.reset();
  EXPECT_DOUBLE_EQ(b.credits(), 2304.0);
  b.set_credits(10.0);
  EXPECT_DOUBLE_EQ(b.credits(), 10.0);
  b.set_credits(1e9);
  EXPECT_DOUBLE_EQ(b.credits(), 2304.0);
  b.set_credits(-5.0);
  EXPECT_DOUBLE_EQ(b.credits(), 0.0);
}

TEST(CpuCreditTest, ConfigValidation) {
  auto cfg = t3_like();
  cfg.baseline_fraction = 0.0;
  EXPECT_THROW(CpuCreditBucket{cfg}, std::invalid_argument);
  cfg = t3_like();
  cfg.baseline_fraction = 1.5;
  EXPECT_THROW(CpuCreditBucket{cfg}, std::invalid_argument);
  cfg = t3_like();
  cfg.initial_credits = cfg.max_credits + 1.0;
  EXPECT_THROW(CpuCreditBucket{cfg}, std::invalid_argument);
  cfg = t3_like();
  cfg.vcpus = 0;
  EXPECT_THROW(CpuCreditBucket{cfg}, std::invalid_argument);
}

// Work conservation sweep: run_compute always completes the nominal work,
// and wall time is bounded by nominal/baseline.
class CpuCreditWorkTest : public ::testing::TestWithParam<double> {};

TEST_P(CpuCreditWorkTest, WallTimeBetweenFullSpeedAndBaseline) {
  auto cfg = t3_like();
  cfg.initial_credits = GetParam();
  CpuCreditBucket b{cfg};
  const double nominal = 500.0;
  const double wall = b.run_compute(nominal);
  EXPECT_GE(wall, nominal - 1e-9);
  EXPECT_LE(wall, nominal / cfg.baseline_fraction + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(InitialCredits, CpuCreditWorkTest,
                         ::testing::Values(0.0, 1.0, 10.0, 100.0, 2304.0));

}  // namespace
}  // namespace cloudrepro::cloud
