#include "cloud/instances.h"

#include <gtest/gtest.h>

#include <set>

#include "simnet/qos.h"

namespace cloudrepro::cloud {
namespace {

TEST(InstanceCatalogTest, ContainsTable3Starred) {
  EXPECT_NO_THROW(find_instance(Provider::kAmazonEc2, "c5.xlarge"));
  EXPECT_NO_THROW(find_instance(Provider::kGoogleCloud, "8-core"));
  EXPECT_NO_THROW(find_instance(Provider::kHpcCloud, "8-core"));
}

TEST(InstanceCatalogTest, ContainsFigure11Family) {
  for (const char* name : {"c5.large", "c5.xlarge", "c5.2xlarge", "c5.4xlarge"}) {
    EXPECT_NO_THROW(find_instance(Provider::kAmazonEc2, name)) << name;
  }
}

TEST(InstanceCatalogTest, GceQosIsTwoGbpsPerCore) {
  for (const char* name : {"1-core", "2-core", "4-core", "8-core"}) {
    const auto& t = find_instance(Provider::kGoogleCloud, name);
    EXPECT_DOUBLE_EQ(t.advertised_qos_gbps, 2.0 * t.cores) << name;
  }
}

TEST(InstanceCatalogTest, HpcCloudHasNoAdvertisedQos) {
  const auto& t = find_instance(Provider::kHpcCloud, "8-core");
  EXPECT_DOUBLE_EQ(t.advertised_qos_gbps, 0.0);
  EXPECT_DOUBLE_EQ(t.hourly_cost_usd, 0.0);
}

TEST(InstanceCatalogTest, UnknownInstanceThrows) {
  EXPECT_THROW(find_instance(Provider::kAmazonEc2, "x1e.32xlarge"), std::out_of_range);
}

TEST(InstanceCatalogTest, ProviderNames) {
  EXPECT_EQ(to_string(Provider::kAmazonEc2), "Amazon EC2");
  EXPECT_EQ(to_string(Provider::kGoogleCloud), "Google Cloud");
  EXPECT_EQ(to_string(Provider::kHpcCloud), "HPCCloud");
}

TEST(CloudProfileTest, Ec2NominalBucketMatchesPaper) {
  const auto bucket = ec2_c5_xlarge().nominal_bucket();
  ASSERT_TRUE(bucket.has_value());
  EXPECT_DOUBLE_EQ(bucket->high_rate_gbps, 10.0);
  EXPECT_DOUBLE_EQ(bucket->low_rate_gbps, 1.0);
  EXPECT_DOUBLE_EQ(bucket->replenish_gbps, 1.0);
  // ~10 minutes of continuous transfer to empty (Section 3.3).
  const double tte = bucket->capacity_gbit /
                     (bucket->high_rate_gbps - bucket->replenish_gbps);
  EXPECT_NEAR(tte, 600.0, 60.0);
}

TEST(CloudProfileTest, BucketScalesWithInstanceSize) {
  // Figure 11: bigger c5 machines get bigger buckets and higher low rates.
  const char* names[] = {"c5.large", "c5.xlarge", "c5.2xlarge", "c5.4xlarge"};
  double prev_capacity = 0.0;
  double prev_low = 0.0;
  for (const char* name : names) {
    CloudProfile profile{find_instance(Provider::kAmazonEc2, name)};
    const auto b = profile.nominal_bucket();
    ASSERT_TRUE(b.has_value());
    EXPECT_GT(b->capacity_gbit, prev_capacity) << name;
    EXPECT_GT(b->low_rate_gbps, prev_low) << name;
    prev_capacity = b->capacity_gbit;
    prev_low = b->low_rate_gbps;
  }
}

TEST(CloudProfileTest, NonEc2HasNoBucket) {
  EXPECT_FALSE(gce_8core().nominal_bucket().has_value());
  EXPECT_FALSE(hpccloud_8core().nominal_bucket().has_value());
}

TEST(CloudProfileTest, Ec2IncarnationsVary) {
  // Figure 11: "these parameters are not always consistent for multiple
  // incarnations of the same instance type".
  stats::Rng rng{1};
  const auto profile = ec2_c5_xlarge();
  std::set<long long> capacities;
  for (int i = 0; i < 10; ++i) {
    const auto vm = profile.create_vm(rng);
    ASSERT_TRUE(vm.bucket.has_value());
    capacities.insert(static_cast<long long>(vm.bucket->capacity_gbit));
  }
  EXPECT_GT(capacities.size(), 5u);
}

TEST(CloudProfileTest, Ec2IncarnationHasTokenBucketPolicy) {
  stats::Rng rng{2};
  const auto vm = ec2_c5_xlarge().create_vm(rng);
  ASSERT_NE(vm.egress, nullptr);
  EXPECT_NE(dynamic_cast<simnet::TokenBucketQos*>(vm.egress.get()), nullptr);
  EXPECT_TRUE(vm.egress->budget_gbit().has_value());
  EXPECT_DOUBLE_EQ(vm.vnic.mtu_bytes, 9000.0);   // Jumbo frames.
  EXPECT_DOUBLE_EQ(vm.vnic.tso_max_bytes, 0.0);  // No TSO.
}

TEST(CloudProfileTest, GceIncarnationUsesPerCoreQosAndTso) {
  stats::Rng rng{3};
  const auto vm = gce_8core().create_vm(rng);
  EXPECT_NE(dynamic_cast<simnet::PerCoreQos*>(vm.egress.get()), nullptr);
  EXPECT_DOUBLE_EQ(vm.vnic.mtu_bytes, 1500.0);       // Standard Ethernet MTU.
  EXPECT_DOUBLE_EQ(vm.vnic.tso_max_bytes, 65536.0);  // TSO to 64K.
  EXPECT_DOUBLE_EQ(vm.line_rate_gbps, 16.0);
}

TEST(CloudProfileTest, HpcCloudIncarnationIsStochastic) {
  stats::Rng rng{4};
  const auto vm = hpccloud_8core().create_vm(rng);
  EXPECT_NE(dynamic_cast<simnet::StochasticQos*>(vm.egress.get()), nullptr);
  EXPECT_FALSE(vm.egress->budget_gbit().has_value());
}

TEST(CloudProfileTest, HpcCloudRatesWithinMeasuredRange) {
  // Figure 4: bandwidth ranges from 7.7 to 10.4 Gbps.
  stats::Rng rng{5};
  auto vm = hpccloud_8core().create_vm(rng);
  for (int i = 0; i < 500; ++i) {
    const double r = vm.egress->allowed_rate();
    EXPECT_GE(r, 7.7);
    EXPECT_LE(r, 10.4);
    vm.egress->advance(10.0, r);
  }
}

TEST(CloudProfileTest, PostAugust2019SomeNicsCappedAt5) {
  // F5.2's policy-drift example.
  IncarnationOptions options;
  options.era = PolicyEra::kPostAugust2019;
  options.capped_nic_probability = 0.5;
  const auto profile = ec2_c5_xlarge(options);
  stats::Rng rng{6};
  int capped = 0;
  constexpr int kVms = 200;
  for (int i = 0; i < kVms; ++i) {
    const auto vm = profile.create_vm(rng);
    if (vm.bucket->high_rate_gbps <= 5.0) ++capped;
  }
  EXPECT_GT(capped, kVms / 4);
  EXPECT_LT(capped, 3 * kVms / 4);  // "though not consistently".
}

TEST(CloudProfileTest, PreAugust2019NeverCapped) {
  const auto profile = ec2_c5_xlarge();
  stats::Rng rng{7};
  for (int i = 0; i < 50; ++i) {
    const auto vm = profile.create_vm(rng);
    EXPECT_GT(vm.bucket->high_rate_gbps, 8.0);
  }
}

}  // namespace
}  // namespace cloudrepro::cloud
