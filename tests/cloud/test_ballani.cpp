#include "cloud/ballani.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.h"

namespace cloudrepro::cloud {
namespace {

TEST(BallaniTest, EightDistributionsLabelledAThroughH) {
  const auto dists = ballani_distributions();
  ASSERT_EQ(dists.size(), 8u);
  const char* expected[] = {"A", "B", "C", "D", "E", "F", "G", "H"};
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(dists[i].label, expected[i]);
}

TEST(BallaniTest, PercentilesAreMonotone) {
  for (const auto& d : ballani_distributions()) {
    EXPECT_LT(d.p1, d.p25) << d.label;
    EXPECT_LT(d.p25, d.p50) << d.label;
    EXPECT_LT(d.p50, d.p75) << d.label;
    EXPECT_LT(d.p75, d.p99) << d.label;
  }
}

TEST(BallaniTest, ValuesAreSubGigabit) {
  // Figure 2's axis runs 0..1000 Mb/s — these are 2011-era cloud networks.
  for (const auto& d : ballani_distributions()) {
    EXPECT_GT(d.p1, 0.0);
    EXPECT_LE(d.p99, 1000.0);
  }
}

TEST(BallaniTest, QuantileInterpolation) {
  const auto& d = ballani_distribution("A");
  EXPECT_DOUBLE_EQ(d.quantile_mbps(0.01), d.p1);
  EXPECT_DOUBLE_EQ(d.quantile_mbps(0.50), d.p50);
  EXPECT_DOUBLE_EQ(d.quantile_mbps(0.99), d.p99);
  // Midway between p25 and p50 quantiles.
  const double mid = d.quantile_mbps(0.375);
  EXPECT_GT(mid, d.p25);
  EXPECT_LT(mid, d.p50);
}

TEST(BallaniTest, QuantileClampsOutsideKnownRange) {
  const auto& d = ballani_distribution("B");
  EXPECT_DOUBLE_EQ(d.quantile_mbps(0.0), d.p1);
  EXPECT_DOUBLE_EQ(d.quantile_mbps(1.0), d.p99);
}

TEST(BallaniTest, LookupThrowsOnUnknownLabel) {
  EXPECT_THROW(ballani_distribution("Z"), std::out_of_range);
}

TEST(BallaniTest, SamplesReproduceQuartiles) {
  // Sampling should reproduce the published quartiles (the whole premise of
  // the paper's Figure 3 emulation).
  stats::Rng rng{42};
  const auto& d = ballani_distribution("C");
  std::vector<double> xs(20000);
  for (auto& x : xs) x = d.sample_mbps(rng);
  EXPECT_NEAR(stats::quantile(xs, 0.25), d.p25, 0.05 * d.p25);
  EXPECT_NEAR(stats::quantile(xs, 0.50), d.p50, 0.05 * d.p50);
  EXPECT_NEAR(stats::quantile(xs, 0.75), d.p75, 0.05 * d.p75);
}

TEST(BallaniTest, SamplesBoundedByExtremePercentiles) {
  stats::Rng rng{43};
  for (const auto& d : ballani_distributions()) {
    for (int i = 0; i < 1000; ++i) {
      const double v = d.sample_mbps(rng);
      EXPECT_GE(v, d.p1) << d.label;
      EXPECT_LE(v, d.p99) << d.label;
    }
  }
}

TEST(BallaniTest, DistributionsDifferAcrossClouds) {
  // The clouds must be distinguishable — otherwise Figure 3's per-cloud
  // medians would coincide.
  const auto dists = ballani_distributions();
  for (std::size_t i = 0; i < dists.size(); ++i) {
    for (std::size_t j = i + 1; j < dists.size(); ++j) {
      EXPECT_NE(dists[i].p50, dists[j].p50)
          << dists[i].label << " vs " << dists[j].label;
    }
  }
}

}  // namespace
}  // namespace cloudrepro::cloud
