#include "cloud/tc_emulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "simnet/qos.h"

namespace cloudrepro::cloud {
namespace {

TcEmulatorConfig small_bucket() {
  TcEmulatorConfig cfg;
  cfg.bucket.capacity_gbit = 30.0;
  cfg.bucket.initial_gbit = 30.0;
  cfg.bucket.high_rate_gbps = 10.0;
  cfg.bucket.low_rate_gbps = 1.0;
  cfg.bucket.replenish_gbps = 1.0;
  cfg.update_interval_s = 1.0;
  return cfg;
}

TEST(TcEmulatorTest, StartsAtHighRate) {
  TcEmulator emu{small_bucket()};
  EXPECT_DOUBLE_EQ(emu.allowed_rate(), 10.0);
}

TEST(TcEmulatorTest, RateChangesOnlyAtUpdateTicks) {
  TcEmulator emu{small_bucket()};
  // Drain the bucket in 3.4 s at net 9 Gbit/s; the throttle should only be
  // visible at the next whole-second reprogramming.
  emu.advance(3.4, 10.0);
  EXPECT_TRUE(emu.bucket().in_low_mode());
  EXPECT_DOUBLE_EQ(emu.allowed_rate(), 10.0);  // Controller hasn't run yet.
  emu.advance(0.6, 10.0);                      // Crosses the 4.0 s tick.
  EXPECT_DOUBLE_EQ(emu.allowed_rate(), 1.0);
}

TEST(TcEmulatorTest, ResetRestores) {
  TcEmulator emu{small_bucket()};
  emu.advance(10.0, 10.0);
  emu.reset();
  EXPECT_DOUBLE_EQ(emu.allowed_rate(), 10.0);
  EXPECT_DOUBLE_EQ(emu.bucket().budget(), 30.0);
}

TEST(TcEmulatorTest, BudgetExposed) {
  TcEmulator emu{small_bucket()};
  ASSERT_TRUE(emu.budget_gbit().has_value());
  EXPECT_DOUBLE_EQ(*emu.budget_gbit(), 30.0);
}

TEST(TcEmulatorTest, RejectsBadUpdateInterval) {
  auto cfg = small_bucket();
  cfg.update_interval_s = 0.0;
  EXPECT_THROW(TcEmulator{cfg}, std::invalid_argument);
}

TEST(TcEmulatorTest, TimeUntilChangeBoundedByTick) {
  TcEmulator emu{small_bucket()};
  EXPECT_LE(emu.time_until_change(10.0), 1.0);
  EXPECT_GT(emu.time_until_change(10.0), 0.0);
}

TEST(OnoffCurveTest, ReproducesFigure14Shape) {
  // Figure 14 (10-30 regime, near-empty bucket): each burst starts at
  // ~10 Gbps and collapses to ~1 Gbps once the rest-period refill is spent.
  auto cfg = small_bucket();
  cfg.bucket.initial_gbit = 0.0;
  TcEmulator emu{cfg};
  const auto curve = onoff_bandwidth_curve(emu, 10.0, 30.0, 90.0);
  ASSERT_GE(curve.size(), 80u);

  // Seconds 0-9 are the first burst: the bucket starts empty, so it is
  // capped almost immediately; seconds 40-49 are the second burst, which
  // starts fast on the 30-Gbit refill and collapses mid-burst.
  const auto& second_burst_start = curve[40];
  const auto& second_burst_end = curve[48];
  EXPECT_GT(second_burst_start.bandwidth_gbps, 7.0);
  EXPECT_LT(second_burst_end.bandwidth_gbps, 2.0);

  // Idle seconds carry no bandwidth.
  EXPECT_NEAR(curve[20].bandwidth_gbps, 0.0, 1e-9);
}

TEST(OnoffCurveTest, EmulatorTracksRealShaper) {
  // The validation the paper runs in Figure 14: the emulated curve must
  // track the "real" (continuous) token-bucket closely.
  auto cfg = small_bucket();
  cfg.bucket.initial_gbit = 0.0;

  TcEmulator emulator{cfg};
  simnet::TokenBucketQos real{cfg.bucket};

  const auto emulated = onoff_bandwidth_curve(emulator, 10.0, 30.0, 200.0);
  const auto reference = onoff_bandwidth_curve(real, 10.0, 30.0, 200.0);

  EXPECT_GT(curve_correlation(emulated, reference), 0.95);
  EXPECT_LT(curve_rmse(emulated, reference), 1.5);
}

TEST(OnoffCurveTest, FiveThirtyPatternAlsoMatches) {
  auto cfg = small_bucket();
  cfg.bucket.initial_gbit = 0.0;
  TcEmulator emulator{cfg};
  simnet::TokenBucketQos real{cfg.bucket};
  const auto emulated = onoff_bandwidth_curve(emulator, 5.0, 30.0, 200.0);
  const auto reference = onoff_bandwidth_curve(real, 5.0, 30.0, 200.0);
  EXPECT_GT(curve_correlation(emulated, reference), 0.93);
}

TEST(OnoffCurveTest, Validation) {
  TcEmulator emu{small_bucket()};
  EXPECT_THROW(onoff_bandwidth_curve(emu, 0.0, 30.0, 100.0), std::invalid_argument);
  EXPECT_THROW(onoff_bandwidth_curve(emu, 10.0, -1.0, 100.0), std::invalid_argument);
  EXPECT_THROW(onoff_bandwidth_curve(emu, 10.0, 30.0, 0.0), std::invalid_argument);
}

TEST(CurveMetricsTest, IdenticalCurvesPerfectScore) {
  const std::vector<CurvePoint> a{{1.0, 5.0}, {2.0, 7.0}, {3.0, 2.0}};
  EXPECT_DOUBLE_EQ(curve_rmse(a, a), 0.0);
  EXPECT_NEAR(curve_correlation(a, a), 1.0, 1e-12);
}

TEST(CurveMetricsTest, EmptyAndDegenerateCurves) {
  const std::vector<CurvePoint> empty;
  const std::vector<CurvePoint> flat{{1.0, 5.0}, {2.0, 5.0}};
  EXPECT_DOUBLE_EQ(curve_rmse(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(curve_correlation(flat, flat), 0.0);  // Zero variance.
}

}  // namespace
}  // namespace cloudrepro::cloud
