#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "faults/injector.h"

namespace cloudrepro::faults {
namespace {

TEST(FaultPlanTest, BuildersProduceSortedSchedule) {
  FaultPlan plan;
  plan.crash(300.0, 2)
      .slow_down(10.0, 0, 60.0, 0.5)
      .steal_tokens(150.0, 1, 400.0)
      .flap_link(10.0, 3, 5.0, 0.1);

  ASSERT_EQ(plan.size(), 4u);
  const auto& ev = plan.events();
  EXPECT_DOUBLE_EQ(ev[0].at_s, 10.0);
  EXPECT_EQ(ev[0].kind, FaultKind::kTransientSlowdown);
  // Ties keep insertion order (stable): the slowdown was added before the flap.
  EXPECT_DOUBLE_EQ(ev[1].at_s, 10.0);
  EXPECT_EQ(ev[1].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(ev[2].kind, FaultKind::kTokenTheft);
  EXPECT_EQ(ev[3].kind, FaultKind::kNodeCrash);
}

TEST(FaultPlanTest, ValidationRejectsBadEvents) {
  FaultPlan plan;
  EXPECT_THROW(plan.crash(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(plan.slow_down(0.0, 0, -5.0, 0.5), std::invalid_argument);
  EXPECT_THROW(plan.slow_down(0.0, 0, 5.0, 0.0), std::invalid_argument);
  EXPECT_THROW(plan.slow_down(0.0, 0, 5.0, 1.5), std::invalid_argument);
  EXPECT_THROW(plan.flap_link(0.0, 0, 5.0, 1.0), std::invalid_argument);
  EXPECT_THROW(plan.flap_link(0.0, 0, 5.0, -0.1), std::invalid_argument);
  EXPECT_THROW(plan.steal_tokens(0.0, 0, -1.0), std::invalid_argument);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanTest, EventsForNodeFiltersAndKeepsOrder) {
  FaultPlan plan;
  plan.crash(100.0, 1).slow_down(5.0, 1, 10.0, 0.5).steal_tokens(50.0, 0, 10.0);
  const auto node1 = plan.events_for_node(1);
  ASSERT_EQ(node1.size(), 2u);
  EXPECT_EQ(node1[0].kind, FaultKind::kTransientSlowdown);
  EXPECT_EQ(node1[1].kind, FaultKind::kNodeCrash);
  EXPECT_TRUE(plan.events_for_node(7).empty());
}

TEST(FaultPlanTest, DescribeMentionsEveryEvent) {
  FaultPlan plan;
  plan.crash(100.0, 1).revoke(30.0, 2, 120.0);
  const auto text = plan.describe();
  EXPECT_NE(text.find("crash"), std::string::npos);
  EXPECT_NE(text.find("revocation"), std::string::npos);
}

TEST(FaultPlanTest, SampleIsDeterministicPerSeed) {
  FaultPlanConfig cfg;
  cfg.horizon_s = 7200.0;
  cfg.crash_rate_per_hour = 0.5;
  cfg.slowdown_rate_per_hour = 2.0;
  cfg.flap_rate_per_hour = 1.0;
  cfg.theft_rate_per_hour = 3.0;
  cfg.revocation_rate_per_hour = 0.25;

  stats::Rng rng_a{42};
  stats::Rng rng_b{42};
  const auto plan_a = FaultPlan::sample(cfg, 8, rng_a);
  const auto plan_b = FaultPlan::sample(cfg, 8, rng_b);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  for (std::size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a.events()[i].kind, plan_b.events()[i].kind);
    EXPECT_DOUBLE_EQ(plan_a.events()[i].at_s, plan_b.events()[i].at_s);
    EXPECT_EQ(plan_a.events()[i].node, plan_b.events()[i].node);
    EXPECT_DOUBLE_EQ(plan_a.events()[i].duration_s, plan_b.events()[i].duration_s);
    EXPECT_DOUBLE_EQ(plan_a.events()[i].magnitude, plan_b.events()[i].magnitude);
  }

  stats::Rng rng_c{43};
  const auto plan_c = FaultPlan::sample(cfg, 8, rng_c);
  bool differs = plan_c.size() != plan_a.size();
  for (std::size_t i = 0; !differs && i < plan_a.size(); ++i) {
    differs = plan_a.events()[i].at_s != plan_c.events()[i].at_s;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, SampleRespectsHorizonAndRanges) {
  FaultPlanConfig cfg;
  cfg.horizon_s = 3600.0;
  cfg.slowdown_rate_per_hour = 50.0;
  cfg.flap_rate_per_hour = 50.0;
  stats::Rng rng{7};
  const auto plan = FaultPlan::sample(cfg, 4, rng);
  EXPECT_GT(plan.size(), 0u);
  for (const auto& ev : plan.events()) {
    EXPECT_GE(ev.at_s, 0.0);
    EXPECT_LT(ev.at_s, cfg.horizon_s);
    EXPECT_LT(ev.node, 4u);
    if (ev.kind == FaultKind::kTransientSlowdown) {
      EXPECT_GE(ev.magnitude, cfg.slowdown_factor_lo);
      EXPECT_LE(ev.magnitude, cfg.slowdown_factor_hi);
    } else if (ev.kind == FaultKind::kLinkFlap) {
      EXPECT_GE(ev.magnitude, cfg.flap_loss_lo);
      EXPECT_LE(ev.magnitude, cfg.flap_loss_hi);
    }
  }
}

TEST(FaultPlanTest, ZeroRatesSampleEmptyPlan) {
  stats::Rng rng{1};
  const auto plan = FaultPlan::sample(FaultPlanConfig{}, 4, rng);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultInjectorTest, PopsInTimeOrderWithStableTies) {
  FaultPlan plan;
  plan.crash(20.0, 0).steal_tokens(5.0, 1, 10.0);
  FaultInjector inj{plan};
  EXPECT_EQ(inj.pending(), 2u);
  EXPECT_DOUBLE_EQ(inj.next_time(), 5.0);

  // Synthetic follow-up scheduled between the two plan events.
  inj.schedule({FaultKind::kTransientSlowdown, 10.0, 2, 0.0, 1.0});
  // Same-time events pop in scheduling order.
  inj.schedule({FaultKind::kLinkFlap, 10.0, 3, 0.0, 0.0});

  EXPECT_EQ(inj.pop().kind, FaultKind::kTokenTheft);
  EXPECT_EQ(inj.pop().kind, FaultKind::kTransientSlowdown);
  EXPECT_EQ(inj.pop().kind, FaultKind::kLinkFlap);
  EXPECT_EQ(inj.pop().kind, FaultKind::kNodeCrash);
  EXPECT_TRUE(inj.empty());
  EXPECT_TRUE(std::isinf(inj.next_time()));
}

TEST(FaultInjectorTest, EmptyInjectorReportsInfiniteNextTime) {
  FaultInjector inj;
  EXPECT_TRUE(inj.empty());
  EXPECT_EQ(inj.next_time(), std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace cloudrepro::faults
