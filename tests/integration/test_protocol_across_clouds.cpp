// Parameterized integration: the full reproducibility protocol succeeds on
// every studied cloud when the design is sound — F4.1's claim that with
// enough repetitions and sound statistics, reproducible experiments are
// achievable everywhere (provided hidden state is reset).

#include <gtest/gtest.h>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/protocol.h"

namespace cloudrepro {
namespace {

struct CloudCase {
  const char* name;
  cloud::Provider provider;
  const char* instance;
  core::QosClass expected_qos;
};

class ProtocolAcrossCloudsTest : public ::testing::TestWithParam<CloudCase> {};

TEST_P(ProtocolAcrossCloudsTest, SoundDesignIsReproducibleEverywhere) {
  const auto param = GetParam();
  cloud::CloudProfile profile{cloud::find_instance(param.provider, param.instance)};
  stats::Rng rng{99};

  auto cluster = bigdata::Cluster::from_cloud(12, 16, profile, rng);
  bigdata::SparkEngine engine;
  core::LambdaEnvironment env{
      std::string{"KMeans on "} + param.name,
      [&, &rng2 = rng] {
        cluster = bigdata::Cluster::from_cloud(12, 16, profile, rng2);
      },
      [&](double s) { cluster.rest(s); },
      [&](stats::Rng& r) {
        return engine.run(bigdata::hibench_kmeans(), cluster, r).runtime_s;
      }};

  core::ProtocolOptions options;
  options.plan.repetitions = 15;
  options.plan.fresh_environment_each_run = true;
  options.fingerprint.bandwidth_probes = 2;
  options.fingerprint.bandwidth_probe_s = 120.0;
  options.fingerprint.latency_probe_s = 1.0;
  options.fingerprint.bucket_probe.max_probe_s = 1800.0;
  options.fingerprint.bucket_probe.rest_s = 120.0;

  const auto report = core::run_protocol(profile, env, options, rng);
  EXPECT_EQ(report.baseline.qos, param.expected_qos) << param.name;
  EXPECT_TRUE(report.result.converged()) << param.name;
  EXPECT_TRUE(report.reproducible) << param.name;
  EXPECT_FALSE(report.confirm.ci_widened) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    StarredClouds, ProtocolAcrossCloudsTest,
    ::testing::Values(
        CloudCase{"Amazon EC2 c5.xlarge", cloud::Provider::kAmazonEc2, "c5.xlarge",
                  core::QosClass::kTokenBucket},
        CloudCase{"Google Cloud 8-core", cloud::Provider::kGoogleCloud, "8-core",
                  core::QosClass::kRateCap},
        CloudCase{"HPCCloud 8-core", cloud::Provider::kHpcCloud, "8-core",
                  core::QosClass::kNone}),
    [](const ::testing::TestParamInfo<CloudCase>& info) {
      std::string name = info.param.instance;
      for (auto& c : name) {
        if (c == '.' || c == '-') c = '_';
      }
      return to_string(info.param.provider).substr(0, 1) + name;
    });

}  // namespace
}  // namespace cloudrepro
