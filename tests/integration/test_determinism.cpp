// Determinism guardrails: everything in this repository is reproducible
// run-to-run given the same seed — the repository practices what the paper
// preaches about reproducibility.

#include <gtest/gtest.h>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "measure/rtt.h"
#include "survey/corpus.h"

namespace cloudrepro {
namespace {

TEST(DeterminismTest, BandwidthProbeIsSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    stats::Rng rng{seed};
    measure::BandwidthProbeOptions probe;
    probe.duration_s = 600.0;
    return measure::run_bandwidth_probe(cloud::ec2_c5_xlarge(),
                                        measure::full_speed(), probe, rng);
  };
  const auto a = run(42);
  const auto b = run(42);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].bandwidth_gbps, b.samples[i].bandwidth_gbps);
    EXPECT_DOUBLE_EQ(a.samples[i].retransmissions, b.samples[i].retransmissions);
  }
  const auto c = run(43);
  bool identical = a.samples.size() == c.samples.size();
  if (identical) {
    identical = false;
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
      if (a.samples[i].retransmissions != c.samples[i].retransmissions ||
          a.samples[i].bandwidth_gbps != c.samples[i].bandwidth_gbps) {
        break;
      }
      if (i + 1 == a.samples.size()) identical = true;
    }
  }
  EXPECT_FALSE(identical);
}

TEST(DeterminismTest, RttProbeIsSeedDeterministic) {
  const auto run = [] {
    stats::Rng rng{7};
    measure::RttProbeOptions opt;
    opt.duration_s = 1.0;
    return measure::run_rtt_probe(cloud::gce_8core(), opt, rng);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.capture.segments_sent, b.capture.segments_sent);
  EXPECT_EQ(a.capture.retransmissions, b.capture.retransmissions);
  EXPECT_DOUBLE_EQ(a.analysis.median_rtt_ms, b.analysis.median_rtt_ms);
}

TEST(DeterminismTest, EngineRunIsSeedDeterministic) {
  const auto run = [] {
    stats::Rng rng{11};
    auto cluster =
        bigdata::Cluster::from_cloud(12, 16, cloud::ec2_c5_xlarge(), rng);
    bigdata::EngineOptions opt;
    opt.partition_skew = 0.4;
    bigdata::SparkEngine engine{opt};
    return engine.run(bigdata::tpcds_query(65), cluster, rng);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.runtime_s, b.runtime_s);
  EXPECT_EQ(a.slowest_node, b.slowest_node);
  EXPECT_DOUBLE_EQ(a.straggler_ratio, b.straggler_ratio);
}

TEST(DeterminismTest, CorpusIsSeedDeterministic) {
  stats::Rng rng1{3};
  stats::Rng rng2{3};
  const auto a = survey::generate_corpus({}, rng1);
  const auto b = survey::generate_corpus({}, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].citations, b[i].citations);
    EXPECT_EQ(a[i].repetitions, b[i].repetitions);
    EXPECT_EQ(a[i].cloud_experiments, b[i].cloud_experiments);
  }
}

TEST(DeterminismTest, VmIncarnationsAreSeedDeterministic) {
  stats::Rng rng1{5};
  stats::Rng rng2{5};
  const auto a = cloud::ec2_c5_xlarge().create_vm(rng1);
  const auto b = cloud::ec2_c5_xlarge().create_vm(rng2);
  EXPECT_DOUBLE_EQ(a.bucket->capacity_gbit, b.bucket->capacity_gbit);
  EXPECT_DOUBLE_EQ(a.bucket->high_rate_gbps, b.bucket->high_rate_gbps);
}

}  // namespace
}  // namespace cloudrepro
