// Failure-injection and adverse-condition tests: the simulator and engine
// must degrade loudly (exceptions) or gracefully (bounded behaviour), never
// silently wrong.

#include <gtest/gtest.h>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/protocol.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "simnet/fluid_network.h"
#include "simnet/qos.h"

namespace cloudrepro {
namespace {

TEST(FailureModesTest, EngineThrowsWhenShuffleMissesDeadline) {
  // A pathologically slow network (1 Mbps) cannot move Terasort's shuffle
  // before the deadline: the engine must throw, not hang or return garbage.
  simnet::FixedRateQos crawl{0.001};
  auto cluster = bigdata::Cluster::uniform(12, 16, crawl, 10.0);
  bigdata::EngineOptions opt;
  opt.deadline_s = 600.0;
  bigdata::SparkEngine engine{opt};
  stats::Rng rng{1};
  EXPECT_THROW(engine.run(bigdata::hibench_terasort(), cluster, rng),
               std::runtime_error);
}

TEST(FailureModesTest, NearZeroRatesStillConserveBytes) {
  simnet::FluidNetwork net;
  const auto a = net.add_node(std::make_unique<simnet::FixedRateQos>(1e-3));
  const auto b = net.add_node(std::make_unique<simnet::FixedRateQos>(10.0));
  const auto f = net.start_flow(a, b, 0.01);
  EXPECT_TRUE(net.run_until_flows_complete(100.0));
  EXPECT_NEAR(net.flow(f).transferred_gbit, 0.01, 1e-9);
  EXPECT_NEAR(net.now(), 10.0, 1e-3);
}

TEST(FailureModesTest, ZeroBudgetZeroCreditClusterStillFinishes) {
  // Every shaping mechanism at its worst simultaneously: the job is slow
  // but completes and the accounting stays consistent.
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  cluster.set_token_budgets(0.0);
  cloud::CpuCreditConfig cpu;
  cpu.vcpus = 16;
  cluster.attach_cpu_credits(cpu);
  cluster.set_cpu_credits(0.0);

  bigdata::SparkEngine engine;
  stats::Rng rng{2};
  const auto r = engine.run(bigdata::tpcds_query(65), cluster, rng);
  const auto& q = bigdata::tpcds_query(65);
  EXPECT_GT(r.runtime_s, q.nominal_compute_s(16));  // Slower than nominal.
  for (const double sent : r.per_node_sent_gbit) {
    EXPECT_NEAR(sent, q.total_shuffle_gbit_per_node(), 1e-9);
  }
}

TEST(FailureModesTest, ProbeOnAlmostDeadNetworkTerminates) {
  // Probing a nearly-dead link for an hour completes in bounded sim steps.
  cloud::VmNetwork vm;
  vm.egress = std::make_unique<simnet::FixedRateQos>(1e-3);
  vm.vnic = simnet::ec2_vnic();
  vm.line_rate_gbps = 10.0;
  measure::BandwidthProbeOptions probe;
  probe.duration_s = 3600.0;
  stats::Rng rng{3};
  const auto trace = measure::run_bandwidth_probe(vm, measure::full_speed(), probe, rng);
  EXPECT_EQ(trace.samples.size(), 360u);
  for (const auto& s : trace.samples) {
    EXPECT_NEAR(s.bandwidth_gbps, 1e-3, 1e-6);
  }
}

TEST(FailureModesTest, SingleRepetitionProtocolIsAuditableNotCrashy) {
  // The degenerate "ran it once" experiment: everything that can be
  // reported is reported, everything else is flagged.
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  bigdata::SparkEngine engine;

  core::LambdaEnvironment env{
      "single-shot", [&] { cluster.reset_network(); }, [&](double s) { cluster.rest(s); },
      [&](stats::Rng& r) {
        return engine.run(bigdata::tpcds_query(3), cluster, r).runtime_s;
      }};
  core::ProtocolOptions options;
  options.plan.repetitions = 1;
  options.fingerprint.bandwidth_probes = 1;
  options.fingerprint.bandwidth_probe_s = 60.0;
  options.fingerprint.latency_probe_s = 0.5;
  options.fingerprint.bucket_probe.max_probe_s = 900.0;
  stats::Rng rng{4};
  const auto report = core::run_protocol(cloud::ec2_c5_xlarge(), env, options, rng);
  EXPECT_FALSE(report.reproducible);
  EXPECT_EQ(report.result.values.size(), 1u);
  EXPECT_FALSE(report.result.median_ci.valid);
}

TEST(FailureModesTest, ClusterSurvivesExtremeSkew) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  bigdata::EngineOptions opt;
  opt.partition_skew = 5.0;  // Nearly everything on one node.
  bigdata::SparkEngine engine{opt};
  stats::Rng rng{5};
  const auto r = engine.run(bigdata::tpcds_query(65), cluster, rng);
  EXPECT_GT(r.runtime_s, 0.0);
  // Sent volumes still total to nodes * per-node profile volume.
  double total = 0.0;
  for (const double sent : r.per_node_sent_gbit) total += sent;
  EXPECT_NEAR(total, 12.0 * bigdata::tpcds_query(65).total_shuffle_gbit_per_node(),
              1e-6);
}

TEST(FailureModesTest, StochasticQosWithExtremeSamplerStaysPositive) {
  stats::Rng rng{6};
  simnet::StochasticQos qos{[](stats::Rng&) { return -100.0; }, 1.0, rng};
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(qos.allowed_rate(), 0.0);
    qos.advance(1.0, qos.allowed_rate());
  }
}

}  // namespace
}  // namespace cloudrepro
