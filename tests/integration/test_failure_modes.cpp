// Failure-injection and adverse-condition tests: the simulator and engine
// must degrade loudly (exceptions) or gracefully (bounded behaviour), never
// silently wrong.

#include <gtest/gtest.h>

#include <filesystem>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/campaign.h"
#include "core/protocol.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "simnet/fluid_network.h"
#include "simnet/qos.h"

namespace cloudrepro {
namespace {

TEST(FailureModesTest, EngineThrowsWhenShuffleMissesDeadline) {
  // A pathologically slow network (1 Mbps) cannot move Terasort's shuffle
  // before the deadline: the engine must throw, not hang or return garbage.
  simnet::FixedRateQos crawl{0.001};
  auto cluster = bigdata::Cluster::uniform(12, 16, crawl, 10.0);
  bigdata::EngineOptions opt;
  opt.deadline_s = 600.0;
  bigdata::SparkEngine engine{opt};
  stats::Rng rng{1};
  EXPECT_THROW(engine.run(bigdata::hibench_terasort(), cluster, rng),
               std::runtime_error);
}

TEST(FailureModesTest, NearZeroRatesStillConserveBytes) {
  simnet::FluidNetwork net;
  const auto a = net.add_node(std::make_unique<simnet::FixedRateQos>(1e-3));
  const auto b = net.add_node(std::make_unique<simnet::FixedRateQos>(10.0));
  const auto f = net.start_flow(a, b, 0.01);
  EXPECT_TRUE(net.run_until_flows_complete(100.0));
  EXPECT_NEAR(net.flow(f).transferred_gbit, 0.01, 1e-9);
  EXPECT_NEAR(net.now(), 10.0, 1e-3);
}

TEST(FailureModesTest, ZeroBudgetZeroCreditClusterStillFinishes) {
  // Every shaping mechanism at its worst simultaneously: the job is slow
  // but completes and the accounting stays consistent.
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  cluster.set_token_budgets(0.0);
  cloud::CpuCreditConfig cpu;
  cpu.vcpus = 16;
  cluster.attach_cpu_credits(cpu);
  cluster.set_cpu_credits(0.0);

  bigdata::SparkEngine engine;
  stats::Rng rng{2};
  const auto r = engine.run(bigdata::tpcds_query(65), cluster, rng);
  const auto& q = bigdata::tpcds_query(65);
  EXPECT_GT(r.runtime_s, q.nominal_compute_s(16));  // Slower than nominal.
  for (const double sent : r.per_node_sent_gbit) {
    EXPECT_NEAR(sent, q.total_shuffle_gbit_per_node(), 1e-9);
  }
}

TEST(FailureModesTest, ProbeOnAlmostDeadNetworkTerminates) {
  // Probing a nearly-dead link for an hour completes in bounded sim steps.
  cloud::VmNetwork vm;
  vm.egress = std::make_unique<simnet::FixedRateQos>(1e-3);
  vm.vnic = simnet::ec2_vnic();
  vm.line_rate_gbps = 10.0;
  measure::BandwidthProbeOptions probe;
  probe.duration_s = 3600.0;
  stats::Rng rng{3};
  const auto trace = measure::run_bandwidth_probe(vm, measure::full_speed(), probe, rng);
  EXPECT_EQ(trace.samples.size(), 360u);
  for (const auto& s : trace.samples) {
    EXPECT_NEAR(s.bandwidth_gbps, 1e-3, 1e-6);
  }
}

TEST(FailureModesTest, SingleRepetitionProtocolIsAuditableNotCrashy) {
  // The degenerate "ran it once" experiment: everything that can be
  // reported is reported, everything else is flagged.
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  bigdata::SparkEngine engine;

  core::LambdaEnvironment env{
      "single-shot", [&] { cluster.reset_network(); }, [&](double s) { cluster.rest(s); },
      [&](stats::Rng& r) {
        return engine.run(bigdata::tpcds_query(3), cluster, r).runtime_s;
      }};
  core::ProtocolOptions options;
  options.plan.repetitions = 1;
  options.fingerprint.bandwidth_probes = 1;
  options.fingerprint.bandwidth_probe_s = 60.0;
  options.fingerprint.latency_probe_s = 0.5;
  options.fingerprint.bucket_probe.max_probe_s = 900.0;
  stats::Rng rng{4};
  const auto report = core::run_protocol(cloud::ec2_c5_xlarge(), env, options, rng);
  EXPECT_FALSE(report.reproducible);
  EXPECT_EQ(report.result.values.size(), 1u);
  EXPECT_FALSE(report.result.median_ci.valid);
}

TEST(FailureModesTest, ClusterSurvivesExtremeSkew) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  bigdata::EngineOptions opt;
  opt.partition_skew = 5.0;  // Nearly everything on one node.
  bigdata::SparkEngine engine{opt};
  stats::Rng rng{5};
  const auto r = engine.run(bigdata::tpcds_query(65), cluster, rng);
  EXPECT_GT(r.runtime_s, 0.0);
  // Sent volumes still total to nodes * per-node profile volume.
  double total = 0.0;
  for (const double sent : r.per_node_sent_gbit) total += sent;
  EXPECT_NEAR(total, 12.0 * bigdata::tpcds_query(65).total_shuffle_gbit_per_node(),
              1e-6);
}

TEST(FailureModesTest, StochasticQosWithExtremeSamplerStaysPositive) {
  stats::Rng rng{6};
  simnet::StochasticQos qos{[](stats::Rng&) { return -100.0; }, 1.0, rng};
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(qos.allowed_rate(), 0.0);
    qos.advance(1.0, qos.allowed_rate());
  }
}

// ---- Fault plans through the whole stack (src/faults -> engine -> cluster) --

TEST(FailureModesTest, NodeCrashMidShuffleIsRecoveredEndToEnd) {
  // Terasort's first shuffle is in flight within seconds; kill a node there
  // and the job must finish anyway, with the loss accounted for.
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  cluster.set_token_budgets(5000.0);

  bigdata::EngineOptions opt;
  opt.fault_plan.crash(5.0, 7);
  bigdata::SparkEngine engine{opt};
  stats::Rng rng{7};
  const auto r = engine.run(bigdata::hibench_terasort(), cluster, rng);

  EXPECT_EQ(r.recovery.nodes_lost, 1);
  EXPECT_GE(r.recovery.task_retries, 1);
  EXPECT_GT(r.recovery.lost_gbit, 0.0);
  EXPECT_EQ(cluster.node_health(7), bigdata::NodeHealth::kFailed);
  // Survivors re-shuffled the dead node's partitions: total sent volume
  // stays near the profile's (the lost bytes moved to other sources).
  double total = 0.0;
  for (const double sent : r.per_node_sent_gbit) total += sent;
  EXPECT_GT(total, 11.0 * bigdata::hibench_terasort().total_shuffle_gbit_per_node());
}

TEST(FailureModesTest, RevocationPersistsAcrossRestAndLaterRuns) {
  // A spot revocation between experiments: the node is gone for every later
  // run on the same allocation — resting the cluster does not resurrect it.
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  cluster.set_token_budgets(5000.0);

  bigdata::EngineOptions opt;
  opt.fault_plan.revoke(2.0, 4, 1.0);
  bigdata::SparkEngine engine{opt};
  stats::Rng rng{8};
  engine.run(bigdata::hibench_terasort(), cluster, rng);
  ASSERT_EQ(cluster.node_health(4), bigdata::NodeHealth::kFailed);

  cluster.rest(600.0);
  EXPECT_EQ(cluster.node_health(4), bigdata::NodeHealth::kFailed);
  EXPECT_EQ(cluster.healthy_node_count(), 11u);

  // The next (fault-free) job runs on the surviving 11 nodes.
  bigdata::SparkEngine plain;
  const auto r2 = plain.run(bigdata::hibench_terasort(), cluster, rng);
  EXPECT_DOUBLE_EQ(r2.per_node_sent_gbit[4], 0.0);
  EXPECT_EQ(r2.recovery.nodes_lost, 0);
  EXPECT_GT(r2.runtime_s, 0.0);

  // Fresh VMs (the F5.4 guideline) replace the revoked instance.
  cluster.reset_network();
  EXPECT_EQ(cluster.healthy_node_count(), 12u);
}

TEST(FailureModesTest, ResumedCampaignEqualsUninterruptedUnderFaults) {
  // The full robustness loop: a campaign of fault-injected engine runs,
  // interrupted after an arbitrary prefix and resumed from its journal,
  // must reproduce the uninterrupted campaign bit for bit.
  const auto make_cells = [] {
    std::vector<core::CampaignCell> cells;
    for (const double budget : {5000.0, 500.0}) {
      cells.push_back(core::CampaignCell{
          "TS", "budget=" + std::to_string(static_cast<int>(budget)),
          [budget](stats::Rng& r) {
            const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
            simnet::TokenBucketQos proto{bucket};
            auto cluster = bigdata::Cluster::uniform(8, 16, proto, 10.0);
            cluster.set_token_budgets(budget);
            bigdata::EngineOptions opt;
            opt.fault_plan.slow_down(3.0, 1, 5.0, 0.4).steal_tokens(1.0, 2, 200.0);
            opt.speculation.enabled = true;
            opt.speculation.check_interval_s = 2.0;
            bigdata::SparkEngine engine{opt};
            return engine.run(bigdata::hibench_terasort(), cluster, r).runtime_s;
          },
          [] {}});
    }
    return cells;
  };

  core::CampaignOptions opt;
  opt.repetitions_per_cell = 3;
  const auto full = core::run_campaign(make_cells(), opt, std::uint64_t{77});

  auto journal_opt = opt;
  journal_opt.journal_path =
      std::filesystem::path{::testing::TempDir()} / "fault-campaign.jsonl";
  std::filesystem::remove(journal_opt.journal_path);

  journal_opt.max_measurements = 2;  // Interrupt mid-campaign.
  const auto partial = core::run_campaign(make_cells(), journal_opt, std::uint64_t{77});
  ASSERT_FALSE(partial.complete);

  journal_opt.max_measurements = 0;
  const auto resumed = core::run_campaign(make_cells(), journal_opt, std::uint64_t{77});
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_measurements, 2u);
  ASSERT_EQ(resumed.execution_order, full.execution_order);
  for (std::size_t i = 0; i < full.cells.size(); ++i) {
    ASSERT_EQ(resumed.cells[i].values.size(), full.cells[i].values.size());
    for (std::size_t r = 0; r < full.cells[i].values.size(); ++r) {
      EXPECT_DOUBLE_EQ(resumed.cells[i].values[r], full.cells[i].values[r]);
    }
  }
}

}  // namespace
}  // namespace cloudrepro
