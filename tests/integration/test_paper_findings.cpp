// Integration tests: each test reproduces, end-to-end across modules, one of
// the paper's numbered findings. These are the repository's "does it still
// tell the paper's story?" guardrails.

#include <gtest/gtest.h>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/ballani.h"
#include "cloud/instances.h"
#include "core/confirm.h"
#include "core/experiment.h"
#include "measure/iperf.h"
#include "measure/patterns.h"
#include "measure/rtt.h"
#include "simnet/units.h"
#include "stats/ci.h"
#include "stats/descriptive.h"
#include "stats/hypothesis.h"

namespace cloudrepro {
namespace {

simnet::TokenBucketConfig c5_bucket() {
  return *cloud::ec2_c5_xlarge().nominal_bucket();
}

TEST(PaperFindings, F31_TokenBucketCutsBandwidthByOrderOfMagnitude) {
  // "token-bucket approaches, where bandwidth is cut by an order of
  // magnitude after several minutes of transfer".
  stats::Rng rng{1};
  measure::BandwidthProbeOptions probe;
  probe.duration_s = 1800.0;
  const auto trace = measure::run_bandwidth_probe(cloud::ec2_c5_xlarge(),
                                                  measure::full_speed(), probe, rng);
  const auto bw = trace.bandwidths();
  const double early = stats::median(std::span<const double>{bw}.subspan(0, 30));
  const double late = stats::median(
      std::span<const double>{bw}.subspan(bw.size() - 30, 30));
  EXPECT_GT(early / late, 5.0);
  // The cut happens after minutes, not seconds.
  std::size_t drop_index = 0;
  for (std::size_t i = 0; i < bw.size(); ++i) {
    if (bw[i] < 0.5 * early) {
      drop_index = i;
      break;
    }
  }
  EXPECT_GT(drop_index * 10.0, 120.0);
}

TEST(PaperFindings, F32_PrivateCloudMoreVariableThanCommercial) {
  // "Private clouds can exhibit more variability than public commercial
  // clouds" — compare HPCCloud's full-speed CoV with GCE's.
  stats::Rng rng{2};
  measure::BandwidthProbeOptions probe;
  probe.duration_s = 4.0 * 3600.0;
  const auto hpc = measure::run_bandwidth_probe(cloud::hpccloud_8core(),
                                                measure::full_speed(), probe, rng);
  const auto gce = measure::run_bandwidth_probe(cloud::gce_8core(),
                                                measure::full_speed(), probe, rng);
  EXPECT_GT(hpc.bandwidth_summary().coefficient_of_variation,
            3.0 * gce.bandwidth_summary().coefficient_of_variation);
}

TEST(PaperFindings, F33_BaseLatencyVariesNearlyTenXBetweenClouds) {
  stats::Rng rng{3};
  measure::RttProbeOptions opt;
  opt.duration_s = 2.0;
  opt.write_bytes = 4096.0;
  const auto ec2 = measure::run_rtt_probe(cloud::ec2_c5_xlarge(), opt, rng);
  const auto gce = measure::run_rtt_probe(cloud::gce_8core(), opt, rng);
  const double ratio = gce.analysis.median_rtt_ms / ec2.analysis.median_rtt_ms;
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 40.0);
}

TEST(PaperFindings, F41_StochasticCloudsConvergeWithEnoughRepetitions) {
  // Under GCE/HPCCloud-style noise, repetitions + sound statistics give
  // reproducible results.
  stats::Rng rng{4};
  bigdata::SparkEngine engine;
  std::vector<double> runtimes;
  for (int i = 0; i < 40; ++i) {
    auto cluster = bigdata::Cluster::from_cloud(12, 16, cloud::hpccloud_8core(), rng);
    runtimes.push_back(engine.run(bigdata::hibench_kmeans(), cluster, rng).runtime_s);
  }
  const auto analysis = core::confirm_analysis(runtimes);
  ASSERT_TRUE(analysis.final_point().ci_valid);
  // CI should be tight (few-percent) and runs i.i.d.
  const auto ci = stats::median_ci(runtimes);
  EXPECT_LT(ci.relative_half_width(), 0.05);
  EXPECT_FALSE(stats::runs_test(runtimes).reject());
}

TEST(PaperFindings, F42_BudgetStateChangesFutureRuntimes) {
  stats::Rng rng{5};
  simnet::TokenBucketQos proto{c5_bucket()};
  bigdata::SparkEngine engine;

  // Same workload, same cluster size — different *history*.
  auto fresh = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  const double fresh_runtime =
      engine.run(bigdata::tpcds_query(68), fresh, rng).runtime_s;

  auto used = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  used.set_token_budgets(0.0);
  const double used_runtime =
      engine.run(bigdata::tpcds_query(68), used, rng).runtime_s;

  EXPECT_GT(used_runtime, 2.0 * fresh_runtime);
}

TEST(PaperFindings, F43_TokenBucketsPlusImbalanceCreateStragglers) {
  stats::Rng rng{6};
  simnet::TokenBucketQos proto{c5_bucket()};
  bigdata::EngineOptions opt;
  opt.partition_skew = 0.6;
  bigdata::SparkEngine engine{opt};

  // Figure 18's setup: 2500-Gbit budgets, repeated heavy queries. The
  // most-loaded node depletes its bucket first and straggles while the
  // others remain at the high QoS.
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  cluster.set_token_budgets(2500.0);
  bigdata::JobResult straggling_run;
  bool straggled = false;
  for (int i = 0; i < 22 && !straggled; ++i) {
    straggling_run = engine.run(bigdata::tpcds_query(65), cluster, rng);
    straggled = straggling_run.has_straggler();
  }
  ASSERT_TRUE(straggled);

  // The straggler is exactly the node with the lowest remaining budget.
  double min_budget = 1e18;
  std::size_t min_node = 0;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    if (*cluster.token_budget(i) < min_budget) {
      min_budget = *cluster.token_budget(i);
      min_node = i;
    }
  }
  EXPECT_EQ(straggling_run.slowest_node, min_node);
}

TEST(PaperFindings, F44_UnknownBudgetStateMakesPerformanceUnpredictable) {
  // Figure 19's mechanism via the experiment runner: reusing VMs produces a
  // non-independent, drifting sequence; fresh VMs do not.
  stats::Rng rng{7};
  simnet::TokenBucketQos proto{c5_bucket()};
  bigdata::SparkEngine engine;

  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  cluster.set_token_budgets(500.0);

  core::LambdaEnvironment env{
      "Q65 on reused 12-node cluster",
      [&] {
        cluster.reset_network();
        cluster.set_token_budgets(500.0);
      },
      [&](double s) { cluster.rest(s); },
      [&](stats::Rng& r) {
        return engine.run(bigdata::tpcds_query(65), cluster, r).runtime_s;
      }};

  core::ExperimentRunner runner{rng.split()};
  core::ExperimentPlan reuse_plan;
  reuse_plan.repetitions = 20;
  reuse_plan.fresh_environment_each_run = false;
  const auto reused = runner.run(env, reuse_plan);
  EXPECT_TRUE(reused.independence.reject());  // Non-i.i.d.

  core::ExperimentPlan fresh_plan;
  fresh_plan.repetitions = 20;
  fresh_plan.fresh_environment_each_run = true;
  const auto fresh = runner.run(env, fresh_plan);
  EXPECT_FALSE(fresh.independence.reject());
  EXPECT_LT(fresh.summary.coefficient_of_variation,
            0.5 * reused.summary.coefficient_of_variation);
}

TEST(PaperFindings, Figure3_FewRepetitionMediansMissGoldStandardCis) {
  // The Section 2.1 emulation: under Ballani bandwidth distributions,
  // 3-run medians frequently fall outside the 50-run gold-standard CI.
  stats::Rng rng{8};
  bigdata::SparkEngine engine;

  int clouds_with_bad_3run = 0;
  for (const auto& dist : cloud::ballani_distributions()) {
    // 16-node cluster whose links resample from the distribution every 5 s.
    auto sampler = [&dist](stats::Rng& r) {
      return simnet::mbps_to_gbps(dist.sample_mbps(r));
    };
    std::vector<double> runtimes;
    for (int rep = 0; rep < 50; ++rep) {
      simnet::StochasticQos proto(sampler, 5.0, rng.split());
      auto cluster = bigdata::Cluster::uniform(16, 16, proto, 1.0);
      runtimes.push_back(engine.run(bigdata::hibench_kmeans(), cluster, rng).runtime_s);
    }
    const auto gold = stats::median_ci(runtimes);
    ASSERT_TRUE(gold.valid);
    const double median3 =
        stats::median(std::span<const double>{runtimes}.subspan(0, 3));
    if (!gold.contains(median3)) ++clouds_with_bad_3run;
  }
  // The paper found 6/8 clouds with inaccurate 3-run medians; we only
  // require that the phenomenon shows (at least a couple of clouds).
  EXPECT_GE(clouds_with_bad_3run, 2);
}

TEST(PaperFindings, Figure19_BudgetDepletionWidensCiForSensitiveQueries) {
  stats::Rng rng{9};
  simnet::TokenBucketQos proto{c5_bucket()};
  bigdata::SparkEngine engine;

  const double budgets[] = {5000.0, 2500.0, 1000.0, 100.0, 10.0};
  const auto run_schedule = [&](int query) {
    std::vector<double> runtimes;
    for (const double b : budgets) {
      for (int i = 0; i < 10; ++i) {
        auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
        cluster.set_token_budgets(b);
        runtimes.push_back(engine.run(bigdata::tpcds_query(query), cluster, rng).runtime_s);
      }
    }
    return core::confirm_analysis(runtimes);
  };

  const auto q65 = run_schedule(65);
  const auto q82 = run_schedule(82);

  EXPECT_TRUE(q65.ci_widened);   // Budget-dependent: CI widens.
  EXPECT_FALSE(q82.ci_widened);  // Budget-agnostic: CI tightens normally.
  EXPECT_TRUE(q82.final_point().within_bound ||
              q82.final_point().ci_valid);
}

}  // namespace
}  // namespace cloudrepro
