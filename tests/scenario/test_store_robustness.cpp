// The hardened result store: single-flight locking (contention, read
// through, stale steal), the LRU byte budget with stale-schema age-out,
// checked summary reads, and verify().

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "io/vfs.h"
#include "obs/metrics.h"
#include "scenario/result_store.h"
#include "scenario/runner.h"

namespace cloudrepro::scenario {
namespace {

namespace fs = std::filesystem;

ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "robustness-test";
  spec.workloads = {{"hibench", "TS", std::nullopt}};
  spec.budgets = {5000.0};
  spec.repetitions = 3;
  return spec;
}

class StoreRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-robust-" +
             std::string{::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()});
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write_raw(const fs::path& path, const std::string& bytes) {
    auto& vfs = io::real_vfs();
    vfs.create_directories(path.parent_path());
    auto out = vfs.open_write(path, io::WriteMode::kTruncate);
    out->append(bytes);
    out->close();
  }

  fs::path root_;
};

TEST_F(StoreRobustnessTest, LockIsExclusivePerEntryAndReleases) {
  obs::MetricsRegistry metrics;
  ResultStore store{root_, &metrics};
  const auto spec = tiny_spec();

  auto lock = store.try_lock(spec, 1);
  ASSERT_TRUE(lock);
  // A live same-process holder: contention, not a steal.
  EXPECT_FALSE(store.try_lock(spec, 1));
  EXPECT_EQ(metrics.counter_value("scenario.cache.lock_contention"), 1.0);
  // A different entry is an independent lock.
  EXPECT_TRUE(store.try_lock(spec, 2));

  lock.release();
  EXPECT_TRUE(store.try_lock(spec, 1));
  EXPECT_EQ(metrics.counter_value("scenario.cache.lock_stolen"), 0.0);
}

TEST_F(StoreRobustnessTest, StaleLockFromDeadProcessIsStolen) {
  obs::MetricsRegistry metrics;
  ResultStore store{root_, &metrics};
  const auto spec = tiny_spec();

  // Pid 4194305 exceeds the default Linux pid_max (4194304): provably dead.
  write_raw(store.entry_dir(spec, 1) / "lock", "pid 4194305\n");
  EXPECT_TRUE(store.try_lock(spec, 1));
  EXPECT_EQ(metrics.counter_value("scenario.cache.lock_stolen"), 1.0);

  // A garbage lock file can only come from a torn lock write: also stolen.
  write_raw(store.entry_dir(spec, 2) / "lock", "????");
  EXPECT_TRUE(store.try_lock(spec, 2));

  // Our own pid, but not registered as held by this incarnation — the
  // crash-restart-in-one-process shape the torture harness produces.
  write_raw(store.entry_dir(spec, 3) / "lock",
            "pid " + std::to_string(::getpid()) + "\n");
  EXPECT_TRUE(store.try_lock(spec, 3));
}

TEST_F(StoreRobustnessTest, ConcurrentRunsExecuteTheCampaignExactlyOnce) {
  obs::MetricsRegistry metrics;
  ResultStore store{root_, &metrics};
  const auto spec = tiny_spec();

  const auto run = [&] {
    RunOptions options;
    options.store = &store;
    options.metrics = &metrics;
    options.lock_wait_ms = 5;
    options.lock_wait_attempts = 2000;
    return run_scenario(spec, options);
  };

  ScenarioRunResult a, b;
  std::thread ta{[&] { a = run(); }};
  std::thread tb{[&] { b = run(); }};
  ta.join();
  tb.join();

  // Both produced the same bytes, and the 3 measurements ran exactly once
  // across both runners: the single-flight guarantee.
  EXPECT_EQ(a.summary, b.summary);
  EXPECT_TRUE(a.complete);
  EXPECT_TRUE(b.complete);
  EXPECT_EQ(a.executed_measurements + b.executed_measurements, 3u);
  EXPECT_EQ(metrics.counter_value("campaign.measurements_executed"), 3.0);
  // The loser either read through the published summary or found the
  // complete entry right after the handover.
  EXPECT_EQ(a.from_cached_summary + b.from_cached_summary, 1);
}

TEST_F(StoreRobustnessTest, WaiterReadsThroughTheHoldersPublishedSummary) {
  obs::MetricsRegistry metrics;
  ResultStore store{root_, &metrics};
  const auto spec = tiny_spec();

  // Reference summary from a store-less run (same spec, same seed).
  const auto reference = run_scenario(spec);

  auto holder = store.try_lock(spec, spec.seed);
  ASSERT_TRUE(holder);

  ScenarioRunResult waited;
  std::thread waiter{[&] {
    RunOptions options;
    options.store = &store;
    options.lock_wait_ms = 5;
    options.lock_wait_attempts = 2000;
    waited = run_scenario(spec, options);
  }};

  // "The other process" publishes, then releases its lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  store.write_summary(spec, spec.seed, reference.summary);
  holder.release();
  waiter.join();

  EXPECT_TRUE(waited.from_cached_summary);
  EXPECT_EQ(waited.summary, reference.summary);
  EXPECT_EQ(waited.executed_measurements, 0u);
  EXPECT_GT(metrics.counter_value("scenario.cache.lock_wait"), 0.0);
}

TEST_F(StoreRobustnessTest, WaiterEvictsCorruptWinnerSummaryAndRetries) {
  // Regression: the read-through path must VALIDATE the winner's summary.
  // A waiter that wakes to a torn summary.json (winner crashed mid-write,
  // torn by fault injection, etc.) must evict it and run the campaign
  // itself — never serve the torn bytes, never deadlock.
  obs::MetricsRegistry metrics;
  ResultStore store{root_, &metrics};
  const auto spec = tiny_spec();
  const auto reference = run_scenario(spec);

  auto holder = store.try_lock(spec, spec.seed);
  ASSERT_TRUE(holder);

  ScenarioRunResult waited;
  std::thread waiter{[&] {
    RunOptions options;
    options.store = &store;
    options.metrics = &metrics;
    options.lock_wait_ms = 5;
    options.lock_wait_attempts = 2000;
    waited = run_scenario(spec, options);
  }};

  // "The winner" publishes a torn summary, then releases its lock — the
  // worst interleaving: the waiter sees has_summary() true, reads, and the
  // bytes are garbage.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  write_raw(store.summary_path(spec, spec.seed), "{\"complete\":tru");
  holder.release();
  waiter.join();

  EXPECT_TRUE(waited.complete);
  EXPECT_FALSE(waited.from_cached_summary)
      << "the torn summary must not be served";
  EXPECT_EQ(waited.summary, reference.summary);
  EXPECT_GE(metrics.counter_value("scenario.cache.corrupt_summaries"), 1.0);
  // The re-run republished a valid summary over the torn one.
  EXPECT_EQ(store.read_summary_checked(spec, spec.seed), reference.summary);
}

TEST_F(StoreRobustnessTest, TouchFreshensTheClockWithoutClassifying) {
  obs::MetricsRegistry metrics;
  ResultStore store{root_, &metrics};
  const auto spec = tiny_spec();

  store.write_summary(spec, 1, "{\"id\":1}");
  store.write_summary(spec, 2, "{\"id\":2}");
  store.lookup(spec, 2);  // 2 is now fresher than 1.
  store.touch(spec, 1);   // ...until touched.

  const auto entries = store.entries();
  ASSERT_EQ(entries.size(), 2u);
  const auto& e1 = entries[0].key == store.entry_key(spec, 1) ? entries[0] : entries[1];
  const auto& e2 = entries[0].key == store.entry_key(spec, 2) ? entries[0] : entries[1];
  EXPECT_GT(e1.last_used, e2.last_used);

  // touch() is the serve fast path's freshener: it must not count as a
  // cache classification (lookup did: one hit), and a missing entry is a
  // no-op, not a directory creation.
  EXPECT_EQ(metrics.counter_value("scenario.cache.hit"), 1.0);
  EXPECT_EQ(metrics.counter_value("scenario.cache.miss"), 0.0);
  store.touch(spec, 99);
  EXPECT_FALSE(fs::exists(store.entry_dir(spec, 99)));
}

TEST_F(StoreRobustnessTest, LockWaitTimesOutWithBoundedRetries) {
  ResultStore store{root_};
  const auto spec = tiny_spec();
  auto holder = store.try_lock(spec, spec.seed);
  ASSERT_TRUE(holder);

  RunOptions options;
  options.store = &store;
  options.lock_wait_ms = 1;
  options.lock_wait_attempts = 3;
  EXPECT_THROW(run_scenario(spec, options), std::runtime_error);
}

TEST_F(StoreRobustnessTest, CorruptSummaryIsEvictedAndReRun) {
  obs::MetricsRegistry metrics;
  ResultStore store{root_, &metrics};
  const auto spec = tiny_spec();

  write_raw(store.summary_path(spec, spec.seed), "{\"complete\":tru");  // torn
  EXPECT_EQ(store.read_summary_checked(spec, spec.seed), std::nullopt);
  EXPECT_EQ(metrics.counter_value("scenario.cache.corrupt_summaries"), 1.0);
  EXPECT_FALSE(store.has_summary(spec, spec.seed));

  // End to end: a torn summary on disk must never be served.
  write_raw(store.summary_path(spec, spec.seed), "");
  RunOptions options;
  options.store = &store;
  const auto result = run_scenario(spec, options);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.from_cached_summary);
  EXPECT_EQ(result.summary, run_scenario(spec).summary);
}

TEST_F(StoreRobustnessTest, BudgetEvictsLeastRecentlyUsedFirst) {
  obs::MetricsRegistry metrics;
  ResultStore::Options store_options;
  store_options.max_bytes = 1;  // Everything evictable must go.
  ResultStore store{root_, &metrics, nullptr, store_options};
  const auto spec = tiny_spec();

  store.write_summary(spec, 1, "{\"id\":1}");
  store.write_summary(spec, 2, "{\"id\":2}");
  store.write_summary(spec, 3, "{\"id\":3}");
  // Freshen 1 and 3; entry 2 becomes the LRU victim ordering's head.
  store.lookup(spec, 1);
  store.lookup(spec, 3);
  store.lookup(spec, 1);

  // Budget of one byte, but entry 3 is protected (in-flight) and entry 1 is
  // locked by a live holder: only 2 may be evicted.
  auto lock = store.try_lock(spec, 1);
  const auto evicted = store.enforce_budget(store.entry_key(spec, 3));
  EXPECT_EQ(evicted, 1u);
  EXPECT_TRUE(store.has_summary(spec, 1));
  EXPECT_FALSE(store.has_summary(spec, 2));
  EXPECT_TRUE(store.has_summary(spec, 3));
  EXPECT_EQ(metrics.counter_value("scenario.cache.evictions"), 1.0);
  EXPECT_GT(metrics.counter_value("scenario.cache.evicted_bytes"), 0.0);

  // Released lock: the next enforcement may take entry 1 too.
  lock.release();
  EXPECT_EQ(store.enforce_budget(store.entry_key(spec, 3)), 1u);
  EXPECT_FALSE(store.has_summary(spec, 1));
  EXPECT_TRUE(store.has_summary(spec, 3));
}

TEST_F(StoreRobustnessTest, BudgetKeepsCacheUnderLimitWithoutTouchingFresh) {
  ResultStore::Options store_options;
  store_options.max_bytes = 4096;
  ResultStore store{root_, nullptr, nullptr, store_options};
  const auto spec = tiny_spec();

  // ~1.5 KiB per entry (spec json dominates); six entries exceed 4 KiB.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    store.prepare(spec, seed);
    store.write_summary(spec, seed, "{\"seed\":" + std::to_string(seed) + "}");
  }
  store.enforce_budget();

  std::uintmax_t total = 0;
  for (const auto& entry : store.entries()) total += entry.bytes;
  EXPECT_LE(total, store_options.max_bytes);
  EXPECT_FALSE(store.entries().empty()) << "budget must not wipe the cache";
  // Later seeds were written later and touched later: they survive.
  EXPECT_TRUE(store.has_summary(spec, 6));
}

TEST_F(StoreRobustnessTest, StaleSchemaEntriesAgeOutBeforeAnythingElse) {
  ResultStore::Options store_options;
  store_options.max_bytes = 1u << 30;  // Huge: only age-out can evict.
  ResultStore store{root_, nullptr, nullptr, store_options};
  const auto spec = tiny_spec();

  // Forge an entry from a previous schema version (same hash, -v0 suffix).
  const auto stale_key = spec.content_hash() + "-s1-v0";
  write_raw(root_ / stale_key / "summary.json", "{\"old\":true}");
  store.write_summary(spec, 1, "{\"new\":true}");

  ASSERT_EQ(store.entries().size(), 2u);
  EXPECT_EQ(store.enforce_budget(), 1u);
  const auto entries = store.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, store.entry_key(spec, 1));
  EXPECT_TRUE(entries[0].current_schema);
}

TEST_F(StoreRobustnessTest, VerifyFlagsDamageAndBlessesTornJournalTails) {
  ResultStore store{root_};
  const auto spec = tiny_spec();

  store.prepare(spec, 1);
  store.write_summary(spec, 1, "{\"ok\":true}");

  store.prepare(spec, 2);
  write_raw(store.summary_path(spec, 2), "{\"torn\":tr");  // Unparseable.

  auto reports = store.verify();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].ok != reports[1].ok);
  for (const auto& report : reports) {
    if (!report.ok) {
      EXPECT_NE(report.note.find("summary"), std::string::npos);
    }
  }

  // A torn journal tail is healable, not damage.
  store.evict(spec, 2);
  const auto journal = store.prepare(spec, 2);
  write_raw(journal, "{\"header\":true}\n{\"cell\":0,\"rep\"");
  reports = store.verify();
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& report : reports) EXPECT_TRUE(report.ok);
}

TEST_F(StoreRobustnessTest, ClockSurvivesAcrossStoreInstances) {
  const auto spec = tiny_spec();
  {
    ResultStore store{root_};
    store.write_summary(spec, 1, "{}");
    store.lookup(spec, 1);
  }
  ResultStore store{root_};
  store.write_summary(spec, 2, "{}");
  store.lookup(spec, 2);
  const auto entries = store.entries();
  ASSERT_EQ(entries.size(), 2u);
  // Monotonic logical time across process restarts: entry 2 is fresher.
  const auto& e1 = entries[0].key == store.entry_key(spec, 1) ? entries[0] : entries[1];
  const auto& e2 = entries[0].key == store.entry_key(spec, 2) ? entries[0] : entries[1];
  EXPECT_GT(e2.last_used, e1.last_used);
}

}  // namespace
}  // namespace cloudrepro::scenario
