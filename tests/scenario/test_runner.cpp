// End-to-end scenario execution: the summary is a pure function of the
// scenario and seed — identical bytes cold, cached, resumed, threaded, or
// store-less — and a full hit executes nothing.

#include "scenario/runner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "scenario/json.h"
#include "scenario/registry.h"

namespace cloudrepro::scenario {
namespace {

namespace fs = std::filesystem;

ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "runner-test";
  spec.workloads = {{"hibench", "TS", std::nullopt}, {"hibench", "KM", std::nullopt}};
  spec.budgets = {5000.0, 10.0};
  spec.repetitions = 3;
  return spec;
}

class ScenarioRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-runner-" +
             std::string{::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()});
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(ScenarioRunnerTest, ColdRunProducesACompleteValidSummary) {
  const ScenarioSpec spec = tiny_spec();
  const auto result = run_scenario(spec);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.executed_measurements, 12u);
  EXPECT_EQ(result.resumed_measurements, 0u);

  const Json summary = Json::parse(result.summary);
  EXPECT_EQ(summary.at("scenario").as_string(), "runner-test");
  EXPECT_EQ(summary.at("scenario_hash").as_string(), spec.content_hash());
  EXPECT_EQ(summary.at("seed").as_uint(), spec.seed);
  EXPECT_TRUE(summary.at("complete").as_bool());
  const auto& cells = summary.at("cells").as_array();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].at("config").as_string(), "TS");
  EXPECT_EQ(cells[0].at("treatment").as_string(), "budget=5000");
  EXPECT_EQ(cells[0].at("n").as_uint(), 3u);
  EXPECT_GT(cells[0].at("median").as_double(), 0.0);
  // Canonical bytes: re-serializing the parsed summary is the identity.
  EXPECT_EQ(summary.canonical(), result.summary);
}

TEST_F(ScenarioRunnerTest, SecondRunIsAFullHitWithByteIdenticalSummary) {
  const ScenarioSpec spec = tiny_spec();
  ResultStore store{root_};

  RunOptions options;
  options.store = &store;
  const auto cold = run_scenario(spec, options);
  EXPECT_EQ(cold.hit_state, ResultStore::HitState::kMiss);
  EXPECT_EQ(cold.executed_measurements, 12u);
  EXPECT_TRUE(cold.complete);

  const auto warm = run_scenario(spec, options);
  EXPECT_EQ(warm.hit_state, ResultStore::HitState::kHit);
  EXPECT_TRUE(warm.from_cached_summary);
  EXPECT_EQ(warm.executed_measurements, 0u);
  EXPECT_EQ(warm.resumed_measurements, 12u);
  EXPECT_EQ(warm.summary, cold.summary);
}

TEST_F(ScenarioRunnerTest, CacheStateAndThreadCountNeverChangeTheBytes) {
  const ScenarioSpec spec = tiny_spec();
  const auto reference = run_scenario(spec);  // Store-less, serial.

  ResultStore store{root_};
  RunOptions cached;
  cached.store = &store;
  cached.threads = 0;  // All cores.
  EXPECT_EQ(run_scenario(spec, cached).summary, reference.summary);
  EXPECT_EQ(run_scenario(spec, cached).summary, reference.summary);

  RunOptions threaded;
  threaded.threads = 3;
  EXPECT_EQ(run_scenario(spec, threaded).summary, reference.summary);
}

TEST_F(ScenarioRunnerTest, InterruptedRunResumesBitIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = tiny_spec();
  const auto reference = run_scenario(spec);

  ResultStore store{root_};
  RunOptions interrupt;
  interrupt.store = &store;
  interrupt.threads = 2;
  interrupt.max_measurements = 5;
  const auto partial = run_scenario(spec, interrupt);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.executed_measurements, 5u);
  EXPECT_FALSE(store.has_summary(spec, spec.seed));

  // The incomplete summary is honest about what it is.
  EXPECT_FALSE(Json::parse(partial.summary).at("complete").as_bool());

  RunOptions resume;
  resume.store = &store;
  resume.threads = 1;  // Different thread count than the interrupted run.
  const auto resumed = run_scenario(spec, resume);
  EXPECT_EQ(resumed.hit_state, ResultStore::HitState::kPartial);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_measurements, 5u);
  EXPECT_EQ(resumed.executed_measurements, 7u);
  EXPECT_EQ(resumed.summary, reference.summary);
  EXPECT_TRUE(store.has_summary(spec, spec.seed));
}

TEST_F(ScenarioRunnerTest, NeedValuesReplaysTheJournalWithoutExecuting) {
  const ScenarioSpec spec = tiny_spec();
  ResultStore store{root_};
  RunOptions options;
  options.store = &store;
  const auto cold = run_scenario(spec, options);

  options.need_values = true;
  const auto replay = run_scenario(spec, options);
  EXPECT_EQ(replay.executed_measurements, 0u);
  EXPECT_EQ(replay.resumed_measurements, 12u);
  EXPECT_FALSE(replay.from_cached_summary);
  EXPECT_EQ(replay.summary, cold.summary);
  // The campaign values are materialized for CSV export.
  ASSERT_EQ(replay.campaign.cells.size(), 4u);
  EXPECT_EQ(replay.campaign.cells[0].values.size(), 3u);
}

TEST_F(ScenarioRunnerTest, SeedOverrideKeysTheCacheIndependently) {
  const ScenarioSpec spec = tiny_spec();
  ResultStore store{root_};
  RunOptions options;
  options.store = &store;
  const auto a = run_scenario(spec, options);

  options.seed = 7;
  const auto b = run_scenario(spec, options);
  EXPECT_EQ(b.hit_state, ResultStore::HitState::kMiss);  // Not the seed-default entry.
  EXPECT_NE(b.summary, a.summary);
  EXPECT_EQ(Json::parse(b.summary).at("seed").as_uint(), 7u);
  EXPECT_TRUE(store.has_summary(spec, 7));

  // Re-running the override is now a hit.
  EXPECT_EQ(run_scenario(spec, options).hit_state, ResultStore::HitState::kHit);
}

TEST_F(ScenarioRunnerTest, CorruptJournalIsEvictedAndTheRunRedoneCold) {
  const ScenarioSpec spec = tiny_spec();
  ResultStore store{root_};
  RunOptions options;
  options.store = &store;
  const auto reference = run_scenario(spec, options);

  // Corrupt the entry: remove the summary and replace the journal with one
  // whose header cannot match this campaign.
  fs::remove(store.summary_path(spec, spec.seed));
  {
    std::ofstream out{store.journal_path(spec, spec.seed)};
    out << R"({"campaign_journal":1,"seed":999,"cells":[]})" << "\n";
    out << R"({"cell":0,"rep":0,"value":1.0})" << "\n";
  }

  const auto redo = run_scenario(spec, options);
  EXPECT_TRUE(redo.complete);
  EXPECT_EQ(redo.executed_measurements, 12u);
  EXPECT_EQ(redo.summary, reference.summary);
}

TEST_F(ScenarioRunnerTest, ConfirmAnalysisAppearsWhenEnabled) {
  ScenarioSpec spec = tiny_spec();
  spec.confirm.enabled = true;
  spec.confirm.error_bound = 0.5;  // Loose: 3 repetitions can satisfy it.
  const auto result = run_scenario(spec);
  const Json summary = Json::parse(result.summary);
  const auto& cell = summary.at("cells").as_array().front();
  const Json* confirm = cell.find("confirm");
  ASSERT_NE(confirm, nullptr);
  EXPECT_TRUE(confirm->find("final_estimate") != nullptr);
  EXPECT_GT(confirm->at("final_estimate").as_double(), 0.0);
}

ScenarioSpec adaptive_spec() {
  ScenarioSpec spec = tiny_spec();
  spec.name = "runner-adaptive-test";
  spec.workloads = {{"hibench", "TS", std::nullopt}};
  spec.budgets = {5000.0};
  spec.engine.machine_noise_cv = 0.05;
  spec.repetitions = 40;  // Cap; the stopping rule decides the actual count.
  spec.confirm.enabled = true;
  spec.confirm.adaptive = true;
  spec.confirm.error_bound = 0.10;
  spec.confirm.min_repetitions = 8;
  return spec;
}

TEST_F(ScenarioRunnerTest, AdaptiveStopIsByteIdenticalAcrossCacheAndThreads) {
  const ScenarioSpec spec = adaptive_spec();
  const auto reference = run_scenario(spec);  // Store-less, serial.
  EXPECT_TRUE(reference.complete);
  EXPECT_LT(reference.executed_measurements, 40u);  // Stopped early.

  const Json summary = Json::parse(reference.summary);
  const auto& cell = summary.at("cells").as_array().front();
  const Json* confirm = cell.find("confirm");
  ASSERT_NE(confirm, nullptr);
  EXPECT_TRUE(confirm->at("adaptive").as_bool());
  EXPECT_TRUE(confirm->at("converged").as_bool());
  EXPECT_EQ(confirm->at("stop_repetitions").as_uint(),
            reference.executed_measurements);
  EXPECT_GT(confirm->at("achieved_coverage").as_double(), 0.94);
  EXPECT_EQ(cell.at("n").as_uint(), reference.executed_measurements);

  // Cold vs cached vs threaded: identical bytes.
  ResultStore store{root_};
  RunOptions cached;
  cached.store = &store;
  cached.threads = 4;
  EXPECT_EQ(run_scenario(spec, cached).summary, reference.summary);
  const auto warm = run_scenario(spec, cached);
  EXPECT_TRUE(warm.from_cached_summary);
  EXPECT_EQ(warm.summary, reference.summary);
}

TEST_F(ScenarioRunnerTest, AdaptiveInterruptedRunResumesBitIdentically) {
  const ScenarioSpec spec = adaptive_spec();
  const auto reference = run_scenario(spec);

  ResultStore store{root_};
  RunOptions interrupt;
  interrupt.store = &store;
  interrupt.max_measurements = 3;
  const auto partial = run_scenario(spec, interrupt);
  EXPECT_FALSE(partial.complete);

  RunOptions resume;
  resume.store = &store;
  resume.threads = 2;
  const auto resumed = run_scenario(spec, resume);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_measurements, 3u);
  EXPECT_EQ(resumed.summary, reference.summary);
}

TEST_F(ScenarioRunnerTest, AdaptiveToggleChangesTheContentHash) {
  // --adaptive must cache under its own key: same grid, different protocol.
  ScenarioSpec fixed = adaptive_spec();
  fixed.confirm.adaptive = false;
  fixed.confirm.min_repetitions = 0;
  EXPECT_NE(adaptive_spec().content_hash(), fixed.content_hash());
}

TEST_F(ScenarioRunnerTest, RegistryCiSmokeRunsEndToEnd) {
  const auto& spec = ScenarioRegistry::builtin().at("ci-smoke");
  ResultStore store{root_};
  RunOptions options;
  options.store = &store;
  options.threads = 0;
  const auto cold = run_scenario(spec, options);
  EXPECT_TRUE(cold.complete);
  const auto warm = run_scenario(spec, options);
  EXPECT_TRUE(warm.from_cached_summary);
  EXPECT_EQ(warm.summary, cold.summary);
}

}  // namespace
}  // namespace cloudrepro::scenario
