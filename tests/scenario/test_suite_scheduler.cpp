// Work-stealing suite scheduler: `run_suite` draws every member scenario's
// (cell, repetition) tasks from one shared thread pool, yet its emitted
// output must be byte-identical to the serial reference — at any thread
// count, cold or cached. This is the `cloudrepro suite --threads N`
// contract.

#include "scenario/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"
#include "scenario/registry.h"

namespace cloudrepro::scenario {
namespace {

namespace fs = std::filesystem;

/// Two tiny two-cell scenarios with deliberately unequal work so the
/// stealing path actually engages: member one's cells outlast member two's,
/// and idle workers must cross member boundaries to stay busy.
std::vector<ScenarioSpec> tiny_suite() {
  ScenarioSpec heavy;
  heavy.name = "suite-test-heavy";
  heavy.workloads = {{"hibench", "TS", std::nullopt}};
  heavy.budgets = {5000.0, 10.0};
  heavy.repetitions = 4;

  ScenarioSpec light;
  light.name = "suite-test-light";
  light.workloads = {{"hibench", "KM", std::nullopt}};
  light.budgets = {1000.0};
  light.repetitions = 2;

  return {heavy, light};
}

/// Emits exactly what `cloudrepro suite` writes to stdout: one canonical
/// summary per line, in member order.
std::string emitted_bytes(const std::vector<ScenarioSpec>& specs,
                          RunOptions options) {
  std::string bytes;
  run_suite(specs, options,
            [&bytes](std::size_t, const ScenarioRunResult& result) {
              bytes += result.summary;
              bytes += '\n';
            });
  return bytes;
}

class SuiteWorkStealingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-suite-" + std::string{::testing::UnitTest::GetInstance()
                                                   ->current_test_info()
                                                   ->name()});
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(SuiteWorkStealingTest, OutputBytesIdenticalAcrossThreadCountsAndCache) {
  const auto specs = tiny_suite();

  // Serial reference: threads=1, no store.
  RunOptions serial;
  serial.threads = 1;
  const std::string reference = emitted_bytes(specs, serial);
  ASSERT_FALSE(reference.empty());

  // Work-stealing, cold: threads=4 against a fresh store.
  ResultStore store{root_};
  RunOptions stealing;
  stealing.threads = 4;
  stealing.store = &store;
  EXPECT_EQ(emitted_bytes(specs, stealing), reference) << "cold, threads=4";

  // Work-stealing, cached: every member served from the published summary.
  EXPECT_EQ(emitted_bytes(specs, stealing), reference) << "cached, threads=4";

  // And threads=1 against the warm cache reads the same bytes back.
  RunOptions cached_serial;
  cached_serial.threads = 1;
  cached_serial.store = &store;
  EXPECT_EQ(emitted_bytes(specs, cached_serial), reference)
      << "cached, threads=1";
}

TEST_F(SuiteWorkStealingTest, MembersReportInMemberOrderWithSharedPool) {
  const auto specs = tiny_suite();
  RunOptions options;
  options.threads = 4;
  std::vector<std::size_t> order;
  const auto suite = run_suite(
      specs, options,
      [&order](std::size_t i, const ScenarioRunResult&) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1}));
  ASSERT_EQ(suite.members.size(), 2u);
  EXPECT_TRUE(suite.complete);
  EXPECT_EQ(suite.members[0].executed_measurements, 8u);
  EXPECT_EQ(suite.members[1].executed_measurements, 2u);
}

TEST_F(SuiteWorkStealingTest, ExternalPoolIsSharedAndSurvivesTheSuite) {
  // A caller-owned pool: run_suite must use it (not spawn its own), never
  // wait_idle it to death, and leave it serviceable afterwards.
  runtime::ThreadPool pool{3};
  const auto specs = tiny_suite();
  RunOptions serial;
  serial.threads = 1;
  const std::string reference = emitted_bytes(specs, serial);

  RunOptions external;
  external.pool = &pool;
  EXPECT_EQ(emitted_bytes(specs, external), reference);

  // The pool still runs tasks after the suite is done.
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST_F(SuiteWorkStealingTest, AdaptiveMembersConvergeIdenticallyUnderStealing) {
  // Adaptive CONFIRM is the order-sensitive path: one sequential task per
  // cell, stop decisions re-derived from the value prefix. Stealing across
  // members must not change a single byte of it.
  auto specs = tiny_suite();
  for (auto& spec : specs) {
    spec.confirm.enabled = true;
    spec.confirm.adaptive = true;
    spec.confirm.error_bound = 0.5;  // Loose: converges within the cap.
    spec.repetitions = 6;
  }
  RunOptions serial;
  serial.threads = 1;
  const std::string reference = emitted_bytes(specs, serial);

  RunOptions stealing;
  stealing.threads = 4;
  EXPECT_EQ(emitted_bytes(specs, stealing), reference);
}

TEST_F(SuiteWorkStealingTest, EmptySuiteIsANoOp) {
  RunOptions options;
  options.threads = 4;
  int calls = 0;
  const auto suite = run_suite(
      {}, options, [&calls](std::size_t, const ScenarioRunResult&) { ++calls; });
  EXPECT_TRUE(suite.members.empty());
  EXPECT_TRUE(suite.complete);
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace cloudrepro::scenario
