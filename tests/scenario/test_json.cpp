// The canonical JSON document model that the scenario content hash stands
// on: key-sorted objects, no whitespace, shortest round-trip numbers.

#include "scenario/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace cloudrepro::scenario {
namespace {

TEST(ScenarioJson, CanonicalSortsKeysAndDropsWhitespace) {
  const Json a = Json::parse(R"(  { "b" : 1 , "a" : [ 2 , 3 ] , "c" : { "z" : true , "y" : null } }  )");
  EXPECT_EQ(a.canonical(), R"({"a":[2,3],"b":1,"c":{"y":null,"z":true}})");
}

TEST(ScenarioJson, FieldOrderDoesNotAffectCanonicalBytes) {
  const Json a = Json::parse(R"({"x":1,"y":2})");
  const Json b = Json::parse(R"({ "y" : 2, "x" : 1 })");
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a, b);
}

TEST(ScenarioJson, ParseCanonicalRoundTripsEveryType) {
  const char* text =
      R"({"arr":[1,-2,3.5],"big":18446744073709551615,"f":false,"n":null,"neg":-9223372036854775808,"s":"a\"b\\c\n","t":true})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.canonical(), text);
  EXPECT_EQ(Json::parse(doc.canonical()), doc);
}

TEST(ScenarioJson, DoubleCanonicalFormIsShortestRoundTrip) {
  EXPECT_EQ(canonical_double(0.1), "0.1");
  EXPECT_EQ(canonical_double(5000.0), "5000");
  EXPECT_EQ(canonical_double(0.95), "0.95");
  EXPECT_EQ(canonical_double(-0.0), "0");
  // Every canonical double parses back to the same binary64.
  for (const double v : {0.1, 1.0 / 3.0, 1e-12, 9.875e20, 20200225.0}) {
    const Json parsed = Json::parse(canonical_double(v));
    EXPECT_EQ(parsed.as_double(), v);
  }
}

// Golden literals for the shortest-round-trip formatter. The scenario
// content hash and the journal/summary byte-identity guarantees (including
// the sharded merge) all stand on these exact bytes: if any entry here
// changes, every cached summary and committed golden file silently
// invalidates. A failure means the formatter (or toolchain to_chars)
// changed behavior — that is a breaking change, not a test to update
// casually.
TEST(ScenarioJson, DoubleFormattingGoldenLiterals) {
  struct GoldenCase {
    double value;
    const char* expected;
  };
  const GoldenCase cases[] = {
      // Decimal fractions that are not binary-representable: shortest form
      // wins over the 17-digit exact neighborhood.
      {0.1, "0.1"},
      {0.2, "0.2"},
      {0.3, "0.3"},
      // ... but arithmetic artifacts keep their full 17 digits when needed.
      {0.1 + 0.2, "0.30000000000000004"},
      {1.0 / 3.0, "0.3333333333333333"},
      {2.0 / 3.0, "0.6666666666666666"},
      {3.141592653589793, "3.141592653589793"},
      {123456789.123456789, "123456789.12345679"},
      // Exact powers of two stay exact.
      {0.5, "0.5"},
      {0.125, "0.125"},
      {1048576.0, "1048576"},
      // The 2^53 integer-precision cliff: 9007199254740993 is not
      // representable and collapses to its even neighbor.
      {9007199254740992.0, "9007199254740992"},
      {9007199254740993.0, "9007199254740992"},
      {9007199254740994.0, "9007199254740994"},
      // Integers above 2^53 still print in integer form, not exponent form.
      {72057594037927936.0, "72057594037927936"},
      // Exponent-form thresholds and extremes of the binary64 range.
      {1e21, "1e+21"},
      {1e-7, "1e-07"},
      {-1e-7, "-1e-07"},
      {1.5e300, "1.5e+300"},
      {std::numeric_limits<double>::max(), "1.7976931348623157e+308"},
      {std::numeric_limits<double>::min(), "2.2250738585072014e-308"},
      // Subnormals, down to the very smallest.
      {2.2250738585072011e-308, "2.225073858507201e-308"},
      {std::numeric_limits<double>::denorm_min(), "5e-324"},
      // Physical-constant-shaped inputs round-trip their source literal.
      {6.62607015e-34, "6.62607015e-34"},
      {-0.1, "-0.1"},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(canonical_double(c.value), c.expected)
        << "for value " << c.value;
    // Golden form is self-consistent: parsing it back yields the same
    // binary64, bit for bit.
    const Json parsed = Json::parse(canonical_double(c.value));
    EXPECT_EQ(std::signbit(parsed.as_double()), std::signbit(c.value));
    EXPECT_EQ(parsed.as_double(), c.value);
  }
}

TEST(ScenarioJson, NonFiniteDoublesAreRejected) {
  EXPECT_THROW(canonical_double(std::numeric_limits<double>::infinity()), JsonError);
  EXPECT_THROW(canonical_double(std::nan("")), JsonError);
  EXPECT_THROW(Json{std::nan("")}.canonical(), JsonError);
}

TEST(ScenarioJson, CrossTypeNumericEquality) {
  EXPECT_EQ(Json::parse("5"), Json{5.0});
  EXPECT_EQ(Json{std::int64_t{7}}, Json{std::uint64_t{7}});
  EXPECT_NE(Json::parse("5"), Json::parse("6"));
}

TEST(ScenarioJson, StrictParserRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(Json::parse("{'a':1}"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  // Duplicate keys would make "the same document" hash two ways.
  EXPECT_THROW(Json::parse(R"({"a":1,"a":2})"), JsonError);
}

TEST(ScenarioJson, UnicodeEscapesRoundTrip) {
  const Json doc = Json::parse(R"("aé😀b")");
  EXPECT_EQ(Json::parse(doc.canonical()), doc);
}

TEST(ScenarioJson, AccessorsThrowOnTypeMismatch) {
  const Json doc = Json::parse(R"({"a":1})");
  EXPECT_THROW(doc.as_array(), JsonError);
  EXPECT_THROW(doc.at("missing"), JsonError);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(Json::parse("-1").as_uint(), JsonError);
  EXPECT_THROW(Json::parse("18446744073709551615").as_int(), JsonError);
}

}  // namespace
}  // namespace cloudrepro::scenario
