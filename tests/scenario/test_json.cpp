// The canonical JSON document model that the scenario content hash stands
// on: key-sorted objects, no whitespace, shortest round-trip numbers.

#include "scenario/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace cloudrepro::scenario {
namespace {

TEST(ScenarioJson, CanonicalSortsKeysAndDropsWhitespace) {
  const Json a = Json::parse(R"(  { "b" : 1 , "a" : [ 2 , 3 ] , "c" : { "z" : true , "y" : null } }  )");
  EXPECT_EQ(a.canonical(), R"({"a":[2,3],"b":1,"c":{"y":null,"z":true}})");
}

TEST(ScenarioJson, FieldOrderDoesNotAffectCanonicalBytes) {
  const Json a = Json::parse(R"({"x":1,"y":2})");
  const Json b = Json::parse(R"({ "y" : 2, "x" : 1 })");
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a, b);
}

TEST(ScenarioJson, ParseCanonicalRoundTripsEveryType) {
  const char* text =
      R"({"arr":[1,-2,3.5],"big":18446744073709551615,"f":false,"n":null,"neg":-9223372036854775808,"s":"a\"b\\c\n","t":true})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.canonical(), text);
  EXPECT_EQ(Json::parse(doc.canonical()), doc);
}

TEST(ScenarioJson, DoubleCanonicalFormIsShortestRoundTrip) {
  EXPECT_EQ(canonical_double(0.1), "0.1");
  EXPECT_EQ(canonical_double(5000.0), "5000");
  EXPECT_EQ(canonical_double(0.95), "0.95");
  EXPECT_EQ(canonical_double(-0.0), "0");
  // Every canonical double parses back to the same binary64.
  for (const double v : {0.1, 1.0 / 3.0, 1e-12, 9.875e20, 20200225.0}) {
    const Json parsed = Json::parse(canonical_double(v));
    EXPECT_EQ(parsed.as_double(), v);
  }
}

TEST(ScenarioJson, NonFiniteDoublesAreRejected) {
  EXPECT_THROW(canonical_double(std::numeric_limits<double>::infinity()), JsonError);
  EXPECT_THROW(canonical_double(std::nan("")), JsonError);
  EXPECT_THROW(Json{std::nan("")}.canonical(), JsonError);
}

TEST(ScenarioJson, CrossTypeNumericEquality) {
  EXPECT_EQ(Json::parse("5"), Json{5.0});
  EXPECT_EQ(Json{std::int64_t{7}}, Json{std::uint64_t{7}});
  EXPECT_NE(Json::parse("5"), Json::parse("6"));
}

TEST(ScenarioJson, StrictParserRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(Json::parse("{'a':1}"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  // Duplicate keys would make "the same document" hash two ways.
  EXPECT_THROW(Json::parse(R"({"a":1,"a":2})"), JsonError);
}

TEST(ScenarioJson, UnicodeEscapesRoundTrip) {
  const Json doc = Json::parse(R"("aé😀b")");
  EXPECT_EQ(Json::parse(doc.canonical()), doc);
}

TEST(ScenarioJson, AccessorsThrowOnTypeMismatch) {
  const Json doc = Json::parse(R"({"a":1})");
  EXPECT_THROW(doc.as_array(), JsonError);
  EXPECT_THROW(doc.at("missing"), JsonError);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(Json::parse("-1").as_uint(), JsonError);
  EXPECT_THROW(Json::parse("18446744073709551615").as_int(), JsonError);
}

}  // namespace
}  // namespace cloudrepro::scenario
