// ScenarioSpec serialization and the content hash: round-trips, the
// invariances the cache key depends on (field order, whitespace, cosmetic
// renames), and the sensitivities it must have (any semantic field).

#include "scenario/spec.h"

#include <gtest/gtest.h>

#include "scenario/json.h"

namespace cloudrepro::scenario {
namespace {

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "unit-test";
  spec.title = "tiny grid";
  spec.paper_ref = "none";
  spec.workloads = {{"hibench", "TS", std::nullopt},
                    {"tpcds", "Q65", CloudModel::kHpcCloud}};
  spec.budgets = {5000.0, 10.0};
  spec.repetitions = 3;
  spec.engine.partition_skew = 0.5;
  spec.confirm.enabled = true;
  spec.confirm.error_bound = 0.05;
  return spec;
}

TEST(ScenarioSpecJson, RoundTripPreservesEverything) {
  const ScenarioSpec spec = small_spec();
  const ScenarioSpec back = ScenarioSpec::parse(spec.canonical_json());
  EXPECT_EQ(back.canonical_json(), spec.canonical_json());
  EXPECT_EQ(back.content_hash(), spec.content_hash());
  EXPECT_EQ(back.name, "unit-test");
  EXPECT_EQ(back.workloads.size(), 2u);
  EXPECT_EQ(back.workloads[1].cloud, CloudModel::kHpcCloud);
  EXPECT_EQ(back.budgets, (std::vector<double>{5000.0, 10.0}));
  EXPECT_TRUE(back.confirm.enabled);
}

TEST(ScenarioSpecJson, FieldOrderAndWhitespaceDoNotAffectHash) {
  const ScenarioSpec spec = small_spec();
  // Same document, keys shuffled and whitespace sprinkled.
  const std::string reordered = R"({
    "workloads": [ {"name":"TS","suite":"hibench"},
                   {"cloud":"hpccloud", "name":"Q65", "suite":"tpcds"} ],
    "seed": 20200225,
    "repetitions": 3,
    "name": "unit-test",
    "title": "tiny grid",
    "paper_ref": "none",
    "engine": { "partition_skew": 0.5 },
    "confirm": { "error_bound": 0.05, "enabled": true },
    "budgets": [5000, 10]
  })";
  const ScenarioSpec parsed = ScenarioSpec::parse(reordered);
  EXPECT_EQ(parsed.content_hash(), spec.content_hash());
  EXPECT_EQ(parsed.canonical_json(), spec.canonical_json());
}

TEST(ScenarioSpecJson, CosmeticFieldsAndSeedDoNotAffectHash) {
  const ScenarioSpec spec = small_spec();
  ScenarioSpec renamed = spec;
  renamed.name = "renamed";
  renamed.title = "different title";
  renamed.paper_ref = "Figure 99";
  renamed.seed = 1;
  EXPECT_EQ(renamed.content_hash(), spec.content_hash());
}

TEST(ScenarioSpecJson, EverySemanticFieldChangesTheHash) {
  const ScenarioSpec base = small_spec();
  const std::string h = base.content_hash();

  ScenarioSpec s = base;
  s.budgets = {5000.0, 100.0};
  EXPECT_NE(s.content_hash(), h);

  s = base;
  s.repetitions = 4;
  EXPECT_NE(s.content_hash(), h);

  s = base;
  s.cluster.nodes = 13;
  EXPECT_NE(s.content_hash(), h);

  s = base;
  s.engine.partition_skew = 0.6;
  EXPECT_NE(s.content_hash(), h);

  s = base;
  s.workloads[0].name = "WC";
  EXPECT_NE(s.content_hash(), h);

  s = base;
  s.workloads[1].cloud = CloudModel::kGce;
  EXPECT_NE(s.content_hash(), h);

  s = base;
  s.faults.enabled = true;
  s.faults.slowdown_rate_per_hour = 1.0;
  EXPECT_NE(s.content_hash(), h);

  s = base;
  s.confirm.error_bound = 0.01;
  EXPECT_NE(s.content_hash(), h);

  s = base;
  s.randomize_order = true;
  EXPECT_NE(s.content_hash(), h);

  s = base;
  s.confirm.adaptive = true;
  EXPECT_NE(s.content_hash(), h);

  s = base;
  s.confirm.min_repetitions = 2;
  EXPECT_NE(s.content_hash(), h);
}

TEST(ScenarioSpecJson, AdaptiveConfirmRoundTripsAndValidates) {
  ScenarioSpec spec = small_spec();
  spec.confirm.adaptive = true;
  spec.confirm.min_repetitions = 2;
  const ScenarioSpec back = ScenarioSpec::parse(spec.canonical_json());
  EXPECT_TRUE(back.confirm.adaptive);
  EXPECT_EQ(back.confirm.min_repetitions, 2);
  EXPECT_EQ(back.content_hash(), spec.content_hash());

  // adaptive without enabled is a contradiction, not a silent no-op.
  ScenarioSpec bad = small_spec();
  bad.confirm.enabled = false;
  bad.confirm.adaptive = true;
  EXPECT_THROW(bad.validate(), JsonError);

  // The floor cannot exceed the cap.
  bad = small_spec();
  bad.confirm.adaptive = true;
  bad.confirm.min_repetitions = bad.repetitions + 1;
  EXPECT_THROW(bad.validate(), JsonError);

  bad = small_spec();
  bad.confirm.min_repetitions = -1;
  EXPECT_THROW(bad.validate(), JsonError);
}

TEST(ScenarioSpecJson, HashIsStableHex) {
  // 64 lowercase hex chars; identical across invocations (the cache's
  // on-disk keys must survive process restarts).
  const std::string h = small_spec().content_hash();
  ASSERT_EQ(h.size(), 64u);
  for (const char c : h) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
  EXPECT_EQ(h, small_spec().content_hash());
}

TEST(ScenarioSpecJson, UnknownFieldsAreRejected) {
  EXPECT_THROW(
      ScenarioSpec::parse(
          R"({"name":"x","workloads":[{"suite":"hibench","name":"TS"}],"repetitons":5})"),
      JsonError);
  EXPECT_THROW(
      ScenarioSpec::parse(
          R"({"name":"x","workloads":[{"suite":"hibench","name":"TS"}],"engine":{"partition_skw":1}})"),
      JsonError);
}

TEST(ScenarioSpecJson, UnsupportedSchemaVersionIsRejected) {
  EXPECT_THROW(
      ScenarioSpec::parse(
          R"({"schema":99,"name":"x","workloads":[{"suite":"hibench","name":"TS"}]})"),
      JsonError);
}

TEST(ScenarioSpecJson, ValidateCatchesOutOfRangeFields) {
  ScenarioSpec spec = small_spec();
  spec.repetitions = 0;
  EXPECT_THROW(spec.validate(), JsonError);

  spec = small_spec();
  spec.workloads.clear();
  EXPECT_THROW(spec.validate(), JsonError);

  spec = small_spec();
  spec.workloads[0].suite = "nosuch";
  EXPECT_THROW(spec.validate(), JsonError);

  spec = small_spec();
  spec.budgets = {-1.0};
  EXPECT_THROW(spec.validate(), JsonError);

  spec = small_spec();
  spec.confidence = 1.5;
  EXPECT_THROW(spec.validate(), JsonError);
}

TEST(ScenarioSpecJson, TreatmentLabelsUseCanonicalNumbers) {
  const ScenarioSpec spec = small_spec();
  EXPECT_EQ(spec.treatment_label(0), "budget=5000");
  EXPECT_EQ(spec.treatment_label(1), "budget=10");
  ScenarioSpec nominal = spec;
  nominal.budgets.clear();
  EXPECT_EQ(nominal.treatment_label(0), "nominal");
  EXPECT_EQ(nominal.treatment_count(), 1u);
}

TEST(ScenarioSpecJson, ShapeArithmetic) {
  const ScenarioSpec spec = small_spec();
  EXPECT_EQ(spec.cell_count(), 4u);
  EXPECT_EQ(spec.total_measurements(), 12u);
}

}  // namespace
}  // namespace cloudrepro::scenario
