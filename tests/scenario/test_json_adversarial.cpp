// Adversarial bytes into the canonical JSON parser: truncations, bit
// flips, and garbage must throw JsonError or parse into a value that
// round-trips — never crash, hang, or silently mis-parse.

#include "scenario/json.h"

#include <gtest/gtest.h>

#include <string>

#include "scenario/registry.h"
#include "stats/rng.h"

namespace cloudrepro::scenario {
namespace {

/// A real document of ours: the canonical spec of the ci-smoke scenario,
/// exercising strings, numbers, arrays, objects, and booleans.
std::string sample_document() {
  return ScenarioRegistry::builtin().at("ci-smoke").canonical_json();
}

/// The contract under attack: parsing either throws JsonError or yields a
/// value whose canonical form re-parses to the same canonical form.
void parse_or_reject(const std::string& text) {
  try {
    const Json parsed = Json::parse(text);
    const std::string canonical = parsed.canonical();
    EXPECT_EQ(Json::parse(canonical).canonical(), canonical);
  } catch (const JsonError&) {
    // Rejection is always acceptable.
  }
}

TEST(JsonAdversarialTest, CanonicalDocumentRoundTrips) {
  const std::string doc = sample_document();
  EXPECT_EQ(Json::parse(doc).canonical(), doc);
}

TEST(JsonAdversarialTest, EveryStrictPrefixOfAnObjectIsRejected) {
  const std::string doc = sample_document();
  ASSERT_EQ(doc.front(), '{');
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_THROW(Json::parse(doc.substr(0, len)), JsonError)
        << "prefix of length " << len << " parsed as complete";
  }
}

TEST(JsonAdversarialTest, EveryBitFlipParsesOrRejectsCleanly) {
  const std::string doc = sample_document();
  for (std::size_t i = 0; i < doc.size(); ++i) {
    for (const unsigned char mask : {0x01, 0x20, 0x80}) {
      std::string flipped = doc;
      flipped[i] = static_cast<char>(flipped[i] ^ mask);
      parse_or_reject(flipped);
    }
  }
}

TEST(JsonAdversarialTest, GarbageBytesNeverCrashTheParser) {
  stats::Rng rng{17};
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    const std::size_t len = rng.next_u64() % 256;
    for (std::size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.next_u64() & 0xff));
    }
    parse_or_reject(garbage);
  }
}

TEST(JsonAdversarialTest, StructuredGarbageNeverCrashesTheParser) {
  // Brace/bracket/quote soup hits the recursive-descent paths harder than
  // uniform random bytes.
  const char alphabet[] = "{}[]\",:.0123456789eE+-tfn \\";
  stats::Rng rng{19};
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup;
    const std::size_t len = rng.next_u64() % 128;
    for (std::size_t i = 0; i < len; ++i) {
      soup.push_back(alphabet[rng.next_u64() % (sizeof(alphabet) - 1)]);
    }
    parse_or_reject(soup);
  }
}

TEST(JsonAdversarialTest, DeepNestingRejectsInsteadOfOverflowing) {
  // 100k unclosed arrays: must reject (or parse, for the closed variant)
  // without exhausting the stack.
  const std::string open(100000, '[');
  EXPECT_THROW(Json::parse(open), JsonError);
  std::string closed = open;
  closed.append(100000, ']');
  parse_or_reject(closed);
}

}  // namespace
}  // namespace cloudrepro::scenario
