// The built-in scenario catalog: every spec validates, names and hashes are
// unique, the grids the benches render match, and suites only reference
// existing scenarios.

#include "scenario/registry.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "scenario/runner.h"

namespace cloudrepro::scenario {
namespace {

TEST(ScenarioRegistry, BuiltinCatalogValidatesAndHasUniqueIdentities) {
  const auto& registry = ScenarioRegistry::builtin();
  ASSERT_GE(registry.scenarios().size(), 8u);

  std::set<std::string> names, hashes;
  for (const auto& spec : registry.scenarios()) {
    EXPECT_NO_THROW(spec.validate()) << spec.name;
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate name " << spec.name;
    EXPECT_TRUE(hashes.insert(spec.content_hash()).second)
        << "duplicate hash for " << spec.name;
  }
}

TEST(ScenarioRegistry, CoversThePaperFiguresAndTable4) {
  const auto& registry = ScenarioRegistry::builtin();
  for (const char* name :
       {"fig13-confirm", "fig15-terasort-budget", "fig16-hibench-budget",
        "fig17-tpcds-budget", "fig18-straggler", "fig19-budget-depletion",
        "table4-setup"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(ScenarioRegistry, Fig16GridMatchesTheBenchConstants) {
  // bench_fig16_hibench_budget renders this scenario; the golden file pins
  // its exact output, so this grid must stay exactly the paper's.
  const auto& spec = ScenarioRegistry::builtin().at("fig16-hibench-budget");
  EXPECT_EQ(spec.budgets, (std::vector<double>{5000.0, 1000.0, 100.0, 10.0}));
  EXPECT_EQ(spec.repetitions, 10);
  EXPECT_EQ(spec.seed, 20200225u);
  EXPECT_FALSE(spec.randomize_order);
  EXPECT_EQ(spec.cluster.model, CloudModel::kUniformTokenBucket);
  EXPECT_EQ(spec.cluster.nodes, 12);
  EXPECT_EQ(spec.cluster.cores_per_node, 16);
  EXPECT_EQ(spec.cluster.line_rate_gbps, 10.0);
  // Default engine — the bench used a default-constructed SparkEngine.
  EXPECT_EQ(spec.engine.partition_skew, 0.0);
  EXPECT_TRUE(spec.engine.stable_partitioning);
  EXPECT_EQ(spec.engine.machine_noise_cv, 0.0);
  EXPECT_FALSE(spec.engine.speculation);
  ASSERT_EQ(spec.workloads.size(), 5u);
  EXPECT_EQ(spec.workloads.front().name, "TS");
  EXPECT_EQ(spec.cell_count(), 20u);
}

TEST(ScenarioRegistry, Fig17GridMatchesTheBench) {
  const auto& spec = ScenarioRegistry::builtin().at("fig17-tpcds-budget");
  EXPECT_EQ(spec.workloads.size(), 21u);
  EXPECT_EQ(spec.budgets, (std::vector<double>{5000.0, 1000.0, 100.0, 10.0}));
  EXPECT_EQ(spec.engine.partition_skew, 0.5);
  EXPECT_EQ(spec.total_measurements(), 840u);
}

TEST(ScenarioRegistry, EveryBuiltinWorkloadResolvesAndBuildsCells) {
  for (const auto& spec : ScenarioRegistry::builtin().scenarios()) {
    for (const auto& ref : spec.workloads) {
      EXPECT_NO_THROW(resolve_workload(ref)) << spec.name << " " << ref.name;
    }
    const auto cells = build_cells(spec);
    EXPECT_EQ(cells.size(), spec.cell_count()) << spec.name;
  }
}

TEST(ScenarioRegistry, SuitesOnlyReferenceExistingScenarios) {
  const auto& registry = ScenarioRegistry::builtin();
  EXPECT_FALSE(registry.suites().empty());
  for (const auto& [suite_name, members] : registry.suites()) {
    EXPECT_FALSE(members.empty()) << suite_name;
    for (const auto& member : members) {
      EXPECT_NE(registry.find(member), nullptr) << suite_name << "/" << member;
    }
  }
  EXPECT_FALSE(registry.suite("ci").empty());
}

TEST(ScenarioRegistry, LookupErrorsListKnownNames) {
  const auto& registry = ScenarioRegistry::builtin();
  EXPECT_EQ(registry.find("nope"), nullptr);
  try {
    registry.at("nope");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& error) {
    EXPECT_NE(std::string{error.what()}.find("fig16-hibench-budget"),
              std::string::npos);
  }
  EXPECT_THROW(registry.suite("nope"), std::out_of_range);
}

TEST(ScenarioRegistry, AddRejectsDuplicatesAndInvalidSpecs) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "dup";
  spec.workloads = {{"hibench", "TS", std::nullopt}};
  registry.add(spec);
  EXPECT_THROW(registry.add(spec), std::invalid_argument);

  ScenarioSpec invalid;  // No name, no workloads: fails validate().
  EXPECT_THROW(registry.add(invalid), JsonError);

  EXPECT_THROW(registry.add_suite("s", {"missing"}), std::invalid_argument);
  registry.add_suite("s", {"dup"});
  EXPECT_EQ(registry.suite("s").size(), 1u);
}

}  // namespace
}  // namespace cloudrepro::scenario
