// The content-addressed result cache: miss → partial → hit classification,
// counters, atomic summary publication, eviction.

#include "scenario/result_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/journal.h"
#include "obs/metrics.h"

namespace cloudrepro::scenario {
namespace {

namespace fs = std::filesystem;

ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "store-test";
  spec.workloads = {{"hibench", "TS", std::nullopt}};
  spec.budgets = {5000.0};
  spec.repetitions = 4;
  return spec;
}

class ScenarioResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-store-" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "-" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(ScenarioResultStoreTest, MissThenPartialThenHit) {
  obs::MetricsRegistry metrics;
  ResultStore store{root_, &metrics};
  const ScenarioSpec spec = tiny_spec();
  const std::uint64_t seed = spec.seed;

  auto lookup = store.lookup(spec, seed);
  EXPECT_EQ(lookup.state, ResultStore::HitState::kMiss);
  EXPECT_EQ(lookup.cached_measurements, 0u);
  EXPECT_EQ(lookup.total_measurements, 4u);

  // A journal with completed measurements (but no summary) is a partial hit.
  // Records only count when their checksum verifies.
  const auto journal = store.prepare(spec, seed);
  {
    std::ofstream out{journal};
    out << R"({"header":true})" << "\n";
    out << core::journal_line({0, 0, 1.5}) << "\n";
    out << core::journal_line({0, 1, 2.5}) << "\n";
    out << core::journal_line({0, 2, 3.5}).substr(0, 10);  // Torn final line.
  }
  lookup = store.lookup(spec, seed);
  EXPECT_EQ(lookup.state, ResultStore::HitState::kPartial);
  EXPECT_EQ(lookup.cached_measurements, 2u);

  store.write_summary(spec, seed, "{\"summary\":true}");
  lookup = store.lookup(spec, seed);
  EXPECT_EQ(lookup.state, ResultStore::HitState::kHit);
  EXPECT_EQ(lookup.cached_measurements, 4u);
  EXPECT_EQ(store.read_summary(spec, seed), "{\"summary\":true}");

  EXPECT_EQ(metrics.counter_value("scenario.cache.miss"), 1.0);
  EXPECT_EQ(metrics.counter_value("scenario.cache.partial"), 1.0);
  EXPECT_EQ(metrics.counter_value("scenario.cache.hit"), 1.0);
}

TEST_F(ScenarioResultStoreTest, PeekDoesNotTouchCounters) {
  obs::MetricsRegistry metrics;
  ResultStore store{root_, &metrics};
  const ScenarioSpec spec = tiny_spec();
  EXPECT_EQ(store.peek(spec, spec.seed).state, ResultStore::HitState::kMiss);
  EXPECT_EQ(metrics.counter_value("scenario.cache.miss"), 0.0);
}

TEST_F(ScenarioResultStoreTest, KeyIncludesHashSeedAndSchemaVersion) {
  ResultStore store{root_};
  const ScenarioSpec spec = tiny_spec();
  const auto dir = store.entry_dir(spec, 42).filename().string();
  EXPECT_EQ(dir, spec.content_hash() + "-s42-v" +
                     std::to_string(kResultSchemaVersion));

  // Different seed → different entry; a hit under one seed stays a miss
  // under another.
  store.write_summary(spec, 42, "{}");
  EXPECT_TRUE(store.has_summary(spec, 42));
  EXPECT_FALSE(store.has_summary(spec, 43));

  // A semantic change re-keys the entry.
  ScenarioSpec changed = spec;
  changed.repetitions = 5;
  EXPECT_FALSE(store.has_summary(changed, 42));
}

TEST_F(ScenarioResultStoreTest, PrepareWritesTheCanonicalSpec) {
  ResultStore store{root_};
  const ScenarioSpec spec = tiny_spec();
  const auto journal = store.prepare(spec, spec.seed);
  EXPECT_EQ(journal.filename(), "journal.jsonl");

  std::ifstream in{journal.parent_path() / "scenario.json"};
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, spec.canonical_json());
}

TEST_F(ScenarioResultStoreTest, SummaryWriteIsAtomicIntoPlace) {
  ResultStore store{root_};
  const ScenarioSpec spec = tiny_spec();
  store.write_summary(spec, spec.seed, "first");
  store.write_summary(spec, spec.seed, "second");
  EXPECT_EQ(store.read_summary(spec, spec.seed), "second");
  // No leftover temp file.
  EXPECT_FALSE(fs::exists(store.entry_dir(spec, spec.seed) / "summary.json.tmp"));
}

TEST_F(ScenarioResultStoreTest, EntriesEvictAndClear) {
  obs::MetricsRegistry metrics;
  ResultStore store{root_, &metrics};
  const ScenarioSpec a = tiny_spec();
  ScenarioSpec b = tiny_spec();
  b.budgets = {10.0};

  store.write_summary(a, a.seed, "{}");
  store.prepare(b, b.seed);

  const auto entries = store.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_LT(entries[0].key, entries[1].key);
  EXPECT_EQ(entries[0].complete + entries[1].complete, 1);

  EXPECT_EQ(store.evict(a, a.seed), 1u);
  EXPECT_EQ(store.evict(a, a.seed), 0u);  // Already gone.
  EXPECT_EQ(store.clear(), 1u);
  EXPECT_TRUE(store.entries().empty());
  EXPECT_EQ(metrics.counter_value("scenario.cache.evictions"), 2.0);
}

TEST_F(ScenarioResultStoreTest, MissingRootBehavesAsEmpty) {
  ResultStore store{root_ / "never-created"};
  EXPECT_TRUE(store.entries().empty());
  EXPECT_EQ(store.clear(), 0u);
  EXPECT_EQ(store.peek(tiny_spec(), 1).state, ResultStore::HitState::kMiss);
}

}  // namespace
}  // namespace cloudrepro::scenario
