// Crash torture through the whole persistence stack: run_scenario with a
// ResultStore over a FaultVfs, crash at every vfs operation k, restart,
// and require the final published summary to be byte-identical to an
// uninterrupted run — the capstone guarantee of the durability layer.
//
// The in-repo sweep uses a 3-measurement spec so the exhaustive k-loop
// stays cheap. Setting CLOUDREPRO_CRASH_TORTURE=1 additionally sweeps the
// ci-smoke catalog scenario (12 measurements) at a stride — the dedicated
// CI job runs that; local ctest skips it.

#include <gtest/gtest.h>

#include <csignal>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "io/fault_vfs.h"
#include "io/vfs.h"
#include "obs/metrics.h"
#include "scenario/registry.h"
#include "scenario/result_store.h"
#include "scenario/runner.h"

namespace cloudrepro::scenario {
namespace {

namespace fs = std::filesystem;

ScenarioSpec micro_spec() {
  ScenarioSpec spec;
  spec.name = "torture-micro";
  spec.workloads = {{"hibench", "TS", std::nullopt}};
  spec.budgets = {5000.0};
  spec.repetitions = 3;
  return spec;
}

class ScenarioTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-scenario-torture-" +
             std::string{::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()});
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Sweeps crash point k over [1, stride, 2*stride, ...]: crash, restart
  /// with a clean vfs over the surviving bytes, and compare the final
  /// summary against `reference` byte for byte.
  void sweep(const ScenarioSpec& spec, const std::string& reference,
             std::uint64_t total_ops, std::uint64_t stride) {
    for (std::uint64_t k = 1; k <= total_ops; k += stride) {
      const auto cache = root_ / ("k" + std::to_string(k));

      io::FaultVfsOptions fault;
      fault.crash_at_op = k;
      fault.torn_write_seed = k * 131 + 7;
      bool crashed = false;
      std::string summary;
      {
        io::FaultVfs vfs{real_, fault};
        ResultStore store{cache, nullptr, &vfs};
        RunOptions options;
        options.store = &store;
        options.vfs = &vfs;
        try {
          summary = run_scenario(spec, options).summary;
        } catch (const io::SimulatedCrash&) {
          crashed = true;
        }
      }
      if (crashed) {
        io::FaultVfs vfs{real_};
        ResultStore store{cache, nullptr, &vfs};
        RunOptions options;
        options.store = &store;
        options.vfs = &vfs;
        const auto resumed = run_scenario(spec, options);
        ASSERT_TRUE(resumed.complete) << "crash point k=" << k;
        summary = resumed.summary;

        // The restart heals the entry completely: verify finds no damage.
        for (const auto& report : store.verify()) {
          EXPECT_TRUE(report.ok) << "k=" << k << ": " << report.note;
        }
      }
      EXPECT_EQ(summary, reference) << "summary diverged after crash at op " << k;
    }
  }

  fs::path root_;
  io::RealVfs real_;
};

TEST_F(ScenarioTortureTest, EveryCrashPointYieldsTheUninterruptedSummary) {
  const auto spec = micro_spec();
  const std::string reference = run_scenario(spec).summary;

  // Clean store-backed run through a counting vfs: its op total is the
  // sweep domain (journal + lock + clock + summary publication ops).
  io::FaultVfs counting{real_};
  ResultStore store{root_ / "ref", nullptr, &counting};
  RunOptions options;
  options.store = &store;
  options.vfs = &counting;
  ASSERT_EQ(run_scenario(spec, options).summary, reference);
  const std::uint64_t total_ops = counting.ops();
  ASSERT_GT(total_ops, 20u);

  sweep(spec, reference, total_ops, /*stride=*/1);
}

TEST_F(ScenarioTortureTest, CiSmokeStridedSweepWhenRequested) {
  if (const char* env = std::getenv("CLOUDREPRO_CRASH_TORTURE");
      !env || std::string_view{env} != "1") {
    GTEST_SKIP() << "set CLOUDREPRO_CRASH_TORTURE=1 to run the ci-smoke sweep";
  }
  const ScenarioSpec spec = ScenarioRegistry::builtin().at("ci-smoke");
  const std::string reference = run_scenario(spec).summary;

  io::FaultVfs counting{real_};
  ResultStore store{root_ / "ref", nullptr, &counting};
  RunOptions options;
  options.store = &store;
  options.vfs = &counting;
  ASSERT_EQ(run_scenario(spec, options).summary, reference);

  sweep(spec, reference, counting.ops(), /*stride=*/3);
}

TEST_F(ScenarioTortureTest, SignalDrivenCancellationResumesBitIdentical) {
  // The CLI wires SIGINT to an atomic the campaign polls. Model exactly
  // that: a real handler, a real raise(), then a resumed run — which must
  // land on the uninterrupted bytes.
  static std::atomic<bool> cancel{false};
  cancel.store(false);
  using Handler = void (*)(int);
  const Handler previous = std::signal(SIGINT, +[](int) { cancel.store(true); });
  ASSERT_NE(previous, SIG_ERR);

  const auto spec = micro_spec();
  const std::string reference = run_scenario(spec).summary;

  ResultStore store{root_ / "cache"};
  {
    // Interrupt "before the run": the flag is already set when the campaign
    // checks it, so zero new measurements start and the journal holds only
    // completed work (here: none) — the deterministic stand-in for a signal
    // arriving mid-campaign, whose nondeterministic variant the campaign
    // cancellation test covers.
    std::raise(SIGINT);
    RunOptions options;
    options.store = &store;
    options.cancel = &cancel;
    const auto interrupted = run_scenario(spec, options);
    EXPECT_FALSE(interrupted.complete);
    EXPECT_EQ(interrupted.executed_measurements, 0u);
    EXPECT_FALSE(store.has_summary(spec, spec.seed));
  }

  cancel.store(false);
  RunOptions options;
  options.store = &store;
  options.cancel = &cancel;
  const auto resumed = run_scenario(spec, options);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.summary, reference);
  EXPECT_TRUE(store.has_summary(spec, spec.seed));

  std::signal(SIGINT, previous);
}

}  // namespace
}  // namespace cloudrepro::scenario
