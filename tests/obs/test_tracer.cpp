#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "json_lint.h"
#include "runtime/thread_pool.h"

namespace cloudrepro::obs {
namespace {

TEST(ObsTracer, RecordsInstantAndCompleteEvents) {
  Tracer tracer;
  tracer.instant(1.5, "cat", "tick", {"node", 3.0});
  tracer.complete(2.0, 0.5, "cat", "span", {"cell", 1.0}, {"rep", 2.0}, 7, 1);

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].ts_s, 1.5);
  EXPECT_EQ(events[0].phase, TracePhase::kInstant);
  EXPECT_STREQ(events[0].name, "tick");
  EXPECT_STREQ(events[0].arg0.key, "node");
  EXPECT_DOUBLE_EQ(events[0].arg0.value, 3.0);
  EXPECT_DOUBLE_EQ(events[1].dur_s, 0.5);
  EXPECT_EQ(events[1].phase, TracePhase::kComplete);
  EXPECT_EQ(events[1].lane, 7u);
  EXPECT_EQ(events[1].track, 1u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
}

TEST(ObsTracer, ZeroCapacityIsRejected) {
  EXPECT_THROW(Tracer{0}, std::invalid_argument);
}

TEST(ObsTracer, RingKeepsTheMostRecentEvents) {
  Tracer tracer{8};
  for (int i = 0; i < 20; ++i) {
    tracer.instant(static_cast<double>(i), "cat", "e");
  }
  EXPECT_EQ(tracer.capacity(), 8u);
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.emitted(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, and exactly the last 8 emissions (12..19).
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].ts_s, static_cast<double>(12 + i));
    EXPECT_EQ(events[i].seq, 12 + i);
  }
}

TEST(ObsTracer, WraparoundExactlyAtCapacityBoundary) {
  Tracer tracer{4};
  for (int i = 0; i < 4; ++i) tracer.instant(static_cast<double>(i), "c", "e");
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.instant(4.0, "c", "e");  // First overwrite.
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_DOUBLE_EQ(tracer.snapshot().front().ts_s, 1.0);
}

TEST(ObsTracer, ClearResetsEverything) {
  Tracer tracer{4};
  for (int i = 0; i < 10; ++i) tracer.instant(0.0, "c", "e");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.emitted(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(ObsTracer, EventsNamedFiltersExactly) {
  Tracer tracer;
  tracer.instant(0.0, "c", "alpha");
  tracer.instant(1.0, "c", "beta");
  tracer.instant(2.0, "c", "alpha");
  const auto alphas = tracer.events_named("alpha");
  ASSERT_EQ(alphas.size(), 2u);
  EXPECT_DOUBLE_EQ(alphas[0].ts_s, 0.0);
  EXPECT_DOUBLE_EQ(alphas[1].ts_s, 2.0);
  EXPECT_TRUE(tracer.events_named("gamma").empty());
}

TEST(ObsTracer, ConcurrentEmitLosesNoEventsUnderThreadPool) {
  // TSan covers this test (suite name matches the CI regex): many producers
  // against one tracer, as in the parallel campaign runtime.
  Tracer tracer{1 << 12};
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 2000;
  runtime::ThreadPool pool{kThreads};
  for (int t = 0; t < kThreads; ++t) {
    pool.submit([&tracer, t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        tracer.instant(static_cast<double>(i), "cat", "e",
                       {"thread", static_cast<double>(t)}, {},
                       static_cast<std::uint32_t>(t));
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(tracer.emitted(),
            static_cast<std::uint64_t>(kThreads * kEventsPerThread));
  EXPECT_EQ(tracer.size(), tracer.capacity());
  // Sequence numbers in the retained window are consecutive: no tearing.
  const auto events = tracer.snapshot();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(ObsTracer, ChromeExportIsValidJson) {
  Tracer tracer;
  tracer.instant(1.0, "cat", "tick", {"node", 1.0}, {"x", 2.0}, 3, 1);
  tracer.complete(2.0, 0.25, "cat", "span");
  std::ostringstream os;
  tracer.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(testing::JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Seconds convert to microseconds for chrome://tracing.
  EXPECT_NE(json.find("\"ts\":1000000"), std::string::npos);
}

TEST(ObsTracer, JsonlExportIsOneValidObjectPerLine) {
  Tracer tracer;
  tracer.instant(1.0, "cat", "a");
  tracer.complete(2.0, 1.0, "cat", "b", {"k", 1.0});
  std::ostringstream os;
  tracer.write_jsonl(os);
  std::istringstream lines{os.str()};
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(testing::JsonLint::valid(line)) << line;
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(ObsTracer, EmptyTracerExportsValidJson) {
  Tracer tracer;
  std::ostringstream os;
  tracer.write_chrome_json(os);
  EXPECT_TRUE(testing::JsonLint::valid(os.str())) << os.str();
}

}  // namespace
}  // namespace cloudrepro::obs
