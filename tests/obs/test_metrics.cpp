#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <thread>
#include <vector>

#include "json_lint.h"
#include "runtime/thread_pool.h"

namespace cloudrepro::obs {
namespace {

TEST(ObsMetrics, CounterStartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(ObsMetrics, GaugeIsLastWriteWins) {
  Gauge g;
  g.set(4.0);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(ObsMetrics, RegistryReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  a.add(7.0);
  // Re-registering more metrics must not move existing handles.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_DOUBLE_EQ(b.value(), 7.0);
}

TEST(ObsMetrics, LookupOfUnregisteredNameIsZero) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter_value("absent"), 0.0);
  EXPECT_EQ(reg.gauge_value("absent"), 0.0);
}

TEST(ObsMetrics, HistogramBucketsPartitionTheLine) {
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};
  Histogram h{bounds};
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bounds are inclusive)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 0u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 1006.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 1006.5 / 4.0);
}

TEST(ObsMetrics, HistogramRejectsUnsortedBounds) {
  const std::array<double, 2> bad{10.0, 1.0};
  EXPECT_THROW(Histogram{bad}, std::invalid_argument);
}

TEST(ObsMetrics, HistogramDefaultBoundsAreSortedAndNonEmpty) {
  const auto bounds = Histogram::default_bounds();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(ObsMetrics, ConcurrentCounterAddsLoseNothing) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  runtime::ThreadPool pool{kThreads};
  for (int t = 0; t < kThreads; ++t) {
    pool.submit([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  pool.wait_idle();
  EXPECT_DOUBLE_EQ(c.value(), static_cast<double>(kThreads * kAddsPerThread));
}

TEST(ObsMetrics, ConcurrentHistogramObservesLoseNothing) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 5000;
  runtime::ThreadPool pool{kThreads};
  for (int t = 0; t < kThreads; ++t) {
    pool.submit([&h, t] {
      for (int i = 0; i < kObsPerThread; ++i) {
        h.observe(static_cast<double>(t + 1));
      }
    });
  }
  pool.wait_idle();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kObsPerThread));
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kThreads));
}

TEST(ObsMetrics, ConcurrentRegistrationIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  runtime::ThreadPool pool{kThreads};
  for (int t = 0; t < kThreads; ++t) {
    pool.submit([&reg] {
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared." + std::to_string(i)).add();
      }
    });
  }
  pool.wait_idle();
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(reg.counter_value("shared." + std::to_string(i)),
                     static_cast<double>(kThreads));
  }
}

TEST(ObsMetrics, JsonExportIsValidAndDeterministic) {
  MetricsRegistry reg;
  reg.counter("b.count").add(3);
  reg.counter("a.count").add(1);
  reg.gauge("queue").set(17.0);
  const std::array<double, 2> bounds{1.0, 2.0};
  reg.histogram("spans", bounds).observe(1.5);

  const std::string json = reg.to_json();
  EXPECT_TRUE(testing::JsonLint::valid(json)) << json;
  // Name-sorted export: "a.count" precedes "b.count".
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
  EXPECT_EQ(json, reg.to_json());

  std::ostringstream os;
  reg.write_json(os);
  EXPECT_EQ(os.str(), json);
}

TEST(ObsMetrics, EmptyRegistryExportsValidJson) {
  MetricsRegistry reg;
  const std::string json = reg.to_json();
  EXPECT_TRUE(testing::JsonLint::valid(json)) << json;
}

}  // namespace
}  // namespace cloudrepro::obs
