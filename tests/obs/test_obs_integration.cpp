// End-to-end checks that the observability layer tells the truth: traced
// events and metric counters must reconcile exactly with the results the
// instrumented layers report, and instrumentation must never change what a
// run computes. Assertions about *emitted* telemetry are gated on
// CLOUDREPRO_OBS so the suite also passes in an instrumentation-free build.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "core/campaign.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "json_lint.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "simnet/fluid_network.h"
#include "simnet/qos.h"

namespace cloudrepro {
namespace {

[[maybe_unused]] std::string slurp(const std::filesystem::path& path) {
  std::ifstream in{path};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bigdata::Cluster twelve_nodes(double budget) {
  simnet::TokenBucketQos proto{*cloud::ec2_c5_xlarge().nominal_bucket()};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  cluster.set_token_budgets(budget);
  return cluster;
}

bigdata::WorkloadProfile shuffle_heavy() {
  bigdata::WorkloadProfile w;
  w.name = "XFER";
  w.suite = "test";
  w.stages.push_back(bigdata::StageProfile{"xfer", 16, 2.0, 0.1, 40.0});
  return w;
}

TEST(ObsIntegration, EngineCountersReconcileWithRecoveryStats) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  bigdata::EngineOptions opt;
  opt.fault_plan.crash(1.0, 3);
  opt.fault_plan.crash(4.0, 7);
  opt.tracer = &tracer;
  opt.metrics = &metrics;
  bigdata::SparkEngine engine{opt};
  stats::Rng rng{101};
  auto cluster = twelve_nodes(5000.0);
  const auto r = engine.run(shuffle_heavy(), cluster, rng);
  ASSERT_EQ(r.recovery.nodes_lost, 2);
  ASSERT_GE(r.recovery.task_retries, 1);

#if CLOUDREPRO_OBS
  EXPECT_DOUBLE_EQ(metrics.counter_value("engine.task_retries"),
                   static_cast<double>(r.recovery.task_retries));
  EXPECT_DOUBLE_EQ(metrics.counter_value("engine.nodes_lost"),
                   static_cast<double>(r.recovery.nodes_lost));
  EXPECT_DOUBLE_EQ(metrics.counter_value("engine.speculative_launches"),
                   static_cast<double>(r.recovery.speculative_launches));
  EXPECT_DOUBLE_EQ(metrics.counter_value("engine.jobs"), 1.0);
  // Traced events, counted one way; RecoveryStats, counted another. They
  // must agree event-for-event.
  EXPECT_EQ(tracer.events_named("task_retry").size(),
            static_cast<std::size_t>(r.recovery.task_retries));
  EXPECT_EQ(tracer.events_named("node_crash").size(),
            static_cast<std::size_t>(r.recovery.nodes_lost));
  // The fault injector traced both planned crashes at their scheduled times.
  const auto injected = tracer.events_named(faults::to_string(faults::FaultKind::kNodeCrash));
  EXPECT_GE(injected.size(), 2u);
  // One stage -> one stage span, one job span covering the full runtime.
  ASSERT_EQ(tracer.events_named("stage").size(), 1u);
  const auto jobs = tracer.events_named("job");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].dur_s, r.runtime_s);
#endif
}

TEST(ObsIntegration, SpeculationEventsReconcile) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  bigdata::EngineOptions opt;
  opt.partition_skew = 1.2;
  opt.speculation.enabled = true;
  opt.speculation.check_interval_s = 10.0;
  opt.speculation.slowdown_threshold = 2.0;
  opt.fault_plan.slow_down(1.0, 2, 500.0, 0.05);
  opt.tracer = &tracer;
  opt.metrics = &metrics;
  bigdata::SparkEngine engine{opt};
  stats::Rng rng{55};
  auto cluster = twelve_nodes(5000.0);
  const auto r = engine.run(shuffle_heavy(), cluster, rng);

#if CLOUDREPRO_OBS
  EXPECT_EQ(tracer.events_named("speculation").size(),
            static_cast<std::size_t>(r.recovery.speculative_launches));
  EXPECT_DOUBLE_EQ(metrics.counter_value("engine.speculative_launches"),
                   static_cast<double>(r.recovery.speculative_launches));
#else
  (void)r;
#endif
}

TEST(ObsIntegration, TokenBucketTransitionsAreTraced) {
  simnet::FluidNetwork net;
  simnet::TokenBucketConfig cfg;
  cfg.capacity_gbit = 100.0;
  cfg.initial_gbit = 20.0;  // Depletes after ~2.2s at 10 Gbps minus refill.
  cfg.high_rate_gbps = 10.0;
  cfg.low_rate_gbps = 1.0;
  cfg.replenish_gbps = 1.0;
  cfg.recover_threshold_gbit = 5.0;
  net.add_node(std::make_unique<simnet::TokenBucketQos>(cfg));
  net.add_node(std::make_unique<simnet::FixedRateQos>(10.0));

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  net.set_observability(&tracer, &metrics);

  net.start_flow(0, 1, 50.0);
  ASSERT_TRUE(net.run_until_flows_complete(1000.0));

#if CLOUDREPRO_OBS
  const auto depleted = tracer.events_named("bucket_depleted");
  ASSERT_EQ(depleted.size(), 1u);
  // 20 Gbit of budget drained at (10 - 1) Gbit/s net -> depletion at ~2.22s.
  EXPECT_NEAR(depleted[0].ts_s, 20.0 / 9.0, 1e-6);
  EXPECT_EQ(depleted[0].lane, 0u);
  EXPECT_STREQ(depleted[0].arg0.key, "node");
  EXPECT_DOUBLE_EQ(depleted[0].arg0.value, 0.0);
  EXPECT_DOUBLE_EQ(metrics.counter_value("simnet.flows_started"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.counter_value("simnet.flows_completed"), 1.0);
  EXPECT_GT(metrics.counter_value("simnet.steps"), 0.0);
  EXPECT_GT(metrics.counter_value("simnet.allocations"), 0.0);
  EXPECT_EQ(tracer.events_named("flow_start").size(), 1u);
  EXPECT_EQ(tracer.events_named("flow_end").size(), 1u);
#endif
}

TEST(ObsIntegration, InstrumentationDoesNotChangeEngineResults) {
  const auto run = [](bool instrumented) {
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    bigdata::EngineOptions opt;
    opt.fault_plan.crash(1.0, 3);
    if (instrumented) {
      opt.tracer = &tracer;
      opt.metrics = &metrics;
    }
    bigdata::SparkEngine engine{opt};
    stats::Rng rng{202};
    auto cluster = twelve_nodes(5000.0);
    return engine.run(shuffle_heavy(), cluster, rng).runtime_s;
  };
  EXPECT_DOUBLE_EQ(run(false), run(true));
}

TEST(ObsIntegration, InjectorTracesEveryPoppedEvent) {
  faults::FaultPlan plan;
  plan.crash(1.0, 0);
  plan.slow_down(2.0, 1, 5.0, 0.5);
  plan.steal_tokens(3.0, 2, 100.0);
  faults::FaultInjector injector{plan};
  obs::Tracer tracer;
  injector.set_tracer(&tracer);
  std::size_t popped = 0;
  while (!injector.empty()) {
    injector.pop();
    ++popped;
  }
  EXPECT_EQ(popped, 3u);
#if CLOUDREPRO_OBS
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Instants land at the events' scheduled times, in pop (time) order.
  EXPECT_DOUBLE_EQ(events[0].ts_s, 1.0);
  EXPECT_DOUBLE_EQ(events[1].ts_s, 2.0);
  EXPECT_DOUBLE_EQ(events[2].ts_s, 3.0);
  for (const auto& e : events) EXPECT_STREQ(e.category, "faults");
#endif
}

TEST(ObsIntegration, CampaignWritesValidTraceAndMetricsFiles) {
  const auto dir = std::filesystem::path{::testing::TempDir()};
  const auto trace_path = dir / "obs_campaign_trace.json";
  const auto metrics_path = dir / "obs_campaign_metrics.json";
  std::filesystem::remove(trace_path);
  std::filesystem::remove(metrics_path);

  std::vector<core::CampaignCell> cells;
  for (int c = 0; c < 3; ++c) {
    cells.push_back(core::CampaignCell{
        "cfg" + std::to_string(c), "t",
        [](stats::Rng& rng) { return rng.normal(10.0, 1.0); }, [] {}});
  }
  core::CampaignOptions opt;
  opt.repetitions_per_cell = 4;
  opt.trace_path = trace_path;
  opt.metrics_path = metrics_path;
  const auto result = core::run_campaign(cells, opt, 99u);
  EXPECT_TRUE(result.complete);

#if CLOUDREPRO_OBS
  const std::string trace_json = slurp(trace_path);
  ASSERT_FALSE(trace_json.empty());
  EXPECT_TRUE(testing::JsonLint::valid(trace_json)) << trace_json.substr(0, 400);
  EXPECT_NE(trace_json.find("\"measurement\""), std::string::npos);

  const std::string metrics_json = slurp(metrics_path);
  ASSERT_FALSE(metrics_json.empty());
  EXPECT_TRUE(testing::JsonLint::valid(metrics_json))
      << metrics_json.substr(0, 400);
  EXPECT_NE(metrics_json.find("campaign.measurements_executed"),
            std::string::npos);
  EXPECT_NE(metrics_json.find("campaign.cell_wall_s"), std::string::npos);
#else
  EXPECT_FALSE(std::filesystem::exists(trace_path));
#endif
}

TEST(ObsIntegration, CampaignMetricsReconcileAcrossThreadCounts) {
  for (const int threads : {1, 0}) {
    std::vector<core::CampaignCell> cells;
    for (int c = 0; c < 4; ++c) {
      cells.push_back(core::CampaignCell{
          "cfg" + std::to_string(c), "t",
          [](stats::Rng& rng) { return rng.normal(5.0, 1.0); }, [] {}});
    }
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    core::CampaignOptions opt;
    opt.repetitions_per_cell = 5;
    opt.threads = threads;
    opt.tracer = &tracer;
    opt.metrics = &metrics;
    const auto result = core::run_campaign(cells, opt, 1234u);
    EXPECT_TRUE(result.complete);

#if CLOUDREPRO_OBS
    EXPECT_DOUBLE_EQ(metrics.counter_value("campaign.measurements_executed"),
                     20.0)
        << "threads=" << threads;
    EXPECT_EQ(tracer.events_named("measurement").size(), 20u)
        << "threads=" << threads;
    ASSERT_EQ(tracer.events_named("campaign").size(), 1u);
#endif
  }
}

TEST(ObsIntegration, ResumedCampaignCountsReplayedMeasurements) {
  const auto dir = std::filesystem::path{::testing::TempDir()};
  const auto journal = dir / "obs_resume_journal.jsonl";
  std::filesystem::remove(journal);

  const auto make_cells = [] {
    std::vector<core::CampaignCell> cells;
    for (int c = 0; c < 2; ++c) {
      cells.push_back(core::CampaignCell{
          "cfg" + std::to_string(c), "t",
          [](stats::Rng& rng) { return rng.normal(3.0, 0.5); }, [] {}});
    }
    return cells;
  };

  core::CampaignOptions first;
  first.repetitions_per_cell = 6;
  first.journal_path = journal;
  first.max_measurements = 5;  // Interrupt after 5 measurements.
  const auto partial = core::run_campaign(make_cells(), first, 77u);
  ASSERT_FALSE(partial.complete);

  obs::MetricsRegistry metrics;
  core::CampaignOptions second = first;
  second.max_measurements = 0;
  second.metrics = &metrics;
  const auto resumed = core::run_campaign(make_cells(), second, 77u);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_measurements, 5u);

#if CLOUDREPRO_OBS
  EXPECT_DOUBLE_EQ(metrics.counter_value("campaign.measurements_resumed"), 5.0);
  EXPECT_DOUBLE_EQ(metrics.counter_value("campaign.measurements_executed"), 7.0);
#endif
  std::filesystem::remove(journal);
}

}  // namespace
}  // namespace cloudrepro
