#pragma once

// Minimal recursive-descent JSON validator for the observability tests: the
// image ships no JSON library, and the tests only need to assert "this
// export is well-formed JSON", not to query it. Accepts exactly the JSON
// grammar (RFC 8259) minus \u escapes beyond pass-through.

#include <cctype>
#include <cstddef>
#include <string>

namespace cloudrepro::testing {

class JsonLint {
 public:
  /// True when `text` is exactly one valid JSON value (plus whitespace).
  static bool valid(const std::string& text) {
    JsonLint lint{text};
    lint.skip_ws();
    if (!lint.value()) return false;
    lint.skip_ws();
    return lint.pos_ == text.size();
  }

 private:
  explicit JsonLint(const std::string& text) : text_{text} {}

  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace cloudrepro::testing
