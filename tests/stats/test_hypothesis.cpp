#include "stats/hypothesis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.h"

namespace cloudrepro::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, std::uint64_t seed, double mean = 0.0,
                                  double sd = 1.0) {
  Rng rng{seed};
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(mean, sd);
  return xs;
}

// ---- Shapiro-Wilk -----------------------------------------------------------

TEST(ShapiroWilkTest, AcceptsNormalData) {
  const auto xs = normal_sample(100, 11);
  const auto r = shapiro_wilk(xs);
  EXPECT_GT(r.statistic, 0.97);
  EXPECT_FALSE(r.reject());
}

TEST(ShapiroWilkTest, RejectsExponentialData) {
  Rng rng{12};
  std::vector<double> xs(100);
  for (auto& x : xs) x = rng.exponential(1.0);
  const auto r = shapiro_wilk(xs);
  EXPECT_TRUE(r.reject());
}

TEST(ShapiroWilkTest, RejectsBimodalData) {
  Rng rng{13};
  std::vector<double> xs(200);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal(i % 2 == 0 ? -10.0 : 10.0, 1.0);
  }
  EXPECT_TRUE(shapiro_wilk(xs).reject());
}

TEST(ShapiroWilkTest, RejectsTokenBucketShapedData) {
  // The bimodal fast/slow runtimes a token bucket produces are exactly what
  // F5.4 wants detected before anyone reports mean +- stddev.
  std::vector<double> xs;
  for (int i = 0; i < 25; ++i) xs.push_back(100.0 + 0.5 * i);
  for (int i = 0; i < 25; ++i) xs.push_back(400.0 + 0.5 * i);
  EXPECT_TRUE(shapiro_wilk(xs).reject());
}

TEST(ShapiroWilkTest, SmallSampleSupport) {
  const std::vector<double> xs{1.0, 2.5, 2.9, 4.0};
  const auto r = shapiro_wilk(xs);
  EXPECT_GT(r.statistic, 0.0);
  EXPECT_LE(r.statistic, 1.0);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(ShapiroWilkTest, ThrowsBelowThreeSamples) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(shapiro_wilk(xs), std::invalid_argument);
}

TEST(ShapiroWilkTest, ConstantSampleDoesNotCrash) {
  const std::vector<double> xs{5.0, 5.0, 5.0, 5.0};
  const auto r = shapiro_wilk(xs);
  EXPECT_FALSE(r.reject());
}

// ---- Mann-Whitney U ---------------------------------------------------------

TEST(MannWhitneyTest, SameDistributionNotRejected) {
  const auto a = normal_sample(60, 21);
  const auto b = normal_sample(60, 22);
  EXPECT_FALSE(mann_whitney_u(a, b).reject(0.01));
}

TEST(MannWhitneyTest, ShiftedDistributionsRejected) {
  const auto a = normal_sample(60, 23, 0.0);
  const auto b = normal_sample(60, 24, 3.0);
  EXPECT_TRUE(mann_whitney_u(a, b).reject());
}

TEST(MannWhitneyTest, HandlesTies) {
  const std::vector<double> a{1.0, 1.0, 2.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 2.0, 2.0, 3.0, 3.0};
  const auto r = mann_whitney_u(a, b);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
  EXPECT_FALSE(r.reject());
}

TEST(MannWhitneyTest, ThrowsOnEmpty) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(mann_whitney_u(a, {}), std::invalid_argument);
  EXPECT_THROW(mann_whitney_u({}, a), std::invalid_argument);
}

TEST(MannWhitneyTest, DetectsEarlyVsLateBatchShift) {
  // Batches of runs before/after a token bucket drained should differ —
  // the check the paper wants between repeated experiment batches.
  std::vector<double> early, late;
  Rng rng{25};
  for (int i = 0; i < 30; ++i) early.push_back(rng.normal(100.0, 2.0));
  for (int i = 0; i < 30; ++i) late.push_back(rng.normal(140.0, 2.0));
  EXPECT_TRUE(mann_whitney_u(early, late).reject());
}

// ---- Runs test --------------------------------------------------------------

TEST(RunsTest, IidDataNotRejected) {
  const auto xs = normal_sample(200, 31);
  EXPECT_FALSE(runs_test(xs).reject(0.01));
}

TEST(RunsTest, RegimeSwitchingRejected) {
  // Long "fast" block followed by long "slow" block: 2 runs, far below the
  // expected count — exactly a depleting token bucket's signature.
  std::vector<double> xs;
  for (int i = 0; i < 30; ++i) xs.push_back(1.0 + 0.01 * i);
  for (int i = 0; i < 30; ++i) xs.push_back(10.0 + 0.01 * i);
  EXPECT_TRUE(runs_test(xs).reject());
}

TEST(RunsTest, AlternatingDataRejected) {
  // Perfect alternation has too many runs — also not independent.
  std::vector<double> xs;
  for (int i = 0; i < 60; ++i) xs.push_back(i % 2 == 0 ? 1.0 : 2.0);
  EXPECT_TRUE(runs_test(xs).reject());
}

TEST(RunsTest, ThrowsOnTinySample) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW(runs_test(xs), std::invalid_argument);
}

// ---- ADF stationarity -------------------------------------------------------

TEST(AdfTest, StationaryNoiseDetected) {
  const auto xs = normal_sample(400, 41);
  const auto r = adf_test(xs);
  // Stationary -> reject the unit-root null.
  EXPECT_TRUE(r.reject());
  EXPECT_LT(r.statistic, -2.86);
}

TEST(AdfTest, RandomWalkNotRejected) {
  Rng rng{42};
  std::vector<double> xs(400);
  double level = 0.0;
  for (auto& x : xs) {
    level += rng.normal(0.0, 1.0);
    x = level;
  }
  const auto r = adf_test(xs);
  EXPECT_FALSE(r.reject());
}

TEST(AdfTest, MeanRevertingProcessDetected) {
  Rng rng{43};
  std::vector<double> xs(400);
  double level = 0.0;
  for (auto& x : xs) {
    level = 0.5 * level + rng.normal(0.0, 1.0);
    x = level;
  }
  EXPECT_TRUE(adf_test(xs).reject());
}

TEST(AdfTest, ThrowsOnShortSeries) {
  const auto xs = normal_sample(5, 44);
  EXPECT_THROW(adf_test(xs, 3), std::invalid_argument);
  EXPECT_THROW(adf_test(xs, -1), std::invalid_argument);
}

// ---- ANOVA ------------------------------------------------------------------

TEST(AnovaTest, EqualMeansNotRejected) {
  std::vector<std::vector<double>> groups;
  for (int g = 0; g < 3; ++g) groups.push_back(normal_sample(40, 50 + g, 10.0, 2.0));
  EXPECT_FALSE(one_way_anova(groups).reject(0.01));
}

TEST(AnovaTest, DifferentMeansRejected) {
  std::vector<std::vector<double>> groups;
  groups.push_back(normal_sample(40, 60, 10.0, 1.0));
  groups.push_back(normal_sample(40, 61, 15.0, 1.0));
  groups.push_back(normal_sample(40, 62, 20.0, 1.0));
  const auto r = one_way_anova(groups);
  EXPECT_TRUE(r.reject());
  EXPECT_GT(r.statistic, 10.0);
}

TEST(AnovaTest, IdenticalConstantGroups) {
  const std::vector<std::vector<double>> groups{{1.0, 1.0}, {1.0, 1.0}};
  const auto r = one_way_anova(groups);
  EXPECT_FALSE(r.reject());
}

TEST(AnovaTest, ThrowsOnDegenerateInput) {
  std::vector<std::vector<double>> one_group{{1.0, 2.0}};
  EXPECT_THROW(one_way_anova(one_group), std::invalid_argument);
  std::vector<std::vector<double>> with_empty{{1.0}, {}};
  EXPECT_THROW(one_way_anova(with_empty), std::invalid_argument);
}

// ---- Autocorrelation & Ljung-Box ---------------------------------------------

TEST(AutocorrelationTest, WhiteNoiseNearZero) {
  const auto xs = normal_sample(5000, 70);
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.05);
  EXPECT_NEAR(autocorrelation(xs, 5), 0.0, 0.05);
}

TEST(AutocorrelationTest, Ar1ProcessPositiveAtLag1) {
  Rng rng{71};
  std::vector<double> xs(5000);
  double level = 0.0;
  for (auto& x : xs) {
    level = 0.8 * level + rng.normal(0.0, 1.0);
    x = level;
  }
  EXPECT_GT(autocorrelation(xs, 1), 0.7);
  EXPECT_GT(autocorrelation(xs, 1), autocorrelation(xs, 5));
}

TEST(AutocorrelationTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(autocorrelation(std::vector<double>{1.0}, 1), 0.0);
  const std::vector<double> constant{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(autocorrelation(constant, 1), 0.0);
}

TEST(LjungBoxTest, WhiteNoiseNotRejected) {
  const auto xs = normal_sample(500, 72);
  EXPECT_FALSE(ljung_box(xs, 10).reject(0.01));
}

TEST(LjungBoxTest, CorrelatedSeriesRejected) {
  Rng rng{73};
  std::vector<double> xs(500);
  double level = 0.0;
  for (auto& x : xs) {
    level = 0.9 * level + rng.normal(0.0, 1.0);
    x = level;
  }
  EXPECT_TRUE(ljung_box(xs, 10).reject());
}

TEST(LjungBoxTest, ThrowsOnBadLag) {
  const auto xs = normal_sample(10, 74);
  EXPECT_THROW(ljung_box(xs, 0), std::invalid_argument);
  EXPECT_THROW(ljung_box(xs, 10), std::invalid_argument);
}


// ---- Kolmogorov-Smirnov -------------------------------------------------------

TEST(KolmogorovSmirnovTest, SameDistributionNotRejected) {
  const auto a = normal_sample(200, 181);
  const auto b = normal_sample(200, 182);
  EXPECT_FALSE(kolmogorov_smirnov(a, b).reject(0.01));
}

TEST(KolmogorovSmirnovTest, LocationShiftRejected) {
  const auto a = normal_sample(150, 83, 0.0);
  const auto b = normal_sample(150, 84, 1.0);
  EXPECT_TRUE(kolmogorov_smirnov(a, b).reject());
}

TEST(KolmogorovSmirnovTest, ScaleChangeRejectedEvenWithEqualMedians) {
  // The F5.1 use case: two clouds with the same median bandwidth but very
  // different spreads are NOT interchangeable; a median test would miss it.
  const auto a = normal_sample(300, 85, 10.0, 0.5);
  const auto b = normal_sample(300, 86, 10.0, 4.0);
  EXPECT_TRUE(kolmogorov_smirnov(a, b).reject());
  EXPECT_FALSE(mann_whitney_u(a, b).reject(0.01));  // Rank test misses it.
}

TEST(KolmogorovSmirnovTest, StatisticIsEcdfGap) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{10.0, 11.0, 12.0, 13.0};
  const auto r = kolmogorov_smirnov(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);  // Fully separated ECDFs.
  EXPECT_LT(r.p_value, 0.05);
}

TEST(KolmogorovSmirnovTest, ThrowsOnEmpty) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(kolmogorov_smirnov(a, {}), std::invalid_argument);
}


// ---- Kruskal-Wallis ----------------------------------------------------------

TEST(KruskalWallisTest, SameDistributionNotRejected) {
  std::vector<std::vector<double>> groups;
  for (int g = 0; g < 4; ++g) groups.push_back(normal_sample(40, 90 + g, 10.0, 2.0));
  EXPECT_FALSE(kruskal_wallis(groups).reject(0.01));
}

TEST(KruskalWallisTest, ShiftedGroupRejected) {
  std::vector<std::vector<double>> groups;
  groups.push_back(normal_sample(40, 94, 10.0, 1.0));
  groups.push_back(normal_sample(40, 95, 10.0, 1.0));
  groups.push_back(normal_sample(40, 96, 14.0, 1.0));
  EXPECT_TRUE(kruskal_wallis(groups).reject());
}

TEST(KruskalWallisTest, RobustToHeavyTails) {
  // The non-parametric advantage: a Pareto-contaminated group with the same
  // center does not trigger; a genuinely shifted one does.
  Rng rng{97};
  std::vector<std::vector<double>> shifted;
  std::vector<double> a(50), b(50);
  for (auto& x : a) x = 10.0 + rng.pareto(1.0, 2.0);
  for (auto& x : b) x = 14.0 + rng.pareto(1.0, 2.0);
  shifted.push_back(a);
  shifted.push_back(b);
  EXPECT_TRUE(kruskal_wallis(shifted).reject());
}

TEST(KruskalWallisTest, HandlesTies) {
  const std::vector<std::vector<double>> groups{{1.0, 1.0, 2.0}, {1.0, 2.0, 2.0}};
  const auto r = kruskal_wallis(groups);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
  EXPECT_FALSE(r.reject());
}

TEST(KruskalWallisTest, AgreesWithMannWhitneyForTwoGroups) {
  const auto a = normal_sample(50, 98, 0.0);
  const auto b = normal_sample(50, 99, 1.5);
  const std::vector<std::vector<double>> groups{a, b};
  const auto kw = kruskal_wallis(groups);
  const auto mw = mann_whitney_u(a, b);
  EXPECT_EQ(kw.reject(), mw.reject());
}

TEST(KruskalWallisTest, Validation) {
  std::vector<std::vector<double>> one{{1.0, 2.0}};
  EXPECT_THROW(kruskal_wallis(one), std::invalid_argument);
  std::vector<std::vector<double>> with_empty{{1.0}, {}};
  EXPECT_THROW(kruskal_wallis(with_empty), std::invalid_argument);
}


// ---- Spearman ----------------------------------------------------------------

TEST(SpearmanTest, PerfectMonotoneIsOne) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{10.0, 20.0, 25.0, 100.0, 101.0};  // Nonlinear, monotone.
  const auto r = spearman_correlation(x, y);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
  EXPECT_LT(r.p_value, 0.05);
}

TEST(SpearmanTest, PerfectInverseIsMinusOne) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(spearman_correlation(x, y).statistic, -1.0);
}

TEST(SpearmanTest, IndependentNearZero) {
  Rng rng{101};
  std::vector<double> x(500), y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal(0.0, 1.0);
    y[i] = rng.normal(0.0, 1.0);
  }
  const auto r = spearman_correlation(x, y);
  EXPECT_NEAR(r.statistic, 0.0, 0.1);
  EXPECT_FALSE(r.reject(0.01));
}

TEST(SpearmanTest, NoisyMonotoneDetected) {
  Rng rng{102};
  std::vector<double> x(60), y(60);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i);
    y[i] = static_cast<double>(i) + rng.normal(0.0, 10.0);
  }
  const auto r = spearman_correlation(x, y);
  EXPECT_GT(r.statistic, 0.5);
  EXPECT_TRUE(r.reject());
}

TEST(SpearmanTest, ConstantInputIsZero) {
  const std::vector<double> x{1.0, 1.0, 1.0, 1.0};
  const std::vector<double> y{1.0, 2.0, 3.0, 4.0};
  const auto r = spearman_correlation(x, y);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(SpearmanTest, Validation) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y3{1.0, 2.0, 3.0};
  EXPECT_THROW(spearman_correlation(x, y3), std::invalid_argument);
  EXPECT_THROW(spearman_correlation(x, x), std::invalid_argument);
}

// ---- Shapiro-Wilk calibration sweep: p-values are approximately uniform
// under the null, so rejection rate at alpha=0.05 should be near 5%.
class ShapiroCalibrationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShapiroCalibrationTest, FalsePositiveRateNearAlpha) {
  const std::size_t n = GetParam();
  Rng rng{99};
  int rejections = 0;
  constexpr int kTrials = 400;
  std::vector<double> xs(n);
  for (int t = 0; t < kTrials; ++t) {
    for (auto& x : xs) x = rng.normal(0.0, 1.0);
    if (shapiro_wilk(xs).reject(0.05)) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / kTrials;
  EXPECT_LT(rate, 0.12) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, ShapiroCalibrationTest,
                         ::testing::Values(10, 25, 50, 100, 500));

}  // namespace
}  // namespace cloudrepro::stats
