#include "stats/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "stats/ci.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace cloudrepro::stats {
namespace {

/// Number of representable doubles strictly between a and b (0 when equal).
/// The refactor's numerical contract is stated in ulps, so the property
/// suite measures in ulps rather than a relative epsilon.
std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  std::uint64_t steps = 0;
  double x = std::min(a, b);
  const double hi = std::max(a, b);
  while (x < hi && steps < 64) {
    x = std::nextafter(x, std::numeric_limits<double>::infinity());
    ++steps;
  }
  return steps;
}

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> xs(n);
  for (auto& x : xs) x = std::exp(rng.normal(5.0, 0.4));
  return xs;
}

// ---------------------------------------------------------------------------
// StreamingMoments vs the legacy span-based functions.

TEST(StreamingMomentsTest, EmptyAccumulatorMatchesLegacyContract) {
  const StreamingMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.stddev(), 0.0);
  EXPECT_EQ(m.coefficient_of_variation(), 0.0);
  EXPECT_EQ(m.standard_error(), 0.0);
  EXPECT_EQ(m.min(), 0.0);
  EXPECT_EQ(m.max(), 0.0);
}

TEST(StreamingMomentsTest, SequentialFeedMatchesLegacySeedSwept) {
  // Seed-swept property: across many samples, the sequential accumulator
  // reproduces mean/min/max/count exactly (shared naive sum) and variance /
  // stddev to within 1 ulp of the two-pass legacy implementation.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto xs = lognormal_sample(17 + seed % 120, seed);
    StreamingMoments m;
    m.add_all(xs);

    EXPECT_EQ(m.count(), xs.size());
    EXPECT_EQ(m.mean(), mean(xs)) << "seed " << seed;
    EXPECT_EQ(m.min(), *std::min_element(xs.begin(), xs.end()));
    EXPECT_EQ(m.max(), *std::max_element(xs.begin(), xs.end()));
    EXPECT_LE(ulp_distance(m.variance(), variance(xs)), 1u) << "seed " << seed;
    EXPECT_LE(ulp_distance(m.stddev(), stddev(xs)), 1u) << "seed " << seed;
    EXPECT_LE(ulp_distance(m.coefficient_of_variation(),
                           coefficient_of_variation(xs)),
              1u)
        << "seed " << seed;
  }
}

TEST(StreamingMomentsTest, SummarizeAdapterIsConsistent) {
  // descriptive.h's summarize is now a thin adapter over StreamingMoments;
  // both views of the same sample must agree exactly.
  const auto xs = lognormal_sample(64, 7);
  const Summary s = summarize(xs);
  StreamingMoments m;
  m.add_all(xs);
  EXPECT_EQ(s.count, m.count());
  EXPECT_EQ(s.mean, m.mean());
  EXPECT_EQ(s.variance, m.variance());
  EXPECT_EQ(s.stddev, m.stddev());
  EXPECT_EQ(s.coefficient_of_variation, m.coefficient_of_variation());
  EXPECT_EQ(s.min, m.min());
  EXPECT_EQ(s.max, m.max());
}

TEST(StreamingMomentsTest, CachedValuesInvalidatedByAdd) {
  StreamingMoments m;
  m.add(1.0);
  m.add(3.0);
  const double v1 = m.variance();  // Populates the cache.
  EXPECT_DOUBLE_EQ(v1, 2.0);
  m.add(100.0);  // Must dirty every cached slot.
  const std::vector<double> xs{1.0, 3.0, 100.0};
  EXPECT_LE(ulp_distance(m.variance(), variance(xs)), 1u);
  EXPECT_LE(ulp_distance(m.stddev(), stddev(xs)), 1u);
}

TEST(StreamingMomentsTest, MergeMatchesConcatenationWithinUlps) {
  // Chan's update reassociates the sums, so allow a small ulp budget
  // (empirically 0-2 on this data) rather than exact equality.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto xs = lognormal_sample(101, seed);
    for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                    std::size_t{50}, std::size_t{100},
                                    std::size_t{101}}) {
      StreamingMoments a, b, whole;
      a.add_all(std::span{xs}.first(split));
      b.add_all(std::span{xs}.subspan(split));
      whole.add_all(xs);
      a.merge(b);
      EXPECT_EQ(a.count(), whole.count());
      EXPECT_LE(ulp_distance(a.mean(), whole.mean()), 2u)
          << "seed " << seed << " split " << split;
      EXPECT_LE(ulp_distance(a.variance(), whole.variance()), 4u)
          << "seed " << seed << " split " << split;
      EXPECT_EQ(a.min(), whole.min());
      EXPECT_EQ(a.max(), whole.max());
    }
  }
}

TEST(StreamingMomentsTest, MergeIsCommutativeAndAssociative) {
  const auto xs = lognormal_sample(90, 11);
  StreamingMoments p[3];
  p[0].add_all(std::span{xs}.first(30));
  p[1].add_all(std::span{xs}.subspan(30, 30));
  p[2].add_all(std::span{xs}.subspan(60));

  // (p0 + p1) + p2  vs  p0 + (p1 + p2)  vs  p2 + p1 + p0.
  StreamingMoments left = p[0];
  left.merge(p[1]);
  left.merge(p[2]);
  StreamingMoments bc = p[1];
  bc.merge(p[2]);
  StreamingMoments right = p[0];
  right.merge(bc);
  StreamingMoments rev = p[2];
  rev.merge(p[1]);
  rev.merge(p[0]);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_LE(ulp_distance(left.mean(), right.mean()), 2u);
  EXPECT_LE(ulp_distance(left.variance(), right.variance()), 4u);
  EXPECT_LE(ulp_distance(left.mean(), rev.mean()), 2u);
  EXPECT_LE(ulp_distance(left.variance(), rev.variance()), 4u);
  EXPECT_EQ(left.min(), rev.min());
  EXPECT_EQ(left.max(), rev.max());
}

TEST(StreamingMomentsTest, MergeWithEmptyIsIdentity) {
  const auto xs = lognormal_sample(12, 3);
  StreamingMoments m;
  m.add_all(xs);
  const double mean_before = m.mean();
  const double var_before = m.variance();
  m.merge(StreamingMoments{});
  EXPECT_EQ(m.mean(), mean_before);
  EXPECT_EQ(m.variance(), var_before);

  StreamingMoments empty;
  StreamingMoments other;
  other.add_all(xs);
  empty.merge(other);
  EXPECT_EQ(empty.count(), xs.size());
  EXPECT_EQ(empty.mean(), mean_before);
}

TEST(StreamingTest, WelchFromMomentsAgreesWithDirectComputation) {
  Rng rng{17};
  StreamingMoments a, b;
  for (int i = 0; i < 60; ++i) a.add(rng.normal(100.0, 5.0));
  for (int i = 0; i < 45; ++i) b.add(rng.normal(104.0, 7.0));
  const TestResult t = welch_t_test(a, b);
  EXPECT_TRUE(t.reject(0.05));  // 4-sigma-ish separation on these sizes.
  const TestResult z = z_test(a, b);
  EXPECT_TRUE(z.reject(0.05));
  // Same-distribution null: both tests should usually fail to reject.
  StreamingMoments c;
  for (int i = 0; i < 60; ++i) c.add(rng.normal(100.0, 5.0));
  EXPECT_GT(welch_t_test(a, c).p_value, 0.01);
}

// ---------------------------------------------------------------------------
// P² streaming quantile.

TEST(P2QuantileTest, ExactForFirstFiveObservations) {
  P2Quantile p50{0.5};
  for (const double x : {9.0, 1.0, 5.0, 3.0, 7.0}) p50.add(x);
  EXPECT_DOUBLE_EQ(p50.value(), 5.0);
}

TEST(P2QuantileTest, TracksTrueQuantileOnLargeStreams) {
  Rng rng{23};
  P2Quantile p50{0.5};
  P2Quantile p90{0.9};
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double x = std::exp(rng.normal(5.0, 0.4));
    xs.push_back(x);
    p50.add(x);
    p90.add(x);
  }
  const double true_p50 = quantile(xs, 0.5);
  const double true_p90 = quantile(xs, 0.9);
  EXPECT_NEAR(p50.value(), true_p50, 0.03 * true_p50);
  EXPECT_NEAR(p90.value(), true_p90, 0.05 * true_p90);
}

TEST(P2QuantileTest, RejectsDegenerateQuantiles) {
  EXPECT_THROW(P2Quantile{0.0}, std::invalid_argument);
  EXPECT_THROW(P2Quantile{1.0}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// QuantileReservoir: the CONFIRM CI path.

TEST(QuantileReservoirTest, ExactModeIsBitIdenticalToSpanCi) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto xs = lognormal_sample(33, seed);
    QuantileReservoir r;  // Unbounded: always exact.
    for (const double x : xs) r.add(x);
    ASSERT_TRUE(r.exact());
    EXPECT_EQ(r.quantile(0.5), quantile(xs, 0.5));
    const ConfidenceInterval a = r.ci(0.5, 0.95);
    const ConfidenceInterval b = quantile_ci(xs, 0.5, 0.95);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.lower, b.lower);
    EXPECT_EQ(a.estimate, b.estimate);
    EXPECT_EQ(a.upper, b.upper);
    EXPECT_EQ(a.confidence, b.confidence);
  }
}

TEST(QuantileReservoirTest, CappedReservoirStaysNearTrueQuantile) {
  const auto xs = lognormal_sample(4000, 5);
  QuantileReservoir r{256};
  for (const double x : xs) r.add(x);
  EXPECT_FALSE(r.exact());
  EXPECT_EQ(r.count(), xs.size());
  EXPECT_EQ(r.retained(), 256u);
  const double truth = quantile(xs, 0.5);
  EXPECT_NEAR(r.quantile(0.5), truth, 0.10 * truth);
}

TEST(QuantileReservoirTest, CappedSamplingIsDeterministic) {
  const auto xs = lognormal_sample(2000, 9);
  QuantileReservoir a{128, 42};
  QuantileReservoir b{128, 42};
  for (const double x : xs) {
    a.add(x);
    b.add(x);
  }
  ASSERT_EQ(a.retained(), b.retained());
  const auto sa = a.sorted_values();
  const auto sb = b.sorted_values();
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
}

TEST(QuantileReservoirTest, MergePreservesExactnessWhenUnionFits) {
  const auto xs = lognormal_sample(60, 13);
  QuantileReservoir a, b, whole;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ((i % 2 == 0) ? a : b).add(xs[i]);
    whole.add(xs[i]);
  }
  a.merge(b);
  ASSERT_TRUE(a.exact());
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.quantile(0.5), whole.quantile(0.5));
  const ConfidenceInterval ca = a.ci(0.5, 0.95);
  const ConfidenceInterval cw = whole.ci(0.5, 0.95);
  EXPECT_EQ(ca.lower, cw.lower);
  EXPECT_EQ(ca.upper, cw.upper);
}

TEST(QuantileReservoirTest, ThrowsOnEmptyQuantile) {
  const QuantileReservoir r;
  EXPECT_THROW(r.quantile(0.5), std::invalid_argument);
}

}  // namespace
}  // namespace cloudrepro::stats
