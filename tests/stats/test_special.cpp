#include "stats/special.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cloudrepro::stats {
namespace {

TEST(SpecialTest, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501, 1e-6);
}

TEST(SpecialTest, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(SpecialTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-8);
}

TEST(SpecialTest, NormalQuantileThrowsOutsideOpenInterval) {
  EXPECT_THROW(normal_quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.1), std::invalid_argument);
}

TEST(SpecialTest, IncompleteBetaBoundaries) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(SpecialTest, IncompleteBetaUniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.42, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(SpecialTest, IncompleteBetaSymmetry) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(incomplete_beta(2.5, 4.0, 0.3),
              1.0 - incomplete_beta(4.0, 2.5, 0.7), 1e-12);
}

TEST(SpecialTest, IncompleteBetaThrowsOnBadShape) {
  EXPECT_THROW(incomplete_beta(0.0, 1.0, 0.5), std::invalid_argument);
}

TEST(SpecialTest, IncompleteGammaKnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.5, 1.0, 3.0}) {
    EXPECT_NEAR(incomplete_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
  EXPECT_DOUBLE_EQ(incomplete_gamma_p(2.0, 0.0), 0.0);
}

TEST(SpecialTest, StudentTCdfSymmetricAtZero) {
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(student_t_cdf(2.0, 10.0) + student_t_cdf(-2.0, 10.0), 1.0, 1e-12);
}

TEST(SpecialTest, StudentTCdfKnownValue) {
  // t = 2.228 is the 97.5% point of t(10).
  EXPECT_NEAR(student_t_cdf(2.228, 10.0), 0.975, 1e-3);
}

TEST(SpecialTest, StudentTApproachesNormalForLargeDf) {
  EXPECT_NEAR(student_t_cdf(1.96, 100000.0), normal_cdf(1.96), 1e-4);
}

TEST(SpecialTest, FCdfBasics) {
  EXPECT_DOUBLE_EQ(f_cdf(0.0, 3.0, 10.0), 0.0);
  // F(1, d, d) has median 1 by symmetry.
  EXPECT_NEAR(f_cdf(1.0, 7.0, 7.0), 0.5, 1e-10);
  // 95% point of F(2, 10) is about 4.10.
  EXPECT_NEAR(f_cdf(4.10, 2.0, 10.0), 0.95, 2e-3);
}

TEST(SpecialTest, ChiSquaredCdfKnownValues) {
  // Chi2(2) is exponential with mean 2: CDF(x) = 1 - exp(-x/2).
  EXPECT_NEAR(chi_squared_cdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-10);
  // 95% point of chi2(3) is 7.815.
  EXPECT_NEAR(chi_squared_cdf(7.815, 3.0), 0.95, 1e-3);
}

TEST(SpecialTest, LogBinomialCoefficient) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 0)), 1.0, 1e-9);
  EXPECT_TRUE(std::isinf(log_binomial_coefficient(3, 5)));
}

TEST(SpecialTest, BinomialCdfMatchesHandComputation) {
  // X ~ Binomial(3, 0.5): P(X<=1) = 1/8 + 3/8 = 0.5.
  EXPECT_NEAR(binomial_cdf(1, 3, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(binomial_cdf(0, 4, 0.5), 1.0 / 16.0, 1e-12);
}

TEST(SpecialTest, BinomialCdfBoundaries) {
  EXPECT_DOUBLE_EQ(binomial_cdf(-1, 10, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(10, 10, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(5, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(9, 10, 1.0), 0.0);
}

TEST(SpecialTest, BinomialCdfMonotoneInK) {
  double prev = 0.0;
  for (long long k = 0; k <= 20; ++k) {
    const double c = binomial_cdf(k, 20, 0.3);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(SpecialTest, BinomialCdfThrowsOnBadArgs) {
  EXPECT_THROW(binomial_cdf(1, -1, 0.5), std::invalid_argument);
  EXPECT_THROW(binomial_cdf(1, 10, 1.5), std::invalid_argument);
}

// Property sweep: binomial CDF matches the normal approximation for large n.
class BinomialNormalApproxTest
    : public ::testing::TestWithParam<std::pair<long long, double>> {};

TEST_P(BinomialNormalApproxTest, CloseToNormalApproximation) {
  const auto [n, p] = GetParam();
  const double mu = static_cast<double>(n) * p;
  const double sigma = std::sqrt(mu * (1.0 - p));
  const auto k = static_cast<long long>(mu);
  const double exact = binomial_cdf(k, n, p);
  const double approx = normal_cdf((static_cast<double>(k) + 0.5 - mu) / sigma);
  EXPECT_NEAR(exact, approx, 0.01) << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    LargeN, BinomialNormalApproxTest,
    ::testing::Values(std::pair<long long, double>{500, 0.5},
                      std::pair<long long, double>{1000, 0.3},
                      std::pair<long long, double>{2000, 0.7},
                      std::pair<long long, double>{5000, 0.5}));

}  // namespace
}  // namespace cloudrepro::stats
