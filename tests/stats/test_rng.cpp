#include "stats/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/descriptive.h"

namespace cloudrepro::stats {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDifferentSequences) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformIsInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng{8};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 9.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng{9};
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.uniform();
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng{10};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng{11};
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng{12};
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng{13};
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.exponential(0.5);
  EXPECT_NEAR(mean(xs), 2.0, 0.05);
  for (const double x : xs) EXPECT_GE(x, 0.0);
}

TEST(RngTest, LognormalMedianIsExpMu) {
  Rng rng{14};
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.lognormal(1.0, 0.5);
  EXPECT_NEAR(median(xs), std::exp(1.0), 0.1);
}

TEST(RngTest, ParetoRespectsScaleFloor) {
  Rng rng{15};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng{16};
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(RngTest, ZipfFavorsSmallIndices) {
  Rng rng{17};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng{18};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.zipf(4, 0.0)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, ZipfThrowsOnZeroSupport) {
  Rng rng{19};
  EXPECT_THROW(rng.zipf(0, 1.0), std::invalid_argument);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng{20};
  const auto perm = rng.permutation(50);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(RngTest, PermutationOfZeroElementsIsEmpty) {
  Rng rng{21};
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent{22};
  Rng child = parent.split();
  // The child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace cloudrepro::stats
