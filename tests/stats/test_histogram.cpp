#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "stats/rng.h"

namespace cloudrepro::stats {
namespace {

TEST(HistogramTest, BinsValuesCorrectly) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(5.5);
  h.add(5.7);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h{0.0, 10.0, 5};
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(HistogramTest, BinCenters) {
  Histogram h{0.0, 10.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
  EXPECT_THROW(h.bin_center(5), std::out_of_range);
}

TEST(HistogramTest, DensitiesSumToOne) {
  Rng rng{3};
  Histogram h{0.0, 1.0, 20};
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double sum = 0.0;
  for (const double d : h.densities()) sum += d;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, EmptyHistogramDensityIsZero) {
  Histogram h{0.0, 1.0, 4};
  EXPECT_DOUBLE_EQ(h.density(2), 0.0);
}

TEST(HistogramTest, ConstructorValidation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  // Regression: the zero-bins case used to divide by bins in the
  // member-initializer list *before* the constructor body could reject it.
  // Under UBSan / strict FP that division was already undefined behavior by
  // the time the exception fired; validation must come first.
  EXPECT_THROW(Histogram(0.0, 0.0, 0), std::invalid_argument);
}

TEST(HistogramTest, NonFiniteValuesAreCountedNotBinned) {
  // Regression: `add` used to clamp via a floor+cast of the raw value, and
  // casting NaN or ±inf to an integer is undefined behavior (caught by
  // UBSan's float-cast-overflow check). Non-finite values now land in a
  // dedicated overflow counter instead of a bin.
  Histogram h{0.0, 10.0, 5};
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(5.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.non_finite(), 3u);
  double sum = 0.0;
  for (const double d : h.densities()) sum += d;
  EXPECT_NEAR(sum, 1.0, 1e-12);  // Density still normalizes over binned mass.
}

TEST(HistogramTest, AddAllMatchesIndividualAdds) {
  const std::vector<double> xs{0.1, 0.2, 0.8};
  Histogram a{0.0, 1.0, 10};
  Histogram b{0.0, 1.0, 10};
  a.add_all(xs);
  for (const double x : xs) b.add(x);
  for (std::size_t i = 0; i < a.bin_count(); ++i) EXPECT_EQ(a.count(i), b.count(i));
}

TEST(EcdfTest, StepFunctionValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Ecdf f{xs};
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f(100.0), 1.0);
}

TEST(EcdfTest, InverseRoundTrips) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  const Ecdf f{xs};
  EXPECT_DOUBLE_EQ(f.inverse(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.inverse(0.2), 10.0);
  EXPECT_DOUBLE_EQ(f.inverse(0.5), 30.0);
  EXPECT_DOUBLE_EQ(f.inverse(1.0), 50.0);
  EXPECT_THROW(f.inverse(1.5), std::invalid_argument);
  // Regression: NaN used to slip past the old `p < 0 || p > 1` range check
  // (every comparison with NaN is false) and reach the same UB float→int
  // cast as Histogram::add.
  EXPECT_THROW(f.inverse(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(EcdfTest, ThrowsOnEmpty) {
  EXPECT_THROW(Ecdf({}), std::invalid_argument);
}

TEST(EcdfTest, CurveIsMonotone) {
  Rng rng{4};
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);
  const Ecdf f{xs};
  const auto curve = f.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GT(curve[i].first, curve[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

}  // namespace
}  // namespace cloudrepro::stats
