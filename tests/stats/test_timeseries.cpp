#include "stats/timeseries.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.h"

namespace cloudrepro::stats {
namespace {

TEST(TimeseriesTest, SampleToSampleVariability) {
  const std::vector<double> xs{10.0, 11.0, 5.5, 5.5};
  const auto changes = sample_to_sample_variability(xs);
  ASSERT_EQ(changes.size(), 3u);
  EXPECT_NEAR(changes[0], 0.1, 1e-12);
  EXPECT_NEAR(changes[1], 0.5, 1e-12);
  EXPECT_NEAR(changes[2], 0.0, 1e-12);
}

TEST(TimeseriesTest, MaxSampleToSampleVariability) {
  const std::vector<double> xs{10.0, 11.0, 5.5};
  EXPECT_NEAR(max_sample_to_sample_variability(xs), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(max_sample_to_sample_variability(std::vector<double>{1.0}), 0.0);
}

TEST(TimeseriesTest, VariabilityHandlesZeroPredecessor) {
  const std::vector<double> xs{0.0, 5.0};
  const auto changes = sample_to_sample_variability(xs);
  EXPECT_DOUBLE_EQ(changes[0], 0.0);  // Defined as 0 rather than infinity.
}

TEST(TimeseriesTest, WindowedMediansDropPartialWindow) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  const auto medians = windowed_medians(xs, 3);
  ASSERT_EQ(medians.size(), 2u);
  EXPECT_DOUBLE_EQ(medians[0], 2.0);
  EXPECT_DOUBLE_EQ(medians[1], 5.0);
}

TEST(TimeseriesTest, WindowedMediansEdgeCases) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_TRUE(windowed_medians(xs, 0).empty());
  EXPECT_TRUE(windowed_medians(xs, 3).empty());
  EXPECT_EQ(windowed_medians(xs, 2).size(), 1u);
}

TEST(TimeseriesTest, RollingMean) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const auto rm = rolling_mean(xs, 2);
  ASSERT_EQ(rm.size(), 3u);
  EXPECT_DOUBLE_EQ(rm[0], 1.5);
  EXPECT_DOUBLE_EQ(rm[1], 2.5);
  EXPECT_DOUBLE_EQ(rm[2], 3.5);
}

TEST(TimeseriesTest, RollingMeanFullWindowIsGlobalMean) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  const auto rm = rolling_mean(xs, 3);
  ASSERT_EQ(rm.size(), 1u);
  EXPECT_DOUBLE_EQ(rm[0], 4.0);
}

TEST(TimeseriesTest, CumulativeSum) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto cs = cumulative_sum(xs);
  EXPECT_EQ(cs, (std::vector<double>{1.0, 3.0, 6.0}));
  EXPECT_TRUE(cumulative_sum({}).empty());
}

TEST(TimeseriesTest, LongestRunDetectsRegimes) {
  // 5 below then 5 above the median -> longest run 5.
  const std::vector<double> xs{1, 1, 1, 1, 1, 9, 9, 9, 9, 9};
  EXPECT_EQ(longest_run_around_median(xs), 5u);
}

TEST(TimeseriesTest, LongestRunOnAlternatingData) {
  const std::vector<double> xs{1, 9, 1, 9, 1, 9};
  EXPECT_EQ(longest_run_around_median(xs), 1u);
}

TEST(TimeseriesTest, LongestRunIidIsShortRelativeToRegimeSwitching) {
  Rng rng{5};
  std::vector<double> iid(200);
  for (auto& x : iid) x = rng.normal(0.0, 1.0);
  std::vector<double> regime;
  for (int i = 0; i < 100; ++i) regime.push_back(1.0 + 0.001 * i);
  for (int i = 0; i < 100; ++i) regime.push_back(10.0 + 0.001 * i);
  EXPECT_LT(longest_run_around_median(iid), longest_run_around_median(regime));
}

}  // namespace
}  // namespace cloudrepro::stats
