#include "stats/ci.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/rng.h"

namespace cloudrepro::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, double mean, double sd,
                                  std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(mean, sd);
  return xs;
}

TEST(CiTest, MedianCiContainsSampleMedian) {
  const auto xs = normal_sample(101, 50.0, 5.0, 3);
  const auto ci = median_ci(xs);
  ASSERT_TRUE(ci.valid);
  EXPECT_LE(ci.lower, ci.estimate);
  EXPECT_GE(ci.upper, ci.estimate);
  EXPECT_TRUE(ci.contains(median(xs)));
}

TEST(CiTest, ThreeRepetitionsCannotFormMedianCi) {
  // The Figure 3 caption: "three repetitions are insufficient to calculate
  // CIs" — our implementation reports this explicitly.
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto ci = median_ci(xs);
  EXPECT_FALSE(ci.valid);
  EXPECT_DOUBLE_EQ(ci.estimate, 2.0);
}

TEST(CiTest, SixSamplesIsMinimumForMedian95) {
  EXPECT_EQ(min_samples_for_quantile_ci(0.5, 0.95), 6u);
  const std::vector<double> xs{1, 2, 3, 4, 5, 6};
  EXPECT_TRUE(median_ci(xs).valid);
  const std::vector<double> ys{1, 2, 3, 4, 5};
  EXPECT_FALSE(median_ci(ys).valid);
}

TEST(CiTest, TailQuantileNeedsFarMoreSamples) {
  // F2.3/Figure 3b: tail estimates are much harder than medians.
  const auto median_n = min_samples_for_quantile_ci(0.5, 0.95);
  const auto p90_n = min_samples_for_quantile_ci(0.9, 0.95);
  EXPECT_GT(p90_n, 4 * median_n);
}

TEST(CiTest, HigherConfidenceWidensInterval) {
  const auto xs = normal_sample(200, 0.0, 1.0, 4);
  const auto ci95 = median_ci(xs, 0.95);
  const auto ci99 = median_ci(xs, 0.99);
  ASSERT_TRUE(ci95.valid);
  ASSERT_TRUE(ci99.valid);
  EXPECT_GE(ci99.width(), ci95.width());
}

TEST(CiTest, MoreSamplesTightenInterval) {
  const auto small = normal_sample(20, 0.0, 1.0, 5);
  const auto large = normal_sample(2000, 0.0, 1.0, 5);
  const auto ci_small = median_ci(small);
  const auto ci_large = median_ci(large);
  ASSERT_TRUE(ci_small.valid);
  ASSERT_TRUE(ci_large.valid);
  EXPECT_LT(ci_large.width(), ci_small.width());
}

TEST(CiTest, AchievedConfidenceAtLeastRequested) {
  const auto xs = normal_sample(60, 0.0, 1.0, 6);
  const auto ci = median_ci(xs, 0.95);
  ASSERT_TRUE(ci.valid);
  EXPECT_GE(ci.confidence, 0.95);
}

TEST(CiTest, RelativeHalfWidth) {
  ConfidenceInterval ci;
  ci.lower = 90.0;
  ci.estimate = 100.0;
  ci.upper = 110.0;
  EXPECT_NEAR(ci.relative_half_width(), 0.1, 1e-12);
}

TEST(CiTest, ZeroEstimateRelativeHalfWidthIsInfinite) {
  // Regression: a degenerate interval around estimate == 0 used to report a
  // relative half-width of 0.0 — "perfectly converged" — letting a CONFIRM
  // analysis of an all-zero metric stop after the minimum repetitions. The
  // degenerate case must now read as never-converged.
  ConfidenceInterval ci;
  ci.lower = 0.0;
  ci.estimate = 0.0;
  ci.upper = 0.0;
  ci.valid = true;
  EXPECT_TRUE(std::isinf(ci.relative_half_width()));

  // Nonzero width around a zero estimate is equally undefined — same answer.
  ci.lower = -1.0;
  ci.upper = 1.0;
  EXPECT_TRUE(std::isinf(ci.relative_half_width()));
}

TEST(CiTest, QuantileCiSortedMatchesUnsortedPath) {
  const auto xs = normal_sample(40, 50.0, 4.0, 21);
  auto s = xs;
  std::sort(s.begin(), s.end());
  const auto a = quantile_ci(xs, 0.5);
  const auto b = quantile_ci_sorted(s, 0.5);
  ASSERT_TRUE(a.valid);
  EXPECT_EQ(a.lower, b.lower);
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.upper, b.upper);
  EXPECT_EQ(a.confidence, b.confidence);
}

TEST(CiTest, InvalidArgumentsThrow) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(quantile_ci({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile_ci(xs, 0.0), std::invalid_argument);
  EXPECT_THROW(quantile_ci(xs, 1.0), std::invalid_argument);
  EXPECT_THROW(quantile_ci(xs, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(quantile_ci(xs, 0.5, 1.0), std::invalid_argument);
}

TEST(CiTest, BootstrapMedianCiAgreesWithOrderStatisticCi) {
  const auto xs = normal_sample(300, 20.0, 3.0, 7);
  Rng rng{8};
  const auto boot = bootstrap_ci(
      xs, [](std::span<const double> s) { return median(s); }, rng);
  const auto order = median_ci(xs);
  ASSERT_TRUE(boot.valid);
  ASSERT_TRUE(order.valid);
  // The two methods should overlap substantially.
  EXPECT_LT(boot.lower, order.upper);
  EXPECT_GT(boot.upper, order.lower);
  EXPECT_NEAR(boot.estimate, order.estimate, 1e-12);
}

TEST(CiTest, BootstrapThrowsOnEmpty) {
  Rng rng{9};
  EXPECT_THROW(
      bootstrap_ci({}, [](std::span<const double> s) { return mean(s); }, rng),
      std::invalid_argument);
}

// ---- Coverage property: the 95% CI for the median covers the true median
// ~95% of the time (within Monte-Carlo tolerance), for several sample sizes
// and distributions. This validates the Le Boudec order-statistic method
// end-to-end.
struct CoverageCase {
  std::size_t n;
  bool heavy_tailed;
};

class CiCoverageTest : public ::testing::TestWithParam<CoverageCase> {};

TEST_P(CiCoverageTest, CoversTrueMedianAtNominalRate) {
  const auto param = GetParam();
  Rng rng{1234};
  const double true_median = param.heavy_tailed ? 1.0 * std::pow(2.0, 1.0 / 1.5) : 0.0;

  int covered = 0;
  constexpr int kTrials = 600;
  std::vector<double> xs(param.n);
  for (int t = 0; t < kTrials; ++t) {
    for (auto& x : xs) {
      x = param.heavy_tailed ? rng.pareto(1.0, 1.5) : rng.normal(0.0, 1.0);
    }
    const auto ci = median_ci(xs);
    ASSERT_TRUE(ci.valid);
    if (ci.contains(true_median)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  // Order-statistic CIs are conservative: coverage >= nominal, and should
  // not be absurdly wide either.
  EXPECT_GE(coverage, 0.93);
  EXPECT_LE(coverage, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SampleSizes, CiCoverageTest,
    ::testing::Values(CoverageCase{10, false}, CoverageCase{30, false},
                      CoverageCase{100, false}, CoverageCase{10, true},
                      CoverageCase{50, true}));

}  // namespace
}  // namespace cloudrepro::stats
