#include "stats/stationarity.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.h"

namespace cloudrepro::stats {
namespace {

std::vector<double> white_noise(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(10.0, 1.0);
  return xs;
}

std::vector<double> random_walk(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> xs(n);
  double level = 0.0;
  for (auto& x : xs) {
    level += rng.normal(0.0, 1.0);
    x = level;
  }
  return xs;
}

TEST(StationarityTest, WhiteNoiseIsFullyStationary) {
  const auto xs = white_noise(600, 1);
  EXPECT_GT(stationary_fraction(xs), 0.9);
  const auto ranges = stationary_ranges(xs);
  ASSERT_FALSE(ranges.empty());
  // Merged ranges should cover essentially the whole series.
  EXPECT_EQ(ranges.front().begin, 0u);
  EXPECT_GT(ranges.back().end, xs.size() - 80);
}

TEST(StationarityTest, RandomWalkIsNotStationary) {
  const auto xs = random_walk(600, 2);
  EXPECT_LT(stationary_fraction(xs), 0.3);
}

TEST(StationarityTest, RegimeSwitchFoundMidSeries) {
  // Stationary noise, then a drifting (budget-depleting) segment.
  Rng rng{3};
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.normal(10.0, 0.5));
  double level = 10.0;
  for (int i = 0; i < 300; ++i) {
    level += 0.2 + rng.normal(0.0, 0.5);  // Trend: unit-root-like.
    xs.push_back(level);
  }
  StationarityScanOptions opt;
  opt.window = 100;
  opt.stride = 50;
  const auto verdicts = stationarity_scan(xs, opt);
  ASSERT_GE(verdicts.size(), 8u);
  // The early windows are stationary, the late ones are not.
  EXPECT_TRUE(verdicts.front().stationary);
  EXPECT_FALSE(verdicts.back().stationary);
}

TEST(StationarityTest, ShortSeriesYieldsNoWindows) {
  const auto xs = white_noise(30, 4);
  StationarityScanOptions opt;
  opt.window = 60;
  EXPECT_TRUE(stationarity_scan(xs, opt).empty());
  EXPECT_DOUBLE_EQ(stationary_fraction(xs, opt), 0.0);
}

TEST(StationarityTest, RangesMergeOverlappingWindows) {
  const auto xs = white_noise(400, 5);
  StationarityScanOptions opt;
  opt.window = 100;
  opt.stride = 25;  // Heavy overlap.
  const auto ranges = stationary_ranges(xs, opt);
  // Overlapping stationary windows merge into few ranges.
  EXPECT_LE(ranges.size(), 3u);
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].begin, ranges[i - 1].end);
  }
}

TEST(StationarityTest, Validation) {
  const auto xs = white_noise(100, 6);
  StationarityScanOptions opt;
  opt.window = 10;
  EXPECT_THROW(stationarity_scan(xs, opt), std::invalid_argument);
  opt.window = 60;
  opt.stride = 0;
  EXPECT_THROW(stationarity_scan(xs, opt), std::invalid_argument);
}

TEST(StationarityTest, WindowRangeSize) {
  WindowRange r{10, 25};
  EXPECT_EQ(r.size(), 15u);
}

}  // namespace
}  // namespace cloudrepro::stats
