#include "stats/kappa.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "stats/rng.h"

namespace cloudrepro::stats {
namespace {

TEST(KappaTest, PerfectAgreementIsOne) {
  const bool a[] = {true, false, true, true, false};
  EXPECT_DOUBLE_EQ(cohens_kappa(a, a), 1.0);
}

TEST(KappaTest, KnownTextbookValue) {
  // 2x2 table: both-yes 20, A-yes/B-no 5, A-no/B-yes 10, both-no 15.
  std::vector<bool> a, b;
  for (int i = 0; i < 20; ++i) { a.push_back(true);  b.push_back(true);  }
  for (int i = 0; i < 5;  ++i) { a.push_back(true);  b.push_back(false); }
  for (int i = 0; i < 10; ++i) { a.push_back(false); b.push_back(true);  }
  for (int i = 0; i < 15; ++i) { a.push_back(false); b.push_back(false); }
  std::unique_ptr<bool[]> ab{new bool[a.size()]}, bb{new bool[b.size()]};
  for (std::size_t i = 0; i < a.size(); ++i) { ab[i] = a[i]; bb[i] = b[i]; }
  // po = 0.70, pe = 0.5 -> kappa = 0.40.
  EXPECT_NEAR(cohens_kappa({ab.get(), a.size()}, {bb.get(), b.size()}), 0.40, 1e-12);
}

TEST(KappaTest, IndependentRatersNearZero) {
  Rng rng{5};
  const std::size_t n = 20000;
  std::unique_ptr<bool[]> a{new bool[n]}, b{new bool[n]};
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.bernoulli(0.5);
    b[i] = rng.bernoulli(0.5);
  }
  EXPECT_NEAR(cohens_kappa({a.get(), n}, {b.get(), n}), 0.0, 0.05);
}

TEST(KappaTest, SystematicDisagreementIsNegative) {
  const bool a[] = {true, true, false, false};
  const bool b[] = {false, false, true, true};
  EXPECT_LT(cohens_kappa(a, b), 0.0);
}

TEST(KappaTest, ConstantIdenticalRatersIsOne) {
  const bool a[] = {true, true, true};
  EXPECT_DOUBLE_EQ(cohens_kappa(a, a), 1.0);
}

TEST(KappaTest, ThrowsOnMismatchedOrEmpty) {
  const bool a[] = {true, false};
  const bool b[] = {true};
  EXPECT_THROW(cohens_kappa(a, b), std::invalid_argument);
  EXPECT_THROW(cohens_kappa({}, {}), std::invalid_argument);
}

TEST(KappaTest, InterpretationBands) {
  EXPECT_EQ(interpret_kappa(-0.2), AgreementLevel::kLessThanChance);
  EXPECT_EQ(interpret_kappa(0.1), AgreementLevel::kSlight);
  EXPECT_EQ(interpret_kappa(0.3), AgreementLevel::kFair);
  EXPECT_EQ(interpret_kappa(0.5), AgreementLevel::kModerate);
  EXPECT_EQ(interpret_kappa(0.7), AgreementLevel::kSubstantial);
  // The paper's reviewer scores (0.95, 0.81, 0.85) are all "almost perfect".
  EXPECT_EQ(interpret_kappa(0.95), AgreementLevel::kAlmostPerfect);
  EXPECT_EQ(interpret_kappa(0.81), AgreementLevel::kAlmostPerfect);
  EXPECT_EQ(interpret_kappa(0.85), AgreementLevel::kAlmostPerfect);
}

TEST(KappaTest, ToStringCoversAllLevels) {
  EXPECT_EQ(to_string(AgreementLevel::kAlmostPerfect), "almost perfect");
  EXPECT_EQ(to_string(AgreementLevel::kLessThanChance), "less than chance");
  EXPECT_FALSE(to_string(AgreementLevel::kModerate).empty());
}

}  // namespace
}  // namespace cloudrepro::stats
