#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.h"

namespace cloudrepro::stats {
namespace {

TEST(DescriptiveTest, MeanOfKnownValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(DescriptiveTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(DescriptiveTest, VarianceIsUnbiasedSampleVariance) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known: population variance 4, sample variance 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(DescriptiveTest, VarianceOfSingletonIsZero) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(DescriptiveTest, StddevIsSquareRootOfVariance) {
  const std::vector<double> xs{1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(variance(xs)));
}

TEST(DescriptiveTest, CoefficientOfVariation) {
  const std::vector<double> xs{10.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
  const std::vector<double> ys{5.0, 15.0};
  EXPECT_NEAR(coefficient_of_variation(ys), stddev(ys) / 10.0, 1e-12);
}

TEST(DescriptiveTest, CoVOfZeroMeanIsZero) {
  const std::vector<double> xs{-1.0, 1.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
}

TEST(DescriptiveTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(DescriptiveTest, QuantileEndpoints) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(DescriptiveTest, QuantileInterpolatesLinearly) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(DescriptiveTest, QuantileThrowsOnEmptyOrBadQ) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
}

TEST(DescriptiveTest, QuantileOfSingleton) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 7.0);
}

TEST(DescriptiveTest, SummarizeMatchesComponents) {
  const std::vector<double> xs{4.0, 8.0, 6.0, 2.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_NEAR(s.stddev, std::sqrt(s.variance), 1e-15);
}

TEST(DescriptiveTest, SummarizeThrowsOnEmpty) {
  EXPECT_THROW(summarize({}), std::invalid_argument);
}

TEST(DescriptiveTest, BoxStatsOrdering) {
  Rng rng{1};
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);
  const auto b = box_stats(xs);
  EXPECT_LT(b.p1, b.p25);
  EXPECT_LT(b.p25, b.p50);
  EXPECT_LT(b.p50, b.p75);
  EXPECT_LT(b.p75, b.p99);
  EXPECT_NEAR(b.p50, 0.0, 0.1);
  EXPECT_GT(b.iqr(), 0.0);
}

TEST(DescriptiveTest, SortedReturnsAscendingCopy) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const auto s = sorted(xs);
  EXPECT_EQ(s, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(xs[0], 3.0);  // Original untouched.
}

// Property sweep: for any sample, quantiles are monotone in q and bounded by
// min/max.
class QuantileMonotonicityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotonicityTest, MonotoneAndBounded) {
  Rng rng{GetParam()};
  std::vector<double> xs(257);
  for (auto& x : xs) x = rng.pareto(1.0, 1.5);
  const auto s = sorted(xs);
  double prev = s.front();
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = quantile_sorted(s, q);
    EXPECT_GE(v, prev - 1e-12);
    EXPECT_GE(v, s.front());
    EXPECT_LE(v, s.back());
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotonicityTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace cloudrepro::stats
