#include <gtest/gtest.h>

#include <set>

#include "stats/kappa.h"
#include "survey/corpus.h"
#include "survey/review.h"

namespace cloudrepro::survey {
namespace {

std::vector<Article> selected_articles(stats::Rng& rng) {
  const auto corpus = generate_corpus(CorpusOptions{}, rng);
  return filter_cloud_experiments(filter_by_keywords(corpus));
}

TEST(CorpusTest, FunnelMatchesTable2) {
  stats::Rng rng{1};
  const auto corpus = generate_corpus(CorpusOptions{}, rng);
  EXPECT_EQ(corpus.size(), 1867u);
  const auto keyword = filter_by_keywords(corpus);
  EXPECT_EQ(keyword.size(), 138u);
  const auto cloud = filter_cloud_experiments(keyword);
  EXPECT_EQ(cloud.size(), 44u);
}

TEST(CorpusTest, VenueSplitMatchesTable2) {
  stats::Rng rng{2};
  const auto cloud = selected_articles(rng);
  int nsdi = 0, osdi = 0, sosp = 0, sc = 0;
  for (const auto& a : cloud) {
    switch (a.venue) {
      case Venue::kNsdi: ++nsdi; break;
      case Venue::kOsdi: ++osdi; break;
      case Venue::kSosp: ++sosp; break;
      case Venue::kSc: ++sc; break;
    }
  }
  EXPECT_EQ(nsdi, 15);
  EXPECT_EQ(osdi, 7);
  EXPECT_EQ(sosp, 7);
  EXPECT_EQ(sc, 15);
}

TEST(CorpusTest, SelectedCitationsSumTo11203) {
  stats::Rng rng{3};
  const auto cloud = selected_articles(rng);
  long long total = 0;
  for (const auto& a : cloud) total += a.citations;
  EXPECT_EQ(total, 11203);
}

TEST(CorpusTest, YearsWithinSurveyWindow) {
  stats::Rng rng{4};
  for (const auto& a : generate_corpus(CorpusOptions{}, rng)) {
    EXPECT_GE(a.year, 2008);
    EXPECT_LE(a.year, 2018);
  }
}

TEST(CorpusTest, ReportingMarginalsMatchFigure1) {
  // Averaged over several corpora: >60% under-specified; of the articles
  // reporting a central tendency only ~37% report variability.
  stats::Rng rng{5};
  double under = 0.0, central = 0.0, var_given_central = 0.0;
  constexpr int kCorpora = 30;
  for (int i = 0; i < kCorpora; ++i) {
    const auto cloud = selected_articles(rng);
    int u = 0, c = 0, vc = 0;
    for (const auto& a : cloud) {
      if (a.underspecified()) ++u;
      if (a.reports_central_tendency) {
        ++c;
        if (a.reports_variability) ++vc;
      }
    }
    under += static_cast<double>(u) / 44.0;
    central += static_cast<double>(c) / 44.0;
    var_given_central += c > 0 ? static_cast<double>(vc) / c : 0.0;
  }
  under /= kCorpora;
  central /= kCorpora;
  var_given_central /= kCorpora;
  EXPECT_NEAR(under, 0.61, 0.08);
  EXPECT_NEAR(central, 0.55, 0.08);
  EXPECT_NEAR(var_given_central, 0.37, 0.10);
}

TEST(CorpusTest, RepetitionCountsFromFigure1bSupport) {
  stats::Rng rng{6};
  const auto corpus = generate_corpus(CorpusOptions{}, rng);
  const std::set<int> allowed{3, 5, 9, 10, 15, 20, 100};
  for (const auto& a : corpus) {
    if (a.repetitions > 0) {
      EXPECT_TRUE(allowed.count(a.repetitions)) << a.repetitions;
    }
  }
}

TEST(CorpusTest, MostProperlySpecifiedUseAtMost15Reps) {
  // The paper: 76% of properly specified studies use <= 15 repetitions.
  stats::Rng rng{7};
  int le15 = 0, total = 0;
  for (int i = 0; i < 20; ++i) {
    for (const auto& a : generate_corpus(CorpusOptions{}, rng)) {
      if (a.properly_specified()) {
        ++total;
        if (a.repetitions <= 15) ++le15;
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_NEAR(static_cast<double>(le15) / total, 0.80, 0.12);
}

TEST(CorpusTest, InvalidFunnelThrows) {
  CorpusOptions bad;
  bad.cloud_articles = 500;
  bad.keyword_matches = 100;
  stats::Rng rng{8};
  EXPECT_THROW(generate_corpus(bad, rng), std::invalid_argument);

  CorpusOptions bad_split;
  bad_split.nsdi_cloud = 44;  // Sums to > 44 with the other defaults.
  EXPECT_THROW(generate_corpus(bad_split, rng), std::invalid_argument);
}

TEST(ReviewTest, PerfectReviewersFullyAgree) {
  stats::Rng rng{9};
  const auto articles = selected_articles(rng);
  const auto a = review_articles(articles, 0.0, rng);
  const auto b = review_articles(articles, 0.0, rng);
  const auto agr = agreement(a, b);
  EXPECT_DOUBLE_EQ(agr.kappa_central_tendency, 1.0);
  EXPECT_DOUBLE_EQ(agr.kappa_variability, 1.0);
  EXPECT_DOUBLE_EQ(agr.kappa_underspecified, 1.0);
}

TEST(ReviewTest, SmallErrorRateGivesAlmostPerfectKappa) {
  // The paper's dual review reached kappas of 0.95/0.81/0.85 — all above
  // the 0.8 "almost perfect" threshold [59].
  stats::Rng rng{10};
  double k_sum = 0.0;
  int count = 0;
  for (int i = 0; i < 20; ++i) {
    const auto articles = selected_articles(rng);
    const auto a = review_articles(articles, 0.02, rng);
    const auto b = review_articles(articles, 0.02, rng);
    const auto agr = agreement(a, b);
    k_sum += agr.kappa_underspecified;
    ++count;
  }
  const double mean_kappa = k_sum / count;
  EXPECT_GT(mean_kappa, 0.8);
  EXPECT_EQ(stats::interpret_kappa(mean_kappa), stats::AgreementLevel::kAlmostPerfect);
}

TEST(ReviewTest, ErrorRateValidation) {
  stats::Rng rng{11};
  const auto articles = selected_articles(rng);
  EXPECT_THROW(review_articles(articles, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(review_articles(articles, 0.6, rng), std::invalid_argument);
}

TEST(ReviewTest, FavorableConsensusIsFavorable) {
  ReviewerLabels a, b;
  a.reports_central_tendency = {true, false};
  b.reports_central_tendency = {false, false};
  a.reports_variability = {false, true};
  b.reports_variability = {false, false};
  a.underspecified = {true, true};
  b.underspecified = {false, true};
  const auto c = favorable_consensus(a, b);
  // Positive categories: OR (favorable to the article).
  EXPECT_TRUE(c.reports_central_tendency[0]);
  EXPECT_TRUE(c.reports_variability[1]);
  // Negative category: AND.
  EXPECT_FALSE(c.underspecified[0]);
  EXPECT_TRUE(c.underspecified[1]);
}

TEST(ReviewTest, FavorableConsensusSizeMismatchThrows) {
  ReviewerLabels a, b;
  a.reports_central_tendency = {true};
  b.reports_central_tendency = {true, false};
  EXPECT_THROW(favorable_consensus(a, b), std::invalid_argument);
}

TEST(SummarizeTest, FindingsAddUp) {
  stats::Rng rng{12};
  const auto articles = selected_articles(rng);
  const auto labels = review_articles(articles, 0.0, rng);
  const auto f = summarize_survey(articles, labels);
  EXPECT_EQ(f.selected_articles, 44u);
  EXPECT_EQ(f.total_citations, 11203);
  EXPECT_GE(f.pct_underspecified, 0.0);
  EXPECT_LE(f.pct_underspecified, 100.0);
  EXPECT_LE(f.pct_reporting_variability, f.pct_reporting_central_tendency + 1e-9);
  double rep_total = 0.0;
  for (const auto& [reps, pct] : f.repetition_pct) {
    EXPECT_GT(reps, 0);
    rep_total += pct;
  }
  EXPECT_LE(rep_total, 100.0 + 1e-9);
}

TEST(SummarizeTest, MismatchThrows) {
  stats::Rng rng{13};
  const auto articles = selected_articles(rng);
  ReviewerLabels labels;  // Empty.
  EXPECT_THROW(summarize_survey(articles, labels), std::invalid_argument);
}

}  // namespace
}  // namespace cloudrepro::survey
