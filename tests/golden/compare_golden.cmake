# Golden-file comparison driver, invoked as a ctest command:
#   cmake -DBENCH=<path-to-binary> -DEXPECTED=<path-to-golden.txt>
#         -P compare_golden.cmake
#
# Runs the bench, normalizes line endings and trailing whitespace on both
# sides (so goldens survive CRLF checkouts and editor trims), and fails with
# a unified diff when the output drifts. The benches under test are seeded
# and thread-count independent, so any diff is a real behavior change — the
# golden must then be regenerated *deliberately*:
#   build/bench/<bench> > tests/golden/expected/<bench>.txt

if(NOT DEFINED BENCH OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "compare_golden.cmake needs -DBENCH=... and -DEXPECTED=...")
endif()

execute_process(
  COMMAND "${BENCH}"
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE exit_code
)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited with ${exit_code}")
endif()

file(READ "${EXPECTED}" expected)

function(normalize text out_var)
  string(REPLACE "\r\n" "\n" text "${text}")
  string(REPLACE "\r" "\n" text "${text}")
  # Strip trailing whitespace per line and trailing blank lines.
  string(REGEX REPLACE "[ \t]+\n" "\n" text "${text}")
  string(REGEX REPLACE "[ \t\n]+$" "" text "${text}")
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

normalize("${actual}" actual)
normalize("${expected}" expected)

if(NOT actual STREQUAL expected)
  get_filename_component(name "${EXPECTED}" NAME_WE)
  set(actual_file "${CMAKE_CURRENT_BINARY_DIR}/${name}.actual.txt")
  file(WRITE "${actual_file}" "${actual}\n")
  find_program(DIFF_TOOL diff)
  if(DIFF_TOOL)
    execute_process(
      COMMAND "${DIFF_TOOL}" -u "${EXPECTED}" "${actual_file}"
      OUTPUT_VARIABLE diff_out
    )
    message(STATUS "diff -u expected actual:\n${diff_out}")
  endif()
  message(FATAL_ERROR
      "golden mismatch for ${name}: actual output written to ${actual_file}. "
      "If the change is intentional, regenerate the golden from the bench.")
endif()
