// Analytic-validation property suite: the fluid simulator must agree with
// closed-form token-bucket arithmetic across a grid of access patterns.
// These are the formulas the paper's Section 3.3 analysis implies, and the
// ones `examples/token_bucket_explorer` prints.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cloud/tc_emulator.h"
#include "simnet/qos.h"
#include "simnet/token_bucket.h"
#include "stats/descriptive.h"

namespace cloudrepro::simnet {
namespace {

struct PatternCase {
  double burst_s;
  double idle_s;
};

class OnOffSteadyStateTest : public ::testing::TestWithParam<PatternCase> {};

TEST_P(OnOffSteadyStateTest, SimulatedSteadyStateMatchesClosedForm) {
  const auto param = GetParam();
  TokenBucketConfig cfg;
  cfg.capacity_gbit = 5400.0;
  cfg.initial_gbit = 0.0;  // Start in steady state directly.
  cfg.high_rate_gbps = 10.0;
  cfg.low_rate_gbps = 1.0;
  cfg.replenish_gbps = 1.0;

  // Closed form: each idle period refills idle_s * replenish tokens; a burst
  // spends them at (high - replenish); the remainder of the burst runs at
  // the low rate.
  const double refill = param.idle_s * cfg.replenish_gbps;
  const double need = param.burst_s * (cfg.high_rate_gbps - cfg.replenish_gbps);
  double expected;
  if (refill >= need) {
    expected = cfg.high_rate_gbps;
  } else {
    const double high_window = refill / (cfg.high_rate_gbps - cfg.replenish_gbps);
    expected = (high_window * cfg.high_rate_gbps +
                (param.burst_s - high_window) * cfg.low_rate_gbps) /
               param.burst_s;
  }

  TokenBucketQos qos{cfg};
  const auto curve = cloud::onoff_bandwidth_curve(
      qos, param.burst_s, param.idle_s, 40.0 * (param.burst_s + param.idle_s));

  // Average over transfer seconds in the second half (steady state).
  std::vector<double> busy;
  for (std::size_t i = curve.size() / 2; i < curve.size(); ++i) {
    if (curve[i].bandwidth_gbps > 0.05) busy.push_back(curve[i].bandwidth_gbps);
  }
  ASSERT_FALSE(busy.empty());
  // Per-second samples quantize the burst boundaries; allow ~15% tolerance.
  EXPECT_NEAR(stats::mean(busy), expected, 0.15 * expected)
      << "burst " << param.burst_s << " idle " << param.idle_s;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, OnOffSteadyStateTest,
    ::testing::Values(PatternCase{10.0, 30.0},   // The paper's 10-30: 4 Gbps.
                      PatternCase{5.0, 30.0},    // The paper's 5-30: 7 Gbps.
                      PatternCase{5.0, 60.0},    // Refill exceeds need: 10.
                      PatternCase{20.0, 20.0},   // Heavier duty: ~2.
                      PatternCase{60.0, 10.0})); // Nearly continuous: ~1.2.

// Depletion-time grid: budget / (high - replenish) exactly.
class DepletionTimeTest : public ::testing::TestWithParam<double> {};

TEST_P(DepletionTimeTest, TimeToThrottleMatchesFormula) {
  const double budget = GetParam();
  TokenBucketConfig cfg;
  cfg.capacity_gbit = 5400.0;
  cfg.initial_gbit = budget;
  cfg.high_rate_gbps = 10.0;
  cfg.low_rate_gbps = 1.0;
  cfg.replenish_gbps = 1.0;
  TokenBucket tb{cfg};

  const double expected = budget / (cfg.high_rate_gbps - cfg.replenish_gbps);
  EXPECT_NEAR(tb.time_until_change(cfg.high_rate_gbps), expected, 1e-9);

  // And the fluid simulation agrees: advance in odd-sized steps.
  double t = 0.0;
  while (!tb.in_low_mode() && t < 2.0 * expected + 1.0) {
    const double dt = 0.37;
    tb.advance(dt, cfg.high_rate_gbps);
    t += dt;
  }
  EXPECT_NEAR(t, expected, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Budgets, DepletionTimeTest,
                         ::testing::Values(10.0, 100.0, 1000.0, 2500.0, 5400.0));

// Long-run throughput is bounded by the replenish rate, whatever the
// pattern: the mechanism behind Figure 10's equal EC2 totals.
class LongRunThroughputTest : public ::testing::TestWithParam<PatternCase> {};

TEST_P(LongRunThroughputTest, SustainedThroughputEqualsReplenishRate) {
  const auto param = GetParam();
  TokenBucketConfig cfg;
  cfg.capacity_gbit = 100.0;  // Small: steady state arrives quickly.
  cfg.initial_gbit = 0.0;
  cfg.high_rate_gbps = 10.0;
  cfg.low_rate_gbps = 1.0;
  cfg.replenish_gbps = 1.0;
  TokenBucketQos qos{cfg};

  const auto curve =
      cloud::onoff_bandwidth_curve(qos, param.burst_s, param.idle_s, 4000.0);
  double total = 0.0;
  for (const auto& p : curve) total += p.bandwidth_gbps;  // Gbit (1-s bins).
  const double duty = param.burst_s / (param.burst_s + param.idle_s);
  const double elapsed = curve.back().t;
  const double long_run = total / elapsed;
  // Sustained throughput cannot exceed replenish (while transferring at
  // least that fraction of time) and approaches min(replenish, duty * high).
  const double bound = std::min(cfg.replenish_gbps, duty * cfg.high_rate_gbps);
  EXPECT_NEAR(long_run, bound, 0.25 * bound + 0.05)
      << "burst " << param.burst_s << " idle " << param.idle_s;
}

INSTANTIATE_TEST_SUITE_P(Patterns, LongRunThroughputTest,
                         ::testing::Values(PatternCase{10.0, 30.0},
                                           PatternCase{5.0, 30.0},
                                           PatternCase{30.0, 5.0},
                                           PatternCase{10.0, 0.5}));

}  // namespace
}  // namespace cloudrepro::simnet
