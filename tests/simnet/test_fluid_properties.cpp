// Property-based tests for the fluid network's allocation invariants under
// seed-randomized flow churn. The step observer fires after every internal
// allocation (and before completed flows are removed), so each step checks:
//
//  1. the O(1) per-node egress/ingress caches equal a fresh scan over all
//     flows — this guards the PR 3 cache maintenance in *release* builds,
//     where the debug-only assert_rate_caches() compiles to nothing;
//  2. no node and no single flow exceeds its QoS/ingress cap;
//  3. the allocation is max-min fair: every active flow has a bottleneck
//     constraint — a saturated source-egress or destination-ingress cap on
//     which its rate is maximal among the sharing flows.
//
// Node QoS grants are constant throughout (fixed rates, plus token buckets
// whose replenish rate equals the high rate, so they never deplete): that
// keeps the test's tracked caps exact at every step. Bucket depletion
// dynamics are covered by test_token_bucket / test_fluid_network.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "simnet/fluid_network.h"
#include "simnet/qos.h"
#include "simnet/token_bucket.h"
#include "simnet/units.h"
#include "stats/rng.h"

namespace cloudrepro::simnet {
namespace {

constexpr double kTol = 1e-6;

struct TrackedNet {
  FluidNetwork net;
  std::vector<double> base_egress;   ///< Constant QoS grant per node.
  std::vector<double> base_ingress;  ///< Line-rate ingress cap per node.
  std::vector<double> factor;       ///< Mirrors set_node_rate_factor calls.
  std::vector<char> failed;

  double egress_cap(NodeId i) const {
    return failed[i] ? 0.0 : base_egress[i] * factor[i];
  }
  double ingress_cap(NodeId i) const {
    return failed[i] ? 0.0 : base_ingress[i] * factor[i];
  }
  std::vector<NodeId> alive() const {
    std::vector<NodeId> out;
    for (NodeId i = 0; i < failed.size(); ++i) {
      if (!failed[i]) out.push_back(i);
    }
    return out;
  }
};

TrackedNet build_network(stats::Rng& rng, std::size_t nodes) {
  TrackedNet t;
  for (std::size_t i = 0; i < nodes; ++i) {
    const double ingress = 10.0;
    double egress = 0.0;
    if (rng.bernoulli(0.5)) {
      const double rates[] = {5.0, 8.0, 10.0};
      egress = rates[rng.next_u64() % 3];
      t.net.add_node(std::make_unique<FixedRateQos>(egress), ingress);
    } else {
      TokenBucketConfig cfg;
      cfg.capacity_gbit = 1000.0;
      cfg.initial_gbit = 1000.0;
      cfg.high_rate_gbps = rng.bernoulli(0.5) ? 6.0 : 9.0;
      cfg.low_rate_gbps = 1.0;
      cfg.replenish_gbps = cfg.high_rate_gbps;  // Never depletes.
      cfg.recover_threshold_gbit = 5.0;
      egress = cfg.high_rate_gbps;
      t.net.add_node(std::make_unique<TokenBucketQos>(cfg), ingress);
    }
    t.base_egress.push_back(egress);
    t.base_ingress.push_back(ingress);
    t.factor.push_back(1.0);
    t.failed.push_back(0);
  }
  return t;
}

/// Runs the full invariant battery against the current allocation.
void verify_invariants(const TrackedNet& t, double now) {
  const FluidNetwork& net = t.net;
  const std::size_t n = net.node_count();
  std::vector<double> egress_sum(n, 0.0);
  std::vector<double> ingress_sum(n, 0.0);
  std::vector<double> max_on_src(n, 0.0);
  std::vector<double> max_into_dst(n, 0.0);
  std::vector<const Flow*> active;
  for (FlowId id = 0; id < net.flow_count(); ++id) {
    const Flow& f = net.flow(id);
    if (!f.active) continue;
    egress_sum[f.src] += f.rate_gbps;
    ingress_sum[f.dst] += f.rate_gbps;
    max_on_src[f.src] = std::max(max_on_src[f.src], f.rate_gbps);
    max_into_dst[f.dst] = std::max(max_into_dst[f.dst], f.rate_gbps);
    active.push_back(&f);
  }

  for (std::size_t i = 0; i < n; ++i) {
    // (1) Cached aggregates vs a fresh scan. The cache accumulates in
    // active-set order, the scan in flow-id order, so allow summation noise.
    ASSERT_NEAR(net.node_egress_rate(i), egress_sum[i], 1e-7)
        << "egress cache drift, node " << i << " t=" << now;
    ASSERT_NEAR(net.node_ingress_rate(i), ingress_sum[i], 1e-7)
        << "ingress cache drift, node " << i << " t=" << now;
    // (2) Aggregate caps.
    ASSERT_LE(egress_sum[i], t.egress_cap(i) + kTol)
        << "egress cap exceeded, node " << i << " t=" << now;
    ASSERT_LE(ingress_sum[i], t.ingress_cap(i) + kTol)
        << "ingress cap exceeded, node " << i << " t=" << now;
  }

  for (const Flow* f : active) {
    // (2b) A single flow can never exceed its source's shaped rate.
    ASSERT_LE(f->rate_gbps, t.egress_cap(f->src) + kTol)
        << "flow above its bucket rate, src " << f->src << " t=" << now;
    // (3) Max-min fairness: a saturated constraint on which this flow's
    // rate is maximal among the flows sharing it.
    const bool egress_bottleneck =
        t.egress_cap(f->src) - egress_sum[f->src] <= kTol &&
        f->rate_gbps >= max_on_src[f->src] - kTol;
    const bool ingress_bottleneck =
        t.ingress_cap(f->dst) - ingress_sum[f->dst] <= kTol &&
        f->rate_gbps >= max_into_dst[f->dst] - kTol;
    ASSERT_TRUE(egress_bottleneck || ingress_bottleneck)
        << "flow " << f->src << "->" << f->dst << " rate " << f->rate_gbps
        << " has no bottleneck at t=" << now;
  }
}

void churn(TrackedNet& t, stats::Rng& rng, int iterations,
           std::vector<FlowId>& open_flows) {
  for (int iter = 0; iter < iterations; ++iter) {
    const auto alive = t.alive();
    ASSERT_GE(alive.size(), 2u);
    const double u = rng.uniform();
    if (u < 0.45) {
      const NodeId src = alive[rng.next_u64() % alive.size()];
      NodeId dst = src;
      while (dst == src) dst = alive[rng.next_u64() % alive.size()];
      t.net.start_flow(src, dst, rng.uniform(0.5, 20.0));
    } else if (u < 0.6) {
      const NodeId src = alive[rng.next_u64() % alive.size()];
      NodeId dst = src;
      while (dst == src) dst = alive[rng.next_u64() % alive.size()];
      open_flows.push_back(t.net.start_flow(src, dst));
    } else if (u < 0.75 && !open_flows.empty()) {
      const std::size_t pick = rng.next_u64() % open_flows.size();
      t.net.stop_flow(open_flows[pick]);
      open_flows.erase(open_flows.begin() +
                       static_cast<std::ptrdiff_t>(pick));
    } else if (u < 0.88) {
      const NodeId i = alive[rng.next_u64() % alive.size()];
      const double f = rng.uniform(0.3, 1.0);
      t.net.set_node_rate_factor(i, f);
      t.factor[i] = f;
    } else {
      const NodeId i = alive[rng.next_u64() % alive.size()];
      t.net.set_node_rate_factor(i, 1.0);
      t.factor[i] = 1.0;
    }
    t.net.run_for(rng.uniform(0.05, 1.0));
  }
}

class FluidPropertiesTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidPropertiesTest, RandomChurnPreservesAllocationInvariants) {
  stats::Rng rng{GetParam()};
  TrackedNet t = build_network(rng, 10);
  int steps_checked = 0;
  t.net.set_step_observer(
      [&t, &steps_checked](const FluidNetwork&, double now, double) {
        verify_invariants(t, now);
        ++steps_checked;
      });

  std::vector<FlowId> open_flows;
  churn(t, rng, 50, open_flows);

  // Kill one node mid-churn: its flows stop, its caps drop to zero, and the
  // invariants must keep holding for the survivors.
  const auto alive = t.alive();
  const NodeId victim = alive[rng.next_u64() % alive.size()];
  t.net.fail_node(victim);
  t.failed[victim] = 1;
  churn(t, rng, 30, open_flows);

  for (const FlowId id : open_flows) t.net.stop_flow(id);
  EXPECT_TRUE(t.net.run_until_flows_complete(1e6));
  EXPECT_GT(steps_checked, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidPropertiesTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace cloudrepro::simnet
