#include "simnet/qos.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simnet/units.h"
#include "stats/descriptive.h"

namespace cloudrepro::simnet {
namespace {

TEST(FixedRateQosTest, ConstantRate) {
  FixedRateQos qos{5.0};
  EXPECT_DOUBLE_EQ(qos.allowed_rate(), 5.0);
  qos.advance(100.0, 5.0);
  EXPECT_DOUBLE_EQ(qos.allowed_rate(), 5.0);
  EXPECT_TRUE(std::isinf(qos.time_until_change(5.0)));
  EXPECT_FALSE(qos.budget_gbit().has_value());
}

TEST(FixedRateQosTest, RejectsNonPositiveRate) {
  EXPECT_THROW(FixedRateQos{0.0}, std::invalid_argument);
  EXPECT_THROW(FixedRateQos{-1.0}, std::invalid_argument);
}

TEST(FixedRateQosTest, CloneIsIndependent) {
  FixedRateQos qos{5.0};
  auto copy = qos.clone();
  EXPECT_DOUBLE_EQ(copy->allowed_rate(), 5.0);
}

TEST(TokenBucketQosTest, ExposesBudget) {
  TokenBucketConfig cfg;
  cfg.capacity_gbit = 100.0;
  cfg.initial_gbit = 100.0;
  TokenBucketQos qos{cfg};
  ASSERT_TRUE(qos.budget_gbit().has_value());
  EXPECT_DOUBLE_EQ(*qos.budget_gbit(), 100.0);
  qos.advance(5.0, 10.0);
  EXPECT_NEAR(*qos.budget_gbit(), 100.0 - 45.0, 1e-9);
}

TEST(TokenBucketQosTest, CloneCarriesState) {
  TokenBucketConfig cfg;
  cfg.capacity_gbit = 100.0;
  cfg.initial_gbit = 100.0;
  TokenBucketQos qos{cfg};
  qos.advance(5.0, 10.0);
  auto copy = qos.clone();
  EXPECT_NEAR(*copy->budget_gbit(), *qos.budget_gbit(), 1e-12);
  // Advancing the copy does not touch the original.
  copy->advance(1.0, 10.0);
  EXPECT_GT(*qos.budget_gbit(), *copy->budget_gbit());
}

TEST(StochasticQosTest, RateWithinSamplerRange) {
  stats::Rng rng{1};
  StochasticQos qos{[](stats::Rng& r) { return r.uniform(7.7, 10.4); }, 10.0, rng};
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(qos.allowed_rate(), 7.7);
    EXPECT_LE(qos.allowed_rate(), 10.4);
    qos.advance(10.0, qos.allowed_rate());
  }
}

TEST(StochasticQosTest, ResamplesOnlyAtBoundaries) {
  stats::Rng rng{2};
  StochasticQos qos{[](stats::Rng& r) { return r.uniform(1.0, 9.0); }, 10.0, rng};
  const double r0 = qos.allowed_rate();
  qos.advance(4.0, r0);
  EXPECT_DOUBLE_EQ(qos.allowed_rate(), r0);  // Mid-interval: unchanged.
  qos.advance(6.0, r0);
  // Boundary crossed; with a continuous sampler a repeat is a.s. impossible.
  EXPECT_NE(qos.allowed_rate(), r0);
}

TEST(StochasticQosTest, TimeUntilChangeIsBoundaryDistance) {
  stats::Rng rng{3};
  StochasticQos qos{[](stats::Rng&) { return 5.0; }, 10.0, rng};
  EXPECT_NEAR(qos.time_until_change(5.0), 10.0, 1e-9);
  qos.advance(4.0, 5.0);
  EXPECT_NEAR(qos.time_until_change(5.0), 6.0, 1e-9);
}

TEST(StochasticQosTest, ResetReproducesSequence) {
  stats::Rng rng{4};
  StochasticQos qos{[](stats::Rng& r) { return r.uniform(1.0, 9.0); }, 1.0, rng};
  std::vector<double> first;
  for (int i = 0; i < 10; ++i) {
    first.push_back(qos.allowed_rate());
    qos.advance(1.0, 0.0);
  }
  qos.reset();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(qos.allowed_rate(), first[static_cast<std::size_t>(i)]);
    qos.advance(1.0, 0.0);
  }
}

TEST(StochasticQosTest, GuardsAgainstNonPositiveRates) {
  stats::Rng rng{5};
  StochasticQos qos{[](stats::Rng&) { return -3.0; }, 1.0, rng};
  EXPECT_GT(qos.allowed_rate(), 0.0);
}

TEST(StochasticQosTest, Validation) {
  stats::Rng rng{6};
  EXPECT_THROW(StochasticQos(nullptr, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(StochasticQos([](stats::Rng&) { return 1.0; }, 0.0, rng),
               std::invalid_argument);
}

TEST(PerCoreQosTest, NominalRateIsPerCoreTimesCores) {
  PerCoreQosConfig cfg;
  cfg.cores = 4;
  cfg.per_core_gbps = 2.0;
  cfg.max_gbps = 16.0;
  PerCoreQos qos{cfg, stats::Rng{7}};
  EXPECT_DOUBLE_EQ(qos.nominal_rate(), 8.0);
}

TEST(PerCoreQosTest, NominalRateIsCapped) {
  PerCoreQosConfig cfg;
  cfg.cores = 16;
  cfg.per_core_gbps = 2.0;
  cfg.max_gbps = 16.0;
  PerCoreQos qos{cfg, stats::Rng{8}};
  EXPECT_DOUBLE_EQ(qos.nominal_rate(), 16.0);
}

TEST(PerCoreQosTest, SteadyTransmissionStaysNearNominal) {
  PerCoreQosConfig cfg;
  cfg.cores = 8;
  PerCoreQos qos{cfg, stats::Rng{9}};
  std::vector<double> rates;
  for (int i = 0; i < 600; ++i) {
    rates.push_back(qos.allowed_rate());
    qos.advance(1.0, qos.allowed_rate());
  }
  const auto s = stats::summarize(rates);
  EXPECT_GT(s.min, 0.9 * qos.nominal_rate());
  EXPECT_LT(s.coefficient_of_variation, 0.02);
}

TEST(PerCoreQosTest, ResumingAfterIdleCostsWarmup) {
  PerCoreQosConfig cfg;
  cfg.cores = 8;
  cfg.idle_threshold_s = 5.0;
  cfg.warmup_s = 4.0;
  cfg.cold_penalty_mean = 0.2;
  PerCoreQos qos{cfg, stats::Rng{10}};

  // Long idle, then resume: first advance flags the cold path.
  qos.advance(30.0, 0.0);
  qos.advance(0.1, 10.0);
  const double cold_rate = qos.allowed_rate();
  EXPECT_LT(cold_rate, 0.995 * qos.nominal_rate());

  // Keep transmitting: the warm-up completes and the rate recovers.
  for (int i = 0; i < 100; ++i) qos.advance(0.1, qos.allowed_rate());
  EXPECT_GT(qos.allowed_rate(), cold_rate);
}

TEST(PerCoreQosTest, ShortPauseDoesNotTriggerColdPath) {
  PerCoreQosConfig cfg;
  cfg.cores = 8;
  cfg.idle_threshold_s = 5.0;
  PerCoreQos qos{cfg, stats::Rng{11}};
  qos.advance(10.0, qos.allowed_rate());
  qos.advance(2.0, 0.0);  // Pause below the idle threshold.
  qos.advance(0.1, 10.0);
  EXPECT_GT(qos.allowed_rate(), 0.95 * qos.nominal_rate());
}

TEST(PerCoreQosTest, Validation) {
  PerCoreQosConfig cfg;
  cfg.cores = 0;
  EXPECT_THROW(PerCoreQos(cfg, stats::Rng{12}), std::invalid_argument);
  cfg.cores = 4;
  cfg.per_core_gbps = 0.0;
  EXPECT_THROW(PerCoreQos(cfg, stats::Rng{13}), std::invalid_argument);
}

TEST(PerCoreQosTest, TimeUntilChangeIsPositive) {
  PerCoreQosConfig cfg;
  PerCoreQos qos{cfg, stats::Rng{14}};
  for (int i = 0; i < 100; ++i) {
    const double bound = qos.time_until_change(qos.allowed_rate());
    EXPECT_GT(bound, 0.0);
    qos.advance(bound, qos.allowed_rate());
  }
}

}  // namespace
}  // namespace cloudrepro::simnet
