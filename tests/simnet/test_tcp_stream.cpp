#include "simnet/tcp_stream.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace cloudrepro::simnet {
namespace {

PacketPathConfig stream_config(double duration_s = 3.0, double write = 9000.0) {
  PacketPathConfig cfg;
  cfg.duration_s = duration_s;
  cfg.write_bytes = write;
  return cfg;
}

TEST(TcpStreamTest, ReachesNearBottleneckRate) {
  stats::Rng rng{1};
  FixedRateQos qos{10.0};
  auto vnic = ec2_vnic();
  const auto r = run_tcp_stream(qos, vnic, TcpConfig{}, stream_config(), rng);
  EXPECT_GT(r.mean_goodput_gbps(), 7.0);
  EXPECT_LT(r.mean_goodput_gbps(), 10.0);
}

TEST(TcpStreamTest, SlowStartGrowsWindowExponentiallyAtFirst) {
  stats::Rng rng{2};
  FixedRateQos qos{10.0};
  auto vnic = ec2_vnic();
  TcpConfig tcp;
  tcp.initial_cwnd_segments = 2.0;
  PacketPathConfig cfg = stream_config(1.0);
  cfg.bandwidth_sample_interval_s = 0.02;
  const auto r = run_tcp_stream(qos, vnic, tcp, cfg, rng);
  ASSERT_GE(r.cwnd_segments.size(), 5u);
  // The window grows well past the initial value within the first samples.
  EXPECT_GT(r.cwnd_segments[4], 4.0 * tcp.initial_cwnd_segments);
}

TEST(TcpStreamTest, LossesTriggerMultiplicativeDecrease) {
  stats::Rng rng{3};
  FixedRateQos qos{8.0};
  auto vnic = gce_vnic();  // 64 KB TSO segments: visible loss rate.
  PacketPathConfig cfg = stream_config(3.0, 128.0 * 1024.0);
  const auto r = run_tcp_stream(qos, vnic, TcpConfig{}, cfg, rng);
  EXPECT_GT(r.retransmissions, 10u);
  // Sawtooth: the cwnd trace is not monotone.
  bool decreased = false;
  for (std::size_t i = 1; i < r.cwnd_segments.size(); ++i) {
    if (r.cwnd_segments[i] < r.cwnd_segments[i - 1]) decreased = true;
  }
  EXPECT_TRUE(decreased);
}

TEST(TcpStreamTest, HigherLossMeansLowerThroughput) {
  // Qualitative Mathis relation: goodput falls as loss rises, all else
  // equal. Identical vNICs (GCE TSO segments, ms-scale RTT) except that one
  // has the byte-pressure loss disabled.
  stats::Rng rng{4};
  auto lossy = gce_vnic();  // ~2% loss at TSO segments.
  auto clean = gce_vnic();
  clean.loss_pressure_coefficient = 0.0;

  FixedRateQos qos1{8.0};
  const auto r_clean = run_tcp_stream(qos1, clean, TcpConfig{},
                                      stream_config(3.0, 128.0 * 1024.0), rng);
  FixedRateQos qos2{8.0};
  const auto r_lossy = run_tcp_stream(qos2, lossy, TcpConfig{},
                                      stream_config(3.0, 128.0 * 1024.0), rng);
  EXPECT_GT(r_clean.mean_goodput_gbps(), 1.5 * r_lossy.mean_goodput_gbps());
}

TEST(TcpStreamTest, TokenBucketCollapseMidStream) {
  // The Figure 7 regime shift seen by a real congestion controller.
  stats::Rng rng{5};
  TokenBucketConfig tb;
  tb.capacity_gbit = 20.0;
  tb.initial_gbit = 20.0;
  tb.high_rate_gbps = 10.0;
  tb.low_rate_gbps = 1.0;
  tb.replenish_gbps = 1.0;
  TokenBucketQos qos{tb};
  auto vnic = ec2_vnic();
  PacketPathConfig cfg = stream_config(10.0);
  const auto r = run_tcp_stream(qos, vnic, TcpConfig{}, cfg, rng);
  ASSERT_GE(r.bandwidth_gbps.size(), 8u);
  EXPECT_GT(r.bandwidth_gbps.front(), 6.0);
  EXPECT_LT(r.bandwidth_gbps.back(), 1.5);
}

TEST(TcpStreamTest, ReceiveWindowCapsThroughput) {
  stats::Rng rng{6};
  FixedRateQos qos{10.0};
  auto vnic = ec2_vnic();
  TcpConfig tcp;
  // The BDP at 10 Gbps x 50 us is ~62 KB; a 16 KB receive window is ~BDP/4.
  tcp.receive_window_bytes = 16.0 * 1024.0;
  const auto r = run_tcp_stream(qos, vnic, tcp, stream_config(), rng);
  // Window-limited: goodput ≈ rwnd / RTT, far below the link rate.
  EXPECT_LT(r.mean_goodput_gbps(), 5.0);
}

TEST(TcpStreamTest, RttSamplesReflectBaseLatency) {
  stats::Rng rng{7};
  FixedRateQos qos{10.0};
  auto vnic = gce_vnic();
  const auto r = run_tcp_stream(qos, vnic, TcpConfig{}, stream_config(2.0, 9000.0), rng);
  std::vector<double> rtts;
  for (const auto& p : r.packets) {
    if (!p.retransmitted) rtts.push_back(p.rtt_s);
  }
  ASSERT_FALSE(rtts.empty());
  EXPECT_GT(stats::median(rtts), vnic.base_rtt_s);
  EXPECT_LT(stats::median(rtts), 50.0 * vnic.base_rtt_s);
}

TEST(TcpStreamTest, DeterministicGivenSeed) {
  const auto run = [] {
    stats::Rng rng{8};
    FixedRateQos qos{10.0};
    auto vnic = ec2_vnic();
    return run_tcp_stream(qos, vnic, TcpConfig{}, stream_config(1.0), rng);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.segments_sent, b.segments_sent);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_DOUBLE_EQ(a.delivered_gbit, b.delivered_gbit);
}

TEST(TcpStreamTest, Validation) {
  stats::Rng rng{9};
  FixedRateQos qos{10.0};
  auto vnic = ec2_vnic();
  PacketPathConfig cfg = stream_config();
  cfg.duration_s = 0.0;
  EXPECT_THROW(run_tcp_stream(qos, vnic, TcpConfig{}, cfg, rng), std::invalid_argument);
  TcpConfig bad;
  bad.initial_cwnd_segments = 0.5;
  EXPECT_THROW(run_tcp_stream(qos, vnic, bad, stream_config(), rng),
               std::invalid_argument);
}

// Throughput sweep: goodput grows with the bottleneck rate.
class TcpRateSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(TcpRateSweepTest, GoodputTracksBottleneck) {
  stats::Rng rng{10};
  FixedRateQos qos{GetParam()};
  auto vnic = ec2_vnic();
  const auto r = run_tcp_stream(qos, vnic, TcpConfig{}, stream_config(2.0), rng);
  EXPECT_GT(r.mean_goodput_gbps(), 0.6 * GetParam());
  EXPECT_LE(r.mean_goodput_gbps(), 1.02 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Rates, TcpRateSweepTest,
                         ::testing::Values(1.0, 2.0, 5.0, 10.0));

}  // namespace
}  // namespace cloudrepro::simnet
