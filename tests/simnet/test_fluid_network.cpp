#include "simnet/fluid_network.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "simnet/qos.h"
#include "simnet/units.h"

namespace cloudrepro::simnet {
namespace {

std::unique_ptr<QosPolicy> fixed(double gbps) {
  return std::make_unique<FixedRateQos>(gbps);
}

TEST(FluidNetworkTest, SingleFlowRunsAtLinkRate) {
  FluidNetwork net;
  const auto a = net.add_node(fixed(10.0));
  const auto b = net.add_node(fixed(10.0));
  const auto f = net.start_flow(a, b, 100.0);
  EXPECT_TRUE(net.run_until_flows_complete(1000.0));
  EXPECT_NEAR(net.now(), 10.0, 1e-6);
  EXPECT_NEAR(net.flow(f).transferred_gbit, 100.0, 1e-6);
  EXPECT_FALSE(net.flow(f).active);
  EXPECT_NEAR(net.flow(f).end_time, 10.0, 1e-6);
}

TEST(FluidNetworkTest, TwoFlowsShareEgressFairly) {
  FluidNetwork net;
  const auto a = net.add_node(fixed(10.0));
  const auto b = net.add_node(fixed(10.0));
  const auto c = net.add_node(fixed(10.0));
  const auto f1 = net.start_flow(a, b, 50.0);
  const auto f2 = net.start_flow(a, c, 50.0);
  EXPECT_TRUE(net.run_until_flows_complete(1000.0));
  // Both flows get 5 Gbps: finish together at t = 10.
  EXPECT_NEAR(net.flow(f1).end_time, 10.0, 1e-6);
  EXPECT_NEAR(net.flow(f2).end_time, 10.0, 1e-6);
}

TEST(FluidNetworkTest, IngressCapConstrains) {
  FluidNetwork net;
  const auto a = net.add_node(fixed(10.0));
  const auto b = net.add_node(fixed(10.0));
  const auto dst = net.add_node(fixed(10.0), /*ingress=*/5.0);
  net.start_flow(a, dst, 25.0);
  net.start_flow(b, dst, 25.0);
  EXPECT_TRUE(net.run_until_flows_complete(1000.0));
  // Combined ingress 5 Gbps -> 50 Gbit take 10 s.
  EXPECT_NEAR(net.now(), 10.0, 1e-6);
}

TEST(FluidNetworkTest, MaxMinSharingGivesBottleneckedFlowItsShare) {
  // Flow 1: a->b contends at a with flow 2: a->c; c's ingress is tiny, so
  // flow 2 is bottlenecked at 1 Gbps and flow 1 should get the rest (9).
  FluidNetwork net;
  const auto a = net.add_node(fixed(10.0));
  const auto b = net.add_node(fixed(10.0));
  const auto c = net.add_node(fixed(10.0), /*ingress=*/1.0);
  const auto f1 = net.start_flow(a, b, 90.0);
  const auto f2 = net.start_flow(a, c, 10.0);
  EXPECT_TRUE(net.run_until_flows_complete(1000.0));
  EXPECT_NEAR(net.flow(f1).end_time, 10.0, 1e-5);
  EXPECT_NEAR(net.flow(f2).end_time, 10.0, 1e-5);
}

TEST(FluidNetworkTest, AllToAllCompletesAtExpectedTime) {
  // 12 nodes, each sends 70 Gbit split over 11 peers, egress/ingress 10:
  // aggregate per-node rate 10 -> 7 s.
  FluidNetwork net;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 12; ++i) nodes.push_back(net.add_node(fixed(10.0), 10.0));
  for (const auto s : nodes) {
    for (const auto d : nodes) {
      if (s != d) net.start_flow(s, d, 70.0 / 11.0);
    }
  }
  EXPECT_TRUE(net.run_until_flows_complete(100.0));
  EXPECT_NEAR(net.now(), 7.0, 1e-5);
}

TEST(FluidNetworkTest, TokenBucketThrottlesMidFlow) {
  TokenBucketConfig cfg;
  cfg.capacity_gbit = 90.0;
  cfg.initial_gbit = 90.0;
  cfg.high_rate_gbps = 10.0;
  cfg.low_rate_gbps = 1.0;
  cfg.replenish_gbps = 1.0;

  FluidNetwork net;
  const auto a = net.add_node(std::make_unique<TokenBucketQos>(cfg));
  const auto b = net.add_node(fixed(100.0));
  const auto f = net.start_flow(a, b, 150.0);
  EXPECT_TRUE(net.run_until_flows_complete(10000.0));
  // Deplete 90 Gbit budget at net 9 -> 10 s (100 Gbit sent), then
  // 50 Gbit at 1 Gbps -> 50 s. Total 60 s.
  EXPECT_NEAR(net.flow(f).end_time, 60.0, 0.1);
}

TEST(FluidNetworkTest, StopFlowFreezesTransfer) {
  FluidNetwork net;
  const auto a = net.add_node(fixed(10.0));
  const auto b = net.add_node(fixed(10.0));
  const auto f = net.start_flow(a, b);  // Unbounded.
  net.run_for(5.0);
  net.stop_flow(f);
  const double at_stop = net.flow(f).transferred_gbit;
  EXPECT_NEAR(at_stop, 50.0, 1e-6);
  net.run_for(5.0);
  EXPECT_DOUBLE_EQ(net.flow(f).transferred_gbit, at_stop);
  EXPECT_FALSE(net.flow(f).active);
  EXPECT_NEAR(net.flow(f).end_time, 5.0, 1e-9);
}

TEST(FluidNetworkTest, StopIsIdempotent) {
  FluidNetwork net;
  const auto a = net.add_node(fixed(10.0));
  const auto b = net.add_node(fixed(10.0));
  const auto f = net.start_flow(a, b);
  net.run_for(1.0);
  net.stop_flow(f);
  const double end = net.flow(f).end_time;
  net.run_for(1.0);
  net.stop_flow(f);
  EXPECT_DOUBLE_EQ(net.flow(f).end_time, end);
}

TEST(FluidNetworkTest, ObserverSeesEveryStep) {
  FluidNetwork net;
  const auto a = net.add_node(fixed(10.0));
  const auto b = net.add_node(fixed(10.0));
  double observed_gbit = 0.0;
  net.set_step_observer([&](const FluidNetwork& n, double, double dt) {
    observed_gbit += n.node_egress_rate(a) * dt;
  });
  net.start_flow(a, b, 30.0);
  EXPECT_TRUE(net.run_until_flows_complete(100.0));
  EXPECT_NEAR(observed_gbit, 30.0, 1e-6);
  (void)b;
}

TEST(FluidNetworkTest, NodeRatesReflectAllocation) {
  FluidNetwork net;
  const auto a = net.add_node(fixed(10.0));
  const auto b = net.add_node(fixed(10.0));
  net.start_flow(a, b);
  net.run_for(1.0);
  EXPECT_NEAR(net.node_egress_rate(a), 10.0, 1e-9);
  EXPECT_NEAR(net.node_ingress_rate(b), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(net.node_egress_rate(b), 0.0);
}

TEST(FluidNetworkTest, DeadlineExceededReturnsFalse) {
  FluidNetwork net;
  const auto a = net.add_node(fixed(1.0));
  const auto b = net.add_node(fixed(1.0));
  net.start_flow(a, b, 1000.0);
  EXPECT_FALSE(net.run_until_flows_complete(10.0));
  EXPECT_NEAR(net.now(), 10.0, 1e-6);
}

TEST(FluidNetworkTest, ArgumentValidation) {
  FluidNetwork net;
  const auto a = net.add_node(fixed(10.0));
  EXPECT_THROW(net.add_node(nullptr), std::invalid_argument);
  EXPECT_THROW(net.add_node(fixed(1.0), 0.0), std::invalid_argument);
  EXPECT_THROW(net.start_flow(a, a, 10.0), std::invalid_argument);
  EXPECT_THROW(net.start_flow(a, 99, 10.0), std::out_of_range);
  const auto b = net.add_node(fixed(10.0));
  EXPECT_THROW(net.start_flow(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(net.start_flow(a, b, -1.0), std::invalid_argument);
}

TEST(FluidNetworkTest, ActiveFlowCount) {
  FluidNetwork net;
  const auto a = net.add_node(fixed(10.0));
  const auto b = net.add_node(fixed(10.0));
  EXPECT_EQ(net.active_flow_count(), 0u);
  const auto f1 = net.start_flow(a, b, 10.0);
  net.start_flow(a, b);
  EXPECT_EQ(net.active_flow_count(), 2u);
  net.run_until_flows_complete(100.0);
  EXPECT_EQ(net.active_flow_count(), 1u);
  EXPECT_FALSE(net.flow(f1).active);
}

// ---- Conservation property: total transferred equals integral of rates,
// under several topologies with shapers.
class FlowConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowConservationTest, TransferredMatchesRateIntegral) {
  const int n_nodes = GetParam();
  FluidNetwork net;
  std::vector<NodeId> nodes;
  for (int i = 0; i < n_nodes; ++i) {
    TokenBucketConfig cfg;
    cfg.capacity_gbit = 40.0 + 10.0 * i;
    cfg.initial_gbit = cfg.capacity_gbit;
    cfg.high_rate_gbps = 10.0;
    cfg.low_rate_gbps = 1.0;
    cfg.replenish_gbps = 1.0;
    nodes.push_back(net.add_node(std::make_unique<TokenBucketQos>(cfg), 10.0));
  }
  double integral = 0.0;
  net.set_step_observer([&](const FluidNetwork& nn, double, double dt) {
    for (std::size_t i = 0; i < nn.node_count(); ++i) {
      integral += nn.node_egress_rate(i) * dt;
    }
  });
  for (const auto s : nodes) {
    for (const auto d : nodes) {
      if (s != d) net.start_flow(s, d, 8.0);
    }
  }
  ASSERT_TRUE(net.run_until_flows_complete(10000.0));
  double transferred = 0.0;
  for (std::size_t f = 0; f < net.flow_count(); ++f) {
    transferred += net.flow(f).transferred_gbit;
  }
  EXPECT_NEAR(transferred, integral, 1e-5);
  EXPECT_NEAR(transferred, 8.0 * n_nodes * (n_nodes - 1), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, FlowConservationTest,
                         ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace cloudrepro::simnet
