#include "simnet/token_bucket.h"

#include <gtest/gtest.h>

#include <cmath>

#include "simnet/units.h"

namespace cloudrepro::simnet {
namespace {

TokenBucketConfig c5_xlarge_like() {
  TokenBucketConfig cfg;
  cfg.capacity_gbit = 5400.0;
  cfg.initial_gbit = 5400.0;
  cfg.high_rate_gbps = 10.0;
  cfg.low_rate_gbps = 1.0;
  cfg.replenish_gbps = 1.0;
  cfg.recover_threshold_gbit = 5.0;
  return cfg;
}

TEST(TokenBucketTest, StartsAtHighRateWithFullBudget) {
  TokenBucket tb{c5_xlarge_like()};
  EXPECT_DOUBLE_EQ(tb.allowed_rate(), 10.0);
  EXPECT_DOUBLE_EQ(tb.budget(), 5400.0);
  EXPECT_FALSE(tb.in_low_mode());
}

TEST(TokenBucketTest, DrainsAtNetRate) {
  TokenBucket tb{c5_xlarge_like()};
  tb.advance(100.0, 10.0);  // Net drain 9 Gbit/s.
  EXPECT_NEAR(tb.budget(), 5400.0 - 900.0, 1e-9);
}

TEST(TokenBucketTest, TimeToEmptyMatchesPaperScale) {
  // c5.xlarge: ~10 minutes of full-speed transfer empties the bucket.
  TokenBucket tb{c5_xlarge_like()};
  const double tte = tb.time_until_change(10.0);
  EXPECT_NEAR(tte, 600.0, 1e-9);
}

TEST(TokenBucketTest, DepletionDropsToLowRate) {
  TokenBucket tb{c5_xlarge_like()};
  tb.advance(600.0, 10.0);
  EXPECT_TRUE(tb.in_low_mode());
  EXPECT_DOUBLE_EQ(tb.allowed_rate(), 1.0);
  EXPECT_DOUBLE_EQ(tb.budget(), 0.0);
}

TEST(TokenBucketTest, CappedRateSendingKeepsBucketEmpty) {
  // The paper: "once the token bucket empties, transmission at the capped
  // rate is sufficient to keep it from filling back up".
  TokenBucket tb{c5_xlarge_like()};
  tb.advance(600.0, 10.0);
  ASSERT_TRUE(tb.in_low_mode());
  tb.advance(1000.0, 1.0);  // Send at the low rate == replenish rate.
  EXPECT_TRUE(tb.in_low_mode());
  EXPECT_DOUBLE_EQ(tb.budget(), 0.0);
}

TEST(TokenBucketTest, RestingRefills) {
  TokenBucket tb{c5_xlarge_like()};
  tb.advance(600.0, 10.0);
  ASSERT_TRUE(tb.in_low_mode());
  tb.advance(30.0, 0.0);  // Rest 30 s -> +30 Gbit.
  EXPECT_NEAR(tb.budget(), 30.0, 1e-9);
  EXPECT_FALSE(tb.in_low_mode());  // Past the 5-Gbit recovery threshold.
  EXPECT_DOUBLE_EQ(tb.allowed_rate(), 10.0);
}

TEST(TokenBucketTest, HysteresisPreventsInstantFlapping) {
  auto cfg = c5_xlarge_like();
  cfg.recover_threshold_gbit = 5.0;
  TokenBucket tb{cfg};
  tb.advance(600.0, 10.0);
  ASSERT_TRUE(tb.in_low_mode());
  tb.advance(2.0, 0.0);  // +2 Gbit < threshold: still low.
  EXPECT_TRUE(tb.in_low_mode());
  tb.advance(3.0, 0.0);  // Now at 5 Gbit: recovers.
  EXPECT_FALSE(tb.in_low_mode());
}

TEST(TokenBucketTest, TimeUntilRecoveryWhileResting) {
  TokenBucket tb{c5_xlarge_like()};
  tb.advance(600.0, 10.0);
  ASSERT_TRUE(tb.in_low_mode());
  EXPECT_NEAR(tb.time_until_change(0.0), 5.0, 1e-9);  // 5 Gbit at 1 Gbit/s.
}

TEST(TokenBucketTest, StableStatesReportInfiniteHorizon) {
  TokenBucket tb{c5_xlarge_like()};
  // Sending below replenish in high mode: budget grows (capped) -> stable.
  EXPECT_TRUE(std::isinf(tb.time_until_change(0.5)));
  tb.advance(600.0, 10.0);
  // Low mode, sending at replenish rate: stable.
  EXPECT_TRUE(std::isinf(tb.time_until_change(1.0)));
}

TEST(TokenBucketTest, BudgetNeverExceedsCapacity) {
  auto cfg = c5_xlarge_like();
  cfg.initial_gbit = 5000.0;
  TokenBucket tb{cfg};
  tb.advance(100000.0, 0.0);
  EXPECT_DOUBLE_EQ(tb.budget(), cfg.capacity_gbit);
}

TEST(TokenBucketTest, SendRateClampedToAllowed) {
  TokenBucket tb{c5_xlarge_like()};
  tb.advance(600.0, 10.0);
  ASSERT_TRUE(tb.in_low_mode());
  // Claiming to send at 10 in low mode is clamped to 1 == replenish.
  tb.advance(100.0, 10.0);
  EXPECT_DOUBLE_EQ(tb.budget(), 0.0);
}

TEST(TokenBucketTest, FullRefillTime) {
  TokenBucket tb{c5_xlarge_like()};
  tb.advance(600.0, 10.0);
  EXPECT_NEAR(tb.time_to_full_refill(), 5400.0, 1e-6);
}

TEST(TokenBucketTest, ResetRestoresInitialState) {
  TokenBucket tb{c5_xlarge_like()};
  tb.advance(600.0, 10.0);
  tb.reset();
  EXPECT_DOUBLE_EQ(tb.budget(), 5400.0);
  EXPECT_FALSE(tb.in_low_mode());
}

TEST(TokenBucketTest, SetBudgetModelsUsedVm) {
  TokenBucket tb{c5_xlarge_like()};
  tb.set_budget(100.0);
  EXPECT_DOUBLE_EQ(tb.budget(), 100.0);
  EXPECT_FALSE(tb.in_low_mode());
  tb.set_budget(0.0);
  EXPECT_TRUE(tb.in_low_mode());
}

TEST(TokenBucketTest, SetBudgetClampsToCapacity) {
  TokenBucket tb{c5_xlarge_like()};
  tb.set_budget(99999.0);
  EXPECT_DOUBLE_EQ(tb.budget(), 5400.0);
  tb.set_budget(-5.0);
  EXPECT_DOUBLE_EQ(tb.budget(), 0.0);
}

TEST(TokenBucketTest, ZeroInitialBudgetStartsLow) {
  auto cfg = c5_xlarge_like();
  cfg.initial_gbit = 0.0;
  TokenBucket tb{cfg};
  EXPECT_TRUE(tb.in_low_mode());
  EXPECT_DOUBLE_EQ(tb.allowed_rate(), 1.0);
}

TEST(TokenBucketTest, ConfigValidation) {
  auto cfg = c5_xlarge_like();
  cfg.initial_gbit = cfg.capacity_gbit + 1.0;
  EXPECT_THROW(TokenBucket{cfg}, std::invalid_argument);

  cfg = c5_xlarge_like();
  cfg.low_rate_gbps = 20.0;
  EXPECT_THROW(TokenBucket{cfg}, std::invalid_argument);

  cfg = c5_xlarge_like();
  cfg.high_rate_gbps = 0.0;
  EXPECT_THROW(TokenBucket{cfg}, std::invalid_argument);

  cfg = c5_xlarge_like();
  cfg.replenish_gbps = -1.0;
  EXPECT_THROW(TokenBucket{cfg}, std::invalid_argument);

  cfg = c5_xlarge_like();
  cfg.recover_threshold_gbit = cfg.capacity_gbit + 1.0;
  EXPECT_THROW(TokenBucket{cfg}, std::invalid_argument);

  cfg = c5_xlarge_like();
  cfg.capacity_gbit = -1.0;
  cfg.initial_gbit = -1.0;
  EXPECT_THROW(TokenBucket{cfg}, std::invalid_argument);
}

TEST(TokenBucketTest, AdvanceIgnoresNonPositiveDt) {
  TokenBucket tb{c5_xlarge_like()};
  tb.advance(0.0, 10.0);
  tb.advance(-5.0, 10.0);
  EXPECT_DOUBLE_EQ(tb.budget(), 5400.0);
}

// ---- Conservation property: over any drain/rest schedule, the budget
// change equals replenish*time - sent (within clamping).
class BucketConservationTest : public ::testing::TestWithParam<double> {};

TEST_P(BucketConservationTest, BudgetAccountingIsExact) {
  auto cfg = c5_xlarge_like();
  cfg.initial_gbit = 2000.0;
  TokenBucket tb{cfg};
  const double rate = GetParam();
  double sent = 0.0;
  double elapsed = 0.0;
  // Alternate short sends and rests; stay away from the clamp boundaries.
  for (int i = 0; i < 50; ++i) {
    const double r = std::min(rate, tb.allowed_rate());
    tb.advance(1.0, r);
    sent += r;
    elapsed += 1.0;
    tb.advance(0.5, 0.0);
    elapsed += 0.5;
  }
  const double expected = 2000.0 - sent + cfg.replenish_gbps * elapsed;
  if (expected >= 0.0 && expected <= cfg.capacity_gbit) {
    EXPECT_NEAR(tb.budget(), expected, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, BucketConservationTest,
                         ::testing::Values(2.0, 5.0, 8.0, 10.0));

TEST(TokenBucketTest, ReplenishAtOrAboveHighRateNeverDepletes) {
  // A bucket refilling as fast as (or faster than) the shaper can drain it
  // is effectively unshaped: no transmission pattern reaches low mode.
  auto cfg = c5_xlarge_like();
  cfg.initial_gbit = 1.0;  // Nearly empty, so depletion would be easy.
  cfg.replenish_gbps = cfg.high_rate_gbps;
  TokenBucket tb{cfg};
  for (int i = 0; i < 1000; ++i) {
    tb.advance(1.0, cfg.high_rate_gbps);
    ASSERT_FALSE(tb.in_low_mode()) << "at step " << i;
  }
  EXPECT_DOUBLE_EQ(tb.time_until_change(cfg.high_rate_gbps), kInfiniteTime);

  cfg.replenish_gbps = cfg.high_rate_gbps + 1.0;
  TokenBucket faster{cfg};
  faster.advance(100.0, cfg.high_rate_gbps);
  EXPECT_FALSE(faster.in_low_mode());
  EXPECT_DOUBLE_EQ(faster.budget(), 1.0 + 100.0);  // Net +1 Gbit/s.
}

TEST(TokenBucketTest, SubTickBurstsAccumulateExactly) {
  // Many tiny advances must drain exactly what one long advance does: the
  // bucket is a pure integrator with no per-call quantization.
  auto cfg = c5_xlarge_like();
  cfg.initial_gbit = 100.0;
  TokenBucket many{cfg};
  TokenBucket one{cfg};
  constexpr int kTicks = 100000;
  constexpr double kDt = 1e-4;
  for (int i = 0; i < kTicks; ++i) many.advance(kDt, 10.0);
  one.advance(kTicks * kDt, 10.0);
  EXPECT_NEAR(many.budget(), one.budget(), 1e-6);
  EXPECT_EQ(many.in_low_mode(), one.in_low_mode());
}

TEST(TokenBucketTest, SubTickBurstCrossingDepletionFlipsOnce) {
  auto cfg = c5_xlarge_like();
  cfg.initial_gbit = 0.01;  // Depletes within ~1.1ms at net 9 Gbit/s.
  TokenBucket tb{cfg};
  int transitions = 0;
  tb.set_transition_hook(
      [](void* ctx, bool to_low, double) {
        if (to_low) ++*static_cast<int*>(ctx);
      },
      &transitions);
  for (int i = 0; i < 100; ++i) tb.advance(1e-4, 10.0);
  EXPECT_TRUE(tb.in_low_mode());
#if CLOUDREPRO_OBS
  EXPECT_EQ(transitions, 1);
#endif
}

TEST(TokenBucketTest, TransitionHookFiresOnBothEdges) {
  auto cfg = c5_xlarge_like();
  cfg.initial_gbit = 9.0;
  TokenBucket tb{cfg};
  struct Log {
    int to_low = 0;
    int to_high = 0;
    double last_budget = -1.0;
  } log;
  tb.set_transition_hook(
      [](void* ctx, bool to_low, double budget) {
        auto* l = static_cast<Log*>(ctx);
        (to_low ? l->to_low : l->to_high) += 1;
        l->last_budget = budget;
      },
      &log);
  tb.advance(1.0, 10.0);  // 9 - 9 = 0: depleted.
  tb.advance(5.0, 0.0);   // Refill to 5 = recover threshold: recovered.
#if CLOUDREPRO_OBS
  EXPECT_EQ(log.to_low, 1);
  EXPECT_EQ(log.to_high, 1);
  EXPECT_DOUBLE_EQ(log.last_budget, 5.0);
#endif
  EXPECT_FALSE(tb.in_low_mode());
}

TEST(TokenBucketTest, CopiesNeverInheritTheTransitionHook) {
  // Buckets are cloned between the cluster and per-job networks; a copied
  // hook would dangle once the originating observer dies.
  auto cfg = c5_xlarge_like();
  cfg.initial_gbit = 9.0;
  TokenBucket original{cfg};
  int fired = 0;
  original.set_transition_hook(
      [](void* ctx, bool, double) { ++*static_cast<int*>(ctx); }, &fired);

  TokenBucket copy{original};
  copy.advance(1.0, 10.0);  // Depletes the copy.
  EXPECT_TRUE(copy.in_low_mode());
  EXPECT_EQ(fired, 0);  // Only the original's transitions may fire the hook.

  TokenBucket assigned{c5_xlarge_like()};
  assigned = original;
  assigned.advance(1.0, 10.0);
  EXPECT_TRUE(assigned.in_low_mode());
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace cloudrepro::simnet
