// Property suite: the fluid allocator produces *feasible, max-min fair*
// allocations on randomized topologies. The max-min certificate: every flow
// crosses at least one saturated constraint where it receives at least as
// much as every other flow crossing that constraint.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "simnet/fluid_network.h"
#include "simnet/qos.h"
#include "stats/rng.h"

namespace cloudrepro::simnet {
namespace {

struct Topology {
  FluidNetwork net;
  std::vector<NodeId> nodes;
  std::vector<FlowId> flows;
  std::vector<double> egress_caps;
  std::vector<double> ingress_caps;
};

Topology random_topology(std::uint64_t seed) {
  stats::Rng rng{seed};
  Topology t;
  const int n_nodes = static_cast<int>(rng.uniform_int(3, 8));
  for (int i = 0; i < n_nodes; ++i) {
    const double egress = rng.uniform(1.0, 20.0);
    const double ingress = rng.uniform(1.0, 20.0);
    t.egress_caps.push_back(egress);
    t.ingress_caps.push_back(ingress);
    t.nodes.push_back(t.net.add_node(std::make_unique<FixedRateQos>(egress), ingress));
  }
  const int n_flows = static_cast<int>(rng.uniform_int(2, 24));
  for (int f = 0; f < n_flows; ++f) {
    const auto src = static_cast<std::size_t>(rng.uniform_int(0, n_nodes - 1));
    auto dst = static_cast<std::size_t>(rng.uniform_int(0, n_nodes - 1));
    if (dst == src) dst = (dst + 1) % static_cast<std::size_t>(n_nodes);
    t.flows.push_back(t.net.start_flow(src, dst));  // Unbounded.
  }
  return t;
}

class MaxMinFairnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinFairnessTest, AllocationIsFeasibleAndMaxMinFair) {
  auto t = random_topology(GetParam());
  // One infinitesimal step computes the allocation.
  t.net.run_for(1e-6);

  constexpr double kEps = 1e-6;
  const std::size_t n_nodes = t.nodes.size();

  // Feasibility: per-node egress/ingress sums within caps.
  std::vector<double> egress_used(n_nodes, 0.0), ingress_used(n_nodes, 0.0);
  for (const auto fid : t.flows) {
    const auto& f = t.net.flow(fid);
    ASSERT_GE(f.rate_gbps, 0.0);
    egress_used[f.src] += f.rate_gbps;
    ingress_used[f.dst] += f.rate_gbps;
  }
  for (std::size_t i = 0; i < n_nodes; ++i) {
    EXPECT_LE(egress_used[i], t.egress_caps[i] + kEps) << "egress node " << i;
    EXPECT_LE(ingress_used[i], t.ingress_caps[i] + kEps) << "ingress node " << i;
  }

  // Max-min certificate: every flow crosses a saturated constraint on which
  // it is a maximal-rate flow.
  for (const auto fid : t.flows) {
    const auto& f = t.net.flow(fid);

    const auto certificate_at = [&](bool egress_side) {
      const std::size_t node = egress_side ? f.src : f.dst;
      const double used = egress_side ? egress_used[node] : ingress_used[node];
      const double cap = egress_side ? t.egress_caps[node] : t.ingress_caps[node];
      if (used < cap - 1e-4) return false;  // Not saturated.
      for (const auto other_id : t.flows) {
        const auto& other = t.net.flow(other_id);
        const bool crosses = egress_side ? other.src == node : other.dst == node;
        if (crosses && other.rate_gbps > f.rate_gbps + 1e-4) return false;
      }
      return true;
    };

    EXPECT_TRUE(certificate_at(true) || certificate_at(false))
        << "flow " << fid << " (rate " << f.rate_gbps
        << ") has no saturated bottleneck where it is maximal";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, MaxMinFairnessTest,
                         ::testing::Range<std::uint64_t>(1, 25));

// Allocation is invariant to flow insertion order.
class OrderInvarianceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderInvarianceTest, PermutedInsertionSameRates) {
  stats::Rng rng{GetParam()};
  const int n_nodes = 5;
  struct Spec {
    std::size_t src, dst;
  };
  std::vector<Spec> specs;
  for (int f = 0; f < 10; ++f) {
    const auto src = static_cast<std::size_t>(rng.uniform_int(0, n_nodes - 1));
    auto dst = static_cast<std::size_t>(rng.uniform_int(0, n_nodes - 1));
    if (dst == src) dst = (dst + 1) % n_nodes;
    specs.push_back({src, dst});
  }

  const auto build = [&](const std::vector<std::size_t>& order) {
    auto net = std::make_unique<FluidNetwork>();
    for (int i = 0; i < n_nodes; ++i) {
      net->add_node(std::make_unique<FixedRateQos>(5.0 + i), 4.0 + i);
    }
    std::vector<FlowId> ids(specs.size());
    for (const auto idx : order) {
      ids[idx] = net->start_flow(specs[idx].src, specs[idx].dst);
    }
    net->run_for(1e-6);
    std::vector<double> rates;
    for (const auto id : ids) rates.push_back(net->flow(id).rate_gbps);
    return rates;
  };

  std::vector<std::size_t> identity(specs.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  const auto base = build(identity);
  const auto permuted = build(rng.permutation(specs.size()));
  ASSERT_EQ(base.size(), permuted.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(base[i], permuted[i], 1e-9) << "flow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderInvarianceTest,
                         ::testing::Range<std::uint64_t>(100, 110));

}  // namespace
}  // namespace cloudrepro::simnet
