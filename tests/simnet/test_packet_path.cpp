#include "simnet/packet_path.h"

#include <gtest/gtest.h>

#include "simnet/qos.h"
#include "stats/descriptive.h"

namespace cloudrepro::simnet {
namespace {

TEST(VnicConfigTest, Ec2SegmentsAtJumboMtu) {
  const auto v = ec2_vnic();
  EXPECT_DOUBLE_EQ(v.segment_bytes(128.0 * 1024.0), 9000.0);
  EXPECT_DOUBLE_EQ(v.segment_bytes(4096.0), 4096.0);
}

TEST(VnicConfigTest, GceTsoAllowsLargeSegments) {
  const auto v = gce_vnic();
  // "On GCE, TSO can result in a single packet at the virtual NIC being as
  // large as 64K".
  EXPECT_DOUBLE_EQ(v.segment_bytes(128.0 * 1024.0), 65536.0);
  EXPECT_DOUBLE_EQ(v.segment_bytes(9000.0), 9000.0);
}

TEST(VnicConfigTest, GceNineKWritesNearZeroLoss) {
  // "When we limited our benchmarks to writes of 9K, we got near-zero packet
  // retransmission."
  const auto v = gce_vnic();
  EXPECT_LT(v.loss_probability(v.segment_bytes(9000.0)), 1e-4);
}

TEST(VnicConfigTest, GceTsoSegmentsLoseAroundTwoPercent) {
  // Figure 9 / Section 3.3: ~2% retransmissions with the default 128K writes.
  const auto v = gce_vnic();
  const double p = v.loss_probability(v.segment_bytes(128.0 * 1024.0));
  EXPECT_GT(p, 0.005);
  EXPECT_LT(p, 0.05);
}

TEST(VnicConfigTest, Ec2LossNegligibleAtAnyWriteSize) {
  const auto v = ec2_vnic();
  for (double w : {1024.0, 9000.0, 65536.0, 262144.0}) {
    EXPECT_LT(v.loss_probability(v.segment_bytes(w)), 1e-4) << w;
  }
}

TEST(PacketStreamTest, Ec2BaseLatencySubMillisecond) {
  auto vnic = ec2_vnic();
  FixedRateQos qos{10.0};
  PacketPathConfig cfg;
  cfg.duration_s = 1.0;
  stats::Rng rng{1};
  const auto trace = run_packet_stream(qos, vnic, cfg, rng);
  const auto rtts = trace.rtts();
  ASSERT_FALSE(rtts.empty());
  EXPECT_LT(stats::median(rtts), 1e-3);  // Sub-millisecond.
}

TEST(PacketStreamTest, GceBaseLatencyMillisecondScale) {
  auto vnic = gce_vnic();
  FixedRateQos qos{8.0};
  PacketPathConfig cfg;
  cfg.duration_s = 1.0;
  cfg.write_bytes = 9000.0;
  stats::Rng rng{2};
  const auto trace = run_packet_stream(qos, vnic, cfg, rng);
  const double med = stats::median(trace.rtts());
  EXPECT_GT(med, 1e-3);
  EXPECT_LT(med, 10e-3);
}

TEST(PacketStreamTest, ThrottledEc2LatencyTwoOrdersWorse) {
  // Figure 7: when the traffic shaping takes effect, "latency increases by
  // two orders of magnitude".
  auto vnic = ec2_vnic();
  PacketPathConfig cfg;
  cfg.duration_s = 1.0;
  stats::Rng rng{3};

  FixedRateQos fast{10.0};
  const double fast_median = stats::median(run_packet_stream(fast, vnic, cfg, rng).rtts());

  FixedRateQos throttled{1.0};
  const double slow_median =
      stats::median(run_packet_stream(throttled, vnic, cfg, rng).rtts());

  EXPECT_GT(slow_median, 8.0 * fast_median);
  EXPECT_GT(slow_median, 1e-3);  // Milliseconds once throttled.
}

TEST(PacketStreamTest, TokenBucketThrottlesMidStream) {
  auto vnic = ec2_vnic();
  TokenBucketConfig bucket;
  bucket.capacity_gbit = 20.0;
  bucket.initial_gbit = 20.0;
  bucket.high_rate_gbps = 10.0;
  bucket.low_rate_gbps = 1.0;
  bucket.replenish_gbps = 1.0;
  TokenBucketQos qos{bucket};
  PacketPathConfig cfg;
  cfg.duration_s = 10.0;
  cfg.bandwidth_sample_interval_s = 1.0;
  stats::Rng rng{4};
  const auto trace = run_packet_stream(qos, vnic, cfg, rng);
  ASSERT_GE(trace.bandwidth_gbps.size(), 5u);
  // First second at ~10 Gbps; throttles to ~1 Gbps after ~2.2 s.
  EXPECT_GT(trace.bandwidth_gbps.front(), 7.0);
  EXPECT_LT(trace.bandwidth_gbps.back(), 1.6);
}

TEST(PacketStreamTest, GceLargeWritesCauseMassRetransmissions) {
  auto vnic = gce_vnic();
  FixedRateQos qos{8.0};
  PacketPathConfig cfg;
  cfg.duration_s = 3.0;
  cfg.write_bytes = 128.0 * 1024.0;
  stats::Rng rng{5};
  const auto trace = run_packet_stream(qos, vnic, cfg, rng);
  EXPECT_GT(trace.retransmission_rate(), 0.005);
  EXPECT_GT(trace.retransmissions, 100u);
}

TEST(PacketStreamTest, SmallWritesCannotFillTheLink) {
  // Figure 12's bandwidth curve: tiny writes pay per-segment overhead.
  auto vnic = ec2_vnic();
  PacketPathConfig cfg;
  cfg.duration_s = 1.0;
  stats::Rng rng{6};

  FixedRateQos qos1{10.0};
  cfg.write_bytes = 1024.0;
  const double bw_small =
      stats::mean(run_packet_stream(qos1, vnic, cfg, rng).bandwidth_gbps);

  FixedRateQos qos2{10.0};
  cfg.write_bytes = 9000.0;
  const double bw_large =
      stats::mean(run_packet_stream(qos2, vnic, cfg, rng).bandwidth_gbps);

  EXPECT_LT(bw_small, 0.85 * bw_large);
}

TEST(PacketStreamTest, RetransmittedPacketsHaveInflatedRtt) {
  auto vnic = gce_vnic();
  FixedRateQos qos{8.0};
  PacketPathConfig cfg;
  cfg.duration_s = 3.0;
  cfg.write_bytes = 128.0 * 1024.0;
  stats::Rng rng{7};
  const auto trace = run_packet_stream(qos, vnic, cfg, rng);

  std::vector<double> normal_rtts, retrans_rtts;
  for (const auto& p : trace.packets) {
    (p.retransmitted ? retrans_rtts : normal_rtts).push_back(p.rtt_s);
  }
  ASSERT_FALSE(retrans_rtts.empty());
  ASSERT_FALSE(normal_rtts.empty());
  EXPECT_GT(stats::median(retrans_rtts), 5.0 * stats::median(normal_rtts));
}

TEST(PacketStreamTest, ThinningBoundsRecordedPackets) {
  auto vnic = ec2_vnic();
  FixedRateQos qos{10.0};
  PacketPathConfig cfg;
  cfg.duration_s = 2.0;
  cfg.write_bytes = 9000.0;
  cfg.max_recorded_packets = 1000;
  stats::Rng rng{8};
  const auto trace = run_packet_stream(qos, vnic, cfg, rng);
  EXPECT_LE(trace.packets.size(), 1300u);  // Thinned (some slack for rounding).
  EXPECT_GT(trace.segments_sent, trace.packets.size());
}

TEST(PacketStreamTest, SendTimesAreMonotone) {
  auto vnic = ec2_vnic();
  FixedRateQos qos{10.0};
  PacketPathConfig cfg;
  cfg.duration_s = 0.5;
  stats::Rng rng{9};
  const auto trace = run_packet_stream(qos, vnic, cfg, rng);
  for (std::size_t i = 1; i < trace.packets.size(); ++i) {
    EXPECT_GE(trace.packets[i].send_time_s, trace.packets[i - 1].send_time_s);
  }
}

TEST(PacketStreamTest, Validation) {
  auto vnic = ec2_vnic();
  FixedRateQos qos{10.0};
  PacketPathConfig cfg;
  stats::Rng rng{10};
  cfg.write_bytes = 0.0;
  EXPECT_THROW(run_packet_stream(qos, vnic, cfg, rng), std::invalid_argument);
  cfg.write_bytes = 1024.0;
  cfg.duration_s = 0.0;
  EXPECT_THROW(run_packet_stream(qos, vnic, cfg, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cloudrepro::simnet
