#include "bigdata/cluster.h"

#include <gtest/gtest.h>

#include "cloud/tc_emulator.h"
#include "simnet/qos.h"

namespace cloudrepro::bigdata {
namespace {

simnet::TokenBucketConfig small_bucket() {
  simnet::TokenBucketConfig cfg;
  cfg.capacity_gbit = 100.0;
  cfg.initial_gbit = 100.0;
  cfg.high_rate_gbps = 10.0;
  cfg.low_rate_gbps = 1.0;
  cfg.replenish_gbps = 1.0;
  return cfg;
}

TEST(ClusterTest, UniformClusterClonesPrototype) {
  simnet::TokenBucketQos proto{small_bucket()};
  auto cluster = Cluster::uniform(4, 16, proto, 10.0);
  EXPECT_EQ(cluster.node_count(), 4u);
  EXPECT_EQ(cluster.cores_per_node(), 16);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(*cluster.token_budget(i), 100.0);
    EXPECT_DOUBLE_EQ(cluster.node(i).line_rate_gbps, 10.0);
  }
}

TEST(ClusterTest, FromCloudDrawsDistinctIncarnations) {
  stats::Rng rng{1};
  auto cluster = Cluster::from_cloud(6, 16, cloud::ec2_c5_xlarge(), rng);
  EXPECT_EQ(cluster.node_count(), 6u);
  // Incarnation scatter: not all budgets identical.
  bool any_different = false;
  for (std::size_t i = 1; i < 6; ++i) {
    if (*cluster.token_budget(i) != *cluster.token_budget(0)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(ClusterTest, SetTokenBudgetsAppliesToAllNodes) {
  simnet::TokenBucketQos proto{small_bucket()};
  auto cluster = Cluster::uniform(3, 8, proto, 10.0);
  cluster.set_token_budgets(25.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(*cluster.token_budget(i), 25.0);
  }
}

TEST(ClusterTest, SetTokenBudgetsWorksOnTcEmulator) {
  cloud::TcEmulatorConfig cfg;
  cfg.bucket = small_bucket();
  cloud::TcEmulator proto{cfg};
  auto cluster = Cluster::uniform(2, 8, proto, 10.0);
  cluster.set_token_budgets(7.0);
  EXPECT_DOUBLE_EQ(*cluster.token_budget(0), 7.0);
}

TEST(ClusterTest, SetTokenBudgetsNoopOnUnshapedNodes) {
  simnet::FixedRateQos proto{10.0};
  auto cluster = Cluster::uniform(2, 8, proto, 10.0);
  cluster.set_token_budgets(7.0);
  EXPECT_FALSE(cluster.token_budget(0).has_value());
}

TEST(ClusterTest, ResetRestoresFreshState) {
  simnet::TokenBucketQos proto{small_bucket()};
  auto cluster = Cluster::uniform(2, 8, proto, 10.0);
  cluster.node(0).egress->advance(20.0, 10.0);
  ASSERT_LT(*cluster.token_budget(0), 100.0);
  cluster.reset_network();
  EXPECT_DOUBLE_EQ(*cluster.token_budget(0), 100.0);
}

TEST(ClusterTest, RestReplenishesBuckets) {
  simnet::TokenBucketQos proto{small_bucket()};
  auto cluster = Cluster::uniform(2, 8, proto, 10.0);
  cluster.set_token_budgets(0.0);
  cluster.rest(30.0);
  EXPECT_NEAR(*cluster.token_budget(0), 30.0, 1e-9);
  cluster.rest(0.0);  // No-op.
  EXPECT_NEAR(*cluster.token_budget(0), 30.0, 1e-9);
}

TEST(ClusterTest, Validation) {
  simnet::FixedRateQos proto{10.0};
  EXPECT_THROW(Cluster::uniform(1, 8, proto, 10.0), std::invalid_argument);
  EXPECT_THROW(Cluster::uniform(2, 0, proto, 10.0), std::invalid_argument);
  stats::Rng rng{2};
  EXPECT_THROW(Cluster::from_cloud(1, 8, cloud::gce_8core(), rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace cloudrepro::bigdata
