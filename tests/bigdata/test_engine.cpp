#include "bigdata/engine.h"

#include <gtest/gtest.h>

#include "cloud/instances.h"
#include "simnet/qos.h"
#include "stats/descriptive.h"

namespace cloudrepro::bigdata {
namespace {

simnet::TokenBucketConfig c5_bucket() {
  return *cloud::ec2_c5_xlarge().nominal_bucket();
}

Cluster twelve_nodes(double budget = -1.0) {
  simnet::TokenBucketQos proto{c5_bucket()};
  auto cluster = Cluster::uniform(12, 16, proto, 10.0);
  if (budget >= 0.0) cluster.set_token_budgets(budget);
  return cluster;
}

TEST(EngineTest, RuntimeIsPositiveAndBoundedByComputePlusTransfer) {
  stats::Rng rng{1};
  auto cluster = twelve_nodes();
  SparkEngine engine;
  const auto& q = tpcds_query(82);
  const auto r = engine.run(q, cluster, rng);
  const double compute = q.nominal_compute_s(16);
  EXPECT_GT(r.runtime_s, compute * 0.9);
  EXPECT_LT(r.runtime_s, compute * 2.0);  // Q82 is compute-bound.
  EXPECT_EQ(r.workload, "Q82");
}

TEST(EngineTest, PerNodeSentMatchesProfile) {
  stats::Rng rng{2};
  auto cluster = twelve_nodes();
  SparkEngine engine;
  const auto& q = tpcds_query(65);
  const auto r = engine.run(q, cluster, rng);
  const double expected = q.total_shuffle_gbit_per_node();
  ASSERT_EQ(r.per_node_sent_gbit.size(), 12u);
  for (const double sent : r.per_node_sent_gbit) {
    EXPECT_NEAR(sent, expected, 1e-9);  // No skew by default.
  }
}

TEST(EngineTest, EmptyBudgetSlowsNetworkHeavyQuery) {
  stats::Rng rng{3};
  SparkEngine engine;

  auto fresh = twelve_nodes(5000.0);
  const double fast = engine.run(tpcds_query(65), fresh, rng).runtime_s;

  auto drained = twelve_nodes(10.0);
  const double slow = engine.run(tpcds_query(65), drained, rng).runtime_s;

  // Without partition skew Q65 roughly doubles; the Figure 17 bench adds
  // the paper's scheduling imbalance and reaches 3-5x.
  EXPECT_GT(slow, 1.8 * fast);
}

TEST(EngineTest, EmptyBudgetLeavesComputeBoundQueryAlone) {
  stats::Rng rng{4};
  SparkEngine engine;
  auto fresh = twelve_nodes(5000.0);
  const double fast = engine.run(tpcds_query(82), fresh, rng).runtime_s;
  auto drained = twelve_nodes(10.0);
  const double slow = engine.run(tpcds_query(82), drained, rng).runtime_s;
  EXPECT_LT(slow, 1.15 * fast);  // Q82 is budget-agnostic (Figure 19).
}

TEST(EngineTest, HiBenchNetworkHeavyAppsLose25To50Percent) {
  // F4.2 / Figure 16: "the initial state of the budget can have a 25%-50%
  // impact on performance" for TS and WC.
  stats::Rng rng{5};
  SparkEngine engine;
  for (const char* name : {"TS", "WC"}) {
    const auto& w = *[&] {
      for (const auto& p : hibench_suite()) {
        if (p.name == name) return &p;
      }
      return static_cast<const WorkloadProfile*>(nullptr);
    }();
    auto fresh = twelve_nodes(5000.0);
    const double fast = engine.run(w, fresh, rng).runtime_s;
    auto drained = twelve_nodes(10.0);
    const double slow = engine.run(w, drained, rng).runtime_s;
    const double impact = slow / fast - 1.0;
    EXPECT_GT(impact, 0.15) << name;
    EXPECT_LT(impact, 0.70) << name;
  }
}

TEST(EngineTest, StateCarriesAcrossConsecutiveRuns) {
  // F4.2: "an application influences not only its own runtime, but also
  // future applications' runtimes".
  stats::Rng rng{6};
  SparkEngine engine;
  auto cluster = twelve_nodes(250.0);
  const double first = engine.run(tpcds_query(65), cluster, rng).runtime_s;
  // Q65 drains ~50 Gbit/node/run net of refills: the 250-Gbit budget is
  // gone after about five runs.
  for (int i = 0; i < 4; ++i) engine.run(tpcds_query(65), cluster, rng);
  const double sixth = engine.run(tpcds_query(65), cluster, rng).runtime_s;
  EXPECT_GT(sixth, 1.5 * first);
  EXPECT_LT(*cluster.token_budget(0), 250.0);
}

TEST(EngineTest, FreshClustersGiveIidRuns) {
  stats::Rng rng{7};
  SparkEngine engine;
  std::vector<double> runtimes;
  for (int i = 0; i < 8; ++i) {
    auto cluster = twelve_nodes(5000.0);
    runtimes.push_back(engine.run(tpcds_query(65), cluster, rng).runtime_s);
  }
  // Modest dispersion from task jitter only.
  EXPECT_LT(stats::coefficient_of_variation(runtimes), 0.10);
}

TEST(EngineTest, SkewCreatesStragglerUnderMidBudget) {
  // F4.3 / Figure 18: skew + a mid-sized budget -> one node depletes and
  // straggles while the others stay fast.
  stats::Rng rng{8};
  EngineOptions opt;
  opt.partition_skew = 0.6;
  SparkEngine engine{opt};

  // Figure 18's configuration: 2500-Gbit budgets. The most-loaded node
  // drains first; the rest retain budget, so for a window of runs exactly
  // one node straggles.
  auto cluster = twelve_nodes(2500.0);
  double max_ratio = 0.0;
  bool straggled = false;
  for (int i = 0; i < 22; ++i) {
    const auto r = engine.run(tpcds_query(65), cluster, rng);
    max_ratio = std::max(max_ratio, r.straggler_ratio);
    straggled = straggled || r.has_straggler();
  }
  EXPECT_GT(max_ratio, 1.5);
  EXPECT_TRUE(straggled);
}

TEST(EngineTest, NoSkewNoStragglerAtHighBudget) {
  stats::Rng rng{9};
  SparkEngine engine;
  auto cluster = twelve_nodes(5000.0);
  const auto r = engine.run(tpcds_query(65), cluster, rng);
  EXPECT_LT(r.straggler_ratio, 1.2);
  EXPECT_FALSE(r.has_straggler());
}

TEST(EngineTest, TimelineRecordsRatesAndBudgets) {
  stats::Rng rng{10};
  EngineOptions opt;
  opt.timeline_interval_s = 1.0;
  SparkEngine engine{opt};
  auto cluster = twelve_nodes(5000.0);
  const auto r = engine.run(hibench_terasort(), cluster, rng);
  ASSERT_EQ(r.timelines.size(), 12u);
  ASSERT_FALSE(r.timelines[0].empty());
  double max_rate = 0.0;
  for (const auto& p : r.timelines[0]) {
    EXPECT_GE(p.egress_gbps, 0.0);
    EXPECT_LE(p.egress_gbps, 10.5);
    EXPECT_GE(p.budget_gbit, 0.0);  // Token policy exposes its budget.
    max_rate = std::max(max_rate, p.egress_gbps);
  }
  EXPECT_GT(max_rate, 5.0);  // The shuffle reached the high QoS.
  // Budgets only decrease while the network is busy draining faster than
  // replenish; final budget below initial.
  EXPECT_LT(r.timelines[0].back().budget_gbit, 5000.0);
}

TEST(EngineTest, TimelineDisabledByDefault) {
  stats::Rng rng{11};
  SparkEngine engine;
  auto cluster = twelve_nodes();
  const auto r = engine.run(tpcds_query(3), cluster, rng);
  EXPECT_TRUE(r.timelines.empty());
}

TEST(EngineTest, GceClusterRunsWithoutBudgets) {
  stats::Rng rng{12};
  auto cluster = Cluster::from_cloud(8, 16, cloud::gce_8core(), rng);
  SparkEngine engine;
  const auto r = engine.run(tpcds_query(7), cluster, rng);
  EXPECT_GT(r.runtime_s, 0.0);
  EXPECT_FALSE(cluster.token_budget(0).has_value());
}

TEST(EngineTest, RejectsNegativeSkew) {
  EngineOptions opt;
  opt.partition_skew = -0.1;
  EXPECT_THROW(SparkEngine{opt}, std::invalid_argument);
}


TEST(EngineTest, MixedNicFleetCreatesStragglersWithoutSkew) {
  // F5.2 meets F4.3: a post-August-2019 allocation where some c5 NICs come
  // capped at 5 Gbps. Even with perfectly balanced partitioning, the capped
  // nodes' effective egress rate is half the fleet's — a hardware-lottery
  // straggler that no amount of repetition fixes.
  cloud::IncarnationOptions options;
  options.era = cloud::PolicyEra::kPostAugust2019;
  options.capped_nic_probability = 0.2;
  stats::Rng rng{20};
  // Draw until the fleet is mixed (some capped, some not).
  for (int attempt = 0; attempt < 20; ++attempt) {
    auto cluster = Cluster::from_cloud(12, 16, cloud::ec2_c5_xlarge(options), rng);
    int capped = 0;
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      // A capped NIC's bucket grants at most 5 Gbps at full budget.
      if (cluster.node(i).egress->allowed_rate() < 6.0) ++capped;
    }
    if (capped == 0 || capped == 12) continue;

    SparkEngine engine;
    const auto r = engine.run(tpcds_query(65), cluster, rng);
    EXPECT_GT(r.straggler_ratio, 1.5);
    EXPECT_LT(cluster.node(r.slowest_node).egress->allowed_rate(), 6.0);
    return;
  }
  FAIL() << "no mixed fleet drawn in 20 attempts";
}

// ---- Budget monotonicity sweep (the Figure 16/17 property): runtime is
// non-increasing in the initial budget for every workload.
class BudgetMonotonicityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BudgetMonotonicityTest, RuntimeNonIncreasingInBudget) {
  const std::string name = GetParam();
  const WorkloadProfile* workload = nullptr;
  for (const auto& w : hibench_suite()) {
    if (w.name == name) workload = &w;
  }
  ASSERT_NE(workload, nullptr);

  SparkEngine engine;
  double prev = 1e18;
  for (const double budget : {10.0, 100.0, 1000.0, 5000.0}) {
    stats::Rng rng{13};  // Same task jitter for all budgets.
    auto cluster = twelve_nodes(budget);
    const double rt = engine.run(*workload, cluster, rng).runtime_s;
    EXPECT_LE(rt, prev * 1.02) << name << " at budget " << budget;
    prev = rt;
  }
}

INSTANTIATE_TEST_SUITE_P(HiBench, BudgetMonotonicityTest,
                         ::testing::Values("TS", "WC", "S", "BS", "KM"));

}  // namespace
}  // namespace cloudrepro::bigdata
