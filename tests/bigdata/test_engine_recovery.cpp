#include <gtest/gtest.h>

#include <cmath>

#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "faults/fault_plan.h"
#include "simnet/qos.h"

namespace cloudrepro::bigdata {
namespace {

Cluster twelve_nodes(double budget = -1.0) {
  simnet::TokenBucketQos proto{*cloud::ec2_c5_xlarge().nominal_bucket()};
  auto cluster = Cluster::uniform(12, 16, proto, 10.0);
  if (budget >= 0.0) cluster.set_token_budgets(budget);
  return cluster;
}

/// Single stage, short compute, heavy all-to-all shuffle: the shuffle is in
/// flight from t=0, so faults at small times strike mid-transfer.
WorkloadProfile shuffle_heavy() {
  WorkloadProfile w;
  w.name = "XFER";
  w.suite = "test";
  w.stages.push_back(StageProfile{"xfer", 16, 2.0, 0.1, 40.0});
  return w;
}

double fault_free_runtime(std::uint64_t seed) {
  stats::Rng rng{seed};
  auto cluster = twelve_nodes(5000.0);
  SparkEngine engine;
  return engine.run(shuffle_heavy(), cluster, rng).runtime_s;
}

TEST(EngineRecoveryTest, FaultFreeRunsHaveZeroRecoveryCounters) {
  stats::Rng rng{100};
  auto cluster = twelve_nodes(5000.0);
  SparkEngine engine;
  const auto r = engine.run(shuffle_heavy(), cluster, rng);
  EXPECT_EQ(r.recovery.task_retries, 0);
  EXPECT_EQ(r.recovery.speculative_launches, 0);
  EXPECT_EQ(r.recovery.nodes_lost, 0);
  EXPECT_DOUBLE_EQ(r.recovery.lost_gbit, 0.0);
  EXPECT_DOUBLE_EQ(r.recovery.retransmitted_gbit, 0.0);
  EXPECT_GE(r.completion_straggler_ratio, 1.0);
  EXPECT_LT(r.completion_straggler_ratio, 1.5);
}

TEST(EngineRecoveryTest, CrashMidShuffleRetriesAndCompletes) {
  EngineOptions opt;
  opt.fault_plan.crash(1.0, 3);
  SparkEngine engine{opt};
  stats::Rng rng{101};
  auto cluster = twelve_nodes(5000.0);
  const auto r = engine.run(shuffle_heavy(), cluster, rng);

  EXPECT_EQ(r.recovery.nodes_lost, 1);
  EXPECT_GE(r.recovery.task_retries, 1);
  EXPECT_GT(r.recovery.lost_gbit, 0.0);
  EXPECT_GT(r.recovery.lost_compute_s, 0.0);
  EXPECT_GT(r.recovery.backoff_wait_s, 0.0);
  EXPECT_EQ(cluster.node_health(3), NodeHealth::kFailed);
  EXPECT_EQ(cluster.healthy_node_count(), 11u);
  // Recovery costs time: strictly slower than the same seed without faults.
  EXPECT_GT(r.runtime_s, fault_free_runtime(101));
}

TEST(EngineRecoveryTest, FailedNodeIsExcludedFromSubsequentRuns) {
  EngineOptions opt;
  opt.fault_plan.crash(1.0, 3);
  SparkEngine engine{opt};
  stats::Rng rng{102};
  auto cluster = twelve_nodes(5000.0);
  engine.run(shuffle_heavy(), cluster, rng);
  ASSERT_EQ(cluster.node_health(3), NodeHealth::kFailed);

  // The second submission schedules nothing on the dead node. Reuse a
  // fault-free engine: the crash already happened to the *cluster*.
  SparkEngine plain_engine;
  const auto r2 = plain_engine.run(shuffle_heavy(), cluster, rng);
  EXPECT_DOUBLE_EQ(r2.per_node_sent_gbit[3], 0.0);
  EXPECT_GT(r2.runtime_s, 0.0);

  // Fresh VMs (reset_network) revive the slot.
  cluster.reset_network();
  EXPECT_EQ(cluster.node_health(3), NodeHealth::kUp);
  EXPECT_EQ(cluster.healthy_node_count(), 12u);
}

TEST(EngineRecoveryTest, SpotRevocationDrainsThenDies) {
  EngineOptions opt;
  opt.fault_plan.revoke(0.5, 2, 1.0);  // Notice at 0.5s, death at 1.5s.
  SparkEngine engine{opt};
  stats::Rng rng{103};
  auto cluster = twelve_nodes(5000.0);
  const auto r = engine.run(shuffle_heavy(), cluster, rng);
  EXPECT_EQ(r.recovery.nodes_lost, 1);
  EXPECT_EQ(cluster.node_health(2), NodeHealth::kFailed);
  EXPECT_GT(r.runtime_s, fault_free_runtime(103));
}

TEST(EngineRecoveryTest, TransientSlowdownDegradesThenRestores) {
  EngineOptions opt;
  opt.fault_plan.slow_down(0.5, 1, 1.5, 0.3);
  SparkEngine engine{opt};
  stats::Rng rng{104};
  auto cluster = twelve_nodes(5000.0);
  const auto r = engine.run(shuffle_heavy(), cluster, rng);
  EXPECT_EQ(r.recovery.nodes_lost, 0);
  EXPECT_EQ(r.recovery.task_retries, 0);
  // The window ended mid-run: the node is healthy again afterwards.
  EXPECT_EQ(cluster.node_health(1), NodeHealth::kUp);
  EXPECT_GT(r.runtime_s, fault_free_runtime(104));
}

TEST(EngineRecoveryTest, SlowdownOutlastingTheJobLeavesNodeDegraded) {
  EngineOptions opt;
  opt.fault_plan.slow_down(0.5, 1, 1e6, 0.3);
  SparkEngine engine{opt};
  stats::Rng rng{105};
  auto cluster = twelve_nodes(5000.0);
  engine.run(shuffle_heavy(), cluster, rng);
  EXPECT_EQ(cluster.node_health(1), NodeHealth::kDegraded);
  EXPECT_DOUBLE_EQ(cluster.node(1).degrade_factor, 0.3);
}

TEST(EngineRecoveryTest, TokenTheftDrainsBudgetAndSlowsJob) {
  EngineOptions opt;
  opt.fault_plan.steal_tokens(0.1, 0, 1e6);  // Far more than the budget.
  SparkEngine engine{opt};
  stats::Rng rng{106};
  auto cluster = twelve_nodes(5000.0);
  const auto r = engine.run(shuffle_heavy(), cluster, rng);
  EXPECT_GT(r.runtime_s, fault_free_runtime(106));
  // Node 0 ran on the capped low rate: it is the straggler.
  EXPECT_EQ(r.slowest_node, 0u);
  EXPECT_GT(r.straggler_ratio, 1.5);
  EXPECT_LT(*cluster.token_budget(0), *cluster.token_budget(1));
}

TEST(EngineRecoveryTest, LinkFlapBurnsRetransmittedBytes) {
  EngineOptions opt;
  opt.fault_plan.flap_link(0.5, 0, 2.0, 0.3);
  SparkEngine engine{opt};
  stats::Rng rng{107};
  auto cluster = twelve_nodes(5000.0);
  const auto r = engine.run(shuffle_heavy(), cluster, rng);
  EXPECT_GT(r.recovery.retransmitted_gbit, 0.0);
  EXPECT_GT(r.runtime_s, fault_free_runtime(107));
  EXPECT_EQ(cluster.node_health(0), NodeHealth::kUp);  // Restored after burst.
}

TEST(EngineRecoveryTest, SpeculationReducesCompletionStragglerRatio) {
  // The acceptance scenario: one node's budget is stolen (depleted-budget
  // plan), collapsing it to the capped low rate mid-shuffle. Without
  // mitigation the whole stage waits on it; with speculation its remaining
  // transfers re-run on the fastest healthy node.
  const auto run_arm = [](bool speculate) {
    EngineOptions opt;
    opt.fault_plan.steal_tokens(0.1, 0, 1e6);
    opt.speculation.enabled = speculate;
    opt.speculation.check_interval_s = 1.0;
    opt.speculation.slowdown_threshold = 2.0;
    opt.speculation.min_remaining_gbit = 1.0;
    SparkEngine engine{opt};
    stats::Rng rng{108};
    auto cluster = twelve_nodes(5000.0);
    return engine.run(shuffle_heavy(), cluster, rng);
  };

  const auto baseline = run_arm(false);
  const auto mitigated = run_arm(true);

  EXPECT_GT(baseline.completion_straggler_ratio, 2.0);
  EXPECT_GE(mitigated.recovery.speculative_launches, 1);
  EXPECT_GT(mitigated.recovery.speculated_gbit, 0.0);
  // Strictly lower completion-straggler ratio, and a faster job.
  EXPECT_LT(mitigated.completion_straggler_ratio,
            baseline.completion_straggler_ratio);
  EXPECT_LT(mitigated.runtime_s, baseline.runtime_s);
}

TEST(EngineRecoveryTest, FaultRunsAreDeterministicPerSeed) {
  const auto run_once = [] {
    faults::FaultPlanConfig cfg;
    cfg.horizon_s = 60.0;
    cfg.slowdown_rate_per_hour = 240.0;
    cfg.flap_rate_per_hour = 120.0;
    cfg.theft_rate_per_hour = 240.0;
    cfg.crash_rate_per_hour = 30.0;
    stats::Rng plan_rng{55};
    EngineOptions opt;
    opt.fault_plan = faults::FaultPlan::sample(cfg, 12, plan_rng);
    opt.speculation.enabled = true;
    opt.speculation.check_interval_s = 1.0;
    SparkEngine engine{opt};
    stats::Rng rng{109};
    auto cluster = twelve_nodes(5000.0);
    return engine.run(shuffle_heavy(), cluster, rng);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.runtime_s, b.runtime_s);
  EXPECT_DOUBLE_EQ(a.straggler_ratio, b.straggler_ratio);
  EXPECT_DOUBLE_EQ(a.completion_straggler_ratio, b.completion_straggler_ratio);
  EXPECT_EQ(a.recovery.task_retries, b.recovery.task_retries);
  EXPECT_EQ(a.recovery.speculative_launches, b.recovery.speculative_launches);
  EXPECT_DOUBLE_EQ(a.recovery.lost_gbit, b.recovery.lost_gbit);
  EXPECT_DOUBLE_EQ(a.recovery.speculated_gbit, b.recovery.speculated_gbit);
  EXPECT_DOUBLE_EQ(a.recovery.retransmitted_gbit, b.recovery.retransmitted_gbit);
  ASSERT_EQ(a.per_node_sent_gbit.size(), b.per_node_sent_gbit.size());
  for (std::size_t i = 0; i < a.per_node_sent_gbit.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.per_node_sent_gbit[i], b.per_node_sent_gbit[i]);
  }
}

TEST(EngineRecoveryTest, RetryBudgetExhaustionAborts) {
  EngineOptions opt;
  opt.fault_plan.crash(1.0, 3);
  opt.retry.max_attempts = 0;  // No retries allowed: first loss is fatal.
  SparkEngine engine{opt};
  stats::Rng rng{110};
  auto cluster = twelve_nodes(5000.0);
  EXPECT_THROW(engine.run(shuffle_heavy(), cluster, rng), std::runtime_error);
}

TEST(EngineRecoveryTest, LosingQuorumAborts) {
  EngineOptions opt;
  for (std::size_t i = 0; i < 11; ++i) {
    opt.fault_plan.crash(0.5 + 0.01 * static_cast<double>(i), i);
  }
  opt.retry.max_attempts = 100;
  SparkEngine engine{opt};
  stats::Rng rng{111};
  auto cluster = twelve_nodes(5000.0);
  EXPECT_THROW(engine.run(shuffle_heavy(), cluster, rng), std::runtime_error);
}

TEST(EngineRecoveryTest, RetryPolicyBackoffIsBoundedExponential) {
  RetryPolicy p;
  p.backoff_base_s = 1.0;
  p.backoff_factor = 2.0;
  p.backoff_cap_s = 5.0;
  EXPECT_DOUBLE_EQ(p.delay(1), 1.0);
  EXPECT_DOUBLE_EQ(p.delay(2), 2.0);
  EXPECT_DOUBLE_EQ(p.delay(3), 4.0);
  EXPECT_DOUBLE_EQ(p.delay(4), 5.0);  // Capped.
  EXPECT_DOUBLE_EQ(p.delay(10), 5.0);
}

TEST(EngineRecoveryTest, InvalidPoliciesRejected) {
  {
    EngineOptions opt;
    opt.retry.max_attempts = -1;
    EXPECT_THROW(SparkEngine{opt}, std::invalid_argument);
  }
  {
    EngineOptions opt;
    opt.retry.backoff_factor = 0.5;
    EXPECT_THROW(SparkEngine{opt}, std::invalid_argument);
  }
  {
    EngineOptions opt;
    opt.speculation.enabled = true;
    opt.speculation.check_interval_s = 0.0;
    EXPECT_THROW(SparkEngine{opt}, std::invalid_argument);
  }
  {
    EngineOptions opt;
    opt.speculation.enabled = true;
    opt.speculation.slowdown_threshold = 1.0;
    EXPECT_THROW(SparkEngine{opt}, std::invalid_argument);
  }
}

TEST(EngineRecoveryTest, StragglerRatioGuardsDegenerateInputs) {
  // The satellite fix for the engine's straggler analysis: zero, single, and
  // all-zero inputs report "no straggler"; a zero slowest rate stays finite.
  EXPECT_DOUBLE_EQ(compute_straggler_ratio({}), 1.0);
  const double one[] = {5.0};
  EXPECT_DOUBLE_EQ(compute_straggler_ratio(one), 1.0);
  const double zeros[] = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(compute_straggler_ratio(zeros), 1.0);
  const double stalled[] = {0.0, 10.0, 10.0};
  const double r = compute_straggler_ratio(stalled);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_GT(r, 1e6);  // Clamped, not infinite.
  const double normal[] = {2.0, 4.0, 8.0};
  EXPECT_DOUBLE_EQ(compute_straggler_ratio(normal), 2.0);
}

}  // namespace
}  // namespace cloudrepro::bigdata
