#include <gtest/gtest.h>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"

namespace cloudrepro::bigdata {
namespace {

TEST(ExtendedWorkloadsTest, HiBenchExtendedSuite) {
  const auto suite = hibench_extended_suite();
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].name, "PR");
  EXPECT_EQ(suite[1].name, "JN");
  EXPECT_EQ(suite[2].name, "AG");
  for (const auto& w : suite) {
    EXPECT_EQ(w.suite, "HiBench");
    EXPECT_FALSE(w.stages.empty());
  }
}

TEST(ExtendedWorkloadsTest, TpchSuiteHasEightQueries) {
  const auto suite = tpch_suite();
  ASSERT_EQ(suite.size(), 8u);
  for (const int q : {1, 3, 5, 6, 9, 13, 18, 21}) {
    EXPECT_NO_THROW(tpch_query(q)) << "Q" << q;
    EXPECT_EQ(tpch_query(q).suite, "TPC-H");
  }
  EXPECT_THROW(tpch_query(2), std::out_of_range);
}

TEST(ExtendedWorkloadsTest, TpchScanQueriesAreNetworkLight) {
  // Q1/Q6 are scans; Q9/Q21 are join-heavy.
  EXPECT_LT(tpch_query(1).network_intensity(), 0.2);
  EXPECT_LT(tpch_query(6).network_intensity(), 0.2);
  EXPECT_GT(tpch_query(9).network_intensity(), 1.0);
  EXPECT_GT(tpch_query(21).network_intensity(), 0.8);
}

TEST(ExtendedWorkloadsTest, TpchQueriesAreShortLived) {
  // The access-pattern rationale: TPC-H queries finish in tens of seconds
  // on a healthy network (5-30 / 10-30 territory).
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  SparkEngine engine;
  stats::Rng rng{1};
  for (const auto& q : tpch_suite()) {
    auto cluster = Cluster::uniform(12, 16, proto, 10.0);
    const auto r = engine.run(q, cluster, rng);
    EXPECT_GT(r.runtime_s, 5.0) << q.name;
    EXPECT_LT(r.runtime_s, 120.0) << q.name;
  }
}

TEST(ExtendedWorkloadsTest, JoinHeavyTpchSlowsOnEmptyBudget) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  SparkEngine engine;
  stats::Rng rng{2};

  auto fresh = Cluster::uniform(12, 16, proto, 10.0);
  const double fast = engine.run(tpch_query(9), fresh, rng).runtime_s;
  auto drained = Cluster::uniform(12, 16, proto, 10.0);
  drained.set_token_budgets(10.0);
  const double slow = engine.run(tpch_query(9), drained, rng).runtime_s;
  EXPECT_GT(slow, 1.5 * fast);

  // The scan query barely notices.
  auto fresh2 = Cluster::uniform(12, 16, proto, 10.0);
  const double fast_q6 = engine.run(tpch_query(6), fresh2, rng).runtime_s;
  auto drained2 = Cluster::uniform(12, 16, proto, 10.0);
  drained2.set_token_budgets(10.0);
  const double slow_q6 = engine.run(tpch_query(6), drained2, rng).runtime_s;
  EXPECT_LT(slow_q6, 1.15 * fast_q6);
}

TEST(ExtendedWorkloadsTest, PageRankIterationsAccumulateShuffle) {
  const auto& pr = *hibench_extended_suite().begin();
  EXPECT_EQ(pr.stages.size(), 5u);  // Load + 4 iterations.
  EXPECT_GT(pr.total_shuffle_gbit_per_node(), 100.0);
}

// ---- CPU-credit integration (the paper's closing extension) ------------------

TEST(CpuCreditIntegrationTest, DepletedCreditsStretchComputeBoundQueries) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  SparkEngine engine;
  stats::Rng rng{3};

  cloud::CpuCreditConfig cpu;
  cpu.baseline_fraction = 0.4;

  auto bursting = Cluster::uniform(12, 16, proto, 10.0);
  bursting.attach_cpu_credits(cpu);
  const double fast = engine.run(tpcds_query(82), bursting, rng).runtime_s;

  auto depleted = Cluster::uniform(12, 16, proto, 10.0);
  depleted.attach_cpu_credits(cpu);
  depleted.set_cpu_credits(0.0);
  const double slow = engine.run(tpcds_query(82), depleted, rng).runtime_s;

  // Q82 is compute-bound: empty CPU credits stretch it toward 1/0.4 = 2.5x.
  EXPECT_GT(slow, 2.0 * fast);
  EXPECT_LT(slow, 2.8 * fast);
}

TEST(CpuCreditIntegrationTest, CreditStateCarriesAcrossRuns) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  SparkEngine engine;
  stats::Rng rng{4};

  cloud::CpuCreditConfig cpu;
  cpu.initial_credits = 200.0;
  cpu.max_credits = 2304.0;

  auto cluster = Cluster::uniform(12, 16, proto, 10.0);
  cluster.attach_cpu_credits(cpu);
  const double initial = *cluster.cpu_credits(0);
  engine.run(tpcds_query(82), cluster, rng);
  EXPECT_LT(*cluster.cpu_credits(0), initial);  // Compute burned credits.
}

TEST(CpuCreditIntegrationTest, ResetRestoresCredits) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  auto cluster = Cluster::uniform(2, 16, proto, 10.0);
  cloud::CpuCreditConfig cpu;
  cluster.attach_cpu_credits(cpu);
  cluster.set_cpu_credits(5.0);
  cluster.reset_network();
  EXPECT_DOUBLE_EQ(*cluster.cpu_credits(0), cpu.initial_credits);
}

TEST(CpuCreditIntegrationTest, RestEarnsCredits) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  auto cluster = Cluster::uniform(2, 16, proto, 10.0);
  cloud::CpuCreditConfig cpu;
  cluster.attach_cpu_credits(cpu);
  cluster.set_cpu_credits(0.0);
  cluster.rest(3600.0);
  EXPECT_NEAR(*cluster.cpu_credits(0), cpu.credits_per_hour(), 1e-6);
}

TEST(CpuCreditIntegrationTest, UnattachedClusterReportsNullopt) {
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  simnet::TokenBucketQos proto{bucket};
  auto cluster = Cluster::uniform(2, 16, proto, 10.0);
  EXPECT_FALSE(cluster.cpu_credits(0).has_value());
  cluster.set_cpu_credits(10.0);  // No-op, no throw.
}

}  // namespace
}  // namespace cloudrepro::bigdata
