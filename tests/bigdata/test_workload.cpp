#include "bigdata/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace cloudrepro::bigdata {
namespace {

TEST(WorkloadTest, HiBenchSuiteHasFiveApps) {
  const auto suite = hibench_suite();
  ASSERT_EQ(suite.size(), 5u);
  std::set<std::string> names;
  for (const auto& w : suite) names.insert(w.name);
  EXPECT_EQ(names, (std::set<std::string>{"TS", "WC", "S", "BS", "KM"}));
}

TEST(WorkloadTest, TpcdsSuiteHasFigure17Queries) {
  const auto suite = tpcds_suite();
  ASSERT_EQ(suite.size(), 21u);
  const int expected[] = {3,  7,  19, 27, 34, 42, 43, 46, 52, 53, 55,
                          59, 63, 65, 68, 70, 73, 79, 82, 89, 98};
  for (const int q : expected) {
    EXPECT_NO_THROW(tpcds_query(q)) << "Q" << q;
  }
}

TEST(WorkloadTest, UnknownQueryThrows) {
  EXPECT_THROW(tpcds_query(1), std::out_of_range);
  EXPECT_THROW(tpcds_query(99), std::out_of_range);
}

TEST(WorkloadTest, TotalShuffleSumsStages) {
  WorkloadProfile w;
  w.stages = {{"a", 16, 1.0, 0.1, 10.0}, {"b", 16, 1.0, 0.1, 5.0}};
  EXPECT_DOUBLE_EQ(w.total_shuffle_gbit_per_node(), 15.0);
}

TEST(WorkloadTest, NominalComputeUsesWaves) {
  WorkloadProfile w;
  w.stages = {{"a", 32, 10.0, 0.1, 0.0}};  // 32 tasks on 16 cores = 2 waves.
  EXPECT_DOUBLE_EQ(w.nominal_compute_s(16), 20.0);
  EXPECT_DOUBLE_EQ(w.nominal_compute_s(32), 10.0);
  // Partial wave rounds up.
  w.stages = {{"a", 17, 10.0, 0.1, 0.0}};
  EXPECT_DOUBLE_EQ(w.nominal_compute_s(16), 20.0);
}

TEST(WorkloadTest, NetworkIntensityOrderingHiBench) {
  // The paper's F4.2/Figure 16: TS and WC are the most network-dependent;
  // KM the least.
  const double ts = hibench_terasort().network_intensity();
  const double wc = hibench_wordcount().network_intensity();
  const double km = hibench_kmeans().network_intensity();
  const double bs = hibench_bayes().network_intensity();
  EXPECT_GT(ts, km);
  EXPECT_GT(wc, km);
  EXPECT_GT(ts, bs);
}

TEST(WorkloadTest, NetworkIntensityOrderingTpcds) {
  // Q65/Q68 are the network-heavy extremes; Q82 the compute-bound one
  // (Figure 19 uses exactly this contrast).
  const double q65 = tpcds_query(65).network_intensity();
  const double q68 = tpcds_query(68).network_intensity();
  const double q82 = tpcds_query(82).network_intensity();
  const double q55 = tpcds_query(55).network_intensity();
  EXPECT_GT(q65, 10.0 * q82);
  EXPECT_GT(q68, 10.0 * q82);
  EXPECT_LT(q55, 0.2);
  EXPECT_LT(q82, 0.1);
}

TEST(WorkloadTest, AllProfilesWellFormed) {
  const auto check = [](const WorkloadProfile& w) {
    EXPECT_FALSE(w.name.empty());
    EXPECT_FALSE(w.stages.empty()) << w.name;
    for (const auto& s : w.stages) {
      EXPECT_GT(s.tasks_per_node, 0) << w.name;
      EXPECT_GT(s.compute_s_mean, 0.0) << w.name;
      EXPECT_GE(s.compute_s_cv, 0.0) << w.name;
      EXPECT_GE(s.shuffle_gbit_per_node, 0.0) << w.name;
    }
  };
  for (const auto& w : hibench_suite()) check(w);
  for (const auto& w : tpcds_suite()) check(w);
}

TEST(WorkloadTest, SuitesAreStableAcrossCalls) {
  // The catalogs are static: repeated calls return identical profiles.
  EXPECT_EQ(tpcds_suite().data(), tpcds_suite().data());
  EXPECT_EQ(hibench_suite().data(), hibench_suite().data());
}

}  // namespace
}  // namespace cloudrepro::bigdata
