// ServerCore driven hermetically over in-memory transports: per-connection
// state machines under torn frames, pipelining, garbage, oversize lines,
// backpressure (busy + slow-client), connection limits, corrupt-summary
// recovery, and peer read-through — no sockets anywhere.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "scenario/json.h"
#include "scenario/runner.h"
#include "serve/protocol.h"
#include "serve/single_flight.h"
#include "serve/transport.h"

namespace cloudrepro::serve {
namespace {

namespace fs = std::filesystem;
using scenario::Json;
using scenario::ResultStore;
using scenario::ScenarioSpec;

ScenarioSpec tiny_spec(const std::string& name = "serve-test") {
  ScenarioSpec spec;
  spec.name = name;
  spec.workloads = {{"hibench", "TS", std::nullopt}, {"hibench", "KM", std::nullopt}};
  spec.budgets = {5000.0, 10.0};
  spec.repetitions = 3;
  return spec;
}

struct TestClient {
  std::unique_ptr<MemoryTransport> transport;
  FrameDecoder decoder{64u << 20};
  std::uint64_t id = 0;
};

TestClient connect(ServerCore& core, MemoryPipeOptions pipe = {}) {
  auto [client_end, server_end] = make_memory_pair(pipe);
  TestClient client;
  client.transport = std::move(client_end);
  client.id = core.add_connection(std::move(server_end));
  return client;
}

/// Writes one frame from the test thread, pumping the reactor through any
/// kWouldBlock (tiny pipes) so the send always completes.
void send(ServerCore& core, TestClient& client, const std::string& frame) {
  std::string wire = frame + "\n";
  std::string_view data = wire;
  while (!data.empty()) {
    const IoResult result = client.transport->write(data);
    if (result.status == IoStatus::kOk) {
      data.remove_prefix(result.bytes);
    } else {
      ASSERT_EQ(result.status, IoStatus::kWouldBlock);
      core.poll_once();
    }
  }
}

/// Pumps the reactor until the client has one whole response line (or the
/// connection dies — nullopt).
std::optional<Response> recv(ServerCore& core, TestClient& client,
                             std::chrono::seconds timeout = std::chrono::seconds{120}) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::string frame;
  for (;;) {
    if (client.decoder.next(frame) == FrameDecoder::Status::kFrame) {
      return parse_response(frame);
    }
    char buffer[4096];
    const IoResult result = client.transport->read(buffer, sizeof buffer);
    if (result.status == IoStatus::kOk) {
      client.decoder.push({buffer, result.bytes});
      continue;
    }
    if (result.status == IoStatus::kClosed) return std::nullopt;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "recv timed out";
      return std::nullopt;
    }
    if (!core.poll_once()) {
      core.wait_activity(std::chrono::milliseconds{1});
    }
  }
}

class ServeCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-serve-" + std::string{::testing::UnitTest::GetInstance()
                                                   ->current_test_info()
                                                   ->name()});
    fs::remove_all(root_);
    store_.emplace(root_ / "cache", &metrics_);
  }
  void TearDown() override {
    core_.reset();
    store_.reset();
    fs::remove_all(root_);
  }

  ServerCore& core(ServeOptions options = {}) {
    if (!core_) core_.emplace(*store_, metrics_, std::move(options));
    return *core_;
  }

  /// Reference summary bytes via the runner against a *separate* store.
  std::string reference_summary(const ScenarioSpec& spec) {
    ResultStore store{root_ / "reference"};
    scenario::RunOptions options;
    options.store = &store;
    return scenario::run_scenario(spec, options).summary;
  }

  fs::path root_;
  obs::MetricsRegistry metrics_;
  std::optional<ResultStore> store_;
  std::optional<ServerCore> core_;
};

TEST_F(ServeCoreTest, ListAnswersCatalogAndCache) {
  TestClient client = connect(core());
  send(core(), client, list_request_frame());
  const auto response = recv(core(), client);
  ASSERT_TRUE(response && response->ok);
  const Json body = Json::parse(response->body);
  EXPECT_TRUE(body.at("ok").as_bool());
  EXPECT_FALSE(body.at("scenarios").as_array().empty());
  EXPECT_TRUE(body.at("cache").as_array().empty());
}

TEST_F(ServeCoreTest, ColdGetExecutesOnceThenCachedGetHits) {
  const ScenarioSpec spec = tiny_spec();
  TestClient client = connect(core());

  send(core(), client, get_request_frame(spec, std::nullopt));
  const auto cold = recv(core(), client);
  ASSERT_TRUE(cold && cold->ok);
  EXPECT_EQ(cold->hit, "miss");
  EXPECT_EQ(cold->hash, spec.content_hash());
  EXPECT_EQ(cold->seed, spec.seed);
  EXPECT_EQ(cold->summary, reference_summary(spec))
      << "served bytes must be identical to `cloudrepro run` output";

  send(core(), client, get_request_frame(spec, std::nullopt));
  const auto warm = recv(core(), client);
  ASSERT_TRUE(warm && warm->ok);
  EXPECT_EQ(warm->hit, "hit");
  EXPECT_EQ(warm->summary, cold->summary);

  EXPECT_EQ(metrics_.counter_value("serve.get_executed"), 1.0);
  EXPECT_EQ(metrics_.counter_value("serve.get_hit"), 1.0);
  EXPECT_EQ(metrics_.counter_value("serve.single_flight_leader"), 1.0);
  // The hit was served via peek, not lookup: campaign admissions stay 1.
  EXPECT_EQ(metrics_.counter_value("scenario.cache.miss"), 1.0);
  EXPECT_EQ(metrics_.counter_value("scenario.cache.hit"), 0.0);
}

TEST_F(ServeCoreTest, SingleByteTornFramesServeIdentically) {
  MemoryPipeOptions pipe;
  pipe.max_read_chunk = 1;  // Every server read returns exactly one byte.
  TestClient client = connect(core(), pipe);
  send(core(), client, stats_request_frame());
  const auto response = recv(core(), client);
  ASSERT_TRUE(response && response->ok);
  EXPECT_NE(response->body.find("\"metrics\""), std::string::npos);
}

TEST_F(ServeCoreTest, PipelinedRequestsAnsweredInOrder) {
  const ScenarioSpec spec = tiny_spec();
  TestClient client = connect(core());
  // One write carrying three requests; the GET parks the connection, so the
  // trailing STATS must wait for the campaign and still answer in order.
  send(core(), client,
       list_request_frame() + "\n" + get_request_frame(spec, std::nullopt) +
           "\n" + stats_request_frame());

  const auto first = recv(core(), client);
  ASSERT_TRUE(first && first->ok);
  EXPECT_NE(first->body.find("\"scenarios\""), std::string::npos);

  const auto second = recv(core(), client);
  ASSERT_TRUE(second && second->ok);
  EXPECT_EQ(second->hit, "miss");

  const auto third = recv(core(), client);
  ASSERT_TRUE(third && third->ok);
  EXPECT_NE(third->body.find("\"metrics\""), std::string::npos);
}

TEST_F(ServeCoreTest, GarbageFrameAnswersErrorAndConnectionSurvives) {
  TestClient client = connect(core());
  send(core(), client, "this is not json");
  const auto error = recv(core(), client);
  ASSERT_TRUE(error);
  EXPECT_FALSE(error->ok);
  EXPECT_EQ(error->error_code, "bad_json");

  send(core(), client, list_request_frame());
  const auto list = recv(core(), client);
  ASSERT_TRUE(list && list->ok);
  EXPECT_EQ(metrics_.counter_value("serve.requests_bad"), 1.0);
  EXPECT_EQ(core().connection_count(), 1u);
}

TEST_F(ServeCoreTest, OversizeFrameAnswersErrorAndResyncs) {
  ServeOptions options;
  options.max_frame_bytes = 64;
  TestClient client = connect(core(std::move(options)));

  send(core(), client, std::string(1000, 'x'));
  const auto error = recv(core(), client);
  ASSERT_TRUE(error);
  EXPECT_FALSE(error->ok);
  EXPECT_EQ(error->error_code, "oversize");

  send(core(), client, list_request_frame());
  const auto list = recv(core(), client);
  ASSERT_TRUE(list && list->ok);
  EXPECT_EQ(metrics_.counter_value("serve.requests_oversize"), 1.0);
}

TEST_F(ServeCoreTest, UnknownScenarioAndHashAnswerErrors) {
  TestClient client = connect(core());
  send(core(), client, get_request_frame_by_name("no-such-scenario", {}));
  auto response = recv(core(), client);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->error_code, "unknown_scenario");

  send(core(), client, get_request_frame_by_hash(std::string(64, 'f'), 1));
  response = recv(core(), client);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->error_code, "unknown_hash");
}

TEST_F(ServeCoreTest, GetByHashResolvesAgainstRegistryIndex) {
  const std::string hash =
      scenario::ScenarioRegistry::builtin().at("ci-smoke").content_hash();
  TestClient client = connect(core());
  send(core(), client,
       get_request_frame_by_hash(
           hash, scenario::ScenarioRegistry::builtin().at("ci-smoke").seed));
  const auto response = recv(core(), client);
  ASSERT_TRUE(response && response->ok);
  EXPECT_EQ(response->hash, hash);
}

TEST_F(ServeCoreTest, ConnectionTableBoundRejectsTheOverflow) {
  ServeOptions options;
  options.max_connections = 2;
  TestClient a = connect(core(std::move(options)));
  TestClient b = connect(core());
  TestClient c = connect(core());
  EXPECT_NE(a.id, 0u);
  EXPECT_NE(b.id, 0u);
  EXPECT_EQ(c.id, 0u);  // Closed on arrival.
  char byte = 0;
  EXPECT_EQ(c.transport->read(&byte, 1).status, IoStatus::kClosed);
  EXPECT_EQ(metrics_.counter_value("serve.connections_rejected"), 1.0);
  EXPECT_EQ(core().connection_count(), 2u);
}

// A gate the test opens to let a blocked peer factory proceed (it then
// throws, which the server treats as "no peer" and runs locally). Holding
// the gate holds the leader's executor slot — the deterministic way to
// observe the busy backpressure path.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void release() {
    {
      std::lock_guard<std::mutex> lock{mu};
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock{mu};
    cv.wait(lock, [this] { return open; });
  }
};

TEST_F(ServeCoreTest, FullExecutionQueueAnswersBusy) {
  auto gate = std::make_shared<Gate>();
  ServeOptions options;
  options.max_inflight = 1;
  options.peer = [gate]() -> std::unique_ptr<Transport> {
    gate->wait();
    throw std::runtime_error{"no peer"};
  };
  core(std::move(options));

  TestClient a = connect(core());
  TestClient b = connect(core());

  send(core(), a, get_request_frame(tiny_spec("serve-busy-a"), std::nullopt));
  core().poll_once();  // Admit A: leader occupies the single inflight slot.
  ASSERT_EQ(core().inflight(), 1u);

  send(core(), b, get_request_frame(tiny_spec("serve-busy-b"), std::nullopt));
  const auto busy = recv(core(), b);
  ASSERT_TRUE(busy);
  EXPECT_FALSE(busy->ok);
  EXPECT_EQ(busy->error_code, "busy");
  EXPECT_EQ(metrics_.counter_value("serve.busy_rejected"), 1.0);

  gate->release();
  const auto ok = recv(core(), a);
  ASSERT_TRUE(ok && ok->ok);
  EXPECT_EQ(ok->hit, "miss");
}

TEST_F(ServeCoreTest, SlowClientOverWriteBufferBoundIsDropped) {
  const ScenarioSpec spec = tiny_spec();
  {
    scenario::RunOptions run;
    run.store = &*store_;
    scenario::run_scenario(spec, run);  // Warm the cache.
  }
  ServeOptions options;
  options.max_write_buffer = 64;  // Any summary response overflows this.
  MemoryPipeOptions pipe;
  pipe.capacity = 8;  // ...and the client is not draining.
  TestClient client = connect(core(std::move(options)), pipe);

  send(core(), client, get_request_frame(spec, std::nullopt));
  core().poll_once();
  core().poll_once();
  EXPECT_EQ(core().connection_count(), 0u);
  EXPECT_EQ(metrics_.counter_value("serve.slow_client_drops"), 1.0);
  EXPECT_EQ(metrics_.counter_value("serve.connections_closed"), 1.0);
}

TEST_F(ServeCoreTest, ClientVanishingMidCampaignIsHarmless) {
  const ScenarioSpec spec = tiny_spec();
  TestClient client = connect(core());
  send(core(), client, get_request_frame(spec, std::nullopt));
  core().poll_once();  // Admit the GET.
  client.transport->close();
  client.transport.reset();

  core().pump_until_idle();  // Campaign finishes; completion finds no conn.
  EXPECT_EQ(core().connection_count(), 0u);
  // The work was not wasted: the entry is published for the next client.
  EXPECT_TRUE(store_->has_summary(spec, spec.seed));
}

TEST_F(ServeCoreTest, CorruptSummaryOnDiskIsEvictedAndReExecuted) {
  const ScenarioSpec spec = tiny_spec();
  std::string pristine;
  {
    scenario::RunOptions run;
    run.store = &*store_;
    pristine = scenario::run_scenario(spec, run).summary;
  }
  {
    std::ofstream out{store_->summary_path(spec, spec.seed),
                      std::ios::binary | std::ios::trunc};
    out << "{torn";
  }

  TestClient client = connect(core());
  send(core(), client, get_request_frame(spec, std::nullopt));
  const auto response = recv(core(), client);
  ASSERT_TRUE(response && response->ok);
  // The corrupt summary is evicted and the campaign re-derives it — either
  // from scratch ("miss") or by resuming the intact journal ("partial").
  // What must never happen is the torn bytes serving as a cache hit.
  EXPECT_NE(response->hit, "hit") << "corrupt summary must not serve as a hit";
  EXPECT_EQ(response->summary, pristine);
  EXPECT_GE(metrics_.counter_value("scenario.cache.corrupt_summaries"), 1.0);
}

TEST_F(ServeCoreTest, PeerReadThroughServesWithoutLocalExecution) {
  const ScenarioSpec spec = tiny_spec();

  // Peer server A, warm.
  obs::MetricsRegistry peer_metrics;
  ResultStore peer_store{root_ / "peer-cache", &peer_metrics};
  std::string pristine;
  {
    scenario::RunOptions run;
    run.store = &peer_store;
    pristine = scenario::run_scenario(spec, run).summary;
  }
  ServerCore peer_core{peer_store, peer_metrics, {}};
  auto [peer_client_end, peer_server_end] = make_memory_pair();
  ASSERT_NE(peer_core.add_connection(std::move(peer_server_end)), 0u);

  // Local server B, cold, wired to read through A. The factory hands out
  // the pre-connected endpoint (reactor-thread rule: only this test thread
  // may add_connection on A, so the connection was made above).
  auto slot = std::make_shared<std::unique_ptr<Transport>>(
      std::move(peer_client_end));
  ServeOptions options;
  options.peer = [slot]() { return std::move(*slot); };
  core(std::move(options));

  TestClient client = connect(core());
  send(core(), client, get_request_frame(spec, std::nullopt));

  // Pump both reactors: B's executor blocks on the pipe until A answers.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{120};
  std::optional<Response> response;
  std::string frame;
  while (!response) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    peer_core.poll_once();
    if (!core().poll_once()) core().wait_activity(std::chrono::milliseconds{1});
    char buffer[4096];
    const IoResult result = client.transport->read(buffer, sizeof buffer);
    if (result.status == IoStatus::kOk) client.decoder.push({buffer, result.bytes});
    if (client.decoder.next(frame) == FrameDecoder::Status::kFrame) {
      response = parse_response(frame);
    }
  }

  ASSERT_TRUE(response->ok);
  EXPECT_EQ(response->hit, "peer");
  EXPECT_EQ(response->summary, pristine);
  EXPECT_EQ(metrics_.counter_value("serve.peer_hit"), 1.0);
  EXPECT_EQ(metrics_.counter_value("campaign.measurements_executed"), 0.0)
      << "read-through must not execute locally";
  EXPECT_TRUE(store_->has_summary(spec, spec.seed));
  EXPECT_EQ(peer_metrics.counter_value("serve.get_hit"), 1.0);
}

TEST_F(ServeCoreTest, ShutdownAnswersErrorAndDrains) {
  TestClient client = connect(core());
  core().begin_shutdown();
  send(core(), client, list_request_frame());
  const auto response = recv(core(), client, std::chrono::seconds{30});
  ASSERT_TRUE(response);
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->error_code, "shutting_down");
  EXPECT_TRUE(core().drained());
}

TEST(ServeSingleFlight, LeaderFirstCallbacksInJoinOrder) {
  SingleFlight flights;
  std::vector<std::pair<int, bool>> calls;
  EXPECT_TRUE(flights.join("k", [&](const FlightOutcome&, bool leader) {
    calls.emplace_back(0, leader);
  }));
  EXPECT_FALSE(flights.join("k", [&](const FlightOutcome&, bool leader) {
    calls.emplace_back(1, leader);
  }));
  EXPECT_FALSE(flights.join("k", [&](const FlightOutcome&, bool leader) {
    calls.emplace_back(2, leader);
  }));
  EXPECT_EQ(flights.open_flights(), 1u);

  FlightOutcome outcome;
  outcome.ok = true;
  flights.complete("k", outcome);
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[0], (std::pair<int, bool>{0, true}));
  EXPECT_EQ(calls[1], (std::pair<int, bool>{1, false}));
  EXPECT_EQ(calls[2], (std::pair<int, bool>{2, false}));
  EXPECT_EQ(flights.open_flights(), 0u);
}

TEST(ServeSingleFlight, DistinctKeysAreIndependentFlights) {
  SingleFlight flights;
  EXPECT_TRUE(flights.join("a", [](const FlightOutcome&, bool) {}));
  EXPECT_TRUE(flights.join("b", [](const FlightOutcome&, bool) {}));
  EXPECT_EQ(flights.open_flights(), 2u);
  flights.complete("a", {});
  EXPECT_EQ(flights.open_flights(), 1u);
}

TEST(ServeSingleFlight, CompleteWithoutJoinIsANoOp) {
  SingleFlight flights;
  flights.complete("ghost", {});
  EXPECT_EQ(flights.open_flights(), 0u);
}

}  // namespace
}  // namespace cloudrepro::serve
