// The tentpole property: N concurrent cold GETs for the same scenario cost
// exactly ONE campaign — the in-process single-flight collapse — and every
// requester gets byte-identical summaries. Plus a mixed-operation hammer
// that runs under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "scenario/runner.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace cloudrepro::serve {
namespace {

namespace fs = std::filesystem;
using scenario::ResultStore;
using scenario::ScenarioSpec;

constexpr int kHerd = 8;

ScenarioSpec tiny_spec(const std::string& name = "serve-herd") {
  ScenarioSpec spec;
  spec.name = name;
  spec.workloads = {{"hibench", "TS", std::nullopt}, {"hibench", "KM", std::nullopt}};
  spec.budgets = {5000.0, 10.0};
  spec.repetitions = 3;
  return spec;
}

struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void release() {
    {
      std::lock_guard<std::mutex> lock{mu};
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock{mu};
    cv.wait(lock, [this] { return open; });
  }
};

class ServeHerdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-herd-" + std::string{::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()});
    fs::remove_all(root_);
    store_.emplace(root_ / "cache", &metrics_);
  }
  void TearDown() override {
    core_.reset();  // Closes transports; any straggler client unblocks.
    store_.reset();
    fs::remove_all(root_);
  }

  fs::path root_;
  obs::MetricsRegistry metrics_;
  std::optional<ResultStore> store_;
  std::optional<ServerCore> core_;
};

TEST_F(ServeHerdTest, EightConcurrentColdGetsExecuteTheCampaignExactlyOnce) {
  const ScenarioSpec spec = tiny_spec();

  // The leader's execution first consults the (gated) peer factory, so the
  // campaign cannot start — or finish — before every herd member has
  // joined the flight. No sleeps, no races: admission is observed through
  // the single-flight counters, then the gate opens (the factory throws,
  // which falls back to local execution).
  auto gate = std::make_shared<Gate>();
  ServeOptions options;
  options.peer = [gate]() -> std::unique_ptr<Transport> {
    gate->wait();
    throw std::runtime_error{"no peer"};
  };
  core_.emplace(*store_, metrics_, std::move(options));

  // Reactor-thread rule: all connections are made here, before the client
  // threads start driving their endpoints.
  std::vector<std::unique_ptr<MemoryTransport>> endpoints;
  for (int i = 0; i < kHerd; ++i) {
    auto [client_end, server_end] = make_memory_pair();
    ASSERT_NE(core_->add_connection(std::move(server_end)), 0u);
    endpoints.push_back(std::move(client_end));
  }

  std::atomic<int> done{0};
  std::vector<std::optional<Response>> responses(kHerd);
  std::vector<std::thread> herd;
  herd.reserve(kHerd);
  for (int i = 0; i < kHerd; ++i) {
    herd.emplace_back([&, i] {
      try {
        FetchClient client{std::move(endpoints[i])};
        responses[i] = client.get(spec);
      } catch (const std::exception&) {
        // Leave the slot empty; the main thread's asserts will name it.
      }
      done.fetch_add(1);
    });
  }

  // Pump until all eight requests have joined the flight, then let the
  // campaign run, then pump the responses out.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes{5};
  bool released = false;
  while (done.load() < kHerd &&
         std::chrono::steady_clock::now() < deadline) {
    if (!released &&
        metrics_.counter_value("serve.single_flight_leader") +
                metrics_.counter_value("serve.single_flight_coalesced") >=
            kHerd) {
      gate->release();
      released = true;
    }
    if (!core_->poll_once()) core_->wait_activity(std::chrono::milliseconds{1});
  }
  for (auto& thread : herd) thread.join();
  ASSERT_EQ(done.load(), kHerd) << "herd did not finish before the deadline";

  // Every response: ok, byte-identical to the reference run.
  ResultStore reference_store{root_ / "reference"};
  scenario::RunOptions reference;
  reference.store = &reference_store;
  const std::string expected = scenario::run_scenario(spec, reference).summary;

  int misses = 0;
  int coalesced = 0;
  for (int i = 0; i < kHerd; ++i) {
    ASSERT_TRUE(responses[i].has_value()) << "client " << i << " got no response";
    ASSERT_TRUE(responses[i]->ok) << responses[i]->error_message;
    EXPECT_EQ(responses[i]->summary, expected) << "client " << i;
    if (responses[i]->hit == "miss") ++misses;
    if (responses[i]->hit == "coalesced") ++coalesced;
  }
  EXPECT_EQ(misses, 1) << "exactly one leader executes";
  EXPECT_EQ(coalesced, kHerd - 1);

  // The exactly-once story told by the counters, reconciled end to end:
  // one flight, one cache admission, one campaign's worth of measurements.
  EXPECT_EQ(metrics_.counter_value("serve.single_flight_leader"), 1.0);
  EXPECT_EQ(metrics_.counter_value("serve.single_flight_coalesced"),
            static_cast<double>(kHerd - 1));
  EXPECT_EQ(metrics_.counter_value("serve.requests_get"),
            static_cast<double>(kHerd));
  EXPECT_EQ(metrics_.counter_value("scenario.cache.miss"), 1.0);
  EXPECT_EQ(metrics_.counter_value("scenario.cache.hit"), 0.0);
  EXPECT_EQ(metrics_.counter_value("campaign.measurements_executed"),
            static_cast<double>(spec.total_measurements()));
  EXPECT_EQ(metrics_.counter_value("serve.get_executed"), 1.0);
}

TEST_F(ServeHerdTest, LateArrivalsAfterTheFlightLandOnTheCacheFastPath) {
  const ScenarioSpec spec = tiny_spec();
  core_.emplace(*store_, metrics_, ServeOptions{});

  auto [first_end, first_server] = make_memory_pair();
  ASSERT_NE(core_->add_connection(std::move(first_server)), 0u);
  auto [second_end, second_server] = make_memory_pair();
  ASSERT_NE(core_->add_connection(std::move(second_server)), 0u);

  std::atomic<int> done{0};
  std::optional<Response> first, second;
  std::thread a{[&] {
    FetchClient client{std::move(first_end)};
    first = client.get(spec);
    done.fetch_add(1);
  }};
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes{5};
  while (done.load() < 1 && std::chrono::steady_clock::now() < deadline) {
    if (!core_->poll_once()) core_->wait_activity(std::chrono::milliseconds{1});
  }
  a.join();

  std::thread b{[&] {
    FetchClient client{std::move(second_end)};
    second = client.get(spec);
    done.fetch_add(1);
  }};
  while (done.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    if (!core_->poll_once()) core_->wait_activity(std::chrono::milliseconds{1});
  }
  b.join();

  ASSERT_TRUE(first && first->ok);
  ASSERT_TRUE(second && second->ok);
  EXPECT_EQ(first->hit, "miss");
  EXPECT_EQ(second->hit, "hit");
  EXPECT_EQ(first->summary, second->summary);
  EXPECT_EQ(metrics_.counter_value("serve.get_hit"), 1.0);
  EXPECT_EQ(metrics_.counter_value("scenario.cache.miss"), 1.0);
}

// TSan target: eight client threads each driving a private connection with
// a mix of warm GETs, cold per-thread GETs (distinct seeds — concurrent
// campaigns on the executor pool), LIST and STATS, while the reactor
// thread pumps. Exercises the completion queue, the flight table, the
// metrics registry, and the pipes under real concurrency.
TEST_F(ServeHerdTest, HammerMixedOperationsUnderConcurrency) {
  const ScenarioSpec warm = tiny_spec("serve-hammer");
  {
    scenario::RunOptions run;
    run.store = &*store_;
    scenario::run_scenario(warm, run);
  }
  core_.emplace(*store_, metrics_, ServeOptions{});

  constexpr int kThreads = 8;
  std::vector<std::unique_ptr<MemoryTransport>> endpoints;
  for (int i = 0; i < kThreads; ++i) {
    auto [client_end, server_end] = make_memory_pair();
    ASSERT_NE(core_->add_connection(std::move(server_end)), 0u);
    endpoints.push_back(std::move(client_end));
  }

  std::atomic<int> done{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      try {
        FetchClient client{std::move(endpoints[i])};
        if (!client.get(warm).ok) failures.fetch_add(1);
        if (!client.list().ok) failures.fetch_add(1);
        // Distinct seed per thread: eight campaigns racing on the executor.
        if (!client.get(warm, 1000 + static_cast<std::uint64_t>(i)).ok) {
          failures.fetch_add(1);
        }
        if (!client.stats().ok) failures.fetch_add(1);
        if (!client.get(warm).ok) failures.fetch_add(1);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
      done.fetch_add(1);
    });
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes{5};
  while (done.load() < kThreads &&
         std::chrono::steady_clock::now() < deadline) {
    if (!core_->poll_once()) core_->wait_activity(std::chrono::milliseconds{1});
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(done.load(), kThreads);
  EXPECT_EQ(failures.load(), 0);

  // Every distinct (scenario, seed) ran exactly once: the eight cold
  // seeds executed on the server (the warm pre-run above recorded no
  // metrics), and all warm GETs were cache hits.
  EXPECT_EQ(metrics_.counter_value("serve.get_executed"),
            static_cast<double>(kThreads));
  EXPECT_EQ(metrics_.counter_value("campaign.measurements_executed"),
            static_cast<double>(warm.total_measurements() * kThreads));
}

}  // namespace
}  // namespace cloudrepro::serve
