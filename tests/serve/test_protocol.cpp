// Wire protocol: strict request validation (exactly one addressing mode,
// schema/protocol version gates) and the byte-identity property that GET
// responses embed the stored summary bytes exactly.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "scenario/json.h"
#include "scenario/registry.h"
#include "scenario/result_store.h"

namespace cloudrepro::serve {
namespace {

using scenario::Json;
using scenario::ScenarioRegistry;
using scenario::ScenarioSpec;

ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "protocol-test";
  spec.workloads = {{"hibench", "TS", std::nullopt}};
  spec.budgets = {5000.0};
  spec.repetitions = 2;
  return spec;
}

std::string error_code_of(std::string_view frame) {
  try {
    (void)parse_request(frame);
  } catch (const ProtocolError& error) {
    return error.code();
  }
  return "";
}

TEST(ServeProtocol, GetWithInlineSpecRoundTrips) {
  const ScenarioSpec spec = tiny_spec();
  const Request request = parse_request(get_request_frame(spec, 7));
  EXPECT_EQ(request.op, Request::Op::kGet);
  ASSERT_TRUE(request.spec.has_value());
  EXPECT_EQ(request.spec->content_hash(), spec.content_hash());
  ASSERT_TRUE(request.seed.has_value());
  EXPECT_EQ(*request.seed, 7u);
  ASSERT_TRUE(request.schema_version.has_value());
  EXPECT_EQ(*request.schema_version, scenario::kResultSchemaVersion);
}

TEST(ServeProtocol, GetByNameAndByHashParse) {
  const Request by_name = parse_request(get_request_frame_by_name("ci-smoke", {}));
  EXPECT_EQ(by_name.scenario_name, "ci-smoke");
  EXPECT_FALSE(by_name.seed.has_value());

  const std::string hash =
      ScenarioRegistry::builtin().at("ci-smoke").content_hash();
  const Request by_hash = parse_request(get_request_frame_by_hash(hash, 42));
  EXPECT_EQ(by_hash.hash, hash);
  ASSERT_TRUE(by_hash.seed.has_value());
  EXPECT_EQ(*by_hash.seed, 42u);
}

TEST(ServeProtocol, GetNeedsExactlyOneAddress) {
  EXPECT_EQ(error_code_of(R"({"op":"GET"})"), "bad_field");
  EXPECT_EQ(error_code_of(R"({"op":"GET","scenario":"a","hash":")" +
                          std::string(64, 'a') + R"("})"),
            "bad_field");
}

TEST(ServeProtocol, MalformedFramesRejectedWithStableCodes) {
  EXPECT_EQ(error_code_of("not json at all"), "bad_json");
  EXPECT_EQ(error_code_of("[1,2,3]"), "bad_json");
  EXPECT_EQ(error_code_of(R"({"op":"DELETE"})"), "bad_op");
  EXPECT_EQ(error_code_of(R"({"no_op":true})"), "bad_field");
  EXPECT_EQ(error_code_of(R"({"op":"GET","scenario":"x","seed":-1})"), "bad_field");
  EXPECT_EQ(error_code_of(R"({"op":"GET","scenario":""})"), "bad_field");
  EXPECT_EQ(error_code_of(R"({"op":"GET","hash":"abc"})"), "bad_field");
  EXPECT_EQ(error_code_of(R"({"op":"GET","spec":{"name":1}})"), "bad_spec");
}

TEST(ServeProtocol, VersionGates) {
  EXPECT_EQ(error_code_of(R"({"op":"LIST","protocol":99})"), "protocol");
  EXPECT_EQ(error_code_of(R"({"op":"GET","scenario":"x","schema_version":99})"),
            "schema");
  // The current versions pass.
  EXPECT_EQ(error_code_of(list_request_frame()), "");
}

TEST(ServeProtocol, ErrorResponseRoundTrips) {
  const std::string frame = error_response("busy", "queue full");
  const Response response = parse_response(frame);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, "busy");
  EXPECT_EQ(response.error_message, "queue full");
}

TEST(ServeProtocol, GetResponseSummaryBytesAreIdentity) {
  // The property the whole fetch path rests on: embedding the canonical
  // summary in a response and extracting it on the client returns the
  // *same bytes* — what makes `cloudrepro fetch` cmp-equal to `run`.
  const std::string summary =
      R"({"cells":[{"median":3.25,"n":3}],"complete":true,"seed":7})";
  ASSERT_EQ(Json::parse(summary).canonical(), summary) << "fixture not canonical";

  const std::string frame = get_response(std::string(64, 'a'), 7, "hit", summary);
  const Response response = parse_response(frame);
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.summary, summary);
  EXPECT_EQ(response.hash, std::string(64, 'a'));
  EXPECT_EQ(response.seed, 7u);
  EXPECT_EQ(response.hit, "hit");
}

TEST(ServeProtocol, ListAndStatsResponsesCarryTheWholeBody) {
  const std::string body = R"({"ok":true,"scenarios":[]})";
  const Response response = parse_response(body);
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.summary.empty());
  EXPECT_EQ(response.body, body);
}

TEST(ServeProtocol, RequestFramesAreSingleCanonicalLines) {
  for (const std::string& frame :
       {get_request_frame(tiny_spec(), 1), get_request_frame_by_name("x", {}),
        list_request_frame(), stats_request_frame()}) {
    EXPECT_EQ(frame.find('\n'), std::string::npos);
    EXPECT_EQ(Json::parse(frame).canonical(), frame);
  }
}

}  // namespace
}  // namespace cloudrepro::serve
