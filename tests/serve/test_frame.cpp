// Line framing under hostile chunking: frames torn into single bytes,
// merged into one read, oversize lines, and garbage must all decode (or be
// rejected) identically to clean input.

#include "serve/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cloudrepro::serve {
namespace {

std::vector<std::string> drain(FrameDecoder& decoder) {
  std::vector<std::string> frames;
  std::string frame;
  while (decoder.next(frame) == FrameDecoder::Status::kFrame) {
    frames.push_back(frame);
  }
  return frames;
}

TEST(ServeFrame, SingleLineDecodes) {
  FrameDecoder decoder{1024};
  decoder.push("{\"op\":\"LIST\"}\n");
  EXPECT_EQ(drain(decoder), (std::vector<std::string>{"{\"op\":\"LIST\"}"}));
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(ServeFrame, MergedLinesDecodeInOrder) {
  FrameDecoder decoder{1024};
  decoder.push("one\ntwo\nthree\n");
  EXPECT_EQ(drain(decoder), (std::vector<std::string>{"one", "two", "three"}));
}

TEST(ServeFrame, ByteAtATimeDecodesIdentically) {
  const std::string wire = "alpha\nbeta\n";
  FrameDecoder decoder{1024};
  std::vector<std::string> frames;
  for (const char byte : wire) {
    decoder.push({&byte, 1});
    for (auto& frame : drain(decoder)) frames.push_back(std::move(frame));
  }
  EXPECT_EQ(frames, (std::vector<std::string>{"alpha", "beta"}));
}

TEST(ServeFrame, SplitAtEveryPossibleBoundaryDecodesIdentically) {
  const std::string wire = "first\nsecond\n";
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    FrameDecoder decoder{1024};
    decoder.push(wire.substr(0, split));
    auto frames = drain(decoder);
    decoder.push(wire.substr(split));
    for (auto& frame : drain(decoder)) frames.push_back(std::move(frame));
    EXPECT_EQ(frames, (std::vector<std::string>{"first", "second"}))
        << "split at " << split;
  }
}

TEST(ServeFrame, CarriageReturnStripped) {
  FrameDecoder decoder{1024};
  decoder.push("netcat line\r\n");
  EXPECT_EQ(drain(decoder), (std::vector<std::string>{"netcat line"}));
}

TEST(ServeFrame, EmptyLineIsAnEmptyFrame) {
  FrameDecoder decoder{1024};
  decoder.push("\n");
  std::string frame{"sentinel"};
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame, "");
}

TEST(ServeFrame, OversizeReportedOnceAtDetectionAndResyncs) {
  FrameDecoder decoder{8};
  decoder.push("0123456789");  // Over the bound with no newline yet.
  std::string frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kOversize);
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);  // Hostile input must not accumulate.

  // More of the same long line: silently discarded, not re-reported.
  decoder.push("aaaaaaaaaaaaaaaaaaaa");
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);

  // The newline resynchronizes; the next line decodes normally.
  decoder.push("zz\nok\n");
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame, "ok");
}

TEST(ServeFrame, OversizeCompletedLineInOnePushAlsoRejected) {
  FrameDecoder decoder{4};
  decoder.push("longline\nok\n");
  std::string frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kOversize);
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame, "ok");
}

TEST(ServeFrame, ExactBoundIsNotOversize) {
  FrameDecoder decoder{4};
  decoder.push("abcd\n");
  std::string frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame, "abcd");
}

TEST(ServeFrame, BinaryGarbageStaysInertUntilNewline) {
  FrameDecoder decoder{1024};
  decoder.push(std::string{"\x00\x01\xff\xfe", 4});
  std::string frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore);
  decoder.push("\n");
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame, (std::string{"\x00\x01\xff\xfe", 4}));
}

}  // namespace
}  // namespace cloudrepro::serve
