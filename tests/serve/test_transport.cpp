// The Transport seam: in-memory pipes must honor non-blocking POSIX
// semantics exactly — partial writes at capacity, chunk-capped reads,
// drain-then-EOF on close — because the server state machines are tested
// against these semantics in place of a kernel socket.

#include "serve/transport.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace cloudrepro::serve {
namespace {

std::string read_all(Transport& transport, std::size_t max = 4096) {
  std::string out(max, '\0');
  const IoResult result = transport.read(out.data(), out.size());
  EXPECT_EQ(result.status, IoStatus::kOk);
  out.resize(result.bytes);
  return out;
}

TEST(ServeTransport, PairMovesBytesFifoBothDirections) {
  auto [client, server] = make_memory_pair();
  EXPECT_EQ(client->write("hello ").status, IoStatus::kOk);
  EXPECT_EQ(client->write("world").status, IoStatus::kOk);
  EXPECT_EQ(read_all(*server), "hello world");

  EXPECT_EQ(server->write("reply").status, IoStatus::kOk);
  EXPECT_EQ(read_all(*client), "reply");
}

TEST(ServeTransport, EmptyPipeWouldBlockNotClose) {
  auto [client, server] = make_memory_pair();
  char byte = 0;
  EXPECT_EQ(server->read(&byte, 1).status, IoStatus::kWouldBlock);
}

TEST(ServeTransport, WritesArePartialAtCapacity) {
  MemoryPipeOptions options;
  options.capacity = 4;
  auto [client, server] = make_memory_pair(options);

  const IoResult first = client->write("0123456789");
  EXPECT_EQ(first.status, IoStatus::kOk);
  EXPECT_EQ(first.bytes, 4u);  // Took exactly the free capacity.
  EXPECT_EQ(client->write("xyz").status, IoStatus::kWouldBlock);

  // Draining frees capacity; the writer can continue.
  EXPECT_EQ(read_all(*server), "0123");
  const IoResult second = client->write("456789");
  EXPECT_EQ(second.status, IoStatus::kOk);
  EXPECT_EQ(second.bytes, 4u);
}

TEST(ServeTransport, ReadChunkCapTearsStreamIntoSingleBytes) {
  MemoryPipeOptions options;
  options.max_read_chunk = 1;
  auto [client, server] = make_memory_pair(options);
  ASSERT_EQ(client->write("abc").status, IoStatus::kOk);

  std::string got;
  char byte = 0;
  for (int i = 0; i < 3; ++i) {
    const IoResult result = server->read(&byte, sizeof byte * 16);
    ASSERT_EQ(result.status, IoStatus::kOk);
    ASSERT_EQ(result.bytes, 1u);  // Capped regardless of the caller's max.
    got.push_back(byte);
  }
  EXPECT_EQ(got, "abc");
  EXPECT_EQ(server->read(&byte, 1).status, IoStatus::kWouldBlock);
}

TEST(ServeTransport, CloseDrainsBufferedBytesThenReportsClosed) {
  auto [client, server] = make_memory_pair();
  ASSERT_EQ(client->write("tail").status, IoStatus::kOk);
  client->close();

  EXPECT_EQ(read_all(*server), "tail");
  char byte = 0;
  EXPECT_EQ(server->read(&byte, 1).status, IoStatus::kClosed);
}

TEST(ServeTransport, WriteAfterPeerCloseReportsClosed) {
  auto [client, server] = make_memory_pair();
  server->close();
  EXPECT_EQ(client->write("x").status, IoStatus::kClosed);
}

TEST(ServeTransport, WaitReadableParksUntilPeerWrites) {
  auto [client, server] = make_memory_pair();
  std::thread writer{[&client] {
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    ASSERT_EQ(client->write("late").status, IoStatus::kOk);
  }};
  server->wait_readable();  // Must return once bytes (or close) arrive.
  writer.join();
  EXPECT_EQ(read_all(*server), "late");
}

TEST(ServeTransport, WaitWritableParksUntilPeerDrains) {
  MemoryPipeOptions options;
  options.capacity = 2;
  auto [client, server] = make_memory_pair(options);
  ASSERT_EQ(client->write("ab").bytes, 2u);
  std::thread reader{[&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    char drain[2];
    ASSERT_EQ(server->read(drain, sizeof drain).status, IoStatus::kOk);
  }};
  client->wait_writable();
  reader.join();
  EXPECT_EQ(client->write("cd").status, IoStatus::kOk);
}

}  // namespace
}  // namespace cloudrepro::serve
