#include <gtest/gtest.h>

#include <sstream>

#include "measure/patterns.h"
#include "measure/trace.h"

namespace cloudrepro::measure {
namespace {

TEST(PatternsTest, CanonicalThree) {
  const auto patterns = canonical_patterns();
  ASSERT_EQ(patterns.size(), 3u);
  EXPECT_EQ(patterns[0].name, "full-speed");
  EXPECT_EQ(patterns[1].name, "10-30");
  EXPECT_EQ(patterns[2].name, "5-30");
}

TEST(PatternsTest, FullSpeedIsContinuous) {
  EXPECT_TRUE(full_speed().continuous());
  EXPECT_DOUBLE_EQ(full_speed().duty_cycle(), 1.0);
}

TEST(PatternsTest, OnOffDutyCycles) {
  EXPECT_FALSE(pattern_10_30().continuous());
  EXPECT_DOUBLE_EQ(pattern_10_30().duty_cycle(), 0.25);
  EXPECT_DOUBLE_EQ(pattern_5_30().duty_cycle(), 5.0 / 35.0);
}

TEST(TraceTest, TotalAndCumulative) {
  Trace t;
  t.samples = {{10.0, 1.0, 10.0, 0.0}, {20.0, 2.0, 20.0, 5.0}, {30.0, 3.0, 30.0, 0.0}};
  EXPECT_DOUBLE_EQ(t.total_gbit(), 60.0);
  const auto cum = t.cumulative_terabytes();
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_DOUBLE_EQ(cum[0], 10.0 / 8.0 / 1000.0);
  EXPECT_DOUBLE_EQ(cum[2], 60.0 / 8.0 / 1000.0);
}

TEST(TraceTest, BandwidthVectors) {
  Trace t;
  t.samples = {{10.0, 1.5, 15.0, 2.0}, {20.0, 2.5, 25.0, 3.0}};
  EXPECT_EQ(t.bandwidths(), (std::vector<double>{1.5, 2.5}));
  EXPECT_EQ(t.retransmissions(), (std::vector<double>{2.0, 3.0}));
}

TEST(TraceTest, SummaryAndBox) {
  Trace t;
  for (int i = 1; i <= 100; ++i) {
    t.samples.push_back({10.0 * i, static_cast<double>(i), 10.0 * i, 0.0});
  }
  const auto s = t.bandwidth_summary();
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  const auto b = t.bandwidth_box();
  EXPECT_LT(b.p1, b.p99);
}

TEST(TraceTest, CsvFormat) {
  Trace t;
  t.samples = {{10.0, 1.0, 10.0, 3.0}};
  std::ostringstream ss;
  t.write_csv(ss);
  EXPECT_EQ(ss.str(), "t_s,bandwidth_gbps,transferred_gbit,retransmissions\n10,1,10,3\n");
}

}  // namespace
}  // namespace cloudrepro::measure
