#include "measure/bucket_probe.h"

#include <gtest/gtest.h>

#include "simnet/qos.h"

namespace cloudrepro::measure {
namespace {

BucketProbeOptions fast_probe() {
  BucketProbeOptions o;
  o.max_probe_s = 3600.0;
  o.rest_s = 300.0;
  return o;
}

TEST(BucketProbeTest, IdentifiesC5XlargeParameters) {
  stats::Rng rng{1};
  const auto r = identify_token_bucket(cloud::ec2_c5_xlarge(), fast_probe(), rng);
  ASSERT_TRUE(r.bucket_detected);
  // Section 3.3: 10 Gbps high, ~1 Gbps low, ~10 minutes to empty,
  // ~1 Gbit/s replenish.
  EXPECT_NEAR(r.high_rate_gbps, 10.0, 1.0);
  EXPECT_NEAR(r.low_rate_gbps, 1.0, 0.3);
  EXPECT_NEAR(r.time_to_empty_s, 600.0, 200.0);
  EXPECT_NEAR(r.replenish_gbps, 1.0, 0.5);
  EXPECT_NEAR(r.inferred_budget_gbit, 5400.0, 1800.0);
}

TEST(BucketProbeTest, NoBucketOnGce) {
  stats::Rng rng{2};
  BucketProbeOptions o = fast_probe();
  o.max_probe_s = 1200.0;
  const auto r = identify_token_bucket(cloud::gce_8core(), o, rng);
  EXPECT_FALSE(r.bucket_detected);
  EXPECT_NEAR(r.high_rate_gbps, 16.0, 1.0);
  EXPECT_DOUBLE_EQ(r.high_rate_gbps, r.low_rate_gbps);
}

TEST(BucketProbeTest, NoBucketOnHpcCloud) {
  stats::Rng rng{3};
  BucketProbeOptions o = fast_probe();
  o.max_probe_s = 1200.0;
  const auto r = identify_token_bucket(cloud::hpccloud_8core(), o, rng);
  EXPECT_FALSE(r.bucket_detected);
  EXPECT_GT(r.high_rate_gbps, 9.0);
}

TEST(BucketProbeTest, BiggerInstancesHaveBiggerBuckets) {
  // Figure 11's monotone trend across the c5 family.
  stats::Rng rng{4};
  double prev_tte = 0.0;
  double prev_low = 0.0;
  for (const char* name : {"c5.large", "c5.xlarge", "c5.2xlarge"}) {
    cloud::CloudProfile profile{
        cloud::find_instance(cloud::Provider::kAmazonEc2, name)};
    BucketProbeOptions o = fast_probe();
    o.max_probe_s = 4.0 * 3600.0;
    const auto r = identify_token_bucket(profile, o, rng);
    ASSERT_TRUE(r.bucket_detected) << name;
    EXPECT_GT(r.time_to_empty_s, prev_tte) << name;
    EXPECT_GT(r.low_rate_gbps, prev_low) << name;
    prev_tte = r.time_to_empty_s;
    prev_low = r.low_rate_gbps;
  }
}

TEST(BucketProbeTest, RepeatedProbesScatter) {
  // Figure 11: parameters are "not always consistent for multiple
  // incarnations" — repeated identifications of the same type differ.
  stats::Rng rng{5};
  const auto profile = cloud::ec2_c5_xlarge();
  double min_tte = 1e18, max_tte = 0.0;
  for (int i = 0; i < 5; ++i) {
    const auto r = identify_token_bucket(profile, fast_probe(), rng);
    ASSERT_TRUE(r.bucket_detected);
    min_tte = std::min(min_tte, r.time_to_empty_s);
    max_tte = std::max(max_tte, r.time_to_empty_s);
  }
  EXPECT_GT(max_tte, min_tte);
}

TEST(BucketProbeTest, WorksOnExplicitVm) {
  stats::Rng rng{6};
  auto vm = cloud::ec2_c5_xlarge().create_vm(rng);
  const auto r = identify_token_bucket(vm, fast_probe(), rng);
  EXPECT_TRUE(r.bucket_detected);
}

}  // namespace
}  // namespace cloudrepro::measure
