#include "measure/iperf.h"

#include <gtest/gtest.h>

#include "measure/patterns.h"
#include "stats/descriptive.h"
#include "stats/timeseries.h"

namespace cloudrepro::measure {
namespace {

BandwidthProbeOptions hour_probe() {
  BandwidthProbeOptions o;
  o.duration_s = 3600.0;
  return o;
}

TEST(BandwidthProbeTest, SampleCountMatchesDuration) {
  stats::Rng rng{1};
  const auto trace =
      run_bandwidth_probe(cloud::hpccloud_8core(), full_speed(), hour_probe(), rng);
  // 3600 s at 10-s samples.
  EXPECT_EQ(trace.samples.size(), 360u);
  EXPECT_EQ(trace.pattern, "full-speed");
  EXPECT_EQ(trace.cloud, "HPCCloud");
}

TEST(BandwidthProbeTest, OnOffEmitsOneSamplePerBurst) {
  stats::Rng rng{2};
  const auto trace =
      run_bandwidth_probe(cloud::hpccloud_8core(), pattern_10_30(), hour_probe(), rng);
  // One 10-s burst per 40-s cycle.
  EXPECT_EQ(trace.samples.size(), 90u);
}

TEST(BandwidthProbeTest, HpcCloudBandwidthInMeasuredRange) {
  stats::Rng rng{3};
  const auto trace =
      run_bandwidth_probe(cloud::hpccloud_8core(), full_speed(), hour_probe(), rng);
  const auto s = trace.bandwidth_summary();
  EXPECT_GE(s.min, 7.0);
  EXPECT_LE(s.max, 10.5);
  EXPECT_GT(s.coefficient_of_variation, 0.01);  // Visibly variable (F3.2).
}

TEST(BandwidthProbeTest, Ec2FullSpeedThrottlesAfterMinutes) {
  stats::Rng rng{4};
  const auto trace =
      run_bandwidth_probe(cloud::ec2_c5_xlarge(), full_speed(), hour_probe(), rng);
  const auto bw = trace.bandwidths();
  // Early samples at ~10 Gbps, late samples at ~1 Gbps (Figure 7 behaviour).
  EXPECT_GT(bw.front(), 8.0);
  EXPECT_LT(bw.back(), 1.5);
}

TEST(BandwidthProbeTest, Ec2PatternOrderingMatchesFigure6) {
  // Figure 6: heavier streams achieve LESS performance: full-speed <<
  // 10-30 << 5-30 in steady state.
  stats::Rng rng{5};
  BandwidthProbeOptions probe;
  probe.duration_s = 24.0 * 3600.0;

  const auto full = run_bandwidth_probe(cloud::ec2_c5_xlarge(), full_speed(), probe, rng);
  const auto t1030 = run_bandwidth_probe(cloud::ec2_c5_xlarge(), pattern_10_30(), probe, rng);
  const auto t530 = run_bandwidth_probe(cloud::ec2_c5_xlarge(), pattern_5_30(), probe, rng);

  const double m_full = full.bandwidth_summary().median;
  const double m_1030 = t1030.bandwidth_summary().median;
  const double m_530 = t530.bandwidth_summary().median;

  EXPECT_LT(m_full, m_1030);
  EXPECT_LT(m_1030, m_530);
  // Approximate 3x-4x and 7x slowdown factors.
  EXPECT_NEAR(m_1030 / m_full, 3.5, 1.5);
  EXPECT_NEAR(m_530 / m_full, 7.0, 2.0);
}

TEST(BandwidthProbeTest, GcePatternOrderingIsOpposite) {
  // Figure 5: on GCE longer streams achieve better, more stable performance.
  stats::Rng rng{6};
  BandwidthProbeOptions probe;
  probe.duration_s = 6.0 * 3600.0;

  const auto full = run_bandwidth_probe(cloud::gce_8core(), full_speed(), probe, rng);
  const auto t530 = run_bandwidth_probe(cloud::gce_8core(), pattern_5_30(), probe, rng);

  EXPECT_GT(full.bandwidth_summary().median, t530.bandwidth_summary().median);
  // 5-30 has the long tail: its 1st percentile dips far below full-speed's.
  EXPECT_LT(t530.bandwidth_box().p1, full.bandwidth_box().p1 - 1.0);
}

TEST(BandwidthProbeTest, GceRetransmissionsCommonEc2Negligible) {
  // Figure 9: retransmissions are common in Google Cloud (~2%), negligible
  // on EC2 and HPCCloud.
  stats::Rng rng{7};
  const auto gce = run_bandwidth_probe(cloud::gce_8core(), full_speed(), hour_probe(), rng);
  const auto ec2 = run_bandwidth_probe(cloud::ec2_c5_xlarge(), full_speed(), hour_probe(), rng);
  const auto hpc = run_bandwidth_probe(cloud::hpccloud_8core(), full_speed(), hour_probe(), rng);

  const double gce_total = stats::mean(gce.retransmissions());
  const double ec2_total = stats::mean(ec2.retransmissions());
  const double hpc_total = stats::mean(hpc.retransmissions());
  EXPECT_GT(gce_total, 100.0 * std::max(ec2_total, 1.0));
  EXPECT_LT(hpc_total, 10.0);
}

TEST(BandwidthProbeTest, UsedVmStateCarriesAcrossProbes) {
  // Figure 19's mechanism: a second probe on the same VM starts where the
  // first left the bucket.
  stats::Rng rng{8};
  const auto profile = cloud::ec2_c5_xlarge();
  auto vm = profile.create_vm(rng);

  BandwidthProbeOptions probe;
  probe.duration_s = 900.0;  // Drains the bucket past the throttle point.
  const auto first = run_bandwidth_probe(vm, full_speed(), probe, rng);
  EXPECT_GT(first.bandwidths().front(), 8.0);

  probe.duration_s = 60.0;
  const auto second = run_bandwidth_probe(vm, full_speed(), probe, rng);
  // The bucket is empty: the second probe never sees the high rate.
  EXPECT_LT(second.bandwidth_summary().max, 2.0);
}

TEST(BandwidthProbeTest, TransferredVolumeConsistentWithBandwidth) {
  stats::Rng rng{9};
  const auto trace =
      run_bandwidth_probe(cloud::hpccloud_8core(), full_speed(), hour_probe(), rng);
  for (const auto& s : trace.samples) {
    EXPECT_NEAR(s.transferred_gbit, s.bandwidth_gbps * 10.0, 1e-6);
  }
}

TEST(BandwidthProbeTest, SampleToSampleVariabilitySignificant) {
  // Section 3.1: HPCCloud varies up to ~33% between consecutive 10-s
  // samples.
  stats::Rng rng{10};
  const auto trace =
      run_bandwidth_probe(cloud::hpccloud_8core(), full_speed(), hour_probe(), rng);
  const double max_change =
      stats::max_sample_to_sample_variability(trace.bandwidths());
  EXPECT_GT(max_change, 0.08);
  EXPECT_LT(max_change, 0.45);
}

TEST(BandwidthProbeTest, Validation) {
  stats::Rng rng{11};
  auto vm = cloud::hpccloud_8core().create_vm(rng);
  BandwidthProbeOptions bad;
  bad.duration_s = 0.0;
  EXPECT_THROW(run_bandwidth_probe(vm, full_speed(), bad, rng), std::invalid_argument);
  bad.duration_s = 10.0;
  bad.sample_interval_s = 0.0;
  EXPECT_THROW(run_bandwidth_probe(vm, full_speed(), bad, rng), std::invalid_argument);
  cloud::VmNetwork no_policy;
  BandwidthProbeOptions ok;
  EXPECT_THROW(run_bandwidth_probe(no_policy, full_speed(), ok, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace cloudrepro::measure
