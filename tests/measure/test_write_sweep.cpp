#include "measure/write_sweep.h"

#include <gtest/gtest.h>

namespace cloudrepro::measure {
namespace {

WriteSweepOptions quick_sweep() {
  WriteSweepOptions o;
  o.stream_duration_s = 1.0;
  return o;
}

TEST(WriteSweepTest, CoversRequestedSizes) {
  stats::Rng rng{1};
  WriteSweepOptions o = quick_sweep();
  o.write_sizes = {4096.0, 65536.0};
  const auto pts = run_write_sweep(cloud::ec2_c5_xlarge(), o, rng);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].write_bytes, 4096.0);
  EXPECT_DOUBLE_EQ(pts[1].write_bytes, 65536.0);
}

TEST(WriteSweepTest, Ec2SegmentsCapAtNineK) {
  // Figure 12: "On EC2, the size of a single packet tops out at the MTU of
  // 9K".
  stats::Rng rng{2};
  const auto pts = run_write_sweep(cloud::ec2_c5_xlarge(), quick_sweep(), rng);
  for (const auto& p : pts) {
    EXPECT_LE(p.segment_bytes, 9000.0);
  }
}

TEST(WriteSweepTest, GceSegmentsReach64K) {
  stats::Rng rng{3};
  const auto pts = run_write_sweep(cloud::gce_8core(), quick_sweep(), rng);
  double max_segment = 0.0;
  for (const auto& p : pts) max_segment = std::max(max_segment, p.segment_bytes);
  EXPECT_DOUBLE_EQ(max_segment, 65536.0);
}

TEST(WriteSweepTest, GceLatencyGrowsWithWriteSize) {
  // Figure 12's central claim for GCE: perceived latency climbs from
  // ~2.3 ms at 9K writes to ~10 ms at 128K.
  stats::Rng rng{4};
  WriteSweepOptions o;
  o.stream_duration_s = 2.0;
  o.write_sizes = {9000.0, 131072.0};
  const auto pts = run_write_sweep(cloud::gce_8core(), o, rng);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_NEAR(pts[0].mean_rtt_ms, 2.3, 1.5);
  EXPECT_GT(pts[1].mean_rtt_ms, 2.0 * pts[0].mean_rtt_ms);
}

TEST(WriteSweepTest, GceRetransmissionsAppearOnlyAtLargeWrites) {
  stats::Rng rng{5};
  WriteSweepOptions o;
  o.stream_duration_s = 2.0;
  o.write_sizes = {9000.0, 131072.0};
  const auto pts = run_write_sweep(cloud::gce_8core(), o, rng);
  EXPECT_LT(pts[0].retransmission_rate, 1e-3);  // Near-zero at 9K.
  EXPECT_GT(pts[1].retransmission_rate, 5e-3);  // ~2% at 128K.
}

TEST(WriteSweepTest, Ec2LatencyStaysSubMillisecondAcrossSizes) {
  stats::Rng rng{6};
  const auto pts = run_write_sweep(cloud::ec2_c5_xlarge(), quick_sweep(), rng);
  for (const auto& p : pts) {
    EXPECT_LT(p.mean_rtt_ms, 1.5) << p.write_bytes;
    EXPECT_LT(p.retransmission_rate, 1e-3) << p.write_bytes;
  }
}

TEST(WriteSweepTest, BandwidthRisesWithWriteSize) {
  stats::Rng rng{7};
  WriteSweepOptions o;
  o.stream_duration_s = 1.0;
  o.write_sizes = {1024.0, 9000.0};
  const auto pts = run_write_sweep(cloud::ec2_c5_xlarge(), o, rng);
  EXPECT_LT(pts[0].bandwidth_gbps, pts[1].bandwidth_gbps);
}

}  // namespace
}  // namespace cloudrepro::measure
