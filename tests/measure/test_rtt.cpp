#include "measure/rtt.h"

#include <gtest/gtest.h>

namespace cloudrepro::measure {
namespace {

TEST(RttProbeTest, GceLatencyMillisecondsWithCap) {
  // Figure 8: GCE latency is in the order of milliseconds, upper limit
  // around 10 ms for typical samples.
  stats::Rng rng{1};
  RttProbeOptions opt;
  opt.duration_s = 3.0;
  opt.write_bytes = 9000.0;  // The "clean" configuration.
  const auto r = run_rtt_probe(cloud::gce_8core(), opt, rng);
  EXPECT_GT(r.analysis.median_rtt_ms, 1.0);
  EXPECT_LT(r.analysis.median_rtt_ms, 10.0);
  // Paper: with 9K writes GCE shows an average RTT of about 2.3 ms.
  EXPECT_NEAR(r.analysis.mean_rtt_ms, 2.3, 1.5);
}

TEST(RttProbeTest, Ec2LatencySubMillisecond) {
  // Figure 7 top: "generally exhibits faster sub-millisecond latency under
  // typical conditions".
  stats::Rng rng{2};
  RttProbeOptions opt;
  opt.duration_s = 3.0;
  const auto r = run_rtt_probe(cloud::ec2_c5_xlarge(), opt, rng);
  EXPECT_LT(r.analysis.median_rtt_ms, 1.0);
}

TEST(RttProbeTest, BaseLatencyDiffersByAlmostTenX) {
  // F3.3: base latency levels vary by a factor of almost 10x between clouds.
  stats::Rng rng{3};
  RttProbeOptions opt;
  opt.duration_s = 2.0;
  opt.write_bytes = 4096.0;
  const auto ec2 = run_rtt_probe(cloud::ec2_c5_xlarge(), opt, rng);
  const auto gce = run_rtt_probe(cloud::gce_8core(), opt, rng);
  EXPECT_GT(gce.analysis.median_rtt_ms / ec2.analysis.median_rtt_ms, 5.0);
}

TEST(RttProbeTest, ThrottledVmShowsLatencySpike) {
  // Figure 7 bottom: latency behaviour when the bandwidth drop occurs.
  stats::Rng rng{4};
  auto vm = cloud::ec2_c5_xlarge().create_vm(rng);
  // Drain the bucket first.
  vm.egress->advance(1000.0, 10.0);
  ASSERT_LT(vm.egress->allowed_rate(), 2.0);

  RttProbeOptions opt;
  opt.duration_s = 2.0;
  const auto throttled = run_rtt_probe(vm, opt, rng);
  EXPECT_GT(throttled.analysis.median_rtt_ms, 1.0);  // Now milliseconds.
}

TEST(RttProbeTest, AnalysisFieldsConsistent) {
  stats::Rng rng{5};
  RttProbeOptions opt;
  opt.duration_s = 1.0;
  const auto r = run_rtt_probe(cloud::gce_8core(), opt, rng);
  EXPECT_EQ(r.analysis.packet_count, r.capture.segments_sent);
  EXPECT_EQ(r.analysis.retransmissions, r.capture.retransmissions);
  EXPECT_LE(r.analysis.median_rtt_ms, r.analysis.p99_rtt_ms);
  EXPECT_LE(r.analysis.p99_rtt_ms, r.analysis.max_rtt_ms);
  EXPECT_GT(r.analysis.mean_bandwidth_gbps, 0.0);
}

TEST(RttProbeTest, AnalyzeEmptyCapture) {
  const simnet::LatencyTrace empty;
  const auto a = analyze_capture(empty);
  EXPECT_EQ(a.packet_count, 0u);
  EXPECT_DOUBLE_EQ(a.mean_rtt_ms, 0.0);
  EXPECT_DOUBLE_EQ(a.retransmission_rate, 0.0);
}

}  // namespace
}  // namespace cloudrepro::measure
