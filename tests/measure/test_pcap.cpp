#include "measure/pcap.h"

#include <gtest/gtest.h>

#include "cloud/instances.h"
#include "simnet/qos.h"

namespace cloudrepro::measure {
namespace {

TEST(PcapTest, CaptureIsTimeOrdered) {
  stats::Rng rng{1};
  simnet::FixedRateQos qos{10.0};
  const auto cap = capture_stream(qos, simnet::ec2_vnic(), 0.5, 9000.0, rng);
  ASSERT_GT(cap.packets.size(), 100u);
  for (std::size_t i = 1; i < cap.packets.size(); ++i) {
    EXPECT_GE(cap.packets[i].timestamp_s, cap.packets[i - 1].timestamp_s);
  }
}

TEST(PcapTest, SequenceNumbersAdvanceBySegmentLength) {
  stats::Rng rng{2};
  simnet::FixedRateQos qos{10.0};
  const auto cap = capture_stream(qos, simnet::ec2_vnic(), 0.2, 9000.0, rng);
  std::uint64_t prev_seq = 0;
  for (const auto& p : cap.packets) {
    if (p.is_ack) continue;
    if (p.seq > prev_seq) {
      if (prev_seq != 0) {
        EXPECT_EQ(p.seq, prev_seq + 9000);
      }
      prev_seq = p.seq;
    }
  }
}

TEST(PcapTest, EveryDataSegmentEventuallyAcked) {
  stats::Rng rng{3};
  simnet::FixedRateQos qos{8.0};
  const auto cap = capture_stream(qos, simnet::gce_vnic(), 0.5, 9000.0, rng);
  std::uint64_t max_seq_end = 0;
  std::uint64_t max_ack = 0;
  for (const auto& p : cap.packets) {
    if (p.is_ack) {
      max_ack = std::max(max_ack, p.ack);
    } else {
      max_seq_end = std::max(max_seq_end, p.seq + p.length);
    }
  }
  EXPECT_EQ(max_ack, max_seq_end);
}

TEST(PcapTest, WiresharkMatchesGroundTruthRetransmissions) {
  // The offline analysis must find the retransmissions from duplicate
  // sequence numbers alone — at GCE's ~2% loss with TSO segments.
  stats::Rng rng{4};
  simnet::FixedRateQos qos{8.0};
  const auto cap = capture_stream(qos, simnet::gce_vnic(), 3.0, 128.0 * 1024.0, rng);
  const auto a = wireshark_analysis(cap);
  EXPECT_GT(a.retransmissions, 20u);
  const double rate =
      static_cast<double>(a.retransmissions) / static_cast<double>(a.data_packets);
  EXPECT_NEAR(rate, 0.021, 0.012);
}

TEST(PcapTest, CleanPathHasNoRetransmissions) {
  stats::Rng rng{5};
  simnet::FixedRateQos qos{10.0};
  const auto cap = capture_stream(qos, simnet::ec2_vnic(), 1.0, 9000.0, rng);
  const auto a = wireshark_analysis(cap);
  EXPECT_LT(a.retransmissions, 3u);
  EXPECT_EQ(a.data_packets, a.ack_packets + a.retransmissions);
}

TEST(PcapTest, KarnsRuleExcludesRetransmittedSegments) {
  stats::Rng rng{6};
  simnet::FixedRateQos qos{8.0};
  const auto cap = capture_stream(qos, simnet::gce_vnic(), 2.0, 128.0 * 1024.0, rng);
  const auto a = wireshark_analysis(cap);
  // RTT samples = acked unique segments minus the retransmitted ones.
  EXPECT_EQ(a.rtts_s.size() + a.retransmissions,
            a.data_packets - a.retransmissions);
  // Karn-filtered RTTs exclude the RTO-inflated outliers: p99 stays within
  // the queueing regime instead of the ~200 ms RTO scale.
  EXPECT_LT(a.p99_rtt_ms, 50.0);
}

TEST(PcapTest, RttsMatchPaperScalePerCloud) {
  stats::Rng rng{7};
  simnet::FixedRateQos ec2_rate{10.0};
  const auto ec2 =
      wireshark_analysis(capture_stream(ec2_rate, simnet::ec2_vnic(), 2.0, 9000.0, rng));
  EXPECT_LT(ec2.median_rtt_ms, 1.0);  // Sub-millisecond.

  simnet::FixedRateQos gce_rate{8.0};
  const auto gce =
      wireshark_analysis(capture_stream(gce_rate, simnet::gce_vnic(), 2.0, 9000.0, rng));
  EXPECT_GT(gce.median_rtt_ms, 1.0);  // Millisecond scale.
  EXPECT_LT(gce.median_rtt_ms, 10.0);
}

TEST(PcapTest, GoodputTimelineTracksAckFront) {
  stats::Rng rng{8};
  simnet::FixedRateQos qos{10.0};
  const auto cap = capture_stream(qos, simnet::ec2_vnic(), 3.0, 9000.0, rng);
  const auto a = wireshark_analysis(cap, 0.5);
  ASSERT_GE(a.goodput_gbps.size(), 5u);
  // Steady stream: every full interval carries roughly the link rate.
  for (std::size_t i = 1; i + 1 < a.goodput_gbps.size(); ++i) {
    EXPECT_NEAR(a.goodput_gbps[i], 8.3, 1.5) << "interval " << i;
  }
}

TEST(PcapTest, ThrottledStreamVisibleInCapture) {
  stats::Rng rng{9};
  simnet::TokenBucketConfig tb;
  tb.capacity_gbit = 20.0;
  tb.initial_gbit = 20.0;
  tb.high_rate_gbps = 10.0;
  tb.low_rate_gbps = 1.0;
  tb.replenish_gbps = 1.0;
  simnet::TokenBucketQos qos{tb};
  const auto cap = capture_stream(qos, simnet::ec2_vnic(), 8.0, 9000.0, rng);
  const auto a = wireshark_analysis(cap, 1.0);
  ASSERT_GE(a.goodput_gbps.size(), 6u);
  EXPECT_GT(a.goodput_gbps.front(), 6.0);
  EXPECT_LT(a.goodput_gbps.back(), 1.5);
}

TEST(PcapTest, Validation) {
  stats::Rng rng{10};
  simnet::FixedRateQos qos{10.0};
  EXPECT_THROW(capture_stream(qos, simnet::ec2_vnic(), 0.0, 9000.0, rng),
               std::invalid_argument);
  EXPECT_THROW(capture_stream(qos, simnet::ec2_vnic(), 1.0, 0.0, rng),
               std::invalid_argument);
  PacketCapture empty;
  EXPECT_THROW(wireshark_analysis(empty, 0.0), std::invalid_argument);
  const auto a = wireshark_analysis(empty);
  EXPECT_EQ(a.data_packets, 0u);
  EXPECT_DOUBLE_EQ(a.mean_rtt_ms, 0.0);
}

}  // namespace
}  // namespace cloudrepro::measure
