#include "measure/dataset.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace cloudrepro::measure {
namespace {

namespace fs = std::filesystem;

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case in its own process concurrently: the directory
    // must be unique per test or parallel cases stomp each other.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string{"cloudrepro_dataset_"} + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

DatasetOptions tiny_campaign() {
  DatasetOptions options;
  options.duration_s = 600.0;
  options.cells = {
      {cloud::Provider::kAmazonEc2, "c5.xlarge", full_speed()},
      {cloud::Provider::kHpcCloud, "8-core", pattern_10_30()},
  };
  return options;
}

TEST_F(DatasetTest, WritesOneCsvPerCellPlusManifest) {
  const auto files = generate_dataset(dir_, tiny_campaign());
  ASSERT_EQ(files.size(), 2u);
  for (const auto& f : files) {
    EXPECT_TRUE(fs::exists(f.path)) << f.path;
    EXPECT_GT(f.samples, 0u);
    EXPECT_GT(f.total_gbit, 0.0);
  }
  EXPECT_TRUE(fs::exists(dir_ / "MANIFEST.csv"));
}

TEST_F(DatasetTest, ManifestListsEveryFile) {
  const auto files = generate_dataset(dir_, tiny_campaign());
  std::ifstream manifest{dir_ / "MANIFEST.csv"};
  std::string content{std::istreambuf_iterator<char>{manifest},
                      std::istreambuf_iterator<char>{}};
  EXPECT_NE(content.find("file,cloud,instance,pattern"), std::string::npos);
  for (const auto& f : files) {
    EXPECT_NE(content.find(f.path.filename().string()), std::string::npos);
  }
}

TEST_F(DatasetTest, CsvRoundTrips) {
  const auto files = generate_dataset(dir_, tiny_campaign());
  const auto trace = read_trace_csv(files[0].path);
  EXPECT_EQ(trace.samples.size(), files[0].samples);
  EXPECT_NEAR(trace.total_gbit(), files[0].total_gbit, 1e-3 * files[0].total_gbit);
  EXPECT_NEAR(trace.bandwidth_summary().median, files[0].median_gbps,
              1e-3 * files[0].median_gbps + 1e-6);
}

TEST_F(DatasetTest, DeterministicAcrossRuns) {
  const auto a = generate_dataset(dir_, tiny_campaign());
  fs::remove_all(dir_);
  const auto b = generate_dataset(dir_, tiny_campaign());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].total_gbit, b[i].total_gbit);
    EXPECT_DOUBLE_EQ(a[i].median_gbps, b[i].median_gbps);
  }
}

TEST_F(DatasetTest, DefaultCampaignCoversStarredCells) {
  const auto campaign = default_campaign();
  EXPECT_EQ(campaign.cells.size(), 9u);  // 3 clouds x 3 patterns.
}

TEST_F(DatasetTest, EmptyCampaignThrows) {
  DatasetOptions options;
  EXPECT_THROW(generate_dataset(dir_, options), std::invalid_argument);
}

TEST_F(DatasetTest, ReadRejectsMalformedFiles) {
  fs::create_directories(dir_);
  const auto bad = dir_ / "bad.csv";
  {
    std::ofstream out{bad};
    out << "not,a,trace,header\n";
  }
  EXPECT_THROW(read_trace_csv(bad), std::runtime_error);
  EXPECT_THROW(read_trace_csv(dir_ / "missing.csv"), std::runtime_error);
}

}  // namespace
}  // namespace cloudrepro::measure
