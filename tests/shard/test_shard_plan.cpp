// ShardPlan under adversarial merges: duplicate deliveries from reassigned
// workers, torn worker tails, out-of-order arrival, conflicting records.
// Every outcome must be either a byte-identical canonical merge or a clean
// typed ShardMergeError with nothing committed — never silent divergence.

#include "shard/plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/journal.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "shard/runner.h"

namespace cloudrepro::shard {
namespace {

using core::JournalRecord;

scenario::ScenarioSpec tiny_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "shard-plan-test";
  spec.workloads = {{"hibench", "TS", std::nullopt}, {"hibench", "KM", std::nullopt}};
  spec.budgets = {5000.0, 10.0};
  spec.repetitions = 3;
  return spec;
}

scenario::ScenarioSpec adaptive_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "shard-plan-adaptive";
  spec.workloads = {{"hibench", "TS", std::nullopt}};
  spec.budgets = {5000.0};
  spec.engine.machine_noise_cv = 0.05;
  spec.repetitions = 40;  // Cap; the stopping rule decides.
  spec.confirm.enabled = true;
  spec.confirm.adaptive = true;
  spec.confirm.error_bound = 0.10;
  spec.confirm.min_repetitions = 8;
  return spec;
}

/// A fully-executed campaign as per-cell record lines, via the worker-side
/// runner — the same bytes a real worker would push.
struct Executed {
  std::vector<core::CampaignCell> cells;
  core::CampaignOptions options;
  std::vector<std::vector<std::string>> lines;  ///< Per cell.
};

Executed execute_all(const scenario::ScenarioSpec& spec) {
  Executed out;
  out.cells = scenario::build_cells(spec);
  out.options = scenario::campaign_options(spec);
  out.lines.resize(out.cells.size());
  for (std::size_t cell = 0; cell < out.cells.size(); ++cell) {
    CellTask task;
    task.cell = cell;
    const CellTaskResult result =
        run_cell_task(out.cells, out.options, spec.seed, task);
    EXPECT_TRUE(result.complete);
    out.lines[cell] = result.lines;
  }
  return out;
}

TEST(ShardOf, DeterministicAndInRange) {
  std::set<std::size_t> owners;
  for (std::size_t cell = 0; cell < 64; ++cell) {
    const std::size_t owner = shard_of("abc123-s7-v2", cell, 4);
    EXPECT_LT(owner, 4u);
    EXPECT_EQ(owner, shard_of("abc123-s7-v2", cell, 4));  // Stable.
    owners.insert(owner);
  }
  // 64 cells over 4 shards: every shard owns something (the hash spreads).
  EXPECT_EQ(owners.size(), 4u);
  // Different entry keys shuffle the partition.
  bool differs = false;
  for (std::size_t cell = 0; cell < 64 && !differs; ++cell) {
    differs = shard_of("abc123-s7-v2", cell, 4) != shard_of("other-s7-v2", cell, 4);
  }
  EXPECT_TRUE(differs);
  EXPECT_EQ(shard_of("k", 3, 0), 0u);  // Degenerate shard count.
}

TEST(ShardPlan, MergeMatchesPushOrderIndependence) {
  const auto spec = tiny_spec();
  auto executed = execute_all(spec);

  // Reference: in-order pushes.
  ShardPlan reference{executed.cells, executed.options, spec.seed};
  for (std::size_t cell = 0; cell < executed.cells.size(); ++cell) {
    const auto outcome = reference.push(cell, executed.lines[cell]);
    EXPECT_EQ(outcome.accepted, executed.lines[cell].size());
    EXPECT_TRUE(outcome.cell_complete);
  }
  ASSERT_TRUE(reference.complete());
  const std::string merged = reference.merge();

  // Adversarial arrival: cells in reverse, every cell's lines shuffled, each
  // line its own push. The merge must not care.
  std::mt19937 shuffle_rng{42};
  ShardPlan scrambled{executed.cells, executed.options, spec.seed};
  for (std::size_t cell = executed.cells.size(); cell-- > 0;) {
    auto lines = executed.lines[cell];
    std::shuffle(lines.begin(), lines.end(), shuffle_rng);
    for (const auto& line : lines) scrambled.push(cell, {line});
  }
  ASSERT_TRUE(scrambled.complete());
  EXPECT_EQ(scrambled.merge(), merged);
}

TEST(ShardPlan, DuplicateRecordsFromReassignedWorkerAreDiscarded) {
  const auto spec = tiny_spec();
  auto executed = execute_all(spec);
  ShardPlan plan{executed.cells, executed.options, spec.seed};

  // Worker A delivers cell 0 fully, then "dies" before its push is acked;
  // the coordinator reassigns and worker B re-delivers the same cell.
  // Determinism makes B's records byte-identical, so the re-delivery is
  // pure duplicates — exactly-once without any protocol machinery.
  const auto first = plan.push(0, executed.lines[0]);
  EXPECT_EQ(first.accepted, executed.lines[0].size());
  const auto replay = plan.push(0, executed.lines[0]);
  EXPECT_EQ(replay.accepted, 0u);
  EXPECT_EQ(replay.duplicates, executed.lines[0].size());
  EXPECT_TRUE(replay.cell_complete);

  for (std::size_t cell = 1; cell < executed.cells.size(); ++cell) {
    plan.push(cell, executed.lines[cell]);
  }
  ASSERT_TRUE(plan.complete());
  // One authoritative copy: per-cell record count equals the repetition cap.
  for (std::size_t cell = 0; cell < executed.cells.size(); ++cell) {
    EXPECT_EQ(plan.cell_records(cell),
              static_cast<std::size_t>(spec.repetitions));
  }
}

TEST(ShardPlan, TornWorkerTailDropsSuffixNeverThrows) {
  const auto spec = tiny_spec();
  auto executed = execute_all(spec);
  ShardPlan plan{executed.cells, executed.options, spec.seed};

  // A worker that died mid-flush ships [good, good, garbled, good]: the
  // valid prefix lands, the garbled line AND everything after it drop (a
  // record after a torn line has no trustworthy provenance).
  auto lines = executed.lines[0];
  ASSERT_GE(lines.size(), 3u);
  std::vector<std::string> torn{lines[0], lines[1]};
  std::string garbled = lines[2];
  garbled[garbled.find("\"crc\":\"") + 8] ^= 1;  // Flip a checksum nibble.
  torn.push_back(garbled);
  torn.push_back(lines[2]);

  const auto outcome = plan.push(0, torn);
  EXPECT_EQ(outcome.accepted, 2u);
  EXPECT_EQ(outcome.dropped, 2u);
  EXPECT_FALSE(outcome.cell_complete);
  EXPECT_EQ(plan.cell_records(0), 2u);

  // The dropped record is simply still pending: resume hands back the
  // surviving prefix and a re-push of the intact line completes the cell.
  EXPECT_EQ(plan.resume_lines(0), (std::vector<std::string>{lines[0], lines[1]}));
  EXPECT_TRUE(plan.push(0, {lines[2]}).cell_complete);
}

TEST(ShardPlan, ConflictingRecordIsTypedErrorWithNothingCommitted) {
  const auto spec = tiny_spec();
  auto executed = execute_all(spec);
  ShardPlan plan{executed.cells, executed.options, spec.seed};
  plan.push(0, {executed.lines[0][0]});

  // Same (cell, rep), different value, *valid* checksum: a corrupt-but-
  // checksummed record or version-skewed worker. Must be a typed error —
  // accepting either value silently would poison the merged journal.
  core::JournalRecord record;
  ASSERT_TRUE(core::parse_journal_line(executed.lines[0][0], record));
  record.value += 1.0;
  const std::string conflicting = core::journal_line(record);

  try {
    plan.push(0, {conflicting, executed.lines[0][1]});
    FAIL() << "conflicting record must throw";
  } catch (const ShardMergeError& error) {
    EXPECT_EQ(error.code(), "conflict");
  }
  // Strong exception safety: the innocent line in the same push did not
  // land either.
  EXPECT_EQ(plan.cell_records(0), 1u);
  // The plan survives; the honest worker finishes the cell.
  EXPECT_TRUE(
      plan.push(0, {executed.lines[0][1], executed.lines[0][2]}).cell_complete);
}

TEST(ShardPlan, RangeAndCellMismatchAreTypedErrors) {
  const auto spec = tiny_spec();
  auto executed = execute_all(spec);
  ShardPlan plan{executed.cells, executed.options, spec.seed};

  try {
    plan.push(executed.cells.size(), {});
    FAIL() << "out-of-range cell must throw";
  } catch (const ShardMergeError& error) {
    EXPECT_EQ(error.code(), "range");
  }

  // A record for cell 1 inside a push addressed to cell 0.
  try {
    plan.push(0, {executed.lines[1][0]});
    FAIL() << "cross-cell record must throw";
  } catch (const ShardMergeError& error) {
    EXPECT_EQ(error.code(), "cell_mismatch");
  }

  // Repetition beyond the cap (valid checksum, impossible index).
  try {
    plan.push(0, {core::journal_line({0, spec.repetitions, 1.0})});
    FAIL() << "beyond-cap repetition must throw";
  } catch (const ShardMergeError& error) {
    EXPECT_EQ(error.code(), "range");
  }

  // Stop records do not exist in non-adaptive campaigns.
  try {
    plan.push(0, {core::journal_line(core::journal_stop_record(0, 2))});
    FAIL() << "stop record in non-adaptive campaign must throw";
  } catch (const ShardMergeError& error) {
    EXPECT_EQ(error.code(), "unexpected_stop");
  }
}

TEST(ShardPlan, MergeBeforeCompletionIsTypedError) {
  const auto spec = tiny_spec();
  auto executed = execute_all(spec);
  ShardPlan plan{executed.cells, executed.options, spec.seed};
  plan.push(0, executed.lines[0]);
  try {
    plan.merge();
    FAIL() << "premature merge must throw";
  } catch (const ShardMergeError& error) {
    EXPECT_EQ(error.code(), "incomplete");
  }
}

TEST(ShardPlan, AdaptiveStopDerivedNotTrusted) {
  const auto spec = adaptive_spec();
  auto executed = execute_all(spec);
  ASSERT_EQ(executed.cells.size(), 1u);
  const auto& lines = executed.lines[0];

  // The worker's final line is the journaled stop record.
  core::JournalRecord last;
  ASSERT_TRUE(core::parse_journal_line(lines.back(), last));
  ASSERT_EQ(last.kind, JournalRecord::Kind::kStop);
  const int stop = last.rep;
  ASSERT_LT(stop, spec.repetitions) << "scenario must stop before its cap";

  // Values alone (stop record torn away) still complete the cell: the plan
  // re-derives the stop point from the value prefix and re-emits the stop
  // record in the merge — byte-identical either way.
  ShardPlan without_stop{executed.cells, executed.options, spec.seed};
  const auto outcome = without_stop.push(
      0, std::vector<std::string>{lines.begin(), lines.end() - 1});
  EXPECT_TRUE(outcome.cell_complete);

  ShardPlan with_stop{executed.cells, executed.options, spec.seed};
  with_stop.push(0, lines);
  EXPECT_EQ(without_stop.merge(), with_stop.merge());

  // A value past the derived stop point is proof of divergence.
  ShardPlan beyond{executed.cells, executed.options, spec.seed};
  try {
    auto poisoned = lines;
    poisoned.back() = core::journal_line({0, stop, 123.0});  // Value at stop.
    beyond.push(0, poisoned);
    FAIL() << "value past the stop point must throw";
  } catch (const ShardMergeError& error) {
    EXPECT_EQ(error.code(), "beyond_stop");
  }

  // A stop record disagreeing with the derived stop point is a conflict.
  ShardPlan lying{executed.cells, executed.options, spec.seed};
  try {
    auto poisoned = lines;
    poisoned.back() =
        core::journal_line(core::journal_stop_record(0, stop + 1));
    lying.push(0, poisoned);
    FAIL() << "disagreeing stop record must throw";
  } catch (const ShardMergeError& error) {
    EXPECT_EQ(error.code(), "conflict");
  }
}

TEST(ShardPlan, ResumeLinesShipExactlyTheKnownPrefix) {
  const auto spec = tiny_spec();
  auto executed = execute_all(spec);
  ShardPlan plan{executed.cells, executed.options, spec.seed};
  EXPECT_TRUE(plan.resume_lines(0).empty());

  plan.push(0, {executed.lines[0][0], executed.lines[0][1]});
  const auto resume = plan.resume_lines(0);
  ASSERT_EQ(resume.size(), 2u);
  EXPECT_EQ(resume[0], executed.lines[0][0]);
  EXPECT_EQ(resume[1], executed.lines[0][1]);

  // A worker resumed from that prefix executes only the remainder and its
  // push completes the cell with no duplicates.
  CellTask task;
  task.cell = 0;
  task.resume_lines = resume;
  const CellTaskResult rest =
      run_cell_task(executed.cells, executed.options, spec.seed, task);
  EXPECT_EQ(rest.resumed, 2u);
  EXPECT_EQ(rest.executed, 1u);
  const auto outcome = plan.push(0, rest.lines);
  EXPECT_EQ(outcome.duplicates, 0u);
  EXPECT_TRUE(outcome.cell_complete);
}

}  // namespace
}  // namespace cloudrepro::shard
