// The shard coordinator inside ServerCore, driven hermetically over
// in-memory transports: worker registration, pull/push assignment flow,
// conflict rejection, worker death (reassignment and demotion to local
// execution), and the blocking worker loop end to end. The invariant under
// test everywhere: the GET response's summary is byte-identical to a
// single-node run, no matter how the cells were distributed.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/journal.h"
#include "obs/metrics.h"
#include "scenario/runner.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "serve/worker.h"
#include "shard/runner.h"

namespace cloudrepro::serve {
namespace {

namespace fs = std::filesystem;
using scenario::ResultStore;
using scenario::ScenarioSpec;

ScenarioSpec tiny_spec(const std::string& name = "shard-serve-test") {
  ScenarioSpec spec;
  spec.name = name;
  spec.workloads = {{"hibench", "TS", std::nullopt}, {"hibench", "KM", std::nullopt}};
  spec.budgets = {5000.0, 10.0};
  spec.repetitions = 3;
  return spec;
}

struct TestClient {
  std::unique_ptr<MemoryTransport> transport;
  FrameDecoder decoder{64u << 20};
  std::uint64_t id = 0;
};

TestClient connect(ServerCore& core, MemoryPipeOptions pipe = {}) {
  auto [client_end, server_end] = make_memory_pair(pipe);
  TestClient client;
  client.transport = std::move(client_end);
  client.id = core.add_connection(std::move(server_end));
  return client;
}

void send(ServerCore& core, TestClient& client, const std::string& frame) {
  std::string wire = frame + "\n";
  std::string_view data = wire;
  while (!data.empty()) {
    const IoResult result = client.transport->write(data);
    if (result.status == IoStatus::kOk) {
      data.remove_prefix(result.bytes);
    } else {
      ASSERT_EQ(result.status, IoStatus::kWouldBlock);
      core.poll_once();
    }
  }
}

std::optional<Response> recv(ServerCore& core, TestClient& client,
                             std::chrono::seconds timeout = std::chrono::seconds{120}) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::string frame;
  for (;;) {
    if (client.decoder.next(frame) == FrameDecoder::Status::kFrame) {
      return parse_response(frame);
    }
    char buffer[4096];
    const IoResult result = client.transport->read(buffer, sizeof buffer);
    if (result.status == IoStatus::kOk) {
      client.decoder.push({buffer, result.bytes});
      continue;
    }
    if (result.status == IoStatus::kClosed) return std::nullopt;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "recv timed out";
      return std::nullopt;
    }
    if (!core.poll_once()) {
      core.wait_activity(std::chrono::milliseconds{1});
    }
  }
}

/// SHARD_PLAN with an inline spec: the canonical GET frame with its op
/// swapped (the two ops share their addressing grammar).
std::string shard_plan_frame(const ScenarioSpec& spec) {
  std::string frame = get_request_frame(spec, std::nullopt);
  const auto at = frame.find("\"GET\"");
  EXPECT_NE(at, std::string::npos);
  return frame.replace(at, 5, "\"SHARD_PLAN\"");
}

class ShardServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-shardserve-" +
             std::string{
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()});
    fs::remove_all(root_);
    store_.emplace(root_ / "cache", &metrics_);
  }
  void TearDown() override {
    core_.reset();
    store_.reset();
    fs::remove_all(root_);
  }

  ServerCore& core(ServeOptions options = {}) {
    if (!core_) core_.emplace(*store_, metrics_, std::move(options));
    return *core_;
  }

  std::string reference_summary(const ScenarioSpec& spec) {
    ResultStore store{root_ / "reference"};
    scenario::RunOptions options;
    options.threads = 1;
    options.store = &store;
    return scenario::run_scenario(spec, options).summary;
  }

  /// Registers `client` as a worker: one SHARD_PULL, expecting idle.
  void register_worker(TestClient& client, const std::string& name) {
    send(core(), client, shard_pull_request_frame(name));
    const auto response = recv(core(), client);
    ASSERT_TRUE(response && response->ok);
    ASSERT_TRUE(parse_shard_pull_response(response->body).idle);
  }

  /// Pulls once; nullopt when the coordinator answered idle.
  std::optional<ShardAssignment> pull(TestClient& client, const std::string& name) {
    send(core(), client, shard_pull_request_frame(name));
    const auto response = recv(core(), client);
    if (!response || !response->ok) {
      ADD_FAILURE() << "SHARD_PULL failed";
      return std::nullopt;
    }
    ShardAssignment assignment = parse_shard_pull_response(response->body);
    if (assignment.idle) return std::nullopt;
    return assignment;
  }

  /// Executes one assignment honestly and pushes the result; returns the ack.
  ShardPushAck execute_and_push(TestClient& client, const std::string& name,
                                const ShardAssignment& assignment) {
    auto cells = scenario::build_cells(*assignment.spec);
    const auto options = scenario::campaign_options(*assignment.spec);
    shard::CellTask task{assignment.cell, assignment.resume};
    const auto result =
        shard::run_cell_task(cells, options, assignment.seed, task);
    EXPECT_TRUE(result.complete);
    send(core(), client,
         shard_push_request_frame(name, assignment.key, assignment.cell,
                                  result.lines, result.complete, 0.01));
    const auto response = recv(core(), client);
    EXPECT_TRUE(response && response->ok);
    return parse_shard_push_response(response->body);
  }

  /// Drives `client` as the only worker until the campaign completes.
  void drain_as_worker(TestClient& client, const std::string& name) {
    for (int i = 0; i < 200; ++i) {
      const auto assignment = pull(client, name);
      if (!assignment) {
        core().poll_once();  // GET may not have opened the session yet.
        continue;
      }
      if (execute_and_push(client, name, *assignment).campaign_complete) return;
    }
    FAIL() << "campaign did not complete within the pull budget";
  }

  fs::path root_;
  obs::MetricsRegistry metrics_;
  std::optional<ResultStore> store_;
  std::optional<ServerCore> core_;
};

TEST_F(ShardServeTest, PullPushFlowServesByteIdenticalSummary) {
  const auto spec = tiny_spec();
  TestClient worker = connect(core());
  register_worker(worker, "w1");

  // Before any GET: SHARD_PLAN reports the campaign idle but the worker
  // registered.
  send(core(), worker, shard_plan_frame(spec));
  auto plan_response = recv(core(), worker);
  ASSERT_TRUE(plan_response && plan_response->ok);
  ShardPlanInfo info = parse_shard_plan_response(plan_response->body);
  EXPECT_EQ(info.state, "idle");
  EXPECT_EQ(info.workers, 1u);
  EXPECT_EQ(info.cells, 4u);

  // The GET is the sole admission path; with a worker connected the leader
  // opens a shard session instead of executing locally.
  TestClient client = connect(core());
  send(core(), client, get_request_frame(spec, std::nullopt));
  drain_as_worker(worker, "w1");

  const auto get = recv(core(), client);
  ASSERT_TRUE(get && get->ok);
  // The publishing step replays the merged journal (journal present, no
  // summary yet), so the disposition reads as a partial-entry completion.
  EXPECT_EQ(get->hit, "partial");
  EXPECT_EQ(get->summary, reference_summary(spec));

  // Post-completion introspection and accounting.
  send(core(), worker, shard_plan_frame(spec));
  plan_response = recv(core(), worker);
  ASSERT_TRUE(plan_response && plan_response->ok);
  info = parse_shard_plan_response(plan_response->body);
  EXPECT_EQ(info.state, "complete");
  EXPECT_EQ(metrics_.counter("shard.sessions_opened").value(), 1.0);
  EXPECT_EQ(metrics_.counter("shard.sessions_finalized").value(), 1.0);
  EXPECT_EQ(metrics_.counter("shard.cells_completed").value(), 4.0);

  // A second GET is a pure cache hit — no new session.
  send(core(), client, get_request_frame(spec, std::nullopt));
  const auto warm = recv(core(), client);
  ASSERT_TRUE(warm && warm->ok);
  EXPECT_EQ(warm->hit, "hit");
  EXPECT_EQ(warm->summary, get->summary);
  EXPECT_EQ(metrics_.counter("shard.sessions_opened").value(), 1.0);
}

TEST_F(ShardServeTest, ConflictingPushIsTypedRejectionAndSessionSurvives) {
  const auto spec = tiny_spec();
  TestClient worker = connect(core());
  register_worker(worker, "w1");
  TestClient client = connect(core());
  send(core(), client, get_request_frame(spec, std::nullopt));

  std::optional<ShardAssignment> assignment;
  for (int i = 0; i < 50 && !assignment; ++i) {
    assignment = pull(worker, "w1");
    if (!assignment) core().poll_once();
  }
  ASSERT_TRUE(assignment);

  // Push one honest record, then a conflicting one for the same repetition
  // (valid checksum, different value) — a version-skewed or corrupt worker.
  auto cells = scenario::build_cells(*assignment->spec);
  const auto options = scenario::campaign_options(*assignment->spec);
  shard::CellTask task{assignment->cell, assignment->resume};
  const auto result = shard::run_cell_task(cells, options, assignment->seed, task);
  send(core(), worker,
       shard_push_request_frame("w1", assignment->key, assignment->cell,
                                {result.lines[0]}, false, 0.0));
  auto ack_response = recv(core(), worker);
  ASSERT_TRUE(ack_response && ack_response->ok);

  core::JournalRecord record;
  ASSERT_TRUE(core::parse_journal_line(result.lines[0], record));
  record.value += 1.0;
  send(core(), worker,
       shard_push_request_frame("w1", assignment->key, assignment->cell,
                                {core::journal_line(record)}, false, 0.0));
  const auto rejection = recv(core(), worker);
  ASSERT_TRUE(rejection);
  EXPECT_FALSE(rejection->ok);
  EXPECT_EQ(rejection->error_code, "conflict");
  EXPECT_EQ(metrics_.counter("shard.push_rejected").value(), 1.0);

  // The session survived the poisoned push; honest work completes it and
  // the summary is still the single-node bytes.
  drain_as_worker(worker, "w1");
  const auto get = recv(core(), client);
  ASSERT_TRUE(get && get->ok);
  EXPECT_EQ(get->summary, reference_summary(spec));
}

TEST_F(ShardServeTest, DeadWorkersCellsAreReassigned) {
  const auto spec = tiny_spec();
  TestClient doomed = connect(core());
  TestClient survivor = connect(core());
  register_worker(doomed, "doomed");
  register_worker(survivor, "survivor");

  TestClient client = connect(core());
  send(core(), client, get_request_frame(spec, std::nullopt));

  // The doomed worker claims a cell and dies without pushing a byte.
  std::optional<ShardAssignment> claimed;
  for (int i = 0; i < 50 && !claimed; ++i) {
    claimed = pull(doomed, "doomed");
    if (!claimed) core().poll_once();
  }
  ASSERT_TRUE(claimed);
  doomed.transport->close();
  // Let the reactor notice the dead connection and requeue its cell.
  for (int i = 0; i < 50 && metrics_.counter("shard.cells_reassigned").value() < 1.0;
       ++i) {
    if (!core().poll_once()) core().wait_activity(std::chrono::milliseconds{1});
  }
  EXPECT_GE(metrics_.counter("shard.cells_reassigned").value(), 1.0);

  // The survivor finishes everything, including the orphaned cell.
  drain_as_worker(survivor, "survivor");
  const auto get = recv(core(), client);
  ASSERT_TRUE(get && get->ok);
  EXPECT_EQ(get->summary, reference_summary(spec));
}

TEST_F(ShardServeTest, LastWorkerDeathDemotesToLocalExecution) {
  const auto spec = tiny_spec();
  TestClient worker = connect(core());
  register_worker(worker, "w1");
  TestClient client = connect(core());
  send(core(), client, get_request_frame(spec, std::nullopt));

  // The worker completes one cell so demotion has partial progress to keep,
  // then dies.
  std::optional<ShardAssignment> assignment;
  for (int i = 0; i < 50 && !assignment; ++i) {
    assignment = pull(worker, "w1");
    if (!assignment) core().poll_once();
  }
  ASSERT_TRUE(assignment);
  execute_and_push(worker, "w1", *assignment);
  worker.transport->close();

  // With no workers left the session demotes: the coordinator persists the
  // partial journal and finishes the campaign itself. The waiting GET still
  // gets single-node bytes.
  const auto get = recv(core(), client);
  ASSERT_TRUE(get && get->ok);
  EXPECT_EQ(get->summary, reference_summary(spec));
  EXPECT_EQ(metrics_.counter("shard.sessions_demoted").value(), 1.0);
  EXPECT_EQ(metrics_.counter("shard.cells_completed").value(), 1.0);
}

TEST_F(ShardServeTest, PushForUnknownSessionIsTypedError) {
  TestClient worker = connect(core());
  register_worker(worker, "w1");
  send(core(), worker,
       shard_push_request_frame("w1", "no-such-session", 0, {}, true, 0.0));
  const auto response = recv(core(), worker);
  ASSERT_TRUE(response);
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->error_code, "unknown_session");
}

TEST_F(ShardServeTest, RunWorkerLoopEndToEnd) {
  const auto spec = tiny_spec();
  ServeOptions serve_options;
  serve_options.worker_retry_ms = 1;  // Fast idle polling for the test.
  ServerCore& server = core(serve_options);

  // All connections are added before the reactor thread starts: ServerCore
  // is reactor-thread-only, so the only thread that may touch it once the
  // pump is running is the pump itself.
  auto [worker_a_end, worker_a_server] = make_memory_pair();
  auto [worker_b_end, worker_b_server] = make_memory_pair();
  auto [get_end, get_server_end] = make_memory_pair();
  server.add_connection(std::move(worker_a_server));
  server.add_connection(std::move(worker_b_server));
  server.add_connection(std::move(get_server_end));

  std::atomic<bool> stop{false};
  std::thread reactor{[&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!server.poll_once()) server.wait_activity(std::chrono::milliseconds{1});
    }
  }};

  auto worker_body = [](std::unique_ptr<MemoryTransport> transport,
                        const std::string& name, WorkerStats* stats) {
    WorkerOptions options;
    options.name = name;
    options.threads = 2;
    options.idle_sleep_ms = 1;
    options.max_idle_polls = 500;  // Generous: exits well after completion.
    *stats = run_worker(std::move(transport), options);
  };
  WorkerStats stats_a;
  WorkerStats stats_b;
  std::thread worker_a{worker_body, std::move(worker_a_end), "worker-a", &stats_a};
  std::thread worker_b{worker_body, std::move(worker_b_end), "worker-b", &stats_b};

  // Both workers must be registered before the GET, or the leader sees no
  // workers and executes the campaign locally.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{30};
  while (metrics_.gauge("shard.workers").value() < 2.0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  ASSERT_EQ(metrics_.gauge("shard.workers").value(), 2.0);

  FetchClient fetch{std::move(get_end)};
  const Response response = fetch.get(spec);
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.summary, reference_summary(spec));

  worker_a.join();
  worker_b.join();
  stop.store(true);
  reactor.join();

  // Every cell was completed exactly once across the two workers.
  EXPECT_EQ(stats_a.cells_completed + stats_b.cells_completed, 4u);
  EXPECT_GT(stats_a.records_pushed + stats_b.records_pushed, 0u);
}

TEST_F(ShardServeTest, FetchTimesOutAgainstPeerThatNeverDelivers) {
  // The connection opens but the "server" never reads or writes — the
  // MemoryTransport analogue of a SIGSTOPped daemon behind an accepting
  // socket. The deadline must fire instead of blocking forever.
  auto [client_end, server_end] = make_memory_pair();
  FetchClient::Options options;
  options.timeout = std::chrono::milliseconds{200};
  FetchClient client{std::move(client_end), options};

  const auto started = std::chrono::steady_clock::now();
  EXPECT_THROW(client.request(stats_request_frame()), FetchTimeout);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_GE(elapsed, std::chrono::milliseconds{200});
  EXPECT_LT(elapsed, std::chrono::seconds{30});
  (void)server_end;  // Alive but silent for the whole exchange.
}

}  // namespace
}  // namespace cloudrepro::serve
