// The in-process sharded driver's headline guarantee, checked as bytes:
// the merged journal and published summary of `run_scenario_sharded` are
// identical to a single-node serial run across every (shard count, worker
// threads, cold/warm cache, interruption) combination.

#include "shard/local.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "scenario/result_store.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "shard/plan.h"

namespace cloudrepro::shard {
namespace {

namespace fs = std::filesystem;
using scenario::ResultStore;
using scenario::ScenarioSpec;

ScenarioSpec grid_spec() {
  ScenarioSpec spec;
  spec.name = "shard-local-test";
  spec.workloads = {{"hibench", "TS", std::nullopt}, {"hibench", "KM", std::nullopt}};
  spec.budgets = {5000.0, 10.0};
  spec.repetitions = 3;
  return spec;
}

ScenarioSpec adaptive_spec() {
  ScenarioSpec spec;
  spec.name = "shard-local-adaptive";
  spec.workloads = {{"hibench", "TS", std::nullopt}, {"hibench", "KM", std::nullopt}};
  spec.budgets = {5000.0};
  spec.engine.machine_noise_cv = 0.05;
  spec.repetitions = 40;
  spec.confirm.enabled = true;
  spec.confirm.adaptive = true;
  spec.confirm.error_bound = 0.10;
  spec.confirm.min_repetitions = 8;
  return spec;
}

std::string slurp(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ShardLocalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-shard-" + std::string{::testing::UnitTest::GetInstance()
                                                   ->current_test_info()
                                                   ->name()});
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Serial single-node reference: summary and journal bytes.
  struct Reference {
    std::string summary;
    std::string journal;
  };
  Reference reference_for(const ScenarioSpec& spec) {
    ResultStore store{root_ / "reference"};
    scenario::RunOptions options;
    options.threads = 1;
    options.store = &store;
    Reference ref;
    ref.summary = scenario::run_scenario(spec, options).summary;
    ref.journal = slurp(store.journal_path(spec, spec.seed));
    return ref;
  }

  fs::path root_;
};

TEST_F(ShardLocalTest, ByteIdenticalAcrossShardAndThreadMatrix) {
  const auto spec = grid_spec();
  const Reference ref = reference_for(spec);

  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const int worker_threads : {1, 4}) {
      const std::string label = "shards=" + std::to_string(shards) +
                                " threads=" + std::to_string(worker_threads);
      ResultStore store{root_ / ("s" + std::to_string(shards) + "t" +
                                 std::to_string(worker_threads))};
      LocalShardOptions options;
      options.shards = shards;
      options.worker_threads = worker_threads;
      options.store = &store;

      // Cold: the campaign actually executes, split across shard workers.
      const auto cold = run_scenario_sharded(spec, options);
      EXPECT_FALSE(cold.from_cached_summary) << label;
      EXPECT_EQ(cold.summary, ref.summary) << label;
      EXPECT_EQ(slurp(store.journal_path(spec, spec.seed)), ref.journal) << label;

      // Warm: a second sharded run is a pure cache hit — same bytes, zero
      // new measurements.
      const auto warm = run_scenario_sharded(spec, options);
      EXPECT_TRUE(warm.from_cached_summary) << label;
      EXPECT_EQ(warm.executed_measurements, 0u) << label;
      EXPECT_EQ(warm.summary, ref.summary) << label;
    }
  }
}

TEST_F(ShardLocalTest, AdaptiveStoppingIsShardInvariant) {
  const auto spec = adaptive_spec();
  const Reference ref = reference_for(spec);

  for (const std::size_t shards : {2u, 3u}) {
    ResultStore store{root_ / ("a" + std::to_string(shards))};
    LocalShardOptions options;
    options.shards = shards;
    options.store = &store;
    const auto result = run_scenario_sharded(spec, options);
    EXPECT_EQ(result.summary, ref.summary) << "shards=" << shards;
    EXPECT_EQ(slurp(store.journal_path(spec, spec.seed)), ref.journal)
        << "shards=" << shards;
  }
}

TEST_F(ShardLocalTest, InterruptedShardedRunResumesToIdenticalBytes) {
  const auto spec = grid_spec();
  const Reference ref = reference_for(spec);

  ResultStore store{root_ / "interrupted"};
  // Cancellation hits before any cell finishes its repetitions: workers
  // stop cooperatively, the partial (possibly empty) journal persists.
  std::atomic<bool> cancel{true};
  LocalShardOptions options;
  options.shards = 2;
  options.store = &store;
  options.cancel = &cancel;
  const auto interrupted = run_scenario_sharded(spec, options);
  EXPECT_FALSE(interrupted.complete);
  EXPECT_FALSE(store.has_summary(spec, spec.seed));

  // The next (uncancelled) sharded run resumes the journal and lands on the
  // reference bytes — interruption cost progress, never correctness.
  cancel.store(false);
  const auto resumed = run_scenario_sharded(spec, options);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.summary, ref.summary);
  EXPECT_EQ(slurp(store.journal_path(spec, spec.seed)), ref.journal);
}

TEST_F(ShardLocalTest, WarmStartFromPartialSingleNodeJournal) {
  const auto spec = grid_spec();
  const Reference ref = reference_for(spec);

  // A single-node run interrupted after a bounded number of measurements
  // leaves a partial journal; the sharded driver absorbs it and executes
  // only the remainder.
  ResultStore store{root_ / "partial"};
  scenario::RunOptions partial;
  partial.threads = 1;
  partial.store = &store;
  partial.max_measurements = 5;
  const auto first = scenario::run_scenario(spec, partial);
  ASSERT_FALSE(first.complete);

  LocalShardOptions options;
  options.shards = 4;
  options.store = &store;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  const auto result = run_scenario_sharded(spec, options);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.summary, ref.summary);
  EXPECT_EQ(slurp(store.journal_path(spec, spec.seed)), ref.journal);
  // The 5 journaled measurements were replayed, not re-run.
  EXPECT_EQ(result.resumed_measurements + result.executed_measurements,
            static_cast<std::size_t>(spec.total_measurements()));
  EXPECT_GE(metrics.counter("shard.cells_completed").value(), 1.0);
}

TEST_F(ShardLocalTest, StoreIsRequired) {
  LocalShardOptions options;
  EXPECT_THROW(run_scenario_sharded(grid_spec(), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace cloudrepro::shard
