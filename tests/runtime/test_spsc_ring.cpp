// Contract and stress tests for the SPSC journal ring. The stress cases are
// the TSan targets: a producer outrunning a deliberately tiny ring pins the
// backpressure path (try_push false -> yield -> retry) under the race
// detector.

#include "runtime/spsc_ring.h"

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

using cloudrepro::runtime::SpscRing;

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>{1}.capacity(), 2u);
  EXPECT_EQ(SpscRing<int>{2}.capacity(), 2u);
  EXPECT_EQ(SpscRing<int>{3}.capacity(), 4u);
  EXPECT_EQ(SpscRing<int>{100}.capacity(), 128u);
  EXPECT_EQ(SpscRing<int>{256}.capacity(), 256u);
}

TEST(SpscRingTest, PushPopIsFifo) {
  SpscRing<int> ring{8};
  for (int i = 0; i < 8; ++i) {
    int value = i;
    EXPECT_TRUE(ring.try_push(value));
  }
  EXPECT_EQ(ring.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, FullRingRejectsPushAndLeavesValueIntact) {
  SpscRing<std::string> ring{2};
  std::string a = "first", b = "second", c = "third";
  EXPECT_TRUE(ring.try_push(a));
  EXPECT_TRUE(ring.try_push(b));
  EXPECT_FALSE(ring.try_push(c));
  EXPECT_EQ(c, "third");  // A rejected push must not consume the value.
  std::string out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "first");
  EXPECT_TRUE(ring.try_push(c));
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "second");
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "third");
}

TEST(SpscRingTest, EmptyPopReturnsFalse) {
  SpscRing<int> ring{4};
  int out = 7;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  SpscRing<std::size_t> ring{4};
  std::size_t next_expected = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    std::size_t value = i;
    ASSERT_TRUE(ring.try_push(value));
    // Drain only above half occupancy so the cursors wrap many times at
    // varying fill levels.
    while (ring.size() > 2) {
      std::size_t out = 0;
      ASSERT_TRUE(ring.try_pop(out));
      ASSERT_EQ(out, next_expected++);
    }
  }
  std::size_t out = 0;
  while (ring.try_pop(out)) ASSERT_EQ(out, next_expected++);
  EXPECT_EQ(next_expected, 1000u);
}

TEST(SpscRingStressTest, ProducerOutrunsTinyRingUnderBackpressure) {
  // Capacity 4 against 100k pushes: the producer spends most of its life in
  // the try_push-false backpressure loop while the consumer drains. Every
  // element must still arrive exactly once, in order — and under TSan this
  // is the proof the acquire/release pairing covers the slot accesses.
  constexpr std::size_t kCount = 100000;
  SpscRing<std::size_t> ring{4};
  std::thread producer{[&ring] {
    for (std::size_t i = 0; i < kCount; ++i) {
      std::size_t value = i;
      while (!ring.try_push(value)) std::this_thread::yield();
    }
  }};
  std::size_t received = 0;
  while (received < kCount) {
    std::size_t out = 0;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, received) << "ring reordered or dropped an element";
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingStressTest, StringPayloadsSurviveConcurrentHandoff) {
  // The journal hands off std::string lines; moves through the ring must
  // not tear under concurrency.
  constexpr std::size_t kCount = 20000;
  SpscRing<std::string> ring{8};
  std::thread producer{[&ring] {
    for (std::size_t i = 0; i < kCount; ++i) {
      std::string value = "record-" + std::to_string(i);
      while (!ring.try_push(value)) std::this_thread::yield();
    }
  }};
  std::size_t received = 0;
  while (received < kCount) {
    std::string out;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, "record-" + std::to_string(received));
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

}  // namespace
