#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cloudrepro::runtime {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1);
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1);
  EXPECT_EQ(ThreadPool::resolve_thread_count(7), 7);
  EXPECT_GE(ThreadPool::resolve_thread_count(-3), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool{2};
  pool.wait_idle();  // Must not hang.
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool{3};
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 50 * (round + 1));
  }
}

TEST(ThreadPoolTest, PendingTasksRunBeforeDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 64; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SubmitNullThrows) {
  ThreadPool pool{1};
  EXPECT_THROW(pool.submit({}), std::invalid_argument);
}

TEST(ThreadPoolStealTest, CurrentWorkerIndexIdentifiesThisPoolsWorkers) {
  ThreadPool pool{3};
  ThreadPool other{2};
  EXPECT_EQ(pool.current_worker_index(), -1);  // Not a worker thread.
  std::atomic<bool> index_in_range{true};
  std::atomic<bool> foreign_pool_reads_minus_one{true};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      const int self = pool.current_worker_index();
      if (self < 0 || self >= pool.thread_count()) {
        index_in_range.store(false, std::memory_order_relaxed);
      }
      if (other.current_worker_index() != -1) {
        foreign_pool_reads_minus_one.store(false, std::memory_order_relaxed);
      }
    });
  }
  pool.wait_idle();
  EXPECT_TRUE(index_in_range.load());
  EXPECT_TRUE(foreign_pool_reads_minus_one.load());
}

TEST(ThreadPoolStealTest, WorkerSubmittedTasksAreStolenWhileOwnerBlocks) {
  // A worker fills its own deque with subtasks, then blocks until they all
  // finish. It cannot run them itself, so the other workers must steal them
  // off the blocked owner's deque — the scenario `cloudrepro suite` creates
  // when one member's coordinator waits on cells another worker could run.
  ThreadPool pool{4};
  constexpr int kSubtasks = 100;
  std::atomic<int> done{0};
  std::atomic<bool> owner_finished{false};
  pool.submit([&] {
    for (int i = 0; i < kSubtasks; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    while (done.load(std::memory_order_relaxed) < kSubtasks) {
      std::this_thread::yield();
    }
    owner_finished.store(true, std::memory_order_relaxed);
  });
  pool.wait_idle();
  EXPECT_EQ(done.load(), kSubtasks);
  EXPECT_TRUE(owner_finished.load());
}

TEST(ThreadPoolStealTest, ManyProducersManyThievesCompleteEveryTask) {
  // Contention torture for the Chase-Lev deques: every worker both produces
  // (fan-out resubmission) and steals. The count must balance exactly.
  ThreadPool pool{4};
  std::atomic<int> executed{0};
  constexpr int kRoots = 64;
  constexpr int kChildren = 32;
  for (int i = 0; i < kRoots; ++i) {
    pool.submit([&] {
      executed.fetch_add(1, std::memory_order_relaxed);
      for (int j = 0; j < kChildren; ++j) {
        pool.submit(
            [&] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kRoots + kRoots * kChildren);
}

TEST(ThreadPoolStealTest, DequeOverflowFallsBackToInjectionQueue) {
  // A worker submitting more than the fixed deque capacity (1024) must spill
  // to the injection queue, never drop or deadlock.
  ThreadPool pool{2};
  std::atomic<int> done{0};
  constexpr int kTasks = 3000;
  pool.submit([&] {
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ParallelForEachTest, VisitsEveryIndexExactlyOnce) {
  std::vector<int> visits(1000, 0);
  parallel_for_each(8, visits.size(), [&](std::size_t i) { ++visits[i]; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1000);
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelForEachTest, SingleThreadRunsInlineOnCaller) {
  const auto caller = std::this_thread::get_id();
  bool all_inline = true;
  parallel_for_each(1, 16, [&](std::size_t) {
    all_inline = all_inline && std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ParallelForEachTest, ZeroCountCallsNothing) {
  int calls = 0;
  parallel_for_each(4, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForEachTest, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for_each(4, 100,
                        [](std::size_t i) {
                          if (i == 57) throw std::runtime_error{"boom"};
                        }),
      std::runtime_error);
}

TEST(ParallelForEachTest, NullBodyThrows) {
  EXPECT_THROW(parallel_for_each(2, 5, {}), std::invalid_argument);
}

TEST(ParallelForEachTest, DeterministicSlotResults) {
  // The canonical usage pattern: index i writes slot i; the gathered vector
  // must match the serial reference exactly regardless of thread count.
  const std::size_t n = 500;
  std::vector<double> serial(n);
  parallel_for_each(1, n, [&](std::size_t i) {
    serial[i] = static_cast<double>(i) * 1.5 + 1.0 / static_cast<double>(i + 1);
  });
  for (const int threads : {2, 4, 8}) {
    std::vector<double> parallel(n);
    parallel_for_each(threads, n, [&](std::size_t i) {
      parallel[i] = static_cast<double>(i) * 1.5 + 1.0 / static_cast<double>(i + 1);
    });
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace cloudrepro::runtime
