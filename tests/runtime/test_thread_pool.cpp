#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cloudrepro::runtime {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1);
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1);
  EXPECT_EQ(ThreadPool::resolve_thread_count(7), 7);
  EXPECT_GE(ThreadPool::resolve_thread_count(-3), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool{2};
  pool.wait_idle();  // Must not hang.
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool{3};
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 50 * (round + 1));
  }
}

TEST(ThreadPoolTest, PendingTasksRunBeforeDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 64; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SubmitNullThrows) {
  ThreadPool pool{1};
  EXPECT_THROW(pool.submit({}), std::invalid_argument);
}

TEST(ParallelForEachTest, VisitsEveryIndexExactlyOnce) {
  std::vector<int> visits(1000, 0);
  parallel_for_each(8, visits.size(), [&](std::size_t i) { ++visits[i]; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1000);
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelForEachTest, SingleThreadRunsInlineOnCaller) {
  const auto caller = std::this_thread::get_id();
  bool all_inline = true;
  parallel_for_each(1, 16, [&](std::size_t) {
    all_inline = all_inline && std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ParallelForEachTest, ZeroCountCallsNothing) {
  int calls = 0;
  parallel_for_each(4, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForEachTest, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for_each(4, 100,
                        [](std::size_t i) {
                          if (i == 57) throw std::runtime_error{"boom"};
                        }),
      std::runtime_error);
}

TEST(ParallelForEachTest, NullBodyThrows) {
  EXPECT_THROW(parallel_for_each(2, 5, {}), std::invalid_argument);
}

TEST(ParallelForEachTest, DeterministicSlotResults) {
  // The canonical usage pattern: index i writes slot i; the gathered vector
  // must match the serial reference exactly regardless of thread count.
  const std::size_t n = 500;
  std::vector<double> serial(n);
  parallel_for_each(1, n, [&](std::size_t i) {
    serial[i] = static_cast<double>(i) * 1.5 + 1.0 / static_cast<double>(i + 1);
  });
  for (const int threads : {2, 4, 8}) {
    std::vector<double> parallel(n);
    parallel_for_each(threads, n, [&](std::size_t i) {
      parallel[i] = static_cast<double>(i) * 1.5 + 1.0 / static_cast<double>(i + 1);
    });
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace cloudrepro::runtime
