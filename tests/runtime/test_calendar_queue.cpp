// Property tests for the calendar event queue: its pop sequence must be
// element-for-element identical to a reference std::priority_queue ordered
// by (time, push sequence) — the explicit tie-break contract the fault
// injector and the TCP event loop rely on for deterministic replay.

#include "runtime/calendar_queue.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace {

using cloudrepro::runtime::CalendarQueue;

/// Reference model: a binary heap over (time, seq) with FIFO tie-breaking
/// made explicit through the push sequence number.
class ReferenceQueue {
 public:
  void push(double time, int payload) {
    heap_.push(Entry{time, next_seq_++, payload});
  }
  int pop() {
    const int payload = heap_.top().payload;
    heap_.pop();
    return payload;
  }
  double next_time() const {
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.top().time;
  }
  bool empty() const { return heap_.empty(); }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    int payload;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

TEST(CalendarQueueTest, EmptyQueueReportsInfiniteNextTime) {
  CalendarQueue<int> queue{1.0};
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.next_time(), std::numeric_limits<double>::infinity());
}

TEST(CalendarQueueTest, PopsInTimeOrder) {
  CalendarQueue<int> queue{1.0};
  queue.push(3.0, 3);
  queue.push(1.0, 1);
  queue.push(2.0, 2);
  EXPECT_EQ(queue.next_time(), 1.0);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueueTest, EqualTimestampsPopInPushOrder) {
  CalendarQueue<int> queue{0.5};
  for (int i = 0; i < 100; ++i) queue.push(42.0, i);
  queue.push(41.0, -1);
  EXPECT_EQ(queue.pop(), -1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(queue.pop(), i) << "tie-break broke FIFO at element " << i;
  }
}

TEST(CalendarQueueTest, InterleavedTiesKeepGlobalPushOrder) {
  // Ties interleaved with other times: elements at the tied timestamp must
  // still pop in push order even when pops and pushes alternate.
  CalendarQueue<int> queue{1.0};
  ReferenceQueue reference;
  std::mt19937_64 rng{7};
  std::uniform_int_distribution<int> coin{0, 3};
  int payload = 0;
  for (int step = 0; step < 2000; ++step) {
    const int action = coin(rng);
    if (action == 0 && !queue.empty()) {
      ASSERT_EQ(queue.next_time(), reference.next_time());
      ASSERT_EQ(queue.pop(), reference.pop());
    } else {
      // Coarse times make collisions common.
      const double time = static_cast<double>(rng() % 16);
      queue.push(time, payload);
      reference.push(time, payload);
      ++payload;
    }
  }
  while (!queue.empty()) ASSERT_EQ(queue.pop(), reference.pop());
  EXPECT_TRUE(reference.empty());
}

TEST(CalendarQueueTest, MatchesReferenceHeapAcrossSeeds) {
  // Seed-swept mixed-cadence property: token-bucket replenish ticks
  // (milliseconds), RTT-scale acks (~100ms with jitter), and fault-plan
  // events (minutes to hours) share one queue, with random interleaved
  // pops. Every pop must match the (time, seq) reference exactly.
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    CalendarQueue<int> queue{1.0};
    ReferenceQueue reference;
    std::mt19937_64 rng{seed};
    std::uniform_real_distribution<double> uniform{0.0, 1.0};
    int payload = 0;
    for (int step = 0; step < 3000; ++step) {
      const double p = uniform(rng);
      if (p < 0.35 && !queue.empty()) {
        ASSERT_EQ(queue.next_time(), reference.next_time())
            << "seed " << seed << " step " << step;
        ASSERT_EQ(queue.pop(), reference.pop())
            << "seed " << seed << " step " << step;
        continue;
      }
      double time = 0.0;
      const double cadence = uniform(rng);
      if (cadence < 0.4) {
        time = uniform(rng) * 1e-2;  // Replenish-tick scale.
      } else if (cadence < 0.8) {
        time = uniform(rng) * 10.0;  // RTT/ack scale.
      } else {
        time = uniform(rng) * 7200.0;  // Fault-plan scale.
      }
      queue.push(time, payload);
      reference.push(time, payload);
      ++payload;
    }
    while (!queue.empty()) {
      ASSERT_EQ(queue.pop(), reference.pop()) << "seed " << seed << " drain";
    }
    EXPECT_TRUE(reference.empty()) << "seed " << seed;
  }
}

TEST(CalendarQueueTest, BucketRotationBoundaryTimes) {
  // Times sitting exactly on bucket boundaries (integer multiples of the
  // width) and a hair to either side: virtual-bucket membership is exact
  // integer comparison, so boundary times must never be skipped or
  // reordered by a cursor rotation.
  CalendarQueue<int> queue{1.0};
  ReferenceQueue reference;
  int payload = 0;
  for (int k = 0; k < 64; ++k) {
    for (const double delta : {0.0, 1e-12, -1e-12, 0.5}) {
      const double time = static_cast<double>(k) + delta;
      if (time < 0.0) continue;
      queue.push(time, payload);
      reference.push(time, payload);
      ++payload;
    }
  }
  while (!queue.empty()) ASSERT_EQ(queue.pop(), reference.pop());
}

TEST(CalendarQueueTest, FarFutureEventsDoNotStallTheScan) {
  // A cluster of near events plus outliers years past the calendar's
  // current span: the empty-year fallback must find them without walking
  // the whole virtual timeline.
  CalendarQueue<int> queue{1e-3};
  queue.push(1e12, 1000);
  queue.push(5e11, 500);
  for (int i = 0; i < 50; ++i) queue.push(static_cast<double>(i) * 1e-3, i);
  for (int i = 0; i < 50; ++i) ASSERT_EQ(queue.pop(), i);
  EXPECT_EQ(queue.pop(), 500);
  EXPECT_EQ(queue.pop(), 1000);
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueueTest, GrowthPreservesOrderAndContents) {
  // Push far past the initial capacity so the calendar resizes (recomputing
  // width from the live span) mid-stream, then drain against the reference.
  CalendarQueue<int> queue{1.0};
  ReferenceQueue reference;
  std::mt19937_64 rng{99};
  std::uniform_real_distribution<double> uniform{0.0, 1e4};
  for (int i = 0; i < 20000; ++i) {
    const double time = uniform(rng);
    queue.push(time, i);
    reference.push(time, i);
  }
  EXPECT_EQ(queue.size(), 20000u);
  for (int i = 0; i < 20000; ++i) ASSERT_EQ(queue.pop(), reference.pop());
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueueTest, SteadyStateHoldRetunesWithoutReordering) {
  // The hold pattern (pop the minimum, reschedule it at now + increment)
  // never changes the queue's size, so the size-triggered growth path never
  // fires — yet the live span contracts from the setup spread down to one
  // increment, which is exactly what the scan-cost retune heuristic exists
  // to absorb. Drive it long enough to cross several retune windows and
  // demand element-for-element agreement with the reference heap throughout.
  CalendarQueue<int> queue{1e-3};
  ReferenceQueue reference;
  std::mt19937_64 rng{2024};
  std::uniform_real_distribution<double> spread{0.0, 10.0};
  for (int i = 0; i < 256; ++i) {
    const double time = spread(rng);
    queue.push(time, i);
    reference.push(time, i);
  }
  std::uniform_real_distribution<double> increment{0.5e-3, 1.5e-3};
  for (int step = 0; step < 20000; ++step) {
    ASSERT_EQ(queue.next_time(), reference.next_time()) << "step " << step;
    const double now = reference.next_time();
    const int id = queue.pop();
    ASSERT_EQ(id, reference.pop()) << "step " << step;
    const double next = now + increment(rng);
    queue.push(next, id);
    reference.push(next, id);
  }
  while (!reference.empty()) ASSERT_EQ(queue.pop(), reference.pop());
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueueTest, ReusableAfterDrain) {
  CalendarQueue<int> queue{1.0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) queue.push(static_cast<double>(10 - i), i);
    for (int i = 9; i >= 0; --i) ASSERT_EQ(queue.pop(), i);
    ASSERT_TRUE(queue.empty());
  }
}

}  // namespace
