// RealVfs passthrough semantics and the CRC-32 the journal checksums use.

#include "io/vfs.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "io/checksum.h"

namespace cloudrepro::io {
namespace {

namespace fs = std::filesystem;

class RealVfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-vfs-" +
             std::string{::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()});
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(RealVfsTest, WriteReadRoundTrip) {
  RealVfs vfs;
  const auto path = root_ / "file.txt";
  auto out = vfs.open_write(path, WriteMode::kTruncate);
  out->append("hello ");
  out->append("world");
  out->sync();
  out->close();
  EXPECT_EQ(vfs.read_file(path), "hello world");
  EXPECT_EQ(vfs.file_size(path), 11u);
  EXPECT_TRUE(vfs.exists(path));
}

TEST_F(RealVfsTest, ReadMissingFileIsNullopt) {
  RealVfs vfs;
  EXPECT_EQ(vfs.read_file(root_ / "absent"), std::nullopt);
  EXPECT_FALSE(vfs.exists(root_ / "absent"));
  EXPECT_EQ(vfs.file_size(root_ / "absent"), 0u);
}

TEST_F(RealVfsTest, AppendModePreservesExistingContent) {
  RealVfs vfs;
  const auto path = root_ / "log";
  vfs.open_write(path, WriteMode::kTruncate)->append("a");
  vfs.open_write(path, WriteMode::kAppend)->append("b");
  EXPECT_EQ(vfs.read_file(path), "ab");
}

TEST_F(RealVfsTest, ExclusiveModeFailsOnExistingFile) {
  RealVfs vfs;
  const auto path = root_ / "lock";
  vfs.open_write(path, WriteMode::kExclusive)->append("pid 1\n");
  try {
    vfs.open_write(path, WriteMode::kExclusive);
    FAIL() << "second exclusive create must fail";
  } catch (const IoError& error) {
    EXPECT_EQ(error.error_code(), EEXIST);
  }
}

TEST_F(RealVfsTest, RenameReplacesAtomically) {
  RealVfs vfs;
  vfs.open_write(root_ / "tmp", WriteMode::kTruncate)->append("new");
  vfs.open_write(root_ / "final", WriteMode::kTruncate)->append("old");
  vfs.rename(root_ / "tmp", root_ / "final");
  EXPECT_EQ(vfs.read_file(root_ / "final"), "new");
  EXPECT_FALSE(vfs.exists(root_ / "tmp"));
}

TEST_F(RealVfsTest, TruncateShortensFile) {
  RealVfs vfs;
  const auto path = root_ / "t";
  vfs.open_write(path, WriteMode::kTruncate)->append("0123456789");
  vfs.truncate(path, 4);
  EXPECT_EQ(vfs.read_file(path), "0123");
}

TEST_F(RealVfsTest, ListDirIsSortedAndEmptyForMissing) {
  RealVfs vfs;
  vfs.create_directories(root_ / "d");
  vfs.open_write(root_ / "d" / "b", WriteMode::kTruncate)->append("x");
  vfs.open_write(root_ / "d" / "a", WriteMode::kTruncate)->append("x");
  const auto names = vfs.list_dir(root_ / "d");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0].filename(), "a");
  EXPECT_EQ(names[1].filename(), "b");
  EXPECT_TRUE(vfs.list_dir(root_ / "missing").empty());
}

TEST_F(RealVfsTest, RemoveAllCountsRemovedFiles) {
  RealVfs vfs;
  vfs.create_directories(root_ / "e");
  vfs.open_write(root_ / "e" / "one", WriteMode::kTruncate)->append("x");
  EXPECT_GE(vfs.remove_all(root_ / "e"), 1u);
  EXPECT_FALSE(vfs.exists(root_ / "e"));
}

// IEEE CRC-32 check vectors; "123456789" -> cbf43926 is the canonical one.
TEST(ChecksumTest, KnownVectors) {
  EXPECT_EQ(crc32_hex(""), "00000000");
  EXPECT_EQ(crc32_hex("123456789"), "cbf43926");
  EXPECT_EQ(crc32_hex("The quick brown fox jumps over the lazy dog"),
            "414fa339");
}

TEST(ChecksumTest, SensitiveToSingleBitFlips) {
  const std::string base = R"({"cell":3,"rep":1,"value":42.5})";
  const auto reference = crc32_hex(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::string flipped = base;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(crc32_hex(flipped), reference) << "bit flip at byte " << i;
  }
}

}  // namespace
}  // namespace cloudrepro::io
