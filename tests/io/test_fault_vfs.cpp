// The deterministic fault injector: op counting, scheduled EIO/ENOSPC,
// dropped fsyncs, crash rollback of unsynced bytes, and post-crash
// poisoning. Every behavior here is what the crash-torture harness leans
// on, so these tests pin the injector itself.

#include "io/fault_vfs.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace cloudrepro::io {
namespace {

namespace fs = std::filesystem;

class FaultVfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-faultvfs-" +
             std::string{::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()});
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
  RealVfs real_;
};

TEST_F(FaultVfsTest, CountsEveryOperation) {
  FaultVfs vfs{real_};
  auto out = vfs.open_write(root_ / "f", WriteMode::kTruncate);  // op 1
  out->append("x");                                              // op 2
  out->sync();                                                   // op 3
  out->close();  // Not an op: close has no failure schedule of its own.
  vfs.exists(root_ / "f");                                       // op 4
  EXPECT_EQ(vfs.ops(), 4u);
  EXPECT_EQ(vfs.bytes_written(), 1u);
}

TEST_F(FaultVfsTest, EioFiresAtScheduledOp) {
  FaultVfsOptions options;
  options.eio_at_ops = {2};
  FaultVfs vfs{real_, options};
  auto out = vfs.open_write(root_ / "f", WriteMode::kTruncate);  // op 1
  try {
    out->append("data");  // op 2: scheduled EIO
    FAIL() << "append must fail with the scheduled EIO";
  } catch (const IoError& error) {
    EXPECT_EQ(error.error_code(), EIO);
  }
  // EIO is transient, not a crash: the vfs keeps working.
  out->append("data");
  EXPECT_EQ(vfs.read_file(root_ / "f"), "data");
}

TEST_F(FaultVfsTest, EnospcWritesThePrefixThatFits) {
  FaultVfsOptions options;
  options.enospc_after_bytes = 6;
  FaultVfs vfs{real_, options};
  auto out = vfs.open_write(root_ / "f", WriteMode::kTruncate);
  out->append("1234");
  try {
    out->append("5678");  // Only 2 more bytes fit.
    FAIL() << "append past the budget must fail with ENOSPC";
  } catch (const IoError& error) {
    EXPECT_EQ(error.error_code(), ENOSPC);
  }
  // Exactly like a real full disk: the short write landed.
  EXPECT_EQ(vfs.read_file(root_ / "f"), "123456");
}

TEST_F(FaultVfsTest, CrashLosesUnsyncedTailDeterministically) {
  const auto run = [&](std::uint64_t torn_seed) {
    fs::remove_all(root_ / "d");
    real_.create_directories(root_ / "d");
    FaultVfsOptions options;
    options.crash_at_op = 5;
    options.torn_write_seed = torn_seed;
    FaultVfs vfs{real_, options};
    auto out = vfs.open_write(root_ / "d" / "f", WriteMode::kTruncate);  // 1
    out->append("synced|");                                             // 2
    out->sync();                                                        // 3
    out->append("0123456789");                                          // 4
    EXPECT_THROW(out->append("never"), SimulatedCrash);                 // 5
    EXPECT_TRUE(vfs.crashed());
    return real_.read_file(root_ / "d" / "f").value();
  };

  const std::string survived = run(1);
  // Synced bytes always survive; the unsynced tail is an arbitrary prefix.
  EXPECT_EQ(survived.compare(0, 7, "synced|"), 0);
  EXPECT_LE(survived.size(), 7u + 15u);
  // Same schedule, same bytes — the determinism the sweep relies on.
  EXPECT_EQ(run(1), survived);

  // Different torn seeds explore different tail lengths somewhere in [0,n].
  bool varies = false;
  for (std::uint64_t seed = 2; seed < 12 && !varies; ++seed) {
    varies = run(seed) != survived;
  }
  EXPECT_TRUE(varies) << "torn tail length never varied across 10 seeds";
}

TEST_F(FaultVfsTest, DroppedFsyncMakesTheCrashLoseMore) {
  FaultVfsOptions options;
  options.crash_at_op = 5;
  options.dropped_fsyncs = {3};  // The sync the writer thinks happened.
  options.torn_write_seed = 7;
  FaultVfs vfs{real_, options};
  auto out = vfs.open_write(root_ / "f", WriteMode::kTruncate);  // 1
  out->append("ABCDEFGH");                                       // 2
  out->sync();                                                   // 3: dropped
  out->append("IJKL");                                           // 4
  EXPECT_THROW(out->sync(), SimulatedCrash);                     // 5
  EXPECT_EQ(vfs.dropped_sync_count(), 1u);
  // Nothing was ever durable, so the whole file is up for tearing: whatever
  // survived must be a (possibly empty) prefix of what was written.
  const auto survived = real_.read_file(root_ / "f").value();
  EXPECT_LE(survived.size(), 12u);
  EXPECT_EQ(std::string{"ABCDEFGHIJKL"}.compare(0, survived.size(), survived), 0);
}

TEST_F(FaultVfsTest, EveryOperationAfterCrashThrows) {
  FaultVfsOptions options;
  options.crash_at_op = 1;
  FaultVfs vfs{real_, options};
  EXPECT_THROW(vfs.exists(root_ / "f"), SimulatedCrash);
  // Poisoned: the "process" is dead, no operation works anymore.
  EXPECT_THROW(vfs.exists(root_ / "f"), SimulatedCrash);
  EXPECT_THROW(vfs.open_write(root_ / "f", WriteMode::kTruncate), SimulatedCrash);
  EXPECT_THROW(vfs.read_file(root_ / "f"), SimulatedCrash);
  EXPECT_TRUE(vfs.crashed());
}

TEST_F(FaultVfsTest, RenameCarriesSyncedLengthToTheNewName) {
  FaultVfsOptions options;
  options.crash_at_op = 5;
  options.torn_write_seed = 3;
  FaultVfs vfs{real_, options};
  {
    auto out = vfs.open_write(root_ / "tmp", WriteMode::kTruncate);  // 1
    out->append("durable-content");                                  // 2
    out->sync();                                                     // 3
    out->close();
  }
  vfs.rename(root_ / "tmp", root_ / "final");                        // 4
  EXPECT_THROW(vfs.exists(root_ / "x"), SimulatedCrash);             // 5
  // fsync-before-rename published durably: the crash cannot tear it.
  EXPECT_EQ(real_.read_file(root_ / "final"), "durable-content");
}

TEST_F(FaultVfsTest, UnsyncedRenameCanTearThePublishedFile) {
  const std::string payload = "supposedly-published";
  bool tore = false;
  for (std::uint64_t torn_seed = 1; torn_seed <= 16; ++torn_seed) {
    fs::remove_all(root_ / "d");
    real_.create_directories(root_ / "d");
    FaultVfsOptions options;
    options.crash_at_op = 4;
    options.torn_write_seed = torn_seed;
    FaultVfs vfs{real_, options};
    {
      auto out = vfs.open_write(root_ / "d" / "tmp", WriteMode::kTruncate);  // 1
      out->append(payload);                                                  // 2 — never synced
      out->close();
    }
    vfs.rename(root_ / "d" / "tmp", root_ / "d" / "final");                  // 3
    EXPECT_THROW(vfs.exists(root_ / "d" / "x"), SimulatedCrash);             // 4
    // The name exists but the content may be any prefix — the torn-summary
    // hazard write_summary's fsync-before-rename exists to prevent.
    const auto survived = real_.read_file(root_ / "d" / "final").value();
    EXPECT_EQ(payload.compare(0, survived.size(), survived), 0);
    tore = tore || survived.size() < payload.size();
  }
  EXPECT_TRUE(tore) << "no torn seed ever tore the unsynced published file";
}

TEST_F(FaultVfsTest, AppendToPreexistingFileTreatsOldBytesAsDurable) {
  real_.open_write(root_ / "f", WriteMode::kTruncate)->append("old-bytes|");
  FaultVfsOptions options;
  options.crash_at_op = 3;
  options.torn_write_seed = 5;
  FaultVfs vfs{real_, options};
  auto out = vfs.open_write(root_ / "f", WriteMode::kAppend);  // 1
  out->append("fresh");                                        // 2
  EXPECT_THROW(out->sync(), SimulatedCrash);                   // 3
  const auto survived = real_.read_file(root_ / "f").value();
  // A crash in this process can only lose bytes this process wrote.
  EXPECT_EQ(survived.compare(0, 10, "old-bytes|"), 0);
}

}  // namespace
}  // namespace cloudrepro::io
