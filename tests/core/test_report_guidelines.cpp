#include <gtest/gtest.h>

#include <sstream>

#include "core/guidelines.h"
#include "core/report.h"

namespace cloudrepro::core {
namespace {

ExperimentResult make_result(int reps, bool fresh, double spread = 1.0) {
  ExperimentResult r;
  r.environment = "test env";
  r.plan.repetitions = reps;
  r.plan.fresh_environment_each_run = fresh;
  stats::Rng rng{1};
  for (int i = 0; i < reps; ++i) r.values.push_back(rng.normal(100.0, spread));
  r.summary = stats::summarize(r.values);
  r.median_ci = stats::median_ci(r.values);
  if (r.values.size() >= 4) {
    r.normality = stats::shapiro_wilk(r.values);
    r.independence = stats::runs_test(r.values);
    r.diagnostics_available = true;
  }
  return r;
}

// ---- TablePrinter ------------------------------------------------------------

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter t{{"Cloud", "Gbps"}};
  t.add_row({"EC2", "10.00"});
  t.add_row({"Google Cloud", "16.00"});
  std::ostringstream ss;
  t.print(ss);
  const auto out = ss.str();
  EXPECT_NE(out.find("Cloud"), std::string::npos);
  EXPECT_NE(out.find("Google Cloud"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinterTest, RejectsMismatchedRow) {
  TablePrinter t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(TablePrinter{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(FormatTest, Fmt) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt_pct(0.25), "25.0%");
}

TEST(FormatTest, FmtCi) {
  stats::ConfidenceInterval ci;
  ci.estimate = 10.0;
  ci.lower = 9.0;
  ci.upper = 11.0;
  ci.valid = true;
  EXPECT_EQ(fmt_ci(ci), "10.00 [9.00, 11.00]");
  ci.valid = false;
  EXPECT_NE(fmt_ci(ci).find("n too small"), std::string::npos);
}

TEST(ReportTest, ExperimentReportContainsKeyFields) {
  const auto r = make_result(20, true);
  std::ostringstream ss;
  print_experiment_report(ss, r);
  const auto out = ss.str();
  EXPECT_NE(out.find("test env"), std::string::npos);
  EXPECT_NE(out.find("median"), std::string::npos);
  EXPECT_NE(out.find("normality"), std::string::npos);
  EXPECT_NE(out.find("independence"), std::string::npos);
  EXPECT_NE(out.find("fresh environment"), std::string::npos);
}

TEST(ReportTest, Verdicts) {
  stats::TestResult ok{0.0, 0.5};
  stats::TestResult bad{0.0, 0.001};
  EXPECT_NE(normality_verdict(ok).find("consistent"), std::string::npos);
  EXPECT_NE(normality_verdict(bad).find("NOT normal"), std::string::npos);
  EXPECT_NE(independence_verdict(ok).find("consistent"), std::string::npos);
  EXPECT_NE(independence_verdict(bad).find("NOT independent"), std::string::npos);
}

// ---- Guidelines ----------------------------------------------------------------

TEST(GuidelinesTest, CleanExperimentFewFindings) {
  const auto r = make_result(30, true);
  ExperimentContext ctx;
  ctx.baseline = NetworkFingerprint{};
  const auto findings = check_guidelines(r, ctx);
  for (const auto& f : findings) {
    EXPECT_NE(f.severity, Severity::kViolation) << f.message;
  }
}

TEST(GuidelinesTest, ThreeRepsIsAViolation) {
  const auto r = make_result(3, true);
  const auto findings = check_guidelines(r);
  bool found = false;
  for (const auto& f : findings) {
    if (f.guideline == Guideline::kF53_EnoughRepetitions &&
        f.severity == Severity::kViolation) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GuidelinesTest, ReusedEnvironmentWithTokenBucketIsViolation) {
  const auto r = make_result(20, /*fresh=*/false);
  ExperimentContext ctx;
  ctx.qos = QosClass::kTokenBucket;
  const auto findings = check_guidelines(r, ctx);
  bool found = false;
  for (const auto& f : findings) {
    if (f.guideline == Guideline::kF54_StatisticalAssumptions &&
        f.severity == Severity::kViolation) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GuidelinesTest, ReusedEnvironmentWithoutBucketIsOnlyWarning) {
  const auto r = make_result(20, /*fresh=*/false);
  ExperimentContext ctx;
  ctx.qos = QosClass::kNone;
  const auto findings = check_guidelines(r, ctx);
  for (const auto& f : findings) {
    if (f.guideline == Guideline::kF54_StatisticalAssumptions &&
        f.message.find("reused") != std::string::npos) {
      EXPECT_EQ(f.severity, Severity::kWarning);
    }
  }
}

TEST(GuidelinesTest, MissingBaselineIsWarning) {
  const auto r = make_result(20, true);
  const auto findings = check_guidelines(r, {});
  bool found = false;
  for (const auto& f : findings) {
    if (f.guideline == Guideline::kF52_BaselineFingerprint) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GuidelinesTest, DriftedBaselineIsViolation) {
  const auto r = make_result(20, true);
  ExperimentContext ctx;
  NetworkFingerprint before;
  before.base_bandwidth_gbps = 10.0;
  NetworkFingerprint after = before;
  after.base_bandwidth_gbps = 5.0;
  ctx.baseline = before;
  ctx.current_fingerprint = after;
  const auto findings = check_guidelines(r, ctx);
  bool violation = false;
  for (const auto& f : findings) {
    if (f.guideline == Guideline::kF52_BaselineFingerprint &&
        f.severity == Severity::kViolation) {
      violation = true;
      EXPECT_NE(f.message.find("bandwidth"), std::string::npos);
    }
  }
  EXPECT_TRUE(violation);
}

TEST(GuidelinesTest, CrossCloudComparisonFlagged) {
  const auto r = make_result(20, true);
  ExperimentContext ctx;
  ctx.compares_across_clouds = true;
  const auto findings = check_guidelines(r, ctx);
  bool found = false;
  for (const auto& f : findings) {
    if (f.guideline == Guideline::kF51_CrossCloudComparison) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GuidelinesTest, MissingEnvironmentDescriptionFlagged) {
  auto r = make_result(20, true);
  r.environment.clear();
  const auto findings = check_guidelines(r);
  bool found = false;
  for (const auto& f : findings) {
    if (f.guideline == Guideline::kF55_ReportPlatformDetail &&
        f.severity == Severity::kViolation) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GuidelinesTest, RenderFindings) {
  EXPECT_EQ(render_findings({}), "All guideline checks passed.\n");
  std::vector<GuidelineFinding> findings{
      {Guideline::kF53_EnoughRepetitions, Severity::kViolation, "too few"}};
  const auto out = render_findings(findings);
  EXPECT_NE(out.find("VIOLATION"), std::string::npos);
  EXPECT_NE(out.find("F5.3"), std::string::npos);
  EXPECT_NE(out.find("too few"), std::string::npos);
}

TEST(GuidelinesTest, ToStringCoversAll) {
  EXPECT_FALSE(to_string(Guideline::kF51_CrossCloudComparison).empty());
  EXPECT_FALSE(to_string(Guideline::kF55_ReportPlatformDetail).empty());
  EXPECT_EQ(to_string(Severity::kAdvice), "advice");
  EXPECT_EQ(to_string(Severity::kViolation), "VIOLATION");
}

}  // namespace
}  // namespace cloudrepro::core
