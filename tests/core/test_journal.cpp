// Adversarial input for the journal format: truncations, bit flips, and
// garbage must be rejected or truncate-and-resume — never crash, never
// silently mis-parse into a wrong measurement.

#include "core/journal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "io/checksum.h"
#include "io/vfs.h"
#include "stats/rng.h"

namespace cloudrepro::core {
namespace {

namespace fs = std::filesystem;

std::vector<CampaignCell> grid(std::size_t n) {
  std::vector<CampaignCell> cells;
  for (std::size_t i = 0; i < n; ++i) {
    cells.push_back(CampaignCell{"cfg" + std::to_string(i), "t",
                                 [](stats::Rng&) { return 0.0; }, [] {}});
  }
  return cells;
}

class JournalAdversarialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-journal-" +
             std::string{::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()});
    fs::remove_all(root_);
    fs::create_directories(root_);

    cells_ = grid(3);
    header_ = journal_header(cells_, options_, kSeed);
    std::string text = header_ + "\n";
    for (std::size_t cell = 0; cell < 3; ++cell) {
      for (int rep = 0; rep < options_.repetitions_per_cell; ++rep) {
        const JournalRecord record{cell, rep,
                                   1.5 + static_cast<double>(cell) * 10 + rep};
        records_.push_back(record);
        text += journal_line(record) + "\n";
      }
    }
    journal_bytes_ = text;
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Writes `bytes` as the journal and replays it.
  JournalReplay replay(const std::string& bytes) {
    auto& vfs = io::real_vfs();
    const auto path = root_ / "journal.jsonl";
    auto out = vfs.open_write(path, io::WriteMode::kTruncate);
    out->append(bytes);
    out->close();
    return replay_journal(vfs, path, header_, 3, options_.repetitions_per_cell);
  }

  /// Every accepted (cell, rep) must carry the exact original value —
  /// corruption may shrink the accepted set, never distort it.
  void expect_subset_of_original(const JournalReplay& result) {
    for (const auto& [key, value] : result.done) {
      bool found = false;
      for (const auto& record : records_) {
        if (record.cell == key.first && record.rep == key.second) {
          EXPECT_EQ(value, record.value);
          found = true;
        }
      }
      EXPECT_TRUE(found) << "accepted a (cell, rep) never written: ("
                         << key.first << ", " << key.second << ")";
    }
  }

  static constexpr std::uint64_t kSeed = 7;
  fs::path root_;
  CampaignOptions options_;
  std::vector<CampaignCell> cells_;
  std::string header_;
  std::vector<JournalRecord> records_;
  std::string journal_bytes_;
};

TEST_F(JournalAdversarialTest, RecordsRoundTripThroughParse) {
  stats::Rng rng{11};
  for (int i = 0; i < 200; ++i) {
    const JournalRecord record{rng.next_u64() % 3,
                               static_cast<int>(rng.next_u64() % 10),
                               rng.normal(0.0, 1e6)};
    JournalRecord parsed;
    ASSERT_TRUE(parse_journal_line(journal_line(record), parsed));
    EXPECT_EQ(parsed.cell, record.cell);
    EXPECT_EQ(parsed.rep, record.rep);
    EXPECT_EQ(parsed.value, record.value);  // Bit-exact via %.17g.
  }
}

TEST_F(JournalAdversarialTest, EveryTruncationIsRecoverable) {
  for (std::size_t len = 0; len <= journal_bytes_.size(); ++len) {
    const auto result = replay(journal_bytes_.substr(0, len));
    expect_subset_of_original(result);
    // The valid prefix must itself be a whole number of intact lines.
    EXPECT_LE(result.valid_bytes, len);
    if (len < journal_bytes_.size()) {
      EXPECT_LT(result.done.size(), records_.size());
    } else {
      EXPECT_EQ(result.done.size(), records_.size());
      EXPECT_FALSE(result.corrupt_tail);
    }
  }
}

TEST_F(JournalAdversarialTest, EveryBitFlipRejectsOrTruncates) {
  for (std::size_t i = 0; i < journal_bytes_.size(); ++i) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string flipped = journal_bytes_;
      flipped[i] = static_cast<char>(flipped[i] ^ mask);
      // Some flips add or remove newlines and re-frame every later line;
      // the checksum catches each mis-framed record, so the subset
      // property below is the whole contract.
      try {
        expect_subset_of_original(replay(flipped));
      } catch (const JournalMismatch&) {
        // Header or record-range damage: rejected outright, also fine.
      }
    }
  }
}

TEST_F(JournalAdversarialTest, GarbageBytesNeverCrashTheReplay) {
  stats::Rng rng{13};
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage;
    const std::size_t len = rng.next_u64() % 400;
    for (std::size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.next_u64() & 0xff));
    }
    try {
      const auto result = replay(garbage);
      // Whatever was salvaged must still be a subset of nothing-or-valid.
      expect_subset_of_original(result);
    } catch (const JournalMismatch&) {
    }
  }
}

TEST_F(JournalAdversarialTest, TamperedCrcFieldRejectsTheRecord) {
  const auto line = journal_line({1, 2, 3.25});
  // Overwrite the embedded checksum with a different valid-looking one.
  auto tampered = line;
  const auto crc_pos = tampered.rfind("\"crc\":\"") + 7;
  tampered[crc_pos] = tampered[crc_pos] == '0' ? '1' : '0';
  JournalRecord record;
  EXPECT_FALSE(parse_journal_line(tampered, record));
}

TEST_F(JournalAdversarialTest, ValidCrcOverBogusPayloadStillRejects) {
  // An attacker (or a very unlucky disk) could produce a payload whose
  // checksum matches but whose fields are nonsense: field validation is a
  // separate gate.
  const std::string payload = R"({"cell":x,"rep":0,"value":1.0})";
  const std::string line = payload + ",\"crc\":\"" + io::crc32_hex(payload) + "\"}";
  JournalRecord record;
  EXPECT_FALSE(parse_journal_line(line, record));
}

TEST_F(JournalAdversarialTest, OutOfRangeRecordIsAMismatchNotATruncation) {
  // cell 7 of a 3-cell grid: internally consistent bytes, wrong campaign.
  // Truncating would silently drop real work; the caller must evict.
  const std::string bytes =
      header_ + "\n" + journal_line({7, 0, 1.0}) + "\n";
  EXPECT_THROW(replay(bytes), JournalMismatch);
}

TEST_F(JournalAdversarialTest, ForeignHeaderIsAMismatch) {
  EXPECT_THROW(replay("{\"type\":\"something-else\"}\n"), JournalMismatch);
  EXPECT_THROW(replay("not json at all\n"), JournalMismatch);
}

TEST_F(JournalAdversarialTest, TornHeaderPrefixReplaysAsFresh) {
  for (std::size_t len = 0; len < header_.size(); ++len) {
    const auto result = replay(header_.substr(0, len));
    EXPECT_TRUE(result.done.empty());
    EXPECT_EQ(result.valid_bytes, 0u);
  }
}

TEST_F(JournalAdversarialTest, StopRecordRoundTripsThroughParse) {
  const JournalRecord stop = journal_stop_record(2, 7);
  EXPECT_EQ(stop.kind, JournalRecord::Kind::kStop);
  JournalRecord parsed;
  ASSERT_TRUE(parse_journal_line(journal_line(stop), parsed));
  EXPECT_EQ(parsed.kind, JournalRecord::Kind::kStop);
  EXPECT_EQ(parsed.cell, 2u);
  EXPECT_EQ(parsed.rep, 7);
}

TEST_F(JournalAdversarialTest, StopRecordsReplayIntoStopsMap) {
  std::string bytes = journal_bytes_;
  bytes += journal_line(journal_stop_record(1, 3)) + "\n";
  const auto result = replay(bytes);
  EXPECT_EQ(result.done.size(), records_.size());
  ASSERT_EQ(result.stops.size(), 1u);
  EXPECT_EQ(result.stops.at(1), 3);
  EXPECT_FALSE(result.corrupt_tail);
}

TEST_F(JournalAdversarialTest, OutOfRangeStopRecordIsAMismatch) {
  // A stop for a cell outside the grid, or claiming more repetitions than
  // the cap, is a different-campaign signal — same policy as out-of-range
  // measurement records.
  EXPECT_THROW(
      replay(header_ + "\n" + journal_line(journal_stop_record(99, 3)) + "\n"),
      JournalMismatch);
  EXPECT_THROW(
      replay(header_ + "\n" +
             journal_line(journal_stop_record(
                 0, options_.repetitions_per_cell + 1)) +
             "\n"),
      JournalMismatch);
  EXPECT_THROW(
      replay(header_ + "\n" + journal_line(journal_stop_record(0, 0)) + "\n"),
      JournalMismatch);
}

TEST_F(JournalAdversarialTest, TornStopRecordTruncatesCleanly) {
  const std::string stop_line = journal_line(journal_stop_record(0, 2)) + "\n";
  const std::string base = journal_bytes_;
  for (std::size_t len = 0; len < stop_line.size(); ++len) {
    const auto result = replay(base + stop_line.substr(0, len));
    // The torn stop record is dropped; every measurement survives.
    EXPECT_EQ(result.done.size(), records_.size());
    EXPECT_TRUE(result.stops.empty());
  }
}

TEST_F(JournalAdversarialTest, AdaptiveHeaderFieldsChangeTheHeader) {
  // Adaptive options participate in the header (a resumed adaptive
  // campaign must not replay a fixed-repetition journal and vice versa),
  // but a disabled AdaptiveConfirmOptions leaves the header byte-identical
  // to the pre-adaptive format.
  CampaignOptions adaptive = options_;
  adaptive.adaptive.enabled = true;
  adaptive.adaptive.error_bound = 0.05;
  const std::string adaptive_header = journal_header(cells_, adaptive, kSeed);
  EXPECT_NE(adaptive_header, header_);
  EXPECT_NE(adaptive_header.find("\"adaptive\""), std::string::npos);
  EXPECT_EQ(header_.find("\"adaptive\""), std::string::npos);

  CampaignOptions tweaked = adaptive;
  tweaked.adaptive.error_bound = 0.10;
  EXPECT_NE(journal_header(cells_, tweaked, kSeed), adaptive_header);
}

}  // namespace
}  // namespace cloudrepro::core
