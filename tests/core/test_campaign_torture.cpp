// Crash-torture harness for the campaign journal: crash the "process" at
// every possible vfs operation k, restart, and require the final result to
// be byte-identical to an uninterrupted run. If any durability assumption
// in the journal path is wrong (missing fsync, non-atomic publish, corrupt
// tail mishandling), some k exposes it.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <vector>

#include "core/campaign.h"
#include "core/journal.h"
#include "io/fault_vfs.h"
#include "io/vfs.h"

namespace cloudrepro::core {
namespace {

namespace fs = std::filesystem;

/// Cheap deterministic cells: each repetition's value is a pure function of
/// its seed-derived RNG stream, so interrupted-and-resumed campaigns can be
/// compared bit-for-bit against uninterrupted ones.
std::vector<CampaignCell> torture_cells() {
  std::vector<CampaignCell> cells;
  const struct {
    const char* config;
    const char* treatment;
    double mean;
  } specs[] = {{"wl-a", "t=1", 100.0},
               {"wl-a", "t=2", 150.0},
               {"wl-b", "t=1", 80.0}};
  for (const auto& spec : specs) {
    cells.push_back(CampaignCell{
        spec.config, spec.treatment,
        [mean = spec.mean](stats::Rng& rng) { return rng.normal(mean, 5.0); },
        [] {}});
  }
  return cells;
}

CampaignOptions torture_options() {
  CampaignOptions options;
  options.repetitions_per_cell = 4;  // 3 cells x 4 reps = 12 measurements.
  return options;
}

std::string csv_bytes(const CampaignResult& result) {
  std::ostringstream out;
  result.write_csv(out);
  return out.str();
}

class CampaignCrashTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("cloudrepro-torture-" +
             std::string{::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()});
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
  io::RealVfs real_;
  static constexpr std::uint64_t kSeed = 20200225;  // NSDI '20 day one.
};

TEST_F(CampaignCrashTortureTest, EveryCrashPointResumesBitIdentical) {
  // Uninterrupted reference run (journaled through a counting FaultVfs so
  // its op total defines the crash-point sweep domain).
  io::FaultVfs counting{real_};
  auto options = torture_options();
  options.vfs = &counting;
  options.journal_path = root_ / "ref" / "journal.jsonl";
  fs::create_directories(root_ / "ref");
  const auto reference = run_campaign(torture_cells(), options, kSeed);
  ASSERT_TRUE(reference.complete);
  const std::string reference_csv = csv_bytes(reference);
  const std::uint64_t total_ops = counting.ops();
  ASSERT_GT(total_ops, 10u);

  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    const auto dir = root_ / ("k" + std::to_string(k));
    fs::create_directories(dir);
    auto opts = torture_options();
    opts.journal_path = dir / "journal.jsonl";

    // Run until the crash, losing a torn fraction of unsynced bytes.
    io::FaultVfsOptions fault;
    fault.crash_at_op = k;
    fault.torn_write_seed = k * 77 + 1;
    bool crashed = false;
    CampaignResult result;
    {
      io::FaultVfs vfs{real_, fault};
      opts.vfs = &vfs;
      try {
        result = run_campaign(torture_cells(), opts, kSeed);
      } catch (const io::SimulatedCrash&) {
        crashed = true;
      }
    }
    if (crashed) {
      // Restart: a fresh "process" over whatever survived on disk.
      io::FaultVfs vfs{real_};
      opts.vfs = &vfs;
      result = run_campaign(torture_cells(), opts, kSeed);
    }

    ASSERT_TRUE(result.complete) << "crash point k=" << k;
    EXPECT_EQ(csv_bytes(result), reference_csv)
        << "resumed result diverged after crash at op " << k;
  }
}

TEST_F(CampaignCrashTortureTest, DroppedFsyncStillResumesBitIdentical) {
  // Op-count the clean run so the schedule can target its final fsync.
  io::FaultVfs counting{real_};
  auto ref_opts = torture_options();
  ref_opts.vfs = &counting;
  ref_opts.journal_path = root_ / "ref.jsonl";
  const auto reference = run_campaign(torture_cells(), ref_opts, kSeed);
  const std::uint64_t total_ops = counting.ops();

  // Drop every fsync the campaign issues, let it "complete", then crash on
  // the next operation: nothing was ever durable, so the crash may tear the
  // journal anywhere — including mid-record. Resume must still converge to
  // the same result.
  auto options = torture_options();
  options.journal_path = root_ / "journal.jsonl";
  io::FaultVfsOptions fault;
  fault.crash_at_op = total_ops + 1;
  fault.torn_write_seed = 99;
  for (std::uint64_t op = 1; op <= total_ops; ++op) {
    fault.dropped_fsyncs.push_back(op);
  }
  {
    io::FaultVfs vfs{real_, fault};
    options.vfs = &vfs;
    const auto doomed = run_campaign(torture_cells(), options, kSeed);
    EXPECT_TRUE(doomed.complete);  // It believes its fsyncs happened...
    EXPECT_GT(vfs.dropped_sync_count(), 0u);
    EXPECT_THROW(vfs.exists(root_), io::SimulatedCrash);  // ...then dies.
  }
  io::FaultVfs vfs{real_};
  options.vfs = &vfs;
  const auto resumed = run_campaign(torture_cells(), options, kSeed);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(csv_bytes(resumed), csv_bytes(reference));
}

TEST_F(CampaignCrashTortureTest, EnospcPropagatesAndResumeCompletes) {
  auto options = torture_options();
  options.journal_path = root_ / "journal.jsonl";

  io::FaultVfsOptions fault;
  fault.enospc_after_bytes = 600;  // Enough for the header + a few records.
  {
    io::FaultVfs vfs{real_, fault};
    options.vfs = &vfs;
    try {
      run_campaign(torture_cells(), options, kSeed);
      FAIL() << "the journal write past the budget must surface ENOSPC";
    } catch (const io::IoError& error) {
      EXPECT_EQ(error.error_code(), ENOSPC);
    }
  }

  // The disk "recovers"; the journaled prefix is reused, not re-run.
  io::FaultVfs vfs{real_};
  options.vfs = &vfs;
  const auto resumed = run_campaign(torture_cells(), options, kSeed);
  ASSERT_TRUE(resumed.complete);
  EXPECT_GT(resumed.resumed_measurements, 0u);

  auto clean_opts = torture_options();
  const auto clean = run_campaign(torture_cells(), clean_opts, kSeed);
  EXPECT_EQ(csv_bytes(resumed), csv_bytes(clean));
}

TEST_F(CampaignCrashTortureTest, CancellationJournalsPrefixAndResumes) {
  std::atomic<bool> cancel{false};
  int executed = 0;

  // The cancel flag flips from inside the 5th measurement — the shape of a
  // SIGINT arriving mid-campaign.
  std::vector<CampaignCell> cells = torture_cells();
  for (auto& cell : cells) {
    auto inner = cell.run_once;
    cell.run_once = [&cancel, &executed, inner](stats::Rng& rng) {
      if (++executed == 5) cancel.store(true);
      return inner(rng);
    };
  }

  auto options = torture_options();
  options.journal_path = root_ / "journal.jsonl";
  options.cancel = &cancel;
  const auto interrupted = run_campaign(std::move(cells), options, kSeed);
  EXPECT_FALSE(interrupted.complete);
  EXPECT_EQ(executed, 5);

  // Every executed measurement reached the journal before return.
  auto& vfs = io::real_vfs();
  const auto replay = replay_journal(
      vfs, options.journal_path,
      journal_header(torture_cells(), options, kSeed), 3,
      options.repetitions_per_cell);
  EXPECT_EQ(replay.done.size(), 5u);

  auto resume_opts = torture_options();
  resume_opts.journal_path = options.journal_path;
  const auto resumed = run_campaign(torture_cells(), resume_opts, kSeed);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_measurements, 5u);

  const auto clean = run_campaign(torture_cells(), torture_options(), kSeed);
  EXPECT_EQ(csv_bytes(resumed), csv_bytes(clean));
}

}  // namespace
}  // namespace cloudrepro::core
