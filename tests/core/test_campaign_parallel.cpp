// Determinism contract of the parallel campaign runtime: for any thread
// count, run_campaign produces byte-identical output to the serial
// reference path (threads=1) — values, summaries, CSV, and
// journal-resumable state — including interrupt/resume cycles that cross
// thread counts.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/campaign.h"
#include "core/confirm.h"

namespace cloudrepro::core {
namespace {

/// A 6-cell grid (2 configs x 3 treatments) whose measurements are pure
/// functions of the repetition's RNG stream and burn enough arithmetic that
/// workers genuinely interleave.
std::vector<CampaignCell> grid_cells() {
  std::vector<CampaignCell> cells;
  for (const char* config : {"net-heavy", "cpu-bound"}) {
    for (const char* treatment : {"budget=5000", "budget=100", "budget=10"}) {
      cells.push_back(CampaignCell{
          config, treatment,
          [](stats::Rng& r) {
            double acc = 0.0;
            for (int i = 0; i < 500; ++i) acc += r.normal(100.0, 5.0);
            return acc / 500.0 + r.uniform();
          },
          [] {}});
    }
  }
  return cells;
}

std::string csv_of(const CampaignResult& result) {
  std::ostringstream ss;
  result.write_csv(ss);
  return ss.str();
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.execution_order, b.execution_order);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    ASSERT_EQ(a.cells[i].values.size(), b.cells[i].values.size()) << "cell " << i;
    for (std::size_t r = 0; r < a.cells[i].values.size(); ++r) {
      // Bit-identical, not just close.
      EXPECT_EQ(a.cells[i].values[r], b.cells[i].values[r])
          << "cell " << i << " rep " << r;
    }
    EXPECT_EQ(a.cells[i].summary.mean, b.cells[i].summary.mean);
    EXPECT_EQ(a.cells[i].summary.coefficient_of_variation,
              b.cells[i].summary.coefficient_of_variation);
    EXPECT_EQ(a.cells[i].median_ci.lower, b.cells[i].median_ci.lower);
    EXPECT_EQ(a.cells[i].median_ci.upper, b.cells[i].median_ci.upper);
  }
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(csv_of(a), csv_of(b));
}

TEST(CampaignParallelTest, BitIdenticalAcrossThreadCounts) {
  CampaignOptions serial_opt;
  serial_opt.repetitions_per_cell = 20;
  serial_opt.threads = 1;
  const auto reference = run_campaign(grid_cells(), serial_opt, std::uint64_t{99});
  ASSERT_TRUE(reference.complete);

  for (const int threads : {0, 2, 4, 8}) {
    auto opt = serial_opt;
    opt.threads = threads;
    const auto parallel = run_campaign(grid_cells(), opt, std::uint64_t{99});
    expect_identical(reference, parallel);
  }
}

TEST(CampaignParallelTest, PartialResultMatchesSerialUnderMaxMeasurements) {
  // Budget interruption without a journal: the parallel path must execute
  // exactly the serially-first max_measurements tasks.
  for (const int prefix : {1, 7, 33, 100}) {
    CampaignOptions opt;
    opt.repetitions_per_cell = 20;
    opt.max_measurements = prefix;
    opt.threads = 1;
    const auto serial = run_campaign(grid_cells(), opt, std::uint64_t{5});
    opt.threads = 8;
    const auto parallel = run_campaign(grid_cells(), opt, std::uint64_t{5});
    expect_identical(serial, parallel);
    EXPECT_FALSE(parallel.complete);
  }
}

TEST(CampaignParallelTest, InterruptAndResumeAcrossThreadCounts) {
  const auto dir = std::filesystem::path{::testing::TempDir()};
  CampaignOptions opt;
  opt.repetitions_per_cell = 20;  // 6 cells x 20 reps = 120 measurements.

  // Ground truth: uninterrupted serial run, no journal.
  auto full_opt = opt;
  full_opt.threads = 1;
  const auto full = run_campaign(grid_cells(), full_opt, std::uint64_t{17});

  // Interrupt with one thread count, resume with another (both directions,
  // plus parallel -> parallel): the journal carries no trace of the thread
  // count, so any combination must reconstruct the ground truth.
  struct Cycle {
    int interrupt_threads;
    int resume_threads;
    int prefix;
  };
  for (const auto& cycle : {Cycle{8, 1, 13}, Cycle{1, 8, 29}, Cycle{4, 2, 57}}) {
    auto journal_opt = opt;
    journal_opt.journal_path =
        dir / ("parallel-cycle-" + std::to_string(cycle.prefix) + ".jsonl");
    std::filesystem::remove(journal_opt.journal_path);

    journal_opt.max_measurements = cycle.prefix;
    journal_opt.threads = cycle.interrupt_threads;
    const auto partial = run_campaign(grid_cells(), journal_opt, std::uint64_t{17});
    EXPECT_FALSE(partial.complete);

    journal_opt.max_measurements = 0;
    journal_opt.threads = cycle.resume_threads;
    const auto resumed = run_campaign(grid_cells(), journal_opt, std::uint64_t{17});
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.resumed_measurements, static_cast<std::size_t>(cycle.prefix));
    expect_identical(full, resumed);
  }
}

TEST(CampaignParallelTest, ResumingACompleteJournalExecutesNothingInParallel) {
  const auto dir = std::filesystem::path{::testing::TempDir()};
  CampaignOptions opt;
  opt.repetitions_per_cell = 4;
  opt.journal_path = dir / "parallel-complete.jsonl";
  std::filesystem::remove(opt.journal_path);

  opt.threads = 8;
  run_campaign(grid_cells(), opt, std::uint64_t{23});

  std::atomic<int> executions{0};
  auto cells = grid_cells();
  for (auto& cell : cells) {
    auto inner = cell.run_once;
    cell.run_once = [inner, &executions](stats::Rng& r) {
      executions.fetch_add(1, std::memory_order_relaxed);
      return inner(r);
    };
  }
  const auto resumed = run_campaign(cells, opt, std::uint64_t{23});
  EXPECT_EQ(executions.load(), 0);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_measurements, 24u);
}

TEST(CampaignParallelTest, FreshAndRunOnceCalledOncePerMeasurement) {
  std::atomic<int> fresh_calls{0};
  std::atomic<int> run_calls{0};
  std::vector<CampaignCell> cells{
      {"c", "t",
       [&run_calls](stats::Rng& r) {
         run_calls.fetch_add(1, std::memory_order_relaxed);
         return r.uniform();
       },
       [&fresh_calls] { fresh_calls.fetch_add(1, std::memory_order_relaxed); }}};
  CampaignOptions opt;
  opt.repetitions_per_cell = 25;
  opt.threads = 4;
  run_campaign(cells, opt, std::uint64_t{3});
  EXPECT_EQ(fresh_calls.load(), 25);
  EXPECT_EQ(run_calls.load(), 25);
}

TEST(CampaignParallelTest, WorkerExceptionPropagates) {
  std::vector<CampaignCell> cells = grid_cells();
  cells.push_back(CampaignCell{
      "bad", "t",
      [](stats::Rng&) -> double { throw std::runtime_error{"measurement failed"}; },
      [] {}});
  CampaignOptions opt;
  opt.repetitions_per_cell = 5;
  opt.randomize_order = false;
  opt.threads = 4;
  EXPECT_THROW(run_campaign(cells, opt, std::uint64_t{2}), std::runtime_error);
}

TEST(CampaignParallelTest, NegativeThreadsRejected) {
  CampaignOptions opt;
  opt.threads = -1;
  EXPECT_THROW(run_campaign(grid_cells(), opt, std::uint64_t{1}),
               std::invalid_argument);
}

TEST(CampaignParallelTest, ConfirmAnalysisBitIdenticalAcrossThreadCounts) {
  // The parallelized prefix-CI sweep feeding predict_repetitions must match
  // the serial analysis point for point.
  stats::Rng rng{41};
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.normal(250.0, 12.0);

  ConfirmOptions serial_opt;
  serial_opt.threads = 1;
  const auto reference = confirm_analysis(xs, serial_opt);

  for (const int threads : {0, 2, 8}) {
    ConfirmOptions opt;
    opt.threads = threads;
    const auto parallel = confirm_analysis(xs, opt);
    ASSERT_EQ(parallel.points.size(), reference.points.size());
    for (std::size_t i = 0; i < reference.points.size(); ++i) {
      EXPECT_EQ(parallel.points[i].estimate, reference.points[i].estimate);
      EXPECT_EQ(parallel.points[i].ci_lower, reference.points[i].ci_lower);
      EXPECT_EQ(parallel.points[i].ci_upper, reference.points[i].ci_upper);
      EXPECT_EQ(parallel.points[i].ci_valid, reference.points[i].ci_valid);
      EXPECT_EQ(parallel.points[i].within_bound, reference.points[i].within_bound);
    }
    EXPECT_EQ(parallel.repetitions_needed, reference.repetitions_needed);
    EXPECT_EQ(parallel.ci_widened, reference.ci_widened);

    const auto serial_pred = predict_repetitions(xs, serial_opt);
    const auto parallel_pred = predict_repetitions(xs, opt);
    EXPECT_EQ(parallel_pred.predicted_repetitions, serial_pred.predicted_repetitions);
    EXPECT_EQ(parallel_pred.fitted_coefficient, serial_pred.fitted_coefficient);
    EXPECT_EQ(parallel_pred.reliable, serial_pred.reliable);
  }
}

}  // namespace
}  // namespace cloudrepro::core
