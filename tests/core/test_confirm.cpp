#include "core/confirm.h"

#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"

namespace cloudrepro::core {
namespace {

std::vector<double> iid_sample(std::size_t n, double mean, double sd,
                               std::uint64_t seed) {
  stats::Rng rng{seed};
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(mean, sd);
  return xs;
}

TEST(ConfirmTest, PointsCoverEveryPrefix) {
  const auto xs = iid_sample(40, 100.0, 5.0, 1);
  const auto a = confirm_analysis(xs);
  ASSERT_EQ(a.points.size(), 40u);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].repetitions, i + 1);
  }
}

TEST(ConfirmTest, IidDataConverges) {
  // Figure 13's normal regime: CIs tighten as repetitions accumulate.
  const auto xs = iid_sample(200, 100.0, 1.0, 2);
  ConfirmOptions opt;
  opt.error_bound = 0.01;
  const auto a = confirm_analysis(xs, opt);
  ASSERT_TRUE(a.repetitions_needed.has_value());
  EXPECT_LE(*a.repetitions_needed, 200u);
  EXPECT_TRUE(a.final_point().within_bound);
}

TEST(ConfirmTest, TightBoundsNeedManyRepetitions) {
  // Figure 13's message: 1% error bounds can require ~70+ repetitions.
  const auto xs = iid_sample(200, 100.0, 8.0, 3);
  ConfirmOptions tight;
  tight.error_bound = 0.01;
  ConfirmOptions loose;
  loose.error_bound = 0.10;
  const auto a_tight = confirm_analysis(xs, tight);
  const auto a_loose = confirm_analysis(xs, loose);
  ASSERT_TRUE(a_loose.repetitions_needed.has_value());
  if (a_tight.repetitions_needed.has_value()) {
    EXPECT_GT(*a_tight.repetitions_needed, *a_loose.repetitions_needed);
  }
}

TEST(ConfirmTest, HighVarianceNeverConvergesInFewRuns) {
  const auto xs = iid_sample(10, 100.0, 40.0, 4);
  ConfirmOptions opt;
  opt.error_bound = 0.01;
  const auto a = confirm_analysis(xs, opt);
  EXPECT_FALSE(a.repetitions_needed.has_value());
}

TEST(ConfirmTest, BudgetDepletionWidensCi) {
  // The Figure 19 Q65 signature: a drifting (non-i.i.d.) sequence makes the
  // CI *widen* with more repetitions.
  std::vector<double> xs;
  stats::Rng rng{5};
  for (int i = 0; i < 20; ++i) xs.push_back(rng.normal(40.0, 0.5));
  for (int i = 0; i < 20; ++i) {
    xs.push_back(rng.normal(40.0 + 4.0 * i, 0.5));  // Budget running out.
  }
  const auto a = confirm_analysis(xs);
  EXPECT_TRUE(a.ci_widened);
}

TEST(ConfirmTest, StationaryDataDoesNotFlagWidening) {
  const auto xs = iid_sample(100, 50.0, 2.0, 6);
  const auto a = confirm_analysis(xs);
  // Small fluctuations are tolerated; sustained widening is not expected.
  EXPECT_FALSE(a.ci_widened && !a.repetitions_needed.has_value());
}

TEST(ConfirmTest, TailQuantileAnalysis) {
  // Figure 3b companion: the 90th percentile needs far more data.
  const auto xs = iid_sample(300, 100.0, 5.0, 7);
  ConfirmOptions opt;
  opt.quantile = 0.9;
  opt.error_bound = 0.05;
  const auto a = confirm_analysis(xs, opt);
  ASSERT_EQ(a.points.size(), 300u);
  // Early prefixes cannot even form a valid 90th-percentile CI.
  EXPECT_FALSE(a.points[10].ci_valid);
  EXPECT_TRUE(a.points.back().ci_valid);
}

TEST(ConfirmTest, RepetitionsNeededIsSuffixStable) {
  // repetitions_needed marks the start of an all-within-bound suffix.
  const auto xs = iid_sample(120, 100.0, 3.0, 8);
  ConfirmOptions opt;
  opt.error_bound = 0.03;
  const auto a = confirm_analysis(xs, opt);
  if (a.repetitions_needed.has_value()) {
    for (std::size_t i = *a.repetitions_needed - 1; i < a.points.size(); ++i) {
      EXPECT_TRUE(a.points[i].within_bound) << "prefix " << i + 1;
    }
  }
}

TEST(ConfirmTest, ConvenienceWrapperMatches) {
  const auto xs = iid_sample(100, 100.0, 2.0, 9);
  ConfirmOptions opt;
  opt.error_bound = 0.05;
  EXPECT_EQ(repetitions_for_bound(xs, 0.05), confirm_analysis(xs, opt).repetitions_needed);
}

TEST(ConfirmTest, Validation) {
  EXPECT_THROW(confirm_analysis({}), std::invalid_argument);
  const std::vector<double> xs{1.0, 2.0};
  ConfirmOptions opt;
  opt.error_bound = 0.0;
  EXPECT_THROW(confirm_analysis(xs, opt), std::invalid_argument);
}


TEST(ConfirmPredictionTest, PredictsWithinFactorOfTruth) {
  // Pilot of 20 runs; the prediction should land within ~2x of the
  // empirically-determined requirement from a long run.
  const auto xs = iid_sample(400, 100.0, 6.0, 21);
  ConfirmOptions opt;
  opt.error_bound = 0.01;

  const auto truth = confirm_analysis(xs, opt).repetitions_needed;
  ASSERT_TRUE(truth.has_value());

  const auto prediction =
      predict_repetitions(std::span<const double>{xs}.subspan(0, 20), opt);
  ASSERT_TRUE(prediction.reliable);
  EXPECT_GT(prediction.predicted_repetitions, *truth / 4);
  EXPECT_LT(prediction.predicted_repetitions, *truth * 4);
}

TEST(ConfirmPredictionTest, TighterBoundsNeedMorePredictedReps) {
  const auto xs = iid_sample(25, 100.0, 5.0, 22);
  ConfirmOptions tight;
  tight.error_bound = 0.005;
  ConfirmOptions loose;
  loose.error_bound = 0.05;
  const auto p_tight = predict_repetitions(xs, tight);
  const auto p_loose = predict_repetitions(xs, loose);
  ASSERT_TRUE(p_tight.reliable);
  ASSERT_TRUE(p_loose.reliable);
  EXPECT_GT(p_tight.predicted_repetitions, 4 * p_loose.predicted_repetitions);
}

TEST(ConfirmPredictionTest, UnreliableOnNonIidPilot) {
  // A drifting pilot (depleting budget) voids the sqrt-law.
  stats::Rng rng{23};
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(rng.normal(40.0, 0.5));
  for (int i = 0; i < 20; ++i) xs.push_back(rng.normal(40.0 + 5.0 * i, 0.5));
  const auto p = predict_repetitions(xs);
  EXPECT_FALSE(p.reliable);
}

TEST(ConfirmPredictionTest, TinyPilotIsUnreliable) {
  const auto xs = iid_sample(6, 100.0, 5.0, 24);
  const auto p = predict_repetitions(xs);
  EXPECT_FALSE(p.reliable);
  EXPECT_EQ(p.predicted_repetitions, 0u);
}

TEST(ConfirmPredictionTest, PredictionNeverBelowPilotSizeWhenBoundMet) {
  const auto xs = iid_sample(60, 100.0, 0.5, 25);
  ConfirmOptions opt;
  opt.error_bound = 0.10;  // Trivially met.
  const auto p = predict_repetitions(xs, opt);
  ASSERT_TRUE(p.reliable);
  EXPECT_GE(p.predicted_repetitions, 60u);
}

TEST(ConfirmMonitorTest, ConvergesOnIidDataAndIsSticky) {
  const auto xs = iid_sample(200, 100.0, 2.0, 31);
  AdaptiveConfirmOptions opt;
  opt.enabled = true;
  opt.error_bound = 0.05;
  ConfirmMonitor monitor{opt};
  std::size_t stop = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (monitor.add(xs[i])) {
      stop = i + 1;
      break;
    }
  }
  ASSERT_TRUE(monitor.converged());
  ASSERT_GT(stop, 0u);
  EXPECT_EQ(monitor.stop_repetitions(), stop);
  // Sticky: feeding more data after convergence keeps reporting true and
  // never moves the recorded stopping point.
  EXPECT_TRUE(monitor.add(1e9));
  EXPECT_EQ(monitor.stop_repetitions(), stop);
}

TEST(ConfirmMonitorTest, StopMatchesPostHocWithinBoundPrefix) {
  // The monitor's decision and the post-hoc confirm_analysis must agree:
  // the stopping repetition is the first prefix whose point is within
  // bound (past min_repetitions). This is what keeps the journaled stop
  // record and the summary's confirm block mutually consistent.
  const auto xs = iid_sample(120, 50.0, 1.5, 32);
  AdaptiveConfirmOptions opt;
  opt.enabled = true;
  opt.error_bound = 0.05;
  ConfirmMonitor monitor{opt};
  std::size_t stop = 0;
  for (std::size_t i = 0; i < xs.size() && stop == 0; ++i) {
    if (monitor.add(xs[i])) stop = i + 1;
  }
  ASSERT_GT(stop, 0u);

  ConfirmOptions post;
  post.error_bound = opt.error_bound;
  const auto analysis =
      confirm_analysis(std::span{xs}.first(stop), post);
  EXPECT_TRUE(analysis.points.back().within_bound);
  for (std::size_t n = 1; n < stop; ++n) {
    EXPECT_FALSE(analysis.points[n - 1].within_bound) << "prefix " << n;
  }
}

TEST(ConfirmMonitorTest, MinRepetitionsDefersTheStop) {
  const auto xs = iid_sample(100, 100.0, 0.1, 33);  // Converges immediately.
  AdaptiveConfirmOptions base;
  base.enabled = true;
  base.error_bound = 0.10;
  ConfirmMonitor eager{base};
  AdaptiveConfirmOptions floored = base;
  floored.min_repetitions = 25;
  ConfirmMonitor deferred{floored};
  std::size_t eager_stop = 0, deferred_stop = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (eager_stop == 0 && eager.add(xs[i])) eager_stop = i + 1;
    if (deferred_stop == 0 && deferred.add(xs[i])) deferred_stop = i + 1;
  }
  ASSERT_GT(eager_stop, 0u);
  ASSERT_GE(deferred_stop, 25u);
  EXPECT_LT(eager_stop, deferred_stop);
}

TEST(ConfirmMonitorTest, AllZeroStreamNeverConverges) {
  // Regression companion to the relative_half_width fix: a metric that is
  // identically zero has no meaningful relative bound, so the monitor must
  // run to the cap instead of declaring instant convergence.
  AdaptiveConfirmOptions opt;
  opt.enabled = true;
  opt.error_bound = 0.10;
  ConfirmMonitor monitor{opt};
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(monitor.add(0.0)) << "rep " << i + 1;
  }
  EXPECT_FALSE(monitor.converged());
  EXPECT_EQ(monitor.stop_repetitions(), 0u);
}

TEST(ConfirmMonitorTest, WithinBoundGuardsZeroEstimate) {
  // Mirror guard in the post-hoc path: an all-zero sequence must never
  // report within_bound even though its CI has zero width.
  const std::vector<double> zeros(40, 0.0);
  ConfirmOptions opt;
  opt.error_bound = 0.10;
  const auto analysis = confirm_analysis(zeros, opt);
  for (const auto& point : analysis.points) {
    EXPECT_FALSE(point.within_bound);
  }
  EXPECT_FALSE(analysis.repetitions_needed.has_value());
}

TEST(ConfirmMonitorTest, RejectsInvalidOptions) {
  AdaptiveConfirmOptions opt;
  opt.enabled = true;
  opt.error_bound = 0.0;
  EXPECT_THROW(ConfirmMonitor{opt}, std::invalid_argument);
  opt.error_bound = 0.05;
  opt.quantile = 1.0;
  EXPECT_THROW(ConfirmMonitor{opt}, std::invalid_argument);
  opt.quantile = 0.5;
  opt.confidence = 0.0;
  EXPECT_THROW(ConfirmMonitor{opt}, std::invalid_argument);
}

}  // namespace
}  // namespace cloudrepro::core
