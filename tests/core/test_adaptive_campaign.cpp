// Adaptive CONFIRM stopping in the campaign engine: cells run until their
// quantile CI meets the bound (or the repetition cap), the stop decision is
// journaled, and the result stays a pure function of (cells, options, seed)
// across thread counts and interrupt/resume cycles.

#include "core/campaign.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.h"

namespace cloudrepro::core {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 20200225;

/// A noisy cell (converges under a loose bound) and a quiet one (converges
/// almost immediately). Values are pure functions of the per-repetition RNG
/// stream, so every run of the same seed sees the same sequence.
std::vector<CampaignCell> adaptive_grid() {
  std::vector<CampaignCell> cells;
  cells.push_back(CampaignCell{"noisy", "t",
                               [](stats::Rng& rng) {
                                 return rng.normal(100.0, 5.0);
                               },
                               [] {}});
  cells.push_back(CampaignCell{"quiet", "t",
                               [](stats::Rng& rng) {
                                 return rng.normal(100.0, 0.5);
                               },
                               [] {}});
  return cells;
}

CampaignOptions adaptive_options(int cap = 60) {
  CampaignOptions opt;
  opt.repetitions_per_cell = cap;
  opt.adaptive.enabled = true;
  opt.adaptive.error_bound = 0.05;
  opt.adaptive.min_repetitions = 6;
  return opt;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    ASSERT_EQ(a.cells[i].values.size(), b.cells[i].values.size()) << "cell " << i;
    for (std::size_t r = 0; r < a.cells[i].values.size(); ++r) {
      EXPECT_EQ(a.cells[i].values[r], b.cells[i].values[r])
          << "cell " << i << " rep " << r;
    }
    EXPECT_EQ(a.cells[i].adaptive_converged, b.cells[i].adaptive_converged);
    EXPECT_EQ(a.cells[i].stop_repetitions, b.cells[i].stop_repetitions);
    EXPECT_EQ(a.cells[i].confirm_ci.lower, b.cells[i].confirm_ci.lower);
    EXPECT_EQ(a.cells[i].confirm_ci.upper, b.cells[i].confirm_ci.upper);
  }
  EXPECT_EQ(a.complete, b.complete);
}

std::string read_file(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

fs::path test_dir() {
  const auto dir =
      fs::path{::testing::TempDir()} /
      ("cloudrepro-adaptive-" + std::string{::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()});
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(AdaptiveCampaignTest, CellsStopBeforeTheCap) {
  const auto result = run_campaign(adaptive_grid(), adaptive_options(), kSeed);
  ASSERT_EQ(result.cells.size(), 2u);
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(cell.adaptive_converged) << cell.config;
    EXPECT_GE(cell.stop_repetitions, 6u);           // min_repetitions floor.
    EXPECT_LT(cell.stop_repetitions, 60u);          // Stopped before the cap.
    EXPECT_EQ(cell.values.size(), cell.stop_repetitions);
    EXPECT_TRUE(cell.confirm_ci.valid);
  }
  // The quiet cell needs no more repetitions than the noisy one.
  EXPECT_LE(result.cells[1].stop_repetitions, result.cells[0].stop_repetitions);
  EXPECT_TRUE(result.complete);
}

TEST(AdaptiveCampaignTest, BitIdenticalAcrossThreadCounts) {
  auto opt = adaptive_options();
  const auto serial = run_campaign(adaptive_grid(), opt, kSeed);
  opt.threads = 4;
  const auto parallel = run_campaign(adaptive_grid(), opt, kSeed);
  expect_identical(serial, parallel);
}

TEST(AdaptiveCampaignTest, ZeroValuedCellNeverStopsEarly) {
  // The degenerate-CI regression, end to end: a cell measuring identically
  // zero must run to the cap instead of "converging" at min_repetitions.
  std::vector<CampaignCell> cells;
  cells.push_back(CampaignCell{"zero", "t",
                               [](stats::Rng&) { return 0.0; }, [] {}});
  const auto result = run_campaign(std::move(cells), adaptive_options(20), kSeed);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_FALSE(result.cells[0].adaptive_converged);
  EXPECT_EQ(result.cells[0].stop_repetitions, 0u);
  EXPECT_EQ(result.cells[0].values.size(), 20u);  // Ran the full cap.
  EXPECT_TRUE(result.complete);                   // At cap = complete.
}

TEST(AdaptiveCampaignTest, StopRecordIsJournaled) {
  const auto dir = test_dir();
  auto opt = adaptive_options();
  opt.journal_path = dir / "journal.jsonl";
  const auto result = run_campaign(adaptive_grid(), opt, kSeed);
  EXPECT_TRUE(result.complete);
  const std::string journal = read_file(opt.journal_path);
  // One stop record per converged cell.
  std::size_t stop_lines = 0;
  std::istringstream lines{journal};
  for (std::string line; std::getline(lines, line);) {
    if (line.find("\"stop\"") != std::string::npos) ++stop_lines;
  }
  EXPECT_EQ(stop_lines, 2u);
  fs::remove_all(dir);
}

TEST(AdaptiveCampaignTest, InterruptedRunResumesBitIdentically) {
  const auto dir = test_dir();
  auto opt = adaptive_options();
  const auto reference = run_campaign(adaptive_grid(), opt, kSeed);

  opt.journal_path = dir / "journal.jsonl";
  opt.max_measurements = 3;
  const auto partial = run_campaign(adaptive_grid(), opt, kSeed);
  EXPECT_FALSE(partial.complete);

  // Resume with a different thread count and no budget: the journal replays
  // the executed prefix and the rest runs fresh.
  opt.max_measurements = 0;
  opt.threads = 4;
  const auto resumed = run_campaign(adaptive_grid(), opt, kSeed);
  EXPECT_GT(resumed.resumed_measurements, 0u);
  expect_identical(reference, resumed);
  fs::remove_all(dir);
}

TEST(AdaptiveCampaignTest, TornStopRecordIsHealedOnResume) {
  const auto dir = test_dir();
  auto opt = adaptive_options();
  opt.journal_path = dir / "journal.jsonl";
  const auto reference = run_campaign(adaptive_grid(), opt, kSeed);

  // Tear the journal mid-way through its final stop record: the crash
  // window between a cell's last measurement landing and its stop record
  // landing.
  std::string journal = read_file(opt.journal_path);
  const auto last_stop = journal.rfind("{\"cell\"");
  ASSERT_NE(last_stop, std::string::npos);
  ASSERT_NE(journal.find("\"stop\"", last_stop), std::string::npos);
  journal.resize(last_stop + 10);  // Keep a torn prefix of the line.
  {
    std::ofstream out{opt.journal_path, std::ios::binary | std::ios::trunc};
    out << journal;
  }

  const auto resumed = run_campaign(adaptive_grid(), opt, kSeed);
  expect_identical(reference, resumed);

  // The healed journal carries the stop record again.
  const std::string healed = read_file(opt.journal_path);
  std::size_t stop_lines = 0;
  std::istringstream lines{healed};
  for (std::string line; std::getline(lines, line);) {
    if (line.find("\"stop\"") != std::string::npos) ++stop_lines;
  }
  EXPECT_EQ(stop_lines, 2u);
  fs::remove_all(dir);
}

TEST(AdaptiveCampaignTest, InvalidAdaptiveOptionsThrowUpfront) {
  auto opt = adaptive_options();
  opt.adaptive.error_bound = 0.0;
  EXPECT_THROW(run_campaign(adaptive_grid(), opt, kSeed),
               std::invalid_argument);
  opt = adaptive_options();
  opt.adaptive.quantile = 1.5;
  EXPECT_THROW(run_campaign(adaptive_grid(), opt, kSeed),
               std::invalid_argument);
}

}  // namespace
}  // namespace cloudrepro::core
