#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/fingerprint.h"

namespace cloudrepro::core {
namespace {

namespace fs = std::filesystem;

class FingerprintIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            (std::string{"cloudrepro_fp_"} + info->name() + ".txt");
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  fs::path path_;
};

NetworkFingerprint sample_fingerprint() {
  NetworkFingerprint fp;
  fp.cloud = "Amazon EC2";
  fp.instance_type = "c5.xlarge";
  fp.base_latency_ms = 0.174;
  fp.loaded_latency_ms = 0.31;
  fp.base_bandwidth_gbps = 9.92;
  fp.bandwidth_cov = 0.012;
  fp.retransmission_rate = 0.0001;
  fp.qos = QosClass::kTokenBucket;
  fp.bucket.bucket_detected = true;
  fp.bucket.time_to_empty_s = 640.0;
  fp.bucket.high_rate_gbps = 10.3;
  fp.bucket.low_rate_gbps = 1.0;
  fp.bucket.replenish_gbps = 0.93;
  fp.bucket.inferred_budget_gbit = 5988.0;
  return fp;
}

TEST_F(FingerprintIoTest, RoundTripsExactly) {
  const auto original = sample_fingerprint();
  save_fingerprint(path_, original);
  const auto loaded = load_fingerprint(path_);
  EXPECT_EQ(loaded.cloud, original.cloud);
  EXPECT_EQ(loaded.instance_type, original.instance_type);
  EXPECT_DOUBLE_EQ(loaded.base_latency_ms, original.base_latency_ms);
  EXPECT_DOUBLE_EQ(loaded.base_bandwidth_gbps, original.base_bandwidth_gbps);
  EXPECT_EQ(loaded.qos, original.qos);
  EXPECT_TRUE(loaded.bucket.bucket_detected);
  EXPECT_DOUBLE_EQ(loaded.bucket.inferred_budget_gbit,
                   original.bucket.inferred_budget_gbit);
}

TEST_F(FingerprintIoTest, RoundTripPreservesComparisonVerdict) {
  const auto original = sample_fingerprint();
  save_fingerprint(path_, original);
  const auto loaded = load_fingerprint(path_);
  EXPECT_TRUE(compare_fingerprints(original, loaded).baselines_match());
}

TEST_F(FingerprintIoTest, AllQosClassesRoundTrip) {
  for (const auto qos :
       {QosClass::kNone, QosClass::kRateCap, QosClass::kTokenBucket}) {
    auto fp = sample_fingerprint();
    fp.qos = qos;
    save_fingerprint(path_, fp);
    EXPECT_EQ(load_fingerprint(path_).qos, qos);
  }
}

TEST_F(FingerprintIoTest, MissingFileThrows) {
  EXPECT_THROW(load_fingerprint(path_), std::runtime_error);
}

TEST_F(FingerprintIoTest, MalformedContentThrows) {
  {
    std::ofstream out{path_};
    out << "this is not a fingerprint\n";
  }
  EXPECT_THROW(load_fingerprint(path_), std::runtime_error);
  {
    std::ofstream out{path_};
    out << "format=cloudrepro-fingerprint-v1\nqos=warp_drive\n";
  }
  EXPECT_THROW(load_fingerprint(path_), std::runtime_error);
}

TEST_F(FingerprintIoTest, MissingKeyThrows) {
  {
    std::ofstream out{path_};
    out << "format=cloudrepro-fingerprint-v1\ncloud=X\nqos=none\n";
  }
  EXPECT_THROW(load_fingerprint(path_), std::runtime_error);
}

TEST_F(FingerprintIoTest, UnwritablePathThrows) {
  EXPECT_THROW(save_fingerprint("/nonexistent_dir_xyz/fp.txt", sample_fingerprint()),
               std::runtime_error);
}

}  // namespace
}  // namespace cloudrepro::core
