#include "core/experiment.h"

#include <gtest/gtest.h>

#include <vector>

namespace cloudrepro::core {
namespace {

/// Environment with a hidden "token budget": runs without resets get slower
/// once the budget is gone, fresh() restores it, rest() refills it.
/// With the default 100-Gbit budget and 10 Gbit drained per run, a 20-run
/// reused sequence splits 10 fast / 10 slow — the balanced regime switch the
/// runs test is built to catch.
class BudgetedEnvironment final : public Environment {
 public:
  std::string description() const override { return "budgeted test environment"; }
  void fresh() override {
    budget_ = 100.0;
    ++fresh_calls;
  }
  void rest(double seconds) override {
    budget_ = std::min(100.0, budget_ + seconds);
    ++rest_calls;
  }
  double run_once(stats::Rng& rng) override {
    const double runtime =
        budget_ > 0.0 ? rng.normal(50.0, 1.0) : rng.normal(150.0, 1.0);
    budget_ = std::max(0.0, budget_ - 10.0);
    ++runs;
    return runtime;
  }

  int fresh_calls = 0;
  int rest_calls = 0;
  int runs = 0;

 private:
  double budget_ = 100.0;
};

TEST(ExperimentRunnerTest, RunsRequestedRepetitions) {
  BudgetedEnvironment env;
  ExperimentRunner runner{stats::Rng{1}};
  ExperimentPlan plan;
  plan.repetitions = 12;
  const auto r = runner.run(env, plan);
  EXPECT_EQ(r.values.size(), 12u);
  EXPECT_EQ(env.runs, 12);
  EXPECT_EQ(r.environment, "budgeted test environment");
}

TEST(ExperimentRunnerTest, FreshPerRunKeepsRunsIid) {
  BudgetedEnvironment env;
  ExperimentRunner runner{stats::Rng{2}};
  ExperimentPlan plan;
  plan.repetitions = 20;
  plan.fresh_environment_each_run = true;
  const auto r = runner.run(env, plan);
  EXPECT_EQ(env.fresh_calls, 20);
  // All runs on a fresh budget: fast and tightly clustered.
  EXPECT_LT(r.summary.max, 60.0);
  ASSERT_TRUE(r.diagnostics_available);
  EXPECT_FALSE(r.independence.reject());
}

TEST(ExperimentRunnerTest, ReusedEnvironmentBreaksIndependence) {
  // The Figure 19 failure mode reproduced in miniature.
  BudgetedEnvironment env;
  ExperimentRunner runner{stats::Rng{3}};
  ExperimentPlan plan;
  plan.repetitions = 20;
  plan.fresh_environment_each_run = false;
  const auto r = runner.run(env, plan);
  EXPECT_EQ(env.fresh_calls, 0);
  // Later runs are much slower than early ones.
  EXPECT_GT(r.summary.max, 2.0 * r.summary.min);
  ASSERT_TRUE(r.diagnostics_available);
  EXPECT_TRUE(r.independence.reject());
  EXPECT_TRUE(r.normality.reject());
}

TEST(ExperimentRunnerTest, RestBetweenRunsInvokesRest) {
  BudgetedEnvironment env;
  ExperimentRunner runner{stats::Rng{4}};
  ExperimentPlan plan;
  plan.repetitions = 5;
  plan.fresh_environment_each_run = false;
  plan.rest_between_runs_s = 60.0;
  runner.run(env, plan);
  EXPECT_EQ(env.rest_calls, 4);  // Between runs, not before the first.
}

TEST(ExperimentRunnerTest, LongRestsRestoreFastRuns) {
  BudgetedEnvironment env;
  ExperimentRunner runner{stats::Rng{5}};
  ExperimentPlan plan;
  plan.repetitions = 10;
  plan.fresh_environment_each_run = false;
  plan.rest_between_runs_s = 100.0;  // Full refill each time.
  const auto r = runner.run(env, plan);
  EXPECT_LT(r.summary.max, 60.0);
}

TEST(ExperimentRunnerTest, ConvergenceVerdict) {
  BudgetedEnvironment env;
  ExperimentRunner runner{stats::Rng{6}};
  ExperimentPlan plan;
  plan.repetitions = 30;
  plan.target_error_bound = 0.05;
  const auto r = runner.run(env, plan);
  EXPECT_TRUE(r.converged());

  ExperimentPlan tiny;
  tiny.repetitions = 3;
  const auto r3 = runner.run(env, tiny);
  EXPECT_FALSE(r3.converged());  // No valid CI with 3 runs.
  EXPECT_FALSE(r3.diagnostics_available);
}

TEST(ExperimentRunnerTest, ThrowsOnZeroRepetitions) {
  BudgetedEnvironment env;
  ExperimentRunner runner{stats::Rng{7}};
  ExperimentPlan plan;
  plan.repetitions = 0;
  EXPECT_THROW(runner.run(env, plan), std::invalid_argument);
}

TEST(ExperimentRunnerTest, SuitePreservesConfigurationOrder) {
  BudgetedEnvironment e1, e2, e3;
  ExperimentRunner runner{stats::Rng{8}};
  ExperimentPlan plan;
  plan.repetitions = 6;
  const auto results = runner.run_suite({e1, e2, e3}, plan, /*randomize=*/true);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_EQ(r.values.size(), 6u);
  }
  EXPECT_EQ(e1.runs, 6);
  EXPECT_EQ(e2.runs, 6);
  EXPECT_EQ(e3.runs, 6);
}

TEST(LambdaEnvironmentTest, ForwardsCalls) {
  int fresh = 0;
  double rested = 0.0;
  LambdaEnvironment env{
      "lambda", [&] { ++fresh; }, [&](double s) { rested += s; },
      [](stats::Rng& rng) { return rng.uniform(); }};
  env.fresh();
  env.rest(30.0);
  stats::Rng rng{9};
  const double v = env.run_once(rng);
  EXPECT_EQ(fresh, 1);
  EXPECT_DOUBLE_EQ(rested, 30.0);
  EXPECT_GE(v, 0.0);
  EXPECT_LT(v, 1.0);
  EXPECT_EQ(env.description(), "lambda");
}

TEST(LambdaEnvironmentTest, RejectsNullCallables) {
  EXPECT_THROW(LambdaEnvironment("x", nullptr, [](double) {},
                                 [](stats::Rng&) { return 0.0; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace cloudrepro::core
