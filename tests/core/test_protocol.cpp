#include "core/protocol.h"

#include <gtest/gtest.h>

#include <sstream>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"
#include "stats/rng.h"

namespace cloudrepro::core {
namespace {

FingerprintOptions quick_fp() {
  FingerprintOptions o;
  o.bandwidth_probes = 2;
  o.bandwidth_probe_s = 120.0;
  o.latency_probe_s = 1.0;
  o.bucket_probe.max_probe_s = 1800.0;
  o.bucket_probe.rest_s = 120.0;
  return o;
}

TEST(WindowedConfirmTest, MediansPerWindow) {
  stats::Rng rng{1};
  std::vector<double> series(600);
  for (auto& x : series) x = rng.normal(100.0, 3.0);
  const auto analysis = windowed_median_confirm(series, 20);
  EXPECT_EQ(analysis.points.size(), 30u);  // 600 / 20 medians.
  EXPECT_TRUE(analysis.final_point().ci_valid);
}

TEST(WindowedConfirmTest, SmoothsHighFrequencyNoise) {
  // Per-sample noise is huge; window medians are tight — the F5.4 point
  // that "large time periods can smooth out noise".
  stats::Rng rng{2};
  std::vector<double> series(2000);
  for (auto& x : series) x = 100.0 + rng.pareto(1.0, 1.3);
  ConfirmOptions opt;
  opt.error_bound = 0.05;
  const auto raw = confirm_analysis(
      std::span<const double>{series}.subspan(0, 40), opt);
  const auto windowed = windowed_median_confirm(series, 50, opt);
  ASSERT_TRUE(windowed.final_point().ci_valid);
  // Windowed medians converge to the bound; 40 raw samples of a
  // heavy-tailed distribution generally do not.
  EXPECT_TRUE(windowed.final_point().within_bound);
  (void)raw;
}

TEST(WindowedConfirmTest, ThrowsWhenSeriesShorterThanWindow) {
  const std::vector<double> series{1.0, 2.0};
  EXPECT_THROW(windowed_median_confirm(series, 10), std::invalid_argument);
}

TEST(RestRecommendationTest, TokenBucketGetsTransferBasedRest) {
  NetworkFingerprint fp;
  fp.qos = QosClass::kTokenBucket;
  fp.bucket.replenish_gbps = 1.0;
  // 90 Gbit per run at 1 Gbit/s replenish, 1.25 safety -> 112.5 s.
  EXPECT_NEAR(recommend_rest_seconds(fp, 90.0), 112.5, 1e-9);
}

TEST(RestRecommendationTest, UnshapedCloudNeedsNoRest) {
  NetworkFingerprint fp;
  fp.qos = QosClass::kNone;
  EXPECT_DOUBLE_EQ(recommend_rest_seconds(fp, 90.0), 0.0);
  fp.qos = QosClass::kRateCap;
  EXPECT_DOUBLE_EQ(recommend_rest_seconds(fp, 90.0), 0.0);
}

TEST(RestRecommendationTest, DegenerateInputs) {
  NetworkFingerprint fp;
  fp.qos = QosClass::kTokenBucket;
  fp.bucket.replenish_gbps = 0.0;
  EXPECT_DOUBLE_EQ(recommend_rest_seconds(fp, 90.0), 0.0);
  fp.bucket.replenish_gbps = 1.0;
  EXPECT_DOUBLE_EQ(recommend_rest_seconds(fp, 0.0), 0.0);
}

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest()
      : bucket_{*cloud::ec2_c5_xlarge().nominal_bucket()},
        proto_{bucket_},
        cluster_{bigdata::Cluster::uniform(12, 16, proto_, 10.0)},
        env_{"Q65 on 12-node c5.xlarge cluster",
             [this] { cluster_.reset_network(); },
             [this](double s) { cluster_.rest(s); },
             [this](stats::Rng& r) {
               return engine_.run(bigdata::tpcds_query(65), cluster_, r).runtime_s;
             }} {}

  simnet::TokenBucketConfig bucket_;
  simnet::TokenBucketQos proto_;
  bigdata::Cluster cluster_;
  bigdata::SparkEngine engine_;
  LambdaEnvironment env_;
};

TEST_F(ProtocolTest, WellDesignedExperimentIsReproducible) {
  stats::Rng rng{3};
  ProtocolOptions options;
  options.fingerprint = quick_fp();
  options.plan.repetitions = 15;
  options.plan.fresh_environment_each_run = true;
  options.planned_transfer_gbit_per_run =
      bigdata::tpcds_query(65).total_shuffle_gbit_per_node();

  const auto report = run_protocol(cloud::ec2_c5_xlarge(), env_, options, rng);
  EXPECT_EQ(report.baseline.qos, QosClass::kTokenBucket);
  EXPECT_GT(report.recommended_rest_s, 60.0);
  EXPECT_TRUE(report.result.converged());
  EXPECT_TRUE(report.reproducible);
}

TEST_F(ProtocolTest, LiteratureStyleDesignIsNotReproducible) {
  stats::Rng rng{4};
  ProtocolOptions options;
  options.fingerprint = quick_fp();
  options.plan.repetitions = 3;  // The modal design from Figure 1b.
  options.plan.fresh_environment_each_run = false;

  const auto report = run_protocol(cloud::ec2_c5_xlarge(), env_, options, rng);
  EXPECT_FALSE(report.reproducible);
  bool has_violation = false;
  for (const auto& f : report.findings) {
    has_violation = has_violation || f.severity == Severity::kViolation;
  }
  EXPECT_TRUE(has_violation);
}

TEST_F(ProtocolTest, RecommendedRestSubstitutedIntoReusedPlans) {
  stats::Rng rng{5};
  ProtocolOptions options;
  options.fingerprint = quick_fp();
  options.plan.repetitions = 10;
  options.plan.fresh_environment_each_run = false;
  options.plan.rest_between_runs_s = 1.0;  // Far too short on its own.
  options.planned_transfer_gbit_per_run =
      bigdata::tpcds_query(65).total_shuffle_gbit_per_node();

  const auto report = run_protocol(cloud::ec2_c5_xlarge(), env_, options, rng);
  // With the substituted rest the reused runs stay fast and comparable.
  EXPECT_LT(report.result.summary.max, 1.5 * report.result.summary.min);
}

TEST_F(ProtocolTest, ReportRendering) {
  stats::Rng rng{6};
  ProtocolOptions options;
  options.fingerprint = quick_fp();
  options.plan.repetitions = 10;
  const auto report = run_protocol(cloud::ec2_c5_xlarge(), env_, options, rng);
  std::ostringstream ss;
  print_protocol_report(ss, report);
  const auto out = ss.str();
  EXPECT_NE(out.find("Reproducibility protocol report"), std::string::npos);
  EXPECT_NE(out.find("token bucket"), std::string::npos);
  EXPECT_NE(out.find("Overall verdict"), std::string::npos);
}

}  // namespace
}  // namespace cloudrepro::core
