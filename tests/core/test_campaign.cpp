#include "core/campaign.h"

#include <gtest/gtest.h>

#include <sstream>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"

namespace cloudrepro::core {
namespace {

/// A synthetic campaign: two configs x two treatments, with known effects.
std::vector<CampaignCell> synthetic_cells(stats::Rng& noise_rng) {
  std::vector<CampaignCell> cells;
  struct Spec {
    const char* config;
    const char* treatment;
    double mean;
  };
  // Config "net-heavy" responds to the treatment; "cpu-bound" does not.
  const Spec specs[] = {{"net-heavy", "budget=high", 100.0},
                        {"net-heavy", "budget=low", 150.0},
                        {"cpu-bound", "budget=high", 80.0},
                        {"cpu-bound", "budget=low", 80.0}};
  for (const auto& spec : specs) {
    cells.push_back(CampaignCell{
        spec.config, spec.treatment,
        [mean = spec.mean, &noise_rng](stats::Rng&) {
          return noise_rng.normal(mean, 2.0);
        },
        [] {}});
  }
  return cells;
}

TEST(CampaignTest, RunsEveryCellWithRequestedRepetitions) {
  stats::Rng rng{1};
  stats::Rng noise{2};
  CampaignOptions opt;
  opt.repetitions_per_cell = 12;
  const auto result = run_campaign(synthetic_cells(noise), opt, rng);
  ASSERT_EQ(result.cells.size(), 4u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.values.size(), 12u);
    EXPECT_TRUE(cell.median_ci.valid);
  }
}

TEST(CampaignTest, ResultsInGridOrderRegardlessOfExecution) {
  stats::Rng rng{3};
  stats::Rng noise{4};
  CampaignOptions opt;
  opt.randomize_order = true;
  const auto result = run_campaign(synthetic_cells(noise), opt, rng);
  EXPECT_EQ(result.cells[0].config, "net-heavy");
  EXPECT_EQ(result.cells[0].treatment, "budget=high");
  EXPECT_EQ(result.cells[3].config, "cpu-bound");
  // Execution order is a permutation of all cells.
  std::vector<std::size_t> sorted_order = result.execution_order;
  std::sort(sorted_order.begin(), sorted_order.end());
  EXPECT_EQ(sorted_order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(CampaignTest, TreatmentEffectDetectedOnlyWhereReal) {
  stats::Rng rng{5};
  stats::Rng noise{6};
  CampaignOptions opt;
  opt.repetitions_per_cell = 15;
  const auto result = run_campaign(synthetic_cells(noise), opt, rng);
  EXPECT_TRUE(result.treatment_effect("net-heavy").reject());
  EXPECT_FALSE(result.treatment_effect("cpu-bound").reject(0.01));
  EXPECT_THROW(result.treatment_effect("no-such-config"), std::invalid_argument);
}

TEST(CampaignTest, FreshCalledBeforeEveryRepetition) {
  stats::Rng rng{7};
  int fresh_calls = 0;
  std::vector<CampaignCell> cells{
      {"c", "t", [](stats::Rng& r) { return r.uniform(); },
       [&fresh_calls] { ++fresh_calls; }}};
  CampaignOptions opt;
  opt.repetitions_per_cell = 7;
  run_campaign(cells, opt, rng);
  EXPECT_EQ(fresh_calls, 7);
}

TEST(CampaignTest, CsvLongFormat) {
  stats::Rng rng{8};
  std::vector<CampaignCell> cells{
      {"c1", "t1", [](stats::Rng&) { return 1.5; }, [] {}}};
  CampaignOptions opt;
  opt.repetitions_per_cell = 2;
  const auto result = run_campaign(cells, opt, rng);
  std::ostringstream ss;
  result.write_csv(ss);
  EXPECT_EQ(ss.str(), "config,treatment,repetition,value\nc1,t1,0,1.5\nc1,t1,1,1.5\n");
}

TEST(CampaignTest, SummaryRendering) {
  stats::Rng rng{9};
  stats::Rng noise{10};
  const auto result = run_campaign(synthetic_cells(noise), {}, rng);
  std::ostringstream ss;
  print_campaign_summary(ss, result);
  EXPECT_NE(ss.str().find("net-heavy"), std::string::npos);
  EXPECT_NE(ss.str().find("budget=low"), std::string::npos);
}

TEST(CampaignTest, Validation) {
  stats::Rng rng{11};
  EXPECT_THROW(run_campaign({}, {}, rng), std::invalid_argument);
  std::vector<CampaignCell> missing{{"c", "t", nullptr, [] {}}};
  EXPECT_THROW(run_campaign(missing, {}, rng), std::invalid_argument);
  std::vector<CampaignCell> ok{{"c", "t", [](stats::Rng&) { return 0.0; }, [] {}}};
  CampaignOptions zero;
  zero.repetitions_per_cell = 0;
  EXPECT_THROW(run_campaign(ok, zero, rng), std::invalid_argument);
}

TEST(CampaignTest, EndToEndWithSparkEngine) {
  // The Figure 16-style sweep as a campaign: TS responds to budget, KM
  // does not.
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  bigdata::SparkEngine engine;

  std::vector<CampaignCell> cells;
  for (const char* app : {"TS", "KM"}) {
    for (const double budget : {5000.0, 10.0}) {
      const bigdata::WorkloadProfile* workload = nullptr;
      for (const auto& w : bigdata::hibench_suite()) {
        if (w.name == app) workload = &w;
      }
      cells.push_back(CampaignCell{
          app, "budget=" + std::to_string(static_cast<int>(budget)),
          [&engine, &cluster, workload](stats::Rng& r) {
            return engine.run(*workload, cluster, r).runtime_s;
          },
          [&cluster, budget] {
            cluster.reset_network();
            cluster.set_token_budgets(budget);
          }});
    }
  }

  stats::Rng rng{12};
  CampaignOptions opt;
  opt.repetitions_per_cell = 8;
  const auto result = run_campaign(cells, opt, rng);
  EXPECT_TRUE(result.treatment_effect("TS").reject());
  EXPECT_FALSE(result.treatment_effect("KM").reject(0.01));
}

}  // namespace
}  // namespace cloudrepro::core
