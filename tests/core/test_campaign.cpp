#include "core/campaign.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "bigdata/cluster.h"
#include "bigdata/engine.h"
#include "bigdata/workload.h"
#include "cloud/instances.h"

namespace cloudrepro::core {
namespace {

/// A synthetic campaign: two configs x two treatments, with known effects.
std::vector<CampaignCell> synthetic_cells(stats::Rng& noise_rng) {
  std::vector<CampaignCell> cells;
  struct Spec {
    const char* config;
    const char* treatment;
    double mean;
  };
  // Config "net-heavy" responds to the treatment; "cpu-bound" does not.
  const Spec specs[] = {{"net-heavy", "budget=high", 100.0},
                        {"net-heavy", "budget=low", 150.0},
                        {"cpu-bound", "budget=high", 80.0},
                        {"cpu-bound", "budget=low", 80.0}};
  for (const auto& spec : specs) {
    cells.push_back(CampaignCell{
        spec.config, spec.treatment,
        [mean = spec.mean, &noise_rng](stats::Rng&) {
          return noise_rng.normal(mean, 2.0);
        },
        [] {}});
  }
  return cells;
}

TEST(CampaignTest, RunsEveryCellWithRequestedRepetitions) {
  stats::Rng rng{1};
  stats::Rng noise{2};
  CampaignOptions opt;
  opt.repetitions_per_cell = 12;
  const auto result = run_campaign(synthetic_cells(noise), opt, rng);
  ASSERT_EQ(result.cells.size(), 4u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.values.size(), 12u);
    EXPECT_TRUE(cell.median_ci.valid);
  }
}

TEST(CampaignTest, ResultsInGridOrderRegardlessOfExecution) {
  stats::Rng rng{3};
  stats::Rng noise{4};
  CampaignOptions opt;
  opt.randomize_order = true;
  const auto result = run_campaign(synthetic_cells(noise), opt, rng);
  EXPECT_EQ(result.cells[0].config, "net-heavy");
  EXPECT_EQ(result.cells[0].treatment, "budget=high");
  EXPECT_EQ(result.cells[3].config, "cpu-bound");
  // Execution order is a permutation of all cells.
  std::vector<std::size_t> sorted_order = result.execution_order;
  std::sort(sorted_order.begin(), sorted_order.end());
  EXPECT_EQ(sorted_order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(CampaignTest, TreatmentEffectDetectedOnlyWhereReal) {
  stats::Rng rng{5};
  stats::Rng noise{6};
  CampaignOptions opt;
  opt.repetitions_per_cell = 15;
  const auto result = run_campaign(synthetic_cells(noise), opt, rng);
  EXPECT_TRUE(result.treatment_effect("net-heavy").reject());
  EXPECT_FALSE(result.treatment_effect("cpu-bound").reject(0.01));
  EXPECT_THROW(result.treatment_effect("no-such-config"), std::invalid_argument);
}

TEST(CampaignTest, FreshCalledBeforeEveryRepetition) {
  stats::Rng rng{7};
  int fresh_calls = 0;
  std::vector<CampaignCell> cells{
      {"c", "t", [](stats::Rng& r) { return r.uniform(); },
       [&fresh_calls] { ++fresh_calls; }}};
  CampaignOptions opt;
  opt.repetitions_per_cell = 7;
  run_campaign(cells, opt, rng);
  EXPECT_EQ(fresh_calls, 7);
}

TEST(CampaignTest, CsvLongFormat) {
  stats::Rng rng{8};
  std::vector<CampaignCell> cells{
      {"c1", "t1", [](stats::Rng&) { return 1.5; }, [] {}}};
  CampaignOptions opt;
  opt.repetitions_per_cell = 2;
  const auto result = run_campaign(cells, opt, rng);
  std::ostringstream ss;
  result.write_csv(ss);
  EXPECT_EQ(ss.str(), "config,treatment,repetition,value\nc1,t1,0,1.5\nc1,t1,1,1.5\n");
}

TEST(CampaignTest, SummaryRendering) {
  stats::Rng rng{9};
  stats::Rng noise{10};
  const auto result = run_campaign(synthetic_cells(noise), {}, rng);
  std::ostringstream ss;
  print_campaign_summary(ss, result);
  EXPECT_NE(ss.str().find("net-heavy"), std::string::npos);
  EXPECT_NE(ss.str().find("budget=low"), std::string::npos);
}

TEST(CampaignTest, Validation) {
  stats::Rng rng{11};
  EXPECT_THROW(run_campaign({}, {}, rng), std::invalid_argument);
  std::vector<CampaignCell> missing{{"c", "t", nullptr, [] {}}};
  EXPECT_THROW(run_campaign(missing, {}, rng), std::invalid_argument);
  std::vector<CampaignCell> ok{{"c", "t", [](stats::Rng&) { return 0.0; }, [] {}}};
  CampaignOptions zero;
  zero.repetitions_per_cell = 0;
  EXPECT_THROW(run_campaign(ok, zero, rng), std::invalid_argument);
}

/// Cells whose measurement is a pure function of the repetition's RNG —
/// the regime where resume guarantees bit-identical results.
std::vector<CampaignCell> pure_cells() {
  std::vector<CampaignCell> cells;
  for (const char* config : {"a", "b"}) {
    for (const char* treatment : {"t1", "t2"}) {
      cells.push_back(CampaignCell{
          config, treatment,
          [](stats::Rng& r) { return r.normal(100.0, 5.0) + r.uniform(); },
          [] {}});
    }
  }
  return cells;
}

TEST(CampaignTest, SeedAndOptionsRecordedInResult) {
  CampaignOptions opt;
  opt.repetitions_per_cell = 3;
  opt.confidence = 0.9;
  const auto result = run_campaign(pure_cells(), opt, std::uint64_t{777});
  EXPECT_TRUE(result.seed_recorded);
  EXPECT_EQ(result.seed, 777u);
  EXPECT_EQ(result.options.repetitions_per_cell, 3);
  EXPECT_DOUBLE_EQ(result.options.confidence, 0.9);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.resumed_measurements, 0u);
}

TEST(CampaignTest, SeedIsAPureFunctionOfTheResult) {
  CampaignOptions opt;
  opt.repetitions_per_cell = 4;
  const auto a = run_campaign(pure_cells(), opt, std::uint64_t{42});
  const auto b = run_campaign(pure_cells(), opt, std::uint64_t{42});
  ASSERT_EQ(a.execution_order, b.execution_order);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    ASSERT_EQ(a.cells[i].values.size(), b.cells[i].values.size());
    for (std::size_t r = 0; r < a.cells[i].values.size(); ++r) {
      EXPECT_DOUBLE_EQ(a.cells[i].values[r], b.cells[i].values[r]);
    }
  }
  const auto c = run_campaign(pure_cells(), opt, std::uint64_t{43});
  bool differs = false;
  for (std::size_t i = 0; i < a.cells.size() && !differs; ++i) {
    differs = a.cells[i].values != c.cells[i].values;
  }
  EXPECT_TRUE(differs);
}

TEST(CampaignTest, SummaryPrintsProvenance) {
  CampaignOptions opt;
  opt.repetitions_per_cell = 3;
  const auto result = run_campaign(pure_cells(), opt, std::uint64_t{31337});
  std::ostringstream ss;
  print_campaign_summary(ss, result);
  EXPECT_NE(ss.str().find("seed=31337"), std::string::npos);
  EXPECT_NE(ss.str().find("repetitions_per_cell=3"), std::string::npos);
}

TEST(CampaignTest, JournalWrittenAndResumedBitIdentical) {
  const auto dir = std::filesystem::path{::testing::TempDir()};
  CampaignOptions opt;
  opt.repetitions_per_cell = 5;

  // Ground truth: uninterrupted, no journal.
  const auto full = run_campaign(pure_cells(), opt, std::uint64_t{9});

  // Interrupt after every possible prefix length, then resume to completion.
  const int total = 4 * opt.repetitions_per_cell;
  for (int prefix : {1, 3, 7, 12, 19}) {
    auto journal_opt = opt;
    journal_opt.journal_path = dir / ("campaign-prefix-" + std::to_string(prefix) + ".jsonl");
    std::filesystem::remove(journal_opt.journal_path);

    journal_opt.max_measurements = prefix;
    const auto partial = run_campaign(pure_cells(), journal_opt, std::uint64_t{9});
    EXPECT_FALSE(partial.complete);

    journal_opt.max_measurements = 0;
    const auto resumed = run_campaign(pure_cells(), journal_opt, std::uint64_t{9});
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.resumed_measurements, static_cast<std::size_t>(prefix));

    ASSERT_EQ(resumed.execution_order, full.execution_order);
    for (std::size_t i = 0; i < full.cells.size(); ++i) {
      ASSERT_EQ(resumed.cells[i].values.size(), full.cells[i].values.size());
      for (std::size_t r = 0; r < full.cells[i].values.size(); ++r) {
        // Exact equality: values round-trip through the JSONL journal.
        EXPECT_DOUBLE_EQ(resumed.cells[i].values[r], full.cells[i].values[r]);
      }
      EXPECT_DOUBLE_EQ(resumed.cells[i].summary.mean, full.cells[i].summary.mean);
      EXPECT_DOUBLE_EQ(resumed.cells[i].median_ci.lower, full.cells[i].median_ci.lower);
      EXPECT_DOUBLE_EQ(resumed.cells[i].median_ci.upper, full.cells[i].median_ci.upper);
    }
  }
  // Sanity: a full interrupted run covered all measurements.
  EXPECT_EQ(total, 20);
}

TEST(CampaignTest, ResumingACompleteJournalExecutesNothing) {
  const auto dir = std::filesystem::path{::testing::TempDir()};
  CampaignOptions opt;
  opt.repetitions_per_cell = 3;
  opt.journal_path = dir / "campaign-complete.jsonl";
  std::filesystem::remove(opt.journal_path);

  run_campaign(pure_cells(), opt, std::uint64_t{10});

  int executions = 0;
  auto cells = pure_cells();
  for (auto& cell : cells) {
    auto inner = cell.run_once;
    cell.run_once = [inner, &executions](stats::Rng& r) {
      ++executions;
      return inner(r);
    };
  }
  const auto resumed = run_campaign(cells, opt, std::uint64_t{10});
  EXPECT_EQ(executions, 0);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_measurements, 12u);
}

TEST(CampaignTest, JournalHeaderMismatchThrows) {
  const auto dir = std::filesystem::path{::testing::TempDir()};
  CampaignOptions opt;
  opt.repetitions_per_cell = 2;
  opt.journal_path = dir / "campaign-mismatch.jsonl";
  std::filesystem::remove(opt.journal_path);

  run_campaign(pure_cells(), opt, std::uint64_t{11});

  // Different seed: the journal's measurements belong to another campaign.
  EXPECT_THROW(run_campaign(pure_cells(), opt, std::uint64_t{12}),
               std::runtime_error);
  // Different options: also rejected.
  auto other = opt;
  other.repetitions_per_cell = 4;
  EXPECT_THROW(run_campaign(pure_cells(), other, std::uint64_t{11}),
               std::runtime_error);
}

TEST(CampaignTest, TornFinalJournalLineIsReExecuted) {
  const auto dir = std::filesystem::path{::testing::TempDir()};
  CampaignOptions opt;
  opt.repetitions_per_cell = 2;
  opt.journal_path = dir / "campaign-torn.jsonl";
  std::filesystem::remove(opt.journal_path);

  run_campaign(pure_cells(), opt, std::uint64_t{13});
  const auto full = run_campaign(pure_cells(), opt, std::uint64_t{13});

  // Truncate the last line mid-write, as a crash would.
  std::string contents;
  {
    std::ifstream in{opt.journal_path};
    std::stringstream ss;
    ss << in.rdbuf();
    contents = ss.str();
  }
  const auto cut = contents.rfind("\"value\":");
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out{opt.journal_path, std::ios::trunc};
    out << contents.substr(0, cut + 9);
  }

  const auto resumed = run_campaign(pure_cells(), opt, std::uint64_t{13});
  EXPECT_TRUE(resumed.complete);
  for (std::size_t i = 0; i < full.cells.size(); ++i) {
    for (std::size_t r = 0; r < full.cells[i].values.size(); ++r) {
      EXPECT_DOUBLE_EQ(resumed.cells[i].values[r], full.cells[i].values[r]);
    }
  }
}

TEST(CampaignTest, MaxMeasurementsMarksIncompleteWithoutJournal) {
  CampaignOptions opt;
  opt.repetitions_per_cell = 5;
  opt.max_measurements = 3;
  const auto result = run_campaign(pure_cells(), opt, std::uint64_t{14});
  EXPECT_FALSE(result.complete);
  std::size_t measured = 0;
  for (const auto& cell : result.cells) measured += cell.values.size();
  EXPECT_EQ(measured, 3u);
  std::ostringstream ss;
  print_campaign_summary(ss, result);
  EXPECT_NE(ss.str().find("[INCOMPLETE]"), std::string::npos);
}

TEST(CampaignTest, EndToEndWithSparkEngine) {
  // The Figure 16-style sweep as a campaign: TS responds to budget, KM
  // does not.
  const auto bucket = *cloud::ec2_c5_xlarge().nominal_bucket();
  const simnet::TokenBucketQos proto{bucket};
  auto cluster = bigdata::Cluster::uniform(12, 16, proto, 10.0);
  bigdata::SparkEngine engine;

  std::vector<CampaignCell> cells;
  for (const char* app : {"TS", "KM"}) {
    for (const double budget : {5000.0, 10.0}) {
      const bigdata::WorkloadProfile* workload = nullptr;
      for (const auto& w : bigdata::hibench_suite()) {
        if (w.name == app) workload = &w;
      }
      cells.push_back(CampaignCell{
          app, "budget=" + std::to_string(static_cast<int>(budget)),
          [&engine, &cluster, workload](stats::Rng& r) {
            return engine.run(*workload, cluster, r).runtime_s;
          },
          [&cluster, budget] {
            cluster.reset_network();
            cluster.set_token_budgets(budget);
          }});
    }
  }

  stats::Rng rng{12};
  CampaignOptions opt;
  opt.repetitions_per_cell = 8;
  const auto result = run_campaign(cells, opt, rng);
  EXPECT_TRUE(result.treatment_effect("TS").reject());
  EXPECT_FALSE(result.treatment_effect("KM").reject(0.01));
}

}  // namespace
}  // namespace cloudrepro::core
