#include "core/comparison.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.h"

namespace cloudrepro::core {
namespace {

std::vector<double> sample(std::size_t n, double mean, double sd, std::uint64_t seed) {
  stats::Rng rng{seed};
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(mean, sd);
  return xs;
}

TEST(CliffsDeltaTest, DisjointSamplesAreExtreme) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 11.0};
  EXPECT_DOUBLE_EQ(cliffs_delta(a, b), 1.0);
  EXPECT_DOUBLE_EQ(cliffs_delta(b, a), -1.0);
}

TEST(CliffsDeltaTest, IdenticalSamplesAreZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(cliffs_delta(a, a), 0.0);
}

TEST(CliffsDeltaTest, ThrowsOnEmpty) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(cliffs_delta(a, {}), std::invalid_argument);
}

TEST(CliffsDeltaTest, InterpretationBands) {
  EXPECT_EQ(interpret_cliffs_delta(0.05), EffectSize::kNegligible);
  EXPECT_EQ(interpret_cliffs_delta(-0.2), EffectSize::kSmall);
  EXPECT_EQ(interpret_cliffs_delta(0.4), EffectSize::kMedium);
  EXPECT_EQ(interpret_cliffs_delta(-0.9), EffectSize::kLarge);
  EXPECT_EQ(to_string(EffectSize::kLarge), "large");
}

TEST(CompareSystemsTest, ClearDifferenceDetected) {
  const auto a = sample(30, 100.0, 3.0, 1);
  const auto b = sample(30, 120.0, 3.0, 2);
  const auto v = compare_systems(a, b);
  EXPECT_TRUE(v.significant);
  EXPECT_TRUE(v.a_faster);
  EXPECT_FALSE(v.cis_overlap);
  EXPECT_GT(v.cliffs_delta, 0.9);
  EXPECT_NEAR(v.median_ratio, 1.2, 0.05);
  EXPECT_NE(v.summary().find("A faster"), std::string::npos);
}

TEST(CompareSystemsTest, IdenticalSystemsNotSignificant) {
  const auto a = sample(30, 100.0, 3.0, 3);
  const auto b = sample(30, 100.0, 3.0, 4);
  const auto v = compare_systems(a, b);
  EXPECT_FALSE(v.significant);
  EXPECT_NE(v.summary().find("NO SIGNIFICANT DIFFERENCE"), std::string::npos);
}

TEST(CompareSystemsTest, ThreeRunsAreInconclusive) {
  // The literature's modal design cannot support a comparison verdict.
  const auto a = sample(3, 100.0, 3.0, 5);
  const auto b = sample(3, 110.0, 3.0, 6);
  const auto v = compare_systems(a, b);
  EXPECT_FALSE(v.significant);
  EXPECT_NE(v.summary().find("INCONCLUSIVE"), std::string::npos);
}

TEST(CompareSystemsTest, SmallTrueDifferenceNeedsManyRuns) {
  // 4% true difference, 5% noise: 5-run comparisons flip-flop; 60-run
  // comparisons settle — the Section 2 phenomenon quantified.
  stats::Rng seeds{7};
  int significant_small = 0, significant_large = 0;
  int wrong_direction_small = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    const auto a5 = sample(5, 100.0, 5.0, seeds.next_u64());
    const auto b5 = sample(5, 104.0, 5.0, seeds.next_u64());
    const auto v5 = compare_systems(a5, b5);
    if (v5.significant) ++significant_small;
    if (!v5.a_faster) ++wrong_direction_small;

    const auto a60 = sample(60, 100.0, 5.0, seeds.next_u64());
    const auto b60 = sample(60, 104.0, 5.0, seeds.next_u64());
    if (compare_systems(a60, b60).significant) ++significant_large;
  }
  EXPECT_LT(significant_small, kTrials / 2);   // Mostly inconclusive at n=5.
  EXPECT_GT(significant_large, 2 * kTrials / 3);  // Mostly detected at n=60.
  EXPECT_GT(wrong_direction_small, 0);  // n=5 sometimes points the wrong way.
}

TEST(CompareSystemsTest, ThrowsOnEmpty) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(compare_systems(a, {}), std::invalid_argument);
  EXPECT_THROW(compare_systems({}, a), std::invalid_argument);
}

TEST(CompareSystemsTest, OverlapCautionFlag) {
  // Significant rank difference but overlapping CIs: flagged for caution.
  stats::Rng rng{8};
  std::vector<double> a(40), b(40);
  for (auto& x : a) x = rng.normal(100.0, 10.0);
  for (auto& x : b) x = rng.normal(106.0, 10.0);
  const auto v = compare_systems(a, b);
  if (v.significant && v.cis_overlap) {
    EXPECT_NE(v.summary().find("caution"), std::string::npos);
  }
}

}  // namespace
}  // namespace cloudrepro::core
