#include "core/fingerprint.h"

#include <gtest/gtest.h>

namespace cloudrepro::core {
namespace {

FingerprintOptions quick_options() {
  FingerprintOptions o;
  o.bandwidth_probes = 2;
  o.bandwidth_probe_s = 120.0;
  o.latency_probe_s = 1.0;
  o.bucket_probe.max_probe_s = 1800.0;
  o.bucket_probe.rest_s = 120.0;
  return o;
}

TEST(FingerprintTest, ClassifiesEc2AsTokenBucket) {
  stats::Rng rng{1};
  const auto fp = fingerprint_network(cloud::ec2_c5_xlarge(), quick_options(), rng);
  EXPECT_EQ(fp.qos, QosClass::kTokenBucket);
  EXPECT_TRUE(fp.bucket.bucket_detected);
  EXPECT_EQ(fp.cloud, "Amazon EC2");
  EXPECT_EQ(fp.instance_type, "c5.xlarge");
  EXPECT_LT(fp.base_latency_ms, 1.0);
  EXPECT_GT(fp.base_bandwidth_gbps, 8.0);
}

TEST(FingerprintTest, ClassifiesGceAsRateCap) {
  stats::Rng rng{2};
  const auto fp = fingerprint_network(cloud::gce_8core(), quick_options(), rng);
  EXPECT_EQ(fp.qos, QosClass::kRateCap);
  EXPECT_FALSE(fp.bucket.bucket_detected);
  EXPECT_NEAR(fp.base_bandwidth_gbps, 16.0, 1.0);
  EXPECT_GT(fp.base_latency_ms, 1.0);  // Millisecond-scale base latency.
  EXPECT_GT(fp.retransmission_rate, 0.005);  // TSO at 128K writes.
}

TEST(FingerprintTest, ClassifiesHpcCloudAsNoQos) {
  stats::Rng rng{3};
  const auto fp = fingerprint_network(cloud::hpccloud_8core(), quick_options(), rng);
  EXPECT_EQ(fp.qos, QosClass::kNone);
  EXPECT_GT(fp.bandwidth_cov, 0.03);
}

TEST(FingerprintTest, QosClassNames) {
  EXPECT_EQ(to_string(QosClass::kTokenBucket), "token bucket");
  EXPECT_FALSE(to_string(QosClass::kNone).empty());
  EXPECT_FALSE(to_string(QosClass::kRateCap).empty());
}

TEST(FingerprintComparisonTest, IdenticalFingerprintsMatch) {
  NetworkFingerprint fp;
  fp.base_bandwidth_gbps = 10.0;
  fp.base_latency_ms = 0.2;
  fp.qos = QosClass::kTokenBucket;
  fp.bucket.high_rate_gbps = 10.0;
  fp.bucket.low_rate_gbps = 1.0;
  fp.bucket.inferred_budget_gbit = 5000.0;
  const auto cmp = compare_fingerprints(fp, fp);
  EXPECT_TRUE(cmp.baselines_match());
}

TEST(FingerprintComparisonTest, DetectsAugust2019NicCap) {
  // The F5.2 war story: c5.xlarge NICs silently dropping from 10 to 5 Gbps.
  NetworkFingerprint before;
  before.base_bandwidth_gbps = 10.0;
  before.base_latency_ms = 0.2;
  before.qos = QosClass::kTokenBucket;
  before.bucket.high_rate_gbps = 10.0;
  before.bucket.low_rate_gbps = 1.0;
  before.bucket.inferred_budget_gbit = 5000.0;

  NetworkFingerprint after = before;
  after.base_bandwidth_gbps = 5.0;
  after.bucket.high_rate_gbps = 5.0;

  const auto cmp = compare_fingerprints(before, after);
  EXPECT_FALSE(cmp.baselines_match());
  EXPECT_TRUE(cmp.bandwidth_drift);
  EXPECT_TRUE(cmp.bucket_parameter_drift);
  EXPECT_FALSE(cmp.qos_class_change);
}

TEST(FingerprintComparisonTest, DetectsQosClassChange) {
  NetworkFingerprint a;
  a.qos = QosClass::kRateCap;
  NetworkFingerprint b;
  b.qos = QosClass::kTokenBucket;
  EXPECT_TRUE(compare_fingerprints(a, b).qos_class_change);
}

TEST(FingerprintComparisonTest, SmallDriftWithinTolerance) {
  NetworkFingerprint a;
  a.base_bandwidth_gbps = 10.0;
  a.base_latency_ms = 0.2;
  NetworkFingerprint b = a;
  b.base_bandwidth_gbps = 10.8;  // 8% < 15% tolerance.
  b.base_latency_ms = 0.25;      // 25% < 50% tolerance.
  EXPECT_TRUE(compare_fingerprints(a, b).baselines_match());
}

TEST(FingerprintComparisonTest, CustomTolerances) {
  NetworkFingerprint a;
  a.base_bandwidth_gbps = 10.0;
  NetworkFingerprint b = a;
  b.base_bandwidth_gbps = 10.8;
  ComparisonTolerances strict;
  strict.bandwidth_rel = 0.05;
  EXPECT_TRUE(compare_fingerprints(a, b, strict).bandwidth_drift);
}

TEST(FingerprintComparisonTest, ZeroBaselineHandled) {
  NetworkFingerprint a;  // All zeros.
  NetworkFingerprint b;
  b.base_bandwidth_gbps = 1.0;
  EXPECT_TRUE(compare_fingerprints(a, b).bandwidth_drift);
  EXPECT_FALSE(compare_fingerprints(a, a).bandwidth_drift);
}

}  // namespace
}  // namespace cloudrepro::core
