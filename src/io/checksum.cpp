#include "io/checksum.h"

#include <array>

namespace cloudrepro::io {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string crc32_hex(std::string_view data) {
  static constexpr char kHex[] = "0123456789abcdef";
  const std::uint32_t crc = crc32(data);
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] = kHex[(crc >> (28 - 4 * i)) & 0xfu];
  }
  return out;
}

}  // namespace cloudrepro::io
