#include "io/fault_vfs.h"

#include <cerrno>
#include <utility>

namespace cloudrepro::io {

namespace {

/// SplitMix64-style mixer (same construction as the campaign's sub-seed
/// derivation): the torn-tail draw is a pure function of
/// (torn_write_seed, crash op, file index).
std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool contains(const std::vector<std::uint64_t>& ops, std::uint64_t op) noexcept {
  for (const auto candidate : ops) {
    if (candidate == op) return true;
  }
  return false;
}

}  // namespace

/// Forwards to the backing file, routing every call through the fault
/// schedule first. Named (not anonymous-namespace) so the friend
/// declaration in FaultVfs resolves to it.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultVfs& vfs, std::filesystem::path path,
                    std::unique_ptr<WritableFile> inner)
      : vfs_(vfs), path_(std::move(path)), inner_(std::move(inner)) {}

  void append(std::string_view data) override {
    vfs_.charge_append(path_, data, *inner_);
  }

  void sync() override {
    if (vfs_.crashed_) throw SimulatedCrash{vfs_.options_.crash_at_op};
    if (vfs_.step("fsync " + path_.string())) {
      ++vfs_.dropped_syncs_;
      return;  // Dropped: the durability point silently never happens.
    }
    inner_->sync();
    vfs_.note_synced(path_);
  }

  void close() override {
    // After a crash the handle is dead; the backing fd closes quietly when
    // this object is destroyed.
    if (!vfs_.crashed_) inner_->close();
  }

 private:
  FaultVfs& vfs_;
  std::filesystem::path path_;
  std::unique_ptr<WritableFile> inner_;
};

FaultVfs::FaultVfs(Vfs& inner, FaultVfsOptions options)
    : inner_(inner), options_(std::move(options)) {}

bool FaultVfs::step(const std::string& what) {
  if (crashed_) throw SimulatedCrash{options_.crash_at_op};
  ++ops_;
  if (contains(options_.eio_at_ops, ops_)) throw IoError{what, EIO};
  if (options_.crash_at_op != 0 && ops_ == options_.crash_at_op) crash();
  return contains(options_.dropped_fsyncs, ops_);
}

void FaultVfs::crash() {
  crashed_ = true;
  if (options_.lose_unsynced_on_crash) {
    // Roll every file back to its synced length plus a deterministic torn
    // fraction of the unsynced tail — the on-disk state an fsck would find.
    std::uint64_t file_index = 0;
    for (const auto& [path, synced] : synced_) {
      ++file_index;
      const std::uintmax_t current = inner_.file_size(path);
      if (current <= synced) continue;
      const std::uintmax_t unsynced = current - synced;
      const std::uintmax_t keep =
          synced + mix(mix(options_.torn_write_seed, ops_), file_index) %
                       (unsynced + 1);
      inner_.truncate(path, keep);
    }
  }
  throw SimulatedCrash{ops_};
}

void FaultVfs::note_written(const std::filesystem::path& path) {
  if (synced_.find(path) == synced_.end()) synced_[path] = inner_.file_size(path);
}

void FaultVfs::note_synced(const std::filesystem::path& path) {
  synced_[path] = inner_.file_size(path);
}

void FaultVfs::charge_append(const std::filesystem::path& path,
                             std::string_view data, WritableFile& backing) {
  if (crashed_) throw SimulatedCrash{options_.crash_at_op};
  ++ops_;
  if (contains(options_.eio_at_ops, ops_)) {
    throw IoError{"write " + path.string(), EIO};
  }
  if (options_.crash_at_op != 0 && ops_ == options_.crash_at_op) {
    // The crashing write reaches the page cache in full; how much survives
    // is the crash rollback's deterministic draw over the unsynced tail.
    backing.append(data);
    bytes_written_ += data.size();
    crash();
  }
  if (options_.enospc_after_bytes != 0 &&
      bytes_written_ + data.size() > options_.enospc_after_bytes) {
    // Short write: the prefix that fits lands, then the device is full.
    const std::uint64_t fit = options_.enospc_after_bytes - bytes_written_;
    backing.append(data.substr(0, fit));
    bytes_written_ += fit;
    throw IoError{"write " + path.string(), ENOSPC};
  }
  backing.append(data);
  bytes_written_ += data.size();
}

std::unique_ptr<WritableFile> FaultVfs::open_write(
    const std::filesystem::path& path, WriteMode mode) {
  step("open " + path.string());
  if (mode == WriteMode::kAppend) {
    note_written(path);  // Pre-existing bytes are already durable.
  } else {
    synced_[path] = 0;  // Truncate/create: nothing durable yet.
  }
  return std::make_unique<FaultWritableFile>(*this, path,
                                             inner_.open_write(path, mode));
}

std::optional<std::string> FaultVfs::read_file(const std::filesystem::path& path) {
  step("read " + path.string());
  return inner_.read_file(path);
}

bool FaultVfs::exists(const std::filesystem::path& path) {
  step("stat " + path.string());
  return inner_.exists(path);
}

std::uintmax_t FaultVfs::file_size(const std::filesystem::path& path) {
  step("stat " + path.string());
  return inner_.file_size(path);
}

void FaultVfs::rename(const std::filesystem::path& from,
                      const std::filesystem::path& to) {
  step("rename " + from.string());
  // The *name* change is atomic; the content's durability travels with the
  // file. A file never written through this vfs counts as fully durable.
  std::uintmax_t synced = inner_.file_size(from);
  if (const auto it = synced_.find(from); it != synced_.end()) {
    synced = it->second;
    synced_.erase(it);
  }
  inner_.rename(from, to);
  synced_[to] = synced;
}

bool FaultVfs::remove(const std::filesystem::path& path) {
  step("remove " + path.string());
  synced_.erase(path);
  return inner_.remove(path);
}

std::uintmax_t FaultVfs::remove_all(const std::filesystem::path& path) {
  step("remove_all " + path.string());
  for (auto it = synced_.begin(); it != synced_.end();) {
    const auto& tracked = it->first;
    const auto rel = tracked.lexically_relative(path);
    const bool under = tracked == path ||
                       (!rel.empty() && rel.native().compare(0, 2, "..") != 0);
    it = under ? synced_.erase(it) : std::next(it);
  }
  return inner_.remove_all(path);
}

void FaultVfs::create_directories(const std::filesystem::path& path) {
  step("mkdir " + path.string());
  inner_.create_directories(path);
}

std::vector<std::filesystem::path> FaultVfs::list_dir(
    const std::filesystem::path& path) {
  step("list " + path.string());
  return inner_.list_dir(path);
}

void FaultVfs::truncate(const std::filesystem::path& path, std::uintmax_t size) {
  step("truncate " + path.string());
  inner_.truncate(path, size);
  if (const auto it = synced_.find(path); it != synced_.end() && it->second > size) {
    it->second = size;
  }
}

void FaultVfs::sync_dir(const std::filesystem::path& path) {
  if (step("fsync dir " + path.string())) {
    ++dropped_syncs_;
    return;
  }
  inner_.sync_dir(path);
}

}  // namespace cloudrepro::io
