#include "io/vfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

namespace cloudrepro::io {

IoError::IoError(const std::string& what, int error_code)
    : std::runtime_error(what + " (" + std::strerror(error_code) + ")"),
      error_code_(error_code) {}

SimulatedCrash::SimulatedCrash(std::uint64_t op)
    : what_("simulated crash at vfs op " + std::to_string(op)), op_(op) {}

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError{what, errno};
}

/// Unbuffered POSIX-backed file: the on-disk length tracks `append` exactly,
/// and `sync` is a real fsync.
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override { close_quietly(); }

  void append(std::string_view data) override {
    if (fd_ < 0) throw IoError{"append to closed file " + path_, EBADF};
    const char* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write " + path_);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  void sync() override {
    if (fd_ < 0) throw IoError{"sync of closed file " + path_, EBADF};
    if (::fsync(fd_) != 0) throw_errno("fsync " + path_);
  }

  void close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      throw_errno("close " + path_);
    }
    fd_ = -1;
  }

 private:
  void close_quietly() noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  int fd_;
  std::string path_;
};

}  // namespace

std::unique_ptr<WritableFile> RealVfs::open_write(const std::filesystem::path& path,
                                                  WriteMode mode) {
  int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
  switch (mode) {
    case WriteMode::kTruncate: flags |= O_TRUNC; break;
    case WriteMode::kAppend: flags |= O_APPEND; break;
    case WriteMode::kExclusive: flags |= O_EXCL; break;
  }
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw_errno("open " + path.string());
  return std::make_unique<PosixWritableFile>(fd, path.string());
}

std::optional<std::string> RealVfs::read_file(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw_errno("open " + path.string());
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      throw IoError{"read " + path.string(), saved};
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

bool RealVfs::exists(const std::filesystem::path& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

std::uintmax_t RealVfs::file_size(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

void RealVfs::rename(const std::filesystem::path& from,
                     const std::filesystem::path& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    throw_errno("rename " + from.string() + " -> " + to.string());
  }
}

bool RealVfs::remove(const std::filesystem::path& path) {
  std::error_code ec;
  const bool removed = std::filesystem::remove(path, ec);
  if (ec) throw IoError{"remove " + path.string(), ec.value()};
  return removed;
}

std::uintmax_t RealVfs::remove_all(const std::filesystem::path& path) {
  std::error_code ec;
  const auto removed = std::filesystem::remove_all(path, ec);
  if (ec) throw IoError{"remove_all " + path.string(), ec.value()};
  return removed;
}

void RealVfs::create_directories(const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) throw IoError{"create_directories " + path.string(), ec.value()};
}

std::vector<std::filesystem::path> RealVfs::list_dir(
    const std::filesystem::path& path) {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator{path, ec}) {
    out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RealVfs::truncate(const std::filesystem::path& path, std::uintmax_t size) {
  std::error_code ec;
  std::filesystem::resize_file(path, size, ec);
  if (ec) throw IoError{"truncate " + path.string(), ec.value()};
}

void RealVfs::sync_dir(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("open dir " + path.string());
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    throw IoError{"fsync dir " + path.string(), saved};
  }
  ::close(fd);
}

Vfs& real_vfs() {
  static RealVfs instance;
  return instance;
}

}  // namespace cloudrepro::io
