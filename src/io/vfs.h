#pragma once

#include <cstdint>
#include <exception>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cloudrepro::io {

/// Filesystem abstraction for the persistence stack (result store, campaign
/// journal, summary publication). Everything that must survive a crash goes
/// through a `Vfs`, for one reason: the same code path can run against the
/// real filesystem in production and against `FaultVfs` in tests, where
/// torn writes, dropped fsyncs, ENOSPC, EIO, and whole-process crashes are
/// injected deterministically from a schedule — the persistence-layer
/// counterpart of `src/faults` for the simulated cloud.
///
/// The durability model is the POSIX one the hardening code must respect:
///  - `append` data is volatile until the file is `sync`ed;
///  - `rename` atomically replaces the *name*, but says nothing about the
///    durability of the renamed file's *content* — publish-by-rename is
///    only crash-safe as fsync-before-rename;
///  - a crash may keep any byte prefix of unsynced data (torn write).

/// An I/O operation failed; carries the (possibly injected) errno value.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, int error_code);
  int error_code() const noexcept { return error_code_; }

 private:
  int error_code_;
};

/// Thrown by `FaultVfs` when its scheduled crash point is reached, and by
/// every operation after it ("the process is dead"). Deliberately *not* a
/// std::runtime_error: recovery paths that swallow I/O errors must never
/// swallow a simulated crash, or the torture harness would measure the
/// recovery code instead of the crash.
class SimulatedCrash : public std::exception {
 public:
  explicit SimulatedCrash(std::uint64_t op);
  const char* what() const noexcept override { return what_.c_str(); }
  std::uint64_t op() const noexcept { return op_; }

 private:
  std::string what_;
  std::uint64_t op_;
};

enum class WriteMode {
  kTruncate,   ///< Create or truncate to empty.
  kAppend,     ///< Create or append at the end.
  kExclusive,  ///< Create; IoError(EEXIST) when the file already exists.
};

/// A writable handle. Writes are unbuffered (one syscall per `append`), so
/// the on-disk length always equals the bytes accepted so far — the
/// invariant `FaultVfs` crash rollback relies on.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual void append(std::string_view data) = 0;
  /// Flushes file content to stable storage (fsync).
  virtual void sync() = 0;
  /// Idempotent; also called by the destructor (which never throws).
  virtual void close() = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual std::unique_ptr<WritableFile> open_write(
      const std::filesystem::path& path, WriteMode mode) = 0;

  /// Whole-file read; nullopt when the file does not exist.
  virtual std::optional<std::string> read_file(const std::filesystem::path& path) = 0;

  virtual bool exists(const std::filesystem::path& path) = 0;
  /// 0 when the file does not exist.
  virtual std::uintmax_t file_size(const std::filesystem::path& path) = 0;

  /// Atomic replace (POSIX rename).
  virtual void rename(const std::filesystem::path& from,
                      const std::filesystem::path& to) = 0;
  virtual bool remove(const std::filesystem::path& path) = 0;
  virtual std::uintmax_t remove_all(const std::filesystem::path& path) = 0;
  virtual void create_directories(const std::filesystem::path& path) = 0;
  /// Immediate children, name-sorted; empty when the directory is absent.
  virtual std::vector<std::filesystem::path> list_dir(
      const std::filesystem::path& path) = 0;
  virtual void truncate(const std::filesystem::path& path, std::uintmax_t size) = 0;
  /// Flushes a directory's entries (new names, renames) to stable storage.
  virtual void sync_dir(const std::filesystem::path& path) = 0;
};

/// Passthrough to the real filesystem. `append`/`sync` use unbuffered POSIX
/// write/fsync so durability points are real, not libc-buffer illusions.
class RealVfs : public Vfs {
 public:
  std::unique_ptr<WritableFile> open_write(const std::filesystem::path& path,
                                           WriteMode mode) override;
  std::optional<std::string> read_file(const std::filesystem::path& path) override;
  bool exists(const std::filesystem::path& path) override;
  std::uintmax_t file_size(const std::filesystem::path& path) override;
  void rename(const std::filesystem::path& from,
              const std::filesystem::path& to) override;
  bool remove(const std::filesystem::path& path) override;
  std::uintmax_t remove_all(const std::filesystem::path& path) override;
  void create_directories(const std::filesystem::path& path) override;
  std::vector<std::filesystem::path> list_dir(
      const std::filesystem::path& path) override;
  void truncate(const std::filesystem::path& path, std::uintmax_t size) override;
  void sync_dir(const std::filesystem::path& path) override;
};

/// Process-wide passthrough instance: the default everywhere a `Vfs*` is
/// optional.
Vfs& real_vfs();

}  // namespace cloudrepro::io
