#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cloudrepro::io {

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. Strong enough
/// for the persistence layer's purpose — detecting torn writes and bit rot
/// in machine-written journal records, where every single-bit and every
/// burst-under-32-bit error is caught — and 8 hex characters per record is
/// cheap enough to pay on every journal line.
std::uint32_t crc32(std::string_view data) noexcept;

/// The checksum as exactly 8 lowercase hex characters.
std::string crc32_hex(std::string_view data);

}  // namespace cloudrepro::io
