#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "io/vfs.h"

namespace cloudrepro::io {

/// Deterministic fault schedule for `FaultVfs`, in the same plain-data,
/// schedule-driven style as `faults::FaultPlan`: the whole fault history of
/// a torture run is a pure function of this struct, so any failing crash
/// point replays exactly.
struct FaultVfsOptions {
  /// Crash — throw `SimulatedCrash` and roll volatile state back — when the
  /// running operation counter reaches this 1-based index. 0 disables. The
  /// torture harness sweeps this over [1, FaultVfs::ops()] of a clean run.
  std::uint64_t crash_at_op = 0;

  /// Seeds the deterministic "how much of the unsynced tail survived"
  /// draw at the crash point (torn writes at byte granularity).
  std::uint64_t torn_write_seed = 0;

  /// On crash, truncate every file written through this vfs back to its
  /// last-synced length plus a deterministic torn fraction of the unsynced
  /// tail. Off = crashes keep all written bytes (a journaling-FS-with-
  /// barriers model; useful to isolate logic bugs from durability bugs).
  bool lose_unsynced_on_crash = true;

  /// Total `append` budget in bytes; the append that would exceed it writes
  /// the prefix that fits and fails with IoError(ENOSPC). 0 = unlimited.
  std::uint64_t enospc_after_bytes = 0;

  /// 1-based operation indices that fail with IoError(EIO).
  std::vector<std::uint64_t> eio_at_ops;

  /// 1-based operation indices whose `sync`/`sync_dir` silently does
  /// nothing — the durability point the caller thinks it reached never
  /// happened, so a later crash loses more than expected.
  std::vector<std::uint64_t> dropped_fsyncs;
};

/// Fault-injecting decorator over another `Vfs`. Every operation increments
/// one shared counter; the schedule above keys off that counter, which
/// makes "crash at the k-th syscall" a first-class, sweepable quantity.
///
/// Durability model: per-file last-synced lengths are tracked on the side.
/// `sync` advances a file's synced length to its current size (unless
/// dropped); `rename` carries the synced length to the new name; a crash
/// truncates every tracked file to
///   synced + (deterministic draw in [0, unsynced])
/// — i.e. an arbitrary byte-granularity torn tail — then poisons the vfs so
/// every later operation throws `SimulatedCrash` too ("the process died").
/// Restarting means constructing a fresh vfs over the same backing store.
class FaultVfs : public Vfs {
 public:
  explicit FaultVfs(Vfs& inner, FaultVfsOptions options = {});

  /// Operations issued so far (the crash-point domain).
  std::uint64_t ops() const noexcept { return ops_; }
  /// Bytes accepted by `append` so far (the ENOSPC domain).
  std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  /// Number of `sync`/`sync_dir` calls silently dropped so far.
  std::uint64_t dropped_sync_count() const noexcept { return dropped_syncs_; }
  bool crashed() const noexcept { return crashed_; }

  std::unique_ptr<WritableFile> open_write(const std::filesystem::path& path,
                                           WriteMode mode) override;
  std::optional<std::string> read_file(const std::filesystem::path& path) override;
  bool exists(const std::filesystem::path& path) override;
  std::uintmax_t file_size(const std::filesystem::path& path) override;
  void rename(const std::filesystem::path& from,
              const std::filesystem::path& to) override;
  bool remove(const std::filesystem::path& path) override;
  std::uintmax_t remove_all(const std::filesystem::path& path) override;
  void create_directories(const std::filesystem::path& path) override;
  std::vector<std::filesystem::path> list_dir(
      const std::filesystem::path& path) override;
  void truncate(const std::filesystem::path& path, std::uintmax_t size) override;
  void sync_dir(const std::filesystem::path& path) override;

 private:
  friend class FaultWritableFile;

  /// Advances the op counter and applies the schedule: EIO, then crash.
  /// Returns true when this op's sync should be dropped.
  bool step(const std::string& what);
  [[noreturn]] void crash();
  void note_written(const std::filesystem::path& path);
  void note_synced(const std::filesystem::path& path);
  void charge_append(const std::filesystem::path& path, std::string_view data,
                     WritableFile& backing);

  Vfs& inner_;
  FaultVfsOptions options_;
  std::uint64_t ops_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t dropped_syncs_ = 0;
  bool crashed_ = false;
  /// Last-synced length of every file written through this vfs.
  std::map<std::filesystem::path, std::uintmax_t> synced_;
};

}  // namespace cloudrepro::io
