#include "cloud/tc_emulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simnet/fluid_network.h"
#include "simnet/units.h"

namespace cloudrepro::cloud {

TcEmulator::TcEmulator(const TcEmulatorConfig& config)
    : config_{config},
      bucket_{config.bucket},
      programmed_rate_{bucket_.allowed_rate()} {
  if (config.update_interval_s <= 0.0) {
    throw std::invalid_argument{"TcEmulator: update interval must be positive"};
  }
}

void TcEmulator::advance(double dt, double rate_gbps) {
  // Advance tick-by-tick: the userspace controller reprograms the qdisc only
  // at tick boundaries, with the bucket state *as of that boundary* — not
  // the state at the end of an arbitrarily long advance.
  while (dt > 1e-12) {
    const double to_tick = config_.update_interval_s - time_in_tick_;
    const double step = std::min(dt, to_tick);
    bucket_.advance(step, std::min(rate_gbps, programmed_rate_));
    time_in_tick_ += step;
    dt -= step;
    if (time_in_tick_ >= config_.update_interval_s - 1e-12) {
      time_in_tick_ = 0.0;
      programmed_rate_ = bucket_.allowed_rate();
    }
  }
}

double TcEmulator::time_until_change(double /*rate_gbps*/) const {
  return std::max(config_.update_interval_s - time_in_tick_, 1e-6);
}

void TcEmulator::reset() {
  bucket_.reset();
  programmed_rate_ = bucket_.allowed_rate();
  time_in_tick_ = 0.0;
}

std::unique_ptr<simnet::QosPolicy> TcEmulator::clone() const {
  return std::make_unique<TcEmulator>(*this);
}

std::vector<CurvePoint> onoff_bandwidth_curve(simnet::QosPolicy& policy,
                                              double burst_s, double idle_s,
                                              double total_s) {
  if (burst_s <= 0.0 || idle_s < 0.0 || total_s <= 0.0) {
    throw std::invalid_argument{"onoff_bandwidth_curve: invalid pattern parameters"};
  }

  simnet::FluidNetwork net;
  const auto src = net.add_node(policy.clone());
  const auto dst = net.add_node(std::make_unique<simnet::FixedRateQos>(100.0));

  std::vector<CurvePoint> curve;
  double transferred_at_last_sample = 0.0;
  double next_sample = 1.0;
  double total_transferred = 0.0;

  // Track cumulative Gbit across all (consecutive) flows.
  double completed_flows_gbit = 0.0;
  simnet::FlowId current_flow = 0;
  bool flow_open = false;

  const auto total_gbit = [&] {
    return completed_flows_gbit +
           (flow_open ? net.flow(current_flow).transferred_gbit : 0.0);
  };

  const auto sample_until = [&](double t_target) {
    while (net.now() < t_target - 1e-9) {
      const double t_step = std::min(t_target, next_sample);
      net.run_until(t_step);
      total_transferred = total_gbit();
      if (net.now() >= next_sample - 1e-9) {
        curve.push_back(CurvePoint{net.now(), total_transferred - transferred_at_last_sample});
        transferred_at_last_sample = total_transferred;
        next_sample += 1.0;
      }
    }
  };

  double t = 0.0;
  while (t < total_s) {
    const double burst_end = std::min(t + burst_s, total_s);
    current_flow = net.start_flow(src, dst, simnet::kInfiniteBytes);
    flow_open = true;
    sample_until(burst_end);
    completed_flows_gbit += net.flow(current_flow).transferred_gbit;
    net.stop_flow(current_flow);
    flow_open = false;
    t = burst_end;
    if (t >= total_s) break;
    const double idle_end = std::min(t + idle_s, total_s);
    sample_until(idle_end);
    t = idle_end;
  }
  return curve;
}

double curve_rmse(const std::vector<CurvePoint>& a, const std::vector<CurvePoint>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i].bandwidth_gbps - b[i].bandwidth_gbps;
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(n));
}

double curve_correlation(const std::vector<CurvePoint>& a,
                         const std::vector<CurvePoint>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i].bandwidth_gbps;
    mb += b[i].bandwidth_gbps;
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i].bandwidth_gbps - ma;
    const double db = b[i].bandwidth_gbps - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace cloudrepro::cloud
