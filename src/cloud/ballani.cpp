#include "cloud/ballani.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace cloudrepro::cloud {

double BandwidthDistribution::quantile_mbps(double q) const {
  q = std::clamp(q, 0.01, 0.99);
  struct Point { double q; double v; };
  const Point pts[] = {{0.01, p1}, {0.25, p25}, {0.50, p50}, {0.75, p75}, {0.99, p99}};
  for (std::size_t i = 1; i < std::size(pts); ++i) {
    if (q <= pts[i].q) {
      const double frac = (q - pts[i - 1].q) / (pts[i].q - pts[i - 1].q);
      return pts[i - 1].v + frac * (pts[i].v - pts[i - 1].v);
    }
  }
  return p99;
}

double BandwidthDistribution::sample_mbps(stats::Rng& rng) const {
  return quantile_mbps(rng.uniform());
}

std::span<const BandwidthDistribution> ballani_distributions() {
  // Reconstructed from the box-and-whiskers plots of Figure 2 (percentiles
  // in Mb/s). The paper's clouds span medians from ~350 to ~850 Mb/s with
  // very different spreads; F and G additionally show significant
  // fine-grained (sub-minute) variability per [61] and [23].
  static const std::vector<BandwidthDistribution> kDistributions = {
      {"A", 200.0, 550.0, 650.0, 750.0, 900.0},
      {"B", 400.0, 700.0, 800.0, 870.0, 980.0},
      {"C", 100.0, 300.0, 400.0, 550.0, 800.0},
      {"D", 300.0, 500.0, 600.0, 700.0, 850.0},
      {"E", 50.0, 200.0, 350.0, 500.0, 750.0},
      {"F", 500.0, 600.0, 700.0, 900.0, 990.0},
      {"G", 100.0, 400.0, 620.0, 800.0, 950.0},
      {"H", 600.0, 800.0, 850.0, 900.0, 970.0},
  };
  return kDistributions;
}

const BandwidthDistribution& ballani_distribution(const std::string& label) {
  for (const auto& d : ballani_distributions()) {
    if (d.label == label) return d;
  }
  throw std::out_of_range{"ballani_distribution: unknown label " + label};
}

}  // namespace cloudrepro::cloud
