#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "simnet/packet_path.h"
#include "simnet/qos.h"
#include "simnet/token_bucket.h"
#include "stats/rng.h"

namespace cloudrepro::cloud {

enum class Provider { kAmazonEc2, kGoogleCloud, kHpcCloud };

std::string to_string(Provider provider);

/// EC2 policy era (finding F5.2): "prior to August 2019, all c5.xlarge
/// instances we allocated were given virtual NICs that could transmit at
/// 10 Gbps. Starting in August, we started getting virtual NICs that were
/// capped to 5 Gbps, though not consistently."
enum class PolicyEra { kPreAugust2019, kPostAugust2019 };

/// Catalog entry for a rentable instance type (Table 3).
struct InstanceType {
  Provider provider = Provider::kAmazonEc2;
  std::string name;
  int cores = 0;
  double advertised_qos_gbps = 0.0;  ///< 0 when the provider states no QoS (HPCCloud).
  double hourly_cost_usd = 0.0;      ///< For Table 3's cost column.
};

/// One *incarnation* of a VM pair's network path: the realized QoS policy,
/// virtual-NIC behaviour, and (when applicable) the drawn token-bucket
/// parameters. Figure 11 shows these parameters "are not always consistent
/// for multiple incarnations of the same instance type" — hence creation
/// draws them from per-type distributions.
struct VmNetwork {
  std::unique_ptr<simnet::QosPolicy> egress;
  simnet::VnicConfig vnic;
  double line_rate_gbps = 0.0;  ///< Physical/ingress cap.
  std::optional<simnet::TokenBucketConfig> bucket;  ///< Realized, if shaped.
};

/// Options controlling incarnation draws.
struct IncarnationOptions {
  PolicyEra era = PolicyEra::kPreAugust2019;
  /// Post-August-2019 probability that a c5-family NIC comes capped at
  /// 5 Gbps instead of 10 Gbps.
  double capped_nic_probability = 0.35;
  /// Fractional sigma of the per-incarnation bucket-capacity lognormal.
  double bucket_capacity_sigma = 0.12;
  /// Fractional sigma of the high-rate draw.
  double high_rate_sigma = 0.03;
};

/// A cloud profile builds VM network incarnations for an instance type.
class CloudProfile {
 public:
  CloudProfile(InstanceType type, IncarnationOptions options = {});

  const InstanceType& type() const noexcept { return type_; }
  const IncarnationOptions& options() const noexcept { return options_; }

  /// Draws a fresh VM incarnation. Different calls yield (slightly)
  /// different realized policies, as observed in Figure 11.
  VmNetwork create_vm(stats::Rng& rng) const;

  /// The *nominal* token-bucket parameters for an EC2 type (the central
  /// values the incarnation draws scatter around); nullopt for unshaped
  /// providers.
  std::optional<simnet::TokenBucketConfig> nominal_bucket() const;

 private:
  VmNetwork create_ec2(stats::Rng& rng) const;
  VmNetwork create_gce(stats::Rng& rng) const;
  VmNetwork create_hpccloud(stats::Rng& rng) const;

  InstanceType type_;
  IncarnationOptions options_;
};

/// The instance catalog of Table 3 plus the additional c5 sizes of
/// Figure 11.
std::span<const InstanceType> instance_catalog();

/// Lookup by provider and name; throws std::out_of_range if absent.
const InstanceType& find_instance(Provider provider, const std::string& name);

/// Convenience constructors for the three studied configurations
/// (the starred rows of Table 3).
CloudProfile ec2_c5_xlarge(IncarnationOptions options = {});
CloudProfile gce_8core(IncarnationOptions options = {});
CloudProfile hpccloud_8core(IncarnationOptions options = {});

}  // namespace cloudrepro::cloud
