#pragma once

#include <memory>
#include <vector>

#include "simnet/qos.h"
#include "simnet/token_bucket.h"

namespace cloudrepro::cloud {

/// Linux-`tc`-style token-bucket **emulator** (Section 4.2, Figure 14).
///
/// The paper emulates EC2's shaping on a private cluster with the `tc` [32]
/// facility driven by a userspace controller; such a controller observes the
/// transferred byte counters and re-programs the qdisc rate at a fixed
/// cadence. The emulator therefore behaves like the real shaper except that
/// rate transitions are quantized to the update tick — which is why the
/// emulated curves in Figure 14 track the AWS curves closely but not
/// sample-exactly.
struct TcEmulatorConfig {
  simnet::TokenBucketConfig bucket;
  double update_interval_s = 1.0;  ///< Controller reprogramming cadence.
};

class TcEmulator final : public simnet::QosPolicy {
 public:
  explicit TcEmulator(const TcEmulatorConfig& config);

  double allowed_rate() const override { return programmed_rate_; }
  void advance(double dt, double rate_gbps) override;
  double time_until_change(double rate_gbps) const override;
  void reset() override;
  std::unique_ptr<simnet::QosPolicy> clone() const override;
  std::optional<double> budget_gbit() const override { return bucket_.budget(); }

  const simnet::TokenBucket& bucket() const noexcept { return bucket_; }
  simnet::TokenBucket& bucket() noexcept { return bucket_; }

 private:
  TcEmulatorConfig config_;
  simnet::TokenBucket bucket_;
  double programmed_rate_;
  double time_in_tick_ = 0.0;
};

/// One point of a bandwidth-versus-time validation curve.
struct CurvePoint {
  double t = 0.0;
  double bandwidth_gbps = 0.0;
};

/// Drives a policy with an on/off access pattern (`burst_s` seconds of
/// transfer, `idle_s` of rest, repeated for `total_s`) and returns the
/// achieved bandwidth sampled once per second — the curves of Figure 14.
std::vector<CurvePoint> onoff_bandwidth_curve(simnet::QosPolicy& policy,
                                              double burst_s, double idle_s,
                                              double total_s);

/// Root-mean-square error between two curves (compared over the shared
/// prefix), used to quantify emulation fidelity.
double curve_rmse(const std::vector<CurvePoint>& a, const std::vector<CurvePoint>& b);

/// Pearson correlation between two curves' bandwidth series.
double curve_correlation(const std::vector<CurvePoint>& a,
                         const std::vector<CurvePoint>& b);

}  // namespace cloudrepro::cloud
