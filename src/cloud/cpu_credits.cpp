#include "cloud/cpu_credits.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cloudrepro::cloud {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}

CpuCreditBucket::CpuCreditBucket(const CpuCreditConfig& config)
    : config_{config}, credits_{config.initial_credits} {
  if (config.baseline_fraction <= 0.0 || config.baseline_fraction > 1.0) {
    throw std::invalid_argument{"CpuCreditBucket: baseline fraction must be in (0, 1]"};
  }
  if (config.max_credits < 0.0 || config.initial_credits < 0.0) {
    throw std::invalid_argument{"CpuCreditBucket: credits must be non-negative"};
  }
  if (config.initial_credits > config.max_credits) {
    throw std::invalid_argument{"CpuCreditBucket: initial credits exceed the cap"};
  }
  if (config.vcpus <= 0) throw std::invalid_argument{"CpuCreditBucket: vcpus must be positive"};
}

double CpuCreditBucket::speed_factor() const noexcept {
  return credits_ > 0.0 ? 1.0 : config_.baseline_fraction;
}

double CpuCreditBucket::net_burn_per_s(double utilization) const noexcept {
  const double u = std::clamp(utilization, 0.0, 1.0);
  // Spend: u * vcpus credits per minute at full speed. When depleted, the
  // scheduler caps execution so spend == earn (the bucket pins at zero).
  const double effective_u = credits_ > 0.0 ? u : std::min(u, config_.baseline_fraction);
  const double spend_per_s = effective_u * static_cast<double>(config_.vcpus) / 60.0;
  const double earn_per_s = config_.credits_per_hour() / 3600.0;
  return spend_per_s - earn_per_s;
}

void CpuCreditBucket::advance(double dt_s, double utilization) noexcept {
  if (dt_s <= 0.0) return;
  credits_ = std::clamp(credits_ - net_burn_per_s(utilization) * dt_s, 0.0,
                        config_.max_credits);
}

double CpuCreditBucket::time_until_change(double utilization) const noexcept {
  const double burn = net_burn_per_s(utilization);
  if (credits_ > 0.0 && burn > 0.0) return credits_ / burn;
  if (credits_ <= 0.0 && burn < 0.0) return 1e-6;  // Recovers immediately.
  return kInfinity;
}

double CpuCreditBucket::run_compute(double nominal_s, double utilization) noexcept {
  if (nominal_s <= 0.0) return 0.0;
  double remaining_work = nominal_s;  // In full-speed seconds.
  double elapsed = 0.0;
  // Two regimes at most: burst until depletion, then baseline.
  while (remaining_work > 1e-12) {
    const double factor = speed_factor();
    double phase_wall;
    if (credits_ > 0.0) {
      const double burn = net_burn_per_s(utilization);
      const double until_depleted = burn > 0.0 ? credits_ / burn : kInfinity;
      phase_wall = std::min(remaining_work / factor, until_depleted);
    } else {
      phase_wall = remaining_work / factor;
    }
    advance(phase_wall, utilization);
    remaining_work -= phase_wall * factor;
    elapsed += phase_wall;
    if (phase_wall <= 0.0) break;  // Numerical guard.
  }
  return elapsed;
}

void CpuCreditBucket::reset() noexcept { credits_ = config_.initial_credits; }

void CpuCreditBucket::set_credits(double credits) noexcept {
  credits_ = std::clamp(credits, 0.0, config_.max_credits);
}

}  // namespace cloudrepro::cloud
