#pragma once

#include <array>
#include <span>
#include <string>

#include "stats/rng.h"

namespace cloudrepro::cloud {

/// The eight real-world cloud bandwidth distributions (labelled A-H) that
/// Ballani et al. [7] measured and the paper replays in its Figure 2 /
/// Figure 3 emulation study.
///
/// Only the 1st/25th/50th/75th/99th percentiles are published ("the
/// quartiles give us only a rough idea about the probability densities"),
/// so — exactly as the paper does — we reconstruct each distribution from
/// those five points and sample it uniformly: the inverse CDF is piecewise
/// linear through the known percentiles.
///
/// Values are in Mb/s, matching Figure 2's axis.
struct BandwidthDistribution {
  std::string label;
  double p1 = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p99 = 0.0;

  /// Draws one bandwidth value (Mb/s) by inverting the piecewise-linear CDF
  /// at a uniform quantile.
  double sample_mbps(stats::Rng& rng) const;

  /// Inverse CDF at quantile q (clamped to the known [0.01, 0.99] range).
  double quantile_mbps(double q) const;
};

/// All eight distributions, A through H (reconstructed from Figure 2).
std::span<const BandwidthDistribution> ballani_distributions();

/// Lookup by label ("A".."H"); throws std::out_of_range for other labels.
const BandwidthDistribution& ballani_distribution(const std::string& label);

}  // namespace cloudrepro::cloud
