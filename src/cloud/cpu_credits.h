#pragma once

#include "stats/rng.h"

namespace cloudrepro::cloud {

/// CPU-credit shaping for burstable instances (t2/t3-style).
///
/// The paper closes Section 4.2 with: "Others have shown that cloud
/// providers use token buckets for other resources such as CPU scheduling
/// [60]. This affects cloud-based experimentation, as the state of these
/// token buckets is not directly visible to users, nor are their budgets or
/// refill policies." This module implements that extension so the engine
/// can reproduce the same broken-independence phenomenology on the CPU axis
/// (see `bench_ablation_cpu_credits`).
///
/// Semantics follow the burstable-instance model of Wang et al. [60]:
///  - the instance earns `credits_per_hour` CPU credits per hour,
///  - one credit buys one vCPU-minute at 100% utilization,
///  - while credits remain the instance runs at full speed,
///  - once depleted it is capped at `baseline_fraction` of full speed
///    (which is exactly what the earning rate sustains).
struct CpuCreditConfig {
  double baseline_fraction = 0.40;   ///< t3.xlarge-class baseline.
  double max_credits = 2304.0;       ///< Credit cap (24h of earning).
  double initial_credits = 2304.0;   ///< Launch credits.
  int vcpus = 4;

  /// Credits earned per hour = baseline_fraction * vcpus * 60.
  double credits_per_hour() const noexcept {
    return baseline_fraction * static_cast<double>(vcpus) * 60.0;
  }
};

/// Fluid CPU-credit bucket: advance with the utilization actually consumed;
/// query the speed factor the scheduler currently grants.
class CpuCreditBucket {
 public:
  explicit CpuCreditBucket(const CpuCreditConfig& config);

  /// Current multiplicative speed factor for compute: 1.0 while credits
  /// remain, `baseline_fraction` when depleted.
  double speed_factor() const noexcept;

  double credits() const noexcept { return credits_; }
  bool depleted() const noexcept { return credits_ <= 0.0; }

  /// Advances wall-clock time by `dt_s` seconds at `utilization` (0..1,
  /// fraction of all vCPUs busy). Spends utilization * vcpus credits per
  /// minute and earns at the configured rate concurrently.
  void advance(double dt_s, double utilization) noexcept;

  /// Seconds of full-utilization compute until the speed factor changes
  /// (depletion while burning, or recovery while resting); +infinity when
  /// stable.
  double time_until_change(double utilization) const noexcept;

  /// Converts a nominal compute duration into the actual duration given the
  /// current credit state, advancing the bucket through the computation.
  /// This is the engine hook: compute that would take `nominal_s` at full
  /// speed takes longer once the credits run dry mid-way.
  double run_compute(double nominal_s, double utilization = 1.0) noexcept;

  void reset() noexcept;
  void set_credits(double credits) noexcept;

  const CpuCreditConfig& config() const noexcept { return config_; }

 private:
  /// Net credit burn per second at the given utilization.
  double net_burn_per_s(double utilization) const noexcept;

  CpuCreditConfig config_;
  double credits_;
};

}  // namespace cloudrepro::cloud
