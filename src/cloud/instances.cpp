#include "cloud/instances.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace cloudrepro::cloud {

std::string to_string(Provider provider) {
  switch (provider) {
    case Provider::kAmazonEc2: return "Amazon EC2";
    case Provider::kGoogleCloud: return "Google Cloud";
    case Provider::kHpcCloud: return "HPCCloud";
  }
  return "unknown";
}

std::span<const InstanceType> instance_catalog() {
  static const std::vector<InstanceType> kCatalog = {
      // Amazon EC2 (typical big-data offerings [19]; Table 3 costs).
      {Provider::kAmazonEc2, "c5.large", 2, 10.0, 0.085},
      {Provider::kAmazonEc2, "c5.xlarge", 4, 10.0, 0.17},
      {Provider::kAmazonEc2, "c5.2xlarge", 8, 10.0, 0.34},
      {Provider::kAmazonEc2, "c5.4xlarge", 16, 10.0, 0.68},
      {Provider::kAmazonEc2, "c5.9xlarge", 36, 10.0, 1.53},
      {Provider::kAmazonEc2, "m5.xlarge", 4, 10.0, 0.192},
      {Provider::kAmazonEc2, "m4.16xlarge", 64, 20.0, 3.20},
      // Google Cloud: ~2 Gbps per core, capped at 16 Gbps.
      {Provider::kGoogleCloud, "1-core", 1, 2.0, 0.034},
      {Provider::kGoogleCloud, "2-core", 2, 4.0, 0.067},
      {Provider::kGoogleCloud, "4-core", 4, 8.0, 0.134},
      {Provider::kGoogleCloud, "8-core", 8, 16.0, 0.268},
      // HPCCloud: private research cloud; no QoS enforcement, no cost.
      {Provider::kHpcCloud, "2-core", 2, 0.0, 0.0},
      {Provider::kHpcCloud, "4-core", 4, 0.0, 0.0},
      {Provider::kHpcCloud, "8-core", 8, 0.0, 0.0},
  };
  return kCatalog;
}

const InstanceType& find_instance(Provider provider, const std::string& name) {
  for (const auto& t : instance_catalog()) {
    if (t.provider == provider && t.name == name) return t;
  }
  throw std::out_of_range{"find_instance: no such instance " + name};
}

CloudProfile::CloudProfile(InstanceType type, IncarnationOptions options)
    : type_{std::move(type)}, options_{options} {}

std::optional<simnet::TokenBucketConfig> CloudProfile::nominal_bucket() const {
  if (type_.provider != Provider::kAmazonEc2) return std::nullopt;
  simnet::TokenBucketConfig cfg;
  cfg.high_rate_gbps = type_.advertised_qos_gbps;
  // Bucket size and capped rate scale with the machine size (Figure 11:
  // "more expensive machines benefit from larger initial budgets, as well
  // as higher bandwidths when their budget depletes"). Calibrated so that
  // c5.xlarge matches the paper's observations: 10 Gbps high rate, ~1 Gbps
  // low rate, ~1 Gbit/s replenish, and roughly ten minutes of full-speed
  // transfer to empty the bucket.
  if (type_.name == "c5.large") {
    cfg.capacity_gbit = 2700.0;
    cfg.low_rate_gbps = 0.5;
  } else if (type_.name == "c5.xlarge" || type_.name == "m5.xlarge") {
    cfg.capacity_gbit = 5400.0;
    cfg.low_rate_gbps = 1.0;
  } else if (type_.name == "c5.2xlarge") {
    cfg.capacity_gbit = 10800.0;
    cfg.low_rate_gbps = 2.0;
  } else if (type_.name == "c5.4xlarge") {
    cfg.capacity_gbit = 21600.0;
    cfg.low_rate_gbps = 4.0;
  } else if (type_.name == "c5.9xlarge") {
    // Large instances get the full line rate; the bucket is effectively
    // unlimited at 10 Gbps but variability remains (Table 3 marks it Yes).
    cfg.capacity_gbit = 80000.0;
    cfg.low_rate_gbps = 5.0;
  } else if (type_.name == "m4.16xlarge") {
    cfg.capacity_gbit = 120000.0;
    cfg.high_rate_gbps = 20.0;
    cfg.low_rate_gbps = 5.0;
  } else {
    cfg.capacity_gbit = 5400.0;
    cfg.low_rate_gbps = 1.0;
  }
  cfg.replenish_gbps = cfg.low_rate_gbps;  // Capped-rate sending keeps it empty.
  cfg.initial_gbit = cfg.capacity_gbit;
  return cfg;
}

VmNetwork CloudProfile::create_vm(stats::Rng& rng) const {
  switch (type_.provider) {
    case Provider::kAmazonEc2: return create_ec2(rng);
    case Provider::kGoogleCloud: return create_gce(rng);
    case Provider::kHpcCloud: return create_hpccloud(rng);
  }
  throw std::logic_error{"CloudProfile::create_vm: unknown provider"};
}

VmNetwork CloudProfile::create_ec2(stats::Rng& rng) const {
  auto cfg = *nominal_bucket();

  // Per-incarnation parameter scatter (Figure 11's boxplots/error bars).
  cfg.capacity_gbit *= rng.lognormal(0.0, options_.bucket_capacity_sigma);
  cfg.high_rate_gbps *= rng.lognormal(0.0, options_.high_rate_sigma);

  // Post-August-2019 policy drift: some c5-family NICs arrive capped at
  // 5 Gbps "though not consistently" (F5.2).
  if (options_.era == PolicyEra::kPostAugust2019 && type_.name.rfind("c5.", 0) == 0 &&
      rng.bernoulli(options_.capped_nic_probability)) {
    cfg.high_rate_gbps = std::min(cfg.high_rate_gbps, 5.0);
  }
  cfg.initial_gbit = cfg.capacity_gbit;

  VmNetwork vm;
  vm.bucket = cfg;
  vm.egress = std::make_unique<simnet::TokenBucketQos>(cfg);
  vm.vnic = simnet::ec2_vnic();
  vm.line_rate_gbps = std::max(10.0, cfg.high_rate_gbps);
  return vm;
}

VmNetwork CloudProfile::create_gce(stats::Rng& rng) const {
  simnet::PerCoreQosConfig cfg;
  cfg.cores = type_.cores;
  cfg.per_core_gbps = 2.0;
  cfg.max_gbps = 16.0;

  VmNetwork vm;
  vm.egress = std::make_unique<simnet::PerCoreQos>(cfg, rng.split());
  vm.vnic = simnet::gce_vnic();
  vm.line_rate_gbps = std::min(static_cast<double>(type_.cores) * cfg.per_core_gbps,
                               cfg.max_gbps);
  return vm;
}

VmNetwork CloudProfile::create_hpccloud(stats::Rng& rng) const {
  // No QoS enforcement: achieved bandwidth wanders with neighbour traffic.
  // Small private clouds have *less* statistical multiplexing to smooth out
  // contention (F3.2), so when a noisy neighbour appears the dip is deep.
  // Calibrated to Figure 4: full-speed varies between ~7.7 and ~10.4 Gbps.
  const double line_rate = 10.4;
  auto sampler = [line_rate](stats::Rng& r) {
    if (r.bernoulli(0.12)) {
      // A competing tenant grabs a sizeable share for this interval.
      return r.uniform(7.7, 9.3);
    }
    const double rate = r.normal(0.955 * line_rate, 0.022 * line_rate);
    return std::clamp(rate, 7.7, line_rate);
  };

  VmNetwork vm;
  vm.egress = std::make_unique<simnet::StochasticQos>(sampler, 10.0, rng.split());
  vm.vnic = simnet::hpccloud_vnic();
  vm.line_rate_gbps = line_rate;
  return vm;
}

CloudProfile ec2_c5_xlarge(IncarnationOptions options) {
  return CloudProfile{find_instance(Provider::kAmazonEc2, "c5.xlarge"), options};
}

CloudProfile gce_8core(IncarnationOptions options) {
  return CloudProfile{find_instance(Provider::kGoogleCloud, "8-core"), options};
}

CloudProfile hpccloud_8core(IncarnationOptions options) {
  return CloudProfile{find_instance(Provider::kHpcCloud, "8-core"), options};
}

}  // namespace cloudrepro::cloud
