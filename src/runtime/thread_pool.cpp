#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <utility>

namespace cloudrepro::runtime {

int ThreadPool::resolve_thread_count(int requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_thread_count(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mu_};
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument{"ThreadPool::submit: null task"};
  {
    std::lock_guard<std::mutex> lock{mu_};
    if (stopping_) {
      throw std::runtime_error{"ThreadPool::submit: pool is shutting down"};
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock{mu_};
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock{mu_};
  for (;;) {
    work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained.
    auto task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

void parallel_for_each(int threads, std::size_t count,
                       const std::function<void(std::size_t)>& body) {
  if (!body) throw std::invalid_argument{"parallel_for_each: null body"};
  if (count == 0) return;
  const int n = ThreadPool::resolve_thread_count(threads);
  if (n <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  const auto drain = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock{error_mu};
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The calling thread is one of the workers; spawn the rest.
  const auto extra_count =
      std::min<std::size_t>(static_cast<std::size_t>(n), count) - 1;
  std::vector<std::thread> extra;
  extra.reserve(extra_count);
  for (std::size_t t = 0; t < extra_count; ++t) extra.emplace_back(drain);
  drain();
  for (auto& t : extra) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace cloudrepro::runtime
