#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <utility>

namespace cloudrepro::runtime {

namespace {

/// Identifies the calling thread's pool membership. One pair suffices even
/// with nested pools in flight (campaigns never nest workers), and lookups
/// compare the pool pointer so foreign pools read -1.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_worker_index = -1;

/// Injection-batch size: how many queued tasks a worker moves onto its own
/// deque per lock acquisition. Amortizes the injection lock across the
/// lock-free deque pops that follow (and feeds the thieves).
constexpr std::size_t kInjectBatch = 16;

constexpr std::size_t kDequeCapacity = 1024;

}  // namespace

// --- Chase–Lev deque -------------------------------------------------------

ThreadPool::Deque::Deque(std::size_t capacity) {
  std::size_t cap = 2;
  while (cap < capacity) cap <<= 1;
  slots_ = std::vector<std::atomic<Task*>>(cap);
  mask_ = cap - 1;
}

bool ThreadPool::Deque::push_bottom(Task* task) noexcept {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  if (b - t >= static_cast<std::int64_t>(slots_.size())) return false;
  slots_[static_cast<std::size_t>(b) & mask_].store(task,
                                                    std::memory_order_relaxed);
  // Release on bottom publishes the slot store to thieves' acquire loads.
  bottom_.store(b + 1, std::memory_order_release);
  return true;
}

ThreadPool::Task* ThreadPool::Deque::pop_bottom() noexcept {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  // seq_cst store/load pair: the owner's bottom decrement must be ordered
  // against its top read (Dekker with concurrent thieves).
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {
    // Empty: undo.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }
  Task* task = slots_[static_cast<std::size_t>(b) & mask_].load(
      std::memory_order_relaxed);
  if (t == b) {
    // Last element: race the thieves for it.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      task = nullptr;  // A thief won.
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return task;
}

ThreadPool::Task* ThreadPool::Deque::steal_top() noexcept {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Task* task =
      slots_[static_cast<std::size_t>(t) & mask_].load(std::memory_order_relaxed);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // Lost to the owner or another thief; caller retries.
  }
  return task;
}

// --- Pool ------------------------------------------------------------------

int ThreadPool::resolve_thread_count(int requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_thread_count(threads);
  deques_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<Deque>(kDequeCapacity));
  }
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mu_};
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::current_worker_index() const noexcept {
  return tl_pool == this ? tl_worker_index : -1;
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument{"ThreadPool::submit: null task"};
  auto owned = std::make_unique<Task>(std::move(task));
  // unfinished before unstarted: a worker that picks the task up instantly
  // must not let wait_idle observe unfinished == 0 mid-flight.
  unfinished_.fetch_add(1, std::memory_order_seq_cst);
  unstarted_.fetch_add(1, std::memory_order_seq_cst);
  enqueue(owned.release());
}

void ThreadPool::enqueue(Task* task) {
  if (current_worker_index() >= 0) {
    // Worker fast path: own deque, no lock. Fall through to the injection
    // queue only when the deque is full.
    if (deques_[static_cast<std::size_t>(tl_worker_index)]->push_bottom(task)) {
      notify_if_sleepers();
      return;
    }
  }
  {
    std::lock_guard<std::mutex> lock{mu_};
    if (stopping_) {
      unstarted_.fetch_sub(1, std::memory_order_relaxed);
      unfinished_.fetch_sub(1, std::memory_order_relaxed);
      delete task;
      throw std::runtime_error{"ThreadPool::submit: pool is shutting down"};
    }
    inject_.push_back(task);
  }
  work_cv_.notify_one();
}

void ThreadPool::notify_if_sleepers() {
  // Dekker pair with the sleep path: the submitter stored unstarted_
  // (seq_cst) before this load; the sleeper increments sleepers_ (seq_cst,
  // under mu_) before re-checking unstarted_. Whichever ran second sees the
  // other, so a pushed task is never stranded with every worker asleep.
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock{mu_};
    work_cv_.notify_one();
  }
}

ThreadPool::Task* ThreadPool::try_acquire(int self) {
  auto& own = *deques_[static_cast<std::size_t>(self)];
  if (Task* task = own.pop_bottom()) return task;

  // Injection queue: take one to run, move a batch onto our deque so the
  // next pops (and any thieves) skip the lock.
  {
    std::lock_guard<std::mutex> lock{mu_};
    if (!inject_.empty()) {
      Task* first = inject_.front();
      inject_.pop_front();
      std::size_t moved = 0;
      while (!inject_.empty() && moved < kInjectBatch) {
        if (!own.push_bottom(inject_.front())) break;
        inject_.pop_front();
        ++moved;
      }
      return first;
    }
  }

  // Steal: round-robin starting after ourselves, so victims differ across
  // thieves.
  const int n = thread_count();
  for (int k = 1; k < n; ++k) {
    const int victim = (self + k) % n;
    if (Task* task = deques_[static_cast<std::size_t>(victim)]->steal_top()) {
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::run_task(Task* task) noexcept {
  unstarted_.fetch_sub(1, std::memory_order_seq_cst);
  (*task)();
  delete task;
  if (unfinished_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    // Count hit zero: wake wait_idle and, during shutdown, the workers
    // waiting to exit. Lock-then-notify so a waiter between its predicate
    // check and its wait cannot miss this.
    std::lock_guard<std::mutex> lock{mu_};
    idle_cv_.notify_all();
    work_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(int self) {
  tl_pool = this;
  tl_worker_index = self;
  for (;;) {
    if (Task* task = try_acquire(self)) {
      run_task(task);
      continue;
    }
    std::unique_lock<std::mutex> lock{mu_};
    if (stopping_ && unfinished_.load(std::memory_order_seq_cst) == 0) return;
    if (unstarted_.load(std::memory_order_seq_cst) > 0) continue;  // Retry.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    work_cv_.wait(lock, [this] {
      return unstarted_.load(std::memory_order_seq_cst) > 0 ||
             (stopping_ && unfinished_.load(std::memory_order_seq_cst) == 0);
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (stopping_ && unfinished_.load(std::memory_order_seq_cst) == 0) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock{mu_};
  idle_cv_.wait(lock, [this] {
    return unfinished_.load(std::memory_order_seq_cst) == 0;
  });
}

// --- parallel_for_each -----------------------------------------------------

void parallel_for_each(int threads, std::size_t count,
                       const std::function<void(std::size_t)>& body) {
  if (!body) throw std::invalid_argument{"parallel_for_each: null body"};
  if (count == 0) return;
  const int n = ThreadPool::resolve_thread_count(threads);
  if (n <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  const auto drain = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock{error_mu};
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The calling thread is one of the workers; spawn the rest.
  const auto extra_count =
      std::min<std::size_t>(static_cast<std::size_t>(n), count) - 1;
  std::vector<std::thread> extra;
  extra.reserve(extra_count);
  for (std::size_t t = 0; t < extra_count; ++t) extra.emplace_back(drain);
  drain();
  for (auto& t : extra) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace cloudrepro::runtime
