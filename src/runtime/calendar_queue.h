#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace cloudrepro::runtime {

/// Calendar (bucketed timer-wheel) event queue with deterministic FIFO
/// tie-breaking.
///
/// The simulators' hot loops are push/pop storms over timestamps with a
/// strong cadence: token-bucket replenish ticks, per-segment service times,
/// fault-plan events. A binary heap pays O(log n) per operation and, worse
/// for reproducibility, pops *equal* timestamps in heap order. This queue
/// pays amortized O(1) per operation when event spacing matches the bucket
/// width (the calendar adapts its width on resize) and orders equal
/// timestamps by push sequence, so the pop sequence is a pure function of
/// the push sequence — the property the bit-identity tests pin.
///
/// Structure: `bucket_count` buckets each `width` seconds wide, cycling
/// over a "year" of `bucket_count * width` seconds. An event lands in
/// bucket `floor(time / width) % bucket_count`; the scan visits buckets in
/// calendar order and only accepts events of the bucket's current year, so
/// far-future events wait in place without being re-sorted. Each entry
/// caches its home *virtual* bucket (`floor(time / width)` as an integer),
/// making year membership an exact integer comparison — no float-boundary
/// ambiguity between push and pop. When a whole year is empty the scan
/// falls back to a direct minimum search and jumps the calendar forward
/// (the classic skip-ahead), so sparse tails cost O(n) once instead of
/// O(empty buckets) each pop.
///
/// Not thread-safe: one queue per simulation, like the heaps it replaces.
template <typename T>
class CalendarQueue {
 public:
  /// `initial_width` seeds the bucket width before the first adaptive
  /// resize; pass the expected event spacing when known. The width is
  /// re-derived from the live event span on every resize, so a poor guess
  /// only costs until the queue first holds ~2x `kMinBuckets` events.
  explicit CalendarQueue(double initial_width = 1.0)
      : width_(initial_width > 0.0 ? initial_width : 1.0) {
    buckets_.resize(kMinBuckets);
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Timestamp of the earliest event; +infinity when empty.
  double next_time() const {
    if (size_ == 0) return std::numeric_limits<double>::infinity();
    find_min();
    return min_time_;
  }

  void push(double time, T value) {
    maybe_grow();
    const std::int64_t vb = virtual_bucket(time);
    buckets_[physical(vb)].push_back(Entry{time, next_seq_++, vb, std::move(value)});
    ++size_;
    // Events may be scheduled before the current cursor (the injector's
    // synthetic follow-ups land at "now", which the last pop may equal);
    // pull the cursor back so the scan cannot skip them.
    if (vb < cursor_) cursor_ = vb;
    min_cached_ = false;
  }

  /// Removes and returns the earliest event (FIFO among equal timestamps).
  /// Undefined when empty — guard with `empty()` / `next_time()`.
  T pop() {
    find_min();
    auto& bucket = buckets_[min_bucket_];
    T out = std::move(bucket[min_pos_].value);
    // Swap-remove: intra-bucket order is irrelevant because the scan
    // compares full (time, seq) keys.
    if (min_pos_ + 1 != bucket.size()) bucket[min_pos_] = std::move(bucket.back());
    bucket.pop_back();
    --size_;
    cursor_ = min_vb_;
    min_cached_ = false;
    if (++pops_since_retune_ >= kRetuneWindow) maybe_retune();
    return out;
  }

 private:
  struct Entry {
    double time = 0.0;
    std::uint64_t seq = 0;   ///< Global push counter: FIFO tie-break.
    std::int64_t vb = 0;     ///< Home virtual bucket under the current width.
    T value{};
  };

  static constexpr std::size_t kMinBuckets = 8;

  // Scan-cost-triggered width retune (see maybe_retune): every
  // kRetuneWindow pops, rebuild if the scan examined more than
  // kScanThreshold entries per pop on average AND re-deriving the width
  // from the live span would actually change it.
  static constexpr std::size_t kRetuneWindow = 64;
  static constexpr std::size_t kScanThreshold = 8;

  static bool earlier(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::int64_t virtual_bucket(double time) const noexcept {
    const double q = std::floor(time / width_);
    // Clamp instead of overflowing the cast: +/-inf and huge timestamps
    // become "last representable year", which the direct-search fallback
    // handles exactly like any other far-future event.
    constexpr double kLimit = 4.6e18;  // < 2^62, exactly representable.
    if (!(q > -kLimit)) return static_cast<std::int64_t>(-kLimit);
    if (!(q < kLimit)) return static_cast<std::int64_t>(kLimit);
    return static_cast<std::int64_t>(q);
  }

  std::size_t physical(std::int64_t vb) const noexcept {
    const auto mask = static_cast<std::uint64_t>(buckets_.size()) - 1;
    return static_cast<std::size_t>(static_cast<std::uint64_t>(vb) & mask);
  }

  /// Locates the minimum (time, seq) entry and caches its position.
  /// Calendar scan first: starting at the cursor's virtual bucket, each
  /// bucket is scanned for entries of that exact year; the first bucket
  /// with a candidate holds the global minimum (later windows start later).
  void find_min() const {
    if (min_cached_) return;
    std::int64_t vb = cursor_;
    for (std::size_t step = 0; step < buckets_.size(); ++step, ++vb) {
      const auto& bucket = buckets_[physical(vb)];
      const Entry* best = nullptr;
      std::size_t best_pos = 0;
      scanned_ += bucket.size();
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].vb != vb) continue;  // Another year of this bucket.
        if (!best || earlier(bucket[i], *best)) {
          best = &bucket[i];
          best_pos = i;
        }
      }
      if (best) {
        cache_min(physical(vb), best_pos, *best);
        return;
      }
    }
    // Whole year empty: direct search (skip-ahead). O(n) once, then the
    // cursor jumps to the found event's year.
    const Entry* best = nullptr;
    std::size_t best_bucket = 0;
    std::size_t best_pos = 0;
    scanned_ += size_;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
        if (!best || earlier(buckets_[b][i], *best)) {
          best = &buckets_[b][i];
          best_bucket = b;
          best_pos = i;
        }
      }
    }
    cache_min(best_bucket, best_pos, *best);
  }

  void cache_min(std::size_t bucket, std::size_t pos, const Entry& e) const {
    min_bucket_ = bucket;
    min_pos_ = pos;
    min_time_ = e.time;
    min_vb_ = e.vb;
    min_cached_ = true;
  }

  /// Doubles the calendar when buckets average two entries, re-deriving the
  /// width from the live span so the cadence the queue actually carries
  /// sets the resolution. Purely size-triggered, so the layout (and cost)
  /// is a deterministic function of the operation sequence.
  void maybe_grow() {
    if (size_ < buckets_.size() * 2) return;
    std::size_t count = buckets_.size();
    while (count < size_) count <<= 1;
    rebuild(count * 2);
  }

  /// Growth only fires while the queue is filling; a steady-state workload
  /// (pop one, push one — the simulators' hold pattern) never resizes, so
  /// the width stays frozen at whatever the *setup* span dictated. When the
  /// live span then contracts — e.g. every timer converges to within one
  /// replenish interval of "now" — the whole population collapses into a
  /// couple of buckets and each pop degrades to a linear rescan. Detect
  /// that from the scan cost itself: every kRetuneWindow pops, if find_min
  /// examined more than kScanThreshold entries per pop on average and the
  /// span-derived width differs from the current one by more than 2x in
  /// either direction, rebuild at the same bucket count. The trigger is a
  /// pure function of the operation sequence (scan cost is deterministic),
  /// and the layout never affects pop order — only its cost — so
  /// bit-identity of every consumer is preserved.
  void maybe_retune() {
    const std::size_t scanned = scanned_;
    const std::size_t pops = pops_since_retune_;
    scanned_ = 0;
    pops_since_retune_ = 0;
    if (size_ < kMinBuckets * 2) return;
    if (scanned <= kScanThreshold * pops) return;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto& bucket : buckets_) {
      for (const auto& e : bucket) {
        if (e.time < lo) lo = e.time;
        if (e.time > hi && e.time < std::numeric_limits<double>::infinity()) {
          hi = e.time;
        }
      }
    }
    const double span = hi - lo;
    if (!(span > 0.0) || !std::isfinite(span)) return;
    const double candidate = span / static_cast<double>(size_);
    // A rebuild that lands on essentially the same width buys nothing (the
    // cost is genuine clustering, e.g. heavy ties): skip, and the zeroed
    // counters back the check off for another window.
    if (candidate > width_ * 0.5 && candidate < width_ * 2.0) return;
    rebuild(buckets_.size());
  }

  /// Re-derives the width from the live event span and rehomes every entry
  /// into `bucket_count` buckets. Shared by size-triggered growth and
  /// scan-cost-triggered retuning.
  void rebuild(std::size_t bucket_count) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    std::vector<Entry> all;
    all.reserve(size_);
    for (auto& bucket : buckets_) {
      for (auto& e : bucket) {
        if (e.time < lo) lo = e.time;
        if (e.time > hi && e.time < std::numeric_limits<double>::infinity()) {
          hi = e.time;
        }
        all.push_back(std::move(e));
      }
      bucket.clear();
    }
    buckets_.assign(bucket_count, {});
    const double span = hi - lo;
    if (span > 0.0 && std::isfinite(span)) {
      width_ = span / static_cast<double>(size_);
    }
    std::int64_t new_cursor = std::numeric_limits<std::int64_t>::max();
    for (auto& e : all) {
      e.vb = virtual_bucket(e.time);
      if (e.vb < new_cursor) new_cursor = e.vb;
      buckets_[physical(e.vb)].push_back(std::move(e));
    }
    cursor_ = new_cursor;
    min_cached_ = false;
  }

  std::vector<std::vector<Entry>> buckets_;
  double width_;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::int64_t cursor_ = 0;  ///< Virtual bucket the next scan starts from.
  std::size_t pops_since_retune_ = 0;
  mutable std::size_t scanned_ = 0;  ///< Entries examined by find_min.

  // Cached location of the minimum entry, so next_time() + pop() pairs scan
  // once. Invalidated by any push/pop.
  mutable bool min_cached_ = false;
  mutable std::size_t min_bucket_ = 0;
  mutable std::size_t min_pos_ = 0;
  mutable double min_time_ = 0.0;
  mutable std::int64_t min_vb_ = 0;
};

}  // namespace cloudrepro::runtime
