#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cloudrepro::runtime {

/// Deterministic parallel execution runtime.
///
/// The paper's prescription is *more repetitions* — CONFIRM shows that 70+
/// may be needed for 1% error bounds — and every figure bench sweeps a
/// (workload x budget x repetition) grid. Each repetition is a pure function
/// of its own derived seed, so these grids parallelize embarrassingly
/// *without* sacrificing bit-identical reproducibility: work is scheduled
/// dynamically, results land in pre-assigned slots, and reductions happen in
/// a fixed order on the coordinating thread.

/// Fixed-size worker pool with per-worker work-stealing deques.
///
/// Each worker owns a Chase–Lev deque: the owner pushes and pops at the
/// bottom lock-free, idle workers steal from the top with a single CAS.
/// External submissions land in a mutex-guarded injection queue from which
/// workers pull *batches* into their own deque, so the per-task cost on the
/// execution side is the lock-free deque, not the lock — and once tasks are
/// distributed, imbalance (one scenario's cells finishing early while
/// another's drag) is healed by stealing instead of idling. This is what
/// lets several concurrent campaigns share one pool as a single thread
/// budget (`cloudrepro suite`).
///
/// Task execution order is unspecified (own-deque LIFO, steals FIFO);
/// callers that need determinism write results into pre-assigned slots,
/// exactly as with the old FIFO queue.
///
/// Tasks must not let exceptions escape (an escaping exception terminates
/// the process, as with any detached thread); callers that need error
/// propagation capture an std::exception_ptr inside the task — see
/// `run_campaign` — or use `parallel_for_each`, which does this for them.
class ThreadPool {
 public:
  /// Spawns `resolve_thread_count(threads)` workers.
  explicit ThreadPool(int threads = 0);

  /// Drains nothing: joins after the queues empty naturally or stop is
  /// observed; pending tasks submitted before destruction still run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Sized off deques_, not workers_: the deque table is complete before
  /// the first worker thread starts, while workers_ is still growing as
  /// early workers begin stealing (reading workers_.size() there is a data
  /// race with the constructor's emplace_back).
  int thread_count() const noexcept { return static_cast<int>(deques_.size()); }

  /// Enqueues a task for execution by some worker. From a worker thread of
  /// this pool the task goes straight onto that worker's own deque
  /// (lock-free); from any other thread it goes through the injection
  /// queue.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Maps the user-facing `threads` knob: 0 = hardware concurrency
  /// (at least 1), otherwise the requested count.
  static int resolve_thread_count(int requested) noexcept;

  /// Index of the calling thread within this pool: [0, thread_count()) for
  /// this pool's workers, -1 for every other thread. Stable for the life of
  /// the pool, which is what lets per-worker SPSC structures (the campaign
  /// journal rings) key on it.
  int current_worker_index() const noexcept;

 private:
  using Task = std::function<void()>;

  /// Chase–Lev work-stealing deque over heap-allocated task pointers.
  /// Fixed capacity: `push_bottom` reports false when full and the caller
  /// leaves the task in the injection queue instead (no dynamic growth, so
  /// no reclamation problem). Orderings follow Le et al., "Correct and
  /// Efficient Work-Stealing for Weak Memory Models", with the standalone
  /// fences strengthened to seq_cst operations on `top_`/`bottom_` — TSan
  /// does not model fences, and these paths are under TSan in CI.
  class Deque {
   public:
    explicit Deque(std::size_t capacity);

    bool push_bottom(Task* task) noexcept;  ///< Owner only.
    Task* pop_bottom() noexcept;            ///< Owner only.
    Task* steal_top() noexcept;             ///< Any thief.

   private:
    std::vector<std::atomic<Task*>> slots_;
    std::size_t mask_;
    alignas(64) std::atomic<std::int64_t> top_{0};
    alignas(64) std::atomic<std::int64_t> bottom_{0};
  };

  void worker_loop(int self);
  /// Own deque, then an injection-queue batch, then stealing round-robin
  /// from the other workers. Null when nothing is currently available.
  Task* try_acquire(int self);
  void enqueue(Task* task);
  void run_task(Task* task) noexcept;
  void notify_if_sleepers();

  std::vector<std::unique_ptr<Deque>> deques_;  ///< One per worker.
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Task*> inject_;          ///< External submissions; guarded by mu_.
  bool stopping_ = false;             ///< Guarded by mu_.
  std::atomic<int> sleepers_{0};      ///< Workers blocked on work_cv_.
  /// Tasks submitted but not yet picked up by a worker (anywhere: injection
  /// queue or a deque). The sleep predicate: > 0 means an idle worker can
  /// make progress.
  std::atomic<std::size_t> unstarted_{0};
  /// Tasks submitted but not yet finished executing; wait_idle blocks on 0.
  std::atomic<std::size_t> unfinished_{0};
};

/// Runs `body(i)` for every i in [0, count) across up to
/// `resolve_thread_count(threads)` threads with dynamic (atomic-counter)
/// scheduling. With an effective thread count of 1 the loop runs inline on
/// the calling thread — the serial reference path.
///
/// Indices are claimed in an unspecified interleaving, so `body` must not
/// depend on cross-index execution order; writing index i's result into a
/// pre-sized slot keeps the overall computation deterministic. The first
/// exception thrown by any `body` invocation stops further index claims and
/// is rethrown on the calling thread after all workers join.
void parallel_for_each(int threads, std::size_t count,
                       const std::function<void(std::size_t)>& body);

}  // namespace cloudrepro::runtime
