#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cloudrepro::runtime {

/// Deterministic parallel execution runtime.
///
/// The paper's prescription is *more repetitions* — CONFIRM shows that 70+
/// may be needed for 1% error bounds — and every figure bench sweeps a
/// (workload x budget x repetition) grid. Each repetition is a pure function
/// of its own derived seed, so these grids parallelize embarrassingly
/// *without* sacrificing bit-identical reproducibility: work is scheduled
/// dynamically, results land in pre-assigned slots, and reductions happen in
/// a fixed order on the coordinating thread.

/// Fixed-size worker pool with a FIFO task queue.
///
/// Tasks must not let exceptions escape (an escaping exception terminates
/// the process, as with any detached thread); callers that need error
/// propagation capture an std::exception_ptr inside the task — see
/// `run_campaign` — or use `parallel_for_each`, which does this for them.
class ThreadPool {
 public:
  /// Spawns `resolve_thread_count(threads)` workers.
  explicit ThreadPool(int threads = 0);

  /// Drains nothing: joins after the queue empties naturally or stop is
  /// observed; pending tasks submitted before destruction still run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for execution by some worker.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  /// Maps the user-facing `threads` knob: 0 = hardware concurrency
  /// (at least 1), otherwise the requested count.
  static int resolve_thread_count(int requested) noexcept;

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `body(i)` for every i in [0, count) across up to
/// `resolve_thread_count(threads)` threads with dynamic (atomic-counter)
/// scheduling. With an effective thread count of 1 the loop runs inline on
/// the calling thread — the serial reference path.
///
/// Indices are claimed in an unspecified interleaving, so `body` must not
/// depend on cross-index execution order; writing index i's result into a
/// pre-sized slot keeps the overall computation deterministic. The first
/// exception thrown by any `body` invocation stops further index claims and
/// is rethrown on the calling thread after all workers join.
void parallel_for_each(int threads, std::size_t count,
                       const std::function<void(std::size_t)>& body);

}  // namespace cloudrepro::runtime
