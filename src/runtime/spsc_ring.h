#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace cloudrepro::runtime {

/// Fixed-capacity single-producer/single-consumer ring buffer.
///
/// The campaign's journal handoff is the motivating user: worker threads
/// finish measurements far faster than the single journal writer can fsync
/// them, and the old mutex+condvar deque made every completion pay a lock.
/// Here the producer's fast path is one relaxed load, one acquire load, a
/// slot move, and one release store — no locks, no allocation (slots are
/// preallocated; moving a `std::string` into a slot reuses its buffer).
///
/// Contract: exactly one thread calls `try_push` and exactly one thread
/// calls `try_pop` over the ring's lifetime (the threads may differ).
/// `try_push` returning false is the backpressure signal — the producer
/// must retry (bounded: the consumer always drains), not drop.
///
/// Memory ordering is the classic Lamport queue with acquire/release
/// pairs: the producer's release store of `tail_` publishes the slot write
/// to the consumer's acquire load, and symmetrically for `head_` on reuse.
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer only. Moves `value` in and returns true; returns false (value
  /// untouched) when the ring is full.
  bool try_push(T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head == slots_.size()) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Moves the oldest element into `out` and returns true;
  /// false when empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Occupancy snapshot; exact when called by either endpoint, approximate
  /// (but never torn) from anywhere else. Used for the queue-depth gauge.
  std::size_t size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  bool empty() const noexcept { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Producer and consumer cursors on separate cache lines so the
  /// producer's stores never invalidate the consumer's line and vice versa.
  alignas(64) std::atomic<std::size_t> head_{0};  ///< Next slot to pop.
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< Next slot to fill.
};

}  // namespace cloudrepro::runtime
