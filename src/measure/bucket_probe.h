#pragma once

#include "cloud/instances.h"
#include "stats/rng.h"

namespace cloudrepro::measure {

/// Result of reverse-engineering a provider's token-bucket parameters
/// (Section 3.3 / Figure 11): "for each VM type, we ran an iperf test
/// continuously until the achieved bandwidth dropped significantly and
/// stabilized at a lower value".
struct BucketProbeResult {
  bool bucket_detected = false;
  double time_to_empty_s = 0.0;     ///< Elapsed time until the throttle engaged.
  double high_rate_gbps = 0.0;      ///< Bandwidth while the budget lasted.
  double low_rate_gbps = 0.0;       ///< Stabilized bandwidth after depletion.
  double replenish_gbps = 0.0;      ///< Estimated token refill rate.
  double inferred_budget_gbit = 0.0;  ///< time_to_empty * (high - replenish).
};

struct BucketProbeOptions {
  double max_probe_s = 4.0 * 3600.0;  ///< Give up if no throttle appears.
  double sample_interval_s = 10.0;
  /// The throttle is declared once bandwidth stays below this fraction of
  /// the initial rate for `stabilize_samples` consecutive samples.
  double drop_fraction = 0.6;
  int stabilize_samples = 3;
  /// Rest period before the replenish-estimation probe.
  double rest_s = 300.0;
};

/// Identifies token-bucket parameters on a fresh VM of the given profile.
/// Detection is a pure black-box procedure over achieved bandwidth — it
/// works identically against real traces and against the simulator.
BucketProbeResult identify_token_bucket(const cloud::CloudProfile& profile,
                                        const BucketProbeOptions& options,
                                        stats::Rng& rng);

/// Variant probing an existing VM (consumes its budget).
BucketProbeResult identify_token_bucket(cloud::VmNetwork& vm,
                                        const BucketProbeOptions& options,
                                        stats::Rng& rng);

}  // namespace cloudrepro::measure
