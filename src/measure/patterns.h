#pragma once

#include <span>
#include <string>

namespace cloudrepro::measure {

/// Network access pattern of a probe (Section 3.1). The paper tests three
/// regimes because big-data workloads touch the network differently:
///  - full-speed: continuous transfer (long-running batch / streaming);
///  - 10-30: transfer 10 s, rest 30 s (short analytics queries);
///  - 5-30: transfer 5 s, rest 30 s (even shorter queries).
struct AccessPattern {
  std::string name;
  double burst_s = 0.0;  ///< Transfer window; 0 means continuous.
  double idle_s = 0.0;   ///< Rest window between bursts.

  bool continuous() const noexcept { return idle_s <= 0.0; }

  /// Fraction of wall-clock time spent transferring.
  double duty_cycle() const noexcept {
    if (continuous()) return 1.0;
    return burst_s / (burst_s + idle_s);
  }
};

/// The paper's three canonical patterns.
AccessPattern full_speed();
AccessPattern pattern_10_30();
AccessPattern pattern_5_30();

/// All three, in the order the paper lists them.
std::span<const AccessPattern> canonical_patterns();

}  // namespace cloudrepro::measure
