#pragma once

#include "cloud/instances.h"
#include "measure/patterns.h"
#include "measure/trace.h"
#include "stats/rng.h"

namespace cloudrepro::measure {

/// Configuration of an iperf-like bandwidth probe between a pair of VMs.
struct BandwidthProbeOptions {
  double duration_s = 7.0 * 24.0 * 3600.0;  ///< The paper probes for a week.
  double sample_interval_s = 10.0;          ///< Summaries every 10 seconds.
  double write_bytes = 128.0 * 1024.0;      ///< iperf's default write() size.
};

/// Runs an iperf-like probe over the given cloud's network between a fresh
/// pair of VMs, under the given access pattern, and returns the trace.
///
/// Sampling follows the paper's collectors: for `full-speed` a sample is
/// emitted every `sample_interval_s`; for on/off patterns one sample is
/// emitted per burst (the mean bandwidth achieved during the transfer
/// window), since idle time carries no bandwidth observation.
///
/// Retransmissions per window are derived from the incarnation's
/// virtual-NIC loss model at the probe's write() size — the same model the
/// packet-level path uses, applied statistically so that week-long traces
/// remain tractable (see DESIGN.md, fluid-vs-packet ablation).
Trace run_bandwidth_probe(const cloud::CloudProfile& profile,
                          const AccessPattern& pattern,
                          const BandwidthProbeOptions& options, stats::Rng& rng);

/// Variant probing an already-created VM network (e.g. to continue on a
/// "used" VM whose token bucket is partially drained).
Trace run_bandwidth_probe(cloud::VmNetwork& vm, const AccessPattern& pattern,
                          const BandwidthProbeOptions& options, stats::Rng& rng,
                          const std::string& cloud_name = "",
                          const std::string& instance_name = "");

}  // namespace cloudrepro::measure
