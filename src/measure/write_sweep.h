#pragma once

#include <span>
#include <vector>

#include "cloud/instances.h"
#include "measure/rtt.h"
#include "stats/rng.h"

namespace cloudrepro::measure {

/// One row of the write()-size sweep of Figure 12: how the size of the
/// application's socket writes changes observed latency, bandwidth, and
/// retransmissions on each cloud — the effect that makes observed behaviour
/// (and thus repeatability) "highly application dependent" (F5.1).
struct WriteSweepPoint {
  double write_bytes = 0.0;
  double segment_bytes = 0.0;  ///< Resulting "packet" size at the virtual NIC.
  double mean_rtt_ms = 0.0;
  double p99_rtt_ms = 0.0;
  double bandwidth_gbps = 0.0;
  double retransmissions = 0.0;       ///< Per probe stream.
  double retransmission_rate = 0.0;
};

struct WriteSweepOptions {
  double stream_duration_s = 3.0;
  /// Default write() sizes: 1K .. 256K, including the 9K jumbo-MTU point
  /// and iperf's 128K default that the paper singles out.
  std::vector<double> write_sizes = {1024.0,  2048.0,   4096.0,   9000.0,
                                     16384.0, 32768.0,  65536.0,  131072.0,
                                     262144.0};
};

/// Sweeps write() sizes on a fresh VM of the profile.
std::vector<WriteSweepPoint> run_write_sweep(const cloud::CloudProfile& profile,
                                             const WriteSweepOptions& options,
                                             stats::Rng& rng);

}  // namespace cloudrepro::measure
