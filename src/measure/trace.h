#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/descriptive.h"

namespace cloudrepro::measure {

/// One performability record, summarized over a sampling window — the same
/// observables the paper's collectors emit every 10 seconds: achieved
/// bandwidth, retransmissions, and the volume moved.
struct BandwidthSample {
  double t = 0.0;                ///< Window end time (s since probe start).
  double bandwidth_gbps = 0.0;   ///< Mean achieved bandwidth in the window.
  double transferred_gbit = 0.0; ///< Volume moved in the window.
  double retransmissions = 0.0;  ///< TCP retransmissions in the window.
};

/// A measurement trace: the output of one probe run.
struct Trace {
  std::string cloud;
  std::string instance_type;
  std::string pattern;
  std::vector<BandwidthSample> samples;

  std::vector<double> bandwidths() const;
  std::vector<double> retransmissions() const;

  /// Total Gbit moved across the trace (Figure 10's cumulative totals).
  double total_gbit() const noexcept;

  /// Cumulative transferred volume per sample, in terabytes (Figure 10's
  /// vertical axis).
  std::vector<double> cumulative_terabytes() const;

  stats::Summary bandwidth_summary() const;
  stats::BoxStats bandwidth_box() const;

  /// Writes the trace as CSV (`t,bandwidth_gbps,transferred_gbit,retrans`)
  /// with a header — the repository release format [57].
  void write_csv(std::ostream& os) const;
};

}  // namespace cloudrepro::measure
