#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "cloud/instances.h"
#include "measure/iperf.h"
#include "measure/trace.h"
#include "stats/rng.h"

namespace cloudrepro::measure {

/// Release-artifact generator: the paper publishes its raw traces in a
/// public repository [57]; this module produces the equivalent artifact for
/// the simulated clouds — one CSV per (cloud, instance, pattern) cell plus a
/// MANIFEST.csv describing each file. The F5.5 guidance is to publish
/// exactly this alongside results.

struct DatasetCell {
  cloud::Provider provider;
  std::string instance_name;
  AccessPattern pattern;
};

struct DatasetOptions {
  std::vector<DatasetCell> cells;
  double duration_s = 24.0 * 3600.0;
  double sample_interval_s = 10.0;
  std::uint64_t seed = 1;
};

/// A default campaign: the paper's three starred configurations, each under
/// the three canonical access patterns (9 cells).
DatasetOptions default_campaign();

struct DatasetFile {
  std::filesystem::path path;
  std::string cloud;
  std::string instance;
  std::string pattern;
  std::size_t samples = 0;
  double total_gbit = 0.0;
  double median_gbps = 0.0;
};

/// Runs the campaign and writes one CSV per cell plus MANIFEST.csv into
/// `directory` (created if absent). Returns the per-file metadata.
std::vector<DatasetFile> generate_dataset(const std::filesystem::path& directory,
                                          const DatasetOptions& options);

/// Reads back a trace CSV written by `Trace::write_csv` (round-trip support
/// so published artifacts can be re-analyzed with the same tooling).
Trace read_trace_csv(const std::filesystem::path& path);

}  // namespace cloudrepro::measure
