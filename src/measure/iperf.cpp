#include "measure/iperf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simnet/fluid_network.h"
#include "simnet/units.h"

namespace cloudrepro::measure {

namespace {

/// Statistical retransmission draw for a window that moved `gbit` of data:
/// expected losses are segments * loss_probability at this write size, with
/// Poisson-scale noise (normal approximation; windows carry thousands of
/// segments).
double draw_retransmissions(const simnet::VnicConfig& vnic, double write_bytes,
                            double gbit, stats::Rng& rng) {
  if (gbit <= 0.0) return 0.0;
  const double segment = vnic.segment_bytes(write_bytes);
  const double segments = simnet::gbit_to_bytes(gbit) / segment;
  const double expected = segments * vnic.loss_probability(segment);
  if (expected <= 0.0) return 0.0;
  return std::max(0.0, rng.normal(expected, std::sqrt(expected)));
}

}  // namespace

Trace run_bandwidth_probe(const cloud::CloudProfile& profile,
                          const AccessPattern& pattern,
                          const BandwidthProbeOptions& options, stats::Rng& rng) {
  auto vm = profile.create_vm(rng);
  return run_bandwidth_probe(vm, pattern, options, rng,
                             cloud::to_string(profile.type().provider),
                             profile.type().name);
}

Trace run_bandwidth_probe(cloud::VmNetwork& vm, const AccessPattern& pattern,
                          const BandwidthProbeOptions& options, stats::Rng& rng,
                          const std::string& cloud_name,
                          const std::string& instance_name) {
  if (!vm.egress) throw std::invalid_argument{"run_bandwidth_probe: VM has no egress policy"};
  if (options.duration_s <= 0.0 || options.sample_interval_s <= 0.0) {
    throw std::invalid_argument{"run_bandwidth_probe: invalid duration or interval"};
  }

  simnet::FluidNetwork net;
  const auto src = net.add_node(vm.egress->clone(), vm.line_rate_gbps);
  // The receiver is unshaped; its ingress line rate is the physical cap.
  const auto dst =
      net.add_node(std::make_unique<simnet::FixedRateQos>(10.0 * vm.line_rate_gbps),
                   vm.line_rate_gbps);

  Trace trace;
  trace.cloud = cloud_name;
  trace.instance_type = instance_name;
  trace.pattern = pattern.name;

  double t = 0.0;
  while (t < options.duration_s - 1e-9) {
    const double window =
        pattern.continuous() ? options.sample_interval_s : pattern.burst_s;
    const double burst_end = std::min(t + window, options.duration_s);

    const auto flow = net.start_flow(src, dst, simnet::kInfiniteBytes);
    net.run_until(burst_end);
    const double moved = net.flow(flow).transferred_gbit;
    net.stop_flow(flow);

    BandwidthSample sample;
    sample.t = burst_end;
    sample.transferred_gbit = moved;
    sample.bandwidth_gbps = moved / (burst_end - t);
    sample.retransmissions =
        draw_retransmissions(vm.vnic, options.write_bytes, moved, rng);
    trace.samples.push_back(sample);
    t = burst_end;

    if (!pattern.continuous() && t < options.duration_s - 1e-9) {
      const double idle_end = std::min(t + pattern.idle_s, options.duration_s);
      net.run_until(idle_end);
      t = idle_end;
    }
  }

  // Persist the shaper state back into the caller's VM so subsequent probes
  // see the drained/replenished bucket (Figure 19's "used VM" scenario).
  vm.egress = net.node_qos(src).clone();
  return trace;
}

}  // namespace cloudrepro::measure
