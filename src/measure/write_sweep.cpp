#include "measure/write_sweep.h"

namespace cloudrepro::measure {

std::vector<WriteSweepPoint> run_write_sweep(const cloud::CloudProfile& profile,
                                             const WriteSweepOptions& options,
                                             stats::Rng& rng) {
  std::vector<WriteSweepPoint> points;
  points.reserve(options.write_sizes.size());

  for (const double write : options.write_sizes) {
    // A fresh VM per point: the sweep measures the NIC path, not the
    // token-bucket drain (F5.2's "reset to known conditions").
    auto vm = profile.create_vm(rng);

    RttProbeOptions probe;
    probe.duration_s = options.stream_duration_s;
    probe.write_bytes = write;
    const auto result = run_rtt_probe(vm, probe, rng);

    WriteSweepPoint p;
    p.write_bytes = write;
    p.segment_bytes = vm.vnic.segment_bytes(write);
    p.mean_rtt_ms = result.analysis.mean_rtt_ms;
    p.p99_rtt_ms = result.analysis.p99_rtt_ms;
    p.bandwidth_gbps = result.analysis.mean_bandwidth_gbps;
    p.retransmissions = static_cast<double>(result.analysis.retransmissions);
    p.retransmission_rate = result.analysis.retransmission_rate;
    points.push_back(p);
  }
  return points;
}

}  // namespace cloudrepro::measure
