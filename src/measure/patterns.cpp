#include "measure/patterns.h"

#include <vector>

namespace cloudrepro::measure {

AccessPattern full_speed() { return AccessPattern{"full-speed", 10.0, 0.0}; }
AccessPattern pattern_10_30() { return AccessPattern{"10-30", 10.0, 30.0}; }
AccessPattern pattern_5_30() { return AccessPattern{"5-30", 5.0, 30.0}; }

std::span<const AccessPattern> canonical_patterns() {
  static const std::vector<AccessPattern> kPatterns = {
      full_speed(), pattern_10_30(), pattern_5_30()};
  return kPatterns;
}

}  // namespace cloudrepro::measure
