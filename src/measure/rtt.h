#pragma once

#include <vector>

#include "cloud/instances.h"
#include "simnet/packet_path.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace cloudrepro::measure {

/// Offline summary of a packet capture, mirroring the paper's tcpdump +
/// wireshark analysis of Section 3.2: "compares the time between when a TCP
/// segment is sent to the (virtual) device and when it is acknowledged".
struct RttAnalysis {
  std::size_t packet_count = 0;
  std::size_t retransmissions = 0;
  double retransmission_rate = 0.0;
  double mean_rtt_ms = 0.0;
  double median_rtt_ms = 0.0;
  double p99_rtt_ms = 0.0;
  double max_rtt_ms = 0.0;
  double mean_bandwidth_gbps = 0.0;
};

/// Options for a latency probe: a 10-second iperf stream captured at packet
/// granularity.
struct RttProbeOptions {
  double duration_s = 10.0;
  double write_bytes = 128.0 * 1024.0;
};

/// Result of a latency probe: the raw capture plus its offline analysis.
struct RttProbeResult {
  simnet::LatencyTrace capture;
  RttAnalysis analysis;
};

/// Computes the offline analysis of a capture.
RttAnalysis analyze_capture(const simnet::LatencyTrace& capture);

/// Runs a 10-second TCP stream between a fresh VM pair on the given cloud
/// and captures every packet (Figures 7 and 8).
RttProbeResult run_rtt_probe(const cloud::CloudProfile& profile,
                             const RttProbeOptions& options, stats::Rng& rng);

/// Variant against an existing VM (e.g. one whose token bucket has already
/// been drained, to observe the throttled latency regime of Figure 7,
/// bottom).
RttProbeResult run_rtt_probe(cloud::VmNetwork& vm, const RttProbeOptions& options,
                             stats::Rng& rng);

}  // namespace cloudrepro::measure
