#pragma once

#include <cstdint>
#include <vector>

#include "simnet/packet_path.h"
#include "simnet/qos.h"
#include "stats/rng.h"

namespace cloudrepro::measure {

/// The paper's latency methodology, reproduced end-to-end: "we run
/// 10-second streams of iperf tests, capturing all packet headers with
/// tcpdump. We perform an offline analysis of the packet dumps using
/// wireshark, which compares the time between when a TCP segment is sent to
/// the (virtual) device and when it is acknowledged."
///
/// `capture_stream` produces the tcpdump-equivalent: a time-ordered list of
/// wire-level header records (data segments with byte sequence numbers, and
/// cumulative ACKs). `wireshark_analysis` is the offline pass: it matches
/// ACKs back to segments, measures send-to-ack times, detects
/// retransmissions as duplicate sequence numbers, and applies Karn's rule
/// (retransmitted segments yield no RTT sample).

struct CapturedPacket {
  double timestamp_s = 0.0;
  bool is_ack = false;
  std::uint64_t seq = 0;      ///< Data: first byte's sequence number.
  std::uint32_t length = 0;   ///< Data: segment payload length.
  std::uint64_t ack = 0;      ///< ACK: cumulative acknowledgement number.
};

/// A captured packet trace (one direction pair of a single TCP stream).
struct PacketCapture {
  std::vector<CapturedPacket> packets;  ///< Time-ordered.
  double duration_s = 0.0;
};

/// Simulates an iperf-style stream through the virtual NIC and captures
/// every header. Lost first transmissions appear as duplicate-sequence
/// retransmissions after a retransmission timeout, exactly as tcpdump would
/// show them.
PacketCapture capture_stream(simnet::QosPolicy& qos, const simnet::VnicConfig& vnic,
                             double duration_s, double write_bytes,
                             stats::Rng& rng);

/// The offline "wireshark" pass over a capture.
struct WiresharkAnalysis {
  std::size_t data_packets = 0;
  std::size_t ack_packets = 0;
  std::size_t retransmissions = 0;   ///< Duplicate-sequence data packets.
  std::vector<double> rtts_s;        ///< Send-to-ack times (Karn-filtered).
  double mean_rtt_ms = 0.0;
  double median_rtt_ms = 0.0;
  double p99_rtt_ms = 0.0;
  /// Goodput per interval, from the cumulative-ACK front (Gbps).
  std::vector<double> goodput_gbps;
  double goodput_interval_s = 1.0;
};

WiresharkAnalysis wireshark_analysis(const PacketCapture& capture,
                                     double goodput_interval_s = 1.0);

}  // namespace cloudrepro::measure
