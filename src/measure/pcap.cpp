#include "measure/pcap.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "simnet/units.h"
#include "stats/descriptive.h"

namespace cloudrepro::measure {

PacketCapture capture_stream(simnet::QosPolicy& qos, const simnet::VnicConfig& vnic,
                             double duration_s, double write_bytes,
                             stats::Rng& rng) {
  if (duration_s <= 0.0 || write_bytes <= 0.0) {
    throw std::invalid_argument{"capture_stream: duration and write size must be positive"};
  }

  PacketCapture capture;
  capture.duration_s = duration_s;

  const double segment = vnic.segment_bytes(write_bytes);
  const auto segment_len = static_cast<std::uint32_t>(segment);
  const double loss_p = vnic.loss_probability(segment);

  const double device_occupancy =
      std::min(static_cast<double>(vnic.queue_descriptors),
               std::max(1.0, vnic.queue_byte_capacity / segment));
  const double qdisc_occupancy =
      std::min(static_cast<double>(vnic.qdisc_packets),
               std::max(1.0, vnic.queue_byte_capacity / segment));

  double t = 0.0;
  std::uint64_t next_seq = 1;  // Byte 0 is the SYN, per convention.

  while (t < duration_s) {
    const double rate_gbps = qos.allowed_rate();
    const double rate_bytes = simnet::gbit_to_bytes(rate_gbps);
    const double service_s = segment / rate_bytes;

    const bool throttled = rate_gbps < 0.5 * vnic.app_offered_gbps;
    const double occupancy = throttled ? qdisc_occupancy : device_occupancy;
    const double fill = throttled ? rng.uniform(0.70, 1.0) : rng.uniform(0.10, 1.0);
    const double queue_delay_s = occupancy * fill * segment / rate_bytes;
    const double jitter = std::exp(rng.normal(0.0, vnic.rtt_jitter_sigma));
    const double path_rtt = vnic.base_rtt_s * jitter + queue_delay_s + service_s;

    const std::uint64_t seq = next_seq;
    next_seq += segment_len;

    capture.packets.push_back(CapturedPacket{t, false, seq, segment_len, 0});

    double ack_time;
    double dt;
    if (rng.bernoulli(loss_p)) {
      // First transmission lost: tcpdump shows the original, then the
      // duplicate-sequence retransmission after the RTO, then the ACK.
      const double rto = rng.exponential(1.0 / vnic.retransmit_penalty_mean_s);
      const double retransmit_at = t + rto;
      capture.packets.push_back(
          CapturedPacket{retransmit_at, false, seq, segment_len, 0});
      ack_time = retransmit_at + path_rtt;
      // The sender keeps pipelining new data while the retransmission is
      // pending; only the wire time of both copies is charged.
      dt = 2.0 * segment / rate_bytes + vnic.per_segment_overhead_s;
    } else {
      ack_time = t + path_rtt;
      dt = segment / rate_bytes + vnic.per_segment_overhead_s;
    }
    capture.packets.push_back(
        CapturedPacket{ack_time, true, 0, 0, seq + segment_len});

    qos.advance(dt, rate_gbps);
    t += dt;
  }

  std::stable_sort(capture.packets.begin(), capture.packets.end(),
                   [](const CapturedPacket& a, const CapturedPacket& b) {
                     return a.timestamp_s < b.timestamp_s;
                   });
  return capture;
}

WiresharkAnalysis wireshark_analysis(const PacketCapture& capture,
                                     double goodput_interval_s) {
  if (goodput_interval_s <= 0.0) {
    throw std::invalid_argument{"wireshark_analysis: interval must be positive"};
  }
  WiresharkAnalysis a;
  a.goodput_interval_s = goodput_interval_s;

  struct SegmentState {
    double first_sent = 0.0;
    std::uint32_t length = 0;
    bool retransmitted = false;
  };
  std::map<std::uint64_t, SegmentState> outstanding;

  std::uint64_t ack_front = 0;
  double interval_start = 0.0;
  std::uint64_t interval_front_start = 0;

  const auto flush_intervals_to = [&](double now) {
    while (now - interval_start >= goodput_interval_s) {
      a.goodput_gbps.push_back(
          simnet::bytes_to_gbit(static_cast<double>(ack_front - interval_front_start)) /
          goodput_interval_s);
      interval_front_start = ack_front;
      interval_start += goodput_interval_s;
    }
  };

  for (const auto& pkt : capture.packets) {
    flush_intervals_to(pkt.timestamp_s);
    if (!pkt.is_ack) {
      ++a.data_packets;
      // Key by the segment's end sequence number, which the matching ACK
      // will carry.
      auto [it, inserted] = outstanding.try_emplace(
          pkt.seq + pkt.length, SegmentState{pkt.timestamp_s, pkt.length, false});
      if (!inserted) {
        // Duplicate sequence number: a retransmission.
        ++a.retransmissions;
        it->second.retransmitted = true;
      }
    } else {
      ++a.ack_packets;
      // Per-segment ACK matching (wireshark's tcp.analysis.ack_rtt): the
      // ACK acknowledging bytes [seq, seq+len) pairs with the data segment
      // whose end equals the ACK number.
      const auto it = outstanding.find(pkt.ack);
      if (it != outstanding.end()) {
        // Karn's algorithm: no RTT sample from retransmitted segments.
        if (!it->second.retransmitted) {
          a.rtts_s.push_back(pkt.timestamp_s - it->second.first_sent);
        }
        outstanding.erase(it);
      }
      ack_front = std::max(ack_front, pkt.ack);
    }
  }
  flush_intervals_to(capture.duration_s);

  if (!a.rtts_s.empty()) {
    const auto summary = stats::summarize(a.rtts_s);
    a.mean_rtt_ms = summary.mean * 1e3;
    a.median_rtt_ms = summary.median * 1e3;
    a.p99_rtt_ms = stats::quantile(a.rtts_s, 0.99) * 1e3;
  }
  return a;
}

}  // namespace cloudrepro::measure
