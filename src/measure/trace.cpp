#include "measure/trace.h"

#include <ostream>

#include "simnet/units.h"

namespace cloudrepro::measure {

std::vector<double> Trace::bandwidths() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.bandwidth_gbps);
  return out;
}

std::vector<double> Trace::retransmissions() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.retransmissions);
  return out;
}

double Trace::total_gbit() const noexcept {
  double total = 0.0;
  for (const auto& s : samples) total += s.transferred_gbit;
  return total;
}

std::vector<double> Trace::cumulative_terabytes() const {
  std::vector<double> out;
  out.reserve(samples.size());
  double total = 0.0;
  for (const auto& s : samples) {
    total += s.transferred_gbit;
    out.push_back(simnet::gbit_to_terabytes(total));
  }
  return out;
}

stats::Summary Trace::bandwidth_summary() const {
  return stats::summarize(bandwidths());
}

stats::BoxStats Trace::bandwidth_box() const {
  return stats::box_stats(bandwidths());
}

void Trace::write_csv(std::ostream& os) const {
  os << "t_s,bandwidth_gbps,transferred_gbit,retransmissions\n";
  for (const auto& s : samples) {
    os << s.t << ',' << s.bandwidth_gbps << ',' << s.transferred_gbit << ','
       << s.retransmissions << '\n';
  }
}

}  // namespace cloudrepro::measure
