#include "measure/bucket_probe.h"

#include <algorithm>
#include <vector>

#include "measure/iperf.h"
#include "measure/patterns.h"
#include "stats/descriptive.h"

namespace cloudrepro::measure {

namespace {

/// Runs a continuous probe until the bandwidth drops below
/// `drop_fraction` of the initial level for `stabilize_samples` consecutive
/// samples, or until `max_probe_s` elapses. Returns the sample series and
/// the index at which the throttle engaged (or npos).
struct DrainObservation {
  std::vector<double> bandwidths;
  std::size_t throttle_index = static_cast<std::size_t>(-1);
  double sample_interval_s = 10.0;

  bool throttled() const noexcept {
    return throttle_index != static_cast<std::size_t>(-1);
  }
};

DrainObservation drain_until_throttled(cloud::VmNetwork& vm,
                                       const BucketProbeOptions& options,
                                       stats::Rng& rng) {
  DrainObservation obs;
  obs.sample_interval_s = options.sample_interval_s;

  BandwidthProbeOptions probe;
  probe.sample_interval_s = options.sample_interval_s;

  // Probe in one-minute slices so we can stop as soon as the drop is seen.
  const double slice_s = std::max(6.0 * options.sample_interval_s, 60.0);
  double elapsed = 0.0;
  double initial_rate = 0.0;
  int consecutive_low = 0;

  while (elapsed < options.max_probe_s) {
    probe.duration_s = std::min(slice_s, options.max_probe_s - elapsed);
    const Trace t = run_bandwidth_probe(vm, full_speed(), probe, rng);
    for (const auto& s : t.samples) {
      obs.bandwidths.push_back(s.bandwidth_gbps);
      if (obs.bandwidths.size() == 3 && initial_rate == 0.0) {
        initial_rate = stats::median(obs.bandwidths);
      }
      if (initial_rate > 0.0 && s.bandwidth_gbps < options.drop_fraction * initial_rate) {
        ++consecutive_low;
        if (consecutive_low >= options.stabilize_samples) {
          obs.throttle_index = obs.bandwidths.size() -
                               static_cast<std::size_t>(options.stabilize_samples);
          return obs;
        }
      } else {
        consecutive_low = 0;
      }
    }
    elapsed += probe.duration_s;
  }
  return obs;
}

}  // namespace

BucketProbeResult identify_token_bucket(const cloud::CloudProfile& profile,
                                        const BucketProbeOptions& options,
                                        stats::Rng& rng) {
  auto vm = profile.create_vm(rng);
  return identify_token_bucket(vm, options, rng);
}

BucketProbeResult identify_token_bucket(cloud::VmNetwork& vm,
                                        const BucketProbeOptions& options,
                                        stats::Rng& rng) {
  BucketProbeResult result;

  const auto obs = drain_until_throttled(vm, options, rng);
  if (obs.bandwidths.empty()) return result;

  if (!obs.throttled()) {
    // No QoS throttle within the probe horizon: report the steady rate.
    result.bucket_detected = false;
    result.high_rate_gbps = stats::median(obs.bandwidths);
    result.low_rate_gbps = result.high_rate_gbps;
    return result;
  }

  result.bucket_detected = true;
  result.time_to_empty_s =
      static_cast<double>(obs.throttle_index) * obs.sample_interval_s;

  const std::span<const double> all{obs.bandwidths};
  result.high_rate_gbps = stats::median(all.subspan(0, obs.throttle_index));

  // Keep draining briefly to observe the stabilized low rate.
  BandwidthProbeOptions tail_probe;
  tail_probe.duration_s = 120.0;
  tail_probe.sample_interval_s = options.sample_interval_s;
  const Trace tail = run_bandwidth_probe(vm, full_speed(), tail_probe, rng);
  result.low_rate_gbps = stats::median(tail.bandwidths());

  // Replenish estimation: rest, then drain again. During the rest the
  // bucket gains replenish * rest_s tokens; the second burst spends them at
  // (high - replenish), so replenish = high * t2 / (rest + t2).
  cloud::VmNetwork rest_net{vm.egress->clone(), vm.vnic, vm.line_rate_gbps, vm.bucket};
  rest_net.egress->advance(options.rest_s, 0.0);
  BucketProbeOptions second = options;
  second.max_probe_s = std::min(options.max_probe_s, 4.0 * options.rest_s + 600.0);
  const auto second_obs = drain_until_throttled(rest_net, second, rng);
  if (second_obs.throttled()) {
    const double t2 =
        static_cast<double>(second_obs.throttle_index) * second_obs.sample_interval_s;
    result.replenish_gbps =
        result.high_rate_gbps * t2 / (options.rest_s + t2);
  } else {
    result.replenish_gbps = result.low_rate_gbps;  // Fallback heuristic.
  }

  result.inferred_budget_gbit =
      result.time_to_empty_s * (result.high_rate_gbps - result.replenish_gbps);
  return result;
}

}  // namespace cloudrepro::measure
