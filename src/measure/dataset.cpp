#include "measure/dataset.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "stats/descriptive.h"

namespace cloudrepro::measure {

namespace {

std::string sanitize(std::string s) {
  for (auto& c : s) {
    if (c == ' ' || c == '/' || c == '.') c = '_';
  }
  return s;
}

}  // namespace

DatasetOptions default_campaign() {
  DatasetOptions options;
  for (const auto& pattern : canonical_patterns()) {
    options.cells.push_back({cloud::Provider::kAmazonEc2, "c5.xlarge", pattern});
    options.cells.push_back({cloud::Provider::kGoogleCloud, "8-core", pattern});
    options.cells.push_back({cloud::Provider::kHpcCloud, "8-core", pattern});
  }
  return options;
}

std::vector<DatasetFile> generate_dataset(const std::filesystem::path& directory,
                                          const DatasetOptions& options) {
  if (options.cells.empty()) {
    throw std::invalid_argument{"generate_dataset: no cells in the campaign"};
  }
  std::filesystem::create_directories(directory);

  stats::Rng rng{options.seed};
  std::vector<DatasetFile> files;

  for (const auto& cell : options.cells) {
    cloud::CloudProfile profile{cloud::find_instance(cell.provider, cell.instance_name)};
    BandwidthProbeOptions probe;
    probe.duration_s = options.duration_s;
    probe.sample_interval_s = options.sample_interval_s;
    const auto trace = run_bandwidth_probe(profile, cell.pattern, probe, rng);

    DatasetFile file;
    file.cloud = cloud::to_string(cell.provider);
    file.instance = cell.instance_name;
    file.pattern = cell.pattern.name;
    file.samples = trace.samples.size();
    file.total_gbit = trace.total_gbit();
    file.median_gbps = trace.bandwidth_summary().median;
    file.path = directory / (sanitize(file.cloud) + "__" + sanitize(file.instance) +
                             "__" + sanitize(file.pattern) + ".csv");

    std::ofstream out{file.path};
    if (!out) throw std::runtime_error{"generate_dataset: cannot write " + file.path.string()};
    trace.write_csv(out);
    files.push_back(file);
  }

  std::ofstream manifest{directory / "MANIFEST.csv"};
  if (!manifest) throw std::runtime_error{"generate_dataset: cannot write MANIFEST.csv"};
  manifest << "file,cloud,instance,pattern,samples,total_gbit,median_gbps\n";
  for (const auto& f : files) {
    manifest << f.path.filename().string() << ',' << f.cloud << ',' << f.instance
             << ',' << f.pattern << ',' << f.samples << ',' << f.total_gbit << ','
             << f.median_gbps << '\n';
  }
  return files;
}

Trace read_trace_csv(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"read_trace_csv: cannot open " + path.string()};
  Trace trace;
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error{"read_trace_csv: empty file"};
  if (line != "t_s,bandwidth_gbps,transferred_gbit,retransmissions") {
    throw std::runtime_error{"read_trace_csv: unrecognized header: " + line};
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss{line};
    BandwidthSample sample;
    char comma;
    if (!(ss >> sample.t >> comma >> sample.bandwidth_gbps >> comma >>
          sample.transferred_gbit >> comma >> sample.retransmissions)) {
      throw std::runtime_error{"read_trace_csv: malformed row: " + line};
    }
    trace.samples.push_back(sample);
  }
  return trace;
}

}  // namespace cloudrepro::measure
