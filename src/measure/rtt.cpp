#include "measure/rtt.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace cloudrepro::measure {

RttAnalysis analyze_capture(const simnet::LatencyTrace& capture) {
  RttAnalysis a;
  a.packet_count = capture.segments_sent;
  a.retransmissions = capture.retransmissions;
  a.retransmission_rate = capture.retransmission_rate();
  const auto rtts = capture.rtts();
  if (!rtts.empty()) {
    const auto summary = stats::summarize(rtts);
    a.mean_rtt_ms = summary.mean * 1e3;
    a.median_rtt_ms = summary.median * 1e3;
    a.p99_rtt_ms = stats::quantile(rtts, 0.99) * 1e3;
    a.max_rtt_ms = summary.max * 1e3;
  }
  if (!capture.bandwidth_gbps.empty()) {
    a.mean_bandwidth_gbps = stats::mean(capture.bandwidth_gbps);
  }
  return a;
}

RttProbeResult run_rtt_probe(const cloud::CloudProfile& profile,
                             const RttProbeOptions& options, stats::Rng& rng) {
  auto vm = profile.create_vm(rng);
  return run_rtt_probe(vm, options, rng);
}

RttProbeResult run_rtt_probe(cloud::VmNetwork& vm, const RttProbeOptions& options,
                             stats::Rng& rng) {
  simnet::PacketPathConfig cfg;
  cfg.duration_s = options.duration_s;
  cfg.write_bytes = options.write_bytes;

  RttProbeResult result;
  result.capture = simnet::run_packet_stream(*vm.egress, vm.vnic, cfg, rng);
  result.analysis = analyze_capture(result.capture);
  return result;
}

}  // namespace cloudrepro::measure
