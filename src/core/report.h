#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace cloudrepro::core {

/// Fixed-width text table used by every bench binary to print the paper's
/// rows and series. Columns are right-aligned for numbers, left-aligned for
/// the first (label) column.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders header, separator, and rows to the stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision.
std::string fmt(double value, int precision = 2);

/// Formats a confidence interval as "est [lo, hi]".
std::string fmt_ci(const stats::ConfidenceInterval& ci, int precision = 2);

/// Formats a percentage.
std::string fmt_pct(double fraction, int precision = 1);

/// Renders a full experiment report: summary statistics, the median CI, and
/// the F5.4 diagnostic verdicts — the level of reporting the paper's survey
/// found missing from >60% of the literature.
void print_experiment_report(std::ostream& os, const ExperimentResult& result);

/// One-line verdicts used in reports.
std::string normality_verdict(const stats::TestResult& shapiro, double alpha = 0.05);
std::string independence_verdict(const stats::TestResult& runs, double alpha = 0.05);

}  // namespace cloudrepro::core
