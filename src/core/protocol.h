#pragma once

#include <span>
#include <vector>

#include "core/confirm.h"
#include "core/experiment.h"
#include "core/fingerprint.h"
#include "core/guidelines.h"
#include "stats/stationarity.h"

namespace cloudrepro::core {

/// The paper's conclusion, as one callable: "we proposed protocols to
/// achieve reliable cloud-based experimentation". `run_protocol` strings the
/// guidelines together — fingerprint the platform (F5.2), rest/reset to
/// neutral state (F5.4), run enough repetitions (F5.3), run the statistical
/// diagnostics and CONFIRM convergence analysis, and audit the whole design
/// (F5.1-F5.5).

/// F5.4: "discretize performance evaluation into units of time ... gather
/// median performance for each interval, and apply techniques such as
/// CONFIRM over large numbers of gathered medians". Splits the series into
/// `window`-sample intervals and runs the CONFIRM analysis over the interval
/// medians.
ConfirmAnalysis windowed_median_confirm(std::span<const double> series,
                                        std::size_t window,
                                        const ConfirmOptions& options = {});

/// F5.4: "Data used while gathering baseline runs can be used to determine
/// the appropriate length of these rests." For token-bucket platforms the
/// rest must refill the tokens one repetition spends:
///   rest = planned_transfer_gbit / replenish_rate * safety.
/// Unshaped platforms need no rest (returns 0).
double recommend_rest_seconds(const NetworkFingerprint& fingerprint,
                              double planned_transfer_gbit_per_run,
                              double safety_factor = 1.25);

struct ProtocolOptions {
  ExperimentPlan plan;
  FingerprintOptions fingerprint;
  /// Expected network volume one repetition transfers per VM (drives the
  /// rest-length recommendation when VMs are reused).
  double planned_transfer_gbit_per_run = 0.0;
};

struct ProtocolReport {
  NetworkFingerprint baseline;
  double recommended_rest_s = 0.0;
  ExperimentResult result;
  ConfirmAnalysis confirm;
  std::vector<GuidelineFinding> findings;

  /// Overall verdict: the experiment converged, its diagnostics hold, and
  /// no guideline was violated.
  bool reproducible = false;
};

/// Runs the full protocol against an environment hosted on the given cloud.
/// When the plan reuses VMs, the recommended rest (from the fingerprint) is
/// substituted for the plan's rest if longer.
ProtocolReport run_protocol(const cloud::CloudProfile& profile, Environment& env,
                            const ProtocolOptions& options, stats::Rng& rng);

/// Renders the report as a human-readable block (the "publish this along
/// with your results" artifact of F5.2/F5.5).
void print_protocol_report(std::ostream& os, const ProtocolReport& report);

}  // namespace cloudrepro::core
