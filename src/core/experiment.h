#pragma once

#include <functional>
#include <string>
#include <vector>

#include "stats/ci.h"
#include "stats/descriptive.h"
#include "stats/hypothesis.h"
#include "stats/rng.h"

namespace cloudrepro::core {

/// The environment an experiment runs in. Implementations wrap a simulated
/// cloud (or, in principle, a real one): the runner only needs the three
/// operations the paper's guidelines talk about — getting *fresh*
/// infrastructure, letting it *rest*, and running one measurement.
class Environment {
 public:
  virtual ~Environment() = default;

  /// Human-readable name (cloud + instance type + workload), recorded in
  /// reports per F5.5 ("publish as much detail as possible").
  virtual std::string description() const = 0;

  /// Provisions fresh infrastructure: new VMs, flushed caches, reset
  /// shaper state — "the most reliable way" to reach a neutral state (F5.4).
  virtual void fresh() = 0;

  /// Lets the infrastructure rest (hidden state such as token buckets
  /// replenishes) for the given number of simulated seconds.
  virtual void rest(double seconds) = 0;

  /// Executes one repetition and returns the measured value (e.g. job
  /// runtime in seconds).
  virtual double run_once(stats::Rng& rng) = 0;
};

/// Adapter: builds an Environment from three callables.
class LambdaEnvironment final : public Environment {
 public:
  LambdaEnvironment(std::string description, std::function<void()> fresh,
                    std::function<void(double)> rest,
                    std::function<double(stats::Rng&)> run_once);

  std::string description() const override { return description_; }
  void fresh() override { fresh_(); }
  void rest(double seconds) override { rest_(seconds); }
  double run_once(stats::Rng& rng) override { return run_once_(rng); }

 private:
  std::string description_;
  std::function<void()> fresh_;
  std::function<void(double)> rest_;
  std::function<double(stats::Rng&)> run_once_;
};

/// How an experiment is to be executed — the knobs the paper's findings
/// F5.3/F5.4 are about.
struct ExperimentPlan {
  int repetitions = 10;

  /// Recreate fresh infrastructure before every repetition. Without this,
  /// hidden provider state (token budgets) couples the runs (Figure 19).
  bool fresh_environment_each_run = true;

  /// Rest period between repetitions when infrastructure is reused.
  double rest_between_runs_s = 0.0;

  double confidence = 0.95;

  /// Acceptable CI half-width relative to the median (F5.3 suggests e.g. 5%).
  double target_error_bound = 0.05;
};

/// Everything measured and diagnosed about one experiment.
struct ExperimentResult {
  std::string environment;
  ExperimentPlan plan;
  std::vector<double> values;  ///< In execution order.

  stats::Summary summary;
  stats::ConfidenceInterval median_ci;

  // Diagnostics mandated by F5.4: "samples collected should be tested for
  // normality, independence, and stationarity".
  stats::TestResult normality;       ///< Shapiro-Wilk (needs n >= 3).
  stats::TestResult independence;    ///< Runs test (needs n >= 4).
  bool diagnostics_available = false;

  /// True when the median CI is valid and within the plan's error bound.
  bool converged() const noexcept;
};

/// Executes experiments according to a plan.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(stats::Rng rng) : rng_{rng} {}

  /// Runs one experiment.
  ExperimentResult run(Environment& env, const ExperimentPlan& plan);

  /// Runs several experiment configurations, optionally in randomized order
  /// (F5.4: "randomizing experiment order is a useful technique for
  /// avoiding self-interference"). Results are returned in the original
  /// configuration order regardless of execution order.
  std::vector<ExperimentResult> run_suite(
      std::vector<std::reference_wrapper<Environment>> environments,
      const ExperimentPlan& plan, bool randomize_order);

  stats::Rng& rng() noexcept { return rng_; }

 private:
  stats::Rng rng_;
};

}  // namespace cloudrepro::core
