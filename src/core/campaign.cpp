#include "core/campaign.h"

#include <ostream>
#include <stdexcept>

#include "core/report.h"

namespace cloudrepro::core {

std::vector<std::size_t> CampaignResult::cells_for(const std::string& config) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].config == config) out.push_back(i);
  }
  return out;
}

stats::TestResult CampaignResult::treatment_effect(const std::string& config) const {
  const auto indices = cells_for(config);
  if (indices.size() < 2) {
    throw std::invalid_argument{
        "treatment_effect: config '" + config + "' has fewer than 2 treatments"};
  }
  std::vector<std::vector<double>> groups;
  groups.reserve(indices.size());
  for (const auto i : indices) groups.push_back(cells[i].values);
  return stats::kruskal_wallis(groups);
}

void CampaignResult::write_csv(std::ostream& os) const {
  os << "config,treatment,repetition,value\n";
  for (const auto& cell : cells) {
    for (std::size_t r = 0; r < cell.values.size(); ++r) {
      os << cell.config << ',' << cell.treatment << ',' << r << ','
         << cell.values[r] << '\n';
    }
  }
}

CampaignResult run_campaign(std::vector<CampaignCell> cells,
                            const CampaignOptions& options, stats::Rng& rng) {
  if (cells.empty()) throw std::invalid_argument{"run_campaign: no cells"};
  if (options.repetitions_per_cell < 1) {
    throw std::invalid_argument{"run_campaign: need at least one repetition per cell"};
  }
  for (const auto& cell : cells) {
    if (!cell.run_once || !cell.fresh) {
      throw std::invalid_argument{"run_campaign: cell callables must be set"};
    }
  }

  CampaignResult result;
  result.cells.resize(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    result.cells[i].config = cells[i].config;
    result.cells[i].treatment = cells[i].treatment;
  }

  // Randomized execution order over (cell, repetition) pairs would break
  // per-cell warm-up symmetry; the paper randomizes at the experiment level,
  // so we shuffle cells and run each cell's repetitions consecutively with
  // fresh state per repetition.
  result.execution_order =
      options.randomize_order
          ? rng.permutation(cells.size())
          : [&] {
              std::vector<std::size_t> order(cells.size());
              for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
              return order;
            }();

  for (const auto idx : result.execution_order) {
    auto& out = result.cells[idx];
    out.values.reserve(static_cast<std::size_t>(options.repetitions_per_cell));
    for (int r = 0; r < options.repetitions_per_cell; ++r) {
      cells[idx].fresh();
      out.values.push_back(cells[idx].run_once(rng));
    }
    out.summary = stats::summarize(out.values);
    out.median_ci = stats::median_ci(out.values, options.confidence);
  }
  return result;
}

void print_campaign_summary(std::ostream& os, const CampaignResult& result) {
  TablePrinter t{{"Config", "Treatment", "Median [95% CI]", "Mean", "CoV"}};
  for (const auto& cell : result.cells) {
    t.add_row({cell.config, cell.treatment, fmt_ci(cell.median_ci, 1),
               fmt(cell.summary.mean, 1),
               fmt_pct(cell.summary.coefficient_of_variation)});
  }
  t.print(os);
}

}  // namespace cloudrepro::core
