#include "core/campaign.h"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/report.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace cloudrepro::core {

namespace {

/// SplitMix64-style mixer for deriving independent sub-seeds. Each
/// (cell, repetition) gets its own stream, which is what makes journal
/// resume bit-identical: replaying a completed repetition consumes no
/// draws from anyone else's stream.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t repetition_seed(std::uint64_t master, std::size_t cell, int rep) noexcept {
  return mix(mix(master, cell + 1), static_cast<std::uint64_t>(rep) + 1);
}

/// Doubles are journaled with 17 significant digits — the shortest length
/// guaranteed to round-trip an IEEE binary64 exactly, which the
/// resume-equals-uninterrupted property depends on.
std::string fmt_double(double v) {
  std::ostringstream ss;
  ss << std::setprecision(17) << v;
  return ss.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// The journal header captures everything the campaign is a function of
/// (seed, options, cell grid). Resume compares it verbatim: any drift in
/// the inputs makes the journal's measurements meaningless for this run.
std::string journal_header(const std::vector<CampaignCell>& cells,
                           const CampaignOptions& options, std::uint64_t seed) {
  std::ostringstream ss;
  ss << "{\"type\":\"campaign-journal\",\"version\":1,\"seed\":" << seed
     << ",\"repetitions_per_cell\":" << options.repetitions_per_cell
     << ",\"randomize_order\":" << (options.randomize_order ? "true" : "false")
     << ",\"confidence\":" << fmt_double(options.confidence) << ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) ss << ',';
    ss << "{\"config\":\"" << json_escape(cells[i].config)
       << "\",\"treatment\":\"" << json_escape(cells[i].treatment) << "\"}";
  }
  ss << "]}";
  return ss.str();
}

std::string journal_entry(std::size_t cell, int rep, double value) {
  std::ostringstream ss;
  ss << "{\"cell\":" << cell << ",\"rep\":" << rep
     << ",\"value\":" << fmt_double(value) << "}";
  return ss.str();
}

/// Minimal field extraction for our own journal entries (no JSON library in
/// the image; the format is machine-written, so strictness lives in the
/// verbatim header check).
bool extract_field(const std::string& line, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  auto end = line.find_first_of(",}", start);
  if (end == std::string::npos) return false;
  out = line.substr(start, end - start);
  return true;
}

struct JournalEntry {
  std::size_t cell = 0;
  int rep = 0;
  double value = 0.0;
};

bool parse_entry(const std::string& line, JournalEntry& out) {
  std::string cell_s, rep_s, value_s;
  if (!extract_field(line, "cell", cell_s) || !extract_field(line, "rep", rep_s) ||
      !extract_field(line, "value", value_s)) {
    return false;
  }
  char* end = nullptr;
  out.cell = std::strtoull(cell_s.c_str(), &end, 10);
  if (end == cell_s.c_str()) return false;
  out.rep = static_cast<int>(std::strtol(rep_s.c_str(), &end, 10));
  if (end == rep_s.c_str()) return false;
  out.value = std::strtod(value_s.c_str(), &end);
  return end != value_s.c_str();
}

/// Loads completed (cell, repetition) -> value entries from an existing
/// journal, after verifying its header matches this campaign exactly.
std::map<std::pair<std::size_t, int>, double> load_journal(
    const std::filesystem::path& path, const std::string& expected_header,
    std::size_t cell_count, int repetitions) {
  std::map<std::pair<std::size_t, int>, double> done;
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"run_campaign: cannot read journal " + path.string()};
  }
  std::string line;
  if (!std::getline(in, line)) return done;  // Empty file: treat as fresh.
  if (line != expected_header) {
    throw std::runtime_error{
        "run_campaign: journal header mismatch (different seed, options, or "
        "cell grid) in " + path.string()};
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalEntry e;
    if (!parse_entry(line, e)) {
      // A torn final line from a crash mid-write is expected; that
      // measurement simply re-runs.
      continue;
    }
    if (e.cell >= cell_count || e.rep < 0 || e.rep >= repetitions) {
      throw std::runtime_error{
          "run_campaign: journal entry out of range in " + path.string()};
    }
    done[{e.cell, e.rep}] = e.value;
  }
  return done;
}

}  // namespace

std::vector<std::size_t> CampaignResult::cells_for(const std::string& config) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].config == config) out.push_back(i);
  }
  return out;
}

stats::TestResult CampaignResult::treatment_effect(const std::string& config) const {
  const auto indices = cells_for(config);
  if (indices.size() < 2) {
    throw std::invalid_argument{
        "treatment_effect: config '" + config + "' has fewer than 2 treatments"};
  }
  std::vector<std::vector<double>> groups;
  groups.reserve(indices.size());
  for (const auto i : indices) groups.push_back(cells[i].values);
  return stats::kruskal_wallis(groups);
}

void CampaignResult::write_csv(std::ostream& os) const {
  os << "config,treatment,repetition,value\n";
  for (const auto& cell : cells) {
    for (std::size_t r = 0; r < cell.values.size(); ++r) {
      os << cell.config << ',' << cell.treatment << ',' << r << ','
         << cell.values[r] << '\n';
    }
  }
}

CampaignResult run_campaign(std::vector<CampaignCell> cells,
                            const CampaignOptions& options, std::uint64_t seed) {
  if (cells.empty()) throw std::invalid_argument{"run_campaign: no cells"};
  if (options.repetitions_per_cell < 1) {
    throw std::invalid_argument{"run_campaign: need at least one repetition per cell"};
  }
  if (options.max_measurements < 0) {
    throw std::invalid_argument{"run_campaign: max_measurements must be >= 0"};
  }
  if (options.threads < 0) {
    throw std::invalid_argument{"run_campaign: threads must be >= 0"};
  }
  for (const auto& cell : cells) {
    if (!cell.run_once || !cell.fresh) {
      throw std::invalid_argument{"run_campaign: cell callables must be set"};
    }
  }

#if CLOUDREPRO_OBS
  // Observability sinks: external when supplied, owned when only a path was
  // given. All campaign events live in the wall-clock domain (track 0,
  // seconds since campaign start) — per-measurement sim time is the cells'
  // business, not ours.
  std::unique_ptr<obs::Tracer> owned_tracer;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics;
  obs::Tracer* tracer = options.tracer;
  obs::MetricsRegistry* metrics = options.metrics;
  if (!tracer && !options.trace_path.empty()) {
    owned_tracer = std::make_unique<obs::Tracer>();
    tracer = owned_tracer.get();
  }
  if (!metrics && !options.metrics_path.empty()) {
    owned_metrics = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics.get();
  }
  obs::Histogram* h_cell_wall =
      metrics ? &metrics->histogram("campaign.cell_wall_s") : nullptr;
  obs::Histogram* h_queue_depth =
      metrics ? &metrics->histogram("campaign.journal_queue_depth") : nullptr;
  obs::Counter* c_executed =
      metrics ? &metrics->counter("campaign.measurements_executed") : nullptr;
  const auto obs_t0 = std::chrono::steady_clock::now();
  const auto wall_s = [obs_t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - obs_t0)
        .count();
  };
#endif

  CampaignResult result;
  result.seed = seed;
  result.seed_recorded = true;
  result.options = options;
  result.cells.resize(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    result.cells[i].config = cells[i].config;
    result.cells[i].treatment = cells[i].treatment;
  }

  // Randomized execution order over (cell, repetition) pairs would break
  // per-cell warm-up symmetry; the paper randomizes at the experiment level,
  // so we shuffle cells and run each cell's repetitions consecutively with
  // fresh state per repetition. The order comes from its own derived stream
  // so it matches across interrupt/resume cycles.
  if (options.randomize_order) {
    stats::Rng order_rng{mix(seed, 0)};
    result.execution_order = order_rng.permutation(cells.size());
  } else {
    result.execution_order.resize(cells.size());
    for (std::size_t i = 0; i < result.execution_order.size(); ++i) {
      result.execution_order[i] = i;
    }
  }

  // Journal: replay completed measurements, append new ones as they finish.
  const std::string header = journal_header(cells, options, seed);
  std::map<std::pair<std::size_t, int>, double> done;
  std::ofstream journal;
  if (!options.journal_path.empty()) {
    if (std::filesystem::exists(options.journal_path)) {
      done = load_journal(options.journal_path, header, cells.size(),
                          options.repetitions_per_cell);
    }
    // A crash mid-write can leave a torn final line without a newline; make
    // sure the next append starts on a fresh line.
    bool needs_newline = false;
    if (std::filesystem::exists(options.journal_path) &&
        std::filesystem::file_size(options.journal_path) > 0) {
      std::ifstream tail{options.journal_path, std::ios::binary};
      tail.seekg(-1, std::ios::end);
      needs_newline = tail.get() != '\n';
    }
    journal.open(options.journal_path, std::ios::app);
    if (!journal) {
      throw std::runtime_error{"run_campaign: cannot open journal " +
                               options.journal_path.string()};
    }
    if (needs_newline) journal << '\n';
    if (std::filesystem::file_size(options.journal_path) == 0) {
      journal << header << '\n' << std::flush;
    }
  }

  const int worker_threads =
      runtime::ThreadPool::resolve_thread_count(options.threads);
  bool budget_exhausted = false;
  if (worker_threads <= 1) {
    // Serial reference path: executes pending measurements in execution
    // order, interleaving journal replays in place.
    int executed = 0;
    for (const auto idx : result.execution_order) {
      auto& out = result.cells[idx];
      out.values.reserve(static_cast<std::size_t>(options.repetitions_per_cell));
      for (int r = 0; r < options.repetitions_per_cell; ++r) {
        if (const auto it = done.find({idx, r}); it != done.end()) {
          out.values.push_back(it->second);
          ++result.resumed_measurements;
          continue;
        }
        if (options.max_measurements > 0 && executed >= options.max_measurements) {
          budget_exhausted = true;
          break;
        }
        CLOUDREPRO_OBS_STMT(const double m_start = wall_s();)
        cells[idx].fresh();
        stats::Rng rep_rng{repetition_seed(seed, idx, r)};
        const double value = cells[idx].run_once(rep_rng);
        CLOUDREPRO_OBS_STMT(
            const double m_dur = wall_s() - m_start;
            if (h_cell_wall) h_cell_wall->observe(m_dur);
            if (c_executed) c_executed->add();
            if (tracer) {
              tracer->complete(m_start, m_dur, "campaign", "measurement",
                               {"cell", static_cast<double>(idx)},
                               {"rep", static_cast<double>(r)},
                               static_cast<std::uint32_t>(idx), 0);
            })
        out.values.push_back(value);
        ++executed;
        if (journal.is_open()) {
          journal << journal_entry(idx, r, value) << '\n' << std::flush;
        }
      }
      if (budget_exhausted) break;
    }
  } else {
    // Parallel path. The pending task list is built in serial execution
    // order and truncated to `max_measurements`, so the *set* of executed
    // measurements matches the serial path exactly; each task derives its
    // own repetition seed, so every value matches too. Workers hand
    // completed values to this (coordinating) thread, which is the single
    // journal writer, appending entries in completion order.
    struct PendingTask {
      std::size_t cell = 0;
      int rep = 0;
    };
    std::vector<PendingTask> pending;
    for (const auto idx : result.execution_order) {
      for (int r = 0; r < options.repetitions_per_cell; ++r) {
        if (done.find({idx, r}) == done.end()) pending.push_back({idx, r});
      }
    }
    if (options.max_measurements > 0 &&
        pending.size() > static_cast<std::size_t>(options.max_measurements)) {
      pending.resize(static_cast<std::size_t>(options.max_measurements));
      budget_exhausted = true;
    }

    std::vector<double> task_values(pending.size());
    if (!pending.empty()) {
      std::mutex mu;
      std::condition_variable completion_cv;
      std::deque<std::size_t> completed;  // Task indices, completion order.
      std::size_t finished = 0;           // Tasks done, success or failure.
      std::exception_ptr error;

      runtime::ThreadPool pool{worker_threads};
      for (std::size_t t = 0; t < pending.size(); ++t) {
        pool.submit([&, t] {
          try {
            const auto [idx, r] = pending[t];
            CLOUDREPRO_OBS_STMT(const double m_start = wall_s();)
            cells[idx].fresh();
            stats::Rng rep_rng{repetition_seed(seed, idx, r)};
            const double value = cells[idx].run_once(rep_rng);
            CLOUDREPRO_OBS_STMT(
                const double m_dur = wall_s() - m_start;
                if (h_cell_wall) h_cell_wall->observe(m_dur);
                if (c_executed) c_executed->add();
                if (tracer) {
                  tracer->complete(m_start, m_dur, "campaign", "measurement",
                                   {"cell", static_cast<double>(idx)},
                                   {"rep", static_cast<double>(r)},
                                   static_cast<std::uint32_t>(idx), 0);
                })
            std::lock_guard<std::mutex> lock{mu};
            task_values[t] = value;
            completed.push_back(t);
            ++finished;
          } catch (...) {
            std::lock_guard<std::mutex> lock{mu};
            if (!error) error = std::current_exception();
            ++finished;
          }
          completion_cv.notify_one();
        });
      }

      std::unique_lock<std::mutex> lock{mu};
      for (;;) {
        completion_cv.wait(lock, [&] {
          return !completed.empty() || finished == pending.size();
        });
        // Queue depth at wake-up: how far the workers have run ahead of the
        // single journal writer.
        CLOUDREPRO_OBS_STMT(
            if (h_queue_depth) {
              h_queue_depth->observe(static_cast<double>(completed.size()));
            })
        while (!completed.empty()) {
          const std::size_t t = completed.front();
          completed.pop_front();
          if (journal.is_open()) {
            const PendingTask task = pending[t];
            const double value = task_values[t];
            lock.unlock();
            journal << journal_entry(task.cell, task.rep, value) << '\n'
                    << std::flush;
            lock.lock();
          }
        }
        if (finished == pending.size()) break;
      }
      const std::exception_ptr first_error = error;
      lock.unlock();
      pool.wait_idle();
      if (first_error) std::rethrow_exception(first_error);
    }

    // Assemble in grid order from journal replays and freshly executed
    // slots, reproducing the serial path's budget-cutoff semantics: the
    // first measurement that is neither replayed nor executed marks the
    // interruption point.
    std::map<std::pair<std::size_t, int>, double> fresh_values;
    for (std::size_t t = 0; t < pending.size(); ++t) {
      fresh_values[{pending[t].cell, pending[t].rep}] = task_values[t];
    }
    bool cut = false;
    for (const auto idx : result.execution_order) {
      auto& out = result.cells[idx];
      out.values.reserve(static_cast<std::size_t>(options.repetitions_per_cell));
      for (int r = 0; r < options.repetitions_per_cell; ++r) {
        if (const auto it = done.find({idx, r}); it != done.end()) {
          out.values.push_back(it->second);
          ++result.resumed_measurements;
          continue;
        }
        if (const auto it = fresh_values.find({idx, r}); it != fresh_values.end()) {
          out.values.push_back(it->second);
          continue;
        }
        cut = true;
        break;
      }
      if (cut) break;
    }
  }

  for (auto& out : result.cells) {
    if (!out.values.empty()) {
      out.summary = stats::summarize(out.values);
      out.median_ci = stats::median_ci(out.values, options.confidence);
    }
  }

  result.complete = true;
  for (const auto& cell : result.cells) {
    if (cell.values.size() !=
        static_cast<std::size_t>(options.repetitions_per_cell)) {
      result.complete = false;
      break;
    }
  }

#if CLOUDREPRO_OBS
  if (metrics && result.resumed_measurements > 0) {
    metrics->counter("campaign.measurements_resumed")
        .add(static_cast<double>(result.resumed_measurements));
  }
  if (tracer) {
    tracer->complete(0.0, wall_s(), "campaign", "campaign",
                     {"cells", static_cast<double>(cells.size())},
                     {"reps", static_cast<double>(options.repetitions_per_cell)},
                     0, 0);
  }
  if (tracer && !options.trace_path.empty()) {
    std::ofstream out{options.trace_path};
    if (!out) {
      throw std::runtime_error{"run_campaign: cannot write trace " +
                               options.trace_path.string()};
    }
    tracer->write_chrome_json(out);
  }
  if (metrics && !options.metrics_path.empty()) {
    std::ofstream out{options.metrics_path};
    if (!out) {
      throw std::runtime_error{"run_campaign: cannot write metrics " +
                               options.metrics_path.string()};
    }
    metrics->write_json(out);
  }
#endif
  return result;
}

CampaignResult run_campaign(std::vector<CampaignCell> cells,
                            const CampaignOptions& options, stats::Rng& rng) {
  return run_campaign(std::move(cells), options, rng.next_u64());
}

void print_campaign_summary(std::ostream& os, const CampaignResult& result) {
  if (result.seed_recorded) {
    os << "campaign: seed=" << result.seed
       << " repetitions_per_cell=" << result.options.repetitions_per_cell
       << " randomize_order=" << (result.options.randomize_order ? "true" : "false")
       << " confidence=" << result.options.confidence;
    if (!result.options.journal_path.empty()) {
      os << " journal=" << result.options.journal_path.string();
    }
    if (result.resumed_measurements > 0) {
      os << " resumed=" << result.resumed_measurements;
    }
    if (!result.complete) os << " [INCOMPLETE]";
    os << '\n';
  }
  TablePrinter t{{"Config", "Treatment", "Median [95% CI]", "Mean", "CoV"}};
  for (const auto& cell : result.cells) {
    t.add_row({cell.config, cell.treatment, fmt_ci(cell.median_ci, 1),
               fmt(cell.summary.mean, 1),
               fmt_pct(cell.summary.coefficient_of_variation)});
  }
  t.print(os);
}

}  // namespace cloudrepro::core
