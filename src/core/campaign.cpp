#include "core/campaign.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/journal.h"
#include "core/report.h"
#include "io/vfs.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "runtime/spsc_ring.h"
#include "runtime/thread_pool.h"

namespace cloudrepro::core {

namespace {

/// SplitMix64-style mixer for deriving independent sub-seeds. Each
/// (cell, repetition) gets its own stream, which is what makes journal
/// resume bit-identical: replaying a completed repetition consumes no
/// draws from anyone else's stream.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool cancelled(const CampaignOptions& options) noexcept {
  return options.cancel && options.cancel->load(std::memory_order_relaxed);
}

/// Handoff from the measurement workers to the single journal-writer
/// (coordinating) thread: one SPSC ring per pool worker, keyed by
/// `ThreadPool::current_worker_index()`, so each ring has exactly one
/// producer (that worker) and one consumer (the writer). The producer fast
/// path is lock-free and allocation-free; a full ring yields until the
/// writer drains — bounded, because the writer never sleeps while
/// `pending() > 0`. The `campaign.journal_queue_depth` histogram samples
/// this structure's combined occupancy.
template <typename T>
class JournalHandoff {
 public:
  /// `mu`/`cv` are the campaign driver's completion channel; the handoff
  /// borrows them for its sleep/wake protocol so one wait covers both
  /// "a record arrived" and "a task finished".
  JournalHandoff(int workers, std::mutex& mu, std::condition_variable& cv)
      : mu_{mu}, cv_{cv} {
    rings_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      rings_.push_back(std::make_unique<runtime::SpscRing<T>>(kRingCapacity));
    }
  }

  /// Producer side. `worker` is the producer's index within the pool; -1
  /// (not a pool worker) falls back to the mutex-guarded overflow queue.
  void push(int worker, T value) {
    // Count before the ring store: the consumer's decrement can then never
    // outrun the increment (pop implies the matching add already happened),
    // so `pending_` cannot underflow.
    pending_.fetch_add(1, std::memory_order_seq_cst);
    if (worker >= 0 && static_cast<std::size_t>(worker) < rings_.size()) {
      auto& ring = *rings_[static_cast<std::size_t>(worker)];
      while (!ring.try_push(value)) std::this_thread::yield();
    } else {
      std::lock_guard<std::mutex> lock{mu_};
      overflow_.push_back(std::move(value));
    }
    // Dekker pair with the writer's sleep path: this thread stored
    // `pending_` (seq_cst) before this load; the writer stores
    // `consumer_waiting_` (seq_cst) before re-checking `pending_`.
    // Whichever ran second sees the other, so a handed-off record is never
    // stranded with the writer asleep. Lock-then-notify so a writer between
    // its predicate check and its wait cannot miss the signal.
    if (consumer_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock{mu_};
      cv_.notify_one();
    }
  }

  /// Consumer side: appends everything currently handed off to `out` and
  /// returns how many elements were taken.
  std::size_t drain(std::vector<T>& out) {
    const std::size_t before = out.size();
    for (auto& ring : rings_) {
      T value;
      while (ring->try_pop(value)) out.push_back(std::move(value));
    }
    {
      std::lock_guard<std::mutex> lock{mu_};
      while (!overflow_.empty()) {
        out.push_back(std::move(overflow_.front()));
        overflow_.pop_front();
      }
    }
    const std::size_t taken = out.size() - before;
    if (taken > 0) pending_.fetch_sub(taken, std::memory_order_seq_cst);
    return taken;
  }

  /// Records handed off but not yet drained (ring + overflow occupancy,
  /// counting a push already announced but still being stored).
  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_seq_cst);
  }

  void set_waiting(bool waiting) noexcept {
    consumer_waiting_.store(waiting, std::memory_order_seq_cst);
  }

 private:
  /// Per-worker depth. Journal records are small; 256 in flight per worker
  /// means the writer is the bottleneck and backpressure is the right
  /// answer anyway.
  static constexpr std::size_t kRingCapacity = 256;

  std::vector<std::unique_ptr<runtime::SpscRing<T>>> rings_;
  std::deque<T> overflow_;  ///< Non-worker producers; guarded by mu_.
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> consumer_waiting_{false};
  std::mutex& mu_;
  std::condition_variable& cv_;
};

}  // namespace

std::uint64_t campaign_repetition_seed(std::uint64_t master, std::size_t cell,
                                       int rep) noexcept {
  return mix(mix(master, cell + 1), static_cast<std::uint64_t>(rep) + 1);
}

std::vector<std::size_t> campaign_execution_order(std::size_t cell_count,
                                                  const CampaignOptions& options,
                                                  std::uint64_t seed) {
  std::vector<std::size_t> order;
  if (options.randomize_order) {
    stats::Rng order_rng{mix(seed, 0)};
    order = order_rng.permutation(cell_count);
  } else {
    order.resize(cell_count);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  }
  return order;
}

std::vector<std::size_t> CampaignResult::cells_for(const std::string& config) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].config == config) out.push_back(i);
  }
  return out;
}

stats::TestResult CampaignResult::treatment_effect(const std::string& config) const {
  const auto indices = cells_for(config);
  if (indices.size() < 2) {
    throw std::invalid_argument{
        "treatment_effect: config '" + config + "' has fewer than 2 treatments"};
  }
  std::vector<std::vector<double>> groups;
  groups.reserve(indices.size());
  for (const auto i : indices) groups.push_back(cells[i].values);
  return stats::kruskal_wallis(groups);
}

void CampaignResult::write_csv(std::ostream& os) const {
  os << "config,treatment,repetition,value\n";
  for (const auto& cell : cells) {
    for (std::size_t r = 0; r < cell.values.size(); ++r) {
      os << cell.config << ',' << cell.treatment << ',' << r << ','
         << cell.values[r] << '\n';
    }
  }
}

CampaignResult run_campaign(std::vector<CampaignCell> cells,
                            const CampaignOptions& options, std::uint64_t seed) {
  if (cells.empty()) throw std::invalid_argument{"run_campaign: no cells"};
  if (options.repetitions_per_cell < 1) {
    throw std::invalid_argument{"run_campaign: need at least one repetition per cell"};
  }
  if (options.max_measurements < 0) {
    throw std::invalid_argument{"run_campaign: max_measurements must be >= 0"};
  }
  if (options.threads < 0) {
    throw std::invalid_argument{"run_campaign: threads must be >= 0"};
  }
  for (const auto& cell : cells) {
    if (!cell.run_once || !cell.fresh) {
      throw std::invalid_argument{"run_campaign: cell callables must be set"};
    }
  }
  if (options.adaptive.enabled) {
    // Fail here, on the caller's thread, rather than from the first
    // ConfirmMonitor constructed inside a worker.
    if (options.adaptive.error_bound <= 0.0) {
      throw std::invalid_argument{"run_campaign: adaptive error bound must be positive"};
    }
    if (options.adaptive.quantile <= 0.0 || options.adaptive.quantile >= 1.0) {
      throw std::invalid_argument{"run_campaign: adaptive quantile must be in (0, 1)"};
    }
    if (options.adaptive.confidence <= 0.0 || options.adaptive.confidence >= 1.0) {
      throw std::invalid_argument{"run_campaign: adaptive confidence must be in (0, 1)"};
    }
  }

#if CLOUDREPRO_OBS
  // Observability sinks: external when supplied, owned when only a path was
  // given. All campaign events live in the wall-clock domain (track 0,
  // seconds since campaign start) — per-measurement sim time is the cells'
  // business, not ours.
  std::unique_ptr<obs::Tracer> owned_tracer;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics;
  obs::Tracer* tracer = options.tracer;
  obs::MetricsRegistry* metrics = options.metrics;
  if (!tracer && !options.trace_path.empty()) {
    owned_tracer = std::make_unique<obs::Tracer>();
    tracer = owned_tracer.get();
  }
  if (!metrics && !options.metrics_path.empty()) {
    owned_metrics = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics.get();
  }
  obs::Histogram* h_cell_wall =
      metrics ? &metrics->histogram("campaign.cell_wall_s") : nullptr;
  obs::Histogram* h_queue_depth =
      metrics ? &metrics->histogram("campaign.journal_queue_depth") : nullptr;
  obs::Counter* c_executed =
      metrics ? &metrics->counter("campaign.measurements_executed") : nullptr;
  const auto obs_t0 = std::chrono::steady_clock::now();
  const auto wall_s = [obs_t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - obs_t0)
        .count();
  };
#endif

  CampaignResult result;
  result.seed = seed;
  result.seed_recorded = true;
  result.options = options;
  result.cells.resize(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    result.cells[i].config = cells[i].config;
    result.cells[i].treatment = cells[i].treatment;
  }

  // Randomized execution order over (cell, repetition) pairs would break
  // per-cell warm-up symmetry; the paper randomizes at the experiment level,
  // so we shuffle cells and run each cell's repetitions consecutively with
  // fresh state per repetition. The order comes from its own derived stream
  // so it matches across interrupt/resume cycles.
  result.execution_order = campaign_execution_order(cells.size(), options, seed);

  // Journal: replay the checksummed valid prefix, truncate any torn or
  // corrupt tail, then append new measurements as they finish. All journal
  // I/O goes through the (injectable) vfs so crash torture can interpose.
  io::Vfs& vfs = options.vfs ? *options.vfs : io::real_vfs();
  const std::string header = journal_header(cells, options, seed);
  std::map<std::pair<std::size_t, int>, double> done;
  std::map<std::size_t, int> stops;
  std::unique_ptr<io::WritableFile> journal;
  if (!options.journal_path.empty()) {
    auto replay = replay_journal(vfs, options.journal_path, header,
                                 cells.size(), options.repetitions_per_cell);
    done = std::move(replay.done);
    stops = std::move(replay.stops);
    if (replay.corrupt_tail) {
      // Keep only the intact record prefix; the measurements the tail held
      // simply re-run. This is the torn-write recovery path.
      vfs.truncate(options.journal_path, replay.valid_bytes);
    }
    journal = vfs.open_write(options.journal_path, io::WriteMode::kAppend);
    if (replay.valid_bytes == 0) journal->append(header + "\n");
  }

  // An external pool (cloudrepro suite's shared thread budget) overrides
  // the `threads` knob; with one the parallel driver runs even at a single
  // worker, since the caller owns the scheduling decision.
  const int worker_threads =
      options.pool ? options.pool->thread_count()
                   : runtime::ThreadPool::resolve_thread_count(options.threads);
  const bool parallel_driver = options.pool != nullptr || worker_threads > 1;
  bool budget_exhausted = false;
  if (options.adaptive.enabled) {
    // Adaptive CONFIRM stopping. Each cell's repetitions must run in order
    // (the stopping rule is evaluated after every measurement, and the next
    // repetition may never exist), so the unit of parallelism is the cell:
    // one sequential task per cell, in execution order. The executed set is
    // a per-cell repetition *prefix* at any interruption point, which is
    // what keeps resume bit-identical across thread counts — the monitor is
    // a pure function of the cell's value sequence, so replaying the prefix
    // re-derives the same stop decision the journal recorded.
    const int cap = options.repetitions_per_cell;
    std::atomic<int> budget{options.max_measurements};
    std::atomic<bool> interrupted{false};
    const auto claim_budget = [&]() -> bool {
      if (options.max_measurements <= 0) return true;
      int cur = budget.load(std::memory_order_relaxed);
      while (cur > 0) {
        if (budget.compare_exchange_weak(cur, cur - 1,
                                         std::memory_order_relaxed)) {
          return true;
        }
      }
      return false;
    };

    // Runs one cell to its stop point (convergence, cap, budget, or
    // cancellation), appending each record via `emit` — the journal seam
    // that differs between the serial and parallel drivers. Returns the
    // number of measurements replayed from the journal.
    const auto run_cell = [&](std::size_t idx,
                              const std::function<void(std::string)>& emit)
        -> std::size_t {
      ConfirmMonitor monitor{options.adaptive};
      auto& out = result.cells[idx];
      out.values.reserve(static_cast<std::size_t>(cap));
      std::size_t resumed = 0;
      const bool stop_journaled = stops.find(idx) != stops.end();
      for (int r = 0; r < cap; ++r) {
        double value = 0.0;
        bool from_journal = false;
        if (const auto it = done.find({idx, r}); it != done.end()) {
          value = it->second;
          from_journal = true;
        } else {
          if (!claim_budget() || cancelled(options)) {
            interrupted.store(true, std::memory_order_relaxed);
            break;
          }
          CLOUDREPRO_OBS_STMT(const double m_start = wall_s();)
          cells[idx].fresh();
          stats::Rng rep_rng{campaign_repetition_seed(seed, idx, r)};
          value = cells[idx].run_once(rep_rng);
          CLOUDREPRO_OBS_STMT(
              const double m_dur = wall_s() - m_start;
              if (h_cell_wall) h_cell_wall->observe(m_dur);
              if (c_executed) c_executed->add();
              if (tracer) {
                tracer->complete(m_start, m_dur, "campaign", "measurement",
                                 {"cell", static_cast<double>(idx)},
                                 {"rep", static_cast<double>(r)},
                                 static_cast<std::uint32_t>(idx), 0);
              })
        }
        out.values.push_back(value);
        if (from_journal) {
          ++resumed;
        } else {
          emit(journal_line({idx, r, value}));
        }
        if (monitor.add(value)) {
          // Re-emitting after a torn tail heals a lost stop record; when the
          // record already replayed, the decision is simply re-derived.
          if (!stop_journaled) {
            emit(journal_line(journal_stop_record(
                idx, static_cast<int>(monitor.stop_repetitions()))));
          }
          break;
        }
      }
      out.adaptive_converged = monitor.converged();
      out.stop_repetitions = monitor.stop_repetitions();
      return resumed;
    };

    if (!parallel_driver) {
      for (const auto idx : result.execution_order) {
        result.resumed_measurements += run_cell(idx, [&](std::string line) {
          if (journal) journal->append(line + "\n");
        });
        if (interrupted.load(std::memory_order_relaxed)) break;
      }
    } else {
      // Cell tasks hand finished journal lines to this (coordinating)
      // thread through per-worker SPSC rings; this thread is the single
      // journal writer. A worker's terminal act is finished++/notify *under
      // the mutex*, so once the writer observes finished == total while
      // holding it, no worker can still touch this frame — which is what
      // lets an external (suite-shared) pool outlive the campaign without a
      // wait_idle() that would block on other campaigns' tasks.
      std::mutex mu;
      std::condition_variable cv;
      std::atomic<std::size_t> finished{0};  // Cell tasks done.
      std::size_t resumed_total = 0;         // Guarded by mu.
      std::exception_ptr error;              // Guarded by mu.
      JournalHandoff<std::string> handoff{worker_threads, mu, cv};

      std::unique_ptr<runtime::ThreadPool> owned_pool;
      runtime::ThreadPool* pool = options.pool;
      if (!pool) {
        owned_pool = std::make_unique<runtime::ThreadPool>(worker_threads);
        pool = owned_pool.get();
      }

      const std::size_t total = result.execution_order.size();
      for (const auto idx : result.execution_order) {
        pool->submit([&, idx, pool] {
          try {
            const std::size_t resumed =
                run_cell(idx, [&, pool](std::string line) {
                  handoff.push(pool->current_worker_index(), std::move(line));
                });
            std::lock_guard<std::mutex> lock{mu};
            resumed_total += resumed;
            finished.fetch_add(1, std::memory_order_seq_cst);
            cv.notify_one();
          } catch (...) {
            std::lock_guard<std::mutex> lock{mu};
            if (!error) error = std::current_exception();
            finished.fetch_add(1, std::memory_order_seq_cst);
            cv.notify_one();
          }
        });
      }

      std::exception_ptr writer_error;
      std::vector<std::string> drained;
      for (;;) {
        drained.clear();
        if (handoff.drain(drained) > 0) {
          CLOUDREPRO_OBS_STMT(
              if (h_queue_depth) {
                h_queue_depth->observe(
                    static_cast<double>(handoff.pending() + drained.size()));
              })
          for (auto& line : drained) {
            if (journal && !writer_error) {
              // A failed append must not abandon in-flight tasks (they
              // reference this frame); keep consuming and surface the
              // error after every task lands.
              try {
                journal->append(line + "\n");
              } catch (...) {
                writer_error = std::current_exception();
              }
            }
          }
          continue;
        }
        std::unique_lock<std::mutex> lock{mu};
        if (finished.load(std::memory_order_seq_cst) == total &&
            handoff.pending() == 0) {
          break;
        }
        handoff.set_waiting(true);
        cv.wait(lock, [&] {
          return handoff.pending() > 0 ||
                 finished.load(std::memory_order_seq_cst) == total;
        });
        handoff.set_waiting(false);
      }
      std::exception_ptr first_error;
      {
        std::lock_guard<std::mutex> lock{mu};
        result.resumed_measurements += resumed_total;
        first_error = error;
      }
      if (first_error) std::rethrow_exception(first_error);
      if (writer_error) std::rethrow_exception(writer_error);
    }
    budget_exhausted = interrupted.load(std::memory_order_relaxed);
  } else if (!parallel_driver) {
    // Serial reference path: executes pending measurements in execution
    // order, interleaving journal replays in place.
    int executed = 0;
    for (const auto idx : result.execution_order) {
      auto& out = result.cells[idx];
      out.values.reserve(static_cast<std::size_t>(options.repetitions_per_cell));
      for (int r = 0; r < options.repetitions_per_cell; ++r) {
        if (const auto it = done.find({idx, r}); it != done.end()) {
          out.values.push_back(it->second);
          ++result.resumed_measurements;
          continue;
        }
        if ((options.max_measurements > 0 &&
             executed >= options.max_measurements) ||
            cancelled(options)) {
          budget_exhausted = true;
          break;
        }
        CLOUDREPRO_OBS_STMT(const double m_start = wall_s();)
        cells[idx].fresh();
        stats::Rng rep_rng{campaign_repetition_seed(seed, idx, r)};
        const double value = cells[idx].run_once(rep_rng);
        CLOUDREPRO_OBS_STMT(
            const double m_dur = wall_s() - m_start;
            if (h_cell_wall) h_cell_wall->observe(m_dur);
            if (c_executed) c_executed->add();
            if (tracer) {
              tracer->complete(m_start, m_dur, "campaign", "measurement",
                               {"cell", static_cast<double>(idx)},
                               {"rep", static_cast<double>(r)},
                               static_cast<std::uint32_t>(idx), 0);
            })
        out.values.push_back(value);
        ++executed;
        if (journal) journal->append(journal_line({idx, r, value}) + "\n");
      }
      if (budget_exhausted) break;
    }
  } else {
    // Parallel path. The pending task list is built in serial execution
    // order and truncated to `max_measurements`, so the *set* of executed
    // measurements matches the serial path exactly; each task derives its
    // own repetition seed, so every value matches too. Workers hand
    // completed values to this (coordinating) thread, which is the single
    // journal writer, appending entries in completion order.
    struct PendingTask {
      std::size_t cell = 0;
      int rep = 0;
    };
    std::vector<PendingTask> pending;
    for (const auto idx : result.execution_order) {
      for (int r = 0; r < options.repetitions_per_cell; ++r) {
        if (done.find({idx, r}) == done.end()) pending.push_back({idx, r});
      }
    }
    if (options.max_measurements > 0 &&
        pending.size() > static_cast<std::size_t>(options.max_measurements)) {
      pending.resize(static_cast<std::size_t>(options.max_measurements));
      budget_exhausted = true;
    }

    std::vector<double> task_values(pending.size());
    std::vector<char> task_ran(pending.size(), 0);
    if (!pending.empty()) {
      // Workers hand completed task indices to this (coordinating) thread
      // through per-worker SPSC rings; this thread is the single journal
      // writer, appending records in drain order. `task_values[t]` is
      // written before the ring push and read after the pop, so the ring's
      // release/acquire pair publishes it — no lock on the value path. As
      // in the adaptive driver, a worker's terminal act is finished++/
      // notify under the mutex, so observing finished == total while
      // holding it proves no worker still references this frame (external
      // pools are never wait_idle()d).
      std::mutex mu;
      std::condition_variable cv;
      std::atomic<std::size_t> finished{0};  // Tasks done, success or failure.
      std::exception_ptr error;              // Guarded by mu.
      JournalHandoff<std::size_t> handoff{worker_threads, mu, cv};

      std::unique_ptr<runtime::ThreadPool> owned_pool;
      runtime::ThreadPool* pool = options.pool;
      if (!pool) {
        owned_pool = std::make_unique<runtime::ThreadPool>(worker_threads);
        pool = owned_pool.get();
      }

      const std::size_t total = pending.size();
      for (std::size_t t = 0; t < pending.size(); ++t) {
        pool->submit([&, t, pool] {
          // Cooperative cancellation: once the flag is set, queued tasks
          // drain without running. In-flight measurements finish and
          // journal normally; resume picks up whatever subset completed.
          if (!cancelled(options)) {
            try {
              const auto [idx, r] = pending[t];
              CLOUDREPRO_OBS_STMT(const double m_start = wall_s();)
              cells[idx].fresh();
              stats::Rng rep_rng{campaign_repetition_seed(seed, idx, r)};
              const double value = cells[idx].run_once(rep_rng);
              CLOUDREPRO_OBS_STMT(
                  const double m_dur = wall_s() - m_start;
                  if (h_cell_wall) h_cell_wall->observe(m_dur);
                  if (c_executed) c_executed->add();
                  if (tracer) {
                    tracer->complete(m_start, m_dur, "campaign", "measurement",
                                     {"cell", static_cast<double>(idx)},
                                     {"rep", static_cast<double>(r)},
                                     static_cast<std::uint32_t>(idx), 0);
                  })
              task_values[t] = value;
              task_ran[t] = 1;
              handoff.push(pool->current_worker_index(), t);
            } catch (...) {
              std::lock_guard<std::mutex> lock{mu};
              if (!error) error = std::current_exception();
            }
          }
          std::lock_guard<std::mutex> lock{mu};
          finished.fetch_add(1, std::memory_order_seq_cst);
          cv.notify_one();
        });
      }

      std::exception_ptr writer_error;
      std::vector<std::size_t> drained;
      for (;;) {
        drained.clear();
        if (handoff.drain(drained) > 0) {
          // Ring occupancy at this drain: how far the workers have run
          // ahead of the single journal writer.
          CLOUDREPRO_OBS_STMT(
              if (h_queue_depth) {
                h_queue_depth->observe(
                    static_cast<double>(handoff.pending() + drained.size()));
              })
          for (const std::size_t t : drained) {
            if (journal && !writer_error) {
              const PendingTask task = pending[t];
              try {
                journal->append(
                    journal_line({task.cell, task.rep, task_values[t]}) + "\n");
              } catch (...) {
                writer_error = std::current_exception();
              }
            }
          }
          continue;
        }
        std::unique_lock<std::mutex> lock{mu};
        if (finished.load(std::memory_order_seq_cst) == total &&
            handoff.pending() == 0) {
          break;
        }
        handoff.set_waiting(true);
        cv.wait(lock, [&] {
          return handoff.pending() > 0 ||
                 finished.load(std::memory_order_seq_cst) == total;
        });
        handoff.set_waiting(false);
      }
      std::exception_ptr first_error;
      {
        std::lock_guard<std::mutex> lock{mu};
        first_error = error;
      }
      if (first_error) std::rethrow_exception(first_error);
      if (writer_error) std::rethrow_exception(writer_error);
    }

    // Assemble in grid order from journal replays and freshly executed
    // slots, reproducing the serial path's budget-cutoff semantics: the
    // first measurement that is neither replayed nor executed marks the
    // interruption point.
    std::map<std::pair<std::size_t, int>, double> fresh_values;
    for (std::size_t t = 0; t < pending.size(); ++t) {
      if (task_ran[t]) {
        fresh_values[{pending[t].cell, pending[t].rep}] = task_values[t];
      }
    }
    bool cut = false;
    for (const auto idx : result.execution_order) {
      auto& out = result.cells[idx];
      out.values.reserve(static_cast<std::size_t>(options.repetitions_per_cell));
      for (int r = 0; r < options.repetitions_per_cell; ++r) {
        if (const auto it = done.find({idx, r}); it != done.end()) {
          out.values.push_back(it->second);
          ++result.resumed_measurements;
          continue;
        }
        if (const auto it = fresh_values.find({idx, r}); it != fresh_values.end()) {
          out.values.push_back(it->second);
          continue;
        }
        cut = true;
        break;
      }
      if (cut) break;
    }
  }

  if (journal) {
    // Durability point: everything journaled so far survives a crash from
    // here on. The caller publishes the summary only after this returns, so
    // fsync-journal happens-before publish-summary.
    journal->sync();
    journal->close();
  }

  for (auto& out : result.cells) {
    if (!out.values.empty()) {
      out.summary = stats::summarize(out.values);
      out.median_ci = stats::median_ci(out.values, options.confidence);
      if (options.adaptive.enabled) {
        out.confirm_ci = stats::quantile_ci(out.values, options.adaptive.quantile,
                                            options.adaptive.confidence);
      }
    }
  }

  result.complete = true;
  for (const auto& cell : result.cells) {
    const bool at_cap = cell.values.size() ==
                        static_cast<std::size_t>(options.repetitions_per_cell);
    // An adaptively converged cell is complete at its stop point: the
    // remaining repetitions were deliberately not run, not interrupted.
    if (!at_cap && !(options.adaptive.enabled && cell.adaptive_converged)) {
      result.complete = false;
      break;
    }
  }

#if CLOUDREPRO_OBS
  if (metrics && result.resumed_measurements > 0) {
    metrics->counter("campaign.measurements_resumed")
        .add(static_cast<double>(result.resumed_measurements));
  }
  if (tracer) {
    tracer->complete(0.0, wall_s(), "campaign", "campaign",
                     {"cells", static_cast<double>(cells.size())},
                     {"reps", static_cast<double>(options.repetitions_per_cell)},
                     0, 0);
  }
  if (tracer && !options.trace_path.empty()) {
    std::ofstream out{options.trace_path};
    if (!out) {
      throw std::runtime_error{"run_campaign: cannot write trace " +
                               options.trace_path.string()};
    }
    tracer->write_chrome_json(out);
  }
  if (metrics && !options.metrics_path.empty()) {
    std::ofstream out{options.metrics_path};
    if (!out) {
      throw std::runtime_error{"run_campaign: cannot write metrics " +
                               options.metrics_path.string()};
    }
    metrics->write_json(out);
  }
#endif
  return result;
}

CampaignResult run_campaign(std::vector<CampaignCell> cells,
                            const CampaignOptions& options, stats::Rng& rng) {
  return run_campaign(std::move(cells), options, rng.next_u64());
}

void print_campaign_summary(std::ostream& os, const CampaignResult& result) {
  if (result.seed_recorded) {
    os << "campaign: seed=" << result.seed
       << " repetitions_per_cell=" << result.options.repetitions_per_cell
       << " randomize_order=" << (result.options.randomize_order ? "true" : "false")
       << " confidence=" << result.options.confidence;
    if (!result.options.journal_path.empty()) {
      os << " journal=" << result.options.journal_path.string();
    }
    if (result.resumed_measurements > 0) {
      os << " resumed=" << result.resumed_measurements;
    }
    if (!result.complete) os << " [INCOMPLETE]";
    os << '\n';
  }
  TablePrinter t{{"Config", "Treatment", "Median [95% CI]", "Mean", "CoV"}};
  for (const auto& cell : result.cells) {
    t.add_row({cell.config, cell.treatment, fmt_ci(cell.median_ci, 1),
               fmt(cell.summary.mean, 1),
               fmt_pct(cell.summary.coefficient_of_variation)});
  }
  t.print(os);
}

}  // namespace cloudrepro::core
