#include "core/campaign.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/journal.h"
#include "core/report.h"
#include "io/vfs.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace cloudrepro::core {

namespace {

/// SplitMix64-style mixer for deriving independent sub-seeds. Each
/// (cell, repetition) gets its own stream, which is what makes journal
/// resume bit-identical: replaying a completed repetition consumes no
/// draws from anyone else's stream.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t repetition_seed(std::uint64_t master, std::size_t cell, int rep) noexcept {
  return mix(mix(master, cell + 1), static_cast<std::uint64_t>(rep) + 1);
}

bool cancelled(const CampaignOptions& options) noexcept {
  return options.cancel && options.cancel->load(std::memory_order_relaxed);
}

}  // namespace

std::vector<std::size_t> CampaignResult::cells_for(const std::string& config) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].config == config) out.push_back(i);
  }
  return out;
}

stats::TestResult CampaignResult::treatment_effect(const std::string& config) const {
  const auto indices = cells_for(config);
  if (indices.size() < 2) {
    throw std::invalid_argument{
        "treatment_effect: config '" + config + "' has fewer than 2 treatments"};
  }
  std::vector<std::vector<double>> groups;
  groups.reserve(indices.size());
  for (const auto i : indices) groups.push_back(cells[i].values);
  return stats::kruskal_wallis(groups);
}

void CampaignResult::write_csv(std::ostream& os) const {
  os << "config,treatment,repetition,value\n";
  for (const auto& cell : cells) {
    for (std::size_t r = 0; r < cell.values.size(); ++r) {
      os << cell.config << ',' << cell.treatment << ',' << r << ','
         << cell.values[r] << '\n';
    }
  }
}

CampaignResult run_campaign(std::vector<CampaignCell> cells,
                            const CampaignOptions& options, std::uint64_t seed) {
  if (cells.empty()) throw std::invalid_argument{"run_campaign: no cells"};
  if (options.repetitions_per_cell < 1) {
    throw std::invalid_argument{"run_campaign: need at least one repetition per cell"};
  }
  if (options.max_measurements < 0) {
    throw std::invalid_argument{"run_campaign: max_measurements must be >= 0"};
  }
  if (options.threads < 0) {
    throw std::invalid_argument{"run_campaign: threads must be >= 0"};
  }
  for (const auto& cell : cells) {
    if (!cell.run_once || !cell.fresh) {
      throw std::invalid_argument{"run_campaign: cell callables must be set"};
    }
  }
  if (options.adaptive.enabled) {
    // Fail here, on the caller's thread, rather than from the first
    // ConfirmMonitor constructed inside a worker.
    if (options.adaptive.error_bound <= 0.0) {
      throw std::invalid_argument{"run_campaign: adaptive error bound must be positive"};
    }
    if (options.adaptive.quantile <= 0.0 || options.adaptive.quantile >= 1.0) {
      throw std::invalid_argument{"run_campaign: adaptive quantile must be in (0, 1)"};
    }
    if (options.adaptive.confidence <= 0.0 || options.adaptive.confidence >= 1.0) {
      throw std::invalid_argument{"run_campaign: adaptive confidence must be in (0, 1)"};
    }
  }

#if CLOUDREPRO_OBS
  // Observability sinks: external when supplied, owned when only a path was
  // given. All campaign events live in the wall-clock domain (track 0,
  // seconds since campaign start) — per-measurement sim time is the cells'
  // business, not ours.
  std::unique_ptr<obs::Tracer> owned_tracer;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics;
  obs::Tracer* tracer = options.tracer;
  obs::MetricsRegistry* metrics = options.metrics;
  if (!tracer && !options.trace_path.empty()) {
    owned_tracer = std::make_unique<obs::Tracer>();
    tracer = owned_tracer.get();
  }
  if (!metrics && !options.metrics_path.empty()) {
    owned_metrics = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics.get();
  }
  obs::Histogram* h_cell_wall =
      metrics ? &metrics->histogram("campaign.cell_wall_s") : nullptr;
  obs::Histogram* h_queue_depth =
      metrics ? &metrics->histogram("campaign.journal_queue_depth") : nullptr;
  obs::Counter* c_executed =
      metrics ? &metrics->counter("campaign.measurements_executed") : nullptr;
  const auto obs_t0 = std::chrono::steady_clock::now();
  const auto wall_s = [obs_t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - obs_t0)
        .count();
  };
#endif

  CampaignResult result;
  result.seed = seed;
  result.seed_recorded = true;
  result.options = options;
  result.cells.resize(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    result.cells[i].config = cells[i].config;
    result.cells[i].treatment = cells[i].treatment;
  }

  // Randomized execution order over (cell, repetition) pairs would break
  // per-cell warm-up symmetry; the paper randomizes at the experiment level,
  // so we shuffle cells and run each cell's repetitions consecutively with
  // fresh state per repetition. The order comes from its own derived stream
  // so it matches across interrupt/resume cycles.
  if (options.randomize_order) {
    stats::Rng order_rng{mix(seed, 0)};
    result.execution_order = order_rng.permutation(cells.size());
  } else {
    result.execution_order.resize(cells.size());
    for (std::size_t i = 0; i < result.execution_order.size(); ++i) {
      result.execution_order[i] = i;
    }
  }

  // Journal: replay the checksummed valid prefix, truncate any torn or
  // corrupt tail, then append new measurements as they finish. All journal
  // I/O goes through the (injectable) vfs so crash torture can interpose.
  io::Vfs& vfs = options.vfs ? *options.vfs : io::real_vfs();
  const std::string header = journal_header(cells, options, seed);
  std::map<std::pair<std::size_t, int>, double> done;
  std::map<std::size_t, int> stops;
  std::unique_ptr<io::WritableFile> journal;
  if (!options.journal_path.empty()) {
    auto replay = replay_journal(vfs, options.journal_path, header,
                                 cells.size(), options.repetitions_per_cell);
    done = std::move(replay.done);
    stops = std::move(replay.stops);
    if (replay.corrupt_tail) {
      // Keep only the intact record prefix; the measurements the tail held
      // simply re-run. This is the torn-write recovery path.
      vfs.truncate(options.journal_path, replay.valid_bytes);
    }
    journal = vfs.open_write(options.journal_path, io::WriteMode::kAppend);
    if (replay.valid_bytes == 0) journal->append(header + "\n");
  }

  const int worker_threads =
      runtime::ThreadPool::resolve_thread_count(options.threads);
  bool budget_exhausted = false;
  if (options.adaptive.enabled) {
    // Adaptive CONFIRM stopping. Each cell's repetitions must run in order
    // (the stopping rule is evaluated after every measurement, and the next
    // repetition may never exist), so the unit of parallelism is the cell:
    // one sequential task per cell, in execution order. The executed set is
    // a per-cell repetition *prefix* at any interruption point, which is
    // what keeps resume bit-identical across thread counts — the monitor is
    // a pure function of the cell's value sequence, so replaying the prefix
    // re-derives the same stop decision the journal recorded.
    const int cap = options.repetitions_per_cell;
    std::atomic<int> budget{options.max_measurements};
    std::atomic<bool> interrupted{false};
    const auto claim_budget = [&]() -> bool {
      if (options.max_measurements <= 0) return true;
      int cur = budget.load(std::memory_order_relaxed);
      while (cur > 0) {
        if (budget.compare_exchange_weak(cur, cur - 1,
                                         std::memory_order_relaxed)) {
          return true;
        }
      }
      return false;
    };

    // Runs one cell to its stop point (convergence, cap, budget, or
    // cancellation), appending each record via `emit` — the journal seam
    // that differs between the serial and parallel drivers. Returns the
    // number of measurements replayed from the journal.
    const auto run_cell = [&](std::size_t idx,
                              const std::function<void(std::string)>& emit)
        -> std::size_t {
      ConfirmMonitor monitor{options.adaptive};
      auto& out = result.cells[idx];
      out.values.reserve(static_cast<std::size_t>(cap));
      std::size_t resumed = 0;
      const bool stop_journaled = stops.find(idx) != stops.end();
      for (int r = 0; r < cap; ++r) {
        double value = 0.0;
        bool from_journal = false;
        if (const auto it = done.find({idx, r}); it != done.end()) {
          value = it->second;
          from_journal = true;
        } else {
          if (!claim_budget() || cancelled(options)) {
            interrupted.store(true, std::memory_order_relaxed);
            break;
          }
          CLOUDREPRO_OBS_STMT(const double m_start = wall_s();)
          cells[idx].fresh();
          stats::Rng rep_rng{repetition_seed(seed, idx, r)};
          value = cells[idx].run_once(rep_rng);
          CLOUDREPRO_OBS_STMT(
              const double m_dur = wall_s() - m_start;
              if (h_cell_wall) h_cell_wall->observe(m_dur);
              if (c_executed) c_executed->add();
              if (tracer) {
                tracer->complete(m_start, m_dur, "campaign", "measurement",
                                 {"cell", static_cast<double>(idx)},
                                 {"rep", static_cast<double>(r)},
                                 static_cast<std::uint32_t>(idx), 0);
              })
        }
        out.values.push_back(value);
        if (from_journal) {
          ++resumed;
        } else {
          emit(journal_line({idx, r, value}));
        }
        if (monitor.add(value)) {
          // Re-emitting after a torn tail heals a lost stop record; when the
          // record already replayed, the decision is simply re-derived.
          if (!stop_journaled) {
            emit(journal_line(journal_stop_record(
                idx, static_cast<int>(monitor.stop_repetitions()))));
          }
          break;
        }
      }
      out.adaptive_converged = monitor.converged();
      out.stop_repetitions = monitor.stop_repetitions();
      return resumed;
    };

    if (worker_threads <= 1) {
      for (const auto idx : result.execution_order) {
        result.resumed_measurements += run_cell(idx, [&](std::string line) {
          if (journal) journal->append(line + "\n");
        });
        if (interrupted.load(std::memory_order_relaxed)) break;
      }
    } else {
      std::mutex mu;
      std::condition_variable completion_cv;
      std::deque<std::string> completed;  // Journal lines, completion order.
      std::size_t finished = 0;           // Cell tasks done.
      std::size_t resumed_total = 0;
      std::exception_ptr error;

      runtime::ThreadPool pool{worker_threads};
      for (const auto idx : result.execution_order) {
        pool.submit([&, idx] {
          try {
            const std::size_t resumed = run_cell(idx, [&](std::string line) {
              {
                std::lock_guard<std::mutex> lock{mu};
                completed.push_back(std::move(line));
              }
              completion_cv.notify_one();
            });
            std::lock_guard<std::mutex> lock{mu};
            resumed_total += resumed;
            ++finished;
          } catch (...) {
            std::lock_guard<std::mutex> lock{mu};
            if (!error) error = std::current_exception();
            ++finished;
          }
          completion_cv.notify_one();
        });
      }

      std::unique_lock<std::mutex> lock{mu};
      for (;;) {
        completion_cv.wait(lock, [&] {
          return !completed.empty() || finished == result.execution_order.size();
        });
        CLOUDREPRO_OBS_STMT(
            if (h_queue_depth) {
              h_queue_depth->observe(static_cast<double>(completed.size()));
            })
        while (!completed.empty()) {
          const std::string line = std::move(completed.front());
          completed.pop_front();
          if (journal) {
            lock.unlock();
            journal->append(line + "\n");
            lock.lock();
          }
        }
        if (finished == result.execution_order.size()) break;
      }
      result.resumed_measurements += resumed_total;
      const std::exception_ptr first_error = error;
      lock.unlock();
      pool.wait_idle();
      if (first_error) std::rethrow_exception(first_error);
    }
    budget_exhausted = interrupted.load(std::memory_order_relaxed);
  } else if (worker_threads <= 1) {
    // Serial reference path: executes pending measurements in execution
    // order, interleaving journal replays in place.
    int executed = 0;
    for (const auto idx : result.execution_order) {
      auto& out = result.cells[idx];
      out.values.reserve(static_cast<std::size_t>(options.repetitions_per_cell));
      for (int r = 0; r < options.repetitions_per_cell; ++r) {
        if (const auto it = done.find({idx, r}); it != done.end()) {
          out.values.push_back(it->second);
          ++result.resumed_measurements;
          continue;
        }
        if ((options.max_measurements > 0 &&
             executed >= options.max_measurements) ||
            cancelled(options)) {
          budget_exhausted = true;
          break;
        }
        CLOUDREPRO_OBS_STMT(const double m_start = wall_s();)
        cells[idx].fresh();
        stats::Rng rep_rng{repetition_seed(seed, idx, r)};
        const double value = cells[idx].run_once(rep_rng);
        CLOUDREPRO_OBS_STMT(
            const double m_dur = wall_s() - m_start;
            if (h_cell_wall) h_cell_wall->observe(m_dur);
            if (c_executed) c_executed->add();
            if (tracer) {
              tracer->complete(m_start, m_dur, "campaign", "measurement",
                               {"cell", static_cast<double>(idx)},
                               {"rep", static_cast<double>(r)},
                               static_cast<std::uint32_t>(idx), 0);
            })
        out.values.push_back(value);
        ++executed;
        if (journal) journal->append(journal_line({idx, r, value}) + "\n");
      }
      if (budget_exhausted) break;
    }
  } else {
    // Parallel path. The pending task list is built in serial execution
    // order and truncated to `max_measurements`, so the *set* of executed
    // measurements matches the serial path exactly; each task derives its
    // own repetition seed, so every value matches too. Workers hand
    // completed values to this (coordinating) thread, which is the single
    // journal writer, appending entries in completion order.
    struct PendingTask {
      std::size_t cell = 0;
      int rep = 0;
    };
    std::vector<PendingTask> pending;
    for (const auto idx : result.execution_order) {
      for (int r = 0; r < options.repetitions_per_cell; ++r) {
        if (done.find({idx, r}) == done.end()) pending.push_back({idx, r});
      }
    }
    if (options.max_measurements > 0 &&
        pending.size() > static_cast<std::size_t>(options.max_measurements)) {
      pending.resize(static_cast<std::size_t>(options.max_measurements));
      budget_exhausted = true;
    }

    std::vector<double> task_values(pending.size());
    std::vector<char> task_ran(pending.size(), 0);
    if (!pending.empty()) {
      std::mutex mu;
      std::condition_variable completion_cv;
      std::deque<std::size_t> completed;  // Task indices, completion order.
      std::size_t finished = 0;           // Tasks done, success or failure.
      std::exception_ptr error;

      runtime::ThreadPool pool{worker_threads};
      for (std::size_t t = 0; t < pending.size(); ++t) {
        pool.submit([&, t] {
          if (cancelled(options)) {
            // Cooperative cancellation: queued tasks drain without running.
            // In-flight measurements finish and journal normally; resume
            // picks up whatever subset completed.
            {
              std::lock_guard<std::mutex> lock{mu};
              ++finished;
            }
            completion_cv.notify_one();
            return;
          }
          try {
            const auto [idx, r] = pending[t];
            CLOUDREPRO_OBS_STMT(const double m_start = wall_s();)
            cells[idx].fresh();
            stats::Rng rep_rng{repetition_seed(seed, idx, r)};
            const double value = cells[idx].run_once(rep_rng);
            CLOUDREPRO_OBS_STMT(
                const double m_dur = wall_s() - m_start;
                if (h_cell_wall) h_cell_wall->observe(m_dur);
                if (c_executed) c_executed->add();
                if (tracer) {
                  tracer->complete(m_start, m_dur, "campaign", "measurement",
                                   {"cell", static_cast<double>(idx)},
                                   {"rep", static_cast<double>(r)},
                                   static_cast<std::uint32_t>(idx), 0);
                })
            std::lock_guard<std::mutex> lock{mu};
            task_values[t] = value;
            task_ran[t] = 1;
            completed.push_back(t);
            ++finished;
          } catch (...) {
            std::lock_guard<std::mutex> lock{mu};
            if (!error) error = std::current_exception();
            ++finished;
          }
          completion_cv.notify_one();
        });
      }

      std::unique_lock<std::mutex> lock{mu};
      for (;;) {
        completion_cv.wait(lock, [&] {
          return !completed.empty() || finished == pending.size();
        });
        // Queue depth at wake-up: how far the workers have run ahead of the
        // single journal writer.
        CLOUDREPRO_OBS_STMT(
            if (h_queue_depth) {
              h_queue_depth->observe(static_cast<double>(completed.size()));
            })
        while (!completed.empty()) {
          const std::size_t t = completed.front();
          completed.pop_front();
          if (journal) {
            const PendingTask task = pending[t];
            const double value = task_values[t];
            lock.unlock();
            journal->append(journal_line({task.cell, task.rep, value}) + "\n");
            lock.lock();
          }
        }
        if (finished == pending.size()) break;
      }
      const std::exception_ptr first_error = error;
      lock.unlock();
      pool.wait_idle();
      if (first_error) std::rethrow_exception(first_error);
    }

    // Assemble in grid order from journal replays and freshly executed
    // slots, reproducing the serial path's budget-cutoff semantics: the
    // first measurement that is neither replayed nor executed marks the
    // interruption point.
    std::map<std::pair<std::size_t, int>, double> fresh_values;
    for (std::size_t t = 0; t < pending.size(); ++t) {
      if (task_ran[t]) {
        fresh_values[{pending[t].cell, pending[t].rep}] = task_values[t];
      }
    }
    bool cut = false;
    for (const auto idx : result.execution_order) {
      auto& out = result.cells[idx];
      out.values.reserve(static_cast<std::size_t>(options.repetitions_per_cell));
      for (int r = 0; r < options.repetitions_per_cell; ++r) {
        if (const auto it = done.find({idx, r}); it != done.end()) {
          out.values.push_back(it->second);
          ++result.resumed_measurements;
          continue;
        }
        if (const auto it = fresh_values.find({idx, r}); it != fresh_values.end()) {
          out.values.push_back(it->second);
          continue;
        }
        cut = true;
        break;
      }
      if (cut) break;
    }
  }

  if (journal) {
    // Durability point: everything journaled so far survives a crash from
    // here on. The caller publishes the summary only after this returns, so
    // fsync-journal happens-before publish-summary.
    journal->sync();
    journal->close();
  }

  for (auto& out : result.cells) {
    if (!out.values.empty()) {
      out.summary = stats::summarize(out.values);
      out.median_ci = stats::median_ci(out.values, options.confidence);
      if (options.adaptive.enabled) {
        out.confirm_ci = stats::quantile_ci(out.values, options.adaptive.quantile,
                                            options.adaptive.confidence);
      }
    }
  }

  result.complete = true;
  for (const auto& cell : result.cells) {
    const bool at_cap = cell.values.size() ==
                        static_cast<std::size_t>(options.repetitions_per_cell);
    // An adaptively converged cell is complete at its stop point: the
    // remaining repetitions were deliberately not run, not interrupted.
    if (!at_cap && !(options.adaptive.enabled && cell.adaptive_converged)) {
      result.complete = false;
      break;
    }
  }

#if CLOUDREPRO_OBS
  if (metrics && result.resumed_measurements > 0) {
    metrics->counter("campaign.measurements_resumed")
        .add(static_cast<double>(result.resumed_measurements));
  }
  if (tracer) {
    tracer->complete(0.0, wall_s(), "campaign", "campaign",
                     {"cells", static_cast<double>(cells.size())},
                     {"reps", static_cast<double>(options.repetitions_per_cell)},
                     0, 0);
  }
  if (tracer && !options.trace_path.empty()) {
    std::ofstream out{options.trace_path};
    if (!out) {
      throw std::runtime_error{"run_campaign: cannot write trace " +
                               options.trace_path.string()};
    }
    tracer->write_chrome_json(out);
  }
  if (metrics && !options.metrics_path.empty()) {
    std::ofstream out{options.metrics_path};
    if (!out) {
      throw std::runtime_error{"run_campaign: cannot write metrics " +
                               options.metrics_path.string()};
    }
    metrics->write_json(out);
  }
#endif
  return result;
}

CampaignResult run_campaign(std::vector<CampaignCell> cells,
                            const CampaignOptions& options, stats::Rng& rng) {
  return run_campaign(std::move(cells), options, rng.next_u64());
}

void print_campaign_summary(std::ostream& os, const CampaignResult& result) {
  if (result.seed_recorded) {
    os << "campaign: seed=" << result.seed
       << " repetitions_per_cell=" << result.options.repetitions_per_cell
       << " randomize_order=" << (result.options.randomize_order ? "true" : "false")
       << " confidence=" << result.options.confidence;
    if (!result.options.journal_path.empty()) {
      os << " journal=" << result.options.journal_path.string();
    }
    if (result.resumed_measurements > 0) {
      os << " resumed=" << result.resumed_measurements;
    }
    if (!result.complete) os << " [INCOMPLETE]";
    os << '\n';
  }
  TablePrinter t{{"Config", "Treatment", "Median [95% CI]", "Mean", "CoV"}};
  for (const auto& cell : result.cells) {
    t.add_row({cell.config, cell.treatment, fmt_ci(cell.median_ci, 1),
               fmt(cell.summary.mean, 1),
               fmt_pct(cell.summary.coefficient_of_variation)});
  }
  t.print(os);
}

}  // namespace cloudrepro::core
