#include "core/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cloudrepro::core {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_{std::move(headers)} {
  if (headers_.empty()) throw std::invalid_argument{"TablePrinter: need at least one column"};
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"TablePrinter: row width does not match header"};
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      } else {
        os << std::right << std::setw(static_cast<int>(widths[c])) << cells[c];
      }
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string fmt_ci(const stats::ConfidenceInterval& ci, int precision) {
  if (!ci.valid) return fmt(ci.estimate, precision) + " [n too small]";
  return fmt(ci.estimate, precision) + " [" + fmt(ci.lower, precision) + ", " +
         fmt(ci.upper, precision) + "]";
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(100.0 * fraction, precision) + "%";
}

std::string normality_verdict(const stats::TestResult& shapiro, double alpha) {
  return shapiro.reject(alpha)
             ? "NOT normal (p=" + fmt(shapiro.p_value, 4) + ") -> use non-parametric statistics"
             : "consistent with normal (p=" + fmt(shapiro.p_value, 4) + ")";
}

std::string independence_verdict(const stats::TestResult& runs, double alpha) {
  return runs.reject(alpha)
             ? "NOT independent (p=" + fmt(runs.p_value, 4) +
                   ") -> hidden state couples runs; reset infrastructure"
             : "consistent with independence (p=" + fmt(runs.p_value, 4) + ")";
}

void print_experiment_report(std::ostream& os, const ExperimentResult& result) {
  os << "Experiment: " << result.environment << '\n';
  os << "  repetitions:        " << result.values.size()
     << (result.plan.fresh_environment_each_run ? " (fresh environment per run)"
                                                : " (reused environment)")
     << '\n';
  os << "  median [95% CI]:    " << fmt_ci(result.median_ci) << '\n';
  os << "  mean +- stddev:     " << fmt(result.summary.mean) << " +- "
     << fmt(result.summary.stddev) << '\n';
  os << "  CoV:                " << fmt_pct(result.summary.coefficient_of_variation)
     << '\n';
  os << "  min / max:          " << fmt(result.summary.min) << " / "
     << fmt(result.summary.max) << '\n';
  if (result.diagnostics_available) {
    os << "  normality:          " << normality_verdict(result.normality) << '\n';
    os << "  independence:       " << independence_verdict(result.independence) << '\n';
  }
  os << "  converged:          "
     << (result.converged() ? "yes" : "NO — run more repetitions (F5.3)") << '\n';
}

}  // namespace cloudrepro::core
