#include "core/guidelines.h"

#include <sstream>

#include "stats/ci.h"

namespace cloudrepro::core {

std::string to_string(Guideline guideline) {
  switch (guideline) {
    case Guideline::kF51_CrossCloudComparison: return "F5.1 cross-cloud comparison";
    case Guideline::kF52_BaselineFingerprint: return "F5.2 baseline fingerprint";
    case Guideline::kF53_EnoughRepetitions: return "F5.3 enough repetitions";
    case Guideline::kF54_StatisticalAssumptions: return "F5.4 statistical assumptions";
    case Guideline::kF55_ReportPlatformDetail: return "F5.5 platform detail";
  }
  return "unknown";
}

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::kAdvice: return "advice";
    case Severity::kWarning: return "WARNING";
    case Severity::kViolation: return "VIOLATION";
  }
  return "unknown";
}

std::vector<GuidelineFinding> check_guidelines(const ExperimentResult& result,
                                               const ExperimentContext& context) {
  std::vector<GuidelineFinding> findings;
  const auto add = [&](Guideline g, Severity s, std::string msg) {
    findings.push_back(GuidelineFinding{g, s, std::move(msg)});
  };

  // ---- F5.3: repetitions and confidence ------------------------------------
  const std::size_t min_n =
      stats::min_samples_for_quantile_ci(0.5, result.plan.confidence);
  if (result.values.size() < min_n) {
    add(Guideline::kF53_EnoughRepetitions, Severity::kViolation,
        "only " + std::to_string(result.values.size()) +
            " repetitions: no distribution-free median CI exists at this "
            "confidence (need >= " + std::to_string(min_n) + ")");
  } else if (!result.converged()) {
    add(Guideline::kF53_EnoughRepetitions, Severity::kWarning,
        "median CI half-width exceeds the target error bound; run more "
        "repetitions or widen the acceptable bound");
  }

  // ---- F5.4: statistical assumptions ----------------------------------------
  if (result.diagnostics_available) {
    if (result.independence.reject()) {
      add(Guideline::kF54_StatisticalAssumptions, Severity::kViolation,
          "runs test rejects independence: hidden provider state (e.g. a "
          "token-bucket budget) couples repetitions; reset infrastructure "
          "between runs and randomize order");
    }
    if (result.normality.reject()) {
      add(Guideline::kF54_StatisticalAssumptions, Severity::kAdvice,
          "sample is not normally distributed; report medians and "
          "non-parametric CIs rather than mean +- stddev");
    }
  } else {
    add(Guideline::kF54_StatisticalAssumptions, Severity::kWarning,
        "too few repetitions to even test distributional assumptions");
  }

  if (!result.plan.fresh_environment_each_run) {
    const bool budget_policy =
        context.qos.has_value() && *context.qos == QosClass::kTokenBucket;
    add(Guideline::kF54_StatisticalAssumptions,
        budget_policy ? Severity::kViolation : Severity::kWarning,
        budget_policy
            ? "environment is reused under a token-bucket policy: repetitions "
              "deplete the budget the next run starts with (the Figure 19 "
              "failure mode); create fresh VMs per run"
            : "environment is reused between runs; ensure rests are long "
              "enough for hidden state to return to neutral");
  }

  // ---- F5.2: baselines -------------------------------------------------------
  if (!context.baseline.has_value()) {
    add(Guideline::kF52_BaselineFingerprint, Severity::kWarning,
        "no baseline network fingerprint recorded; policy changes (e.g. NIC "
        "caps appearing mid-study) would be undetectable");
  } else if (context.current_fingerprint.has_value()) {
    const auto cmp =
        compare_fingerprints(*context.baseline, *context.current_fingerprint);
    if (!cmp.baselines_match()) {
      std::string what;
      if (cmp.bandwidth_drift) what += " bandwidth";
      if (cmp.latency_drift) what += " latency";
      if (cmp.qos_class_change) what += " qos-class";
      if (cmp.bucket_parameter_drift) what += " bucket-parameters";
      add(Guideline::kF52_BaselineFingerprint, Severity::kViolation,
          "baseline fingerprint no longer matches (" + what +
              " drifted); results are not comparable to the earlier ones");
    }
  }

  // ---- F5.1: cross-cloud comparisons ----------------------------------------
  if (context.compares_across_clouds) {
    add(Guideline::kF51_CrossCloudComparison, Severity::kWarning,
        "comparing network-heavy results across clouds conflates the systems "
        "under test with platform implementation choices (virtual NIC, QoS "
        "policy); use the same cloud, or frame the comparison as a "
        "sensitivity analysis");
  }

  // ---- F5.5: reporting --------------------------------------------------------
  if (result.environment.empty()) {
    add(Guideline::kF55_ReportPlatformDetail, Severity::kViolation,
        "experiment carries no environment description; publish instance "
        "type, region, and dates so future readers can detect policy drift");
  }
  return findings;
}

std::string render_findings(const std::vector<GuidelineFinding>& findings) {
  if (findings.empty()) return "All guideline checks passed.\n";
  std::ostringstream ss;
  for (const auto& f : findings) {
    ss << "[" << to_string(f.severity) << "] " << to_string(f.guideline) << ": "
       << f.message << '\n';
  }
  return ss.str();
}

}  // namespace cloudrepro::core
