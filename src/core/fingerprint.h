#pragma once

#include <filesystem>
#include <optional>
#include <string>

#include "cloud/instances.h"
#include "measure/bucket_probe.h"
#include "stats/rng.h"

namespace cloudrepro::core {

/// Black-box classification of the provider's network QoS mechanism.
enum class QosClass {
  kNone,         ///< No enforcement; stochastic contention (HPCCloud-like).
  kRateCap,      ///< Stable cap, e.g. per-core guarantee (GCE-like).
  kTokenBucket,  ///< Budget-then-throttle shaping (EC2-like).
};

std::string to_string(QosClass qos);

/// A network performance *fingerprint* — finding F5.2: "experimenters should
/// check, through micro-benchmarks, whether specific cloud resources are
/// subject to provider QoS policies ... these microbenchmarks should at a
/// minimum include base latency, base bandwidth, how latency changes with
/// foreground traffic, and the parameters to bandwidth token-buckets, if
/// they are present. When reporting experiments, always include these
/// performance fingerprints together with the actual data."
struct NetworkFingerprint {
  std::string cloud;
  std::string instance_type;

  double base_latency_ms = 0.0;       ///< Unloaded small-write RTT.
  double loaded_latency_ms = 0.0;     ///< RTT under full foreground traffic.
  double base_bandwidth_gbps = 0.0;   ///< Short-probe bandwidth (fresh VM).
  double bandwidth_cov = 0.0;         ///< CoV of repeated short probes.
  double retransmission_rate = 0.0;   ///< Under default 128 KB writes.

  QosClass qos = QosClass::kNone;
  measure::BucketProbeResult bucket;  ///< Populated when qos == kTokenBucket.
};

struct FingerprintOptions {
  int bandwidth_probes = 3;          ///< Fresh VMs probed for bandwidth.
  double bandwidth_probe_s = 300.0;  ///< Per-VM probe length (10-s samples).
  double latency_probe_s = 3.0;
  /// Sample-level bandwidth CoV below this indicates an enforced cap
  /// (GCE-style guarantees are far steadier than raw contention).
  double cap_cov_threshold = 0.03;
  measure::BucketProbeOptions bucket_probe;
};

/// Fingerprints a cloud profile with micro-benchmarks. This is the
/// experiment-setup step F5.2 asks to run "before beginning new
/// experiments".
NetworkFingerprint fingerprint_network(const cloud::CloudProfile& profile,
                                       const FingerprintOptions& options,
                                       stats::Rng& rng);

/// Comparison verdict between a stored baseline fingerprint and a fresh one
/// — F5.5: "only compare results to future experiments when these baselines
/// match".
struct FingerprintComparison {
  bool bandwidth_drift = false;
  bool latency_drift = false;
  bool qos_class_change = false;
  bool bucket_parameter_drift = false;

  bool baselines_match() const noexcept {
    return !bandwidth_drift && !latency_drift && !qos_class_change &&
           !bucket_parameter_drift;
  }
};

struct ComparisonTolerances {
  double bandwidth_rel = 0.15;   ///< Fractional bandwidth change tolerated.
  double latency_rel = 0.50;     ///< Latency is noisier; wider tolerance.
  double bucket_rel = 0.35;      ///< Bucket budget / rate drift tolerance.
};

FingerprintComparison compare_fingerprints(const NetworkFingerprint& baseline,
                                           const NetworkFingerprint& current,
                                           const ComparisonTolerances& tol = {});

/// Persistence: F5.2/F5.5 ask experimenters to *publish* their baselines
/// with their results and diff against them months later. Fingerprints
/// serialize to a plain key=value text format, stable across versions.
void save_fingerprint(const std::filesystem::path& path,
                      const NetworkFingerprint& fingerprint);

/// Loads a fingerprint saved by `save_fingerprint`. Throws on missing file
/// or malformed content.
NetworkFingerprint load_fingerprint(const std::filesystem::path& path);

}  // namespace cloudrepro::core
