#include "core/protocol.h"

#include <algorithm>
#include <ostream>

#include "core/report.h"
#include "stats/timeseries.h"

namespace cloudrepro::core {

ConfirmAnalysis windowed_median_confirm(std::span<const double> series,
                                        std::size_t window,
                                        const ConfirmOptions& options) {
  const auto medians = stats::windowed_medians(series, window);
  if (medians.empty()) {
    throw std::invalid_argument{
        "windowed_median_confirm: series shorter than one window"};
  }
  return confirm_analysis(medians, options);
}

double recommend_rest_seconds(const NetworkFingerprint& fingerprint,
                              double planned_transfer_gbit_per_run,
                              double safety_factor) {
  if (fingerprint.qos != QosClass::kTokenBucket) return 0.0;
  if (planned_transfer_gbit_per_run <= 0.0) return 0.0;
  const double replenish = fingerprint.bucket.replenish_gbps;
  if (replenish <= 0.0) return 0.0;
  return planned_transfer_gbit_per_run / replenish * safety_factor;
}

ProtocolReport run_protocol(const cloud::CloudProfile& profile, Environment& env,
                            const ProtocolOptions& options, stats::Rng& rng) {
  ProtocolReport report;

  // Step 1 (F5.2): baseline fingerprint before the experiment.
  report.baseline = fingerprint_network(profile, options.fingerprint, rng);

  // Step 2 (F5.4): plan rests so hidden state returns to neutral.
  report.recommended_rest_s = recommend_rest_seconds(
      report.baseline, options.planned_transfer_gbit_per_run);
  ExperimentPlan plan = options.plan;
  if (!plan.fresh_environment_each_run) {
    plan.rest_between_runs_s =
        std::max(plan.rest_between_runs_s, report.recommended_rest_s);
  }

  // Step 3 (F5.3): run with diagnostics.
  ExperimentRunner runner{rng.split()};
  report.result = runner.run(env, plan);

  // Step 4: CONFIRM convergence over the collected sequence.
  ConfirmOptions confirm_options;
  confirm_options.confidence = plan.confidence;
  confirm_options.error_bound = plan.target_error_bound;
  report.confirm = confirm_analysis(report.result.values, confirm_options);

  // Step 5 (F5.1-F5.5): audit.
  ExperimentContext context;
  context.baseline = report.baseline;
  context.qos = report.baseline.qos;
  report.findings = check_guidelines(report.result, context);

  bool violations = false;
  for (const auto& f : report.findings) {
    violations = violations || f.severity == Severity::kViolation;
  }
  report.reproducible = report.result.converged() && !violations &&
                        !report.confirm.ci_widened;
  return report;
}

void print_protocol_report(std::ostream& os, const ProtocolReport& report) {
  os << "=== Reproducibility protocol report ===\n\n";
  os << "Platform fingerprint (" << report.baseline.cloud << ", "
     << report.baseline.instance_type << "):\n";
  os << "  QoS class:        " << to_string(report.baseline.qos) << '\n';
  os << "  base bandwidth:   " << fmt(report.baseline.base_bandwidth_gbps)
     << " Gbps (CoV " << fmt_pct(report.baseline.bandwidth_cov) << ")\n";
  os << "  base latency:     " << fmt(report.baseline.base_latency_ms, 3) << " ms\n";
  if (report.baseline.qos == QosClass::kTokenBucket) {
    os << "  token bucket:     budget ~" << fmt(report.baseline.bucket.inferred_budget_gbit, 0)
       << " Gbit, " << fmt(report.baseline.bucket.high_rate_gbps, 1) << " -> "
       << fmt(report.baseline.bucket.low_rate_gbps, 1) << " Gbps, replenish "
       << fmt(report.baseline.bucket.replenish_gbps, 2) << " Gbit/s\n";
    os << "  recommended rest: " << fmt(report.recommended_rest_s, 0)
       << " s between runs on reused VMs\n";
  }
  os << '\n';
  print_experiment_report(os, report.result);
  os << '\n';
  if (report.confirm.repetitions_needed.has_value()) {
    os << "CONFIRM: CI within bound from repetition "
       << *report.confirm.repetitions_needed << " onward.\n";
  } else {
    os << "CONFIRM: CI never settled within the bound — run more repetitions.\n";
  }
  if (report.confirm.ci_widened) {
    os << "CONFIRM: CI WIDENED with repetitions — hidden state couples runs.\n";
  }
  os << '\n' << render_findings(report.findings);
  os << "\nOverall verdict: "
     << (report.reproducible ? "REPRODUCIBLE — publish with the fingerprint above"
                             : "NOT REPRODUCIBLE as designed — address the findings")
     << '\n';
}

}  // namespace cloudrepro::core
