#include "core/comparison.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/report.h"

namespace cloudrepro::core {

double cliffs_delta(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument{"cliffs_delta: empty sample"};
  }
  long long wins = 0;
  long long losses = 0;
  for (const double x : a) {
    for (const double y : b) {
      if (x < y) ++wins;
      if (x > y) ++losses;
    }
  }
  const auto pairs = static_cast<double>(a.size()) * static_cast<double>(b.size());
  return (static_cast<double>(wins) - static_cast<double>(losses)) / pairs;
}

EffectSize interpret_cliffs_delta(double delta) noexcept {
  const double m = std::fabs(delta);
  if (m < 0.147) return EffectSize::kNegligible;
  if (m < 0.33) return EffectSize::kSmall;
  if (m < 0.474) return EffectSize::kMedium;
  return EffectSize::kLarge;
}

std::string to_string(EffectSize effect) {
  switch (effect) {
    case EffectSize::kNegligible: return "negligible";
    case EffectSize::kSmall: return "small";
    case EffectSize::kMedium: return "medium";
    case EffectSize::kLarge: return "large";
  }
  return "unknown";
}

ComparisonVerdict compare_systems(std::span<const double> a,
                                  std::span<const double> b, double alpha,
                                  double confidence) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument{"compare_systems: empty sample"};
  }
  ComparisonVerdict v;
  v.median_a = stats::median_ci(a, confidence);
  v.median_b = stats::median_ci(b, confidence);
  if (v.median_a.estimate != 0.0) {
    v.median_ratio = v.median_b.estimate / v.median_a.estimate;
  }
  v.mann_whitney = stats::mann_whitney_u(a, b);
  v.cliffs_delta = cliffs_delta(a, b);
  v.a_faster = v.median_a.estimate < v.median_b.estimate;
  v.cis_overlap = !(v.median_a.valid && v.median_b.valid) ||
                  (v.median_a.lower <= v.median_b.upper &&
                   v.median_b.lower <= v.median_a.upper);
  v.significant =
      v.median_a.valid && v.median_b.valid && v.mann_whitney.reject(alpha);
  return v;
}

std::string ComparisonVerdict::summary() const {
  std::ostringstream ss;
  if (!median_a.valid || !median_b.valid) {
    ss << "INCONCLUSIVE: too few repetitions for valid median CIs ("
       << "A " << fmt_ci(median_a) << " vs B " << fmt_ci(median_b) << ")";
    return ss.str();
  }
  if (!significant) {
    ss << "NO SIGNIFICANT DIFFERENCE (p=" << fmt(mann_whitney.p_value, 3)
       << "): A " << fmt_ci(median_a) << " vs B " << fmt_ci(median_b);
    return ss.str();
  }
  ss << (a_faster ? "A faster" : "B faster") << " by "
     << fmt(100.0 * std::fabs(median_ratio - 1.0), 1) << "% (p="
     << fmt(mann_whitney.p_value, 4) << ", effect "
     << to_string(interpret_cliffs_delta(cliffs_delta)) << ")";
  if (cis_overlap) ss << " [caution: median CIs overlap]";
  return ss.str();
}

}  // namespace cloudrepro::core
