#include "core/fingerprint.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "measure/iperf.h"
#include "measure/patterns.h"
#include "measure/rtt.h"
#include "stats/descriptive.h"

namespace cloudrepro::core {

std::string to_string(QosClass qos) {
  switch (qos) {
    case QosClass::kNone: return "none (stochastic contention)";
    case QosClass::kRateCap: return "rate cap (per-core style)";
    case QosClass::kTokenBucket: return "token bucket";
  }
  return "unknown";
}

NetworkFingerprint fingerprint_network(const cloud::CloudProfile& profile,
                                       const FingerprintOptions& options,
                                       stats::Rng& rng) {
  NetworkFingerprint fp;
  fp.cloud = cloud::to_string(profile.type().provider);
  fp.instance_type = profile.type().name;

  // 1) Base latency: a small-write probe on a fresh VM keeps queues shallow.
  {
    auto vm = profile.create_vm(rng);
    measure::RttProbeOptions probe;
    probe.duration_s = options.latency_probe_s;
    probe.write_bytes = 4096.0;
    fp.base_latency_ms = measure::run_rtt_probe(vm, probe, rng).analysis.median_rtt_ms;
  }

  // 2) Loaded latency + retransmissions: the default big-write iperf stream.
  {
    auto vm = profile.create_vm(rng);
    measure::RttProbeOptions probe;
    probe.duration_s = options.latency_probe_s;
    probe.write_bytes = 128.0 * 1024.0;
    const auto result = measure::run_rtt_probe(vm, probe, rng);
    fp.loaded_latency_ms = result.analysis.median_rtt_ms;
    fp.retransmission_rate = result.analysis.retransmission_rate;
  }

  // 3) Base bandwidth: full-speed probes on fresh VMs, pooled at the
  // 10-second sample level. Sample-level CoV separates enforced caps
  // (GCE-steady) from raw contention (HPCCloud-noisy).
  std::vector<double> samples;
  for (int i = 0; i < options.bandwidth_probes; ++i) {
    auto vm = profile.create_vm(rng);
    measure::BandwidthProbeOptions probe;
    probe.duration_s = options.bandwidth_probe_s;
    probe.sample_interval_s = 10.0;
    const auto trace =
        measure::run_bandwidth_probe(vm, measure::full_speed(), probe, rng);
    const auto bw = trace.bandwidths();
    samples.insert(samples.end(), bw.begin(), bw.end());
  }
  fp.base_bandwidth_gbps = stats::median(samples);
  fp.bandwidth_cov = stats::coefficient_of_variation(samples);

  // 4) Token-bucket identification on one more fresh VM.
  fp.bucket = measure::identify_token_bucket(profile, options.bucket_probe, rng);

  if (fp.bucket.bucket_detected) {
    fp.qos = QosClass::kTokenBucket;
  } else if (fp.bandwidth_cov < options.cap_cov_threshold) {
    fp.qos = QosClass::kRateCap;
  } else {
    fp.qos = QosClass::kNone;
  }
  return fp;
}

namespace {

bool drifted(double baseline, double current, double rel_tolerance) {
  if (baseline == 0.0) return current != 0.0;
  return std::fabs(current - baseline) / std::fabs(baseline) > rel_tolerance;
}

}  // namespace

FingerprintComparison compare_fingerprints(const NetworkFingerprint& baseline,
                                           const NetworkFingerprint& current,
                                           const ComparisonTolerances& tol) {
  FingerprintComparison cmp;
  cmp.bandwidth_drift =
      drifted(baseline.base_bandwidth_gbps, current.base_bandwidth_gbps, tol.bandwidth_rel);
  cmp.latency_drift =
      drifted(baseline.base_latency_ms, current.base_latency_ms, tol.latency_rel);
  cmp.qos_class_change = baseline.qos != current.qos;
  if (baseline.qos == QosClass::kTokenBucket && current.qos == QosClass::kTokenBucket) {
    cmp.bucket_parameter_drift =
        drifted(baseline.bucket.high_rate_gbps, current.bucket.high_rate_gbps,
                tol.bucket_rel) ||
        drifted(baseline.bucket.low_rate_gbps, current.bucket.low_rate_gbps,
                tol.bucket_rel) ||
        drifted(baseline.bucket.inferred_budget_gbit, current.bucket.inferred_budget_gbit,
                tol.bucket_rel);
  }
  return cmp;
}


namespace {

const char* qos_token(QosClass qos) {
  switch (qos) {
    case QosClass::kNone: return "none";
    case QosClass::kRateCap: return "rate_cap";
    case QosClass::kTokenBucket: return "token_bucket";
  }
  return "none";
}

QosClass parse_qos_token(const std::string& token) {
  if (token == "token_bucket") return QosClass::kTokenBucket;
  if (token == "rate_cap") return QosClass::kRateCap;
  if (token == "none") return QosClass::kNone;
  throw std::runtime_error{"load_fingerprint: unknown qos class '" + token + "'"};
}

}  // namespace

void save_fingerprint(const std::filesystem::path& path,
                      const NetworkFingerprint& fp) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"save_fingerprint: cannot write " + path.string()};
  }
  out.precision(12);
  out << "format=cloudrepro-fingerprint-v1\n";
  out << "cloud=" << fp.cloud << "\n";
  out << "instance_type=" << fp.instance_type << "\n";
  out << "base_latency_ms=" << fp.base_latency_ms << "\n";
  out << "loaded_latency_ms=" << fp.loaded_latency_ms << "\n";
  out << "base_bandwidth_gbps=" << fp.base_bandwidth_gbps << "\n";
  out << "bandwidth_cov=" << fp.bandwidth_cov << "\n";
  out << "retransmission_rate=" << fp.retransmission_rate << "\n";
  out << "qos=" << qos_token(fp.qos) << "\n";
  out << "bucket_detected=" << (fp.bucket.bucket_detected ? 1 : 0) << "\n";
  out << "bucket_time_to_empty_s=" << fp.bucket.time_to_empty_s << "\n";
  out << "bucket_high_rate_gbps=" << fp.bucket.high_rate_gbps << "\n";
  out << "bucket_low_rate_gbps=" << fp.bucket.low_rate_gbps << "\n";
  out << "bucket_replenish_gbps=" << fp.bucket.replenish_gbps << "\n";
  out << "bucket_budget_gbit=" << fp.bucket.inferred_budget_gbit << "\n";
}

NetworkFingerprint load_fingerprint(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"load_fingerprint: cannot open " + path.string()};
  }
  std::map<std::string, std::string> kv;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error{"load_fingerprint: malformed line: " + line};
    }
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  if (kv["format"] != "cloudrepro-fingerprint-v1") {
    throw std::runtime_error{"load_fingerprint: unrecognized format"};
  }
  const auto number = [&](const char* key) {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      throw std::runtime_error{std::string{"load_fingerprint: missing key "} + key};
    }
    return std::stod(it->second);
  };
  NetworkFingerprint fp;
  fp.cloud = kv["cloud"];
  fp.instance_type = kv["instance_type"];
  fp.base_latency_ms = number("base_latency_ms");
  fp.loaded_latency_ms = number("loaded_latency_ms");
  fp.base_bandwidth_gbps = number("base_bandwidth_gbps");
  fp.bandwidth_cov = number("bandwidth_cov");
  fp.retransmission_rate = number("retransmission_rate");
  fp.qos = parse_qos_token(kv["qos"]);
  fp.bucket.bucket_detected = number("bucket_detected") != 0.0;
  fp.bucket.time_to_empty_s = number("bucket_time_to_empty_s");
  fp.bucket.high_rate_gbps = number("bucket_high_rate_gbps");
  fp.bucket.low_rate_gbps = number("bucket_low_rate_gbps");
  fp.bucket.replenish_gbps = number("bucket_replenish_gbps");
  fp.bucket.inferred_budget_gbit = number("bucket_budget_gbit");
  return fp;
}

}  // namespace cloudrepro::core
