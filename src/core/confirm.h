#pragma once

#include <optional>
#include <span>
#include <vector>

#include "stats/ci.h"
#include "stats/streaming.h"

namespace cloudrepro::core {

/// CONFIRM analysis (Maricq et al. [46], used by the paper in Figures 13
/// and 19): given a sequence of measurements, track how the non-parametric
/// confidence interval of a quantile evolves as repetitions accumulate, and
/// predict how many repetitions are needed before the CI falls within a
/// desired error bound around the estimate.
///
/// Under i.i.d. sampling the CI tightens monotonically (Figure 13; Q82 in
/// Figure 19). When hidden state couples the runs — a draining token
/// bucket — the CI can instead *widen* with more repetitions (Q65 in
/// Figure 19), the tell-tale the paper uses to detect broken independence.
struct ConfirmPoint {
  std::size_t repetitions = 0;
  double estimate = 0.0;      ///< Quantile estimate over the first n runs.
  double ci_lower = 0.0;
  double ci_upper = 0.0;
  bool ci_valid = false;
  bool within_bound = false;  ///< CI half-width within the error bound.
};

struct ConfirmOptions {
  double quantile = 0.5;       ///< Median by default; 0.9 for tail analyses.
  double confidence = 0.95;
  double error_bound = 0.01;   ///< 1% in Figure 13, 10% in Figure 19.

  /// Worker threads for the per-prefix CI computation (the O(N^2) part of
  /// the analysis): 1 = serial, 0 = hardware concurrency. Every prefix's CI
  /// is an independent pure function of the data, so the analysis is
  /// bit-identical across thread counts.
  int threads = 1;
};

struct ConfirmAnalysis {
  std::vector<ConfirmPoint> points;  ///< One per prefix length n = 1..N.

  /// Smallest n from which the CI half-width stays within the bound for
  /// every longer prefix in the data; nullopt if never achieved.
  std::optional<std::size_t> repetitions_needed;

  /// True when the CI width grew from one prefix to a longer one by more
  /// than numerical noise — the broken-independence signature.
  bool ci_widened = false;

  /// Final-prefix point (full data).
  const ConfirmPoint& final_point() const { return points.back(); }
};

/// Runs the analysis over the measurement sequence in collection order
/// (order matters: the whole point is detecting sequence effects).
ConfirmAnalysis confirm_analysis(std::span<const double> measurements,
                                 const ConfirmOptions& options = {});

/// Convenience: repetitions needed for a median CI within `error_bound`,
/// or nullopt if the data never converges.
std::optional<std::size_t> repetitions_for_bound(std::span<const double> measurements,
                                                 double error_bound,
                                                 double confidence = 0.95);

/// CONFIRM's forward *prediction*: how many repetitions will be required
/// for the CI to reach the bound, extrapolating beyond the data in hand.
///
/// Under i.i.d. sampling the non-parametric CI half-width shrinks like
/// c / sqrt(n); the predictor fits c on the observed prefix widths and
/// solves for the n that meets the bound. This is what lets an
/// experimenter budget a campaign after a pilot of 15-20 runs instead of
/// discovering at run 100 that the bound is still out of reach.
struct ConfirmPrediction {
  /// Predicted repetitions to reach the bound (>= the pilot size).
  std::size_t predicted_repetitions = 0;
  /// The fitted c in half_width(n) ~= c / sqrt(n), relative to the median.
  double fitted_coefficient = 0.0;
  /// False when the pilot is unusable (too small, zero median, or the
  /// sequence is visibly non-i.i.d. so the sqrt-law does not apply).
  bool reliable = false;
};

ConfirmPrediction predict_repetitions(std::span<const double> pilot,
                                      const ConfirmOptions& options = {});

/// Adaptive CONFIRM stopping: run a campaign cell *until* its quantile-CI
/// relative half-width meets the error bound (the paper's actual protocol)
/// instead of a fixed repetition count. Disabled by default; the campaign
/// engine treats `repetitions_per_cell` as a hard cap when enabled.
struct AdaptiveConfirmOptions {
  bool enabled = false;
  double quantile = 0.5;
  double confidence = 0.95;
  double error_bound = 0.01;
  /// Never stop before this many repetitions even if the bound is already
  /// met (0 = stop as soon as the CI allows).
  std::size_t min_repetitions = 0;
};

/// Streaming evaluator of the adaptive stopping rule for one campaign cell.
///
/// Feeds each measurement into an exact `QuantileReservoir` and reports
/// convergence as soon as the non-parametric CI is valid, non-degenerate
/// (estimate != 0 — a zero quantile can never satisfy a relative bound),
/// within the bound, and past `min_repetitions`. Convergence is sticky: the
/// decision is made once, at the first qualifying repetition, so replaying
/// the same value sequence always stops at the same repetition — which is
/// what makes the journaled stop record reproducible.
class ConfirmMonitor {
 public:
  explicit ConfirmMonitor(const AdaptiveConfirmOptions& options);

  /// Feeds one measurement; returns true once the stopping rule is met.
  bool add(double value);

  bool converged() const noexcept { return converged_; }
  /// Repetition count at which the rule was first met (0 if not yet).
  std::size_t stop_repetitions() const noexcept { return stop_repetitions_; }
  std::size_t count() const noexcept { return sketch_.count(); }
  /// CI over the measurements seen so far (invalid until the sample is
  /// large enough for the order-statistic interval to exist).
  stats::ConfidenceInterval ci() const;

 private:
  AdaptiveConfirmOptions options_;
  stats::QuantileReservoir sketch_;
  bool converged_ = false;
  std::size_t stop_repetitions_ = 0;
};

}  // namespace cloudrepro::core
