#pragma once

#include <optional>
#include <span>
#include <vector>

#include "stats/ci.h"

namespace cloudrepro::core {

/// CONFIRM analysis (Maricq et al. [46], used by the paper in Figures 13
/// and 19): given a sequence of measurements, track how the non-parametric
/// confidence interval of a quantile evolves as repetitions accumulate, and
/// predict how many repetitions are needed before the CI falls within a
/// desired error bound around the estimate.
///
/// Under i.i.d. sampling the CI tightens monotonically (Figure 13; Q82 in
/// Figure 19). When hidden state couples the runs — a draining token
/// bucket — the CI can instead *widen* with more repetitions (Q65 in
/// Figure 19), the tell-tale the paper uses to detect broken independence.
struct ConfirmPoint {
  std::size_t repetitions = 0;
  double estimate = 0.0;      ///< Quantile estimate over the first n runs.
  double ci_lower = 0.0;
  double ci_upper = 0.0;
  bool ci_valid = false;
  bool within_bound = false;  ///< CI half-width within the error bound.
};

struct ConfirmOptions {
  double quantile = 0.5;       ///< Median by default; 0.9 for tail analyses.
  double confidence = 0.95;
  double error_bound = 0.01;   ///< 1% in Figure 13, 10% in Figure 19.

  /// Worker threads for the per-prefix CI computation (the O(N^2) part of
  /// the analysis): 1 = serial, 0 = hardware concurrency. Every prefix's CI
  /// is an independent pure function of the data, so the analysis is
  /// bit-identical across thread counts.
  int threads = 1;
};

struct ConfirmAnalysis {
  std::vector<ConfirmPoint> points;  ///< One per prefix length n = 1..N.

  /// Smallest n from which the CI half-width stays within the bound for
  /// every longer prefix in the data; nullopt if never achieved.
  std::optional<std::size_t> repetitions_needed;

  /// True when the CI width grew from one prefix to a longer one by more
  /// than numerical noise — the broken-independence signature.
  bool ci_widened = false;

  /// Final-prefix point (full data).
  const ConfirmPoint& final_point() const { return points.back(); }
};

/// Runs the analysis over the measurement sequence in collection order
/// (order matters: the whole point is detecting sequence effects).
ConfirmAnalysis confirm_analysis(std::span<const double> measurements,
                                 const ConfirmOptions& options = {});

/// Convenience: repetitions needed for a median CI within `error_bound`,
/// or nullopt if the data never converges.
std::optional<std::size_t> repetitions_for_bound(std::span<const double> measurements,
                                                 double error_bound,
                                                 double confidence = 0.95);

/// CONFIRM's forward *prediction*: how many repetitions will be required
/// for the CI to reach the bound, extrapolating beyond the data in hand.
///
/// Under i.i.d. sampling the non-parametric CI half-width shrinks like
/// c / sqrt(n); the predictor fits c on the observed prefix widths and
/// solves for the n that meets the bound. This is what lets an
/// experimenter budget a campaign after a pilot of 15-20 runs instead of
/// discovering at run 100 that the bound is still out of reach.
struct ConfirmPrediction {
  /// Predicted repetitions to reach the bound (>= the pilot size).
  std::size_t predicted_repetitions = 0;
  /// The fitted c in half_width(n) ~= c / sqrt(n), relative to the median.
  double fitted_coefficient = 0.0;
  /// False when the pilot is unusable (too small, zero median, or the
  /// sequence is visibly non-i.i.d. so the sqrt-law does not apply).
  bool reliable = false;
};

ConfirmPrediction predict_repetitions(std::span<const double> pilot,
                                      const ConfirmOptions& options = {});

}  // namespace cloudrepro::core
