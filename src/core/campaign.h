#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/confirm.h"
#include "core/experiment.h"
#include "stats/hypothesis.h"

namespace cloudrepro::io {
class Vfs;
}  // namespace cloudrepro::io

namespace cloudrepro::obs {
class MetricsRegistry;
class Tracer;
}  // namespace cloudrepro::obs

namespace cloudrepro::runtime {
class ThreadPool;
}  // namespace cloudrepro::runtime

namespace cloudrepro::core {

/// Experiment campaigns: a grid of configurations, each run as a full
/// experiment, executed in randomized order (F5.4: "randomizing experiment
/// order is a useful technique for avoiding self-interference") with
/// resets between cells, and reported with the statistics the paper's
/// survey found missing.
///
/// This is the production version of what the Figure 16/17 benches do
/// inline: sweep (workload x budget), run N repetitions each, and publish
/// median + CI + variability per cell plus cross-cell significance.
///
/// Campaigns are resumable: with a `journal_path` set, every completed
/// measurement is appended to a JSONL journal as soon as it finishes. A
/// re-run pointed at the same journal replays the completed (cell,
/// repetition) entries and executes only the remainder. Because each
/// repetition draws from its own seed-derived RNG stream, a resumed
/// campaign is bit-identical to one that ran uninterrupted — long cloud
/// sweeps survive spot revocations of the *driver* node too.

/// One cell of the grid: a label and a factory that produces a measurement
/// function after the environment has been configured for this cell.
struct CampaignCell {
  std::string config;    ///< E.g. the workload name ("TS", "Q65").
  std::string treatment; ///< E.g. the budget level ("budget=100").

  /// Prepares the environment for this cell (set budgets, choose workload)
  /// and returns the per-repetition measurement.
  std::function<double(stats::Rng&)> run_once;

  /// Resets hidden state before each repetition of this cell.
  std::function<void()> fresh;
};

struct CampaignOptions {
  int repetitions_per_cell = 10;
  bool randomize_order = true;
  double confidence = 0.95;

  /// When non-empty, completed measurements are journaled here (JSONL) and
  /// an existing journal written by the same (seed, options, cells) is
  /// resumed instead of re-executed.
  std::filesystem::path journal_path{};

  /// Stop after executing this many *new* measurements (0 = unlimited).
  /// The journal keeps what completed; a later run resumes the rest. Tests
  /// use this to interrupt a campaign after an arbitrary prefix.
  int max_measurements = 0;

  /// Worker threads executing (cell, repetition) tasks: 1 (the default) is
  /// the serial reference path, 0 means hardware concurrency, N > 1 runs N
  /// workers. Because every repetition draws from its own seed-derived RNG
  /// stream and results land in pre-assigned grid slots, the result —
  /// values, summaries, CSV, journal-resumable state — is bit-identical
  /// across thread counts. The thread count is deliberately *not* part of
  /// the journal header: a campaign interrupted at threads=8 resumes
  /// correctly at threads=1 and vice versa.
  ///
  /// With threads > 1 the cell callables run concurrently (possibly several
  /// repetitions of the same cell at once), so `run_once`/`fresh` must not
  /// share unsynchronized mutable state — build per-repetition state inside
  /// the callables instead of capturing a shared cluster/engine.
  int threads = 1;

  /// External worker pool: when set, (cell, repetition) tasks are submitted
  /// to this pool instead of a campaign-private one and `threads` is
  /// ignored. This is how `cloudrepro suite` runs several campaigns against
  /// one shared thread budget — the pool's work-stealing deques heal the
  /// imbalance when one member's cells finish early. The campaign never
  /// calls `wait_idle` on an external pool (other campaigns' tasks may be in
  /// flight); it tracks its own completion counts. Like `threads`, the pool
  /// is not part of the journal header: scheduling never changes what a
  /// campaign computes.
  runtime::ThreadPool* pool = nullptr;

  /// Adaptive CONFIRM stopping: when enabled, each cell runs until its
  /// quantile-CI relative half-width meets `adaptive.error_bound` (evaluated
  /// by a `ConfirmMonitor` after every repetition, in repetition order) or
  /// `repetitions_per_cell` is reached — the cap, not a target. The stop
  /// decision is journaled as a stop record and the adaptive parameters are
  /// part of the journal header, so resume replays the same decision
  /// bit-identically across thread counts and cache state. With threads > 1
  /// each *cell* becomes one sequential task (repetitions of a cell cannot
  /// be speculated past an unknown stop point), so parallelism is across
  /// cells.
  AdaptiveConfirmOptions adaptive;

  /// Cooperative cancellation (the CLI's SIGINT/SIGTERM path): when set and
  /// it becomes true, no *new* measurement starts; measurements already in
  /// flight complete and are journaled, and the result reports
  /// `complete = false`, exactly like `max_measurements` exhaustion. A
  /// later run resumes the remainder bit-identically. Not part of the
  /// journal header: cancellation changes when a campaign stops, never what
  /// it computes.
  const std::atomic<bool>* cancel = nullptr;

  /// Filesystem the journal is read, truncated, and appended through;
  /// null = the real filesystem. The injection point for `io::FaultVfs`
  /// crash/ENOSPC/torn-write torture. Also excluded from the journal
  /// header.
  io::Vfs* vfs = nullptr;

  // --- Observability (src/obs) -------------------------------------------
  // None of these participate in the journal header: instrumentation does
  // not change what a campaign computes, so a journal written with tracing
  // on resumes with tracing off and vice versa.

  /// When non-empty, the campaign writes a chrome://tracing-loadable
  /// trace_event JSON file here on completion.
  std::filesystem::path trace_path{};

  /// When non-empty, the campaign writes a metrics-registry JSON snapshot
  /// here on completion.
  std::filesystem::path metrics_path{};

  /// External sinks. When null and the corresponding path above is set, the
  /// campaign creates (and owns) its own. Campaign instrumentation records
  /// per-measurement wall-time spans (lane = cell index, track 0), a
  /// `campaign.cell_wall_s` histogram, the journal-writer backlog as
  /// `campaign.journal_queue_depth` (the combined occupancy of the
  /// per-worker SPSC handoff rings, sampled each time the writer wakes —
  /// the key predates the ring handoff and is kept for dashboard
  /// continuity), and `campaign.measurements_executed` /
  /// `campaign.measurements_resumed` counters. Ignored when CLOUDREPRO_OBS compiles instrumentation out.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct CampaignCellResult {
  std::string config;
  std::string treatment;
  std::vector<double> values;
  stats::Summary summary;
  stats::ConfidenceInterval median_ci;

  // --- Adaptive CONFIRM outcome (meaningful only when the campaign ran
  // --- with options.adaptive.enabled) ------------------------------------
  /// True when the stopping rule was met before the repetition cap.
  bool adaptive_converged = false;
  /// Repetitions at which the rule was met (0 if never).
  std::size_t stop_repetitions = 0;
  /// The stopping-rule CI (options.adaptive quantile/confidence) over the
  /// final values; its `confidence` is the achieved coverage.
  stats::ConfidenceInterval confirm_ci;
};

struct CampaignResult {
  std::vector<CampaignCellResult> cells;  ///< In grid (not execution) order.
  std::vector<std::size_t> execution_order;

  /// Provenance (F5.5 "publish as much detail as possible"): the master
  /// seed and options that produced this result, so it can be re-derived
  /// from its own report.
  std::uint64_t seed = 0;
  bool seed_recorded = false;
  CampaignOptions options;

  /// False when `max_measurements` stopped the campaign before every
  /// (cell, repetition) had a value.
  bool complete = true;

  /// Measurements replayed from the journal rather than executed.
  std::size_t resumed_measurements = 0;

  /// Cells grouped by config, for per-config treatment comparisons.
  std::vector<std::size_t> cells_for(const std::string& config) const;

  /// Kruskal-Wallis across all treatments of one config: does the treatment
  /// (e.g. token budget) significantly affect this config at all?
  stats::TestResult treatment_effect(const std::string& config) const;

  /// Writes the long-format results table as CSV
  /// (config,treatment,repetition,value).
  void write_csv(std::ostream& os) const;
};

/// The RNG stream seed for one (cell, repetition) of a campaign with master
/// seed `master`. This is the contract that makes campaign values a pure
/// function of (cells, options, seed): resume, thread count, and — via
/// src/shard — the worker process a repetition lands on never change what it
/// computes. Exposed so shard workers derive exactly the streams
/// `run_campaign` would.
std::uint64_t campaign_repetition_seed(std::uint64_t master, std::size_t cell,
                                       int rep) noexcept;

/// The cell visit order `run_campaign` derives from (seed,
/// options.randomize_order): a seed-keyed permutation when randomizing, else
/// identity. The canonical journal's records appear in this order, which is
/// what a sharded merge must reproduce byte-for-byte.
std::vector<std::size_t> campaign_execution_order(std::size_t cell_count,
                                                  const CampaignOptions& options,
                                                  std::uint64_t seed);

/// Runs the campaign from a master seed. Execution order and every
/// repetition's RNG stream are derived from (seed, cell index, repetition),
/// so the result is a pure function of (cells, options, seed) — including
/// across interrupt/resume cycles through `options.journal_path`. Each
/// repetition calls the cell's `fresh()` first, so every measurement starts
/// from known conditions; cells are visited in randomized order when
/// requested.
CampaignResult run_campaign(std::vector<CampaignCell> cells,
                            const CampaignOptions& options, std::uint64_t seed);

/// Legacy entry point: draws the master seed from `rng` and delegates.
CampaignResult run_campaign(std::vector<CampaignCell> cells,
                            const CampaignOptions& options, stats::Rng& rng);

/// Renders the provenance line (seed, options, resume state) and the
/// per-cell summary table.
void print_campaign_summary(std::ostream& os, const CampaignResult& result);

}  // namespace cloudrepro::core
