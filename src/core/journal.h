#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.h"

namespace cloudrepro::io {
class Vfs;
}  // namespace cloudrepro::io

namespace cloudrepro::core {

/// The campaign journal's record layer: one JSONL line per completed
/// measurement, each carrying a CRC-32 of its own payload. The checksum is
/// what turns "a crash may keep any byte prefix" (io::Vfs's durability
/// model) into "resume sees exactly the records that were fully written":
/// replay accepts records until the first malformed or checksum-failing
/// line and truncates the rest — a torn or bit-rotted *tail* costs only the
/// measurements it held, never the whole entry.
///
/// Format (version 2 — version 1 had no checksums):
///   line 1:  the verbatim header from `journal_header` below
///   line 2+: {"cell":C,"rep":R,"value":V,"crc":"xxxxxxxx"}\n
///        or: {"cell":C,"stop":N,"crc":"xxxxxxxx"}\n
/// where crc is crc32_hex of the bytes before `,"crc"`. A record is valid
/// only when newline-terminated; an unterminated final line re-runs.
///
/// A stop record journals an adaptive CONFIRM stop decision: cell C met its
/// CI bound after N repetitions, so reps N..cap were never run. Journaling
/// the *decision* (not just the absence of further values) is what keeps
/// resume bit-identical: a resumed campaign replays the stop instead of
/// re-evaluating the rule against a possibly different execution schedule.

/// The journal's inputs do not match this campaign (different seed,
/// options, or cell grid — or a corrupted header). Distinct from plain
/// runtime_error/IoError so callers can evict-and-retry on a mismatch
/// without swallowing real I/O failures like ENOSPC.
class JournalMismatch : public std::runtime_error {
 public:
  explicit JournalMismatch(const std::string& what) : std::runtime_error(what) {}
};

struct JournalRecord {
  enum class Kind { kValue, kStop };

  std::size_t cell = 0;
  /// Repetition index for kValue; the stop repetition count for kStop.
  int rep = 0;
  double value = 0.0;
  /// Appended after the original fields so existing aggregate initializers
  /// ({cell, rep, value}) keep meaning what they meant.
  Kind kind = Kind::kValue;
};

/// Convenience constructor for an adaptive stop record.
inline JournalRecord journal_stop_record(std::size_t cell, int stop_repetitions) {
  return {cell, stop_repetitions, 0.0, JournalRecord::Kind::kStop};
}

/// Doubles formatted with 17 significant digits — the shortest length
/// guaranteed to round-trip an IEEE binary64 exactly, which the
/// resume-equals-uninterrupted property depends on.
std::string journal_fmt_double(double value);

/// The header line: everything the campaign is a function of (seed,
/// options, cell grid). Resume compares it verbatim.
std::string journal_header(const std::vector<CampaignCell>& cells,
                           const CampaignOptions& options, std::uint64_t seed);

/// One checksummed record line (no trailing newline).
std::string journal_line(const JournalRecord& record);

/// Strict parse + checksum verification; false on any malformation.
bool parse_journal_line(const std::string& line, JournalRecord& out);

struct JournalReplay {
  /// Completed (cell, repetition) -> value, from the valid record prefix.
  std::map<std::pair<std::size_t, int>, double> done;
  /// Journaled adaptive stop decisions: cell -> stop repetition count.
  std::map<std::size_t, int> stops;
  /// Byte length of the valid prefix (header + intact records, including
  /// their newlines). Appending must continue from here.
  std::uintmax_t valid_bytes = 0;
  /// True when bytes beyond `valid_bytes` existed (torn or corrupt tail);
  /// the caller truncates to `valid_bytes` before appending.
  bool corrupt_tail = false;
};

/// Replays a journal through `vfs`, accepting the longest valid prefix.
/// Throws JournalMismatch when the header differs from `expected_header` or
/// a checksummed record is out of range for (cell_count, repetitions) —
/// both mean the journal belongs to a different campaign, not that bytes
/// were lost. An absent or empty file replays as zero records.
JournalReplay replay_journal(io::Vfs& vfs, const std::filesystem::path& path,
                             const std::string& expected_header,
                             std::size_t cell_count, int repetitions);

}  // namespace cloudrepro::core
