#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/fingerprint.h"

namespace cloudrepro::core {

/// The paper's five summary findings (Section 5), encoded as checkable
/// guidelines.
enum class Guideline {
  kF51_CrossCloudComparison,  ///< Network-heavy results don't transfer across clouds.
  kF52_BaselineFingerprint,   ///< Establish and verify baselines.
  kF53_EnoughRepetitions,     ///< Stochastic noise needs many repetitions.
  kF54_StatisticalAssumptions,///< Test iid/normality; reset hidden state.
  kF55_ReportPlatformDetail,  ///< Policies change; publish setup details.
};

std::string to_string(Guideline guideline);

enum class Severity { kAdvice, kWarning, kViolation };

std::string to_string(Severity severity);

struct GuidelineFinding {
  Guideline guideline;
  Severity severity = Severity::kAdvice;
  std::string message;
};

/// Context the checker cannot infer from the result alone.
struct ExperimentContext {
  /// Results will be compared against numbers from a different cloud.
  bool compares_across_clouds = false;

  /// A baseline fingerprint was taken before the experiment.
  std::optional<NetworkFingerprint> baseline;

  /// A fresh fingerprint taken alongside the experiment, to diff against
  /// the baseline.
  std::optional<NetworkFingerprint> current_fingerprint;

  /// The environment's QoS class, if known (e.g. from the fingerprint).
  std::optional<QosClass> qos;
};

/// Audits an experiment against the paper's guidelines and returns every
/// finding (empty = fully clean).
std::vector<GuidelineFinding> check_guidelines(const ExperimentResult& result,
                                               const ExperimentContext& context = {});

/// Renders findings to a human-readable block.
std::string render_findings(const std::vector<GuidelineFinding>& findings);

}  // namespace cloudrepro::core
