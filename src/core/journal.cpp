#include "core/journal.h"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "io/checksum.h"
#include "io/vfs.h"

namespace cloudrepro::core {

namespace {

constexpr std::string_view kCrcTag = ",\"crc\":\"";

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Minimal field extraction for our own journal records (no JSON library in
/// the image; the format is machine-written, and the checksum already vouches
/// for the bytes).
bool extract_field(const std::string& text, const std::string& key,
                   std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  auto end = text.find_first_of(",}", start);
  if (end == std::string::npos) end = text.size();
  out = text.substr(start, end - start);
  return !out.empty();
}

}  // namespace

std::string journal_fmt_double(double value) {
  std::ostringstream ss;
  ss << std::setprecision(17) << value;
  return ss.str();
}

std::string journal_header(const std::vector<CampaignCell>& cells,
                           const CampaignOptions& options, std::uint64_t seed) {
  std::ostringstream ss;
  ss << "{\"type\":\"campaign-journal\",\"version\":2,\"seed\":" << seed
     << ",\"repetitions_per_cell\":" << options.repetitions_per_cell
     << ",\"randomize_order\":" << (options.randomize_order ? "true" : "false")
     << ",\"confidence\":" << journal_fmt_double(options.confidence);
  if (options.adaptive.enabled) {
    // Adaptive parameters change which measurements run, so they are part
    // of what the campaign is a function of. Appended only when enabled so
    // every pre-existing (non-adaptive) journal still matches its header.
    ss << ",\"adaptive\":{\"quantile\":" << journal_fmt_double(options.adaptive.quantile)
       << ",\"confidence\":" << journal_fmt_double(options.adaptive.confidence)
       << ",\"error_bound\":" << journal_fmt_double(options.adaptive.error_bound)
       << ",\"min_repetitions\":" << options.adaptive.min_repetitions << "}";
  }
  ss << ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) ss << ',';
    ss << "{\"config\":\"" << json_escape(cells[i].config)
       << "\",\"treatment\":\"" << json_escape(cells[i].treatment) << "\"}";
  }
  ss << "]}";
  return ss.str();
}

std::string journal_line(const JournalRecord& record) {
  std::ostringstream ss;
  if (record.kind == JournalRecord::Kind::kStop) {
    ss << "{\"cell\":" << record.cell << ",\"stop\":" << record.rep;
  } else {
    ss << "{\"cell\":" << record.cell << ",\"rep\":" << record.rep
       << ",\"value\":" << journal_fmt_double(record.value);
  }
  const std::string payload = ss.str();
  return payload + std::string{kCrcTag} + io::crc32_hex(payload) + "\"}";
}

bool parse_journal_line(const std::string& line, JournalRecord& out) {
  // Structure: <payload>,"crc":"xxxxxxxx"}  — fixed-width suffix, so a
  // single find from the right recovers the payload boundary.
  const auto crc_pos = line.rfind(kCrcTag);
  if (crc_pos == std::string::npos) return false;
  const auto hex_start = crc_pos + kCrcTag.size();
  if (line.size() != hex_start + 8 + 2) return false;
  if (line.compare(hex_start + 8, 2, "\"}") != 0) return false;
  const std::string payload = line.substr(0, crc_pos);
  if (line.compare(hex_start, 8, io::crc32_hex(payload)) != 0) return false;

  std::string cell_s;
  if (!extract_field(payload, "cell", cell_s)) return false;
  char* end = nullptr;
  out.cell = std::strtoull(cell_s.c_str(), &end, 10);
  if (end != cell_s.c_str() + cell_s.size()) return false;

  std::string stop_s;
  if (extract_field(payload, "stop", stop_s)) {
    out.kind = JournalRecord::Kind::kStop;
    out.value = 0.0;
    out.rep = static_cast<int>(std::strtol(stop_s.c_str(), &end, 10));
    return end == stop_s.c_str() + stop_s.size();
  }

  std::string rep_s, value_s;
  if (!extract_field(payload, "rep", rep_s) ||
      !extract_field(payload, "value", value_s)) {
    return false;
  }
  out.kind = JournalRecord::Kind::kValue;
  out.rep = static_cast<int>(std::strtol(rep_s.c_str(), &end, 10));
  if (end != rep_s.c_str() + rep_s.size()) return false;
  out.value = std::strtod(value_s.c_str(), &end);
  return end == value_s.c_str() + value_s.size();
}

JournalReplay replay_journal(io::Vfs& vfs, const std::filesystem::path& path,
                             const std::string& expected_header,
                             std::size_t cell_count, int repetitions) {
  JournalReplay replay;
  const auto contents = vfs.read_file(path);
  if (!contents || contents->empty()) return replay;

  const auto header_end = contents->find('\n');
  if (header_end == std::string::npos) {
    // No newline yet. A (possibly complete) prefix of the expected header
    // is a crash mid-header-write — the tear can land anywhere up to and
    // including the byte before the newline. Replay as fresh and truncate
    // the torn bytes. Any other content is someone else's file.
    if (contents->size() <= expected_header.size() &&
        expected_header.compare(0, contents->size(), *contents) == 0) {
      replay.corrupt_tail = true;
      return replay;
    }
    throw JournalMismatch{"journal header mismatch (torn foreign header) in " +
                          path.string()};
  }
  if (contents->compare(0, header_end, expected_header) != 0) {
    throw JournalMismatch{
        "journal header mismatch (different seed, options, or cell grid) in " +
        path.string()};
  }

  std::size_t offset = header_end + 1;
  replay.valid_bytes = offset;
  while (offset < contents->size()) {
    const auto line_end = contents->find('\n', offset);
    if (line_end == std::string::npos) {
      replay.corrupt_tail = true;  // Unterminated final line: torn write.
      break;
    }
    const std::string line = contents->substr(offset, line_end - offset);
    JournalRecord record;
    if (!parse_journal_line(line, record)) {
      // First malformed or checksum-failing record: everything from here on
      // is untrusted. Truncate-and-resume re-runs only these measurements.
      replay.corrupt_tail = true;
      break;
    }
    if (record.kind == JournalRecord::Kind::kStop) {
      if (record.cell >= cell_count || record.rep < 1 || record.rep > repetitions) {
        throw JournalMismatch{"journal stop record out of range in " + path.string()};
      }
      replay.stops[record.cell] = record.rep;
    } else {
      if (record.cell >= cell_count || record.rep < 0 || record.rep >= repetitions) {
        throw JournalMismatch{"journal record out of range in " + path.string()};
      }
      replay.done[{record.cell, record.rep}] = record.value;
    }
    offset = line_end + 1;
    replay.valid_bytes = offset;
  }
  return replay;
}

}  // namespace cloudrepro::core
