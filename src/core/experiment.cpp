#include "core/experiment.h"

#include <stdexcept>
#include <utility>

namespace cloudrepro::core {

LambdaEnvironment::LambdaEnvironment(std::string description,
                                     std::function<void()> fresh,
                                     std::function<void(double)> rest,
                                     std::function<double(stats::Rng&)> run_once)
    : description_{std::move(description)},
      fresh_{std::move(fresh)},
      rest_{std::move(rest)},
      run_once_{std::move(run_once)} {
  if (!fresh_ || !rest_ || !run_once_) {
    throw std::invalid_argument{"LambdaEnvironment: all callables must be set"};
  }
}

bool ExperimentResult::converged() const noexcept {
  return median_ci.valid &&
         median_ci.relative_half_width() <= plan.target_error_bound;
}

ExperimentResult ExperimentRunner::run(Environment& env, const ExperimentPlan& plan) {
  if (plan.repetitions < 1) {
    throw std::invalid_argument{"ExperimentRunner: need at least one repetition"};
  }

  ExperimentResult result;
  result.environment = env.description();
  result.plan = plan;
  result.values.reserve(static_cast<std::size_t>(plan.repetitions));

  for (int r = 0; r < plan.repetitions; ++r) {
    if (plan.fresh_environment_each_run) {
      env.fresh();
    } else if (r > 0 && plan.rest_between_runs_s > 0.0) {
      env.rest(plan.rest_between_runs_s);
    }
    result.values.push_back(env.run_once(rng_));
  }

  result.summary = stats::summarize(result.values);
  result.median_ci = stats::median_ci(result.values, plan.confidence);
  if (result.values.size() >= 4) {
    result.normality = stats::shapiro_wilk(result.values);
    result.independence = stats::runs_test(result.values);
    result.diagnostics_available = true;
  }
  return result;
}

std::vector<ExperimentResult> ExperimentRunner::run_suite(
    std::vector<std::reference_wrapper<Environment>> environments,
    const ExperimentPlan& plan, bool randomize_order) {
  std::vector<ExperimentResult> results(environments.size());
  std::vector<std::size_t> order(environments.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (randomize_order) order = rng_.permutation(environments.size());

  for (const std::size_t idx : order) {
    results[idx] = run(environments[idx].get(), plan);
  }
  return results;
}

}  // namespace cloudrepro::core
