#pragma once

#include <span>
#include <string>

#include "stats/ci.h"
#include "stats/hypothesis.h"

namespace cloudrepro::core {

/// Sound comparison of two systems' measurements — the use case the survey
/// (Section 2) finds done badly: "when researchers evaluate and prototype
/// distributed systems, or when comparing established systems" on clouds,
/// few repetitions plus variability routinely yield unsupported verdicts.
///
/// The comparison is non-parametric throughout (F5.4): Mann-Whitney U for
/// significance, Cliff's delta for effect size, and median CIs for the
/// reported ranges.
struct ComparisonVerdict {
  stats::ConfidenceInterval median_a;
  stats::ConfidenceInterval median_b;

  /// median_b / median_a (systems measured in time: >1 means A is faster).
  double median_ratio = 1.0;

  stats::TestResult mann_whitney;

  /// Cliff's delta in [-1, 1]: P(a < b) - P(a > b). Positive = A's values
  /// are smaller (faster, if measuring runtimes).
  double cliffs_delta = 0.0;

  /// True when the difference is statistically significant at the chosen
  /// alpha AND both medians have valid CIs.
  bool significant = false;

  /// True when A's median is smaller (A faster, for runtime metrics).
  bool a_faster = false;

  /// Overlapping median CIs — an informal-but-useful caution flag even when
  /// the rank test is significant.
  bool cis_overlap = true;

  /// One-line human-readable verdict.
  std::string summary() const;
};

/// Compares two measurement samples (e.g. runtimes of system A vs B).
/// Throws if either sample is empty.
ComparisonVerdict compare_systems(std::span<const double> a,
                                  std::span<const double> b,
                                  double alpha = 0.05,
                                  double confidence = 0.95);

/// Cliff's delta effect size: P(x < y) - P(x > y) over all pairs.
double cliffs_delta(std::span<const double> a, std::span<const double> b);

/// Magnitude bands for |Cliff's delta| (Romano et al. conventions).
enum class EffectSize { kNegligible, kSmall, kMedium, kLarge };

EffectSize interpret_cliffs_delta(double delta) noexcept;

std::string to_string(EffectSize effect);

}  // namespace cloudrepro::core
