#include "core/confirm.h"

#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.h"

namespace cloudrepro::core {

ConfirmAnalysis confirm_analysis(std::span<const double> measurements,
                                 const ConfirmOptions& options) {
  if (measurements.empty()) {
    throw std::invalid_argument{"confirm_analysis: no measurements"};
  }
  if (options.error_bound <= 0.0) {
    throw std::invalid_argument{"confirm_analysis: error bound must be positive"};
  }

  ConfirmAnalysis analysis;
  analysis.points.resize(measurements.size());

  // Each prefix's CI is independent of every other prefix's, so the
  // quadratic sweep fans out across workers; point i lands in its
  // pre-assigned slot, keeping the analysis bit-identical at any thread
  // count. Widening detection and repetitions_needed below reduce over the
  // points in fixed order on this thread.
  runtime::parallel_for_each(
      options.threads, measurements.size(), [&](std::size_t i) {
        const std::size_t n = i + 1;
        const auto prefix = measurements.subspan(0, n);
        const auto ci =
            stats::quantile_ci(prefix, options.quantile, options.confidence);

        ConfirmPoint p;
        p.repetitions = n;
        p.estimate = ci.estimate;
        p.ci_lower = ci.lower;
        p.ci_upper = ci.upper;
        p.ci_valid = ci.valid;
        // The estimate != 0 guard mirrors relative_half_width's degenerate
        // case: a zero-quantile CI can never satisfy a *relative* bound.
        p.within_bound = ci.valid && ci.estimate != 0.0 &&
                         ci.relative_half_width() <= options.error_bound;
        analysis.points[i] = p;
      });

  // Widening detection (the Figure 19 Q65 signature). Small-n CIs
  // legitimately fluctuate as new order statistics arrive, so we compare the
  // *final* width against the tightest width the analysis had already
  // settled to: under i.i.d. sampling the final CI is near its minimum;
  // under budget depletion it blows past it.
  {
    constexpr std::size_t kSettleAfter = 15;
    double min_settled_width = -1.0;
    double final_width = -1.0;
    for (const auto& p : analysis.points) {
      if (!p.ci_valid) continue;
      const double width = p.ci_upper - p.ci_lower;
      if (p.repetitions >= kSettleAfter &&
          (min_settled_width < 0.0 || width < min_settled_width)) {
        min_settled_width = width;
      }
      final_width = width;
    }
    analysis.ci_widened = min_settled_width >= 0.0 && final_width >= 0.0 &&
                          final_width > 1.3 * min_settled_width + 1e-12;
  }

  // repetitions_needed: first n such that every m >= n is within the bound.
  std::optional<std::size_t> needed;
  for (std::size_t i = analysis.points.size(); i-- > 0;) {
    if (analysis.points[i].within_bound) {
      needed = analysis.points[i].repetitions;
    } else {
      break;
    }
  }
  analysis.repetitions_needed = needed;
  return analysis;
}

std::optional<std::size_t> repetitions_for_bound(std::span<const double> measurements,
                                                 double error_bound, double confidence) {
  ConfirmOptions options;
  options.error_bound = error_bound;
  options.confidence = confidence;
  return confirm_analysis(measurements, options).repetitions_needed;
}

ConfirmMonitor::ConfirmMonitor(const AdaptiveConfirmOptions& options)
    : options_{options} {
  if (options.error_bound <= 0.0) {
    throw std::invalid_argument{"ConfirmMonitor: error bound must be positive"};
  }
  if (options.quantile <= 0.0 || options.quantile >= 1.0) {
    throw std::invalid_argument{"ConfirmMonitor: quantile must be in (0, 1)"};
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    throw std::invalid_argument{"ConfirmMonitor: confidence must be in (0, 1)"};
  }
}

bool ConfirmMonitor::add(double value) {
  sketch_.add(value);
  if (converged_) return true;
  if (sketch_.count() < options_.min_repetitions) return false;
  const auto interval = ci();
  // Same rule as ConfirmPoint::within_bound: a valid, non-degenerate CI
  // whose relative half-width meets the bound.
  if (interval.valid && interval.estimate != 0.0 &&
      interval.relative_half_width() <= options_.error_bound) {
    converged_ = true;
    stop_repetitions_ = sketch_.count();
  }
  return converged_;
}

stats::ConfidenceInterval ConfirmMonitor::ci() const {
  if (sketch_.count() == 0) return {};
  return sketch_.ci(options_.quantile, options_.confidence);
}

ConfirmPrediction predict_repetitions(std::span<const double> pilot,
                                      const ConfirmOptions& options) {
  ConfirmPrediction prediction;
  const auto analysis = confirm_analysis(pilot, options);

  // Fit c in half_width(n) = c / sqrt(n) by least squares over the valid
  // prefix points: c = sum(w_n / sqrt(n)) / sum(1/n).
  double numerator = 0.0;
  double denominator = 0.0;
  std::size_t usable = 0;
  for (const auto& p : analysis.points) {
    if (!p.ci_valid) continue;
    const double n = static_cast<double>(p.repetitions);
    const double half_width = 0.5 * (p.ci_upper - p.ci_lower);
    numerator += half_width / std::sqrt(n);
    denominator += 1.0 / n;
    ++usable;
  }
  if (usable < 5) return prediction;  // Pilot too small to fit.

  const double final_estimate = analysis.final_point().estimate;
  if (final_estimate == 0.0) return prediction;

  const double c = numerator / denominator;
  prediction.fitted_coefficient = c / std::fabs(final_estimate);

  const double target_half_width = options.error_bound * std::fabs(final_estimate);
  if (target_half_width <= 0.0) return prediction;
  const double n_required = (c / target_half_width) * (c / target_half_width);
  prediction.predicted_repetitions =
      std::max(pilot.size(), static_cast<std::size_t>(std::ceil(n_required)));

  // The sqrt-law only holds for i.i.d. sequences; a widening CI voids it.
  prediction.reliable = !analysis.ci_widened;
  return prediction;
}

}  // namespace cloudrepro::core
