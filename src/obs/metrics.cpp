#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cloudrepro::obs {

namespace {

/// JSON-safe number: shortest round-trip form; non-finite values (which JSON
/// cannot carry) degrade to null rather than corrupting the document.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream ss;
  ss << std::setprecision(17) << v;
  return ss.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::span<const double> bounds)
    : bounds_{bounds.begin(), bounds.end()}, buckets_(bounds.size() + 1) {
  if (bounds_.empty()) {
    bounds_ = default_bounds();
    buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument{"Histogram: bounds must be sorted ascending"};
  }
}

void Histogram::observe(double value) noexcept {
  std::size_t b = bounds_.size();  // Overflow bucket by default.
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      b = i;
      break;
    }
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  if (prev == 0) {
    // First observation seeds min/max; racing observers correct it below.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
    zero = 0.0;
    max_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  atomic_min(min_, value);
  atomic_max(max_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.bounds = bounds_;
  s.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) s.buckets.push_back(b.load(std::memory_order_relaxed));
  return s;
}

std::vector<double> Histogram::default_bounds() {
  std::vector<double> bounds;
  for (double b = 1e-6; b < 1.5e5; b *= 4.0) bounds.push_back(b);
  return bounds;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock{mu_};
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock{mu_};
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock{mu_};
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string{name}, std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

double MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock{mu_};
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0.0;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock{mu_};
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->value() : 0.0;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock{mu_};
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << json_number(c->value());
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << json_number(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    const auto s = h->snapshot();
    os << '"' << json_escape(name) << "\":{\"count\":" << s.count
       << ",\"sum\":" << json_number(s.sum) << ",\"min\":" << json_number(s.min)
       << ",\"max\":" << json_number(s.max) << ",\"mean\":" << json_number(s.mean())
       << ",\"buckets\":[";
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      if (i > 0) os << ',';
      os << "{\"le\":"
         << (i < s.bounds.size() ? json_number(s.bounds[i]) : std::string{"\"inf\""})
         << ",\"count\":" << s.buckets[i] << '}';
    }
    os << "]}";
  }
  os << "}}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream ss;
  write_json(ss);
  return ss.str();
}

}  // namespace cloudrepro::obs
