#pragma once

// Compile-time gate for the observability layer (metrics + tracing).
//
// The build defines CLOUDREPRO_OBS=0/1 globally (CMake option CLOUDREPRO_OBS,
// ON by default). With the gate off, every instrumentation statement in the
// hot layers (simnet, bigdata, faults, core/campaign) compiles to nothing, so
// the uninstrumented binary is bit-for-bit free of tracer/metrics branches —
// `BM_FluidAggregateRate` / `BM_CampaignParallel` verify the instrumented
// build stays within noise of this baseline.
//
// The obs *library* itself (Tracer, MetricsRegistry) always builds; only the
// call sites in other layers are gated, so user code can still construct and
// export traces explicitly in either configuration.

#ifndef CLOUDREPRO_OBS
#define CLOUDREPRO_OBS 1
#endif

// Wraps instrumentation statements: expands to its arguments when the
// observability layer is compiled in, to nothing otherwise. Usage:
//
//   CLOUDREPRO_OBS_STMT(if (tracer_) tracer_->instant(now_, "simnet", "x");)
#if CLOUDREPRO_OBS
#define CLOUDREPRO_OBS_STMT(...) __VA_ARGS__
#else
#define CLOUDREPRO_OBS_STMT(...)
#endif
