#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace cloudrepro::obs {

/// One named numeric payload attached to a trace event. Keys must be string
/// literals (or otherwise outlive the tracer): events are POD so that emit
/// is a mutex acquire plus a struct copy — no allocation on the hot path.
struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

/// Chrome trace_event phases we emit. kInstant marks a point in time
/// ("ph":"i"); kComplete is a span with a duration ("ph":"X").
enum class TracePhase : char {
  kInstant = 'i',
  kComplete = 'X',
};

struct TraceEvent {
  double ts_s = 0.0;   ///< Event timestamp (simulated or wall seconds).
  double dur_s = 0.0;  ///< Span length for kComplete; ignored for kInstant.
  const char* category = "";
  const char* name = "";
  TracePhase phase = TracePhase::kInstant;
  std::uint32_t lane = 0;   ///< Chrome "tid": a row within a track (e.g. node id).
  std::uint32_t track = 0;  ///< Chrome "pid": a time domain (0 wall, 1 sim).
  TraceArg arg0{};
  TraceArg arg1{};
  std::uint64_t seq = 0;  ///< Global emit order (survives ring wraparound).
};

/// Structured event tracer with a bounded ring buffer.
///
/// Producers (the simulator, the engine, the campaign scheduler) emit
/// timestamped instants and spans; the ring keeps the most recent
/// `capacity()` events and counts the rest as dropped, so week-long
/// simulations cannot grow memory without bound. Emission is thread-safe —
/// the PR 3 parallel campaign runtime runs repetitions concurrently against
/// one tracer — and cheap: a mutex plus a 96-byte struct copy.
///
/// Timestamps are caller-supplied seconds. Simulation layers pass simulated
/// time; the campaign layer passes wall seconds since campaign start, on a
/// separate `track` so the two domains stay on separate timelines in
/// chrome://tracing.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Point event at `ts_s`.
  void instant(double ts_s, const char* category, const char* name,
               TraceArg arg0 = {}, TraceArg arg1 = {}, std::uint32_t lane = 0,
               std::uint32_t track = 0);

  /// Span [ts_s, ts_s + dur_s].
  void complete(double ts_s, double dur_s, const char* category, const char* name,
                TraceArg arg0 = {}, TraceArg arg1 = {}, std::uint32_t lane = 0,
                std::uint32_t track = 0);

  std::size_t capacity() const noexcept;
  std::size_t size() const;            ///< Events currently retained.
  std::uint64_t emitted() const;       ///< Events ever emitted.
  std::uint64_t dropped() const;       ///< Events overwritten by wraparound.
  void clear();

  /// Retained events, oldest first (emission order).
  std::vector<TraceEvent> snapshot() const;

  /// Retained events whose name matches exactly, oldest first.
  std::vector<TraceEvent> events_named(const char* name) const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing / Perfetto. Timestamps convert to microseconds.
  void write_chrome_json(std::ostream& os) const;

  /// One JSON object per line, for streaming consumers (jq, log shippers).
  void write_jsonl(std::ostream& os) const;

 private:
  void emit(const TraceEvent& event);

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::uint64_t emitted_ = 0;
};

}  // namespace cloudrepro::obs
