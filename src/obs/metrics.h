#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cloudrepro::obs {

/// Monotonic counter (thread-safe, lock-free). Counters are created through
/// a `MetricsRegistry` and have stable addresses for the registry's
/// lifetime, so hot paths cache `Counter*` handles and pay one relaxed
/// atomic add per increment — no name lookup, no lock.
class Counter {
 public:
  void add(double delta = 1.0) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins instantaneous value (thread-safe).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of a histogram: cumulative-style bucket counts plus
/// the moment statistics every exported summary needs.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningless when count == 0.
  double max = 0.0;
  std::vector<double> bounds;        ///< Upper bucket bounds (inclusive).
  std::vector<std::uint64_t> buckets;///< bounds.size() + 1 entries; last = overflow.

  double mean() const noexcept { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Fixed-bound histogram (thread-safe observe, lock-free counts). Bounds are
/// immutable after construction; `observe` does a branchless-ish linear scan
/// over them (bucket counts are small — default 25 bounds).
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double value) noexcept;

  HistogramSnapshot snapshot() const;

  /// Default bounds: powers of 4 spanning ~1 microsecond to ~1 day, which
  /// covers both wall-clock spans and simulated-seconds durations.
  static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Named registry of counters, gauges, and histograms.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a mutex and is meant
/// for setup paths; the returned references stay valid and lock-free for the
/// registry's lifetime. `write_json` snapshots everything under the same
/// mutex, so an export taken while workers are mid-increment is a consistent
/// name set (values are read with relaxed loads — fine for telemetry).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named counter, creating it on first use.
  Counter& counter(std::string_view name);

  /// Returns the named gauge, creating it on first use.
  Gauge& gauge(std::string_view name);

  /// Returns the named histogram, creating it on first use with the given
  /// bounds (empty = `Histogram::default_bounds()`). Bounds of an existing
  /// histogram are never changed.
  Histogram& histogram(std::string_view name, std::span<const double> bounds = {});

  /// Current value of a counter/gauge; 0 when the name was never registered
  /// (convenient for reconciliation checks and tests).
  double counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

  /// Deterministically ordered (name-sorted) JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& os) const;
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace cloudrepro::obs
