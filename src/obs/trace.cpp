#include "obs/trace.h"

#include <cmath>
#include <cstring>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cloudrepro::obs {

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream ss;
  ss << std::setprecision(17) << v;
  return ss.str();
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

/// One trace_event object. Shared by both export formats — the JSONL stream
/// is simply the same objects newline-delimited instead of array-wrapped.
void write_event_json(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
     << json_escape(e.category) << "\",\"ph\":\"" << static_cast<char>(e.phase)
     << "\",\"ts\":" << json_number(e.ts_s * 1e6);
  if (e.phase == TracePhase::kComplete) {
    os << ",\"dur\":" << json_number(e.dur_s * 1e6);
  }
  if (e.phase == TracePhase::kInstant) {
    os << ",\"s\":\"t\"";  // Thread-scoped instant marker.
  }
  os << ",\"pid\":" << e.track << ",\"tid\":" << e.lane << ",\"args\":{";
  bool first = true;
  for (const TraceArg* a : {&e.arg0, &e.arg1}) {
    if (!a->key) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(a->key) << "\":" << json_number(a->value);
  }
  os << "}}";
}

}  // namespace

Tracer::Tracer(std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument{"Tracer: capacity must be positive"};
  ring_.resize(capacity);
}

void Tracer::emit(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock{mu_};
  TraceEvent& slot = ring_[static_cast<std::size_t>(emitted_ % ring_.size())];
  slot = event;
  slot.seq = emitted_;
  ++emitted_;
}

void Tracer::instant(double ts_s, const char* category, const char* name,
                     TraceArg arg0, TraceArg arg1, std::uint32_t lane,
                     std::uint32_t track) {
  emit(TraceEvent{ts_s, 0.0, category, name, TracePhase::kInstant, lane, track,
                  arg0, arg1, 0});
}

void Tracer::complete(double ts_s, double dur_s, const char* category,
                      const char* name, TraceArg arg0, TraceArg arg1,
                      std::uint32_t lane, std::uint32_t track) {
  emit(TraceEvent{ts_s, dur_s, category, name, TracePhase::kComplete, lane, track,
                  arg0, arg1, 0});
}

std::size_t Tracer::capacity() const noexcept { return ring_.size(); }

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock{mu_};
  return static_cast<std::size_t>(
      emitted_ < ring_.size() ? emitted_ : static_cast<std::uint64_t>(ring_.size()));
}

std::uint64_t Tracer::emitted() const {
  std::lock_guard<std::mutex> lock{mu_};
  return emitted_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock{mu_};
  return emitted_ < ring_.size() ? 0 : emitted_ - ring_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock{mu_};
  emitted_ = 0;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock{mu_};
  std::vector<TraceEvent> out;
  const std::uint64_t n =
      emitted_ < ring_.size() ? emitted_ : static_cast<std::uint64_t>(ring_.size());
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = emitted_ - n; i < emitted_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i % ring_.size())]);
  }
  return out;
}

std::vector<TraceEvent> Tracer::events_named(const char* name) const {
  std::vector<TraceEvent> out;
  for (const auto& e : snapshot()) {
    if (std::strcmp(e.name, name) == 0) out.push_back(e);
  }
  return out;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  const auto events = snapshot();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) os << ',';
    os << '\n';
    write_event_json(os, events[i]);
  }
  os << "\n]}\n";
}

void Tracer::write_jsonl(std::ostream& os) const {
  for (const auto& e : snapshot()) {
    write_event_json(os, e);
    os << '\n';
  }
}

}  // namespace cloudrepro::obs
