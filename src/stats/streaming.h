#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stats/ci.h"
#include "stats/hypothesis.h"

namespace cloudrepro::stats {

/// Streaming, O(1)-mergeable statistics.
///
/// The span-based functions in descriptive.h are vector-in/scalar-out: every
/// caller had to hold the full sample, which costs O(n) memory per campaign
/// cell and cannot be combined across the thread pool or across shards. The
/// accumulators here hold constant state per statistic, merge in O(1)
/// (Chan's parallel update for the moments), and cache derived values behind
/// a dirty bitmask so repeated reads after a burst of `add` calls pay for
/// each derivation once — the design of the `cached`-bitmask statistics
/// classes this refactor is modeled on. descriptive.h's span functions are
/// now thin adapters over `StreamingMoments`, so existing callers keep their
/// signatures while sharing one implementation.

/// Count / mean / M2 / min / max accumulator (Welford in the Youngs–Cramer
/// sum formulation, merged with Chan's pairwise update).
///
/// Numerical contract: feeding a sample in index order reproduces the naive
/// sum (and therefore the legacy `mean`) bit-exactly, and the M2-based
/// variance tracks the legacy two-pass variance to within 1 ulp on
/// well-conditioned data (enforced by the seed-swept property suite).
/// Merging reassociates the sums, so merged results may differ from the
/// sequential ones by a few ulps — the property suite bounds that drift too.
class StreamingMoments {
 public:
  StreamingMoments() = default;

  void add(double x) noexcept {
    ++n_;
    sum_ += x;
    if (n_ == 1) {
      min_ = max_ = x;
      m2_ = 0.0;
    } else {
      if (x < min_) min_ = x;
      if (x > max_) max_ = x;
      // Youngs–Cramer: with T_n the running sum *including* x,
      // M2 += (n x - T_n)^2 / (n (n-1)).
      const double nd = static_cast<double>(n_);
      const double d = nd * x - sum_;
      m2_ += d * d / (nd * (nd - 1.0));
    }
    cached_ = 0;
  }

  void add_all(std::span<const double> xs) noexcept {
    for (const double x : xs) add(x);
  }

  /// Chan's parallel merge: the result summarizes the union of both
  /// samples. O(1); either side may be empty.
  void merge(const StreamingMoments& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  /// Arithmetic mean; 0 for an empty accumulator (legacy contract).
  double mean() const noexcept {
    return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
  }
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }
  /// Sum of squared deviations from the mean (Welford's M2).
  double m2() const noexcept { return m2_; }

  // --- Lazily cached derived statistics ---------------------------------
  // Derivations run at most once per add/merge burst; the bitmask tracks
  // which cached slots are current.

  /// Unbiased (n-1) sample variance; 0 for counts < 2 (legacy contract).
  double variance() const noexcept;
  double stddev() const noexcept;
  /// stddev / mean; 0 when the mean is 0 (legacy contract).
  double coefficient_of_variation() const noexcept;
  /// stddev / sqrt(n); 0 for counts < 2.
  double standard_error() const noexcept;

  void reset() noexcept { *this = StreamingMoments{}; }

 private:
  enum CacheBit : std::uint8_t {
    kVariance = 1u << 0,
    kStddev = 1u << 1,
    kCov = 1u << 2,
    kStderr = 1u << 3,
  };
  bool is_cached(std::uint8_t bit) const noexcept { return (cached_ & bit) != 0; }

  std::size_t n_ = 0;
  double sum_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;

  mutable std::uint8_t cached_ = 0;
  mutable double cached_variance_ = 0.0;
  mutable double cached_stddev_ = 0.0;
  mutable double cached_cov_ = 0.0;
  mutable double cached_stderr_ = 0.0;
};

/// Welch's two-sample t test from summary moments alone — "is this the same
/// distribution as the baseline?" without either sample in memory, which is
/// what cross-shard fingerprint comparisons need. Null hypothesis: equal
/// means. Requires both counts >= 2.
TestResult welch_t_test(const StreamingMoments& a, const StreamingMoments& b);

/// Two-sample z test on the means (normal approximation; appropriate once
/// both counts are large). Null hypothesis: equal means.
TestResult z_test(const StreamingMoments& a, const StreamingMoments& b);

/// P² single-quantile estimator (Jain & Chlamtac 1985): five markers,
/// O(1) memory, no storage of the sample. Exact (order-statistic) for the
/// first five observations, an interpolated-marker estimate afterwards.
/// This is the cheap streaming answer for dashboards and obs; the CONFIRM
/// stopping rule uses `QuantileReservoir`, which keeps order statistics
/// exactly while the sample is small enough to matter.
class P2Quantile {
 public:
  /// `q` in (0, 1).
  explicit P2Quantile(double q);

  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double quantile() const noexcept { return q_; }
  /// Current estimate; 0 when empty.
  double value() const noexcept;

 private:
  double q_;
  std::size_t n_ = 0;
  double heights_[5] = {};
  double positions_[5] = {};  // 1-based marker positions.
  double desired_[5] = {};
  double increments_[5] = {};
};

/// Reservoir-backed quantile sketch for the CONFIRM CI path.
///
/// Keeps the sample sorted and *exact* up to `capacity` values (0 =
/// unbounded), so quantiles and the non-parametric order-statistic CI are
/// bit-identical to the span-based `quantile` / `quantile_ci` while the
/// sample fits — which is the regime adaptive stopping lives in, since the
/// stopping rule caps repetitions. Past capacity it degrades to
/// deterministic (seeded) uniform reservoir sampling, bounding memory for
/// million-measurement campaigns at the cost of approximate order
/// statistics; `exact()` reports which regime the sketch is in.
class QuantileReservoir {
 public:
  explicit QuantileReservoir(std::size_t capacity = 0,
                             std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  void add(double x);

  /// Merges another reservoir. Exact while the union fits the capacity;
  /// otherwise the union is deterministically downsampled.
  void merge(const QuantileReservoir& other);

  /// Total observations fed (not the retained count).
  std::size_t count() const noexcept { return n_; }
  std::size_t retained() const noexcept { return sorted_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  /// True while every observation is retained (order statistics exact).
  bool exact() const noexcept { return n_ == sorted_.size(); }

  /// Type-7 quantile over the retained sample. Throws on empty.
  double quantile(double q) const;

  /// Non-parametric order-statistic CI over the retained sample — the exact
  /// same computation as `stats::quantile_ci` when `exact()`.
  ConfidenceInterval ci(double q, double confidence) const;

  /// Retained values, sorted ascending.
  std::span<const double> sorted_values() const noexcept { return sorted_; }

 private:
  std::size_t capacity_;
  std::size_t n_ = 0;
  std::uint64_t rng_state_;
  std::vector<double> sorted_;

  std::uint64_t next_u64() noexcept;
};

}  // namespace cloudrepro::stats
