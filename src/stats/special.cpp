#include "stats/special.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cloudrepro::stats {

namespace {

/// std::lgamma writes the global `signgam` and is therefore not
/// thread-safe; campaigns evaluate CIs on these functions concurrently.
/// The reentrant lgamma_r returns bit-identical values.
double lgamma_ts(double x) {
  int sign = 0;
  return ::lgamma_r(x, &sign);
}

/// Continued-fraction kernel for the incomplete beta (Lentz's method).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) throw std::invalid_argument{"incomplete_beta: a, b must be positive"};
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = lgamma_ts(a + b) - lgamma_ts(a) - lgamma_ts(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double incomplete_gamma_p(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument{"incomplete_gamma_p: a must be positive"};
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 3e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - lgamma_ts(a));
  }
  // Continued fraction for Q(a, x), then P = 1 - Q.
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 3e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - lgamma_ts(a)) * h;
  return 1.0 - q;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    throw std::invalid_argument{"normal_quantile: p must be in (0, 1)"};
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the analytic CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double student_t_cdf(double t, double df) {
  if (df <= 0.0) throw std::invalid_argument{"student_t_cdf: df must be positive"};
  const double x = df / (df + t * t);
  const double tail = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double f_cdf(double f, double d1, double d2) {
  if (d1 <= 0.0 || d2 <= 0.0) throw std::invalid_argument{"f_cdf: degrees of freedom must be positive"};
  if (f <= 0.0) return 0.0;
  return incomplete_beta(d1 / 2.0, d2 / 2.0, d1 * f / (d1 * f + d2));
}

double chi_squared_cdf(double x, double df) {
  if (df <= 0.0) throw std::invalid_argument{"chi_squared_cdf: df must be positive"};
  if (x <= 0.0) return 0.0;
  return incomplete_gamma_p(df / 2.0, x / 2.0);
}

double log_binomial_coefficient(long long n, long long k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return lgamma_ts(static_cast<double>(n) + 1.0) -
         lgamma_ts(static_cast<double>(k) + 1.0) -
         lgamma_ts(static_cast<double>(n - k) + 1.0);
}

double binomial_cdf(long long k, long long n, double p) {
  if (n < 0) throw std::invalid_argument{"binomial_cdf: n must be non-negative"};
  if (p < 0.0 || p > 1.0) throw std::invalid_argument{"binomial_cdf: p must be in [0, 1]"};
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;  // k < n here.
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double cdf = 0.0;
  for (long long i = 0; i <= k; ++i) {
    const double log_pmf = log_binomial_coefficient(n, i) +
                           static_cast<double>(i) * log_p +
                           static_cast<double>(n - i) * log_q;
    cdf += std::exp(log_pmf);
  }
  return std::min(cdf, 1.0);
}

}  // namespace cloudrepro::stats
