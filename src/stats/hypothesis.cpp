#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/descriptive.h"
#include "stats/special.h"

namespace cloudrepro::stats {

namespace {

double polyval(std::span<const double> coeffs, double x) {
  // coeffs[0] + coeffs[1] * x + coeffs[2] * x^2 + ...
  double result = 0.0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) result = result * x + *it;
  return result;
}

/// Solves the small dense system A x = b by Gaussian elimination with
/// partial pivoting. Used by the ADF regression; dimensions are tiny.
std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      throw std::runtime_error{"solve_linear_system: singular matrix"};
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= a[i][k] * x[k];
    x[i] = sum / a[i][i];
  }
  return x;
}

/// Mid-ranks of the combined sample; ties get the average rank.
std::vector<double> mid_ranks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return values[i] < values[j]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

TestResult shapiro_wilk(std::span<const double> xs) {
  const auto n = xs.size();
  if (n < 3) throw std::invalid_argument{"shapiro_wilk: need at least 3 samples"};
  if (n > 5000) throw std::invalid_argument{"shapiro_wilk: approximation valid up to n = 5000"};

  auto x = sorted(xs);
  if (x.front() == x.back()) {
    // Degenerate constant sample: definitely not evidence of normality.
    return TestResult{.statistic = 1.0, .p_value = 1.0};
  }

  const auto nd = static_cast<double>(n);

  // Expected values of normal order statistics (Blom's approximation).
  std::vector<double> m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = normal_quantile((static_cast<double>(i) + 1.0 - 0.375) / (nd + 0.25));
  }
  double m_ss = 0.0;
  for (const double v : m) m_ss += v * v;

  // Royston's polynomial-corrected weights for the two largest order stats.
  std::vector<double> w(n);
  const double rsn = 1.0 / std::sqrt(nd);
  static constexpr double c1[] = {0.0, 0.221157, -0.147981, -2.071190, 4.434685, -2.706056};
  static constexpr double c2[] = {0.0, 0.042981, -0.293762, -1.752461, 5.682633, -3.582633};
  const double wn = m[n - 1] / std::sqrt(m_ss) + polyval(c1, rsn);
  if (n <= 5) {
    const double phi = (m_ss - 2.0 * m[n - 1] * m[n - 1]) / (1.0 - 2.0 * wn * wn);
    for (std::size_t i = 1; i + 1 < n; ++i) w[i] = m[i] / std::sqrt(phi);
    w[n - 1] = wn;
    w[0] = -wn;
  } else {
    const double wn1 = m[n - 2] / std::sqrt(m_ss) + polyval(c2, rsn);
    const double phi = (m_ss - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2]) /
                       (1.0 - 2.0 * wn * wn - 2.0 * wn1 * wn1);
    for (std::size_t i = 2; i + 2 < n; ++i) w[i] = m[i] / std::sqrt(phi);
    w[n - 1] = wn;
    w[n - 2] = wn1;
    w[0] = -wn;
    w[1] = -wn1;
  }

  const double xbar = mean(x);
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    numerator += w[i] * x[i];
    const double d = x[i] - xbar;
    denominator += d * d;
  }
  double w_stat = numerator * numerator / denominator;
  w_stat = std::min(w_stat, 1.0);

  // Normalizing transformation of (1 - W) -> z, per Royston 1992.
  double p_value;
  if (n == 3) {
    constexpr double pi6 = 1.90985931710274;  // 6/pi
    constexpr double stqr = 1.04719755119660;  // asin(sqrt(3/4))
    p_value = pi6 * (std::asin(std::sqrt(w_stat)) - stqr);
    p_value = std::clamp(p_value, 0.0, 1.0);
  } else {
    const double lw = std::log(1.0 - w_stat);
    double mu, sigma;
    if (n <= 11) {
      const double g = -2.273 + 0.459 * nd;
      mu = 0.5440 - 0.39978 * nd + 0.025054 * nd * nd - 0.0006714 * nd * nd * nd;
      sigma = std::exp(1.3822 - 0.77857 * nd + 0.062767 * nd * nd - 0.0020322 * nd * nd * nd);
      const double z = (-std::log(g - lw) - mu) / sigma;
      p_value = 1.0 - normal_cdf(z);
    } else {
      const double ln = std::log(nd);
      mu = -1.5861 - 0.31082 * ln - 0.083751 * ln * ln + 0.0038915 * ln * ln * ln;
      sigma = std::exp(-0.4803 - 0.082676 * ln + 0.0030302 * ln * ln);
      const double z = (lw - mu) / sigma;
      p_value = 1.0 - normal_cdf(z);
    }
  }
  return TestResult{.statistic = w_stat, .p_value = std::clamp(p_value, 0.0, 1.0)};
}

TestResult mann_whitney_u(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) throw std::invalid_argument{"mann_whitney_u: empty sample"};
  const auto n1 = static_cast<double>(a.size());
  const auto n2 = static_cast<double>(b.size());

  std::vector<double> combined;
  combined.reserve(a.size() + b.size());
  combined.insert(combined.end(), a.begin(), a.end());
  combined.insert(combined.end(), b.begin(), b.end());
  const auto ranks = mid_ranks(combined);

  double rank_sum_a = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) rank_sum_a += ranks[i];
  const double u1 = rank_sum_a - n1 * (n1 + 1.0) / 2.0;
  const double u = std::min(u1, n1 * n2 - u1);

  // Tie correction for the variance.
  const double n = n1 + n2;
  auto sorted_all = combined;
  std::sort(sorted_all.begin(), sorted_all.end());
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < sorted_all.size()) {
    std::size_t j = i;
    while (j + 1 < sorted_all.size() && sorted_all[j + 1] == sorted_all[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double mu = n1 * n2 / 2.0;
  const double var =
      n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var <= 0.0) return TestResult{.statistic = u, .p_value = 1.0};

  // Continuity-corrected normal approximation, two-sided.
  const double z = (u - mu + 0.5) / std::sqrt(var);
  const double p = std::clamp(2.0 * normal_cdf(z), 0.0, 1.0);
  return TestResult{.statistic = u, .p_value = p};
}

TestResult kolmogorov_smirnov(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument{"kolmogorov_smirnov: empty sample"};
  }
  const auto sa = sorted(a);
  const auto sb = sorted(b);
  const auto n1 = static_cast<double>(sa.size());
  const auto n2 = static_cast<double>(sb.size());

  // Sweep the merged order statistics tracking the ECDF gap.
  double d_stat = 0.0;
  std::size_t i = 0, j = 0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    const double fa = static_cast<double>(i) / n1;
    const double fb = static_cast<double>(j) / n2;
    d_stat = std::max(d_stat, std::fabs(fa - fb));
  }

  // Asymptotic Kolmogorov distribution:
  // p = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
  const double en = std::sqrt(n1 * n2 / (n1 + n2));
  const double lambda = (en + 0.12 + 0.11 / en) * d_stat;
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    p += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  p = std::clamp(2.0 * p, 0.0, 1.0);
  return TestResult{.statistic = d_stat, .p_value = p};
}

TestResult runs_test(std::span<const double> xs) {
  if (xs.size() < 4) throw std::invalid_argument{"runs_test: need at least 4 samples"};
  const double med = median(xs);
  std::vector<int> signs;
  signs.reserve(xs.size());
  for (const double x : xs) {
    if (x == med) continue;  // Discard values equal to the median.
    signs.push_back(x > med ? 1 : -1);
  }
  if (signs.size() < 4) return TestResult{.statistic = 0.0, .p_value = 1.0};

  double n_pos = 0.0, n_neg = 0.0;
  for (const int s : signs) (s > 0 ? n_pos : n_neg) += 1.0;
  double runs = 1.0;
  for (std::size_t i = 1; i < signs.size(); ++i) {
    if (signs[i] != signs[i - 1]) runs += 1.0;
  }
  const double n = n_pos + n_neg;
  const double mu = 2.0 * n_pos * n_neg / n + 1.0;
  const double var = (mu - 1.0) * (mu - 2.0) / (n - 1.0);
  if (var <= 0.0) return TestResult{.statistic = runs, .p_value = 1.0};
  const double z = (runs - mu) / std::sqrt(var);
  const double p = std::clamp(2.0 * (1.0 - normal_cdf(std::fabs(z))), 0.0, 1.0);
  return TestResult{.statistic = z, .p_value = p};
}

TestResult adf_test(std::span<const double> xs, int lags) {
  if (lags < 0) throw std::invalid_argument{"adf_test: lags must be non-negative"};
  const auto n = static_cast<long long>(xs.size());
  const long long usable = n - 1 - lags;
  const long long n_params = 2 + lags;  // constant, y_{t-1}, lagged diffs
  if (usable < n_params + 3) {
    throw std::invalid_argument{"adf_test: series too short for requested lags"};
  }

  // A (near-)constant series is trivially stationary; the regression would
  // be singular. This arises in practice on fully-throttled bandwidth
  // traces pinned at the capped rate.
  {
    const double m = mean(xs);
    double ss = 0.0;
    for (const double x : xs) ss += (x - m) * (x - m);
    const double scale = std::max(1.0, m * m);
    if (ss / static_cast<double>(xs.size()) < 1e-12 * scale) {
      return TestResult{.statistic = -10.0, .p_value = 0.001};
    }
  }

  // Regress dy_t on [1, y_{t-1}, dy_{t-1}, ..., dy_{t-lags}].
  std::vector<double> dy(xs.size() - 1);
  for (std::size_t t = 1; t < xs.size(); ++t) dy[t - 1] = xs[t] - xs[t - 1];

  const auto p = static_cast<std::size_t>(n_params);
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  std::vector<double> row(p);
  const auto start = static_cast<std::size_t>(lags);

  for (std::size_t t = start; t < dy.size(); ++t) {
    row[0] = 1.0;
    row[1] = xs[t];  // y_{t-1} for response dy[t]
    for (int l = 1; l <= lags; ++l) row[1 + static_cast<std::size_t>(l)] = dy[t - static_cast<std::size_t>(l)];
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) xtx[i][j] += row[i] * row[j];
      xty[i] += row[i] * dy[t];
    }
  }

  const auto beta = solve_linear_system(xtx, xty);

  // Residual variance and standard error of the y_{t-1} coefficient.
  double rss = 0.0;
  long long n_obs = 0;
  for (std::size_t t = start; t < dy.size(); ++t) {
    row[0] = 1.0;
    row[1] = xs[t];
    for (int l = 1; l <= lags; ++l) row[1 + static_cast<std::size_t>(l)] = dy[t - static_cast<std::size_t>(l)];
    double fitted = 0.0;
    for (std::size_t i = 0; i < p; ++i) fitted += beta[i] * row[i];
    const double r = dy[t] - fitted;
    rss += r * r;
    ++n_obs;
  }
  const double sigma2 = rss / static_cast<double>(n_obs - n_params);

  // (X'X)^{-1}[1][1] via solving X'X e_1 = unit vector.
  std::vector<double> unit(p, 0.0);
  unit[1] = 1.0;
  const auto inv_col = solve_linear_system(xtx, unit);
  const double se = std::sqrt(sigma2 * inv_col[1]);
  const double t_stat = beta[1] / se;

  // Dickey-Fuller critical values, constant-only model, asymptotic.
  struct CriticalPoint { double t; double p; };
  static constexpr CriticalPoint table[] = {
      {-3.96, 0.001}, {-3.43, 0.01}, {-3.12, 0.025}, {-2.86, 0.05},
      {-2.57, 0.10},  {-2.23, 0.20}, {-1.62, 0.50},  {-0.50, 0.90},
      {0.00, 0.95},   {0.60, 0.99},
  };
  double p_value;
  if (t_stat <= table[0].t) {
    p_value = table[0].p;
  } else if (t_stat >= table[std::size(table) - 1].t) {
    p_value = table[std::size(table) - 1].p;
  } else {
    p_value = table[0].p;
    for (std::size_t i = 1; i < std::size(table); ++i) {
      if (t_stat < table[i].t) {
        const double frac = (t_stat - table[i - 1].t) / (table[i].t - table[i - 1].t);
        p_value = table[i - 1].p + frac * (table[i].p - table[i - 1].p);
        break;
      }
    }
  }
  return TestResult{.statistic = t_stat, .p_value = p_value};
}

TestResult one_way_anova(std::span<const std::vector<double>> groups) {
  if (groups.size() < 2) throw std::invalid_argument{"one_way_anova: need at least 2 groups"};
  double grand_sum = 0.0;
  double n_total = 0.0;
  for (const auto& g : groups) {
    if (g.empty()) throw std::invalid_argument{"one_way_anova: empty group"};
    for (const double x : g) grand_sum += x;
    n_total += static_cast<double>(g.size());
  }
  const double grand_mean = grand_sum / n_total;

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const auto& g : groups) {
    const double gm = mean(g);
    ss_between += static_cast<double>(g.size()) * (gm - grand_mean) * (gm - grand_mean);
    for (const double x : g) ss_within += (x - gm) * (x - gm);
  }
  const double df_between = static_cast<double>(groups.size()) - 1.0;
  const double df_within = n_total - static_cast<double>(groups.size());
  if (df_within <= 0.0) throw std::invalid_argument{"one_way_anova: not enough observations"};
  if (ss_within == 0.0) {
    const bool all_equal = ss_between == 0.0;
    return TestResult{.statistic = all_equal ? 0.0 : 1e308, .p_value = all_equal ? 1.0 : 0.0};
  }
  const double f = (ss_between / df_between) / (ss_within / df_within);
  const double p = 1.0 - f_cdf(f, df_between, df_within);
  return TestResult{.statistic = f, .p_value = std::clamp(p, 0.0, 1.0)};
}

TestResult spearman_correlation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument{"spearman_correlation: size mismatch"};
  }
  if (x.size() < 4) {
    throw std::invalid_argument{"spearman_correlation: need at least 4 pairs"};
  }
  const std::vector<double> xv{x.begin(), x.end()};
  const std::vector<double> yv{y.begin(), y.end()};
  const auto rx = mid_ranks(xv);
  const auto ry = mid_ranks(yv);

  // Pearson correlation of the ranks (handles ties correctly).
  const double mx = mean(rx);
  const double my = mean(ry);
  double cov = 0.0, vx = 0.0, vy = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    const double dx = rx[i] - mx;
    const double dy = ry[i] - my;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  if (vx == 0.0 || vy == 0.0) return TestResult{.statistic = 0.0, .p_value = 1.0};
  const double rho = cov / std::sqrt(vx * vy);

  // t-approximation: t = rho * sqrt((n-2)/(1-rho^2)), df = n-2.
  const double n = static_cast<double>(x.size());
  double p;
  if (std::fabs(rho) >= 1.0 - 1e-12) {
    p = 0.0;
  } else {
    const double t = rho * std::sqrt((n - 2.0) / (1.0 - rho * rho));
    p = 2.0 * (1.0 - student_t_cdf(std::fabs(t), n - 2.0));
  }
  return TestResult{.statistic = rho, .p_value = std::clamp(p, 0.0, 1.0)};
}

TestResult kruskal_wallis(std::span<const std::vector<double>> groups) {
  if (groups.size() < 2) {
    throw std::invalid_argument{"kruskal_wallis: need at least 2 groups"};
  }
  std::vector<double> combined;
  std::vector<std::size_t> group_of;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].empty()) throw std::invalid_argument{"kruskal_wallis: empty group"};
    for (const double x : groups[g]) {
      combined.push_back(x);
      group_of.push_back(g);
    }
  }
  const auto n = static_cast<double>(combined.size());
  const auto ranks = mid_ranks(combined);

  std::vector<double> rank_sum(groups.size(), 0.0);
  for (std::size_t i = 0; i < combined.size(); ++i) {
    rank_sum[group_of[i]] += ranks[i];
  }
  double h = 0.0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto ng = static_cast<double>(groups[g].size());
    h += rank_sum[g] * rank_sum[g] / ng;
  }
  h = 12.0 / (n * (n + 1.0)) * h - 3.0 * (n + 1.0);

  // Tie correction.
  auto sorted_all = combined;
  std::sort(sorted_all.begin(), sorted_all.end());
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < sorted_all.size()) {
    std::size_t j = i;
    while (j + 1 < sorted_all.size() && sorted_all[j + 1] == sorted_all[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double correction = 1.0 - tie_term / (n * n * n - n);
  if (correction > 0.0) h /= correction;

  const double df = static_cast<double>(groups.size()) - 1.0;
  const double p = 1.0 - chi_squared_cdf(h, df);
  return TestResult{.statistic = h, .p_value = std::clamp(p, 0.0, 1.0)};
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (xs.size() < 2 || lag >= xs.size()) return 0.0;
  const double m = mean(xs);
  double denom = 0.0;
  for (const double x : xs) denom += (x - m) * (x - m);
  if (denom == 0.0) return 0.0;
  double num = 0.0;
  for (std::size_t t = lag; t < xs.size(); ++t) num += (xs[t] - m) * (xs[t - lag] - m);
  return num / denom;
}

TestResult ljung_box(std::span<const double> xs, std::size_t max_lag) {
  if (max_lag == 0 || max_lag >= xs.size()) {
    throw std::invalid_argument{"ljung_box: max_lag must be in [1, n)"};
  }
  const auto n = static_cast<double>(xs.size());
  double q = 0.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    const double rho = autocorrelation(xs, k);
    q += rho * rho / (n - static_cast<double>(k));
  }
  q *= n * (n + 2.0);
  const double p = 1.0 - chi_squared_cdf(q, static_cast<double>(max_lag));
  return TestResult{.statistic = q, .p_value = std::clamp(p, 0.0, 1.0)};
}

}  // namespace cloudrepro::stats
