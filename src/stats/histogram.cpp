#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cloudrepro::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, width_{0.0} {
  // Validate before any arithmetic: the old code divided by `bins` in the
  // member-init list, so `bins == 0` hit the division before the check.
  if (bins == 0) throw std::invalid_argument{"Histogram: need at least one bin"};
  if (!(hi > lo)) throw std::invalid_argument{"Histogram: hi must exceed lo"};
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double value) noexcept {
  if (!std::isfinite(value)) {
    // floor(NaN/inf) cast to an integer is UB; count the value instead of
    // binning it so totals still reconcile with the feed.
    ++non_finite_;
    return;
  }
  auto bin = static_cast<std::ptrdiff_t>(std::floor((value - lo_) / width_));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) noexcept {
  for (const double v : values) add(v);
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"Histogram::bin_center"};
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::vector<double> Histogram::densities() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ == 0) return d;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    d[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return d;
}

Ecdf::Ecdf(std::span<const double> xs) : sorted_{xs.begin(), xs.end()} {
  if (sorted_.empty()) throw std::invalid_argument{"Ecdf: empty sample"};
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double p) const {
  // Negated comparison so NaN fails the range check instead of reaching the
  // ceil-and-cast below (casting NaN to an integer is UB).
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument{"Ecdf::inverse: p must be in [0, 1]"};
  if (p == 0.0) return sorted_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (points < 2) points = 2;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, (*this)(x));
  }
  return out;
}

}  // namespace cloudrepro::stats
