#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/streaming.h"

namespace cloudrepro::stats {

// The span-based moment functions are thin adapters over StreamingMoments:
// one implementation shared with the O(1)-mergeable accumulators. Sequential
// accumulation reproduces the old naive-sum mean bit-exactly; variance moves
// from the two-pass formula to Welford's M2, which agrees within 1 ulp on
// well-conditioned data (bounded by the streaming property suite).

double mean(std::span<const double> xs) noexcept {
  StreamingMoments m;
  m.add_all(xs);
  return m.mean();
}

double variance(std::span<const double> xs) noexcept {
  StreamingMoments m;
  m.add_all(xs);
  return m.variance();
}

double stddev(std::span<const double> xs) noexcept {
  StreamingMoments m;
  m.add_all(xs);
  return m.stddev();
}

double coefficient_of_variation(std::span<const double> xs) noexcept {
  StreamingMoments m;
  m.add_all(xs);
  return m.coefficient_of_variation();
}

std::vector<double> sorted(std::span<const double> xs) {
  std::vector<double> copy{xs.begin(), xs.end()};
  std::sort(copy.begin(), copy.end());
  return copy;
}

double quantile_sorted(std::span<const double> s, double q) {
  if (s.empty()) throw std::invalid_argument{"quantile: empty sample"};
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"quantile: q must be in [0, 1]"};
  if (s.size() == 1) return s[0];
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return s[lo] + frac * (s[hi] - s[lo]);
}

double quantile(std::span<const double> xs, double q) {
  const auto s = sorted(xs);
  return quantile_sorted(s, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"summarize: empty sample"};
  StreamingMoments m;
  m.add_all(xs);
  Summary s;
  s.count = m.count();
  s.mean = m.mean();
  s.median = quantile(xs, 0.5);
  s.variance = m.variance();
  s.stddev = m.stddev();
  s.coefficient_of_variation = m.coefficient_of_variation();
  s.min = m.min();
  s.max = m.max();
  return s;
}

BoxStats box_stats(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"box_stats: empty sample"};
  const auto s = sorted(xs);
  BoxStats b;
  b.p1 = quantile_sorted(s, 0.01);
  b.p25 = quantile_sorted(s, 0.25);
  b.p50 = quantile_sorted(s, 0.50);
  b.p75 = quantile_sorted(s, 0.75);
  b.p99 = quantile_sorted(s, 0.99);
  return b;
}

}  // namespace cloudrepro::stats
