#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cloudrepro::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) {
    const double d = x - m;
    ss += d * d;
  }
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double coefficient_of_variation(std::span<const double> xs) noexcept {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

std::vector<double> sorted(std::span<const double> xs) {
  std::vector<double> copy{xs.begin(), xs.end()};
  std::sort(copy.begin(), copy.end());
  return copy;
}

double quantile_sorted(std::span<const double> s, double q) {
  if (s.empty()) throw std::invalid_argument{"quantile: empty sample"};
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"quantile: q must be in [0, 1]"};
  if (s.size() == 1) return s[0];
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return s[lo] + frac * (s[hi] - s[lo]);
}

double quantile(std::span<const double> xs, double q) {
  const auto s = sorted(xs);
  return quantile_sorted(s, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"summarize: empty sample"};
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  const auto srt = sorted(xs);
  s.median = quantile_sorted(srt, 0.5);
  s.variance = variance(xs);
  s.stddev = std::sqrt(s.variance);
  s.coefficient_of_variation = s.mean == 0.0 ? 0.0 : s.stddev / s.mean;
  s.min = srt.front();
  s.max = srt.back();
  return s;
}

BoxStats box_stats(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"box_stats: empty sample"};
  const auto s = sorted(xs);
  BoxStats b;
  b.p1 = quantile_sorted(s, 0.01);
  b.p25 = quantile_sorted(s, 0.25);
  b.p50 = quantile_sorted(s, 0.50);
  b.p75 = quantile_sorted(s, 0.75);
  b.p99 = quantile_sorted(s, 0.99);
  return b;
}

}  // namespace cloudrepro::stats
