#include "stats/ci.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.h"
#include "stats/special.h"

namespace cloudrepro::stats {

double ConfidenceInterval::relative_half_width() const noexcept {
  // A zero estimate makes the relative criterion undefined. Returning 0.0
  // here (the old behavior) made a degenerate zero-quantile CI read as
  // "within any bound", so adaptive CONFIRM stopping would terminate a
  // zero-valued scenario after one repetition. Report the interval as
  // infinitely wide instead so the degenerate case can never converge.
  if (estimate == 0.0) return std::numeric_limits<double>::infinity();
  return 0.5 * (upper - lower) / std::fabs(estimate);
}

ConfidenceInterval quantile_ci(std::span<const double> xs, double q, double confidence) {
  if (xs.empty()) throw std::invalid_argument{"quantile_ci: empty sample"};
  return quantile_ci_sorted(sorted(xs), q, confidence);
}

ConfidenceInterval quantile_ci_sorted(std::span<const double> s, double q,
                                      double confidence) {
  if (s.empty()) throw std::invalid_argument{"quantile_ci: empty sample"};
  if (q <= 0.0 || q >= 1.0) throw std::invalid_argument{"quantile_ci: q must be in (0, 1)"};
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument{"quantile_ci: confidence must be in (0, 1)"};
  }

  const auto n = static_cast<long long>(s.size());

  ConfidenceInterval ci;
  ci.confidence = confidence;
  ci.estimate = quantile_sorted(s, q);

  const double alpha = 1.0 - confidence;

  // Order-statistic indices (1-based). The number of samples <= Q_q is
  // Binomial(n, q). We need the largest j with P(X < j) <= alpha/2, i.e.
  // BinomCdf(j - 1) <= alpha/2, and the smallest k with
  // P(X >= k) <= alpha/2, i.e. BinomCdf(k - 1) >= 1 - alpha/2.
  long long j = 0;  // 0 means "no valid lower order statistic".
  for (long long i = 1; i <= n; ++i) {
    if (binomial_cdf(i - 1, n, q) <= alpha / 2.0) {
      j = i;
    } else {
      break;
    }
  }
  long long k = 0;
  for (long long i = 1; i <= n; ++i) {
    if (binomial_cdf(i - 1, n, q) >= 1.0 - alpha / 2.0) {
      k = i;
      break;
    }
  }

  if (j == 0 || k == 0 || j > k) {
    // Sample too small for a two-sided distribution-free interval
    // (e.g. n = 3 for the median at 95%).
    ci.valid = false;
    ci.lower = s.front();
    ci.upper = s.back();
    return ci;
  }

  ci.lower = s[static_cast<std::size_t>(j - 1)];
  ci.upper = s[static_cast<std::size_t>(k - 1)];
  // Achieved coverage: P(j <= X < k) over the binomial counts.
  ci.confidence = binomial_cdf(k - 1, n, q) - binomial_cdf(j - 1, n, q);
  ci.valid = true;
  return ci;
}

ConfidenceInterval median_ci(std::span<const double> xs, double confidence) {
  return quantile_ci(xs, 0.5, confidence);
}

std::size_t min_samples_for_quantile_ci(double q, double confidence) {
  const double alpha = 1.0 - confidence;
  for (std::size_t n = 2; n < 100000; ++n) {
    // quantile_ci uses symmetric tails: the widest feasible interval is
    // [x_(1), x_(n)], which requires BinomCdf(0) = (1-q)^n <= alpha/2 for the
    // lower index and 1 - BinomCdf(n-1) = q^n <= alpha/2 for the upper one.
    const auto nd = static_cast<double>(n);
    const bool lower_ok = std::pow(1.0 - q, nd) <= alpha / 2.0;
    const bool upper_ok = std::pow(q, nd) <= alpha / 2.0;
    if (lower_ok && upper_ok) return n;
  }
  throw std::runtime_error{"min_samples_for_quantile_ci: no feasible n below 100000"};
}

}  // namespace cloudrepro::stats
