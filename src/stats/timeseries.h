#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cloudrepro::stats {

/// Time-series utilities used to characterize measurement traces
/// (Section 3: "How rapidly does bandwidth vary?") and to implement the
/// paper's F5.4 advice of discretizing performance into time units.

/// Relative changes between consecutive samples: |x[t] - x[t-1]| / x[t-1].
/// The paper reports the maximum of this quantity: up to 33% for HPCCloud
/// full-speed and 114% for Google Cloud 5-30.
std::vector<double> sample_to_sample_variability(std::span<const double> xs);

/// Maximum relative sample-to-sample change (0 for fewer than 2 samples).
double max_sample_to_sample_variability(std::span<const double> xs);

/// Splits a series into contiguous windows of `window` samples (the final
/// partial window is dropped) and returns the median of each — F5.4's
/// "discretize performance evaluation into units of time, e.g. one hour;
/// gather median performance for each interval".
std::vector<double> windowed_medians(std::span<const double> xs, std::size_t window);

/// Rolling mean with the given window (centered on trailing edge).
std::vector<double> rolling_mean(std::span<const double> xs, std::size_t window);

/// Cumulative sums — used for total-traffic curves (Figure 10).
std::vector<double> cumulative_sum(std::span<const double> xs);

/// Longest run of consecutive samples on the same side of the series median;
/// long runs are the signature of regime-switching (token-bucket) behaviour
/// rather than i.i.d. noise.
std::size_t longest_run_around_median(std::span<const double> xs);

}  // namespace cloudrepro::stats
