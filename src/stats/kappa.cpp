#include "stats/kappa.h"

#include <stdexcept>

namespace cloudrepro::stats {

double cohens_kappa(std::span<const bool> rater_a, std::span<const bool> rater_b) {
  if (rater_a.size() != rater_b.size()) {
    throw std::invalid_argument{"cohens_kappa: raters labelled different numbers of items"};
  }
  if (rater_a.empty()) throw std::invalid_argument{"cohens_kappa: empty label set"};

  const auto n = static_cast<double>(rater_a.size());
  double both_yes = 0.0, both_no = 0.0, a_yes = 0.0, b_yes = 0.0;
  for (std::size_t i = 0; i < rater_a.size(); ++i) {
    if (rater_a[i] && rater_b[i]) ++both_yes;
    if (!rater_a[i] && !rater_b[i]) ++both_no;
    if (rater_a[i]) ++a_yes;
    if (rater_b[i]) ++b_yes;
  }
  const double observed = (both_yes + both_no) / n;
  const double expected =
      (a_yes / n) * (b_yes / n) + ((n - a_yes) / n) * ((n - b_yes) / n);
  if (expected == 1.0) return 1.0;  // Raters are constant and identical.
  return (observed - expected) / (1.0 - expected);
}

AgreementLevel interpret_kappa(double kappa) noexcept {
  if (kappa < 0.0) return AgreementLevel::kLessThanChance;
  if (kappa <= 0.20) return AgreementLevel::kSlight;
  if (kappa <= 0.40) return AgreementLevel::kFair;
  if (kappa <= 0.60) return AgreementLevel::kModerate;
  if (kappa <= 0.80) return AgreementLevel::kSubstantial;
  return AgreementLevel::kAlmostPerfect;
}

std::string to_string(AgreementLevel level) {
  switch (level) {
    case AgreementLevel::kLessThanChance: return "less than chance";
    case AgreementLevel::kSlight: return "slight";
    case AgreementLevel::kFair: return "fair";
    case AgreementLevel::kModerate: return "moderate";
    case AgreementLevel::kSubstantial: return "substantial";
    case AgreementLevel::kAlmostPerfect: return "almost perfect";
  }
  return "unknown";
}

}  // namespace cloudrepro::stats
