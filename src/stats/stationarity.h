#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/hypothesis.h"

namespace cloudrepro::stats {

/// F5.4 tooling: "When performance is not stationary, results can be
/// limited to time periods when stationarity holds". This module finds
/// those periods with a rolling (augmented) Dickey-Fuller scan.

/// A half-open index range [begin, end) of a series.
struct WindowRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const noexcept { return end - begin; }
};

struct StationarityScanOptions {
  std::size_t window = 60;    ///< Samples per ADF window.
  std::size_t stride = 20;    ///< Scan stride.
  double alpha = 0.05;        ///< ADF rejection level (reject = stationary).
  int adf_lags = 1;
};

/// Scans the series window-by-window and returns the per-window verdicts.
struct WindowVerdict {
  WindowRange range;
  TestResult adf;
  bool stationary = false;
};

std::vector<WindowVerdict> stationarity_scan(std::span<const double> xs,
                                             const StationarityScanOptions& options = {});

/// Merges consecutive stationary windows into maximal stationary ranges —
/// the "time periods when stationarity holds" usable for analysis.
std::vector<WindowRange> stationary_ranges(std::span<const double> xs,
                                           const StationarityScanOptions& options = {});

/// Fraction of scanned samples lying in stationary windows. 1.0 for
/// well-behaved noise, low for regime-switching (token-bucket) series.
double stationary_fraction(std::span<const double> xs,
                           const StationarityScanOptions& options = {});

}  // namespace cloudrepro::stats
