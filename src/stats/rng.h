#pragma once

#include <cstdint>
#include <vector>

namespace cloudrepro::stats {

/// Deterministic, explicitly-seeded random number generator.
///
/// Every stochastic component in this repository draws from an `Rng` that the
/// caller seeds, so that all experiments and benches are reproducible
/// run-to-run — the repository practices what the paper preaches (F5.x).
///
/// The engine is xoshiro256++ seeded through SplitMix64, which has excellent
/// statistical quality for simulation workloads and is trivially portable.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed via SplitMix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal deviate (Marsaglia polar method).
  double normal() noexcept;

  /// Normal deviate with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Lognormal deviate: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential deviate with given rate (lambda).
  double exponential(double rate) noexcept;

  /// Pareto deviate with scale x_m and shape alpha (heavy-tailed noise).
  double pareto(double scale, double shape) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Zipf-distributed integer in [0, n): P(k) proportional to 1/(k+1)^s.
  /// Used to generate partition skew in the big-data engine.
  std::size_t zipf(std::size_t n, double s);

  /// Fisher-Yates shuffle of indices [0, n) — used for randomized
  /// experiment ordering (guideline F5.4).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator (for per-node streams).
  Rng split() noexcept;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cloudrepro::stats
