#include "stats/timeseries.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace cloudrepro::stats {

std::vector<double> sample_to_sample_variability(std::span<const double> xs) {
  std::vector<double> out;
  if (xs.size() < 2) return out;
  out.reserve(xs.size() - 1);
  for (std::size_t t = 1; t < xs.size(); ++t) {
    const double prev = xs[t - 1];
    if (prev == 0.0) {
      out.push_back(0.0);
    } else {
      out.push_back(std::fabs(xs[t] - prev) / std::fabs(prev));
    }
  }
  return out;
}

double max_sample_to_sample_variability(std::span<const double> xs) {
  const auto changes = sample_to_sample_variability(xs);
  if (changes.empty()) return 0.0;
  return *std::max_element(changes.begin(), changes.end());
}

std::vector<double> windowed_medians(std::span<const double> xs, std::size_t window) {
  std::vector<double> out;
  if (window == 0 || xs.size() < window) return out;
  out.reserve(xs.size() / window);
  for (std::size_t start = 0; start + window <= xs.size(); start += window) {
    out.push_back(median(xs.subspan(start, window)));
  }
  return out;
}

std::vector<double> rolling_mean(std::span<const double> xs, std::size_t window) {
  std::vector<double> out;
  if (window == 0 || xs.size() < window) return out;
  out.reserve(xs.size() - window + 1);
  double sum = 0.0;
  for (std::size_t i = 0; i < window; ++i) sum += xs[i];
  out.push_back(sum / static_cast<double>(window));
  for (std::size_t t = window; t < xs.size(); ++t) {
    sum += xs[t] - xs[t - window];
    out.push_back(sum / static_cast<double>(window));
  }
  return out;
}

std::vector<double> cumulative_sum(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
    out.push_back(sum);
  }
  return out;
}

std::size_t longest_run_around_median(std::span<const double> xs) {
  if (xs.size() < 2) return xs.size();
  const double med = median(xs);
  std::size_t longest = 0;
  std::size_t current = 0;
  int prev_sign = 0;
  for (const double x : xs) {
    const int sign = x > med ? 1 : (x < med ? -1 : 0);
    if (sign == 0) {
      prev_sign = 0;
      current = 0;
      continue;
    }
    current = (sign == prev_sign) ? current + 1 : 1;
    prev_sign = sign;
    longest = std::max(longest, current);
  }
  return longest;
}

}  // namespace cloudrepro::stats
