#pragma once

#include <cstddef>
#include <span>

#include "stats/rng.h"

namespace cloudrepro::stats {

/// A two-sided confidence interval around a point estimate.
struct ConfidenceInterval {
  double lower = 0.0;
  double estimate = 0.0;
  double upper = 0.0;
  double confidence = 0.95;  ///< Achieved (>= requested) confidence level.
  bool valid = false;        ///< False when the sample is too small (see below).

  double width() const noexcept { return upper - lower; }

  /// Half-width relative to the estimate — the paper's "error bound"
  /// criterion (1% in Figure 13, 10% in Figure 19).
  double relative_half_width() const noexcept;

  bool contains(double value) const noexcept { return value >= lower && value <= upper; }
};

/// Non-parametric (distribution-free) confidence interval for the q-quantile
/// using binomial order statistics — the method of Le Boudec [11] that the
/// paper uses for both medians (Figures 3a, 13, 19) and the 90th percentile
/// tail (Figure 3b).
///
/// The interval is [x_(j), x_(k)] with indices chosen so that
/// P(x_(j) <= Q_q <= x_(k)) >= `confidence` under Binomial(n, q) coverage.
/// Requires enough samples for the interval to exist at all: e.g. the median
/// needs n >= 6 at 95% — which is precisely why the paper notes that "three
/// repetitions are insufficient to calculate CIs" (Figure 3 caption). When
/// the sample is too small, `valid` is false and only `estimate` is set.
ConfidenceInterval quantile_ci(std::span<const double> xs, double q,
                               double confidence = 0.95);

/// Same as `quantile_ci` but requires `xs` already sorted ascending — the
/// streaming `QuantileReservoir` keeps its sample sorted and calls this to
/// skip the O(n log n) re-sort on every stopping-rule evaluation.
ConfidenceInterval quantile_ci_sorted(std::span<const double> xs, double q,
                                      double confidence = 0.95);

/// Convenience wrapper: non-parametric CI for the median.
ConfidenceInterval median_ci(std::span<const double> xs, double confidence = 0.95);

/// Bootstrap percentile CI for an arbitrary statistic of the sample. Used as
/// a cross-check of the order-statistic method in tests and ablations.
template <typename Statistic>
ConfidenceInterval bootstrap_ci(std::span<const double> xs, Statistic statistic,
                                Rng& rng, double confidence = 0.95,
                                std::size_t resamples = 2000);

/// Minimum sample size for which a two-sided non-parametric CI of the
/// q-quantile exists at the given confidence level.
std::size_t min_samples_for_quantile_ci(double q, double confidence = 0.95);

}  // namespace cloudrepro::stats

// ---- template implementation -----------------------------------------------

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace cloudrepro::stats {

template <typename Statistic>
ConfidenceInterval bootstrap_ci(std::span<const double> xs, Statistic statistic,
                                Rng& rng, double confidence, std::size_t resamples) {
  if (xs.empty()) throw std::invalid_argument{"bootstrap_ci: empty sample"};
  std::vector<double> stat_values;
  stat_values.reserve(resamples);
  std::vector<double> resample(xs.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& v : resample) {
      v = xs[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1))];
    }
    stat_values.push_back(statistic(std::span<const double>{resample}));
  }
  std::sort(stat_values.begin(), stat_values.end());
  const double alpha = 1.0 - confidence;
  ConfidenceInterval ci;
  ci.confidence = confidence;
  ci.estimate = statistic(xs);
  const auto idx = [&](double p) {
    const auto i = static_cast<std::size_t>(p * static_cast<double>(stat_values.size() - 1));
    return stat_values[std::min(i, stat_values.size() - 1)];
  };
  ci.lower = idx(alpha / 2.0);
  ci.upper = idx(1.0 - alpha / 2.0);
  ci.valid = true;
  return ci;
}

}  // namespace cloudrepro::stats
