#include "stats/stationarity.h"

#include <stdexcept>

namespace cloudrepro::stats {

std::vector<WindowVerdict> stationarity_scan(std::span<const double> xs,
                                             const StationarityScanOptions& options) {
  if (options.window < 20) {
    throw std::invalid_argument{"stationarity_scan: window must be >= 20 samples"};
  }
  if (options.stride == 0) {
    throw std::invalid_argument{"stationarity_scan: stride must be positive"};
  }
  std::vector<WindowVerdict> verdicts;
  if (xs.size() < options.window) return verdicts;

  for (std::size_t begin = 0; begin + options.window <= xs.size();
       begin += options.stride) {
    WindowVerdict v;
    v.range = WindowRange{begin, begin + options.window};
    v.adf = adf_test(xs.subspan(begin, options.window), options.adf_lags);
    // ADF's null is a unit root (non-stationary); rejection = stationary.
    v.stationary = v.adf.reject(options.alpha);
    verdicts.push_back(v);
  }
  return verdicts;
}

std::vector<WindowRange> stationary_ranges(std::span<const double> xs,
                                           const StationarityScanOptions& options) {
  const auto verdicts = stationarity_scan(xs, options);
  std::vector<WindowRange> ranges;
  for (const auto& v : verdicts) {
    if (!v.stationary) continue;
    if (!ranges.empty() && v.range.begin <= ranges.back().end) {
      ranges.back().end = v.range.end;  // Merge overlapping/adjacent.
    } else {
      ranges.push_back(v.range);
    }
  }
  return ranges;
}

double stationary_fraction(std::span<const double> xs,
                           const StationarityScanOptions& options) {
  const auto verdicts = stationarity_scan(xs, options);
  if (verdicts.empty()) return 0.0;
  std::size_t stationary = 0;
  for (const auto& v : verdicts) stationary += v.stationary ? 1 : 0;
  return static_cast<double>(stationary) / static_cast<double>(verdicts.size());
}

}  // namespace cloudrepro::stats
