#include "stats/rng.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cloudrepro::stats {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span is tiny relative to 2^64 in all
  // simulation uses, so the bias is far below statistical noise.
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::pareto(double scale, double shape) noexcept {
  return scale / std::pow(1.0 - uniform(), 1.0 / shape);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument{"zipf: n must be positive"};
  // Inverse-CDF over the finite support; n is small (cluster/partition
  // counts), so the linear scan is negligible.
  double norm = 0.0;
  for (std::size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(k, s);
  double u = uniform() * norm;
  for (std::size_t k = 1; k <= n; ++k) {
    u -= 1.0 / std::pow(k, s);
    if (u <= 0.0) return k - 1;
  }
  return n - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split() noexcept { return Rng{next_u64()}; }

}  // namespace cloudrepro::stats
