#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace cloudrepro::stats {

/// Cohen's Kappa coefficient [16] for inter-rater agreement on binary labels.
/// The paper uses it to validate the dual-review of surveyed articles
/// (Section 2): values above 0.8 indicate "almost perfect agreement" [59].
///
/// Throws if the spans differ in length or are empty.
double cohens_kappa(std::span<const bool> rater_a, std::span<const bool> rater_b);

/// Interpretation bands from Viera & Garrett [59].
enum class AgreementLevel {
  kLessThanChance,   ///< kappa < 0
  kSlight,           ///< 0    - 0.20
  kFair,             ///< 0.21 - 0.40
  kModerate,         ///< 0.41 - 0.60
  kSubstantial,      ///< 0.61 - 0.80
  kAlmostPerfect,    ///< 0.81 - 1.00
};

AgreementLevel interpret_kappa(double kappa) noexcept;

std::string to_string(AgreementLevel level);

}  // namespace cloudrepro::stats
