#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cloudrepro::stats {

/// Summary of a sample: the minimal statistical reporting the paper's survey
/// (Section 2) finds missing from most published cloud experiments.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double variance = 0.0;            ///< Unbiased (n-1) sample variance.
  double stddev = 0.0;
  double coefficient_of_variation = 0.0;  ///< stddev / mean (0 when mean == 0).
  double min = 0.0;
  double max = 0.0;
};

/// Box-and-whiskers statistics exactly as the paper plots them: whiskers at
/// the 1st and 99th percentiles, box at the quartiles (Figures 2, 4, 5, 9,
/// 16, 17).
struct BoxStats {
  double p1 = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p99 = 0.0;

  double iqr() const noexcept { return p75 - p25; }
};

/// Arithmetic mean; 0 for an empty sample.
double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance; 0 for samples of size < 2.
double variance(std::span<const double> xs) noexcept;

/// Sample standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Coefficient of variation (stddev / mean); the paper reports it as a
/// percentage in Figure 6. Returns 0 when the mean is 0.
double coefficient_of_variation(std::span<const double> xs) noexcept;

/// Quantile with linear interpolation between order statistics
/// (type-7 / default in R and NumPy). `q` in [0, 1]. Throws on empty input.
double quantile(std::span<const double> xs, double q);

/// Quantile of data that is already sorted ascending.
double quantile_sorted(std::span<const double> sorted, double q);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// Full summary of a sample. Throws on empty input.
Summary summarize(std::span<const double> xs);

/// Box statistics (1/25/50/75/99 percentiles). Throws on empty input.
BoxStats box_stats(std::span<const double> xs);

/// Returns a sorted copy of the sample.
std::vector<double> sorted(std::span<const double> xs);

}  // namespace cloudrepro::stats
