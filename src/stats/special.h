#pragma once

namespace cloudrepro::stats {

/// Special functions required by the hypothesis tests and the non-parametric
/// confidence-interval machinery. All implementations are self-contained
/// (Lentz continued fractions / Abramowitz-Stegun style approximations) so
/// the library has no dependency beyond the C++ standard library.

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, x in [0,1].
double incomplete_beta(double a, double b, double x);

/// Regularized lower incomplete gamma P(a, x).
double incomplete_gamma_p(double a, double x);

/// Standard normal cumulative distribution function.
double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |error| < 1e-12 over (0,1)).
double normal_quantile(double p);

/// Student's t distribution CDF with `df` degrees of freedom.
double student_t_cdf(double t, double df);

/// F distribution CDF with (d1, d2) degrees of freedom.
double f_cdf(double f, double d1, double d2);

/// Chi-squared distribution CDF with `df` degrees of freedom.
double chi_squared_cdf(double x, double df);

/// Binomial CDF: P(X <= k) for X ~ Binomial(n, p). Exact for n <= 2^20 via
/// log-space pmf accumulation.
double binomial_cdf(long long k, long long n, double p);

/// Log of the binomial coefficient C(n, k).
double log_binomial_coefficient(long long n, long long k);

}  // namespace cloudrepro::stats
