#pragma once

#include <span>
#include <vector>

namespace cloudrepro::stats {

/// Outcome of a statistical hypothesis test.
struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;

  /// True when the null hypothesis is rejected at the given significance.
  bool reject(double alpha = 0.05) const noexcept { return p_value < alpha; }
};

/// Shapiro-Wilk W test for normality (Royston's AS R94 approximation).
/// The paper (F5.4) recommends testing samples for normality [54] before
/// applying parametric statistics. Valid for 3 <= n <= 5000.
/// Null hypothesis: the sample is drawn from a normal distribution.
TestResult shapiro_wilk(std::span<const double> xs);

/// Mann-Whitney U rank-sum test [45] with tie correction and normal
/// approximation. Null hypothesis: the two samples come from the same
/// distribution (used to compare repeated experiment batches — if an early
/// batch and a late batch differ, runs were not identically distributed).
TestResult mann_whitney_u(std::span<const double> a, std::span<const double> b);

/// Two-sample Kolmogorov-Smirnov test with the asymptotic p-value.
/// Sensitive to any distributional difference (location, scale, shape) —
/// the right tool for F5.1's cross-cloud sensitivity analysis, where entire
/// bandwidth distributions are compared, not just their centers.
/// Null hypothesis: both samples come from the same distribution.
TestResult kolmogorov_smirnov(std::span<const double> a, std::span<const double> b);

/// Wald-Wolfowitz runs test for independence: counts runs above/below the
/// median. A token-bucket-shaped series (long runs of "fast" then "slow")
/// fails this test, which is exactly the non-i.i.d. behaviour of Figure 19.
/// Null hypothesis: observations are independent.
TestResult runs_test(std::span<const double> xs);

/// (Augmented) Dickey-Fuller unit-root test [22] for stationarity, with a
/// constant term and `lags` lagged differences.
/// Null hypothesis: the series has a unit root (is NON-stationary); so
/// reject() == true means the series looks stationary.
/// The p-value is interpolated from the standard Dickey-Fuller critical
/// values for the constant-only model.
TestResult adf_test(std::span<const double> xs, int lags = 1);

/// One-way analysis of variance across groups (F5.3 cites ANOVA as a classic
/// robustness tool). Null hypothesis: all group means are equal.
TestResult one_way_anova(std::span<const std::vector<double>> groups);

/// Kruskal-Wallis H test: the non-parametric counterpart of one-way ANOVA,
/// for the common cloud case where runtimes are nothing like normal (F5.4).
/// Null hypothesis: all groups come from the same distribution.
/// Chi-squared approximation with tie correction.
TestResult kruskal_wallis(std::span<const std::vector<double>> groups);

/// Spearman rank correlation coefficient between paired observations, with
/// a t-approximation p-value against the null of no monotone association.
/// Used to quantify ordered relationships the paper states qualitatively,
/// e.g. "queries with higher network demands exhibit more sensitivity to
/// the budget" (Figure 17).
TestResult spearman_correlation(std::span<const double> x, std::span<const double> y);

/// Lag-k sample autocorrelation coefficient.
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Ljung-Box portmanteau test over autocorrelations up to `max_lag`.
/// Null hypothesis: the series is white noise (no autocorrelation).
TestResult ljung_box(std::span<const double> xs, std::size_t max_lag);

}  // namespace cloudrepro::stats
