#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cloudrepro::stats {

/// Fixed-width histogram over [lo, hi); finite values outside are clamped
/// into the first/last bin so totals are preserved. Non-finite values
/// (NaN, ±inf) are never binned — they land in a separate `non_finite`
/// counter, excluded from `total()` and densities.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;
  void add_all(std::span<const double> values) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }
  /// NaN/±inf values fed to `add`, counted but not binned.
  std::size_t non_finite() const noexcept { return non_finite_; }

  /// Center of the given bin.
  double bin_center(std::size_t bin) const;

  /// Fraction of mass in the given bin (0 if the histogram is empty).
  double density(std::size_t bin) const;

  /// Normalized counts for all bins.
  std::vector<double> densities() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t non_finite_ = 0;
};

/// Empirical cumulative distribution function — the paper plots EC2
/// bandwidth as a CDF in Figure 6.
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> xs);

  /// P(X <= x).
  double operator()(double x) const noexcept;

  /// Inverse: the smallest sample value v with ECDF(v) >= p.
  double inverse(double p) const;

  std::size_t size() const noexcept { return sorted_.size(); }
  std::span<const double> sorted_values() const noexcept { return sorted_; }

  /// Evaluates the CDF at `points` evenly spaced values across the sample
  /// range; convenient for emitting plot series.
  std::vector<std::pair<double, double>> curve(std::size_t points = 100) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace cloudrepro::stats
